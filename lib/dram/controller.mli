(** Memory controller: expands bulk trace records into bursts, drives the
    per-bank state machines, arbitrates the shared data bus and schedules
    refresh windows.

    The model is throughput-oriented: requests are replayed back-to-back
    (the queue is never empty), which matches how the compiler uses DRAM —
    bulk weight and activation streams whose cost is bandwidth-bound. *)

type address_mapping =
  | Row_interleaved
      (** Sequential bursts stream across a full row, then move to the next
          bank — maximal row-buffer hits for bulk transfers (default). *)
  | Bank_interleaved
      (** Sequential bursts rotate across banks first — activates overlap,
          helping short or strided transfers at the cost of more open rows. *)

type energy_model = {
  activate_j : float;  (** Per ACT command. *)
  read_burst_j : float;  (** Per read burst (includes IO). *)
  write_burst_j : float;
  refresh_j : float;  (** Per all-bank refresh. *)
  background_w : float;  (** Standby power while the trace executes. *)
}

val default_energy : energy_model

type stats = {
  cycles : int;  (** Memory cycles from first command to last data beat. *)
  seconds : float;
  bytes : float;
  reads : int;  (** Burst count. *)
  writes : int;
  row_hits : int;
  row_misses : int;
  activates : int;
  refreshes : int;
  bus_stall_cycles : int;
      (** Cycles bursts spent waiting for the shared data bus after their
          bank was ready. *)
  energy_j : float;
  background_j : float;
}

val row_hit_rate : stats -> float
(** Hits over total bursts; 0 on an empty trace. *)

val effective_bandwidth : stats -> float
(** Bytes per second over the busy window; 0 on an empty trace. *)

val run :
  ?timing:Timing.t ->
  ?energy:energy_model ->
  ?mapping:address_mapping ->
  Trace.record list ->
  stats
(** Replay a trace.  Raises [Invalid_argument] if a record exceeds the
    device capacity. *)
