type address_mapping =
  | Row_interleaved
  | Bank_interleaved

type energy_model = {
  activate_j : float;
  read_burst_j : float;
  write_burst_j : float;
  refresh_j : float;
  background_w : float;
}

let default_energy =
  {
    activate_j = 2e-9;
    read_burst_j = 9e-9;
    write_burst_j = 10e-9;
    refresh_j = 50e-9;
    background_w = 0.1;
  }

type stats = {
  cycles : int;
  seconds : float;
  bytes : float;
  reads : int;
  writes : int;
  row_hits : int;
  row_misses : int;
  activates : int;
  refreshes : int;
  bus_stall_cycles : int;
  energy_j : float;
  background_j : float;
}

let row_hit_rate s =
  let total = s.row_hits + s.row_misses in
  if total = 0 then 0. else float_of_int s.row_hits /. float_of_int total

let effective_bandwidth s = if s.seconds <= 0. then 0. else s.bytes /. s.seconds

type cursor = {
  timing : Timing.t;
  mapping : address_mapping;
  banks : Bank.t array;
  mutable now : int;  (* command-issue cursor *)
  mutable data_bus_free : int;
  mutable last_data_end : int;
  mutable next_refresh : int;
  mutable reads : int;
  mutable writes : int;
  mutable row_hits : int;
  mutable row_misses : int;
  mutable activates : int;
  mutable refreshes : int;
  mutable bus_stall_cycles : int;
}

let create_cursor timing mapping =
  {
    timing;
    mapping;
    banks = Array.init timing.Timing.banks (fun _ -> Bank.create timing);
    now = 0;
    data_bus_free = 0;
    last_data_end = 0;
    next_refresh = timing.Timing.trefi;
    reads = 0;
    writes = 0;
    row_hits = 0;
    row_misses = 0;
    activates = 0;
    refreshes = 0;
    bus_stall_cycles = 0;
  }

(* Address mapping policies (DRAMsim3's address-mapping strings). *)
let locate cur burst_index =
  let g = cur.timing in
  let row_bursts = g.Timing.row_bytes / Timing.burst_bytes g in
  match cur.mapping with
  | Row_interleaved ->
    (* Sequential bursts stream across a 2 KB row, then move to the next
       bank; rows change only every banks*row_bursts bursts. *)
    let bank = burst_index / row_bursts mod g.Timing.banks in
    let row = burst_index / (row_bursts * g.Timing.banks) in
    (bank, row)
  | Bank_interleaved ->
    (* Consecutive bursts rotate across banks; each bank still fills its
       row before advancing. *)
    let bank = burst_index mod g.Timing.banks in
    let within_bank = burst_index / g.Timing.banks in
    let row = within_bank / row_bursts in
    (bank, row)

let refresh_if_due cur =
  let g = cur.timing in
  if cur.now >= cur.next_refresh then begin
    let until = cur.next_refresh + g.Timing.trfc in
    Array.iter (fun b -> Bank.block_until b until) cur.banks;
    cur.refreshes <- cur.refreshes + 1;
    cur.next_refresh <- cur.next_refresh + g.Timing.trefi
  end

let burst cur ~bank ~row ~write =
  refresh_if_due cur;
  let g = cur.timing in
  let outcome = Bank.access cur.banks.(bank) ~now:cur.now ~row ~write in
  if outcome.Bank.row_hit then cur.row_hits <- cur.row_hits + 1
  else cur.row_misses <- cur.row_misses + 1;
  if outcome.Bank.activated then cur.activates <- cur.activates + 1;
  if write then cur.writes <- cur.writes + 1 else cur.reads <- cur.reads + 1;
  let data_start = max outcome.Bank.data_cycle cur.data_bus_free in
  (* Cycles the burst's data sat ready behind an occupied data bus. *)
  cur.bus_stall_cycles <- cur.bus_stall_cycles + (data_start - outcome.Bank.data_cycle);
  let data_end = data_start + Timing.burst_cycles g in
  cur.data_bus_free <- data_end;
  cur.last_data_end <- max cur.last_data_end data_end;
  (* Next command may issue while this data moves; banks stay the limiter. *)
  cur.now <- max cur.now outcome.Bank.issue_cycle

let run ?(timing = Timing.lpddr3_1600) ?(energy = default_energy)
    ?(mapping = Row_interleaved) records =
  let cur = create_cursor timing mapping in
  let burst_sz = Timing.burst_bytes timing in
  let replay (r : Trace.record) =
    if float_of_int (r.Trace.addr + r.Trace.bytes) > timing.Timing.capacity_bytes then
      invalid_arg "Controller.run: record beyond device capacity";
    let first = r.Trace.addr / burst_sz in
    let last = (r.Trace.addr + r.Trace.bytes - 1) / burst_sz in
    for b = first to last do
      let bank, row = locate cur b in
      burst cur ~bank ~row ~write:(r.Trace.kind = Trace.Write)
    done
  in
  List.iter replay records;
  let cycles = cur.last_data_end in
  let seconds = Timing.cycles_to_seconds timing cycles in
  let bytes = Trace.total_bytes records in
  let dynamic =
    (float_of_int cur.activates *. energy.activate_j)
    +. (float_of_int cur.reads *. energy.read_burst_j)
    +. (float_of_int cur.writes *. energy.write_burst_j)
    +. (float_of_int cur.refreshes *. energy.refresh_j)
  in
  let background_j = seconds *. energy.background_w in
  if Compass_util.Metrics.enabled () then begin
    let m = Compass_util.Metrics.incr in
    m ~by:cur.reads "dram.reads";
    m ~by:cur.writes "dram.writes";
    m ~by:cur.row_hits "dram.row_hits";
    m ~by:cur.row_misses "dram.row_misses";
    m ~by:cur.activates "dram.activates";
    m ~by:cur.refreshes "dram.refreshes";
    m ~by:cur.bus_stall_cycles "dram.bus_stall_cycles"
  end;
  {
    cycles;
    seconds;
    bytes;
    reads = cur.reads;
    writes = cur.writes;
    row_hits = cur.row_hits;
    row_misses = cur.row_misses;
    activates = cur.activates;
    refreshes = cur.refreshes;
    bus_stall_cycles = cur.bus_stall_cycles;
    energy_j = dynamic +. background_j;
    background_j;
  }
