open Compass_nn

type t = {
  unit_layer : Graph.node array;
  cols_prefix : int array;
  unit_lo : int array;
  unit_hi : int array;
  rows : int array;
  cols : int array;
  row_blocks : int array;
  mvms : int array;
  attached : Graph.node array;
  attached_anchor : int array;
  vector_ops : int array;
  succ : Graph.node list array;
}

let ceil_div a b = (a + b - 1) / b

let create (units : Unit_gen.t) ~anchor =
  let model = units.Unit_gen.model in
  let xbar = units.Unit_gen.chip.Compass_arch.Config.crossbar in
  let m = Unit_gen.unit_count units in
  let nnodes = Graph.node_count model in
  let unit_layer = Array.make m (-1) in
  let cols_prefix = Array.make (m + 1) 0 in
  Array.iteri
    (fun i u ->
      unit_layer.(i) <- u.Unit_gen.layer;
      cols_prefix.(i + 1) <- cols_prefix.(i) + (u.Unit_gen.col_hi - u.Unit_gen.col_lo))
    units.Unit_gen.units;
  let unit_lo = Array.make nnodes (-1) in
  let unit_hi = Array.make nnodes (-1) in
  List.iter
    (fun (node, idxs) ->
      match idxs with
      | [] -> ()
      | first :: _ ->
        unit_lo.(node) <- first;
        unit_hi.(node) <- List.fold_left max first idxs)
    units.Unit_gen.layer_units;
  let rows = Array.make nnodes 0 in
  let cols = Array.make nnodes 0 in
  let row_blocks = Array.make nnodes 0 in
  let mvms = Array.make nnodes 0 in
  List.iter
    (fun node ->
      let op = (Graph.layer model node).Layer.op in
      rows.(node) <- Layer.weight_rows op;
      cols.(node) <- Layer.weight_cols op;
      row_blocks.(node) <- ceil_div rows.(node) xbar.Compass_arch.Crossbar.rows;
      mvms.(node) <- Graph.mvms_of model node)
    (Graph.weighted_nodes model);
  let attached_rev =
    List.fold_left
      (fun acc node ->
        let layer = Graph.layer model node in
        if Layer.is_weighted layer.Layer.op then acc
        else match layer.Layer.op with Layer.Input _ -> acc | _ -> node :: acc)
      [] (Graph.topo_order model)
  in
  let attached = Array.of_list (List.rev attached_rev) in
  let attached_anchor = Array.map (fun n -> anchor.(n)) attached in
  let vector_ops =
    Array.init nnodes (fun node ->
        match (Graph.layer model node).Layer.op with
        | Layer.Input _ -> 0
        | _ -> Graph.vector_ops_of model node)
  in
  let succ = Array.init nnodes (fun node -> Graph.succs model node) in
  {
    unit_layer;
    cols_prefix;
    unit_lo;
    unit_hi;
    rows;
    cols;
    row_blocks;
    mvms;
    attached;
    attached_anchor;
    vector_ops;
    succ;
  }
