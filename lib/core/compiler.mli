(** Top-level COMPASS compiler driver (paper Fig. 3).

    [compile] runs the full flow — unit decomposition, validity map,
    partition search (GA or a baseline scheme), replication, mapping,
    estimation — and returns a plan; [schedule] lowers the plan to per-core
    instruction programs; [measure] executes them on the chip simulator and
    replays the DRAM trace through the LPDDR3 model. *)

type scheme =
  | Compass  (** GA-optimized partitioning (Algorithm 1). *)
  | Greedy
  | Layerwise

val scheme_of_string : string -> scheme
(** Case-insensitive.  Raises [Invalid_argument] on unknown names. *)

val scheme_to_string : scheme -> string

type t = {
  model : Compass_nn.Graph.t;
  chip : Compass_arch.Config.chip;
  batch : int;
  scheme : scheme;
  objective : Fitness.objective;
  units : Unit_gen.t;
  ctx : Dataflow.ctx;
  validity : Validity.t;
  group : Partition.t;
  perf : Estimator.perf;
  ga : Ga.result option;  (** Present for the [Compass] scheme. *)
}

val compile :
  ?objective:Fitness.objective ->
  ?ga_params:Ga.params ->
  ?jobs:int ->
  model:Compass_nn.Graph.t ->
  chip:Compass_arch.Config.chip ->
  batch:int ->
  scheme ->
  t
(** Raises [Invalid_argument] for models without weighted layers or
    non-positive batch sizes.  [?jobs] overrides [ga_params.jobs] — the
    worker-domain count of the GA search (the CLI's [-j]; the compiled
    plan is bit-identical for any value). *)

type measurement = {
  schedule : Scheduler.t;
  sim : Compass_isa.Sim.result;
  dram : Compass_dram.Controller.stats;
}

val schedule : ?chunks:int -> t -> Scheduler.t

val measure : ?chunks:int -> t -> measurement
(** Lower, simulate and replay the DRAM trace. *)

type on_chip_report = {
  on_chip_perf : Estimator.perf;
      (** Steady-state single-partition execution with weights pinned: no
          replacement phases at all (the PUMA/PIMCOMP execution model). *)
  on_chip_group : Partition.t;
}

val compile_on_chip :
  model:Compass_nn.Graph.t ->
  chip:Compass_arch.Config.chip ->
  batch:int ->
  (on_chip_report, string) result
(** The prior-compiler baseline: map everything at once or fail.  [Error]
    explains why (capacity or placement), reproducing Table II's "Prev."
    column as executable behaviour. *)

val supported_by_prior_compilers : Compass_nn.Graph.t -> Compass_arch.Config.chip -> bool
(** Whether an all-weights-on-chip compiler (PUMA / PIMCOMP) can map the
    model: total weight bytes within the chip capacity (Table II's "Prev."
    column). *)

val label : t -> string
(** "network-chip-batch" in the paper's naming, e.g. ["resnet18-S-16"]. *)

val pp_plan : Format.formatter -> t -> unit
(** Partition list with layers, replication and the estimated breakdown. *)
