(** Top-level COMPASS compiler driver (paper Fig. 3).

    [compile] runs the full flow — unit decomposition, validity map,
    partition search (GA or a baseline scheme), replication, mapping,
    estimation — and returns a plan; [schedule] lowers the plan to per-core
    instruction programs; [measure] executes them on the chip simulator and
    replays the DRAM trace through the LPDDR3 model. *)

type scheme =
  | Compass  (** GA-optimized partitioning (Algorithm 1). *)
  | Greedy
  | Layerwise
  | Optimal
      (** Exact DP over the valid-span DAG ({!Optimal}); accepts ["dp"] or
          ["optimal"] on the command line. *)

val scheme_of_string : string -> scheme
(** Case-insensitive.  Raises [Invalid_argument] on unknown names. *)

val scheme_to_string : scheme -> string

type t = {
  model : Compass_nn.Graph.t;
  chip : Compass_arch.Config.chip;
  batch : int;
  scheme : scheme;
  objective : Fitness.objective;
  units : Unit_gen.t;
  ctx : Dataflow.ctx;
  validity : Validity.t;
  group : Partition.t;
  perf : Estimator.perf;
  ga : Ga.result option;  (** Present for the [Compass] scheme. *)
  dp : Optimal.result option;
      (** Present for the [Optimal] scheme, and for [Compass] when compiled
          with [~warm_start:true]. *)
  faults : Compass_arch.Fault.t option;
      (** The fault scenario the plan was compiled (or repaired) under. *)
  budget_exhausted : bool;
      (** True iff a [?budget] expired during the search: the plan is the
          best candidate found before the deadline (still a valid,
          verifiable plan), not the full search's answer. *)
}

val compile :
  ?objective:Fitness.objective ->
  ?ga_params:Ga.params ->
  ?jobs:int ->
  ?warm_start:bool ->
  ?faults:Compass_arch.Fault.t ->
  ?budget:Compass_util.Budget.t ->
  ?supervision:Compass_util.Pool.supervision ->
  ?resume:Ga.checkpoint ->
  ?on_checkpoint:(Ga.checkpoint -> unit) ->
  model:Compass_nn.Graph.t ->
  chip:Compass_arch.Config.chip ->
  batch:int ->
  scheme ->
  t
(** Raises [Invalid_argument] for models without weighted layers or
    non-positive batch sizes.  [?jobs] overrides [ga_params.jobs] — the
    worker-domain count of the GA search (the CLI's [-j]; the compiled
    plan is bit-identical for any value).  [?warm_start] (default false)
    seeds the [Compass] GA with the DP optimum ({!Optimal.optimize} runs
    first and lands in [dp]); off, the GA is bit-identical to the unseeded
    search.  [?faults] compiles for a degraded chip: the validity map, GA
    search, replication and mapping all use per-core effective capacities,
    so the plan routes around dead and degraded cores.  Raises
    [Invalid_argument] when the scenario leaves some unit with no core big
    enough to host it.

    [?budget] makes the search phases (GA and DP) anytime: on expiry the
    plan is the best candidate found so far, with [budget_exhausted] set
    (see {!Ga.optimize} and {!Optimal.optimize} for the per-phase
    semantics; the front end and final evaluation always complete).
    [?resume] and [?on_checkpoint] thread GA checkpointing through the
    [Compass] scheme and are ignored by the others.  [?supervision]
    threads the worker-recovery policy to the GA's evaluation pool (see
    {!Ga.optimize}); evaluation is pure, so supervised recovery leaves
    the plan bit-identical.  Failpoint sites: [compiler.prepare],
    [compiler.compile]. *)

(** {1 Amortized front end}

    [prepare] runs the batch-independent front end (unit decomposition,
    validity map, span-table dataflow context) once per (model, chip,
    faults); [compile_prepared] then compiles any number of (batch,
    scheme) combinations against it.  [compile] is the two composed. *)

type prepared

val prepare :
  ?faults:Compass_arch.Fault.t ->
  model:Compass_nn.Graph.t ->
  chip:Compass_arch.Config.chip ->
  unit ->
  prepared
(** Raises like {!compile} for infeasible (model, chip, faults) triples. *)

val compile_prepared :
  ?objective:Fitness.objective ->
  ?ga_params:Ga.params ->
  ?jobs:int ->
  ?cache:Estimator.Span_cache.t ->
  ?warm_start:bool ->
  ?budget:Compass_util.Budget.t ->
  ?supervision:Compass_util.Pool.supervision ->
  ?resume:Ga.checkpoint ->
  ?on_checkpoint:(Ga.checkpoint -> unit) ->
  batch:int ->
  prepared ->
  scheme ->
  t
(** Compile one (batch, scheme) against a prepared front end.  [?cache]
    shares one span cache across several compilations of the same
    [prepared] and brand (same [batch] and options — i.e. same faults):
    the GA, the DP and the final evaluation all read and extend it, so
    e.g. a scheme comparison evaluates each distinct span once.  Plans are
    bit-identical with or without the cache.  Raises [Invalid_argument] on
    a cache brand mismatch. *)

type measurement = {
  schedule : Scheduler.t;
  sim : Compass_isa.Sim.result;
  dram : Compass_dram.Controller.stats;
}

val schedule : ?chunks:int -> ?abft:bool -> t -> Scheduler.t
(** [?abft] (default false) lowers with ABFT [Check] instructions (see
    {!Scheduler.build}); the plan itself — and therefore saved plan files
    and checkpoints — is unaffected. *)

val measure : ?chunks:int -> ?abft:bool -> t -> measurement
(** Lower, simulate and replay the DRAM trace. *)

(** {1 Plan repair under newly observed faults} *)

type repair_strategy =
  | Unchanged  (** Every span boundary survived; only the mapping moved. *)
  | Remapped of int  (** [n] spans were re-split locally. *)
  | Recompiled  (** Local repair degraded too much; full recompile ran. *)

type repair = {
  plan : t;  (** The repaired plan, carrying the fault scenario. *)
  strategy : repair_strategy;
  latency_before_s : float;  (** Estimated batch latency pre-fault. *)
  latency_after_s : float;  (** Estimated batch latency after repair. *)
  degradation : float;  (** [after / before] — the graceful-degradation cost. *)
}

val repair :
  ?ga_params:Ga.params ->
  ?recompile_above:float ->
  t ->
  faults:Compass_arch.Fault.t ->
  (repair, string) result
(** Adapt a compiled plan to newly observed [faults].  Spans still valid
    under the degraded validity map keep their boundaries and are merely
    re-mapped; broken spans are re-split with a greedy walk over the
    faulted map.  If the repaired latency exceeds
    [recompile_above] (default 1.5) times the original, a full
    [compile ~faults] runs instead (set [recompile_above] to [0.] to force
    it).  [Error] when the model cannot run on the degraded chip at all
    (some unit fits no surviving core). *)

type fault_run = {
  faulted_sim : Compass_isa.Sim.result;
      (** The original schedule executed with mid-run fault injection:
          victims fail-stop at [at_s] and their remaining work is dropped
          ([dropped_instructions]), but the chip drains without deadlock. *)
  repair : repair;
  repaired : measurement;  (** Full measurement of the repaired plan. *)
  recovery_latency_s : float;
      (** Drain time of the interrupted batch plus one repaired batch —
          the latency cost of fail-stop-and-repair for the affected
          inferences. *)
}

val measure_with_faults :
  ?chunks:int ->
  ?ga_params:Ga.params ->
  ?recompile_above:float ->
  t ->
  at_s:float ->
  faults:Compass_arch.Fault.t ->
  (fault_run, string) result
(** End-to-end fault drill: inject the scenario's dead cores into a
    simulation of [t]'s schedule at time [at_s], then {!repair} the plan
    and measure the repaired schedule.  Degraded (but alive) cores do not
    fail-stop mid-run; they only constrain the repair.  [Error] as for
    {!repair}. *)

type on_chip_report = {
  on_chip_perf : Estimator.perf;
      (** Steady-state single-partition execution with weights pinned: no
          replacement phases at all (the PUMA/PIMCOMP execution model). *)
  on_chip_group : Partition.t;
}

val compile_on_chip :
  model:Compass_nn.Graph.t ->
  chip:Compass_arch.Config.chip ->
  batch:int ->
  (on_chip_report, string) result
(** The prior-compiler baseline: map everything at once or fail.  [Error]
    explains why (capacity or placement), reproducing Table II's "Prev."
    column as executable behaviour. *)

val supported_by_prior_compilers : Compass_nn.Graph.t -> Compass_arch.Config.chip -> bool
(** Whether an all-weights-on-chip compiler (PUMA / PIMCOMP) can map the
    model: total weight bytes within the chip capacity (Table II's "Prev."
    column). *)

val label : t -> string
(** "network-chip-batch" in the paper's naming, e.g. ["resnet18-S-16"]. *)

val pp_plan : Format.formatter -> t -> unit
(** Partition list with layers, replication and the estimated breakdown. *)
