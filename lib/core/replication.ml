open Compass_arch

type t = {
  per_layer : (Compass_nn.Graph.node * int) list;
  tiles_used : int;
  spare_tiles : int;
}

let replication_of t node =
  Option.value ~default:1 (List.assoc_opt node t.per_layer)

let unit_replication t units i =
  replication_of t (Unit_gen.layer_of_unit units i)

let max_replication t = List.fold_left (fun acc (_, r) -> max acc r) 1 t.per_layer

let allocate ?faults ctx ~batch ~start_ ~stop =
  if batch < 1 then invalid_arg "Replication.allocate: batch < 1";
  let units = Dataflow.units ctx in
  let chip = units.Unit_gen.chip in
  let budget =
    match faults with
    | None -> Config.total_macros chip
    | Some f ->
      Fault.total_capacity f ~macros_per_core:chip.Config.core.Config.macros_per_core
  in
  let layers = Array.of_list (Perf_model.span_layers ctx ~start_ ~stop) in
  let n = Array.length layers in
  let rep = Array.make n 1 in
  let tiles l = layers.(l).Perf_model.tiles_in_span in
  let used = ref (Array.fold_left (fun acc p -> acc + p.Perf_model.tiles_in_span) 0 layers) in
  let stage l = Perf_model.stage_time_s layers.(l) ~replication:rep.(l) in
  (* Marginal cost of one more replica: its macros must be programmed at
     every weight replacement; cores program in parallel, so the added time
     is roughly the replica's rows spread across the chip. *)
  let fbatch = float_of_int batch in
  let write_cost l =
    float_of_int (tiles l)
    *. Compass_arch.Crossbar.write_latency_s chip.Config.crossbar
    /. float_of_int chip.Config.cores
  in
  let compute_saving l =
    let r = float_of_int rep.(l) in
    fbatch
    *. float_of_int layers.(l).Perf_model.mvms
    *. layers.(l).Perf_model.op_time_s
    *. ((1. /. r) -. (1. /. (r +. 1.)))
  in
  (* Greedy: replicate the current bottleneck while capacity allows, the
     bottleneck can still improve, and the batch amortizes the extra
     programming (the paper's joint replacement/replication trade-off). *)
  let incremented = ref [] in
  let rec grow () =
    let bottleneck = ref (-1) in
    for l = 0 to n - 1 do
      if layers.(l).Perf_model.mvms > 1
         && rep.(l) < Perf_model.max_useful_replication layers.(l)
         && tiles l > 0
         && !used + tiles l <= budget
         && compute_saving l > write_cost l
      then
        if !bottleneck < 0 || stage l > stage !bottleneck then bottleneck := l
    done;
    if !bottleneck >= 0 then begin
      (* Only replicating the true pipeline bottleneck helps; if the worst
         replicable stage is not the global bottleneck, stop. *)
      let global_worst = ref 0. in
      for l = 0 to n - 1 do
        global_worst := max !global_worst (stage l)
      done;
      if stage !bottleneck >= !global_worst *. (1. -. 1e-9) then begin
        let l = !bottleneck in
        rep.(l) <- rep.(l) + 1;
        used := !used + tiles l;
        incremented := l :: !incremented;
        grow ()
      end
    end
  in
  if n > 0 then grow ();
  (* Bin-packing may fail even under the tile budget (fragmentation): undo
     the most recent increments until placement succeeds. *)
  let per_layer () =
    List.mapi (fun l p -> (p.Perf_model.node, rep.(l))) (Array.to_list layers)
  in
  let feasible () =
    let alloc = { per_layer = per_layer (); tiles_used = !used; spare_tiles = 0 } in
    match
      Mapping.pack ?faults units ~start_ ~stop ~replication:(fun i ->
          unit_replication alloc units i)
    with
    | Ok _ -> true
    | Error _ -> false
  in
  let rec shrink () =
    if not (feasible ()) then
      match !incremented with
      | [] -> () (* replication 1 must fit: the span came from the validity map *)
      | l :: rest ->
        rep.(l) <- rep.(l) - 1;
        used := !used - tiles l;
        incremented := rest;
        shrink ()
  in
  shrink ();
  { per_layer = per_layer (); tiles_used = !used; spare_tiles = budget - !used }

let pp ctx ppf t =
  let model = (Dataflow.units ctx).Unit_gen.model in
  let line (node, r) =
    let l = Compass_nn.Graph.layer model node in
    Format.fprintf ppf "  %-18s x%d@." l.Compass_nn.Layer.name r
  in
  Format.fprintf ppf "replication (%d tiles used, %d spare):@." t.tiles_used t.spare_tiles;
  List.iter line t.per_layer
