open Compass_arch

type t = {
  per_layer : (Compass_nn.Graph.node * int) list;
  tiles_used : int;
  spare_tiles : int;
}

let replication_of t node =
  Option.value ~default:1 (List.assoc_opt node t.per_layer)

let unit_replication t units i =
  replication_of t (Unit_gen.layer_of_unit units i)

let max_replication t = List.fold_left (fun acc (_, r) -> max acc r) 1 t.per_layer

let allocate_packed ?faults ?layers ctx ~batch ~start_ ~stop =
  if batch < 1 then invalid_arg "Replication.allocate: batch < 1";
  let units = Dataflow.units ctx in
  let chip = units.Unit_gen.chip in
  let budget =
    match faults with
    | None -> Config.total_macros chip
    | Some f ->
      Fault.total_capacity f ~macros_per_core:chip.Config.core.Config.macros_per_core
  in
  let layers =
    Array.of_list
      (match layers with
      | Some l -> l
      | None -> Perf_model.span_layers ctx ~start_ ~stop)
  in
  let n = Array.length layers in
  let rep = Array.make n 1 in
  let tiles l = layers.(l).Perf_model.tiles_in_span in
  let used = ref (Array.fold_left (fun acc p -> acc + p.Perf_model.tiles_in_span) 0 layers) in
  (* Per-layer constants of the greedy loop, hoisted out of the O(n) scans.
     Each is the exact left-associated prefix of the original expression, so
     the floats (and therefore every greedy decision) are unchanged. *)
  let fbatch = float_of_int batch in
  let wl = Compass_arch.Crossbar.write_latency_s chip.Config.crossbar in
  let fcores = float_of_int chip.Config.cores in
  (* stage l = mvms * op_time / rep; the numerator is constant, and the
     value only changes when [rep.(l)] does, so both it and the replica's
     marginal saving are cached per layer and refreshed on increment.  The
     greedy scans below then compare cached floats instead of re-dividing. *)
  let stage_num =
    Array.map
      (fun p -> float_of_int p.Perf_model.mvms *. p.Perf_model.op_time_s)
      layers
  in
  let stage_arr = Array.map (fun num -> num /. 1.) stage_num in
  let stage l = stage_arr.(l) in
  (* Marginal cost of one more replica: its macros must be programmed at
     every weight replacement; cores program in parallel, so the added time
     is roughly the replica's rows spread across the chip. *)
  let write_cost_arr =
    Array.init n (fun l -> float_of_int (tiles l) *. wl /. fcores)
  in
  let write_cost l = write_cost_arr.(l) in
  let saving_num =
    Array.map
      (fun p -> fbatch *. float_of_int p.Perf_model.mvms *. p.Perf_model.op_time_s)
      layers
  in
  let saving_at l r =
    let r = float_of_int r in
    saving_num.(l) *. ((1. /. r) -. (1. /. (r +. 1.)))
  in
  let saving_arr = Array.init n (fun l -> saving_at l 1) in
  let compute_saving l = saving_arr.(l) in
  let set_rep l r =
    rep.(l) <- r;
    stage_arr.(l) <- stage_num.(l) /. float_of_int r;
    saving_arr.(l) <- saving_at l r
  in
  let max_rep = Array.map Perf_model.max_useful_replication layers in
  (* Greedy: replicate the current bottleneck while capacity allows, the
     bottleneck can still improve, and the batch amortizes the extra
     programming (the paper's joint replacement/replication trade-off). *)
  let incremented = ref [] in
  let rec grow () =
    let bottleneck = ref (-1) in
    for l = 0 to n - 1 do
      if layers.(l).Perf_model.mvms > 1
         && rep.(l) < max_rep.(l)
         && tiles l > 0
         && !used + tiles l <= budget
         && compute_saving l > write_cost l
      then
        if !bottleneck < 0 || stage l > stage !bottleneck then bottleneck := l
    done;
    if !bottleneck >= 0 then begin
      (* Only replicating the true pipeline bottleneck helps; if the worst
         replicable stage is not the global bottleneck, stop. *)
      let global_worst = ref 0. in
      for l = 0 to n - 1 do
        global_worst := max !global_worst (stage l)
      done;
      if stage !bottleneck >= !global_worst *. (1. -. 1e-9) then begin
        let l = !bottleneck in
        set_rep l (rep.(l) + 1);
        used := !used + tiles l;
        incremented := l :: !incremented;
        grow ()
      end
    end
  in
  if n > 0 then grow ();
  (* Bin-packing may fail even under the tile budget (fragmentation): undo
     the most recent increments until placement succeeds. *)
  let per_layer () =
    List.mapi (fun l p -> (p.Perf_model.node, rep.(l))) (Array.to_list layers)
  in
  (* Same replication function [unit_replication] would compute from the
     assoc list, as a per-node array lookup (absent nodes replicate 1x). *)
  let nnodes = Compass_nn.Graph.node_count units.Unit_gen.model in
  let try_pack () =
    let rep_of_node = Array.make nnodes 1 in
    Array.iteri (fun l p -> rep_of_node.(p.Perf_model.node) <- rep.(l)) layers;
    Mapping.pack ?faults units ~start_ ~stop ~replication:(fun i ->
        rep_of_node.(Unit_gen.layer_of_unit units i))
  in
  let rec shrink () =
    match try_pack () with
    | Ok m -> Ok m
    | Error _ as e -> (
      match !incremented with
      | [] -> e (* replication 1 must fit: the span came from the validity map *)
      | l :: rest ->
        set_rep l (rep.(l) - 1);
        used := !used - tiles l;
        incremented := rest;
        shrink ())
  in
  let packed = shrink () in
  ({ per_layer = per_layer (); tiles_used = !used; spare_tiles = budget - !used }, packed)

let allocate ?faults ?layers ctx ~batch ~start_ ~stop =
  fst (allocate_packed ?faults ?layers ctx ~batch ~start_ ~stop)

let pp ctx ppf t =
  let model = (Dataflow.units ctx).Unit_gen.model in
  let line (node, r) =
    let l = Compass_nn.Graph.layer model node in
    Format.fprintf ppf "  %-18s x%d@." l.Compass_nn.Layer.name r
  in
  Format.fprintf ppf "replication (%d tiles used, %d spare):@." t.tiles_used t.spare_tiles;
  List.iter line t.per_layer
