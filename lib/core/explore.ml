type point = {
  chip : Compass_arch.Config.chip;
  batch : int;
  plan : Compiler.t;
  throughput_per_s : float;
  energy_per_sample_j : float;
  edp_j_s : float;
  capacity_mb : float;
}

let sweep ?objective ?ga_params ?jobs ?budget ?supervision ~model ~chips ~batches () =
  let expired () =
    match budget with None -> false | Some b -> Compass_util.Budget.expired b
  in
  List.concat_map
    (fun chip ->
      (* The front end (units, validity map, span table) depends only on
         the chip, so it is built once per chip and shared by every batch
         point.  Under an expired budget, remaining combinations are
         skipped entirely — already-compiled points are kept, so the sweep
         is anytime at point granularity (each point's GA is additionally
         anytime on its own via the same budget). *)
      if expired () then []
      else
        let prepared = Compiler.prepare ~model ~chip () in
        List.filter_map
          (fun batch ->
            if expired () then None
            else
              let plan =
                Compass_util.Trace.with_span "explore.point"
                  ~args:
                    [
                      ("chip", chip.Compass_arch.Config.label);
                      ("batch", string_of_int batch);
                    ]
                @@ fun () ->
                Compass_util.Failpoint.guard "explore.point";
                Compiler.compile_prepared ?objective ?ga_params ?jobs ?budget
                  ?supervision ~batch prepared Compiler.Compass
              in
              Some
                {
                  chip;
                  batch;
                  plan;
                  throughput_per_s = plan.Compiler.perf.Estimator.throughput_per_s;
                  energy_per_sample_j = plan.Compiler.perf.Estimator.energy_per_sample_j;
                  edp_j_s = plan.Compiler.perf.Estimator.edp_j_s;
                  capacity_mb =
                    Compass_arch.Config.capacity_bytes chip /. Compass_util.Units.mib;
                })
          batches)
    chips

let dominates a b =
  a.throughput_per_s >= b.throughput_per_s
  && a.energy_per_sample_j <= b.energy_per_sample_j
  && (a.throughput_per_s > b.throughput_per_s
     || a.energy_per_sample_j < b.energy_per_sample_j)

let pareto points =
  let keep p = not (List.exists (fun q -> dominates q p) points) in
  let frontier = List.filter keep points in
  (* Drop duplicates on the two objectives, keeping the first. *)
  let rec dedup seen = function
    | [] -> []
    | p :: rest ->
      let key = (p.throughput_per_s, p.energy_per_sample_j) in
      if List.mem key seen then dedup seen rest else p :: dedup (key :: seen) rest
  in
  List.sort
    (fun a b -> compare a.energy_per_sample_j b.energy_per_sample_j)
    (dedup [] frontier)

let cheapest_meeting ~throughput_per_s points =
  let ok = List.filter (fun p -> p.throughput_per_s >= throughput_per_s) points in
  let better a b =
    compare
      (a.capacity_mb, a.energy_per_sample_j)
      (b.capacity_mb, b.energy_per_sample_j)
  in
  match List.sort better ok with [] -> None | p :: _ -> Some p

let points_table points =
  let open Compass_util in
  let table =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "chip"; "capacity(MB)"; "batch"; "throughput"; "energy/inf"; "EDP(J.s)" ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          p.chip.Compass_arch.Config.label;
          Printf.sprintf "%.3f" p.capacity_mb;
          string_of_int p.batch;
          Printf.sprintf "%.1f/s" p.throughput_per_s;
          Units.energy_to_string p.energy_per_sample_j;
          Printf.sprintf "%.3g" p.edp_j_s;
        ])
    points;
  table
