(** Functional validation of partitioned execution (paper Fig. 2).

    Executes a model partition by partition, exactly as the compiled plan
    would: each partition computes only the nodes homed in it, reading
    boundary tensors from a simulated global memory and writing its own
    exit tensors back.  Because the arithmetic is the reference [Tensor]
    implementation, the final output must equal whole-model execution
    bit-for-bit — proving the partitioning transformation (including
    multi-endpoint residual/fire-module cuts) preserves the network's
    function.

    The observed global-memory traffic is also checked against
    [Dataflow.span_io]'s load/store sets in the test suite. *)

type trace_entry = {
  partition : int;
  node : Compass_nn.Graph.node;
  direction : [ `Load | `Store ];
}

type result = {
  output : Compass_nn.Tensor.t;
  partitions_executed : int;
  traffic : trace_entry list;  (** In execution order. *)
  peak_live_tensors : int;
      (** Largest number of tensors simultaneously resident in global
          memory. *)
}

val run :
  ?engine:Compass_nn.Executor.engine ->
  Dataflow.ctx ->
  Partition.t ->
  Compass_nn.Executor.weights ->
  Compass_nn.Tensor.t ->
  result
(** Replays the plan with the given kernel engine (default
    {!Compass_nn.Executor.Gemm}; both engines produce bit-identical
    tensors).  One im2col scratch buffer is shared across the whole
    replay, and each partition body runs under a
    ["partition_exec.partition"] trace span.

    Raises [Invalid_argument] if the group does not cover the
    decomposition, weights are missing, or the model has multiple
    inputs/outputs. *)

val matches_reference :
  ?engine:Compass_nn.Executor.engine ->
  Dataflow.ctx ->
  Partition.t ->
  Compass_nn.Executor.weights ->
  Compass_nn.Tensor.t ->
  bool
(** [run] output equals [Executor.output] (same engine) within 1e-9. *)
