open Compass_nn
open Compass_isa

type t = {
  programs : Program.t list;
  weight_region_bytes : int;
  activation_high_water_bytes : int;
  instruction_count : int;
  spans : Partition.span list;
}

type span_plan = {
  span : Partition.span;
  io : Dataflow.partition_io;
  replication : Replication.t;
  mapping : Mapping.t;
  layers : Perf_model.layer_perf list;
}

let ceil_div a b = (a + b - 1) / b

(* Core hosting the replica-0 copy of a unit. *)
let unit_core plan i = Mapping.core_of_unit plan.mapping ~unit_index:i ~replica:0

(* Primary core producing a node inside a span: for weighted nodes the core
   of its first in-span unit; for attached nodes the core of their anchor
   unit's layer. *)
let producer_core ctx plan node =
  let units = Dataflow.units ctx in
  let s = plan.span in
  let in_span i = i >= s.Partition.start_ && i < s.Partition.stop in
  let first_in_span n =
    match List.filter in_span (Unit_gen.units_of_layer units n) with
    | i :: _ -> Some i
    | [] -> None
  in
  let anchor_owner () =
    let a = Dataflow.home_unit ctx node in
    if in_span a then Some a else None
  in
  let unit_opt =
    if List.mem_assoc node units.Unit_gen.layer_units then first_in_span node
    else anchor_owner ()
  in
  Option.map (unit_core plan) unit_opt

(* All (core, share) pairs producing a node's in-span output chunk, share
   summing to the in-span fraction. *)
let producer_shares ctx plan node =
  let units = Dataflow.units ctx in
  let model = units.Unit_gen.model in
  let s = plan.span in
  let in_span i = i >= s.Partition.start_ && i < s.Partition.stop in
  if List.mem_assoc node units.Unit_gen.layer_units then
    let idxs = List.filter in_span (Unit_gen.units_of_layer units node) in
    List.map
      (fun i ->
        let u = units.Unit_gen.units.(i) in
        let f =
          if u.Unit_gen.partial_sum then
            let rows = Layer.weight_rows (Graph.layer model node).Layer.op in
            Unit_gen.col_fraction u model
            *. float_of_int (u.Unit_gen.row_hi - u.Unit_gen.row_lo)
            /. float_of_int rows
          else Unit_gen.col_fraction u model
        in
        (unit_core plan i, f))
      idxs
  else
    match producer_core ctx plan node with
    | Some c -> [ (c, 1.) ]
    | None -> []

(* Primary cores of the layers consuming tensor [node] inside the span. *)
let consumer_cores ctx plan node =
  let model = (Dataflow.units ctx).Unit_gen.model in
  let consumers =
    List.filter
      (fun v ->
        List.mem v plan.io.Dataflow.weighted_layers
        || List.mem v plan.io.Dataflow.attached)
      (Graph.succs model node)
  in
  let cores = List.filter_map (fun v -> producer_core ctx plan v) consumers in
  match List.sort_uniq compare cores with
  | [] -> (
    (* Consumers attach elsewhere (e.g. a split layer chunk): fall back to
       the span's first busy core. *)
    match
      Array.to_list plan.mapping.Mapping.tiles_used
      |> List.mapi (fun c used -> (c, used))
      |> List.filter (fun (_, used) -> used > 0)
    with
    | (c, _) :: _ -> [ c ]
    | [] -> [ 0 ])
  | cores -> cores

let build ?faults ?(abft = false) ctx group ~batch ?(chunks = 4) () =
  if batch < 1 then invalid_arg "Scheduler.build: batch < 1";
  Compass_util.Trace.with_span "schedule.build"
    ~args:[ ("batch", string_of_int batch) ]
  @@ fun () ->
  let units = Dataflow.units ctx in
  if Partition.total_units group <> Unit_gen.unit_count units then
    invalid_arg "Scheduler.build: group does not cover the decomposition";
  let chunks = max 1 (min chunks batch) in
  let chip = units.Unit_gen.chip in
  let ncores = chip.Compass_arch.Config.cores in
  let model = units.Unit_gen.model in
  let fbatch = float_of_int batch in
  (* Pass 1: plan every span. *)
  let plans =
    List.map
      (fun (s : Partition.span) ->
        let start_ = s.Partition.start_ and stop = s.Partition.stop in
        let replication = Replication.allocate ?faults ctx ~batch ~start_ ~stop in
        let mapping =
          match
            Mapping.pack ?faults units ~start_ ~stop
              ~replication:(Replication.unit_replication replication units)
          with
          | Ok m -> m
          | Error msg -> invalid_arg ("Scheduler.build: " ^ msg)
        in
        {
          span = s;
          io = Dataflow.span_io ctx ~start_ ~stop;
          replication;
          mapping;
          layers = Perf_model.span_layers ctx ~start_ ~stop;
        })
      (Partition.spans group)
  in
  let plan_arr = Array.of_list plans in
  let nspans = Array.length plan_arr in
  (* Weight region: bump allocation, one blob per (span, core). *)
  let weight_cursor = ref 0 in
  (* Activation arena sits above the weight region; sized generously and
     checked against DRAM capacity. *)
  let total_weights =
    int_of_float (Unit_gen.span_weight_bytes units 0 (Unit_gen.unit_count units))
  in
  let arena_base = (total_weights / 4096 * 4096) + 4096 in
  let act_alloc =
    Memory_alloc.create ~base:arena_base ~capacity:(1 lsl 30) ()
  in
  (* Last span loading each tensor, for liveness. *)
  let last_consumer = Hashtbl.create 64 in
  Array.iteri
    (fun q plan ->
      List.iter (fun (u, _) -> Hashtbl.replace last_consumer u q) plan.io.Dataflow.loads)
    plan_arr;
  let tensor_addr = Hashtbl.create 64 in
  let addr_of_tensor node bytes =
    match Hashtbl.find_opt tensor_addr node with
    | Some a -> a
    | None ->
      let a =
        Memory_alloc.alloc act_alloc ~bytes
          ~tag:(Graph.layer model node).Layer.name
      in
      Hashtbl.add tensor_addr node a;
      a
  in
  (* Per-core instruction buffers (reversed). *)
  let buffers = Array.make ncores [] in
  let emit c instr = buffers.(c) <- instr :: buffers.(c) in
  let instruction_count = ref 0 in
  let emitc c instr =
    incr instruction_count;
    emit c instr
  in
  let channel = ref 0 in
  let fresh_channel () =
    incr channel;
    !channel
  in
  let send_recv ~src ~dst ~bytes =
    if src <> dst && bytes > 0. then begin
      let ch = fresh_channel () in
      emitc src (Instr.Send { bytes; dst; channel = ch });
      emitc dst (Instr.Recv { bytes; src; channel = ch })
    end
  in
  (* On-chip handoffs: (tensor, consumer span) -> producer sends recorded at
     producer-span emission; receivers emitted at consumer-span loads. *)
  let spills node = Dataflow.spills_to_dram ctx ~batch node in
  (* Emit one span. *)
  let emit_span p plan =
    let s = plan.span in
    (* 1. Weight writes: per core, before the barrier (overlaps other cores'
       previous-partition drain). *)
    Array.iteri
      (fun c assignments ->
        if assignments <> [] then begin
          let macro_count = plan.mapping.Mapping.tiles_used.(c) in
          (* Broadcast: only replica-0 copies fetch bytes from DRAM. *)
          let bytes =
            List.fold_left
              (fun acc (a : Mapping.assignment) ->
                if a.Mapping.replica = 0 then
                  acc +. units.Unit_gen.units.(a.Mapping.unit_index).Unit_gen.weight_bytes
                else acc)
              0. assignments
          in
          let addr = !weight_cursor in
          weight_cursor := !weight_cursor + max 64 (int_of_float bytes / 64 * 64 + 64);
          emitc c
            (Instr.Weight_write
               { macro_count; bytes; addr; tag = Printf.sprintf "weights:P%d" p })
        end)
      plan.mapping.Mapping.cores;
    (* 2. Barrier: loads of this span happen after stores of the previous. *)
    for c = 0 to ncores - 1 do
      emitc c (Instr.Sync { token = p; parties = ncores })
    done;
    (* 3. Entry tensors. *)
    List.iter
      (fun (node, bytes) ->
        let batch_bytes = fbatch *. bytes in
        let targets = consumer_cores ctx plan node in
        let primary = List.hd targets in
        if spills node then begin
          let addr = addr_of_tensor node (int_of_float (fbatch *. Dataflow.tensor_bytes ctx node)) in
          emitc primary
            (Instr.Load
               {
                 bytes = batch_bytes;
                 addr;
                 tag = Printf.sprintf "act:%s" (Graph.layer model node).Layer.name;
               })
        end;
        (* On-chip tensors arrive as Send/Recv pairs emitted by the
           producing span's store step.  Redistribute to the other
           consuming cores over the bus. *)
        List.iter (fun c -> send_recv ~src:primary ~dst:c ~bytes:batch_bytes) (List.tl targets))
      plan.io.Dataflow.loads;
    (* 4. Compute, sliced in chunks for pipelining.  Macros co-located on a
       core fire in lockstep (a PUMA-style MVM engages the whole matrix
       unit), so per chunk each core gets one fused Mvm whose count is the
       deepest per-replica pixel stream it hosts and whose tile width
       preserves the total macro-operation count. *)
    let layer_rep node = Replication.replication_of plan.replication node in
    for k = 0 to chunks - 1 do
      let chunk_samples = (batch + chunks - 1 - k) / chunks in
      if chunk_samples > 0 then begin
        let fchunk = float_of_int chunk_samples in
        (* Intra-span input traffic: producer primary -> consumer primary. *)
        List.iter
          (fun (lp : Perf_model.layer_perf) ->
            let node = lp.Perf_model.node in
            let primary = Option.value ~default:0 (producer_core ctx plan node) in
            List.iter
              (fun u ->
                match producer_core ctx plan u with
                | Some src when src <> primary ->
                  let bytes =
                    fchunk *. Dataflow.tensor_bytes ctx u
                    *. Dataflow.layer_fraction_in ctx u ~start_:s.Partition.start_
                         ~stop:s.Partition.stop
                  in
                  send_recv ~src ~dst:primary ~bytes
                | Some _ | None -> ())
              (Graph.preds model node))
          plan.layers;
        (* Fused MVM per core. *)
        let per_replica_of = Hashtbl.create 8 in
        List.iter
          (fun (lp : Perf_model.layer_perf) ->
            let r = layer_rep lp.Perf_model.node in
            Hashtbl.replace per_replica_of lp.Perf_model.node
              (ceil_div (chunk_samples * lp.Perf_model.mvms) r))
          plan.layers;
        Array.iteri
          (fun c assignments ->
            let deepest = ref 0 and total_ops = ref 0 in
            List.iter
              (fun (a : Mapping.assignment) ->
                let u = units.Unit_gen.units.(a.Mapping.unit_index) in
                match Hashtbl.find_opt per_replica_of u.Unit_gen.layer with
                | Some count ->
                  deepest := max !deepest count;
                  total_ops := !total_ops + (count * a.Mapping.tiles)
                | None -> ())
              assignments;
            if !deepest > 0 then
              emitc c
                (Instr.Mvm
                   {
                     count = !deepest;
                     tiles = max 1 (ceil_div !total_ops !deepest);
                     tag = Printf.sprintf "P%d.c%d" p k;
                   }))
          plan.mapping.Mapping.cores;
        (* VFU merge per layer on its primary core. *)
        List.iter
          (fun (lp : Perf_model.layer_perf) ->
            let node = lp.Perf_model.node in
            let primary = Option.value ~default:0 (producer_core ctx plan node) in
            let vfu_ops = chunk_samples * lp.Perf_model.mvms * lp.Perf_model.vfu_ops_per_mvm in
            if vfu_ops > 0 then emitc primary (Instr.Vfu { ops = vfu_ops }))
          plan.layers;
        (* ABFT checksum verification per layer, after the merge on the
           same primary core: results are validated before downstream
           layers consume them. *)
        if abft then
          List.iter
            (fun (lp : Perf_model.layer_perf) ->
              let node = lp.Perf_model.node in
              let primary = Option.value ~default:0 (producer_core ctx plan node) in
              let ops =
                chunk_samples * lp.Perf_model.mvms
                * Abft.check_ops_per_mvm ~macro_ops:lp.Perf_model.macro_ops_per_mvm
              in
              if ops > 0 then
                emitc primary (Instr.Check { ops; tag = Printf.sprintf "P%d.c%d" p k }))
            plan.layers;
        (* Attached non-crossbar work, charged to its anchor core. *)
        List.iter
          (fun node ->
            let ops = chunk_samples * Graph.vector_ops_of model node in
            if ops > 0 then
              let c = Option.value ~default:0 (producer_core ctx plan node) in
              emitc c (Instr.Vfu { ops }))
          plan.io.Dataflow.attached
      end
    done;
    (* 5. Exit tensors: each producing core stores/sends its share. *)
    List.iter
      (fun (node, bytes) ->
        let batch_bytes = fbatch *. bytes in
        let shares = producer_shares ctx plan node in
        let total_share = List.fold_left (fun acc (_, f) -> acc +. f) 0. shares in
        if spills node then begin
          let addr =
            addr_of_tensor node (int_of_float (fbatch *. Dataflow.tensor_bytes ctx node))
          in
          let offset = ref 0 in
          List.iter
            (fun (c, f) ->
              let b = batch_bytes *. (f /. max total_share 1e-12) in
              if b > 0.5 then begin
                emitc c
                  (Instr.Store
                     {
                       bytes = b;
                       addr = addr + !offset;
                       tag = Printf.sprintf "act:%s" (Graph.layer model node).Layer.name;
                     });
                offset := !offset + int_of_float b
              end)
            shares
        end
        else
          (* On-chip handoff: send shares to every later consuming span. *)
          for q = p + 1 to nspans - 1 do
            let plq = plan_arr.(q) in
            if List.mem_assoc node plq.io.Dataflow.loads then begin
              let targets = consumer_cores ctx plq node in
              let primary = List.hd targets in
              List.iter
                (fun (c, f) ->
                  let b = batch_bytes *. (f /. max total_share 1e-12) in
                  send_recv ~src:c ~dst:primary ~bytes:b)
                shares
            end
          done)
      plan.io.Dataflow.stores;
    (* 6. Free tensors whose last consumer was this span. *)
    Hashtbl.iter
      (fun node q ->
        if q = p then
          match Hashtbl.find_opt tensor_addr node with
          | Some addr ->
            Memory_alloc.free act_alloc addr;
            Hashtbl.remove tensor_addr node
          | None -> ())
      (Hashtbl.copy last_consumer)
  in
  Array.iteri emit_span plan_arr;
  let programs =
    List.init ncores (fun c -> Program.make ~core_id:c (List.rev buffers.(c)))
  in
  {
    programs;
    weight_region_bytes = !weight_cursor;
    activation_high_water_bytes = Memory_alloc.high_water_bytes act_alloc;
    instruction_count = !instruction_count;
    spans = Partition.spans group;
  }

let simulate ctx t =
  Compass_util.Trace.with_span "sim.run" @@ fun () ->
  Sim.run (Dataflow.units ctx).Unit_gen.chip t.programs

let dram_stats _ctx (result : Sim.result) =
  Compass_util.Trace.with_span "dram.replay" @@ fun () ->
  Compass_dram.Dram.simulate result.Sim.dram_trace
