(** Self-healing execution: runtime fault detection and bounded-escalation
    recovery.

    Executes a compiled plan functionally (like [Partition_exec]) on
    weights quantized to the chip's cell precision, with the fault sites
    of the plan's scenario ({!Inject}) physically corrupting resident
    codes.  Before each layer's MVM an ABFT checksum pass ({!Abft})
    verifies every partition unit; on a mismatch the policy engine
    escalates:

    + {b retry} with exponential backoff — transient stuck-at cells clear
      on re-read;
    + {b remap} — retire the faulty core (localized via the plan's
      replica-0 mapping) and adapt the plan with [Compiler.repair], so
      the unit's weights are reprogrammed on spare capacity and read
      clean;
    + {b degrade} — flag the output but keep serving, when no spare
      capacity remains or the request deadline expired.

    Because detection is exact integer comparison and recovery restores
    pristine codes, a recovered run is {e bit-identical} to the
    fault-free reference under any single persistent cell fault, and a
    clean run reports zero detections.  All events surface as
    [recovery.*] metrics counters and [recovery.*] trace spans. *)

type policy = {
  max_retries : int;  (** Retry attempts per faulty layer (default 2). *)
  max_remaps : int;  (** Core retirements per request (default 4). *)
  backoff_s : float;  (** Initial backoff; doubles per attempt. *)
  allow_remap : bool;  (** False confines recovery to retry + degrade. *)
  budget : Compass_util.Budget.t option;
      (** Per-request deadline: when expired, retries and remaps stop and
          the run degrades instead of blocking the request.  Deadlines
          read the budget's own injectable clock — recovery never reads
          the wall clock directly. *)
  sleep : float -> unit;
      (** Invoked with each retry's backoff interval.  Default [ignore]:
          backoff is {e simulated} (accumulated in [backoff_total_s]) and
          recovery never blocks on [Unix.sleepf], so runs under a fake
          clock are deterministic and wall-time-free — a regression test
          pins this.  Inject a real sleep to actually wait. *)
}

val default_policy : policy

type action =
  | Detected of {
      node : Compass_nn.Graph.node;
      unit_index : int;
      col : int;
      core : int;  (** Localized faulty core under the current mapping. *)
    }
  | Retried of {
      node : Compass_nn.Graph.node;
      attempt : int;
      backoff_s : float;
    }
  | Remapped of {
      core : int;  (** Core retired by the repair. *)
      strategy : Compiler.repair_strategy;
    }
  | Degraded of { node : Compass_nn.Graph.node }

type outcome =
  | Clean  (** No detection fired. *)
  | Healed  (** Faults detected; output equals the fault-free run. *)
  | Degraded_output  (** Some corruption could not be recovered. *)

type report = {
  output : Compass_nn.Tensor.t;
  reference : Compass_nn.Tensor.t;  (** Fault-free run of the same path. *)
  outcome : outcome;
  bit_identical : bool;  (** [output = reference] exactly (eps 0). *)
  checks : int;  (** Per-unit ABFT verifications executed. *)
  detections : int;
  retries : int;
  remaps : int;
  degraded_layers : int;
  backoff_total_s : float;  (** Accumulated (simulated) backoff wait. *)
  actions : action list;  (** Escalation log in order. *)
  plan : Compiler.t;  (** Final plan — repaired if remaps happened. *)
  sites : Inject.site list;  (** Realized fault sites. *)
}

val run :
  ?policy:policy ->
  ?seed:int ->
  ?faults:Compass_arch.Fault.t ->
  weights:Compass_nn.Executor.weights ->
  input:Compass_nn.Tensor.t ->
  Compiler.t ->
  report
(** [run ~weights ~input plan] executes one inference under the fault
    scenario (default: the plan's own; sites realized from [seed],
    default 0).  Raises [Invalid_argument] on missing weights or a model
    without exactly one input/output. *)

val retire :
  Compass_arch.Fault.t option -> cores:int -> int -> Compass_arch.Fault.t
(** [retire faults ~cores victim] augments a scenario (or an all-healthy
    one) with [victim] marked dead, preserving endurance and cell-fault
    settings — the scenario a remap hands to [Compiler.repair]. *)

val pp_action : Format.formatter -> action -> unit
val pp_report : Format.formatter -> report -> unit
