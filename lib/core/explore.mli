(** Design-space exploration on top of the compiler.

    The paper evaluates three fixed chips; a compiler this fast (fractions
    of a second per compile) also supports the inverse question — which
    chip/batch configuration meets a target most efficiently.  This module
    sweeps configurations, compiles each with COMPASS, and extracts Pareto
    frontiers over (throughput, energy per inference). *)

type point = {
  chip : Compass_arch.Config.chip;
  batch : int;
  plan : Compiler.t;
  throughput_per_s : float;
  energy_per_sample_j : float;
  edp_j_s : float;
  capacity_mb : float;
}

val sweep :
  ?objective:Fitness.objective ->
  ?ga_params:Ga.params ->
  ?jobs:int ->
  ?budget:Compass_util.Budget.t ->
  ?supervision:Compass_util.Pool.supervision ->
  model:Compass_nn.Graph.t ->
  chips:Compass_arch.Config.chip list ->
  batches:int list ->
  unit ->
  point list
(** Compile every (chip, batch) pair with the COMPASS scheme; order follows
    the cartesian product (chips major).  [?jobs] forwards to
    {!Compiler.compile} (GA worker domains).  [?budget] makes the sweep
    anytime: once the token expires, remaining pairs are skipped (the
    already-compiled points are returned, and the in-flight GA itself cuts
    short, flagging its plan [budget_exhausted]).  Query
    {!Compass_util.Budget.exhausted} to learn whether the sweep was cut.
    [?supervision] forwards the worker-recovery policy to each point's GA
    (see {!Ga.optimize}).  Failpoint site: [explore.point] (per compiled
    point). *)

val pareto : point list -> point list
(** Points not dominated under (maximize throughput, minimize energy per
    sample), sorted by ascending energy.  Ties keep the first point. *)

val cheapest_meeting :
  throughput_per_s:float -> point list -> point option
(** The lowest-capacity (then lowest-energy) point reaching the target
    throughput. *)

val points_table : point list -> Compass_util.Table.t
