type t = {
  units : Unit_gen.t;
  max_end_ : int array;
  faults : Compass_arch.Fault.t option;
}

let units t = t.units
let faults t = t.faults
let size t = Array.length t.max_end_

let build ?faults (units : Unit_gen.t) =
  let m = Unit_gen.unit_count units in
  let chip = units.Unit_gen.chip in
  let budget =
    match faults with
    | None -> Compass_arch.Config.total_macros chip
    | Some f ->
      Compass_arch.Fault.total_capacity f
        ~macros_per_core:chip.Compass_arch.Config.core.Compass_arch.Config.macros_per_core
  in
  let tiles = Array.map (fun u -> u.Unit_gen.tiles) units.Unit_gen.units in
  let prefix = units.Unit_gen.tiles_prefix in
  let max_end_ = Array.make m 0 in
  (* Two-pointer capacity bound, then walk back over bin-packing failures so
     that every stop <= max_end is feasible. *)
  let cap_end = ref 0 in
  for a = 0 to m - 1 do
    if !cap_end < a + 1 then cap_end := a + 1;
    while !cap_end < m && prefix.(!cap_end + 1) - prefix.(a) <= budget do
      incr cap_end
    done;
    let b = ref !cap_end in
    while !b > a + 1 && not (Mapping.feasible ?faults units ~start_:a ~stop:!b) do
      decr b
    done;
    (* Fault-free, a single unit always fits a core by construction; under
       faults the surviving cores may all be too small, which makes the whole
       model uncompilable on this chip — fail loudly rather than emit a map
       whose minimal spans are lies. *)
    if faults <> None && not (Mapping.feasible ?faults units ~start_:a ~stop:(a + 1)) then
      invalid_arg
        (Printf.sprintf
           "Validity.build: unit %d (%d tiles) fits no usable core under the fault \
            scenario"
           a tiles.(a));
    max_end_.(a) <- !b
  done;
  { units; max_end_; faults }

let max_end t a =
  if a < 0 || a >= size t then invalid_arg "Validity.max_end: out of range";
  t.max_end_.(a)

let is_valid t ~start_ ~stop =
  start_ >= 0 && start_ < size t && stop > start_ && stop <= t.max_end_.(start_)

let group_valid t group =
  Partition.total_units group = size t
  && List.for_all
       (fun (s : Partition.span) ->
         is_valid t ~start_:s.Partition.start_ ~stop:s.Partition.stop)
       (Partition.spans group)

let density t =
  let m = size t in
  if m = 0 then 0.
  else begin
    let valid = ref 0 in
    for a = 0 to m - 1 do
      valid := !valid + (t.max_end_.(a) - a)
    done;
    let all = m * (m + 1) / 2 in
    float_of_int !valid /. float_of_int all
  end

(* Randomly tile [lo, hi) with valid spans, clamping each step so the walk
   lands exactly on [hi].  Half the time jump as far as possible; otherwise
   uniform — this biases early populations towards fewer partitions.  The
   single bias policy shared by {!random_group} and the GA's FixedRandom
   mutation: the draw sequence (bool, then maybe int_in) is part of the
   bit-identical-results contract. *)
let random_cover rng t ~lo ~hi =
  let rec walk acc pos =
    if pos >= hi then List.rev acc
    else
      let bound = min t.max_end_.(pos) hi in
      let stop =
        if Compass_util.Rng.bool rng then bound
        else Compass_util.Rng.int_in rng (pos + 1) bound
      in
      walk ({ Partition.start_ = pos; stop } :: acc) stop
  in
  walk [] lo

let random_group rng t = Partition.of_spans (random_cover rng t ~lo:0 ~hi:(size t))

let render ?(cells = 32) t =
  let m = size t in
  let title =
    Printf.sprintf "validity map: %s on chip %s (M=%d, density %.2f)"
      (Compass_nn.Graph.name t.units.Unit_gen.model)
      t.units.Unit_gen.chip.Compass_arch.Config.label m (density t)
  in
  if m = 0 then title ^ "\n(empty: model has no partition units)\n"
  else begin
    let cells = max 1 (min cells m) in
    let scale i = i * m / cells in
    let cell r c =
      (* Row = start bucket, column = end bucket (paper's (x_i, x_j) axes). *)
      let a = scale r in
      let b = min m (scale (c + 1)) in
      if b <= a then ' ' else if b <= t.max_end_.(a) then '#' else '.'
    in
    Compass_util.Ascii_plot.heat_map ~title ~render_cell:cell ~rows:cells ~cols:cells
  end
