type violation =
  | Batch_mismatch of { plan_batch : int; perf_batch : int }
  | Coverage of { expected_units : int; covered_units : int }
  | Span_sequence of { index : int; expected : (int * int) option; actual : (int * int) option }
  | Io_span_mismatch of { span : int * int; io_start : int; io_stop : int }
  | Replication_underflow of { span : int * int; layer : string; count : int }
  | Foreign_replication of { span : int * int; layer : string }
  | Tile_accounting of { span : int * int; placed : int; required : int }
  | Core_count_mismatch of { span : int * int; got : int; expected : int }
  | Dead_core_used of { span : int * int; core : int; tiles : int }
  | Core_overcapacity of { span : int * int; core : int; tiles : int; capacity : int }
  | Chip_overcapacity of { span : int * int; tiles : int; capacity : int }
  | Unplaceable_span of { span : int * int; reason : string }
  | Dataflow_order of { span : int * int; tensor : string; producer_home : int }
  | Endurance_accounting of { field : string; reported : float; recomputed : float }
  | Endurance_budget_exceeded of { budget : float; worst_writes_per_batch : int }

(* Total: a plan under verification may reference node ids the model does
   not contain (that is itself a violation), so render those as [#id]
   rather than letting [Graph.layer] raise out of [check]. *)
let node_name model n =
  match Compass_nn.Graph.layer model n with
  | l -> l.Compass_nn.Layer.name
  | exception Invalid_argument _ -> Printf.sprintf "#%d" n

(* Effective per-core macro capacities, straight from the fault scenario
   (or the nominal chip) — not from the mapping stack. *)
let capacities chip faults =
  let nominal = chip.Compass_arch.Config.core.Compass_arch.Config.macros_per_core in
  match faults with
  | None -> Array.make chip.Compass_arch.Config.cores nominal
  | Some f -> Compass_arch.Fault.capacities f ~macros_per_core:nominal

(* The verifier's own placement check: place every replicated unit of the
   span, whole, onto the first core with room (units are the minimum
   mapping granularity, so a unit never splits across cores), taking the
   units in decreasing tile order.  Decreasing order matters for soundness,
   not just quality: equal-sized items are interchangeable, so this
   succeeds on every instance the compiler's own decreasing-order packer
   can place — a failure here is a genuine infeasibility of that
   placement discipline, not an artifact of a weaker ordering.  This is an
   independent re-implementation — it shares no code with [Mapping]. *)
let first_fit_pack ~units ~caps ~rep_of (a, b) =
  let items = ref [] in
  for i = a to b - 1 do
    let u = units.(i) in
    for _copy = 1 to rep_of u.Unit_gen.layer do
      items := (u.Unit_gen.tiles, i) :: !items
    done
  done;
  let items = List.sort (fun (ta, _) (tb, _) -> compare tb ta) !items in
  let free = Array.copy caps in
  let failure = ref None in
  (try
     List.iter
       (fun (tiles, i) ->
         let placed = ref false in
         let c = ref 0 in
         while (not !placed) && !c < Array.length free do
           if free.(!c) >= tiles then begin
             free.(!c) <- free.(!c) - tiles;
             placed := true
           end;
           incr c
         done;
         if not !placed then begin
           failure :=
             Some
               (Printf.sprintf "unit %d (%d tiles) fits no core with room left" i tiles);
           raise Exit
         end)
       items
   with Exit -> ());
  !failure

(* Endurance re-accumulation from the per-span placement evidence: every
   placed tile is one macro programming per batch, and first-fit fills a
   core's macro slots from 0, so slot [s] of core [c] is rewritten by
   every span placing more than [s] tiles on [c]. *)
let recompute_endurance chip ~batch spans =
  let ncores = chip.Compass_arch.Config.cores in
  let nominal = chip.Compass_arch.Config.core.Compass_arch.Config.macros_per_core in
  let slot_writes = Array.make_matrix ncores (max 1 nominal) 0 in
  let total = ref 0 in
  List.iter
    (fun (sp : Estimator.span_perf) ->
      Array.iteri
        (fun c used ->
          if c < ncores then begin
            total := !total + used;
            for slot = 0 to min used nominal - 1 do
              slot_writes.(c).(slot) <- slot_writes.(c).(slot) + 1
            done
          end)
        sp.Estimator.tiles_per_core)
    spans;
  let worst = Array.fold_left (fun acc row -> Array.fold_left max acc row) 0 slot_writes in
  let fbatch = float_of_int batch in
  (!total, worst, float_of_int !total /. fbatch, float_of_int worst /. fbatch)

let check (plan : Compiler.t) =
  let out = ref [] in
  let add v = out := v :: !out in
  let units = plan.Compiler.units in
  let chip = plan.Compiler.chip in
  let model = plan.Compiler.model in
  let m = Unit_gen.unit_count units in
  let perf = plan.Compiler.perf in
  let caps = capacities chip plan.Compiler.faults in
  let chip_capacity = Array.fold_left ( + ) 0 caps in
  (* Whole-plan checks. *)
  if perf.Estimator.batch <> plan.Compiler.batch then
    add
      (Batch_mismatch
         { plan_batch = plan.Compiler.batch; perf_batch = perf.Estimator.batch });
  let covered = Partition.total_units plan.Compiler.group in
  if covered <> m then add (Coverage { expected_units = m; covered_units = covered });
  (* The perf record must list exactly the group's partitions, in order. *)
  let group_spans = Partition.spans plan.Compiler.group in
  let rec align i gs (ps : Estimator.span_perf list) =
    match (gs, ps) with
    | [], [] -> []
    | g :: gs', p :: ps' ->
      let expected = (g.Partition.start_, g.Partition.stop) in
      let actual = (p.Estimator.start_, p.Estimator.stop) in
      if expected <> actual then
        add (Span_sequence { index = i; expected = Some expected; actual = Some actual });
      (* Keep checking the claimed span against its own evidence either way. *)
      p :: align (i + 1) gs' ps'
    | g :: gs', [] ->
      add
        (Span_sequence
           {
             index = i;
             expected = Some (g.Partition.start_, g.Partition.stop);
             actual = None;
           });
      align (i + 1) gs' []
    | [], p :: ps' ->
      add
        (Span_sequence
           {
             index = i;
             expected = None;
             actual = Some (p.Estimator.start_, p.Estimator.stop);
           });
      p :: align (i + 1) [] ps'
  in
  let spans_to_check = align 0 group_spans perf.Estimator.spans in
  (* Per-span checks, each against the span the perf record claims. *)
  List.iter
    (fun (sp : Estimator.span_perf) ->
      let a, b = (sp.Estimator.start_, sp.Estimator.stop) in
      let span = (a, b) in
      let in_range = a >= 0 && a < b && b <= m in
      if not in_range then
        add (Unplaceable_span { span; reason = "span outside the unit decomposition" })
      else begin
        let io = sp.Estimator.io in
        if io.Dataflow.start_ <> a || io.Dataflow.stop <> b then
          add
            (Io_span_mismatch
               { span; io_start = io.Dataflow.start_; io_stop = io.Dataflow.stop });
        (* Replication consistency: counts >= 1, and only for layers that
           actually own a unit inside the span. *)
        let rep = sp.Estimator.replication in
        (* Unit range of a weighted node, from the decomposition data
           ([None] for nodes without units). *)
        let unit_range l =
          match List.assoc_opt l units.Unit_gen.layer_units with
          | Some (lo :: _ as idxs) -> Some (lo, List.fold_left max lo idxs)
          | Some [] | None -> None
        in
        let layer_in_span l =
          match unit_range l with
          | Some (lo, hi) -> lo < b && hi >= a
          | None -> false
        in
        List.iter
          (fun (l, r) ->
            if r < 1 then
              add (Replication_underflow { span; layer = node_name model l; count = r });
            if not (layer_in_span l) then
              add (Foreign_replication { span; layer = node_name model l }))
          rep.Replication.per_layer;
        let rep_of l =
          match List.assoc_opt l rep.Replication.per_layer with
          | Some r -> max r 1
          | None -> 1
        in
        (* Tile accounting: the placed totals must equal the replicated
           demand of the span's units. *)
        let required = ref 0 in
        for i = a to b - 1 do
          let u = units.Unit_gen.units.(i) in
          required := !required + (u.Unit_gen.tiles * rep_of u.Unit_gen.layer)
        done;
        let placed = Array.fold_left ( + ) 0 sp.Estimator.tiles_per_core in
        if placed <> !required then
          add (Tile_accounting { span; placed; required = !required });
        (* Per-core and whole-chip effective capacity. *)
        if Array.length sp.Estimator.tiles_per_core <> chip.Compass_arch.Config.cores then
          add
            (Core_count_mismatch
               {
                 span;
                 got = Array.length sp.Estimator.tiles_per_core;
                 expected = chip.Compass_arch.Config.cores;
               })
        else
          Array.iteri
            (fun c tiles ->
              if tiles < 0 || tiles > caps.(c) then
                if
                  tiles > 0
                  && (match plan.Compiler.faults with
                     | Some f -> Compass_arch.Fault.status f c = Compass_arch.Fault.Dead
                     | None -> false)
                then add (Dead_core_used { span; core = c; tiles })
                else add (Core_overcapacity { span; core = c; tiles; capacity = caps.(c) }))
            sp.Estimator.tiles_per_core;
        if placed > chip_capacity then
          add (Chip_overcapacity { span; tiles = placed; capacity = chip_capacity });
        (* Independent placeability of the replicated span. *)
        (match first_fit_pack ~units:units.Unit_gen.units ~caps ~rep_of span with
        | None -> ()
        | Some reason -> add (Unplaceable_span { span; reason }));
        (* Pipelined-dataflow legality.  Loads carry the fraction of a
           producer missing from the span; the forward pipeline is acyclic
           iff that fraction comes from {e earlier} units only — a
           weighted producer must place no unit at or past the span end,
           an attached producer must be anchored strictly before the span
           (model inputs always stream from DRAM and are exempt).  Stores
           are only legal for tensors the span actually produces: the
           producer's units (or anchor) must intersect the span. *)
        List.iter
          (fun (producer, _bytes) ->
            if not (Dataflow.is_model_input plan.Compiler.ctx producer) then begin
              let home = Dataflow.home_unit plan.Compiler.ctx producer in
              let legal =
                match unit_range producer with
                | Some (_, hi) -> hi < b
                | None -> home < a
              in
              if not legal then
                add
                  (Dataflow_order
                     { span; tensor = node_name model producer; producer_home = home })
            end)
          io.Dataflow.loads;
        List.iter
          (fun (producer, _bytes) ->
            let home = Dataflow.home_unit plan.Compiler.ctx producer in
            let legal =
              match unit_range producer with
              | Some (lo, hi) -> lo < b && hi >= a
              | None -> home >= a && home < b
            in
            if not legal then
              add
                (Dataflow_order
                   { span; tensor = node_name model producer; producer_home = home }))
          io.Dataflow.stores
      end)
    spans_to_check;
  (* Endurance accounting over the whole plan. *)
  let total, worst, per_inf, max_per_inf =
    recompute_endurance chip ~batch:plan.Compiler.batch spans_to_check
  in
  let e = perf.Estimator.endurance in
  let check_f field reported recomputed =
    if reported <> recomputed then add (Endurance_accounting { field; reported; recomputed })
  in
  check_f "macro_writes_per_batch"
    (float_of_int e.Estimator.macro_writes_per_batch)
    (float_of_int total);
  check_f "writes_per_inference" e.Estimator.writes_per_inference per_inf;
  check_f "max_writes_per_macro_per_inference"
    e.Estimator.max_writes_per_macro_per_inference max_per_inf;
  (match Option.bind plan.Compiler.faults Compass_arch.Fault.endurance_budget with
  | Some budget ->
    if float_of_int worst > budget then
      add (Endurance_budget_exceeded { budget; worst_writes_per_batch = worst });
    (match e.Estimator.projected_lifetime_inferences with
    | Some reported when max_per_inf > 0. ->
      check_f "projected_lifetime_inferences" reported (budget /. max_per_inf)
    | _ -> ())
  | None -> ());
  List.rev !out

let span_str (a, b) = Printf.sprintf "[%d,%d)" a b

let render_violation = function
  | Batch_mismatch { plan_batch; perf_batch } ->
    Printf.sprintf "plan compiled for batch %d but evaluated at batch %d" plan_batch
      perf_batch
  | Coverage { expected_units; covered_units } ->
    Printf.sprintf "partition group covers %d units, decomposition has %d" covered_units
      expected_units
  | Span_sequence { index; expected; actual } ->
    let show = function None -> "missing" | Some s -> span_str s in
    Printf.sprintf "span %d: group says %s, perf record says %s" index (show expected)
      (show actual)
  | Io_span_mismatch { span; io_start; io_stop } ->
    Printf.sprintf "span %s: IO record describes %s" (span_str span)
      (span_str (io_start, io_stop))
  | Replication_underflow { span; layer; count } ->
    Printf.sprintf "span %s: layer %s replicated %d times (must be >= 1)" (span_str span)
      layer count
  | Foreign_replication { span; layer } ->
    Printf.sprintf "span %s: replication assigned to layer %s which has no unit in the span"
      (span_str span) layer
  | Tile_accounting { span; placed; required } ->
    Printf.sprintf "span %s: %d tiles placed but the replicated units need %d"
      (span_str span) placed required
  | Core_count_mismatch { span; got; expected } ->
    Printf.sprintf "span %s: placement lists %d cores, chip has %d" (span_str span) got
      expected
  | Dead_core_used { span; core; tiles } ->
    Printf.sprintf "span %s: %d tiles placed on dead core %d" (span_str span) tiles core
  | Core_overcapacity { span; core; tiles; capacity } ->
    Printf.sprintf "span %s: core %d holds %d tiles but only %d are usable"
      (span_str span) core tiles capacity
  | Chip_overcapacity { span; tiles; capacity } ->
    Printf.sprintf "span %s: %d tiles placed, chip has %d usable" (span_str span) tiles
      capacity
  | Unplaceable_span { span; reason } ->
    Printf.sprintf "span %s: no placement exists: %s" (span_str span) reason
  | Dataflow_order { span; tensor; producer_home } ->
    Printf.sprintf
      "span %s: tensor %s (anchored at unit %d) breaks the forward pipeline order"
      (span_str span) tensor producer_home
  | Endurance_accounting { field; reported; recomputed } ->
    Printf.sprintf "endurance %s: plan reports %.17g, evidence gives %.17g" field reported
      recomputed
  | Endurance_budget_exceeded { budget; worst_writes_per_batch } ->
    Printf.sprintf
      "endurance budget %.17g exceeded: most-rewritten macro takes %d writes per batch"
      budget worst_writes_per_batch

let render = function
  | [] -> "plan satisfies all verifier invariants"
  | vs ->
    String.concat "\n"
      (Printf.sprintf "%d violation(s):" (List.length vs)
      :: List.map (fun v -> "  " ^ render_violation v) vs)

let pp_violation ppf v = Format.pp_print_string ppf (render_violation v)
let pp ppf vs = Format.pp_print_string ppf (render vs)
