(** Weight replication allocation inside a partition (paper Sec. II-B).

    A partition executes as a layer pipeline; layers ahead of pooling or
    striding process many more pixels and bound the pipeline.  Spare macros
    left after mapping the partition once are spent replicating the current
    bottleneck layer, PIMCOMP-style, under the paper's constraints:

    - condition 2: all units originating from one kernel share a
      replication count (replication is per layer);
    - condition 3: the replicated total never exceeds the chip budget, and
      the final placement must bin-pack onto the cores.

    Replication is a joint optimization with weight replacement
    (paper Sec. II-B): every replica must be programmed again when the
    partition's weights are written, so the allocator only replicates the
    bottleneck while the pipeline time saved over a batch exceeds the extra
    macro-programming time. *)

type t = {
  per_layer : (Compass_nn.Graph.node * int) list;
      (** Replication per weighted layer of the span (>= 1). *)
  tiles_used : int;  (** After replication. *)
  spare_tiles : int;
}

val allocate :
  ?faults:Compass_arch.Fault.t ->
  ?layers:Perf_model.layer_perf list ->
  Dataflow.ctx ->
  batch:int ->
  start_:int ->
  stop:int ->
  t
(** Greedy bottleneck replication for the span; [batch] sets how many
    samples amortize the write cost of each replica.  Under [faults] the
    tile budget and the placement check both use effective capacities, so
    replicas never spill onto dead or degraded macros.  [?layers] supplies
    the span's precomputed [Perf_model.span_layers] result (it must be for
    the same span) so the allocator does not recompute it. *)

val allocate_packed :
  ?faults:Compass_arch.Fault.t ->
  ?layers:Perf_model.layer_perf list ->
  Dataflow.ctx ->
  batch:int ->
  start_:int ->
  stop:int ->
  t * (Mapping.t, string) result
(** Like {!allocate}, additionally returning the final bin-packing the
    allocator's feasibility loop already computed (so callers need not
    re-pack the span).  The packing is [Error] only when replication 1
    itself does not place — impossible for spans drawn from a validity
    map built with the same fault scenario. *)

val replication_of : t -> Compass_nn.Graph.node -> int
(** 1 for layers absent from the allocation. *)

val unit_replication : t -> Unit_gen.t -> int -> int
(** Replication of a unit (by its layer), for [Mapping.pack]. *)

val max_replication : t -> int

val pp : Dataflow.ctx -> Format.formatter -> t -> unit
