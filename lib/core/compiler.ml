type scheme =
  | Compass
  | Greedy
  | Layerwise

let scheme_of_string s =
  match String.lowercase_ascii s with
  | "compass" | "ga" -> Compass
  | "greedy" -> Greedy
  | "layerwise" -> Layerwise
  | other -> invalid_arg ("Compiler.scheme_of_string: " ^ other)

let scheme_to_string = function
  | Compass -> "compass"
  | Greedy -> "greedy"
  | Layerwise -> "layerwise"

type t = {
  model : Compass_nn.Graph.t;
  chip : Compass_arch.Config.chip;
  batch : int;
  scheme : scheme;
  objective : Fitness.objective;
  units : Unit_gen.t;
  ctx : Dataflow.ctx;
  validity : Validity.t;
  group : Partition.t;
  perf : Estimator.perf;
  ga : Ga.result option;
}

let compile ?(objective = Fitness.Latency) ?(ga_params = Ga.default_params) ?jobs ~model
    ~chip ~batch scheme =
  if batch < 1 then invalid_arg "Compiler.compile: batch < 1";
  let ga_params =
    match jobs with Some j -> { ga_params with Ga.jobs = j } | None -> ga_params
  in
  let units = Unit_gen.generate model chip in
  let validity = Validity.build units in
  let ctx = Dataflow.context units in
  let group, ga =
    match scheme with
    | Greedy -> (Baselines.greedy validity, None)
    | Layerwise -> (Baselines.layerwise validity, None)
    | Compass ->
      let result = Ga.optimize ~params:ga_params ~objective ctx validity ~batch in
      (result.Ga.best.Ga.group, Some result)
  in
  let perf = Estimator.evaluate ctx ~batch group in
  { model; chip; batch; scheme; objective; units; ctx; validity; group; perf; ga }

type measurement = {
  schedule : Scheduler.t;
  sim : Compass_isa.Sim.result;
  dram : Compass_dram.Controller.stats;
}

let schedule ?chunks t = Scheduler.build t.ctx t.group ~batch:t.batch ?chunks ()

let measure ?chunks t =
  let sched = schedule ?chunks t in
  let sim = Scheduler.simulate t.ctx sched in
  let dram = Scheduler.dram_stats t.ctx sim in
  { schedule = sched; sim; dram }

type on_chip_report = {
  on_chip_perf : Estimator.perf;
  on_chip_group : Partition.t;
}

let compile_on_chip ~model ~chip ~batch =
  if batch < 1 then invalid_arg "Compiler.compile_on_chip: batch < 1";
  let units = Unit_gen.generate model chip in
  let m = Unit_gen.unit_count units in
  match Mapping.pack units ~start_:0 ~stop:m ~replication:(fun _ -> 1) with
  | Error msg -> Error ("model does not fit on chip: " ^ msg)
  | Ok _ ->
    let ctx = Dataflow.context units in
    let group = Partition.singleton m in
    let options = { Estimator.default_options with Estimator.charge_writes = false } in
    Ok { on_chip_perf = Estimator.evaluate ~options ctx ~batch group; on_chip_group = group }

let supported_by_prior_compilers model chip =
  let weight_bits = chip.Compass_arch.Config.crossbar.Compass_arch.Crossbar.weight_bits in
  Compass_nn.Graph.weight_bytes ~weight_bits model
  <= Compass_arch.Config.capacity_bytes chip

let label t =
  Printf.sprintf "%s-%s-%d" (Compass_nn.Graph.name t.model)
    t.chip.Compass_arch.Config.label t.batch

let pp_plan ppf t =
  Format.fprintf ppf "%s / %s / objective=%s: %d units -> %d partitions@." (label t)
    (scheme_to_string t.scheme)
    (Fitness.objective_to_string t.objective)
    (Unit_gen.unit_count t.units)
    (Partition.partition_count t.group);
  Estimator.pp_breakdown t.model ppf t.perf
