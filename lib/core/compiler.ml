type scheme =
  | Compass
  | Greedy
  | Layerwise
  | Optimal

let scheme_of_string s =
  match String.lowercase_ascii s with
  | "compass" | "ga" -> Compass
  | "greedy" -> Greedy
  | "layerwise" -> Layerwise
  | "dp" | "optimal" -> Optimal
  | other -> invalid_arg ("Compiler.scheme_of_string: " ^ other)

let scheme_to_string = function
  | Compass -> "compass"
  | Greedy -> "greedy"
  | Layerwise -> "layerwise"
  | Optimal -> "dp"

type t = {
  model : Compass_nn.Graph.t;
  chip : Compass_arch.Config.chip;
  batch : int;
  scheme : scheme;
  objective : Fitness.objective;
  units : Unit_gen.t;
  ctx : Dataflow.ctx;
  validity : Validity.t;
  group : Partition.t;
  perf : Estimator.perf;
  ga : Ga.result option;
  dp : Optimal.result option;
  faults : Compass_arch.Fault.t option;
  budget_exhausted : bool;
}

let options_for faults = { Estimator.default_options with Estimator.faults }

(* The model/chip-dependent front end (unit decomposition, validity map,
   dataflow context) is batch- and scheme-independent; hoisting it lets
   sweeps reuse one [prepared] across every (batch, scheme) pair. *)
type prepared = {
  p_model : Compass_nn.Graph.t;
  p_chip : Compass_arch.Config.chip;
  p_units : Unit_gen.t;
  p_ctx : Dataflow.ctx;
  p_validity : Validity.t;
  p_faults : Compass_arch.Fault.t option;
}

let prepare ?faults ~model ~chip () =
  Compass_util.Trace.with_span "compiler.prepare"
    ~args:[ ("model", Compass_nn.Graph.name model) ]
  @@ fun () ->
  Compass_util.Failpoint.guard "compiler.prepare";
  let units =
    Compass_util.Trace.with_span "prepare.unit_gen" (fun () ->
        Unit_gen.generate model chip)
  in
  {
    p_model = model;
    p_chip = chip;
    p_units = units;
    p_ctx =
      Compass_util.Trace.with_span "prepare.dataflow" (fun () ->
          Dataflow.context units);
    p_validity =
      Compass_util.Trace.with_span "prepare.validity" (fun () ->
          Validity.build ?faults units);
    p_faults = faults;
  }

let compile_prepared ?(objective = Fitness.Latency) ?(ga_params = Ga.default_params)
    ?jobs ?cache ?(warm_start = false) ?budget ?supervision ?resume ?on_checkpoint
    ~batch prepared scheme =
  if batch < 1 then invalid_arg "Compiler.compile: batch < 1";
  Compass_util.Failpoint.guard "compiler.compile";
  let ga_params =
    match jobs with Some j -> { ga_params with Ga.jobs = j } | None -> ga_params
  in
  let { p_model = model; p_chip = chip; p_units = units; p_ctx = ctx;
        p_validity = validity; p_faults = faults } = prepared in
  let options = options_for faults in
  Compass_util.Trace.with_span "compiler.compile"
    ~args:
      [
        ("scheme", scheme_to_string scheme);
        ("objective", Fitness.objective_to_string objective);
        ("batch", string_of_int batch);
      ]
  @@ fun () ->
  let run_dp () = Optimal.optimize ~objective ~options ?cache ?budget ctx validity ~batch in
  let group, ga, dp =
    Compass_util.Trace.with_span "compile.search" @@ fun () ->
    match scheme with
    | Greedy -> (Baselines.greedy validity, None, None)
    | Layerwise -> (Baselines.layerwise validity, None, None)
    | Optimal ->
      let result = run_dp () in
      (result.Optimal.group, None, Some result)
    | Compass ->
      let dp = if warm_start then Some (run_dp ()) else None in
      let ga_params =
        match dp with
        | None -> ga_params
        | Some d -> { ga_params with Ga.warm_start = [ d.Optimal.group ] }
      in
      let result =
        Ga.optimize ~params:ga_params ~objective ~options ?cache ?budget ?supervision
          ?resume ?on_checkpoint ctx validity ~batch
      in
      (result.Ga.best.Ga.group, Some result, dp)
  in
  let perf =
    Compass_util.Trace.with_span "compile.evaluate" @@ fun () ->
    match cache with
    | None -> Estimator.evaluate ~options ctx ~batch group
    | Some cache -> Estimator.evaluate_cached ~cache ctx ~batch group
  in
  let budget_exhausted =
    (match ga with Some r -> r.Ga.budget_exhausted | None -> false)
    || match dp with Some d -> d.Optimal.budget_exhausted | None -> false
  in
  { model; chip; batch; scheme; objective; units; ctx; validity; group; perf; ga; dp;
    faults; budget_exhausted }

let compile ?objective ?ga_params ?jobs ?warm_start ?faults ?budget ?supervision
    ?resume ?on_checkpoint ~model ~chip ~batch scheme =
  if batch < 1 then invalid_arg "Compiler.compile: batch < 1";
  compile_prepared ?objective ?ga_params ?jobs ?warm_start ?budget ?supervision ?resume
    ?on_checkpoint ~batch
    (prepare ?faults ~model ~chip ())
    scheme

type measurement = {
  schedule : Scheduler.t;
  sim : Compass_isa.Sim.result;
  dram : Compass_dram.Controller.stats;
}

let schedule ?chunks ?abft t =
  Scheduler.build ?faults:t.faults ?abft t.ctx t.group ~batch:t.batch ?chunks ()

let measure ?chunks ?abft t =
  let sched = schedule ?chunks ?abft t in
  let sim = Scheduler.simulate t.ctx sched in
  let dram = Scheduler.dram_stats t.ctx sim in
  { schedule = sched; sim; dram }

type repair_strategy =
  | Unchanged
  | Remapped of int
  | Recompiled

type repair = {
  plan : t;
  strategy : repair_strategy;
  latency_before_s : float;
  latency_after_s : float;
  degradation : float;
}

let repair ?ga_params ?(recompile_above = 1.5) t ~faults =
  if recompile_above < 0. then invalid_arg "Compiler.repair: recompile_above < 0";
  match Validity.build ~faults t.units with
  | exception Invalid_argument msg -> Error msg
  | validity -> (
    let options = options_for (Some faults) in
    let before = t.perf.Estimator.batch_latency_s in
    let finish strategy plan =
      let after = plan.perf.Estimator.batch_latency_s in
      Ok
        {
          plan;
          strategy;
          latency_before_s = before;
          latency_after_s = after;
          degradation = after /. before;
        }
    in
    let recompile () =
      let plan =
        compile ?ga_params ~objective:t.objective ~faults ~model:t.model ~chip:t.chip
          ~batch:t.batch t.scheme
      in
      finish Recompiled plan
    in
    (* Spans still valid under the degraded chip keep their boundaries (the
       estimator re-maps them around the faulty cores); broken spans are
       re-split locally with a greedy walk over the faulted validity map,
       which always succeeds once the map builds. *)
    let resplit = ref 0 in
    let respan (s : Partition.span) =
      if Validity.is_valid validity ~start_:s.Partition.start_ ~stop:s.Partition.stop then
        [ s ]
      else begin
        incr resplit;
        let rec walk acc pos =
          if pos >= s.Partition.stop then List.rev acc
          else
            let next = min s.Partition.stop (Validity.max_end validity pos) in
            walk ({ Partition.start_ = pos; stop = next } :: acc) next
        in
        walk [] s.Partition.start_
      end
    in
    let spans = List.concat_map respan (Partition.spans t.group) in
    match
      let group = Partition.of_spans spans in
      let perf = Estimator.evaluate ~options t.ctx ~batch:t.batch group in
      { t with validity; group; perf; faults = Some faults }
    with
    | exception Invalid_argument msg -> Error msg
    | plan ->
      if !resplit = 0 then finish Unchanged plan
      else if plan.perf.Estimator.batch_latency_s > recompile_above *. before then
        recompile ()
      else finish (Remapped !resplit) plan)

type fault_run = {
  faulted_sim : Compass_isa.Sim.result;
  repair : repair;
  repaired : measurement;
  recovery_latency_s : float;
}

let measure_with_faults ?chunks ?ga_params ?recompile_above t ~at_s ~faults =
  if Compass_arch.Fault.cores faults <> t.chip.Compass_arch.Config.cores then
    invalid_arg "Compiler.measure_with_faults: fault scenario core count mismatch";
  match repair ?ga_params ?recompile_above t ~faults with
  | Error msg -> Error msg
  | Ok r ->
    let sched = schedule ?chunks t in
    let fault_events =
      List.init t.chip.Compass_arch.Config.cores (fun c ->
          match Compass_arch.Fault.status faults c with
          | Compass_arch.Fault.Dead -> Some (Compass_isa.Sim.fail_stop ~at_s ~victim:c)
          | Compass_arch.Fault.Healthy | Compass_arch.Fault.Degraded _ -> None)
      |> List.filter_map Fun.id
    in
    let faulted_sim = Compass_isa.Sim.run ~fault_events t.chip sched.Scheduler.programs in
    let repaired = measure ?chunks r.plan in
    Ok
      {
        faulted_sim;
        repair = r;
        repaired;
        (* The interrupted batch drains, the repaired plan reruns it. *)
        recovery_latency_s =
          faulted_sim.Compass_isa.Sim.makespan_s +. repaired.sim.Compass_isa.Sim.makespan_s;
      }

type on_chip_report = {
  on_chip_perf : Estimator.perf;
  on_chip_group : Partition.t;
}

let compile_on_chip ~model ~chip ~batch =
  if batch < 1 then invalid_arg "Compiler.compile_on_chip: batch < 1";
  let units = Unit_gen.generate model chip in
  let m = Unit_gen.unit_count units in
  match Mapping.pack units ~start_:0 ~stop:m ~replication:(fun _ -> 1) with
  | Error msg -> Error ("model does not fit on chip: " ^ msg)
  | Ok _ ->
    let ctx = Dataflow.context units in
    let group = Partition.singleton m in
    let options = { Estimator.default_options with Estimator.charge_writes = false } in
    Ok { on_chip_perf = Estimator.evaluate ~options ctx ~batch group; on_chip_group = group }

let supported_by_prior_compilers model chip =
  let weight_bits = chip.Compass_arch.Config.crossbar.Compass_arch.Crossbar.weight_bits in
  Compass_nn.Graph.weight_bytes ~weight_bits model
  <= Compass_arch.Config.capacity_bytes chip

let label t =
  Printf.sprintf "%s-%s-%d" (Compass_nn.Graph.name t.model)
    t.chip.Compass_arch.Config.label t.batch

let pp_plan ppf t =
  Format.fprintf ppf "%s / %s / objective=%s: %d units -> %d partitions@." (label t)
    (scheme_to_string t.scheme)
    (Fitness.objective_to_string t.objective)
    (Unit_gen.unit_count t.units)
    (Partition.partition_count t.group);
  Estimator.pp_breakdown t.model ppf t.perf
