(** Plan and checkpoint serialization.

    A compiled plan is fully determined by (model, chip, batch, objective,
    scheme, partition cuts): everything else — replication, mapping,
    estimates — is recomputed deterministically.  This module stores that
    tuple in a small line-oriented format so expensive GA searches can be
    archived and reloaded:

    {v
    compass-plan 1
    model resnet18
    chip M
    batch 16
    objective latency
    scheme compass
    cuts 0 11 21 29 54 82 84
    v}

    The model is referenced by zoo name; plans for custom graphs embed the
    model inline after a [model-text] marker using [Model_text].

    All [save]* functions are crash-safe: the bytes go to a temporary file
    in the destination directory which is atomically renamed over the
    target, so a crash mid-write never leaves a truncated artifact — the
    old file (or no file) survives intact.  All loads produce located
    {!Load_error} diagnostics ("line N: ...") instead of escaping
    [Failure]/[Scanf] exceptions, including for truncated files and
    version-header mismatches. *)

val to_string : Compiler.t -> string

val save : string -> Compiler.t -> unit
(** [save path plan] writes [to_string plan] atomically (temp file +
    rename).  Raises [Sys_error] on I/O failure; the destination is never
    left half-written. *)

exception Load_error of string
(** Carries a one-line human-readable diagnostic, prefixed with
    ["line N: "] when the offending line is known. *)

val of_string : string -> Compiler.t
(** Rebuild the plan: re-derives units, validity, dataflow and estimates
    for the stored cuts.  Raises [Load_error] on malformed input, unknown
    model/chip names, version-header mismatches, or cuts that do not match
    the decomposition (e.g. the file was produced for different hardware).
    The rebuilt plan has [ga = None], [dp = None] and
    [budget_exhausted = false] — search provenance is not archived. *)

val load : string -> Compiler.t
(** [load path] reads and parses a file.  Raises [Load_error] as
    {!of_string}, or [Sys_error] if the file cannot be read. *)

(** {1 GA checkpoints}

    {!Ga.checkpoint} values serialize to a strictly line-ordered text
    format with a ["compass-ga-checkpoint 1"] header.  Floats are written
    in full precision (shortest round-tripping decimal, hex-float
    fallback), so a saved-and-reloaded checkpoint resumes bit-identically
    (the {!Ga.optimize} resume contract).  The format is documented in
    [docs/FORMATS.md]. *)

val checkpoint_to_string : Ga.checkpoint -> string

val checkpoint_of_string : string -> Ga.checkpoint
(** Raises {!Load_error} with a located diagnostic on truncated, corrupt
    or version-mismatched input.  Note the checkpoint's partitions are not
    validated against any model here — {!Ga.optimize} re-validates them
    against its validity map on resume. *)

val save_checkpoint : string -> Ga.checkpoint -> unit
(** Atomic, like {!save}. *)

val load_checkpoint : string -> Ga.checkpoint
(** Raises {!Load_error} as {!checkpoint_of_string}, or [Sys_error]. *)

val append_checkpoint : string -> Ga.checkpoint -> unit
(** [append_checkpoint path ck] appends a checkpoint block to a journal
    file (durable append, {!Compass_util.Artifact.append_durable}).  A
    crash mid-append tears only the final block; {!salvage_checkpoint}
    recovers the newest complete one. *)

(** {1 Salvage}

    Recovery from torn checkpoints — a file truncated by a crash
    mid-write, or a journal whose final append was interrupted. *)

type salvage = {
  recovered : Ga.checkpoint;  (** the newest recoverable checkpoint *)
  generation : int;  (** its generation ([ck_generation]) *)
  complete : bool;  (** whether it parsed strictly, nothing dropped *)
  dropped_records : int;  (** truncated trailing history records dropped *)
}

val salvage_of_string : string -> salvage
(** [salvage_of_string text] recovers the most recent fully-valid
    checkpoint from possibly-torn input.  The text is split into blocks
    at ["compass-ga-checkpoint"] header lines and blocks are tried
    newest first.  A block with a torn tail is accepted if its
    population survives complete; a final partial line and truncated
    trailing history records are dropped (history is reporting-only, so
    resume determinism is unaffected — the resumed trajectory equals an
    untorn resume).  Raises {!Load_error} with the newest block's
    diagnostic when nothing is recoverable. *)

val salvage_checkpoint : string -> salvage
(** [salvage_checkpoint path] is {!salvage_of_string} on the file's
    contents.  Raises {!Load_error} or [Sys_error]. *)
