type stats = {
  valid_spans : int;
  spans_evaluated : int;
  edges_relaxed : int;
  group_evaluations : int;
}

type result = {
  objective : Fitness.objective;
  group : Partition.t;
  perf : Estimator.perf;
  value : float;
  lower_bound : float;
  exact : bool;
  budget_exhausted : bool;
  stats : stats;
}

(* Raised inside the span sweep when the budget expires; caught by
   [optimize], which falls back to the greedy anytime incumbent. *)
exception Expired

let objective_value objective (perf : Estimator.perf) =
  match objective with
  | Fitness.Latency -> perf.Estimator.batch_latency_s
  | Fitness.Energy -> perf.Estimator.energy_j
  | Fitness.Edp -> perf.Estimator.edp_j_s
  | Fitness.Wear -> Fitness.group_fitness Fitness.Wear perf

(* Accumulated batch latency after appending [sp] to a chain whose last
   span is [prev] — the exact expression (and association) of
   [Estimator.combine], so a DP path sums to the bit-identical
   [batch_latency_s] the estimator reports for the reconstructed group. *)
let extend_latency ~write_overlap acc prev (sp : Estimator.span_perf) =
  let exposed_write =
    match prev with
    | None -> sp.Estimator.write_s
    | Some (p : Estimator.span_perf) when write_overlap ->
      let idle =
        max 0. (max p.Estimator.compute_s p.Estimator.io_s -. p.Estimator.io_s)
      in
      max 0. (sp.Estimator.write_s -. idle)
    | Some _ -> sp.Estimator.write_s
  in
  acc +. exposed_write +. max sp.Estimator.compute_s sp.Estimator.io_s

(* Batch energy = sum of per-span dynamic energies + static power x batch
   latency; the latency is edge-separable (above), so energy is too:
   charge each edge its dynamic energy plus the static energy of the
   latency it adds. *)
let extend_energy ~write_overlap ~static_power_w acc prev (sp : Estimator.span_perf) =
  let dt = extend_latency ~write_overlap 0. prev sp in
  acc +. Fitness.span_fitness Fitness.Energy sp +. (static_power_w *. dt)

(* The wear surrogate the GA minimizes is a plain span sum, accumulated in
   the same order [Fitness.group_fitness] folds it. *)
let extend_wear acc _prev (sp : Estimator.span_perf) =
  acc +. Fitness.span_fitness Fitness.Wear sp

(* Shortest path over the valid-span DAG with one state per valid span:
   state (a, b) = "the chain's last span is [a, b)".  The incoming span is
   part of the state because the write-overlap credit of span [b, c)
   depends on the idle time of its predecessor.  Positions are processed
   in ascending end order; ties keep the first (smallest-predecessor)
   chain, so the result is deterministic. *)
let run_dp ~m ~validity ~perf_of ~extend =
  let best = Array.make_matrix (m + 1) (m + 1) infinity in
  let parent = Array.make_matrix (m + 1) (m + 1) min_int in
  let edges = ref 0 in
  for b = 1 to m do
    for a = 0 to b - 1 do
      if Validity.is_valid validity ~start_:a ~stop:b then begin
        let sp = perf_of a b in
        if a = 0 then begin
          incr edges;
          let v = extend 0. None sp in
          if v < best.(a).(b) then begin
            best.(a).(b) <- v;
            parent.(a).(b) <- -1
          end
        end;
        for p = 0 to a - 1 do
          if best.(p).(a) < infinity then begin
            incr edges;
            let v = extend best.(p).(a) (Some (perf_of p a)) sp in
            if v < best.(a).(b) then begin
              best.(a).(b) <- v;
              parent.(a).(b) <- p
            end
          end
        done
      end
    done
  done;
  (* Smallest start among the minima: scan upward with strict improvement. *)
  let final =
    let best_a = ref (-1) in
    for a = 0 to m - 1 do
      if best.(a).(m) < infinity && (!best_a < 0 || best.(a).(m) < best.(!best_a).(m))
      then best_a := a
    done;
    !best_a
  in
  if final < 0 then invalid_arg "Optimal.optimize: no valid chain covers the units";
  let rec back a b acc =
    let acc = { Partition.start_ = a; Partition.stop = b } :: acc in
    let p = parent.(a).(b) in
    if p < 0 then acc else back p a acc
  in
  let group = Partition.of_spans (back final m []) in
  (best.(final).(m), group, !edges)

let count_valid_spans validity ~m =
  let n = ref 0 in
  for a = 0 to m - 1 do
    n := !n + (Validity.max_end validity a - a)
  done;
  !n

let optimize ?(objective = Fitness.Latency) ?(options = Estimator.default_options)
    ?cache ?budget ctx validity ~batch =
  if batch < 1 then invalid_arg "Optimal.optimize: batch < 1";
  let m = Validity.size validity in
  if m <> Unit_gen.unit_count (Dataflow.units ctx) then
    invalid_arg "Optimal.optimize: validity map does not match the decomposition";
  let cache =
    match cache with
    | None -> Estimator.Span_cache.create ~options ~batch ()
    | Some c ->
      if Estimator.Span_cache.batch c <> batch then
        invalid_arg
          (Printf.sprintf "Optimal.optimize: cache built for batch %d, called with %d"
             (Estimator.Span_cache.batch c) batch);
      if Estimator.Span_cache.options c <> options then
        invalid_arg "Optimal.optimize: cache options mismatch";
      c
  in
  let spans_before = Estimator.Span_cache.length cache in
  let check_budget () =
    match budget with
    | Some b when Compass_util.Budget.expired b -> raise Expired
    | Some _ | None -> ()
  in
  let perf_of a b =
    check_budget ();
    Estimator.span_perf_cached ~cache ctx ~start_:a ~stop:b
  in
  let chip = (Dataflow.units ctx).Unit_gen.chip in
  let static_power_w = chip.Compass_arch.Config.chip_power_w in
  let write_overlap = options.Estimator.write_overlap in
  let dp extend =
    Compass_util.Trace.with_span "dp.sweep" @@ fun () ->
    run_dp ~m ~validity ~perf_of ~extend
  in
  let finish ?(budget_exhausted = false) ~edges ~group_evaluations ~value ~lower_bound
      ~exact group perf =
    let valid_spans = count_valid_spans validity ~m in
    let spans_evaluated = Estimator.Span_cache.length cache - spans_before in
    Compass_util.Metrics.incr ~by:valid_spans "dp.valid_spans";
    Compass_util.Metrics.incr ~by:spans_evaluated "dp.spans_evaluated";
    Compass_util.Metrics.incr ~by:edges "dp.edges_relaxed";
    Compass_util.Metrics.incr ~by:group_evaluations "dp.group_evaluations";
    {
      objective;
      group;
      perf;
      value;
      lower_bound;
      exact;
      budget_exhausted;
      stats = { valid_spans; spans_evaluated; edges_relaxed = edges; group_evaluations };
    }
  in
  try
    match objective with
  | Fitness.Latency ->
    let value, group, edges = dp (extend_latency ~write_overlap) in
    let perf = Estimator.evaluate_cached ~cache ctx ~batch group in
    finish ~edges ~group_evaluations:1 ~value:perf.Estimator.batch_latency_s
      ~lower_bound:value ~exact:true group perf
  | Fitness.Energy ->
    let value, group, edges = dp (extend_energy ~write_overlap ~static_power_w) in
    let perf = Estimator.evaluate_cached ~cache ctx ~batch group in
    finish ~edges ~group_evaluations:1 ~value:perf.Estimator.energy_j
      ~lower_bound:value ~exact:true group perf
  | Fitness.Wear ->
    let value, group, edges = dp extend_wear in
    let perf = Estimator.evaluate_cached ~cache ctx ~batch group in
    finish ~edges ~group_evaluations:1 ~value ~lower_bound:value ~exact:true group perf
  | Fitness.Edp ->
    (* EDP multiplies two chain sums, so it is not edge-separable.  Both
       factors are: the latency-optimal and energy-optimal chains bound any
       group's EDP from below by (E_min / batch) x L_min, and the better of
       the two optima is the reported incumbent. *)
    let lat_min, lat_group, lat_edges = dp (extend_latency ~write_overlap) in
    let en_min, en_group, en_edges = dp (extend_energy ~write_overlap ~static_power_w) in
    let lat_perf = Estimator.evaluate_cached ~cache ctx ~batch lat_group in
    let en_perf =
      if Partition.equal lat_group en_group then lat_perf
      else Estimator.evaluate_cached ~cache ctx ~batch en_group
    in
    let group, perf =
      if en_perf.Estimator.edp_j_s < lat_perf.Estimator.edp_j_s then (en_group, en_perf)
      else (lat_group, lat_perf)
    in
    let lower_bound = en_min /. float_of_int batch *. lat_min in
    let value = perf.Estimator.edp_j_s in
    finish ~edges:(lat_edges + en_edges)
      ~group_evaluations:(if Partition.equal lat_group en_group then 1 else 2)
      ~value ~lower_bound
      ~exact:(value <= lower_bound *. (1. +. 1e-9))
      group perf
  with Expired ->
    (* Anytime fallback.  No chain reaches the final position until the
       last DP row completes, so a cut-short sweep has no partial optimum
       to return; the greedy maximal-step cover is the best-so-far
       incumbent instead — always valid, never certified.  The trivial
       bound 0 keeps [lower_bound]'s contract ([value >= lower_bound])
       without claiming anything. *)
    let group = Baselines.greedy validity in
    let perf = Estimator.evaluate_cached ~cache ctx ~batch group in
    finish ~budget_exhausted:true ~edges:0 ~group_evaluations:1
      ~value:(objective_value objective perf) ~lower_bound:0. ~exact:false group perf

let pp ppf r =
  Format.fprintf ppf
    "optimal(%s): %d partitions, value %.6g (lower bound %.6g, %s)@.  %d valid spans, %d evaluated, %d edges, %d group evaluation(s)@."
    (Fitness.objective_to_string r.objective)
    (Partition.partition_count r.group)
    r.value r.lower_bound
    (if r.exact then "exact" else "bound")
    r.stats.valid_spans r.stats.spans_evaluated r.stats.edges_relaxed
    r.stats.group_evaluations
