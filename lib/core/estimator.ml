open Compass_arch

type span_perf = {
  start_ : int;
  stop : int;
  io : Dataflow.partition_io;
  replication : Replication.t;
  cores_used : int;
  utilization : float;
  stage_times : (Compass_nn.Graph.node * float) list;
  bottleneck_s : float;
  fill_s : float;
  compute_s : float;
  check_s : float;
  unique_weight_bytes : float;
  programmed_bytes : float;
  write_s : float;
  io_load_bytes : float;
  io_store_bytes : float;
  io_dram_bytes : float;
  io_s : float;
  span_s : float;
  tiles_per_core : int array;
  wear_cost_s : float;
  mvm_energy_j : float;
  vfu_energy_j : float;
  write_energy_j : float;
  bus_energy_j : float;
  dram_energy_j : float;
}

type model_options = {
  write_overlap : bool;
  onchip_buffering : bool;
  charge_writes : bool;
  faults : Fault.t option;
  abft : bool;
}

let default_options =
  {
    write_overlap = true;
    onchip_buffering = true;
    charge_writes = true;
    faults = None;
    abft = false;
  }

type endurance = {
  macro_writes_per_batch : int;
  writes_per_inference : float;
  max_writes_per_macro_per_inference : float;
  projected_lifetime_inferences : float option;
}

type perf = {
  batch : int;
  spans : span_perf list;
  batch_latency_s : float;
  throughput_per_s : float;
  energy_j : float;
  energy_per_sample_j : float;
  edp_j_s : float;
  energy_components : (string * float) list;
  endurance : endurance;
}

let span_perf ?(options = default_options) ctx ~batch ~start_ ~stop =
  if batch < 1 then invalid_arg "Estimator.span_perf: batch < 1";
  let units = Dataflow.units ctx in
  let chip = units.Unit_gen.chip in
  let io = Dataflow.span_io ctx ~start_ ~stop in
  let layers, replication, mapping =
    match Dataflow.table ctx with
    | Some _ ->
      (* Span-table path: IO and layer timings are computed exactly once
         (the layer list threads into the allocator) and the allocator's
         final feasibility packing is reused instead of packing again. *)
      let layers = Perf_model.span_layers ~io ctx ~start_ ~stop in
      let replication, packed =
        Replication.allocate_packed ?faults:options.faults ~layers ctx ~batch ~start_
          ~stop
      in
      (match packed with
      | Ok m -> (layers, replication, m)
      | Error msg -> invalid_arg ("Estimator.span_perf: infeasible span: " ^ msg))
    | None ->
      (* Reference path: the original control flow, recomputing the span IO
         inside [span_layers] and the layer list inside [allocate] — kept
         as the differential-testing oracle and the benchmark baseline. *)
      let layers = Perf_model.span_layers ctx ~start_ ~stop in
      let replication =
        Replication.allocate ?faults:options.faults ctx ~batch ~start_ ~stop
      in
      (match
         Mapping.pack ?faults:options.faults units ~start_ ~stop
           ~replication:(Replication.unit_replication replication units)
       with
      | Ok m -> (layers, replication, m)
      | Error msg -> invalid_arg ("Estimator.span_perf: infeasible span: " ^ msg))
  in
  let fbatch = float_of_int batch in
  (* Per-node replication as an array (same values [replication_of] would
     walk the assoc list for; absent nodes replicate 1x). *)
  let rep_of =
    let arr = Array.make (Compass_nn.Graph.node_count units.Unit_gen.model) 1 in
    List.iter (fun (n, r) -> arr.(n) <- r) replication.Replication.per_layer;
    arr
  in
  (* Compute phase.  With ABFT on, every layer's per-sample stage gains
     the checksum verification its primary core runs after each MVM —
     the same per-MVM op count the scheduler's [Check] emission uses, at
     one core's VFU rate, so estimate and simulation agree. *)
  let check_of (p : Perf_model.layer_perf) =
    if not options.abft then 0.
    else
      float_of_int
        (p.Perf_model.mvms
        * Abft.check_ops_per_mvm ~macro_ops:p.Perf_model.macro_ops_per_mvm)
      /. float_of_int chip.Config.core.Config.vfus_per_core
      /. chip.Config.core.Config.clock_hz
  in
  let stage_times =
    List.map
      (fun (p : Perf_model.layer_perf) ->
        ( p.Perf_model.node,
          Perf_model.stage_time_s p ~replication:rep_of.(p.Perf_model.node)
          +. check_of p ))
      layers
  in
  let check_s =
    fbatch *. List.fold_left (fun acc p -> acc +. check_of p) 0. layers
  in
  let cores_used = Mapping.cores_used mapping in
  let attached_ops = Perf_model.attached_vfu_ops ctx io in
  let lanes =
    float_of_int (max 1 cores_used * chip.Config.core.Config.vfus_per_core)
  in
  let attached_stage_s =
    float_of_int attached_ops /. lanes /. chip.Config.core.Config.clock_hz
  in
  let bottleneck_s =
    List.fold_left (fun acc (_, s) -> max acc s) attached_stage_s stage_times
  in
  let fill_s =
    List.fold_left (fun acc (p : Perf_model.layer_perf) -> acc +. p.Perf_model.op_time_s) 0. layers
  in
  let compute_s = fill_s +. (fbatch *. bottleneck_s) in
  (* Weight replacement phase. *)
  let unique_weight_bytes = Unit_gen.span_weight_bytes units start_ stop in
  let programmed_bytes =
    List.fold_left
      (fun acc (p : Perf_model.layer_perf) ->
        acc
        +. (float_of_int rep_of.(p.Perf_model.node) *. p.Perf_model.weight_bytes_in_span))
      0. layers
  in
  let xbar = chip.Config.crossbar in
  let program_parallel_s =
    (* Cores program their macros serially; cores in parallel. *)
    let worst = Array.fold_left max 0 mapping.Mapping.tiles_used in
    float_of_int worst *. Crossbar.write_latency_s xbar
  in
  let dram_fetch_s = Compass_dram.Dram.analytic_seconds unique_weight_bytes in
  let bus_fetch_s =
    Interconnect.transfer_time_s chip.Config.bus ~bytes:unique_weight_bytes
  in
  let write_s =
    if options.charge_writes then max (max dram_fetch_s bus_fetch_s) program_parallel_s
    else 0.
  in
  (* IO phase (per batch).  Inter-partition tensors live in the cores'
     local memories when a batch of them fits; model inputs/outputs and
     oversized tensors stream through DRAM. *)
  let io_load_bytes = fbatch *. io.Dataflow.load_bytes in
  let io_store_bytes = fbatch *. io.Dataflow.store_bytes in
  let io_bytes = io_load_bytes +. io_store_bytes in
  let goes_to_dram node =
    (not options.onchip_buffering) || Dataflow.spills_to_dram ctx ~batch node
  in
  let dram_endpoint_bytes endpoints =
    List.fold_left
      (fun (n, bytes) (node, b) ->
        if goes_to_dram node then (n + 1, bytes +. (fbatch *. b)) else (n, bytes))
      (0, 0.) endpoints
  in
  let n_dram_loads, dram_load_bytes = dram_endpoint_bytes io.Dataflow.loads in
  let n_dram_stores, dram_store_bytes = dram_endpoint_bytes io.Dataflow.stores in
  let io_dram_bytes = dram_load_bytes +. dram_store_bytes in
  let io_s =
    if io_bytes <= 0. then 0.
    else
      let stream =
        max
          (Interconnect.transfer_time_s chip.Config.bus ~bytes:io_bytes)
          (Compass_dram.Dram.analytic_seconds io_dram_bytes)
      in
      stream
      +. (fbatch
         *. float_of_int (n_dram_loads + n_dram_stores)
         *. chip.Config.dram.Config.request_overhead_s)
  in
  let span_s = write_s +. max compute_s io_s in
  (* Energy. *)
  let macro_ops =
    fbatch
    *. List.fold_left
         (fun acc (p : Perf_model.layer_perf) ->
           acc +. float_of_int (p.Perf_model.mvms * p.Perf_model.macro_ops_per_mvm))
         0. layers
  in
  let check_ops =
    if not options.abft then 0.
    else
      fbatch
      *. List.fold_left
           (fun acc (p : Perf_model.layer_perf) ->
             acc
             +. float_of_int
                  (p.Perf_model.mvms
                  * Abft.check_ops_per_mvm ~macro_ops:p.Perf_model.macro_ops_per_mvm))
           0. layers
  in
  let vfu_ops =
    check_ops
    +. fbatch
       *. (float_of_int attached_ops
          +. List.fold_left
               (fun acc (p : Perf_model.layer_perf) ->
                 acc +. float_of_int (p.Perf_model.mvms * p.Perf_model.vfu_ops_per_mvm))
               0. layers)
  in
  let dram_bytes = unique_weight_bytes +. io_dram_bytes in
  let bus_bytes = unique_weight_bytes +. io_bytes in
  (* Per-sample macro-programming time: the wear-penalty surrogate the
     [Fitness.Wear] objective minimizes.  Zero when writes are free
     (all-on-chip mode pins weights once). *)
  let wear_cost_s =
    if options.charge_writes then
      float_of_int mapping.Mapping.total_tiles *. Crossbar.write_latency_s xbar /. fbatch
    else 0.
  in
  {
    start_;
    stop;
    io;
    replication;
    cores_used;
    utilization = Mapping.utilization mapping;
    stage_times;
    bottleneck_s;
    fill_s;
    compute_s;
    check_s;
    unique_weight_bytes;
    programmed_bytes;
    write_s;
    io_load_bytes;
    io_store_bytes;
    io_dram_bytes;
    io_s;
    span_s;
    tiles_per_core = Array.copy mapping.Mapping.tiles_used;
    wear_cost_s;
    mvm_energy_j = Energy.mvm_j chip ~macro_ops;
    vfu_energy_j = Energy.vfu_j chip ~ops:vfu_ops;
    write_energy_j = Energy.weight_write_j chip ~bytes:programmed_bytes;
    bus_energy_j = Energy.bus_j chip ~bytes:bus_bytes;
    dram_energy_j = Compass_dram.Dram.analytic_energy_j dram_bytes;
  }

(* Weight-replacement wear: each placed tile is one macro programming per
   batch.  First-fit packing fills each core's macro slots from slot 0, so
   slot [s] of core [c] is rewritten by every span using more than [s]
   tiles on [c]; the busiest (core, slot) pair bounds device lifetime. *)
let endurance_of ~options chip ~batch spans =
  let no_wear =
    {
      macro_writes_per_batch = 0;
      writes_per_inference = 0.;
      max_writes_per_macro_per_inference = 0.;
      projected_lifetime_inferences = None;
    }
  in
  if not options.charge_writes then no_wear
  else begin
    let ncores = chip.Config.cores in
    let nominal = chip.Config.core.Config.macros_per_core in
    let slot_writes = Array.make_matrix ncores (max 1 nominal) 0 in
    let total = ref 0 in
    List.iter
      (fun sp ->
        Array.iteri
          (fun c used ->
            total := !total + used;
            for slot = 0 to min used nominal - 1 do
              slot_writes.(c).(slot) <- slot_writes.(c).(slot) + 1
            done)
          sp.tiles_per_core)
      spans;
    let worst =
      Array.fold_left
        (fun acc row -> Array.fold_left max acc row)
        0 slot_writes
    in
    let fbatch = float_of_int batch in
    let max_per_inference = float_of_int worst /. fbatch in
    let budget = Option.bind options.faults Fault.endurance_budget in
    {
      macro_writes_per_batch = !total;
      writes_per_inference = float_of_int !total /. fbatch;
      max_writes_per_macro_per_inference = max_per_inference;
      projected_lifetime_inferences =
        (match budget with
        | Some b when max_per_inference > 0. -> Some (b /. max_per_inference)
        | _ -> None);
    }
  end

let combine ?(options = default_options) ctx ~batch spans =
  let chip = (Dataflow.units ctx).Unit_gen.chip in
  (* Inter-partition overlap: the next write hides under this partition's
     DRAM-idle compute time. *)
  let rec latency acc prev = function
    | [] -> acc
    | sp :: rest ->
      let exposed_write =
        match prev with
        | None -> sp.write_s
        | Some p when options.write_overlap ->
          let idle = max 0. (max p.compute_s p.io_s -. p.io_s) in
          max 0. (sp.write_s -. idle)
        | Some _ -> sp.write_s
      in
      latency (acc +. exposed_write +. max sp.compute_s sp.io_s) (Some sp) rest
  in
  let batch_latency_s = latency 0. None spans in
  let sum f = List.fold_left (fun acc sp -> acc +. f sp) 0. spans in
  let static_j = Energy.static_j chip ~seconds:batch_latency_s in
  let components =
    [
      ("mvm", sum (fun sp -> sp.mvm_energy_j));
      ("vfu", sum (fun sp -> sp.vfu_energy_j));
      ("weight_write", sum (fun sp -> sp.write_energy_j));
      ("bus", sum (fun sp -> sp.bus_energy_j));
      ("dram", sum (fun sp -> sp.dram_energy_j));
      ("static", static_j);
    ]
  in
  let energy_j = List.fold_left (fun acc (_, v) -> acc +. v) 0. components in
  let fbatch = float_of_int batch in
  {
    batch;
    spans;
    batch_latency_s;
    throughput_per_s = fbatch /. batch_latency_s;
    energy_j;
    energy_per_sample_j = energy_j /. fbatch;
    edp_j_s = energy_j /. fbatch *. batch_latency_s;
    energy_components = components;
    endurance = endurance_of ~options chip ~batch spans;
  }

let evaluate ?(options = default_options) ctx ~batch group =
  if batch < 1 then invalid_arg "Estimator.evaluate: batch < 1";
  Compass_util.Metrics.incr "estimator.group_evaluations";
  if Partition.total_units group <> Unit_gen.unit_count (Dataflow.units ctx) then
    invalid_arg "Estimator.evaluate: group does not cover the decomposition";
  let spans =
    List.map
      (fun (s : Partition.span) ->
        span_perf ~options ctx ~batch ~start_:s.Partition.start_ ~stop:s.Partition.stop)
      (Partition.spans group)
  in
  combine ~options ctx ~batch spans

module Span_cache = struct
  type cache = {
    batch : int;
    options : model_options;
    table : (int * int, span_perf) Hashtbl.t;
  }

  type t = cache

  let create ?(options = default_options) ~batch () =
    if batch < 1 then invalid_arg "Estimator.Span_cache.create: batch < 1";
    { batch; options; table = Hashtbl.create 1024 }

  let batch t = t.batch
  let options t = t.options
  let length t = Hashtbl.length t.table
  let find_opt t key = Hashtbl.find_opt t.table key
  let add t key sp = Hashtbl.replace t.table key sp

  (* span_perf results depend on (batch, options) as much as on the span
     itself; a cache is branded with both at creation and refuses to mix. *)
  let check_compatible ~what a b =
    if a.batch <> b.batch then
      invalid_arg
        (Printf.sprintf "%s: cache batch mismatch (%d vs %d)" what a.batch b.batch);
    if a.options <> b.options then invalid_arg (what ^ ": cache options mismatch")

  let merge_into dst ~src =
    check_compatible ~what:"Estimator.Span_cache.merge_into" dst src;
    Hashtbl.iter
      (fun key sp -> if not (Hashtbl.mem dst.table key) then Hashtbl.add dst.table key sp)
      src.table
end

let span_perf_cached ?shared ~cache ctx ~start_ ~stop =
  Option.iter
    (fun s -> Span_cache.check_compatible ~what:"Estimator.span_perf_cached" cache s)
    shared;
  let key = (start_, stop) in
  let hit =
    match Option.bind shared (fun s -> Span_cache.find_opt s key) with
    | Some sp -> Some sp
    | None -> Span_cache.find_opt cache key
  in
  match hit with
  | Some sp ->
    Compass_util.Metrics.incr "estimator.span_cache.hits";
    sp
  | None ->
    Compass_util.Metrics.incr "estimator.span_cache.misses";
    let sp =
      span_perf ~options:(Span_cache.options cache) ctx ~batch:(Span_cache.batch cache)
        ~start_ ~stop
    in
    Span_cache.add cache key sp;
    sp

let evaluate_cached ?shared ~cache ctx ~batch group =
  if batch < 1 then invalid_arg "Estimator.evaluate_cached: batch < 1";
  Compass_util.Metrics.incr "estimator.group_evaluations";
  if Span_cache.batch cache <> batch then
    invalid_arg
      (Printf.sprintf "Estimator.evaluate_cached: cache built for batch %d, called with %d"
         (Span_cache.batch cache) batch);
  Option.iter
    (fun s -> Span_cache.check_compatible ~what:"Estimator.evaluate_cached" cache s)
    shared;
  let options = Span_cache.options cache in
  let spans =
    List.map
      (fun (s : Partition.span) ->
        span_perf_cached ?shared ~cache ctx ~start_:s.Partition.start_
          ~stop:s.Partition.stop)
      (Partition.spans group)
  in
  combine ~options ctx ~batch spans

let pp_breakdown model ppf perf =
  let open Compass_util in
  Format.fprintf ppf "batch %d: latency %s, throughput %a, energy/sample %s, EDP %.3g Js@."
    perf.batch
    (Units.time_to_string perf.batch_latency_s)
    Units.pp_rate perf.throughput_per_s
    (Units.energy_to_string perf.energy_per_sample_j)
    perf.edp_j_s;
  let line k sp =
    let layer_names =
      String.concat ","
        (List.map
           (fun n -> (Compass_nn.Graph.layer model n).Compass_nn.Layer.name)
           sp.io.Dataflow.weighted_layers)
    in
    let max_rep = Replication.max_replication sp.replication in
    Format.fprintf ppf
      "  P%-2d units[%d,%d) cores=%-2d rep<=%-2d write=%-10s compute=%-10s io=%-10s | %s@."
      k sp.start_ sp.stop sp.cores_used max_rep
      (Units.time_to_string sp.write_s)
      (Units.time_to_string sp.compute_s)
      (Units.time_to_string sp.io_s)
      layer_names
  in
  List.iteri line perf.spans;
  let e = perf.endurance in
  if e.macro_writes_per_batch > 0 then begin
    Format.fprintf ppf
      "  endurance: %.1f macro writes/inference, worst macro %.2f writes/inference"
      e.writes_per_inference e.max_writes_per_macro_per_inference;
    (match e.projected_lifetime_inferences with
    | Some n -> Format.fprintf ppf ", projected lifetime %.3g inferences" n
    | None -> ());
    Format.fprintf ppf "@."
  end
