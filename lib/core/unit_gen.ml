open Compass_nn
open Compass_arch

type unit_t = {
  index : int;
  layer : Graph.node;
  layer_order : int;
  col_lo : int;
  col_hi : int;
  row_lo : int;
  row_hi : int;
  row_blocks : int;
  col_blocks : int;
  tiles : int;
  weight_bytes : float;
  partial_sum : bool;
}

type t = {
  model : Graph.t;
  chip : Config.chip;
  units : unit_t array;
  layer_units : (Graph.node * int list) list;
  tiles_prefix : int array;
  weight_bytes_prefix : float array;
}

let ceil_div a b = (a + b - 1) / b

(* Decompose one weighted layer into units for a given macro budget. *)
let layer_units_of ~xbar ~macros ~layer ~layer_order ~next_index =
  let op = layer.Layer.op in
  let rows = Layer.weight_rows op in
  let cols = Layer.weight_cols op in
  let lrows = xbar.Crossbar.rows in
  let lcols = Crossbar.logical_cols xbar in
  let weight_bits = float_of_int xbar.Crossbar.weight_bits in
  let rb_total = ceil_div rows lrows in
  let cb_total = ceil_div cols lcols in
  let bytes ~row_lo ~row_hi ~col_lo ~col_hi =
    float_of_int ((row_hi - row_lo) * (col_hi - col_lo)) *. weight_bits /. 8.
  in
  let units = ref [] in
  let index = ref next_index in
  if rb_total <= macros then begin
    (* Whole input dimension fits a core: pack as many column blocks as the
       remaining macros allow into each unit. *)
    let cb_per_unit = max 1 (macros / rb_total) in
    let cb = ref 0 in
    while !cb < cb_total do
      let cb_here = min cb_per_unit (cb_total - !cb) in
      let col_lo = !cb * lcols in
      let col_hi = min cols ((!cb + cb_here) * lcols) in
      units :=
        {
          index = !index;
          layer = layer.Layer.id;
          layer_order;
          col_lo;
          col_hi;
          row_lo = 0;
          row_hi = rows;
          row_blocks = rb_total;
          col_blocks = cb_here;
          tiles = rb_total * cb_here;
          weight_bytes = bytes ~row_lo:0 ~row_hi:rows ~col_lo ~col_hi;
          partial_sum = false;
        }
        :: !units;
      incr index;
      cb := !cb + cb_here
    done
  end
  else
    (* Row demand exceeds a core: split each column block along the input
       dimension; partial sums are merged by the VFUs. *)
    for cb = 0 to cb_total - 1 do
      let col_lo = cb * lcols in
      let col_hi = min cols ((cb + 1) * lcols) in
      let rb = ref 0 in
      while !rb < rb_total do
        let rb_here = min macros (rb_total - !rb) in
        let row_lo = !rb * lrows in
        let row_hi = min rows ((!rb + rb_here) * lrows) in
        units :=
          {
            index = !index;
            layer = layer.Layer.id;
            layer_order;
            col_lo;
            col_hi;
            row_lo;
            row_hi;
            row_blocks = rb_here;
            col_blocks = 1;
            tiles = rb_here;
            weight_bytes = bytes ~row_lo ~row_hi ~col_lo ~col_hi;
            partial_sum = true;
          }
          :: !units;
        incr index;
        rb := !rb + rb_here
      done
    done;
  (List.rev !units, !index)

let generate model chip =
  let weighted = Graph.weighted_nodes model in
  if weighted = [] then invalid_arg "Unit_gen.generate: model has no weighted layer";
  let xbar = chip.Config.crossbar in
  let macros = chip.Config.core.Config.macros_per_core in
  let next = ref 0 in
  let per_layer = ref [] in
  let all = ref [] in
  List.iteri
    (fun layer_order node ->
      let layer = Graph.layer model node in
      let units, next' =
        layer_units_of ~xbar ~macros ~layer ~layer_order ~next_index:!next
      in
      next := next';
      per_layer := (node, List.map (fun u -> u.index) units) :: !per_layer;
      all := List.rev_append units !all)
    weighted;
  let units = Array.of_list (List.rev !all) in
  let m = Array.length units in
  (* Prefix sums make span tile/byte queries O(1).  Per-unit weight bytes
     are dyadic rationals far below 2^52, so every partial sum is exact and
     prefix differences match the direct left-to-right sum bit for bit. *)
  let tiles_prefix = Array.make (m + 1) 0 in
  let weight_bytes_prefix = Array.make (m + 1) 0. in
  for i = 0 to m - 1 do
    tiles_prefix.(i + 1) <- tiles_prefix.(i) + units.(i).tiles;
    weight_bytes_prefix.(i + 1) <- weight_bytes_prefix.(i) +. units.(i).weight_bytes
  done;
  { model; chip; units; layer_units = List.rev !per_layer; tiles_prefix; weight_bytes_prefix }

let unit_count t = Array.length t.units

let units_of_layer t node = List.assoc node t.layer_units

let layer_of_unit t i =
  if i < 0 || i >= Array.length t.units then invalid_arg "Unit_gen.layer_of_unit";
  t.units.(i).layer

let span_tiles t a b =
  if a < 0 || b > Array.length t.units || a > b then invalid_arg "Unit_gen.span_tiles";
  t.tiles_prefix.(b) - t.tiles_prefix.(a)

let span_weight_bytes t a b =
  if a < 0 || b > Array.length t.units || a > b then
    invalid_arg "Unit_gen.span_weight_bytes";
  t.weight_bytes_prefix.(b) -. t.weight_bytes_prefix.(a)

let total_tiles t = span_tiles t 0 (Array.length t.units)

let col_fraction u model =
  let cols = Compass_nn.Layer.weight_cols (Graph.layer model u.layer).Layer.op in
  float_of_int (u.col_hi - u.col_lo) /. float_of_int cols

let pp_unit ppf u =
  Format.fprintf ppf "u%d L%d[%d] cols[%d,%d) rows[%d,%d) %d tiles%s" u.index u.layer
    u.layer_order u.col_lo u.col_hi u.row_lo u.row_hi u.tiles
    (if u.partial_sum then " (psum)" else "")

let pp_summary ppf t =
  Format.fprintf ppf "%s on chip %s: %d units, %d tiles (%d macros on chip)@."
    (Graph.name t.model) t.chip.Config.label (unit_count t) (total_tiles t)
    (Config.total_macros t.chip);
  let line (node, idxs) =
    let l = Graph.layer t.model node in
    Format.fprintf ppf "  %-18s %3d units@." l.Layer.name (List.length idxs)
  in
  List.iter line t.layer_units
