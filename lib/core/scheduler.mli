(** Instruction scheduling (paper Sec. III-A, "scheduler").

    Lowers a partition group to one aggregate-instruction program per core
    (see [Compass_isa.Instr]) covering one batch:

    - per partition: each core programs its macros ([Weight_write],
      overlapping the previous partition's drain on other cores, as in
      Fig. 2), then a chip-wide barrier orders the partition's loads behind
      the previous partition's stores;
    - entry tensors are loaded from global memory by the first consuming
      core and redistributed over the bus; exit tensors are stored by each
      producing core (its column share);
    - tensors that fit the on-chip activation buffers are handed to the
      next partition as core-to-core [Send]/[Recv] pairs instead of
      DRAM round trips ([Dataflow.spills_to_dram] decides);
    - compute is emitted in [chunks] batch slices so the simulator
      reproduces intra-partition pipelining across layers.

    Weight blobs live in a dedicated DRAM region; boundary tensors are
    placed by [Memory_alloc] when produced and freed after their last
    consumer, giving the DRAM trace realistic, reusable addresses. *)

type t = {
  programs : Compass_isa.Program.t list;  (** One per core, core id order. *)
  weight_region_bytes : int;  (** DRAM reserved for weights. *)
  activation_high_water_bytes : int;  (** Peak live boundary-tensor bytes. *)
  instruction_count : int;
  spans : Partition.span list;
}

val build :
  ?faults:Compass_arch.Fault.t ->
  ?abft:bool ->
  Dataflow.ctx ->
  Partition.t ->
  batch:int ->
  ?chunks:int ->
  unit ->
  t
(** [chunks] (default 4, clamped to [batch]) slices the batch for
    pipelined emission.  Under [faults], placement uses per-core effective
    capacities, so dead cores receive no work (they still participate in
    the chip-wide [Sync] barriers, which are control broadcasts).
    [?abft] (default false) emits a [Check] instruction per layer per
    chunk on the layer's primary core — the ABFT checksum verification of
    that chunk's MVM results, costed via {!Abft.check_ops_per_mvm} —
    mirrored by the estimator's [abft] model option.  Raises
    [Invalid_argument] on a group that does not cover the decomposition or
    a non-positive batch. *)

val simulate : Dataflow.ctx -> t -> Compass_isa.Sim.result
(** Run the programs through the event-driven chip simulator. *)

val dram_stats : Dataflow.ctx -> Compass_isa.Sim.result -> Compass_dram.Controller.stats
(** Replay the simulation's DRAM trace through the bank-accurate LPDDR3
    model (the paper's DRAMsim3 step). *)
