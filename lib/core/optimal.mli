(** Exact partitioning by dynamic programming over the valid-span DAG.

    The GA (Algorithm 1) searches the space of valid partition groups
    stochastically; this module solves the same problem exactly for the
    separable objectives.  A group's batch latency is

    [sum over spans (exposed_write + max(compute, io))]

    where the exposed write of a span depends only on its {e predecessor}
    span (the write fetch hides under the predecessor's DRAM-idle compute).
    That makes latency a sum of edge costs over chains in the DAG whose
    nodes are cut positions and whose edges are valid spans — so a
    shortest-path DP with one state per valid span (the state remembers the
    incoming span) finds the latency-optimal group after evaluating each
    valid span exactly once.  Energy is [dynamic + static_power x latency],
    also edge-separable; the wear surrogate is a plain span sum.  EDP is a
    product of two chain sums and is not separable: the DP instead returns
    the better of the latency- and energy-optimal groups together with the
    certified lower bound [(E_min / batch) x L_min].

    Against the GA this trades stochastic group sampling (hundreds to
    thousands of full-group evaluations) for a single sweep over the valid
    spans plus O(M^3) float arithmetic — and returns a certificate. *)

type stats = {
  valid_spans : int;  (** States of the DAG (size of the validity map). *)
  spans_evaluated : int;
      (** Spans newly run through the estimator (cache misses); at most
          [valid_spans], fewer when a warm cache is supplied. *)
  edges_relaxed : int;  (** DP transitions considered. *)
  group_evaluations : int;
      (** Full-group estimator evaluations (1; 2 for {!Fitness.Edp} when
          the two candidate chains differ).  The GA's [evaluations] counter
          is the comparable number. *)
}

type result = {
  objective : Fitness.objective;
  group : Partition.t;  (** The optimal (or incumbent, for EDP) group. *)
  perf : Estimator.perf;  (** Full estimator evaluation of [group]. *)
  value : float;  (** [objective_value objective perf]. *)
  lower_bound : float;
      (** Certified lower bound on the objective value of {e every} valid
          group.  Equals [value] when [exact]. *)
  exact : bool;
      (** Whether [value] is provably minimal ([Latency], [Energy], [Wear];
          up to floating-point rounding for [Energy]).  For [Edp] only when
          the incumbent happens to meet the bound. *)
  budget_exhausted : bool;
      (** True iff a {!Compass_util.Budget} expired mid-sweep; [group] is
          then the greedy anytime incumbent, [exact] is false and
          [lower_bound] degrades to the trivial 0. *)
  stats : stats;
}

val objective_value : Fitness.objective -> Estimator.perf -> float
(** The scalar each objective minimizes over whole groups: batch latency,
    batch energy, EDP, or the wear surrogate ({!Fitness.group_fitness}
    [Wear]).  Note this differs from the GA's internal fitness for
    [Latency]/[Energy], which sum per-span values without inter-span write
    overlap; comparisons between the DP and the GA should use this. *)

val optimize :
  ?objective:Fitness.objective ->
  ?options:Estimator.model_options ->
  ?cache:Estimator.Span_cache.t ->
  ?budget:Compass_util.Budget.t ->
  Dataflow.ctx ->
  Validity.t ->
  batch:int ->
  result
(** Run the DP.  [?cache] supplies a warm span cache (it is read and
    extended); its brand must match [batch] and [options] or
    [Invalid_argument] is raised.  Also raises on [batch < 1] or when the
    validity map does not match [ctx]'s decomposition.  Deterministic: ties
    keep the first (smallest-position) chain found.

    [?budget] bounds the sweep: the deadline is polled before every span
    evaluation, and on expiry the result degrades to the greedy anytime
    incumbent with [budget_exhausted] set (see {!type-result}) instead of
    raising or overrunning. *)

val pp : Format.formatter -> result -> unit
