(** Precomputed span-evaluation tables (the O(1) half of the exact-DP
    tentpole).

    Span cost queries — which weighted layers a span [\[a, b)] covers, how
    many tiles/weight bytes/output columns of each fall inside, which
    non-crossbar nodes are attached — are on the hot path of every
    estimator call: the GA, the baselines and the DP optimizer all issue
    thousands of them.  The original implementations re-walk the whole
    layer graph ([Dataflow.span_io]) or re-filter the full unit list
    ([Perf_model.span_layers]) per query.  This table turns them into
    array lookups:

    - [unit_layer.(i)] names unit [i]'s weighted node, and
      [unit_hi.(node) + 1] jumps to the next layer, so enumerating a
      span's layers is O(#layers in span);
    - prefix sums over per-unit tiles and columns (plus
      {!Unit_gen.t.tiles_prefix} / [weight_bytes_prefix]) make per-layer
      span shares O(1) differences;
    - per-node geometry ([rows], [cols], [row_blocks], [mvms]) avoids
      re-deriving layer shapes per query;
    - [attached] lists the non-weighted, non-input nodes once in
      topological order with their anchors, so span attachment is a
      filtered scan of a small array instead of a full graph walk.

    Built once per {!Dataflow.ctx} (see [Dataflow.context]'s
    [?span_table]); integer prefix differences are trivially exact, and
    the float weight-byte prefix is exact by the argument on
    {!Unit_gen.t.weight_bytes_prefix}, so the fast paths reproduce the
    reference walks bit for bit. *)

type t = {
  unit_layer : Compass_nn.Graph.node array;
      (** Per unit: the weighted node that owns it. *)
  cols_prefix : int array;
      (** Prefix sums of per-unit output-column counts; length [M + 1]. *)
  unit_lo : int array;  (** Per node: first unit index, [-1] if none. *)
  unit_hi : int array;  (** Per node: last unit index (inclusive), [-1] if none. *)
  rows : int array;  (** Per node: weight rows (0 for unweighted). *)
  cols : int array;  (** Per node: weight cols (0 for unweighted). *)
  row_blocks : int array;  (** Per node: macro row blocks of the tile grid. *)
  mvms : int array;  (** Per node: per-sample MVM count. *)
  attached : Compass_nn.Graph.node array;
      (** Non-weighted, non-input nodes in topological order. *)
  attached_anchor : int array;
      (** [Dataflow.home_unit] of each [attached] entry. *)
  vector_ops : int array;
      (** Per node: per-sample VFU element operations (0 for inputs). *)
  succ : Compass_nn.Graph.node list array;
      (** Per node: successor list ([Graph.succs] re-reverses its edge list
          on every call; this is that list, built once). *)
}

val create : Unit_gen.t -> anchor:int array -> t
(** [anchor] is the per-node home unit (from [Dataflow.context]). *)
