(** Partition validity map (paper Sec. III-B1, Fig. 5).

    For each start position [a], the map records the largest end [b] such
    that every span [\[a, b')] with [b' <= b] fits the chip at replication 1
    (total tile budget and core bin-packing both satisfied).  Random
    partition generation draws end positions only inside the valid range,
    guaranteeing every generated chromosome is feasible.

    Built with a {!Compass_arch.Fault} scenario, the map uses per-core
    *effective* capacities, so every valid span also routes around dead and
    degraded cores. *)

type t

val build : ?faults:Compass_arch.Fault.t -> Unit_gen.t -> t
(** Raises [Invalid_argument] if, under [faults], some single unit fits no
    usable core — the model cannot be compiled on the degraded chip at
    all.  Without [faults] this cannot happen (units are generated to fit
    a pristine core). *)

val units : t -> Unit_gen.t

val faults : t -> Compass_arch.Fault.t option
(** The scenario the map was built under, if any. *)

val size : t -> int
(** Number of partition units [M]. *)

val max_end : t -> int -> int
(** [max_end t a] for [0 <= a < size t]; always [> a] since a unit fits a
    core by construction (checked at build time under faults). *)

val is_valid : t -> start_:int -> stop:int -> bool
(** True iff [start_ < stop <= max_end t start_]. *)

val group_valid : t -> Partition.t -> bool
(** Every partition of the group is valid and the group covers
    [\[0, size t)]. *)

val density : t -> float
(** Fraction of [(a, b)] pairs with [a < b] that are valid — the "valid
    portion" the paper shows shrinking for larger models on smaller
    chips. *)

val random_cover : Compass_util.Rng.t -> t -> lo:int -> hi:int -> Partition.span list
(** Randomly tile [\[lo, hi)] with valid spans, clamping each step so the
    walk lands exactly on [hi].  Half the time each step jumps as far as
    the map allows (biasing towards fewer partitions); otherwise the end is
    uniform in the valid range.  The single random-cover policy shared by
    {!random_group} and the GA's FixedRandom mutation — its draw sequence
    is part of the GA's bit-identical-results contract. *)

val random_group : Compass_util.Rng.t -> t -> Partition.t
(** Draw a uniformly-covering valid partition group:
    [random_cover rng t ~lo:0 ~hi:(size t)] as a partition group. *)

val render : ?cells:int -> t -> string
(** ASCII heat map ([cells] x [cells], default 32): ['#'] valid span,
    ['.'] invalid, [' '] below the diagonal.  Degenerates to a title-only
    string when the map is empty. *)
