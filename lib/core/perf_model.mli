(** Per-layer timing primitives shared by the replication allocator and the
    partition estimator.

    The pipeline model follows ISAAC/PipeLayer-style accounting, extended
    as in the paper: each Conv output pixel is one MVM engaging all macros
    of the layer's units in parallel; the VFUs then merge row-block partial
    sums and apply the fused element-wise work.  A layer's units spread
    over several cores multiply the available VFU lanes, so larger chips
    with fewer, fatter units get slower per-pixel post-processing — the
    effect behind the paper's ResNet18-L observation. *)

type layer_perf = {
  node : Compass_nn.Graph.node;
  mvms : int;  (** Per-sample MVM count. *)
  tiles_in_span : int;
  weight_bytes_in_span : float;
  op_time_s : float;  (** Latency of one MVM including VFU merge. *)
  macro_ops_per_mvm : int;  (** Macros engaged by one MVM (span share). *)
  vfu_ops_per_mvm : int;  (** VFU element operations per MVM. *)
}

val span_layers :
  ?io:Dataflow.partition_io -> Dataflow.ctx -> start_:int -> stop:int -> layer_perf list
(** Weighted layers of the span in topological order.  On a context with a
    span table (the default) this is pure array arithmetic and needs no
    span IO.  Without a table it derives the layer list from
    [Dataflow.span_io]; callers that already computed the span's IO can
    pass it as [?io] to avoid recomputing it (it is ignored on the table
    path).  Raises [Invalid_argument] on an empty or out-of-range span. *)

val stage_time_s : layer_perf -> replication:int -> float
(** Per-sample pipeline stage time [mvms * op_time / replication]. *)

val attached_vfu_ops : Dataflow.ctx -> Dataflow.partition_io -> int
(** Per-sample VFU element operations of the span's attached non-weighted
    nodes. *)

val max_useful_replication : layer_perf -> int
(** Replicating beyond the per-sample MVM count cannot help. *)
