open Compass_nn
open Compass_arch

type policy = {
  max_retries : int;
  max_remaps : int;
  backoff_s : float;
  allow_remap : bool;
  budget : Compass_util.Budget.t option;
  sleep : float -> unit;
}

let default_policy =
  {
    max_retries = 2;
    max_remaps = 4;
    backoff_s = 1e-4;
    allow_remap = true;
    budget = None;
    (* Backoff is simulated, never slept: recovery must not block the
       request on wall-clock waits, and tests with simulated time must
       not flake.  Callers that really want to wait inject a sleep. *)
    sleep = ignore;
  }

type action =
  | Detected of {
      node : Graph.node;
      unit_index : int;
      col : int;
      core : int;
    }
  | Retried of {
      node : Graph.node;
      attempt : int;
      backoff_s : float;
    }
  | Remapped of {
      core : int;
      strategy : Compiler.repair_strategy;
    }
  | Degraded of { node : Graph.node }

type outcome =
  | Clean
  | Healed
  | Degraded_output

type report = {
  output : Tensor.t;
  reference : Tensor.t;
  outcome : outcome;
  bit_identical : bool;
  checks : int;
  detections : int;
  retries : int;
  remaps : int;
  degraded_layers : int;
  backoff_total_s : float;
  actions : action list;
  plan : Compiler.t;
  sites : Inject.site list;
}

(* A realized site bound to the core that physically holds its cell.  The
   fault lives in the hardware, not the logical unit: once recovery moves
   the unit to a different core (remap retires the victim), the freshly
   programmed cells read clean and the site goes inactive. *)
type bound_site = {
  site : Inject.site;
  home_core : int;
  mutable cleared : bool;  (* transient cleared by a retry *)
}

let metric = Compass_util.Metrics.incr

(* Replica-0 placement of every unit under [plan]'s group and fault
   scenario — the same replication + first-fit packing the scheduler
   uses, so localization names the core the schedule programs. *)
let core_map plan =
  let units = plan.Compiler.units in
  let ctx = plan.Compiler.ctx in
  let group = plan.Compiler.group in
  let faults = plan.Compiler.faults in
  let cache = Hashtbl.create 8 in
  fun unit_index ->
    let p = Partition.partition_of_unit group unit_index in
    let mapping =
      match Hashtbl.find_opt cache p with
      | Some m -> m
      | None ->
        let span = Partition.span_at group p in
        let replication =
          Replication.allocate ?faults ctx ~batch:1 ~start_:span.Partition.start_
            ~stop:span.Partition.stop
        in
        let m =
          match
            Mapping.pack ?faults units ~start_:span.Partition.start_
              ~stop:span.Partition.stop
              ~replication:(Replication.unit_replication replication units)
          with
          | Ok m -> m
          | Error msg -> invalid_arg ("Recovery: mapping failed: " ^ msg)
        in
        Hashtbl.add cache p m;
        m
    in
    Mapping.core_of_unit mapping ~unit_index ~replica:0

(* Augment a scenario with one more dead core, preserving everything else. *)
let retire faults ~cores victim =
  let base = match faults with Some f -> f | None -> Fault.healthy ~cores in
  let statuses = Array.init cores (Fault.status base) in
  statuses.(victim) <- Fault.Dead;
  Fault.make
    ?endurance_budget:(Fault.endurance_budget base)
    ~transient_cells:(Fault.transient_cells base)
    ~weight_flips:(Fault.weight_flips base)
    ?drift:(Fault.drift base) statuses

let run ?(policy = default_policy) ?(seed = 0) ?faults ~weights ~input plan0 =
  let units = plan0.Compiler.units in
  let model = units.Unit_gen.model in
  let chip = plan0.Compiler.chip in
  let bits = chip.Config.crossbar.Crossbar.weight_bits in
  let faults =
    match faults with
    | Some f -> Some f
    | None -> plan0.Compiler.faults
  in
  (* Quantize every weighted layer once; all execution (reference and
     healed) reads dequantized codes so recovered output can be compared
     bit for bit. *)
  let clean_codes : (Graph.node, int array) Hashtbl.t = Hashtbl.create 16 in
  let spec_of : (Graph.node, Quant.spec) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (node, _) ->
      let raw =
        match Hashtbl.find_opt weights node with
        | Some w -> w
        | None -> invalid_arg (Printf.sprintf "Recovery: missing weights for node %d" node)
      in
      let snapped, spec = Quant.quantize ~bits raw in
      Hashtbl.add clean_codes node (Quant.codes spec snapped);
      Hashtbl.add spec_of node spec)
    units.Unit_gen.layer_units;
  (* The checksum row of every unit, computed from pristine codes at
     "unit-generation" time — before any fault is realized. *)
  let rows_of node =
    Compass_nn.Layer.weight_rows (Graph.layer model node).Compass_nn.Layer.op
  in
  let unit_checksum =
    Array.map
      (fun (u : Unit_gen.unit_t) ->
        let node = u.Unit_gen.layer in
        let all = Hashtbl.find clean_codes node in
        let rows_total = rows_of node in
        Array.init
          (u.Unit_gen.col_hi - u.Unit_gen.col_lo)
          (fun c ->
            let mc = u.Unit_gen.col_lo + c in
            let sum = ref 0 in
            for mr = u.Unit_gen.row_lo to u.Unit_gen.row_hi - 1 do
              sum := !sum + all.((mc * rows_total) + mr)
            done;
            !sum))
      units.Unit_gen.units
  in
  (* Realize fault sites and bind each to its physical home core. *)
  let sites =
    match faults with
    | Some f when Fault.has_cell_faults f -> Inject.realize units ~faults:f ~seed
    | _ -> []
  in
  let plan = ref plan0 in
  let locate = ref (core_map !plan) in
  let bound =
    List.map
      (fun (s : Inject.site) ->
        { site = s; home_core = !locate s.Inject.unit_index; cleared = false })
      sites
  in
  let active b = (not b.cleared) && !locate b.site.Inject.unit_index = b.home_core in
  let sites_of_unit u = List.filter (fun b -> b.site.Inject.unit_index = u) bound in
  (* What the crossbars of [node] currently hold: clean codes overlaid
     with every active corruption. *)
  let read_layer node =
    let out = Array.copy (Hashtbl.find clean_codes node) in
    let rows_total = rows_of node in
    List.iter
      (fun idx ->
        let u = units.Unit_gen.units.(idx) in
        List.iter
          (fun b ->
            if active b then begin
              let mr = u.Unit_gen.row_lo + b.site.Inject.row in
              let mc = u.Unit_gen.col_lo + b.site.Inject.col in
              let i = (mc * rows_total) + mr in
              out.(i) <- Inject.corrupt_code ~bits b.site.Inject.kind out.(i)
            end)
          (sites_of_unit idx))
      (Unit_gen.units_of_layer units node);
    out
  in
  let checks = ref 0
  and detections = ref 0
  and retries = ref 0
  and remaps = ref 0
  and degraded_layers = ref 0
  and backoff_total = ref 0. in
  let actions = ref [] in
  let push a = actions := a :: !actions in
  let expired () =
    match policy.budget with Some b -> Compass_util.Budget.expired b | None -> false
  in
  (* One ABFT pass over every unit of a layer against the current codes. *)
  let verify_layer node codes =
    let rows_total = rows_of node in
    List.concat_map
      (fun idx ->
        incr checks;
        metric "recovery.checks";
        let u = units.Unit_gen.units.(idx) in
        let rows = u.Unit_gen.row_hi - u.Unit_gen.row_lo in
        let cols = u.Unit_gen.col_hi - u.Unit_gen.col_lo in
        let block = Array.make (rows * cols) 0 in
        for c = 0 to cols - 1 do
          for r = 0 to rows - 1 do
            block.((c * rows) + r) <-
              codes.(((u.Unit_gen.col_lo + c) * rows_total) + (u.Unit_gen.row_lo + r))
          done
        done;
        Abft.verify ~unit_index:idx ~rows ~cols ~codes:block ~checksum:unit_checksum.(idx))
      (Unit_gen.units_of_layer units node)
  in
  (* Bounded escalation for one layer: retry transients with exponential
     backoff, remap persistents to spare capacity, degrade as last
     resort.  Returns the codes the layer finally executes with. *)
  let heal node =
    Compass_util.Trace.with_span "recovery.verify" (fun () ->
        let codes = ref (read_layer node) in
        let mismatches = ref (verify_layer node !codes) in
        if !mismatches <> [] then begin
          List.iter
            (fun (m : Abft.mismatch) ->
              incr detections;
              metric "recovery.detections";
              push
                (Detected
                   {
                     node;
                     unit_index = m.Abft.unit_index;
                     col = m.Abft.col;
                     core = !locate m.Abft.unit_index;
                   }))
            !mismatches;
          (* Stage 1: retry — transient stuck-at cells clear on re-read. *)
          let attempt = ref 0 in
          while !mismatches <> [] && !attempt < policy.max_retries && not (expired ()) do
            let backoff = policy.backoff_s *. (2. ** float_of_int !attempt) in
            backoff_total := !backoff_total +. backoff;
            policy.sleep backoff;
            incr retries;
            metric "recovery.retries";
            push (Retried { node; attempt = !attempt; backoff_s = backoff });
            List.iter
              (fun (m : Abft.mismatch) ->
                List.iter
                  (fun b -> if b.site.Inject.transient then b.cleared <- true)
                  (sites_of_unit m.Abft.unit_index))
              !mismatches;
            incr attempt;
            codes := read_layer node;
            mismatches := verify_layer node !codes
          done;
          (* Stage 2: remap — retire the faulty core and repair the plan
             so the unit's weights are reprogrammed on spare capacity. *)
          while
            !mismatches <> [] && policy.allow_remap && !remaps < policy.max_remaps
            && not (expired ())
          do
            let victim = !locate (List.hd !mismatches).Abft.unit_index in
            let augmented =
              retire !plan.Compiler.faults ~cores:chip.Config.cores victim
            in
            match
              Compass_util.Trace.with_span "recovery.remap" (fun () ->
                  Compiler.repair !plan ~faults:augmented)
            with
            | Ok r ->
              plan := r.Compiler.plan;
              locate := core_map !plan;
              incr remaps;
              metric "recovery.remaps";
              push (Remapped { core = victim; strategy = r.Compiler.strategy });
              codes := read_layer node;
              mismatches := verify_layer node !codes
            | Error _ ->
              (* No spare capacity: stop escalating, serve degraded. *)
              mismatches := [];
              incr degraded_layers;
              metric "recovery.degraded";
              push (Degraded { node });
              codes := read_layer node
          done;
          (* Stage 3: degrade — flag the output but keep serving. *)
          if !mismatches <> [] then begin
            incr degraded_layers;
            metric "recovery.degraded";
            push (Degraded { node })
          end
        end;
        !codes)
  in
  let is_weighted = Hashtbl.create 16 in
  List.iter (fun (n, _) -> Hashtbl.add is_weighted n ()) units.Unit_gen.layer_units;
  let input_node =
    match Graph.entry_nodes model with
    | [ n ] -> n
    | _ -> invalid_arg "Recovery.run: expected exactly one input"
  in
  let dequant node codes = Quant.dequantize (Hashtbl.find spec_of node) codes in
  (* Execute the model with a per-layer code source; reference and healed
     runs share this path so identical codes give bit-identical outputs. *)
  let execute codes_for =
    let exec_weights : Executor.weights = Hashtbl.create 16 in
    let tensors : (Graph.node, Tensor.t) Hashtbl.t = Hashtbl.create 32 in
    Hashtbl.add tensors input_node input;
    List.iter
      (fun v ->
        if v <> input_node then begin
          if Hashtbl.mem is_weighted v then
            Hashtbl.replace exec_weights v (dequant v (codes_for v));
          let inputs =
            List.map
              (fun u ->
                match Hashtbl.find_opt tensors u with
                | Some t -> t
                | None ->
                  invalid_arg
                    (Printf.sprintf "Recovery: node %d needs %d before it is available" v u))
              (Graph.preds model v)
          in
          Hashtbl.add tensors v (Executor.apply_node model exec_weights v inputs)
        end)
      (Graph.topo_order model);
    let exit_node =
      match Graph.exit_nodes model with
      | [ n ] -> n
      | _ -> invalid_arg "Recovery.run: expected exactly one output"
    in
    match Hashtbl.find_opt tensors exit_node with
    | Some t -> t
    | None -> invalid_arg "Recovery.run: output never produced"
  in
  let reference = execute (fun node -> Hashtbl.find clean_codes node) in
  let output =
    Compass_util.Trace.with_span "recovery.execute" (fun () -> execute heal)
  in
  let bit_identical = Tensor.equal ~eps:0. reference output in
  let outcome =
    if !degraded_layers > 0 then Degraded_output
    else if !detections > 0 then Healed
    else Clean
  in
  {
    output;
    reference;
    outcome;
    bit_identical;
    checks = !checks;
    detections = !detections;
    retries = !retries;
    remaps = !remaps;
    degraded_layers = !degraded_layers;
    backoff_total_s = !backoff_total;
    actions = List.rev !actions;
    plan = !plan;
    sites;
  }

let pp_action ppf = function
  | Detected { node; unit_index; col; core } ->
    Format.fprintf ppf "detected: node %d unit %d col %d (core %d)" node unit_index col
      core
  | Retried { node; attempt; backoff_s } ->
    Format.fprintf ppf "retried: node %d attempt %d (backoff %.1e s)" node attempt
      backoff_s
  | Remapped { core; strategy } ->
    Format.fprintf ppf "remapped: retired core %d (%s)" core
      (match strategy with
      | Compiler.Unchanged -> "mapping moved"
      | Compiler.Remapped n -> Printf.sprintf "%d spans re-split" n
      | Compiler.Recompiled -> "recompiled")
  | Degraded { node } -> Format.fprintf ppf "degraded: node %d output flagged" node

let pp_report ppf r =
  Format.fprintf ppf
    "recovery: %s (%d checks, %d detections, %d retries, %d remaps, %d degraded)"
    (match r.outcome with
    | Clean -> "clean"
    | Healed -> "healed"
    | Degraded_output -> "degraded")
    r.checks r.detections r.retries r.remaps r.degraded_layers
