open Compass_arch

type kind =
  | Stuck_at of int
  | Bit_flip of int
  | Drift of int

type site = {
  unit_index : int;
  row : int;
  col : int;
  kind : kind;
  transient : bool;
}

let unit_cells (u : Unit_gen.unit_t) =
  (u.Unit_gen.row_hi - u.Unit_gen.row_lo) * (u.Unit_gen.col_hi - u.Unit_gen.col_lo)

let total_cells units =
  Array.fold_left (fun acc u -> acc + unit_cells u) 0 units.Unit_gen.units

(* Corruption is exact integer arithmetic on the signed weight code; the
   result is guaranteed to differ from the clean code so every realized
   site is observable by an integer checksum comparison. *)
let corrupt_code ~bits kind code =
  let q = Compass_nn.Quant.levels bits in
  let clamp c = max (-q) (min q c) in
  let displaced c = if c > -q then c - 1 else c + 1 in
  let corrupted =
    match kind with
    | Stuck_at v -> clamp v
    | Bit_flip b ->
      (* Offset-binary storage: biased = code + q in [0, 2q]. *)
      let biased = code + q in
      clamp ((biased lxor (1 lsl b)) - q)
    | Drift d ->
      let c = clamp (code + d) in
      if c = code then clamp (code - d) else c
  in
  if corrupted = code then displaced code else corrupted

let drift_count units drift =
  match drift with
  | None -> 0
  | Some rate ->
    let total = float_of_int (total_cells units) in
    max 1 (int_of_float (Float.ceil (rate *. total)))

let realize units ~faults ~seed =
  let n_transient = Fault.transient_cells faults in
  let n_flip = Fault.weight_flips faults in
  let n_drift = drift_count units (Fault.drift faults) in
  let n = n_transient + n_flip + n_drift in
  if n = 0 then []
  else begin
    let total = total_cells units in
    if n > total then
      invalid_arg
        (Printf.sprintf "Inject.realize: %d cell faults requested but the model has %d cells"
           n total);
    let m = Array.length units.Unit_gen.units in
    let prefix = Array.make (m + 1) 0 in
    for i = 0 to m - 1 do
      prefix.(i + 1) <- prefix.(i) + unit_cells units.Unit_gen.units.(i)
    done;
    let bits = units.Unit_gen.chip.Config.crossbar.Crossbar.weight_bits in
    let q = Compass_nn.Quant.levels bits in
    let rng = Compass_util.Rng.create seed in
    let picks = Compass_util.Rng.sample_without_replacement rng n total in
    List.mapi
      (fun i cell ->
        (* Binary-search the owning unit in the prefix sums. *)
        let lo = ref 0 and hi = ref m in
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if prefix.(mid) <= cell then lo := mid else hi := mid
        done;
        let unit_index = !lo in
        let u = units.Unit_gen.units.(unit_index) in
        let rows = u.Unit_gen.row_hi - u.Unit_gen.row_lo in
        let local = cell - prefix.(unit_index) in
        (* Column-major within the unit, matching [Weight_layout]. *)
        let col = local / rows and row = local mod rows in
        let kind, transient =
          if i < n_transient then (Stuck_at (Compass_util.Rng.int_in rng (-q) q), true)
          else if i < n_transient + n_flip then
            (Bit_flip (Compass_util.Rng.int rng bits), false)
          else (Drift (if Compass_util.Rng.bool rng then 1 else -1), false)
        in
        { unit_index; row; col; kind; transient })
      picks
  end

let pp ppf s =
  let kind =
    match s.kind with
    | Stuck_at v -> Printf.sprintf "stuck-at %d" v
    | Bit_flip b -> Printf.sprintf "bit-flip b%d" b
    | Drift d -> Printf.sprintf "drift %+d" d
  in
  Format.fprintf ppf "%s cell (unit %d, row %d, col %d): %s"
    (if s.transient then "transient" else "persistent")
    s.unit_index s.row s.col kind
