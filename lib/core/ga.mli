(** The COMPASS genetic algorithm (paper Algorithm 1, Sec. III-C).

    Chromosomes are partition groups; genes are partitions.  Each
    generation keeps the [n_sel] fittest groups and fills the population
    with [n_mut] mutants drawn (with replacement) from the survivors.  The
    mutation victim inside a group is the partition with the worst
    partition score R, and one of four schemes is applied with equal
    probability:

    - {b Merge}: fuse the worst-scoring pair of neighbours;
    - {b Split}: cut the victim at a random interior point;
    - {b Move}: shift the victim's boundary into a neighbour;
    - {b FixedRandom}: keep the best-scoring partition, regenerate the
      rest randomly within the validity map.

    All offspring are validity-checked; failed mutations retry and fall
    back to a fresh random group, so the population never leaves the
    feasible region. *)

type mutation_scheme =
  | Merge
  | Split
  | Move
  | Fixed_random

val scheme_name : mutation_scheme -> string

type params = {
  population : int;
  generations : int;
  n_sel : int;
  n_mut : int;
  early_stop_patience : int;
      (** Stop after this many generations without best-fitness improvement;
          0 disables early stopping. *)
  mutation_retries : int;
  schemes : mutation_scheme list;
      (** Enabled mutation schemes, drawn with equal probability (the paper
          uses all four); restricting the list supports ablation studies. *)
  crossover_rate : float;
      (** Probability that an offspring comes from single-point crossover of
          two survivors instead of mutation.  The paper's GA is
          mutation-only; this is an extension, disabled (0.0) by default. *)
  seed : int;
  jobs : int;
      (** Worker-domain count for candidate evaluation (the [-j] knob).
          [1] runs fully sequentially.  The search result is bit-identical
          for every [jobs] value: mutation and selection stay on the main
          domain, each candidate mutates from its own [Rng.split] stream,
          and workers only run the pure estimator.  Both presets default
          to [Pool.default_jobs ()] ([COMPASS_JOBS], else 1). *)
  warm_start : Partition.t list;
      (** Seed groups injected verbatim into the initial population
          (validity-checked; invalid seeds are dropped, excess ones
          ignored).  Typically {!Optimal.optimize}'s group, so the GA
          starts at the DP optimum and can only improve on its own fitness
          proxy.  Empty (the default) leaves the search bit-identical to
          the unseeded run. *)
}

val default_params : params
(** The paper's setting: population 100, 30 generations, n_sel 20,
    n_mut 80, early stopping (patience 10). *)

val quick_params : params
(** A small budget for tests and examples (population 24, 10 generations). *)

type individual = {
  group : Partition.t;
  perf : Estimator.perf;
  fitness : float;
}

type generation_record = {
  generation : int;
  selected : (float * int) list;  (** (fitness, #partitions) of survivors. *)
  mutated : (float * int) list;  (** (fitness, #partitions) of new mutants. *)
  best_fitness : float;
}

type result = {
  best : individual;
  history : generation_record list;  (** Oldest first; Fig. 10's data. *)
  generations_run : int;
  evaluations : int;  (** Number of group evaluations performed. *)
  cache_spans : int;  (** Distinct spans evaluated (cache size). *)
  budget_exhausted : bool;
      (** True iff a {!Compass_util.Budget} expired and cut the search
          short; [best] is then the best candidate evaluated before the
          deadline rather than the full search's answer. *)
}

type checkpoint = {
  ck_params : params;
      (** The run's search configuration; re-applied on resume (only
          [jobs] follows the resuming caller — it cannot affect the
          trajectory). *)
  ck_objective : Fitness.objective;
  ck_batch : int;
  ck_generation : int;  (** Next generation index to run. *)
  ck_rng_state : int64;  (** Raw main-stream RNG state ({!Compass_util.Rng.state}). *)
  ck_best_seen : float;  (** Early-stopping incumbent. *)
  ck_stall : int;  (** Generations since the incumbent improved. *)
  ck_evaluations : int;
  ck_population : Partition.t array;
      (** The exact post-selection population, in its in-memory order —
          selection re-sorts it on resume precisely as the uninterrupted
          run would. *)
  ck_history : generation_record list;  (** Oldest first. *)
}
(** A complete, resumable snapshot of the search at a generation
    boundary.  Resuming from it replays the remaining generations
    bit-identically to the uninterrupted run: the RNG continues its
    stream, and the population is re-evaluated (evaluation is pure, so
    only the [evaluations] counter shows the resume happened). *)

val mutate :
  mutation_scheme ->
  Compass_util.Rng.t ->
  Validity.t ->
  scores:float array ->
  Partition.t ->
  Partition.t
(** Apply one mutation scheme to a group whose per-partition scores are
    [scores] (one per partition, higher = worse).  The result is always a
    contiguous cover of the unit range but may violate the validity map
    (the search retries in that case).  Raises [Invalid_argument] when the
    scheme is inapplicable (e.g. [Merge] on a single partition).  Exposed
    for property tests and ablation studies. *)

val optimize :
  ?params:params ->
  ?objective:Fitness.objective ->
  ?options:Estimator.model_options ->
  ?cache:Estimator.Span_cache.t ->
  ?budget:Compass_util.Budget.t ->
  ?supervision:Compass_util.Pool.supervision ->
  ?resume:checkpoint ->
  ?on_checkpoint:(checkpoint -> unit) ->
  Dataflow.ctx ->
  Validity.t ->
  batch:int ->
  result
(** Run the search.  With [params.jobs > 1], candidate evaluation fans out
    over that many domains; the result (best plan, history, evaluation and
    cache counts) is bit-identical to the sequential run for the same
    seed.  [?cache] supplies the run-wide span cache (extended in place):
    pre-populated entries are pure functions of their keys, so a warm cache
    only speeds the run up — the trajectory is unchanged, though the
    reported [cache_spans] then counts the warm entries too.

    [?budget] makes the search {e anytime}: the deadline is polled before
    every evaluation wave ([jobs] candidates; a single one at [jobs = 1]),
    so expiry overruns by at most one wave, and the result carries the
    best candidate evaluated so far with [budget_exhausted] set.  At least
    one candidate is always evaluated, even under an already-expired
    budget.  A budget generous enough to never expire leaves the run
    bit-identical to an unbudgeted one.

    [?supervision] is passed through to the evaluation pool
    ({!Compass_util.Pool.map_init}): a crashing fitness evaluation is
    retried on the calling domain, and — evaluation being pure — a
    recovered run stays bit-identical to an unfailed one.  Without it, a
    worker failure surfaces as a located
    {!Compass_util.Pool.Task_error}.  Failpoint sites: [ga.evaluate]
    (per evaluation wave), [ga.generation] (per generation), plus the
    pool's [pool.task].

    [?on_checkpoint] is called with a resumable snapshot after the initial
    evaluation and after every {e completed} generation (never for a
    generation the budget cut short).  [?resume] continues a snapshot:
    stored params and objective are re-applied (only [jobs] follows the
    caller) and the remaining generations replay bit-identically to the
    uninterrupted run.  Raises [Invalid_argument] when the checkpoint's
    batch differs from [batch] or its population is invalid for
    [validity] (wrong model, chip or fault scenario).

    Raises [Invalid_argument] on inconsistent parameters (e.g.
    [n_sel > population], [jobs < 1], or a cache brand mismatch). *)
