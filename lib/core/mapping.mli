(** Placement of partition units (and their replicas) onto PIM cores.

    Units never split across cores, so placement is bin packing with bin
    capacity = macros per core; first-fit-decreasing is used both as the
    feasibility oracle for the validity map and as the actual placement the
    scheduler emits.  An optional {!Compass_arch.Fault} scenario shrinks
    individual bins (degraded cores) or removes them (dead cores). *)

type assignment = {
  unit_index : int;
  replica : int;  (** 0-based replica id. *)
  tiles : int;
}

type t = {
  cores : assignment list array;  (** Index = core id; creation order. *)
  tiles_used : int array;
  total_tiles : int;
  capacity_per_core : int;  (** Nominal (fault-free) macros per core. *)
  capacities : int array;  (** Effective per-core capacity under faults. *)
}

val pack :
  ?faults:Compass_arch.Fault.t ->
  Unit_gen.t ->
  start_:int ->
  stop:int ->
  replication:(int -> int) ->
  (t, string) result
(** [pack units ~start_ ~stop ~replication] places every unit of the span
    with [replication unit_index] copies.  [Error] explains the failure
    (insufficient capacity or fragmentation, possibly induced by
    [faults]).  Raises [Invalid_argument] on misuse: a bad span,
    [replication < 1], a unit bigger than a pristine core, or a fault
    scenario whose core count differs from the chip's. *)

val feasible : ?faults:Compass_arch.Fault.t -> Unit_gen.t -> start_:int -> stop:int -> bool
(** Placement feasibility at replication 1 — the validity-map predicate. *)

val cores_used : t -> int

val utilization : t -> float
(** Used tiles over *effective* chip tiles, in [\[0, 1\]]. *)

val core_of_unit : t -> unit_index:int -> replica:int -> int
(** Core hosting a given replica.  Raises [Invalid_argument] if that
    replica was not placed by this mapping. *)

val pp : Format.formatter -> t -> unit
