open Compass_arch

type assignment = {
  unit_index : int;
  replica : int;
  tiles : int;
}

type t = {
  cores : assignment list array;
  tiles_used : int array;
  total_tiles : int;
  capacity_per_core : int;
  capacities : int array;
}

let effective_capacities ?faults chip =
  let ncores = chip.Config.cores in
  let capacity = chip.Config.core.Config.macros_per_core in
  match faults with
  | None -> Array.make ncores capacity
  | Some f ->
    if Fault.cores f <> ncores then
      invalid_arg
        (Printf.sprintf "Mapping: fault scenario has %d cores but chip %s has %d"
           (Fault.cores f) chip.Config.label ncores);
    Fault.capacities f ~macros_per_core:capacity

let pack ?faults (units : Unit_gen.t) ~start_ ~stop ~replication =
  let chip = units.Unit_gen.chip in
  let ncores = chip.Config.cores in
  let capacity = chip.Config.core.Config.macros_per_core in
  let capacities = effective_capacities ?faults chip in
  if start_ < 0 || stop > Unit_gen.unit_count units || start_ >= stop then
    invalid_arg
      (Printf.sprintf "Mapping.pack: bad span [%d, %d) over %d units" start_ stop
         (Unit_gen.unit_count units));
  (* Expand replicas into per-tile-count buckets, then first-fit-decreasing.
     Tile counts are bounded by the core capacity, so a bucket pass replaces
     the comparison sort.  Equal-tile items must keep the order the previous
     [List.sort] (stable, over the prepend-reversed build list) gave them —
     reverse build order — which prepending into buckets reproduces. *)
  let buckets = Array.make (capacity + 1) [] in
  for i = start_ to stop - 1 do
    let u = units.Unit_gen.units.(i) in
    let r = replication i in
    if r < 1 then
      invalid_arg (Printf.sprintf "Mapping.pack: replication %d < 1 for unit %d" r i);
    if u.Unit_gen.tiles > capacity then
      invalid_arg
        (Printf.sprintf "Mapping.pack: unit %d exceeds a core (%d tiles > %d macros)" i
           u.Unit_gen.tiles capacity);
    for replica = 0 to r - 1 do
      buckets.(u.Unit_gen.tiles) <-
        { unit_index = i; replica; tiles = u.Unit_gen.tiles } :: buckets.(u.Unit_gen.tiles)
    done
  done;
  let sorted = ref [] in
  for t = 0 to capacity do
    (* Prepending each bucket while walking the tile counts upward leaves
       the flat list sorted by decreasing tiles, buckets in stored order. *)
    sorted := List.rev_append (List.rev buckets.(t)) !sorted
  done;
  let sorted = !sorted in
  let cores = Array.make ncores [] in
  let tiles_used = Array.make ncores 0 in
  (* Cores below [first_open] are filled to capacity, so no item with tiles
     > 0 can land there; first-fit may start the scan at [first_open]
     without changing any placement (zero-tile items still scan from 0). *)
  let first_open = ref 0 in
  let place item =
    let rec fit c =
      if c >= ncores then false
      else if tiles_used.(c) + item.tiles <= capacities.(c) then begin
        cores.(c) <- item :: cores.(c);
        tiles_used.(c) <- tiles_used.(c) + item.tiles;
        while
          !first_open < ncores && tiles_used.(!first_open) >= capacities.(!first_open)
        do
          incr first_open
        done;
        true
      end
      else fit (c + 1)
    in
    fit (if item.tiles > 0 then !first_open else 0)
  in
  let rec place_all = function
    | [] -> Ok ()
    | item :: rest -> if place item then place_all rest else Error item
  in
  match place_all sorted with
  | Error item ->
    Error
      (Printf.sprintf "unit %d replica %d (%d tiles) does not fit" item.unit_index
         item.replica item.tiles)
  | Ok () ->
    let total_tiles = Array.fold_left ( + ) 0 tiles_used in
    Ok
      {
        cores = Array.map List.rev cores;
        tiles_used;
        total_tiles;
        capacity_per_core = capacity;
        capacities;
      }

let feasible ?faults units ~start_ ~stop =
  match pack ?faults units ~start_ ~stop ~replication:(fun _ -> 1) with
  | Ok _ -> true
  | Error _ -> false
  | exception Invalid_argument _ -> false

let cores_used t =
  Array.fold_left (fun acc used -> if used > 0 then acc + 1 else acc) 0 t.tiles_used

let utilization t =
  let capacity = Array.fold_left ( + ) 0 t.capacities in
  if capacity = 0 then 0. else float_of_int t.total_tiles /. float_of_int capacity

let pp ppf t =
  Array.iteri
    (fun c assignments ->
      if assignments <> [] then
        Format.fprintf ppf "core %2d: %2d tiles, %d units@." c t.tiles_used.(c)
          (List.length assignments))
    t.cores

let core_of_unit t ~unit_index ~replica =
  let found = ref None in
  Array.iteri
    (fun c assignments ->
      if !found = None
         && List.exists (fun a -> a.unit_index = unit_index && a.replica = replica) assignments
      then found := Some c)
    t.cores;
  match !found with
  | Some c -> c
  | None ->
    invalid_arg
      (Printf.sprintf "Mapping.core_of_unit: unit %d replica %d is not placed" unit_index
         replica)
