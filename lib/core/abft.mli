(** ABFT column checksums over integer weight codes.

    At unit-generation time every resident code block gains a checksum
    row: the per-column sums of its signed weight codes.  Verification
    re-reads the column sums (on hardware, one extra MVM driving the
    all-ones vector through the macro in the integer domain) and compares
    them against the stored row with exact integer equality.

    Exactness is the point: a single corrupted cell changes exactly one
    column sum by a nonzero delta ({!Inject.corrupt_code} guarantees the
    corrupted code differs), so single-cell faults are detected with
    {e zero false negatives}, and clean blocks can never miscompare
    ({e zero false positives}) — there is no floating-point tolerance to
    tune.  A mismatch localizes the fault to (unit, column); the mapping
    then names the faulty core/macro. *)

type mismatch = {
  unit_index : int;
  col : int;  (** Local column within the unit. *)
  expected : int;  (** Stored checksum-row entry. *)
  actual : int;  (** Column sum read back. *)
}

val checksum_row : rows:int -> cols:int -> int array -> int array
(** Per-column code sums of a column-major block
    ([codes.(c * rows + r)], as in [Weight_layout]).  Raises
    [Invalid_argument] on a size mismatch. *)

val verify :
  unit_index:int ->
  rows:int ->
  cols:int ->
  codes:int array ->
  checksum:int array ->
  mismatch list
(** Mismatching columns in ascending order; [] iff the block is clean. *)

val check_ops_per_mvm : macro_ops:int -> int
(** VFU-rate element operations one ABFT check adds per MVM: the
    all-ones probe pass plus the comparison against the checksum row —
    [2 * macro_ops].  Shared by the scheduler ([Check] emission) and the
    estimator so predicted and simulated overhead agree. *)

val pp_mismatch : Format.formatter -> mismatch -> unit
