open Compass_util

type mutation_scheme =
  | Merge
  | Split
  | Move
  | Fixed_random

let scheme_name = function
  | Merge -> "merge"
  | Split -> "split"
  | Move -> "move"
  | Fixed_random -> "fixed_random"

let all_schemes = [ Merge; Split; Move; Fixed_random ]

type params = {
  population : int;
  generations : int;
  n_sel : int;
  n_mut : int;
  early_stop_patience : int;
  mutation_retries : int;
  schemes : mutation_scheme list;
  crossover_rate : float;
  seed : int;
  jobs : int;
  warm_start : Partition.t list;
}

let default_params =
  {
    population = 100;
    generations = 30;
    n_sel = 20;
    n_mut = 80;
    early_stop_patience = 10;
    mutation_retries = 5;
    schemes = all_schemes;
    crossover_rate = 0.;
    seed = 0xC0FFEE;
    jobs = Pool.default_jobs ();
    warm_start = [];
  }

let quick_params =
  {
    population = 24;
    generations = 10;
    n_sel = 6;
    n_mut = 18;
    early_stop_patience = 5;
    mutation_retries = 5;
    schemes = all_schemes;
    crossover_rate = 0.;
    seed = 0xC0FFEE;
    jobs = Pool.default_jobs ();
    warm_start = [];
  }

type individual = {
  group : Partition.t;
  perf : Estimator.perf;
  fitness : float;
}

type generation_record = {
  generation : int;
  selected : (float * int) list;
  mutated : (float * int) list;
  best_fitness : float;
}

type result = {
  best : individual;
  history : generation_record list;
  generations_run : int;
  evaluations : int;
  cache_spans : int;
  budget_exhausted : bool;
}

type checkpoint = {
  ck_params : params;
  ck_objective : Fitness.objective;
  ck_batch : int;
  ck_generation : int;
  ck_rng_state : int64;
  ck_best_seen : float;
  ck_stall : int;
  ck_evaluations : int;
  ck_population : Partition.t array;
  ck_history : generation_record list;
}

(* The random-cover walk (and its bias policy) lives in [Validity]; both
   the initial population and the FixedRandom mutation draw through it. *)
let random_cover = Validity.random_cover
let random_group = Validity.random_group

(* The four mutation schemes of Sec. III-C3.  Each returns a candidate group
   or raises; the caller validity-checks and retries. *)

let argmax_by f arr =
  let best = ref 0 in
  Array.iteri (fun i x -> if f x > f arr.(!best) then best := i) arr;
  !best

let argmin_by f arr =
  let best = ref 0 in
  Array.iteri (fun i x -> if f x < f arr.(!best) then best := i) arr;
  !best

let mutate_merge _rng scores group =
  let k = Partition.partition_count group in
  if k < 2 then invalid_arg "merge: single partition";
  (* Worst-performing neighbouring pair. *)
  let pair_scores = Array.init (k - 1) (fun i -> scores.(i) +. scores.(i + 1)) in
  let worst = argmax_by (fun x -> x) pair_scores in
  Partition.merge group worst

let mutate_split rng scores group =
  let k = Partition.partition_count group in
  (* Worst partition that can be split. *)
  let candidates =
    List.filter
      (fun i -> Partition.span_length (Partition.span_at group i) >= 2)
      (List.init k (fun i -> i))
  in
  if candidates = [] then invalid_arg "split: no splittable partition";
  let victim =
    List.fold_left
      (fun acc i -> if scores.(i) > scores.(acc) then i else acc)
      (List.hd candidates) candidates
  in
  let span = Partition.span_at group victim in
  let at = Rng.int_in rng (span.Partition.start_ + 1) (span.Partition.stop - 1) in
  Partition.split group victim ~at

let mutate_move rng scores group =
  let k = Partition.partition_count group in
  if k < 2 then invalid_arg "move: single partition";
  let victim = argmax_by (fun x -> x) scores in
  (* Move one unit across one of the victim's boundaries. *)
  let boundary =
    if victim = 0 then 0
    else if victim = k - 1 then k - 2
    else if Rng.bool rng then victim - 1
    else victim
  in
  let delta = if Rng.bool rng then 1 else -1 in
  Partition.move group boundary ~delta

(* Single-point crossover (extension): keep parent A's cuts before one of
   parent B's interior cuts, then B's cuts from there on.  The bridging
   span is the only new gene and must be validity-checked by the caller. *)
let crossover rng a b =
  let cuts_b = Partition.cuts b in
  if Array.length cuts_b < 3 then invalid_arg "crossover: parent B has no interior cut";
  let point = cuts_b.(Rng.int_in rng 1 (Array.length cuts_b - 2)) in
  let left = List.filter (fun c -> c < point) (Array.to_list (Partition.cuts a)) in
  let right = List.filter (fun c -> c >= point) (Array.to_list cuts_b) in
  Partition.of_cuts (Array.of_list (left @ right))

let mutate_fixed_random rng validity scores group =
  let keep = argmin_by (fun x -> x) scores in
  let span = Partition.span_at group keep in
  let m = Validity.size validity in
  let prefix = random_cover rng validity ~lo:0 ~hi:span.Partition.start_ in
  let suffix = random_cover rng validity ~lo:span.Partition.stop ~hi:m in
  Partition.of_spans (prefix @ (span :: suffix))

let mutate scheme rng validity ~scores group =
  match scheme with
  | Merge -> mutate_merge rng scores group
  | Split -> mutate_split rng scores group
  | Move -> mutate_move rng scores group
  | Fixed_random -> mutate_fixed_random rng validity scores group

let optimize ?(params = default_params) ?(objective = Fitness.Latency)
    ?(options = Estimator.default_options) ?cache ?budget ?supervision ?resume
    ?on_checkpoint ctx validity ~batch =
  (* A checkpoint freezes the search configuration along with its state:
     resuming re-applies the stored params/objective (only [jobs] follows
     the caller, since it cannot affect the trajectory). *)
  let params, objective =
    match resume with
    | None -> (params, objective)
    | Some ck ->
      if ck.ck_batch <> batch then
        invalid_arg
          (Printf.sprintf "Ga.optimize: checkpoint taken at batch %d, resumed with %d"
             ck.ck_batch batch);
      if
        not
          (Array.for_all (Validity.group_valid validity) ck.ck_population)
        || Array.length ck.ck_population = 0
      then
        invalid_arg
          "Ga.optimize: checkpoint population invalid for this validity map (different \
           model, chip or fault scenario?)";
      ({ ck.ck_params with jobs = params.jobs }, ck.ck_objective)
  in
  if params.population < 2 then invalid_arg "Ga.optimize: population < 2";
  if params.n_sel < 1 || params.n_sel > params.population then
    invalid_arg "Ga.optimize: bad n_sel";
  if params.n_mut < 0 then invalid_arg "Ga.optimize: bad n_mut";
  if params.schemes = [] then invalid_arg "Ga.optimize: no mutation schemes";
  if params.crossover_rate < 0. || params.crossover_rate > 1. then
    invalid_arg "Ga.optimize: crossover_rate out of range";
  if params.jobs < 1 then invalid_arg "Ga.optimize: jobs < 1";
  let scheme_array = Array.of_list params.schemes in
  let rng =
    match resume with
    | None -> Rng.create params.seed
    | Some ck -> Rng.of_state ck.ck_rng_state
  in
  let shared =
    match cache with
    | None -> Estimator.Span_cache.create ~options ~batch ()
    | Some c ->
      (* Pre-populated entries only turn evaluations into hits: every entry
         is a pure function of its key under the brand, so the search
         trajectory is unchanged (only [cache_spans] reflects the head
         start).  The brand must match or downstream lookups would raise
         mid-run; fail fast here instead. *)
      if Estimator.Span_cache.batch c <> batch then
        invalid_arg
          (Printf.sprintf "Ga.optimize: cache built for batch %d, called with %d"
             (Estimator.Span_cache.batch c) batch);
      if Estimator.Span_cache.options c <> options then
        invalid_arg "Ga.optimize: cache options mismatch";
      c
  in
  let evaluations = ref (match resume with None -> 0 | Some ck -> ck.ck_evaluations) in
  let interrupted = ref false in
  let expired () = match budget with None -> false | Some b -> Budget.expired b in
  Pool.with_pool ~jobs:params.jobs @@ fun pool ->
  (* Candidate groups are proposed on the main domain (every RNG draw stays
     on the main stream or on a per-candidate [Rng.split] of it, so the
     result is bit-identical for any worker count) and evaluated in
     parallel.  Workers read the run-wide span cache and record new spans
     in domain-local caches, merged back between phases — no locking on
     the hot path, and cache hits still accumulate across generations. *)
  let evaluate_batch groups =
    Failpoint.guard "ga.evaluate";
    evaluations := !evaluations + Array.length groups;
    Metrics.incr ~by:(Array.length groups) "ga.fitness_evaluations";
    let perfs, locals =
      Pool.map_init ?supervision pool
        ~init:(fun () -> Estimator.Span_cache.create ~options ~batch ())
        ~f:(fun local group -> Estimator.evaluate_cached ~shared ~cache:local ctx ~batch group)
        groups
    in
    List.iter (fun local -> Estimator.Span_cache.merge_into shared ~src:local) locals;
    Array.map2
      (fun group perf -> { group; perf; fitness = Fitness.group_fitness objective perf })
      groups perfs
  in
  (* Budget-aware evaluation: the deadline is polled before every wave of
     [jobs] candidates (a single candidate at [jobs = 1]), so an expired
     budget overruns by at most one wave.  Evaluation is pure, so chunking
     changes nothing about the results; a budget-free run takes the
     unchunked path below and stays byte-for-byte on the historical code
     path. *)
  let evaluate_partial groups =
    match budget with
    | None -> evaluate_batch groups
    | Some _ ->
      let n = Array.length groups in
      let parts = ref [] in
      let i = ref 0 in
      while !i < n && not (expired ()) do
        let k = min params.jobs (n - !i) in
        parts := evaluate_batch (Array.sub groups !i k) :: !parts;
        i := !i + k
      done;
      if !i < n then interrupted := true;
      Array.concat (List.rev !parts)
  in
  let total_units = Validity.size validity in
  (* Warm-start seeds (e.g. the DP optimum) occupy the first population
     slots; the rest draw randomly exactly as before.  With no seeds the
     per-index [Rng.split] sequence is untouched, so the run stays
     bit-identical to the unseeded search. *)
  let initial_groups =
    match resume with
    | Some ck -> Array.copy ck.ck_population
    | None ->
      let seeds =
        Array.of_list (List.filter (Validity.group_valid validity) params.warm_start)
      in
      let nseeds = min (Array.length seeds) params.population in
      Array.init params.population (fun i ->
          if i < nseeds then seeds.(i) else random_group (Rng.split rng) validity)
  in
  (* Resumed populations are re-evaluated rather than deserialized with
     their fitness: evaluation is pure, so the trajectory is bit-identical
     either way, and the checkpoint stays a plain text artifact.  (The
     [evaluations] counter therefore includes the re-evaluation cost.)
     Under an already-expired budget, one candidate is still evaluated so
     the result always carries a best-so-far plan. *)
  let population =
    ref
      (Trace.with_span "ga.init_population" @@ fun () ->
       let inds = evaluate_partial initial_groups in
       if Array.length inds = 0 then evaluate_batch (Array.sub initial_groups 0 1)
       else inds)
  in
  let by_fitness arr = Array.sort (fun a b -> compare a.fitness b.fitness) arr in
  let history =
    ref (match resume with None -> [] | Some ck -> List.rev ck.ck_history)
  in
  let best_seen =
    ref (match resume with None -> infinity | Some ck -> ck.ck_best_seen)
  in
  let stall = ref (match resume with None -> 0 | Some ck -> ck.ck_stall) in
  let start_gen = match resume with None -> 0 | Some ck -> ck.ck_generation in
  let generations_run = ref start_gen in
  let emit_checkpoint next_gen =
    match on_checkpoint with
    | None -> ()
    | Some f ->
      f
        {
          ck_params = params;
          ck_objective = objective;
          ck_batch = batch;
          ck_generation = next_gen;
          ck_rng_state = Rng.state rng;
          ck_best_seen = !best_seen;
          ck_stall = !stall;
          ck_evaluations = !evaluations;
          ck_population = Array.map (fun i -> i.group) !population;
          ck_history = List.rev !history;
        }
  in
  if not !interrupted then emit_checkpoint start_gen;
  (try
     (* A checkpoint can carry an already-exhausted patience counter (it
        was emitted just before the original run early-stopped); honour it
        before running any further generation, or a resume would overshoot
        the uninterrupted run. *)
     if params.early_stop_patience > 0 && !stall >= params.early_stop_patience then
       raise Exit;
     for g = start_gen to params.generations - 1 do
       if !interrupted then raise Exit;
       if expired () then begin
         interrupted := true;
         raise Exit
       end;
       Trace.with_span ~args:[ ("generation", string_of_int g) ] "ga.generation"
       @@ fun () ->
       Failpoint.guard "ga.generation";
       Metrics.incr "ga.generations";
       generations_run := g + 1;
       by_fitness !population;
       let pop = !population in
       let selected = Array.sub pop 0 (min params.n_sel (Array.length pop)) in
       (* Population-mean unit-fitness profile (prefix summed) for scores. *)
       let profile = Array.make (total_units + 1) 0. in
       let npop = float_of_int (Array.length pop) in
       Array.iter
         (fun ind ->
           let m = Fitness.unit_fitness_profile objective ind.perf ~total_units in
           Array.iteri (fun i v -> profile.(i + 1) <- profile.(i + 1) +. (v /. npop)) m)
         pop;
       for i = 0 to total_units - 1 do
         profile.(i + 1) <- profile.(i) +. profile.(i + 1)
       done;
       let propose_mutation crng parent =
         let scores =
           Fitness.partition_scores ~population_profile:profile objective parent.perf
         in
         let rec attempt tries =
           if tries = 0 then random_group crng validity
           else
             match mutate (Rng.pick_array crng scheme_array) crng validity ~scores parent.group with
             | child when Validity.group_valid validity child -> child
             | _ -> attempt (tries - 1)
             | exception Invalid_argument _ -> attempt (tries - 1)
         in
         attempt params.mutation_retries
       in
       (* Each offspring draws from its own split stream, so a candidate's
          draw count never shifts its siblings' randomness. *)
       let propose_offspring () =
         let crng = Rng.split rng in
         if params.crossover_rate > 0. && Rng.float crng 1. < params.crossover_rate then begin
           let a = Rng.pick_array crng selected in
           let b = Rng.pick_array crng selected in
           match crossover crng a.group b.group with
           | child when Validity.group_valid validity child -> child
           | _ -> propose_mutation crng (Rng.pick_array crng selected)
           | exception Invalid_argument _ ->
             propose_mutation crng (Rng.pick_array crng selected)
         end
         else propose_mutation crng (Rng.pick_array crng selected)
       in
       let candidates = Array.init params.n_mut (fun _ -> propose_offspring ()) in
       let mutants = evaluate_partial candidates in
       let best_now = pop.(0).fitness in
       history :=
         {
           generation = g;
           selected = Array.to_list (Array.map (fun i -> (i.fitness, Partition.partition_count i.group)) selected);
           mutated = Array.to_list (Array.map (fun i -> (i.fitness, Partition.partition_count i.group)) mutants);
           best_fitness = best_now;
         }
         :: !history;
       if best_now < !best_seen -. 1e-12 then begin
         best_seen := best_now;
         stall := 0
       end
       else incr stall;
       population := Array.append selected mutants;
       (* A generation cut short mid-evaluation is not a resumable state
          (its offspring wave is incomplete), so no checkpoint is taken
          for it — the last emitted checkpoint replays the full
          generation instead. *)
       if !interrupted then raise Exit;
       emit_checkpoint (g + 1);
       if params.early_stop_patience > 0 && !stall >= params.early_stop_patience then
         raise Exit
     done
   with Exit -> ());
  by_fitness !population;
  Metrics.set "ga.best_fitness" !population.(0).fitness;
  {
    best = !population.(0);
    history = List.rev !history;
    generations_run = !generations_run;
    evaluations = !evaluations;
    cache_spans = Estimator.Span_cache.length shared;
    budget_exhausted = !interrupted;
  }
