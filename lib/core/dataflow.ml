open Compass_nn

type partition_io = {
  start_ : int;
  stop : int;
  weighted_layers : Graph.node list;
  attached : Graph.node list;
  loads : (Graph.node * float) list;
  stores : (Graph.node * float) list;
  load_bytes : float;
  store_bytes : float;
}

type ctx = {
  units_ : Unit_gen.t;
  unit_lo : int array; (* per node; -1 for unweighted *)
  unit_hi : int array; (* inclusive; -1 for unweighted *)
  anchor : int array; (* home_unit per node *)
  frac_prefix : float array; (* per unit: prefix sum of column fractions *)
  tensor_bytes : float array;
  topo : Graph.node list;
  table : Span_table.t option;
}

let units ctx = ctx.units_
let table ctx = ctx.table

let context ?(span_table = true) (units_ : Unit_gen.t) =
  let model = units_.Unit_gen.model in
  let nnodes = Graph.node_count model in
  let m = Unit_gen.unit_count units_ in
  let unit_lo = Array.make nnodes (-1) in
  let unit_hi = Array.make nnodes (-1) in
  List.iter
    (fun (node, idxs) ->
      match idxs with
      | [] -> ()
      | first :: _ ->
        unit_lo.(node) <- first;
        unit_hi.(node) <- List.fold_left max first idxs)
    units_.Unit_gen.layer_units;
  (* Fraction of its layer's output each unit carries, as a prefix sum so a
     span's coverage of a layer is an O(1) lookup. *)
  let frac = Array.make m 0. in
  Array.iter
    (fun u ->
      let node = u.Unit_gen.index in
      let layer = u.Unit_gen.layer in
      let base = Unit_gen.col_fraction u model in
      let f =
        if u.Unit_gen.partial_sum then
          let rows = Layer.weight_rows (Graph.layer model layer).Layer.op in
          base
          *. float_of_int (u.Unit_gen.row_hi - u.Unit_gen.row_lo)
          /. float_of_int rows
        else base
      in
      frac.(node) <- f)
    units_.Unit_gen.units;
  let frac_prefix = Array.make (m + 1) 0. in
  for i = 0 to m - 1 do
    frac_prefix.(i + 1) <- frac_prefix.(i) +. frac.(i)
  done;
  let topo = Graph.topo_order model in
  let anchor = Array.make nnodes (-1) in
  List.iter
    (fun node ->
      if unit_hi.(node) >= 0 then anchor.(node) <- unit_hi.(node)
      else
        anchor.(node) <-
          List.fold_left (fun acc p -> max acc anchor.(p)) (-1) (Graph.preds model node))
    topo;
  let activation_bits =
    units_.Unit_gen.chip.Compass_arch.Config.crossbar.Compass_arch.Crossbar.activation_bits
  in
  let tensor_bytes =
    Array.init nnodes (fun node -> Shape.bytes ~activation_bits (Graph.shape_of model node))
  in
  let table = if span_table then Some (Span_table.create units_ ~anchor) else None in
  { units_; unit_lo; unit_hi; anchor; frac_prefix; tensor_bytes; topo; table }

let home_unit ctx node =
  if node < 0 || node >= Array.length ctx.anchor then invalid_arg "Dataflow.home_unit";
  ctx.anchor.(node)

let in_span ~start_ ~stop i = i >= start_ && i < stop

(* Does a node execute (have units or be attached) inside the span? *)
let touches ctx ~start_ ~stop node =
  if ctx.unit_lo.(node) >= 0 then
    max ctx.unit_lo.(node) start_ <= min ctx.unit_hi.(node) (stop - 1)
  else in_span ~start_ ~stop ctx.anchor.(node)

let layer_fraction_in ctx node ~start_ ~stop =
  if node < 0 || node >= Array.length ctx.anchor then
    invalid_arg "Dataflow.layer_fraction_in";
  if ctx.unit_lo.(node) < 0 then
    if in_span ~start_ ~stop ctx.anchor.(node) then 1. else 0.
  else
    let lo = max ctx.unit_lo.(node) start_ in
    let hi = min (ctx.unit_hi.(node) + 1) stop in
    if hi <= lo then 0. else ctx.frac_prefix.(hi) -. ctx.frac_prefix.(lo)

let span_io ctx ~start_ ~stop =
  let m = Unit_gen.unit_count ctx.units_ in
  if start_ < 0 || stop > m || start_ >= stop then invalid_arg "Dataflow.span_io";
  let model = ctx.units_.Unit_gen.model in
  let weighted = ref [] in
  let attached = ref [] in
  (* Endpoint sets are tiny (a handful of boundary tensors), so max-merging
     in an association list beats hashing; the result is sorted below either
     way. *)
  let loads : (Graph.node * float) list ref = ref [] in
  let stores : (Graph.node * float) list ref = ref [] in
  let add tbl node bytes =
    let rec merge = function
      | [] -> (node, bytes) :: []
      | (n, b) :: rest when n = node -> (n, max bytes b) :: rest
      | kv :: rest -> kv :: merge rest
    in
    tbl := merge !tbl
  in
  (match ctx.table with
  | Some tab ->
    (* Visit exactly the nodes the full topological walk would touch:
       weighted layers with units in the span (ascending unit order is
       their topological order), then attached nodes anchored inside (in
       topological order).  Both loops know their nodes' class up front, so
       the per-visit layer-kind test of the reference walk disappears.
       Loads and stores max-merge per node and the endpoint lists are
       sorted afterwards, so splitting the interleaved walk into two
       passes changes nothing.

       The inside/outside tests reduce to integer range tests: a node is
       fully inside iff all its units are (attached nodes: iff their
       anchor is).  The reference path compares [layer_fraction_in]
       against 1e-9 tolerances instead, but a missing unit always carries
       at least ~1/(rows x cols) >= ~1e-8 of its layer, and a full
       cover's float fraction sum differs from 1 by ulps, so the two
       predicates agree on every node.  Fractions are then only computed
       (by the exact reference expression) for endpoints actually
       emitted, whose byte values stay bit-identical. *)
    let fully_inside node =
      if tab.Span_table.unit_lo.(node) >= 0 then
        tab.Span_table.unit_lo.(node) >= start_ && tab.Span_table.unit_hi.(node) < stop
      else in_span ~start_ ~stop ctx.anchor.(node)
    in
    let need u =
      if not (fully_inside u) then begin
        let missing = 1. -. layer_fraction_in ctx u ~start_ ~stop in
        if missing > 1e-9 then add loads u (ctx.tensor_bytes.(u) *. missing)
      end
    in
    let outside v = not (fully_inside v) in
    let endpoints node =
      List.iter need (Graph.preds model node);
      (* Exit endpoints: this node's local fraction consumed outside.
         Visited nodes always have a positive local fraction. *)
      let succs = tab.Span_table.succ.(node) in
      if succs = [] || List.exists outside succs then begin
        let local = layer_fraction_in ctx node ~start_ ~stop in
        if local > 1e-9 then add stores node (ctx.tensor_bytes.(node) *. local)
      end
    in
    let i = ref start_ in
    while !i < stop do
      let node = tab.Span_table.unit_layer.(!i) in
      weighted := node :: !weighted;
      endpoints node;
      i := tab.Span_table.unit_hi.(node) + 1
    done;
    Array.iteri
      (fun k node ->
        let a = tab.Span_table.attached_anchor.(k) in
        if a >= start_ && a < stop then begin
          attached := node :: !attached;
          endpoints node
        end)
      tab.Span_table.attached
  | None ->
    (* Entry endpoints: fraction of each producer missing from the span. *)
    let need u =
      let missing = 1. -. layer_fraction_in ctx u ~start_ ~stop in
      if missing > 1e-9 then add loads u (ctx.tensor_bytes.(u) *. missing)
    in
    let outside v = layer_fraction_in ctx v ~start_ ~stop < 1. -. 1e-9 in
    let visit node =
      let layer = Graph.layer model node in
      (if Layer.is_weighted layer.Layer.op then weighted := node :: !weighted
       else
         match layer.Layer.op with
         | Layer.Input _ -> ()
         | _ -> attached := node :: !attached);
      List.iter need (Graph.preds model node);
      (* Exit endpoints: this node's local fraction consumed outside. *)
      let local = layer_fraction_in ctx node ~start_ ~stop in
      if local > 1e-9 then begin
        let succs = Graph.succs model node in
        let consumed_outside = List.exists outside succs in
        let is_exit = succs = [] in
        if consumed_outside || is_exit then
          add stores node (ctx.tensor_bytes.(node) *. local)
      end
    in
    List.iter (fun node -> if touches ctx ~start_ ~stop node then visit node) ctx.topo);
  let load_list = List.sort compare !loads in
  let store_list = List.sort compare !stores in
  {
    start_;
    stop;
    weighted_layers = List.rev !weighted;
    attached = List.rev !attached;
    loads = load_list;
    stores = store_list;
    load_bytes = List.fold_left (fun acc (_, b) -> acc +. b) 0. load_list;
    store_bytes = List.fold_left (fun acc (_, b) -> acc +. b) 0. store_list;
  }

let group_io ctx group =
  if Partition.total_units group <> Unit_gen.unit_count ctx.units_ then
    invalid_arg "Dataflow.group_io: group does not cover the decomposition";
  Array.of_list
    (List.map
       (fun (s : Partition.span) ->
         span_io ctx ~start_:s.Partition.start_ ~stop:s.Partition.stop)
       (Partition.spans group))

let tensor_bytes ctx node =
  if node < 0 || node >= Array.length ctx.tensor_bytes then
    invalid_arg "Dataflow.tensor_bytes";
  ctx.tensor_bytes.(node)

let is_model_input ctx node =
  match (Graph.layer ctx.units_.Unit_gen.model node).Layer.op with
  | Layer.Input _ -> true
  | _ -> false

let is_model_output ctx node = Graph.succs ctx.units_.Unit_gen.model node = []

let onchip_buffer_bytes ctx =
  let chip = ctx.units_.Unit_gen.chip in
  0.5
  *. float_of_int
       (chip.Compass_arch.Config.cores
       * chip.Compass_arch.Config.core.Compass_arch.Config.local_mem_banks
       * chip.Compass_arch.Config.core.Compass_arch.Config.local_mem_bytes)

let spills_to_dram ctx ~batch node =
  if batch < 1 then invalid_arg "Dataflow.spills_to_dram: batch < 1";
  is_model_input ctx node || is_model_output ctx node
  || float_of_int batch *. tensor_bytes ctx node > onchip_buffer_bytes ctx

let total_load_bytes ios = Array.fold_left (fun acc io -> acc +. io.load_bytes) 0. ios
let total_store_bytes ios = Array.fold_left (fun acc io -> acc +. io.store_bytes) 0. ios

let entry_exit_counts ios =
  Array.to_list (Array.map (fun io -> (List.length io.loads, List.length io.stores)) ios)
