(** Partition and partition-group performance estimation.

    This is the paper's enhanced PIMCOMP latency estimator: the original
    pipelined intra-partition model extended with weight-write phases,
    intermediate-feature loads/stores and external-memory latency, executed
    per batch (Sec. II-B, IV-A2).

    Timing model per partition, for a batch of [B] samples:

    - {b weight write}: unique weights are streamed from DRAM once and
      broadcast on the bus; replicas cost extra macro programming time but
      no extra DRAM traffic.  Cores program their macros in parallel, rows
      serially within a core.
    - {b compute}: the layer pipeline runs at the bottleneck stage,
      [fill + B * max_l (mvms_l * op_time_l / rep_l)], with attached
      non-crossbar work as an extra VFU stage.
    - {b IO}: entry loads and exit stores move [B x bytes] over the bus;
      tensors that do not fit the on-chip activation buffers additionally
      pay DRAM bandwidth and a per-endpoint request overhead.  IO overlaps
      compute (double buffering), so a partition costs
      [max(compute, io)].
    - {b write overlap}: the weight fetch of partition [p+1] hides under
      DRAM idle time while [p] computes
      ([exposed = max(0, write - max(0, compute_p - io_p))]).

    Energy integrates MVM, VFU, macro programming, bus, DRAM (analytic
    streaming model) and chip static power. *)

type span_perf = {
  start_ : int;
  stop : int;
  io : Dataflow.partition_io;
  replication : Replication.t;
  cores_used : int;
  utilization : float;  (** Tiles placed over chip tiles. *)
  stage_times : (Compass_nn.Graph.node * float) list;
      (** Per-sample stage time of each weighted layer after replication. *)
  bottleneck_s : float;  (** Slowest per-sample stage (incl. attached VFU). *)
  fill_s : float;  (** Pipeline fill latency. *)
  compute_s : float;  (** Batch compute time. *)
  check_s : float;
      (** Total ABFT verification work per batch ([{!model_options.abft}]
          on; 0 otherwise).  The per-layer share is already folded into
          [stage_times]/[bottleneck_s], so this field is the overhead
          report, not an extra latency term. *)
  unique_weight_bytes : float;  (** DRAM traffic for weights. *)
  programmed_bytes : float;  (** Including replicas. *)
  write_s : float;  (** Weight replacement phase, before overlap. *)
  io_load_bytes : float;  (** Batch activation loads. *)
  io_store_bytes : float;
  io_dram_bytes : float;
      (** Batch activation traffic that spills to DRAM: model inputs and
          outputs always, plus inter-partition tensors whose batch residency
          exceeds the on-chip activation buffer (half the cores' local
          memory); everything else stays on chip and only crosses the bus. *)
  io_s : float;
  span_s : float;  (** write + max(compute, io): the span's raw latency. *)
  tiles_per_core : int array;
      (** Macros programmed on each core at every weight replacement
          (replicas included) — the endurance-accounting input. *)
  wear_cost_s : float;
      (** Per-sample macro-programming time; the {!Fitness.Wear} penalty.
          0 when writes are not charged. *)
  mvm_energy_j : float;
  vfu_energy_j : float;
  write_energy_j : float;  (** Macro programming. *)
  bus_energy_j : float;
  dram_energy_j : float;
}

type model_options = {
  write_overlap : bool;
      (** Hide the next partition's weight fetch under the previous
          partition's DRAM-idle compute (Fig. 2); on by default. *)
  onchip_buffering : bool;
      (** Keep fitting boundary tensors in the cores' local memories instead
          of DRAM; on by default. *)
  charge_writes : bool;
      (** Charge weight-write phases at all.  Disabled only by the
          all-on-chip (PUMA/PIMCOMP) execution mode, where weights are
          pinned once and reused forever. *)
  faults : Compass_arch.Fault.t option;
      (** Fault scenario: replication and mapping use per-core effective
          capacities, and the scenario's endurance budget feeds lifetime
          projection.  [None] (the default) is the pristine chip. *)
  abft : bool;
      (** Charge ABFT column-checksum verification on every MVM
          ({!Abft.check_ops_per_mvm} element ops at the primary core's VFU
          rate, mirroring the scheduler's [Check] emission).  Off by
          default. *)
}

val default_options : model_options
(** All features enabled, no faults — the COMPASS model. *)

(** Wear accounting for the weight-replacement execution model: every
    placed tile is one macro programming per batch.  First-fit packing
    fills macro slots from 0, so the busiest (core, slot) pair bounds
    device lifetime. *)
type endurance = {
  macro_writes_per_batch : int;
      (** Macro programmings per batch, summed over spans and replicas. *)
  writes_per_inference : float;  (** Total writes / batch. *)
  max_writes_per_macro_per_inference : float;
      (** Writes on the most-rewritten macro, per sample. *)
  projected_lifetime_inferences : float option;
      (** [budget / max_writes_per_macro_per_inference] when the fault
          scenario carries an endurance budget (e.g. ReRAM ~1e6). *)
}

type perf = {
  batch : int;
  spans : span_perf list;
  batch_latency_s : float;  (** With inter-partition write overlap. *)
  throughput_per_s : float;  (** Samples per second. *)
  energy_j : float;  (** Whole batch, including static. *)
  energy_per_sample_j : float;
  edp_j_s : float;  (** Energy per sample x per-sample latency. *)
  energy_components : (string * float) list;
  endurance : endurance;
}

val span_perf :
  ?options:model_options -> Dataflow.ctx -> batch:int -> start_:int -> stop:int -> span_perf
(** Evaluate one candidate partition; results are cacheable by
    [(start_, stop, batch, options)]. *)

val evaluate :
  ?options:model_options -> Dataflow.ctx -> batch:int -> Partition.t -> perf
(** Evaluate a full partition group.  Raises [Invalid_argument] if the
    group does not cover the decomposition or [batch < 1]. *)

(** Span caches for the GA search.  [span_perf] results depend on [batch]
    and [model_options] as much as on the [(start_, stop)] key, so a cache
    is branded with both at creation time and every operation that could
    mix entries from differently-branded caches raises [Invalid_argument]
    instead of silently returning stale results. *)
module Span_cache : sig
  type t

  val create : ?options:model_options -> batch:int -> unit -> t
  (** A fresh empty cache for one [(batch, options)] brand ([options]
      defaults to {!default_options}).  Raises [Invalid_argument] when
      [batch < 1]. *)

  val batch : t -> int
  val options : t -> model_options

  val length : t -> int
  (** Number of distinct spans cached. *)

  val merge_into : t -> src:t -> unit
  (** [merge_into dst ~src] copies [src]'s entries into [dst], keeping
      [dst]'s entry on key collisions (entries are pure functions of the
      key under a fixed brand, so both are equal).  Raises
      [Invalid_argument] when the brands differ.  The GA merges the
      domain-local caches of a generation into the run-wide cache with
      this. *)
end

val span_perf_cached :
  ?shared:Span_cache.t ->
  cache:Span_cache.t ->
  Dataflow.ctx ->
  start_:int ->
  stop:int ->
  span_perf
(** One span through the cache: consult [?shared] (read-only), then
    [cache]; on a miss compute {!span_perf} under the cache's brand and
    record it in [cache].  The primitive behind {!evaluate_cached} and the
    DP optimizer's span sweep.  Raises [Invalid_argument] when the brands
    disagree. *)

val evaluate_cached :
  ?shared:Span_cache.t ->
  cache:Span_cache.t ->
  Dataflow.ctx ->
  batch:int ->
  Partition.t ->
  perf
(** [evaluate] with an external span cache; newly computed spans are added
    to [cache].  [?shared] is an optional second cache consulted first and
    {e never written} — during parallel GA evaluation it is the run-wide
    cache, safely read by every domain while each writes only its own
    [cache].  Raises [Invalid_argument] when [batch] (or [shared]'s brand)
    disagrees with [cache]'s brand, or when [batch < 1].  All entries must
    come from the same [ctx]. *)

val pp_breakdown : Compass_nn.Graph.t -> Format.formatter -> perf -> unit
(** Per-partition table: layers, replication, write/compute/io split. *)
