open Compass_nn

type trace_entry = {
  partition : int;
  node : Graph.node;
  direction : [ `Load | `Store ];
}

type result = {
  output : Tensor.t;
  partitions_executed : int;
  traffic : trace_entry list;
  peak_live_tensors : int;
}

let run ?engine ctx group weights input =
  let units = Dataflow.units ctx in
  if Partition.total_units group <> Unit_gen.unit_count units then
    invalid_arg "Partition_exec.run: group does not cover the decomposition";
  let model = units.Unit_gen.model in
  let input_node =
    match Graph.entry_nodes model with
    | [ n ] -> n
    | _ -> invalid_arg "Partition_exec.run: expected exactly one input"
  in
  let exit_node =
    match Graph.exit_nodes model with
    | [ n ] -> n
    | _ -> invalid_arg "Partition_exec.run: expected exactly one output"
  in
  let spans = Array.of_list (Partition.spans group) in
  let nparts = Array.length spans in
  (* A node executes in the partition holding its last unit (its home). *)
  let home_partition node =
    let anchor = Dataflow.home_unit ctx node in
    if anchor < 0 then -1 else Partition.partition_of_unit group anchor
  in
  (* Liveness in global memory: last partition that reads each tensor. *)
  let last_reader = Hashtbl.create 64 in
  List.iter
    (fun v ->
      let q = home_partition v in
      List.iter
        (fun u ->
          if home_partition u <> q then
            Hashtbl.replace last_reader u
              (max q (Option.value ~default:(-1) (Hashtbl.find_opt last_reader u))))
        (Graph.preds model v))
    (Graph.topo_order model);
  let global : (Graph.node, Tensor.t) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.add global input_node input;
  let traffic = ref [] in
  let peak = ref 1 in
  let final = ref None in
  let scratch = Im2col.create_scratch () in
  for p = 0 to nparts - 1 do
    Compass_util.Trace.with_span "partition_exec.partition"
      ~args:[ ("partition", string_of_int p) ]
    @@ fun () ->
    let local : (Graph.node, Tensor.t) Hashtbl.t = Hashtbl.create 32 in
    let loaded = Hashtbl.create 8 in
    let fetch v u =
      match Hashtbl.find_opt local u with
      | Some t -> t
      | None -> (
        match Hashtbl.find_opt global u with
        | Some t ->
          if not (Hashtbl.mem loaded u) then begin
            Hashtbl.add loaded u ();
            traffic := { partition = p; node = u; direction = `Load } :: !traffic
          end;
          t
        | None ->
          invalid_arg
            (Printf.sprintf "Partition_exec: node %d needs %d before it is available" v u))
    in
    (* Execute the partition's nodes in topological order. *)
    List.iter
      (fun v ->
        if v <> input_node && home_partition v = p then begin
          let inputs = List.map (fetch v) (Graph.preds model v) in
          Hashtbl.add local v (Executor.apply_node ?engine ~scratch model weights v inputs)
        end)
      (Graph.topo_order model);
    (* Store exit tensors: consumed by a later partition or the model exit. *)
    Hashtbl.iter
      (fun u t ->
        let consumed_later =
          List.exists (fun v -> home_partition v > p) (Graph.succs model u)
        in
        if consumed_later || u = exit_node then begin
          traffic := { partition = p; node = u; direction = `Store } :: !traffic;
          Hashtbl.replace global u t
        end)
      local;
    (* Free tensors whose last reader was this partition. *)
    Hashtbl.iter
      (fun u q -> if q = p && u <> exit_node then Hashtbl.remove global u)
      (Hashtbl.copy last_reader);
    peak := max !peak (Hashtbl.length global);
    if Hashtbl.mem local exit_node then final := Hashtbl.find_opt local exit_node
  done;
  let output =
    match !final with
    | Some t -> t
    | None -> (
      match Hashtbl.find_opt global exit_node with
      | Some t -> t
      | None -> invalid_arg "Partition_exec.run: output never produced")
  in
  {
    output;
    partitions_executed = nparts;
    traffic = List.rev !traffic;
    peak_live_tensors = !peak;
  }

let matches_reference ?engine ctx group weights input =
  let model = (Dataflow.units ctx).Unit_gen.model in
  let reference = Executor.output ?engine model weights input in
  let partitioned = (run ?engine ctx group weights input).output in
  Tensor.equal ~eps:1e-9 reference partitioned
