type objective =
  | Latency
  | Energy
  | Edp
  | Wear

let objective_of_string s =
  match String.lowercase_ascii s with
  | "latency" | "throughput" -> Latency
  | "energy" | "power" -> Energy
  | "edp" -> Edp
  | "wear" | "endurance" -> Wear
  | other -> invalid_arg ("Fitness.objective_of_string: " ^ other)

let objective_to_string = function
  | Latency -> "latency"
  | Energy -> "energy"
  | Edp -> "edp"
  | Wear -> "wear"

let span_energy (sp : Estimator.span_perf) =
  sp.Estimator.mvm_energy_j +. sp.Estimator.vfu_energy_j +. sp.Estimator.write_energy_j
  +. sp.Estimator.bus_energy_j +. sp.Estimator.dram_energy_j

let span_fitness objective (sp : Estimator.span_perf) =
  match objective with
  | Latency -> sp.Estimator.span_s
  | Energy -> span_energy sp
  | Edp -> sp.Estimator.span_s *. span_energy sp
  | Wear ->
    (* Latency plus the per-sample macro-programming time: partitionings
       that rewrite fewer (replicated) macros per inference wear the
       devices less, so the GA wear-levels without abandoning speed. *)
    sp.Estimator.span_s +. sp.Estimator.wear_cost_s

let group_fitness objective (perf : Estimator.perf) =
  List.fold_left (fun acc sp -> acc +. span_fitness objective sp) 0. perf.Estimator.spans

let unit_fitness_profile objective (perf : Estimator.perf) ~total_units =
  let m = Array.make total_units 0. in
  List.iter
    (fun (sp : Estimator.span_perf) ->
      let len = sp.Estimator.stop - sp.Estimator.start_ in
      let per_unit = span_fitness objective sp /. float_of_int len in
      for i = sp.Estimator.start_ to sp.Estimator.stop - 1 do
        m.(i) <- per_unit
      done)
    perf.Estimator.spans;
  m

let partition_scores ~population_profile objective (perf : Estimator.perf) =
  let expected a b = population_profile.(b) -. population_profile.(a) in
  let score (sp : Estimator.span_perf) =
    let e = expected sp.Estimator.start_ sp.Estimator.stop in
    if e <= 0. then 1. else span_fitness objective sp /. e
  in
  Array.of_list (List.map score perf.Estimator.spans)
