(** Independent plan verification.

    [check] re-derives the legality invariants every compiled plan must
    satisfy — full unit coverage, per-core (fault-adjusted effective)
    capacity, replication consistency, span placeability, acyclic
    pipelined dataflow, endurance accounting — from first principles and
    reports every discrepancy as a structured {!violation}.

    The verifier deliberately shares {e no code} with the subsystems whose
    output it judges: span placement is re-checked with its own first-fit
    packer over {!Unit_gen} tile data and {!Compass_arch.Fault} effective
    capacities rather than by calling [Mapping] or [Replication], and
    endurance is re-accumulated from the per-span [tiles_per_core]
    evidence rather than read back through the estimator.  A bug in the
    mapping stack therefore cannot hide itself by also corrupting the
    check.  ([Dataflow] span-IO {e claims} inside the plan are judged
    against the producer-anchor ordering rule, not recomputed with the
    code that made them.)

    Violations are data, not exceptions: a service wrapping the compiler
    can log, count and render them without catching anything. *)

type violation =
  | Batch_mismatch of { plan_batch : int; perf_batch : int }
      (** The performance record was evaluated for a different batch. *)
  | Coverage of { expected_units : int; covered_units : int }
      (** The partition group does not cover the decomposition exactly
          (contiguity and non-overlap are structural in [Partition.t];
          a wrong total means truncated or overlong coverage). *)
  | Span_sequence of { index : int; expected : (int * int) option; actual : (int * int) option }
      (** [perf.spans] does not list the group's partitions in order
          ([None] = missing on that side). *)
  | Io_span_mismatch of { span : int * int; io_start : int; io_stop : int }
      (** A span's IO record describes a different span. *)
  | Replication_underflow of { span : int * int; layer : string; count : int }
      (** A replication count below 1. *)
  | Foreign_replication of { span : int * int; layer : string }
      (** Replication assigned to a layer with no unit in the span. *)
  | Tile_accounting of { span : int * int; placed : int; required : int }
      (** Placed tiles ([sum tiles_per_core]) disagree with
          [sum (unit tiles x layer replication)] over the span. *)
  | Core_count_mismatch of { span : int * int; got : int; expected : int }
      (** [tiles_per_core] is not sized to the chip's core count. *)
  | Dead_core_used of { span : int * int; core : int; tiles : int }
      (** Tiles placed on a core the fault scenario marks dead. *)
  | Core_overcapacity of { span : int * int; core : int; tiles : int; capacity : int }
      (** A core's placed tiles exceed its effective macro capacity. *)
  | Chip_overcapacity of { span : int * int; tiles : int; capacity : int }
      (** The span's total placed tiles exceed the chip's effective
          capacity. *)
  | Unplaceable_span of { span : int * int; reason : string }
      (** The verifier's own first-fit packing cannot place the span's
          replicated units on the (degraded) cores at all. *)
  | Dataflow_order of { span : int * int; tensor : string; producer_home : int }
      (** A load whose producing tensor is not available yet (producer
          homed at or after the span start and not a model input), or a
          store claimed for a tensor produced outside the span — either
          would deadlock the forward pipeline. *)
  | Endurance_accounting of { field : string; reported : float; recomputed : float }
      (** An endurance field disagrees with re-accumulation from the
          per-span placement evidence. *)
  | Endurance_budget_exceeded of { budget : float; worst_writes_per_batch : int }
      (** The most-rewritten macro exceeds the scenario's endurance
          budget within a single batch. *)

val check : Compiler.t -> violation list
(** All violations found in the plan, in check order (whole-plan checks
    first, then per-span, then endurance).  An empty list means the plan
    satisfies every invariant the verifier knows. *)

val render_violation : violation -> string
(** One human-readable line, e.g.
    ["span [3,7): core 5 holds 12 tiles but only 9 are usable"]. *)

val render : violation list -> string
(** Multi-line report; ["plan satisfies all verifier invariants"] when
    empty. *)

val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> violation list -> unit
