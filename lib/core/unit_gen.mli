(** Model decomposition into partition units (paper Sec. III-B, Fig. 4).

    Every Conv/Linear weight matrix is tiled into a grid of crossbar macros
    (rows = [in_channels * kh * kw], logical columns = output channels) and
    the tiles are packed, column-major, into {e partition units} — the
    minimum partitioning granularity, each sized to fit the macro budget of
    a single PIM core (paper condition 1).

    Layers whose row demand alone exceeds one core (e.g. VGG16's first
    linear layer on chip S) are additionally split along the input
    dimension; such units compute partial sums that the VFUs accumulate,
    which the estimator charges as extra vector work.

    Units are ordered by topological layer order, then column slice, then
    row slice; a partition is always a contiguous span of this order. *)

type unit_t = {
  index : int;  (** Global position in the decomposition order. *)
  layer : Compass_nn.Graph.node;  (** Producing Conv/Linear node. *)
  layer_order : int;  (** Rank among weighted nodes. *)
  col_lo : int;  (** First logical output column covered, inclusive. *)
  col_hi : int;  (** Last logical output column covered, exclusive. *)
  row_lo : int;  (** First input row covered, inclusive. *)
  row_hi : int;
  row_blocks : int;  (** Macro rows of this unit's tile grid. *)
  col_blocks : int;
  tiles : int;  (** [row_blocks * col_blocks], <= macros per core. *)
  weight_bytes : float;  (** Logical weight bytes resident in this unit. *)
  partial_sum : bool;  (** True when the layer is row-split. *)
}

type t = {
  model : Compass_nn.Graph.t;
  chip : Compass_arch.Config.chip;
  units : unit_t array;
  layer_units : (Compass_nn.Graph.node * int list) list;
      (** For each weighted node, the indices of its units (ascending). *)
  tiles_prefix : int array;
      (** [tiles_prefix.(i)] = tiles of units [0, i); length [M + 1]. *)
  weight_bytes_prefix : float array;
      (** Prefix sums of per-unit weight bytes; exact (the addends are
          dyadic rationals well below the 53-bit mantissa), so differences
          equal the direct span sum bit for bit. *)
}

val generate : Compass_nn.Graph.t -> Compass_arch.Config.chip -> t
(** Decompose [model] for [chip].  Raises [Invalid_argument] if the model
    has no weighted layer. *)

val unit_count : t -> int

val units_of_layer : t -> Compass_nn.Graph.node -> int list
(** Raises [Not_found] for nodes without units. *)

val layer_of_unit : t -> int -> Compass_nn.Graph.node

val span_tiles : t -> int -> int -> int
(** [span_tiles t a b] sums tiles over units [a, b); O(1) via prefix sums. *)

val span_weight_bytes : t -> int -> int -> float
(** O(1) via {!field-weight_bytes_prefix}. *)

val total_tiles : t -> int

val col_fraction : unit_t -> Compass_nn.Graph.t -> float
(** Fraction of the layer's output channels this unit produces
    ([0 < f <= 1]); used to scale activation transfer sizes. *)

val pp_unit : Format.formatter -> unit_t -> unit

val pp_summary : Format.formatter -> t -> unit
(** Unit count, tile usage and per-layer unit histogram. *)
