open Compass_nn
open Compass_arch

type layer_perf = {
  node : Graph.node;
  mvms : int;
  tiles_in_span : int;
  weight_bytes_in_span : float;
  op_time_s : float;
  macro_ops_per_mvm : int;
  vfu_ops_per_mvm : int;
}

let ceil_div a b = (a + b - 1) / b

(* Reference implementation: derive everything from the graph and the unit
   list per query.  Kept verbatim as the oracle the span-table path is
   differentially tested against. *)
let span_layers_walk ?io ctx ~start_ ~stop =
  let units = Dataflow.units ctx in
  let model = units.Unit_gen.model in
  let chip = units.Unit_gen.chip in
  let xbar = chip.Config.crossbar in
  let io =
    match io with Some io -> io | None -> Dataflow.span_io ctx ~start_ ~stop
  in
  let perf node =
    let op = (Graph.layer model node).Layer.op in
    let rows = Layer.weight_rows op in
    let cols = Layer.weight_cols op in
    let row_blocks = ceil_div rows xbar.Crossbar.rows in
    (* Units of a layer are contiguous in decomposition order. *)
    let unit_idxs =
      List.filter (fun i -> i >= start_ && i < stop) (Unit_gen.units_of_layer units node)
    in
    let tiles_in_span =
      List.fold_left (fun acc i -> acc + units.Unit_gen.units.(i).Unit_gen.tiles) 0 unit_idxs
    in
    let weight_bytes_in_span =
      List.fold_left
        (fun acc i -> acc +. units.Unit_gen.units.(i).Unit_gen.weight_bytes)
        0. unit_idxs
    in
    let mvms = Graph.mvms_of model node in
    (* VFU merge per MVM: accumulate [row_blocks] partial sums and apply the
       fused activation for each output of the span's column share. *)
    let span_cols =
      List.fold_left
        (fun acc i ->
          let u = units.Unit_gen.units.(i) in
          acc + (u.Unit_gen.col_hi - u.Unit_gen.col_lo))
        0 unit_idxs
    in
    let span_cols = min cols span_cols in
    let vfu_ops_per_mvm = span_cols * (row_blocks + 1) in
    let hosting_cores =
      max 1 (ceil_div tiles_in_span chip.Config.core.Config.macros_per_core)
    in
    let lanes = chip.Config.core.Config.vfus_per_core * hosting_cores in
    let vfu_time =
      float_of_int vfu_ops_per_mvm
      /. float_of_int lanes /. chip.Config.core.Config.clock_hz
    in
    {
      node;
      mvms;
      tiles_in_span;
      weight_bytes_in_span;
      op_time_s = xbar.Crossbar.mvm_latency_s +. vfu_time;
      macro_ops_per_mvm = tiles_in_span;
      vfu_ops_per_mvm;
    }
  in
  List.map perf io.Dataflow.weighted_layers

(* Span-table path: the same numbers from prefix-sum differences and
   per-node geometry arrays, without computing the span IO at all.  Tile
   counts and column sums are integer prefix differences (trivially exact);
   the weight-byte prefix difference is exact by the argument on
   [Unit_gen.weight_bytes_prefix]; every float expression below is
   syntactically the one in [span_layers_walk], so the results are
   bit-identical. *)
let span_layers_table tab ctx ~start_ ~stop =
  let units = Dataflow.units ctx in
  let chip = units.Unit_gen.chip in
  let xbar = chip.Config.crossbar in
  let macros = chip.Config.core.Config.macros_per_core in
  let vfus = chip.Config.core.Config.vfus_per_core in
  let clock = chip.Config.core.Config.clock_hz in
  let rec collect acc i =
    if i >= stop then List.rev acc
    else begin
      let node = tab.Span_table.unit_layer.(i) in
      let hi = min (tab.Span_table.unit_hi.(node) + 1) stop in
      let tiles_in_span =
        units.Unit_gen.tiles_prefix.(hi) - units.Unit_gen.tiles_prefix.(i)
      in
      let weight_bytes_in_span =
        units.Unit_gen.weight_bytes_prefix.(hi) -. units.Unit_gen.weight_bytes_prefix.(i)
      in
      let span_cols =
        min tab.Span_table.cols.(node)
          (tab.Span_table.cols_prefix.(hi) - tab.Span_table.cols_prefix.(i))
      in
      let row_blocks = tab.Span_table.row_blocks.(node) in
      let vfu_ops_per_mvm = span_cols * (row_blocks + 1) in
      let hosting_cores = max 1 (ceil_div tiles_in_span macros) in
      let lanes = vfus * hosting_cores in
      let vfu_time = float_of_int vfu_ops_per_mvm /. float_of_int lanes /. clock in
      let p =
        {
          node;
          mvms = tab.Span_table.mvms.(node);
          tiles_in_span;
          weight_bytes_in_span;
          op_time_s = xbar.Crossbar.mvm_latency_s +. vfu_time;
          macro_ops_per_mvm = tiles_in_span;
          vfu_ops_per_mvm;
        }
      in
      collect (p :: acc) (tab.Span_table.unit_hi.(node) + 1)
    end
  in
  collect [] start_

let span_layers ?io ctx ~start_ ~stop =
  let m = Unit_gen.unit_count (Dataflow.units ctx) in
  if start_ < 0 || stop > m || start_ >= stop then invalid_arg "Perf_model.span_layers";
  match Dataflow.table ctx with
  | Some tab -> span_layers_table tab ctx ~start_ ~stop
  | None -> span_layers_walk ?io ctx ~start_ ~stop

let stage_time_s perf ~replication =
  if replication < 1 then invalid_arg "Perf_model.stage_time_s: replication < 1";
  float_of_int perf.mvms *. perf.op_time_s /. float_of_int replication

let attached_vfu_ops ctx io =
  match Dataflow.table ctx with
  | Some tab ->
    List.fold_left
      (fun acc node -> acc + tab.Span_table.vector_ops.(node))
      0 io.Dataflow.attached
  | None ->
    let model = (Dataflow.units ctx).Unit_gen.model in
    List.fold_left
      (fun acc node -> acc + Graph.vector_ops_of model node)
      0 io.Dataflow.attached

let max_useful_replication perf = max 1 perf.mvms
