(** Partition-level dataflow: non-crossbar layer attachment and global
    memory access management (paper Sec. III-B2 and III-B3).

    Non-crossbar-mappable nodes (pooling, batch norm, activations,
    element-wise sums, concatenations) are attached to the partition of
    their producing Conv/Linear nodes by walking the dependence graph
    backwards.  Every edge that crosses a partition boundary marks the
    producer as a {e store} endpoint and the consumer as a {e load}
    endpoint with the corresponding transfer size — a partition may have
    several of each (e.g. a residual connection not fully contained in a
    partition).

    The IO set of a span [\[a, b)] depends only on the span itself (a tensor
    is loaded iff produced outside it, stored iff consumed outside it), so
    the API is span-oriented and the GA can cache per-span fitness. *)

type partition_io = {
  start_ : int;
  stop : int;
  weighted_layers : Compass_nn.Graph.node list;
      (** Conv/Linear nodes with at least one unit in the span, in
          topological order. *)
  attached : Compass_nn.Graph.node list;
      (** Non-weighted nodes homed in the span. *)
  loads : (Compass_nn.Graph.node * float) list;
      (** Entry tensors: producing node and bytes read from global memory
          per sample. *)
  stores : (Compass_nn.Graph.node * float) list;
      (** Exit tensors: producing node and bytes written per sample. *)
  load_bytes : float;  (** Per-sample total. *)
  store_bytes : float;
}

type ctx
(** Precomputed per-(model, chip) attachment tables. *)

val context : ?span_table:bool -> Unit_gen.t -> ctx
(** [?span_table] (default [true]) additionally precomputes a
    {!Span_table.t}, which switches {!span_io}, [Perf_model.span_layers]
    and the estimator onto O(span) array-lookup paths.  The fast paths are
    bit-identical to the reference walks; [~span_table:false] keeps the
    original full-graph code end-to-end and exists as the differential
    -testing oracle and benchmark baseline. *)

val units : ctx -> Unit_gen.t

val table : ctx -> Span_table.t option
(** The span table, when the context was built with one. *)

val span_io : ctx -> start_:int -> stop:int -> partition_io
(** IO of one candidate partition.  Raises [Invalid_argument] on an empty
    or out-of-range span. *)

val group_io : ctx -> Partition.t -> partition_io array
(** One [partition_io] per partition of the group, in order. *)

val home_unit : ctx -> Compass_nn.Graph.node -> int
(** Decomposition-order position anchoring a node: for weighted nodes the
    index of their last unit; for other nodes the maximum over their
    producers ([-1] for model inputs).  A node belongs to span [\[a, b)] iff
    its anchor does. *)

val layer_fraction_in : ctx -> Compass_nn.Graph.node -> start_:int -> stop:int -> float
(** Fraction of a weighted node's output produced inside the span, in
    [\[0, 1\]]; non-weighted nodes return 1 when homed inside, else 0. *)

val tensor_bytes : ctx -> Compass_nn.Graph.node -> float
(** Full per-sample activation bytes of a node's output tensor. *)

val is_model_input : ctx -> Compass_nn.Graph.node -> bool
(** True for [Input] layers — their tensors always stream from DRAM. *)

val is_model_output : ctx -> Compass_nn.Graph.node -> bool
(** True for exit nodes — their tensors always drain to DRAM. *)

val onchip_buffer_bytes : ctx -> float
(** Activation buffer capacity: half of the cores' aggregate local memory
    (the other half holds working-set registers and partial sums). *)

val spills_to_dram : ctx -> batch:int -> Compass_nn.Graph.node -> bool
(** Whether a tensor crossing a partition boundary goes through DRAM:
    model inputs and outputs always do; other tensors spill when a batch of
    them exceeds [onchip_buffer_bytes].  The estimator and the scheduler
    share this rule so analytic and simulated DRAM traffic agree. *)

val total_load_bytes : partition_io array -> float
val total_store_bytes : partition_io array -> float

val entry_exit_counts : partition_io array -> (int * int) list
(** Per partition: (#entry endpoints, #exit endpoints) — the
    multi-endpoint structure of Sec. III-B3. *)
