(** Optimization objectives and fitness extraction (paper Sec. III-C1).

    The user picks the fitness the GA minimizes; partition-group fitness
    (PGF) is the sum of the partitions' fitness, and the per-partition value
    also feeds the partition score used to pick mutation victims. *)

type objective =
  | Latency  (** Batch makespan (the paper's throughput fitness). *)
  | Energy  (** Dynamic energy per batch. *)
  | Edp  (** Latency x energy surrogate. *)
  | Wear
      (** Latency plus a macro-programming wear penalty
          ([Estimator.span_perf.wear_cost_s]): favors partitionings that
          rewrite fewer macros per inference, extending ReRAM/PCM
          lifetime. *)

val objective_of_string : string -> objective
(** Accepts "latency", "throughput", "energy", "power", "edp", "wear",
    "endurance" (case insensitive).  Raises [Invalid_argument]
    otherwise. *)

val objective_to_string : objective -> string

val span_fitness : objective -> Estimator.span_perf -> float
(** Lower is better; strictly positive for non-trivial spans. *)

val group_fitness : objective -> Estimator.perf -> float
(** PGF: the sum of [span_fitness] over the group's partitions. *)

val unit_fitness_profile : objective -> Estimator.perf -> total_units:int -> float array
(** The m(x) vector of Sec. III-C2: each unit inherits its partition's
    fitness divided by the partition's unit count. *)

val partition_scores : population_profile:float array -> objective -> Estimator.perf -> float array
(** R for every partition of an individual:
    [f(P) / E_population(sum of m over P's span)].
    [population_profile] is the prefix sum of the population-mean m(x)
    (length [total_units + 1]).  Partitions whose expected span fitness is
    zero score 1. *)
