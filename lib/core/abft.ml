type mismatch = {
  unit_index : int;
  col : int;
  expected : int;
  actual : int;
}

(* Column-major code block, matching [Weight_layout]: element (row r,
   column c) is codes.(c * rows + r). *)
let checksum_row ~rows ~cols codes =
  if Array.length codes <> rows * cols then
    invalid_arg "Abft.checksum_row: code block size mismatch";
  Array.init cols (fun c ->
      let sum = ref 0 in
      for r = 0 to rows - 1 do
        sum := !sum + codes.((c * rows) + r)
      done;
      !sum)

let verify ~unit_index ~rows ~cols ~codes ~checksum =
  if Array.length checksum <> cols then invalid_arg "Abft.verify: checksum length mismatch";
  let actual = checksum_row ~rows ~cols codes in
  let mismatches = ref [] in
  for c = cols - 1 downto 0 do
    if actual.(c) <> checksum.(c) then
      mismatches :=
        { unit_index; col = c; expected = checksum.(c); actual = actual.(c) }
        :: !mismatches
  done;
  !mismatches

let check_ops_per_mvm ~macro_ops = 2 * macro_ops

let pp_mismatch ppf m =
  Format.fprintf ppf "unit %d col %d: checksum %d, read %d" m.unit_index m.col m.expected
    m.actual
