(** Deterministic realization of runtime cell faults.

    A {!Compass_arch.Fault.t} carries *counts* of transient stuck-at
    cells, persistent weight flips, and a conductance-drift rate; this
    module turns them into concrete fault {e sites} — (unit, row, col,
    corruption) tuples — drawn without replacement from the model's
    global cell index space using a seed, so a scenario plus a seed is a
    reproducible set of corrupted crossbar cells.

    Sites are purely positional: binding a site to the core that holds
    its unit (and un-binding it when recovery remaps the unit) is the
    {!Recovery} engine's job. *)

type kind =
  | Stuck_at of int  (** The cell reads this code regardless of input. *)
  | Bit_flip of int  (** Bit index flipped in the offset-binary code. *)
  | Drift of int  (** Stored level displaced by [±1]. *)

type site = {
  unit_index : int;
  row : int;  (** Local row within the unit (0-based). *)
  col : int;  (** Local column within the unit (0-based). *)
  kind : kind;
  transient : bool;  (** True when the fault clears on retry. *)
}

val unit_cells : Unit_gen.unit_t -> int
val total_cells : Unit_gen.t -> int

val corrupt_code : bits:int -> kind -> int -> int
(** [corrupt_code ~bits kind code] applies the corruption to a signed
    weight code, clamped to the representable range.  The result is
    guaranteed to differ from [code], so every site is observable by an
    integer checksum comparison (zero false negatives). *)

val drift_count : Unit_gen.t -> float option -> int
(** Cells displaced by a drift rate: [max 1 (ceil (rate * total))], or 0
    when the rate is [None]. *)

val realize : Unit_gen.t -> faults:Compass_arch.Fault.t -> seed:int -> site list
(** Sites are listed transients first, then flips, then drift, all on
    distinct cells.  Raises [Invalid_argument] if more faults are
    requested than the model has cells. *)

val pp : Format.formatter -> site -> unit
