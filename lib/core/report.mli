(** Cross-scheme comparisons and report rendering for the evaluation
    harness (Figs. 6-9, Table II). *)

type row = {
  config : string;  (** "network-chip-batch". *)
  scheme : string;
  partitions : int;
  latency_s : float;
  throughput_per_s : float;
  energy_per_sample_j : float;
  edp_j_s : float;
}

val row_of_plan : Compiler.t -> row

val compare_schemes :
  ?objective:Fitness.objective ->
  ?ga_params:Ga.params ->
  model:Compass_nn.Graph.t ->
  chip:Compass_arch.Config.chip ->
  batch:int ->
  unit ->
  row list
(** Compile all three schemes on one workload; rows in
    [compass; greedy; layerwise] order. *)

val speedup : row list -> over:string -> float
(** Throughput of the "compass" row over the named baseline row.
    Raises [Not_found] when a scheme is missing. *)

val rows_table : row list -> Compass_util.Table.t

val rows_to_csv : row list -> string
(** Header plus one line per row; numeric fields in SI units. *)

val write_csv : string -> row list -> unit
(** [write_csv path rows] writes [rows_to_csv] to a file. *)

val support_table : Compass_nn.Graph.t list -> Compass_arch.Config.chip -> Compass_util.Table.t
(** Table II's support matrix against one chip: model sizes plus
    "Prev."/"Ours" columns. *)

val endurance_table : ?endurance_cycles:float -> Compiler.t list -> Compass_util.Table.t
(** Endurance accounting per plan: weight writes per inference, the
    most-rewritten macro's writes per inference, and the projected device
    lifetime in inferences (and in days at a nominal 100 inf/s).  The
    budget comes from each plan's fault scenario when present, else from
    [?endurance_cycles] (e.g.
    [Compass_arch.Technology.reram.endurance_cycles]). *)

val plan_layer_table : Compiler.t -> Compass_util.Table.t
(** One row per weighted layer of the plan: partition, replication, stage
    time after replication, and whether the layer is the partition's
    pipeline bottleneck. *)
