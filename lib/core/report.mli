(** Cross-scheme comparisons and report rendering for the evaluation
    harness (Figs. 6-9, Table II). *)

type row = {
  config : string;  (** "network-chip-batch". *)
  scheme : string;
  partitions : int;
  latency_s : float;
  throughput_per_s : float;
  energy_per_sample_j : float;
  edp_j_s : float;
}

val row_of_plan : Compiler.t -> row

val compare_schemes :
  ?objective:Fitness.objective ->
  ?ga_params:Ga.params ->
  model:Compass_nn.Graph.t ->
  chip:Compass_arch.Config.chip ->
  batch:int ->
  unit ->
  row list
(** Compile all three schemes on one workload; rows in
    [compass; greedy; layerwise] order.  The schemes share one prepared
    front end and one span cache, so each distinct span is estimated
    once. *)

type gap_row = {
  gap_scheme : string;
  gap_value : float;  (** {!Optimal.objective_value} of the scheme's plan. *)
  gap : float;  (** [value / dp lower bound - 1]; 0 means provably optimal. *)
}

val optimality_gap :
  ?objective:Fitness.objective ->
  ?ga_params:Ga.params ->
  model:Compass_nn.Graph.t ->
  chip:Compass_arch.Config.chip ->
  batch:int ->
  unit ->
  Optimal.result * gap_row list
(** How far each scheme lands from the DP's certified bound, in
    [dp; compass; greedy; layerwise] order ([objective] defaults to
    latency).  All four share one front end and span cache.  For the exact
    objectives the dp row's gap is 0 by construction; for EDP it is the
    bound-tightness of the incumbent. *)

val optimality_gap_table :
  objective:Fitness.objective -> Optimal.result * gap_row list -> Compass_util.Table.t
(** Render {!optimality_gap}'s result, with the bound as a trailer row. *)

val speedup : row list -> over:string -> float
(** Throughput of the "compass" row over the named baseline row.
    Raises [Not_found] when a scheme is missing. *)

val rows_table : row list -> Compass_util.Table.t

val rows_to_csv : row list -> string
(** Header plus one line per row; numeric fields in SI units. *)

val write_csv : string -> row list -> unit
(** [write_csv path rows] writes [rows_to_csv] to a file. *)

val support_table : Compass_nn.Graph.t list -> Compass_arch.Config.chip -> Compass_util.Table.t
(** Table II's support matrix against one chip: model sizes plus
    "Prev."/"Ours" columns. *)

val endurance_table : ?endurance_cycles:float -> Compiler.t list -> Compass_util.Table.t
(** Endurance accounting per plan: weight writes per inference, the
    most-rewritten macro's writes per inference, and the projected device
    lifetime in inferences (and in days at a nominal 100 inf/s).  The
    budget comes from each plan's fault scenario when present, else from
    [?endurance_cycles] (e.g.
    [Compass_arch.Technology.reram.endurance_cycles]). *)

val profile_table : unit -> Compass_util.Table.t
(** The merged {!Compass_util.Metrics} snapshot as a two-column table,
    followed by derived rates (estimator span-cache hit rate, DRAM row-hit
    rate) when their inputs are present.  Meaningful only after a run with
    metrics enabled. *)

val plan_layer_table : Compiler.t -> Compass_util.Table.t
(** One row per weighted layer of the plan: partition, replication, stage
    time after replication, and whether the layer is the partition's
    pipeline bottleneck. *)
