exception Load_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Load_error msg)) fmt

let fail_at line fmt =
  Printf.ksprintf (fun msg -> raise (Load_error (Printf.sprintf "line %d: %s" line msg))) fmt

let float_token = Compass_util.Artifact.float_token

let is_zoo_model name = List.mem name Compass_nn.Models.all_names

let to_string (plan : Compiler.t) =
  let buf = Buffer.create 256 in
  let model_name = Compass_nn.Graph.name plan.Compiler.model in
  Buffer.add_string buf "compass-plan 1\n";
  Buffer.add_string buf (Printf.sprintf "model %s\n" model_name);
  Buffer.add_string buf
    (Printf.sprintf "chip %s\n" plan.Compiler.chip.Compass_arch.Config.label);
  Buffer.add_string buf (Printf.sprintf "batch %d\n" plan.Compiler.batch);
  Buffer.add_string buf
    (Printf.sprintf "objective %s\n" (Fitness.objective_to_string plan.Compiler.objective));
  Buffer.add_string buf
    (Printf.sprintf "scheme %s\n" (Compiler.scheme_to_string plan.Compiler.scheme));
  Buffer.add_string buf
    (Printf.sprintf "cuts %s\n"
       (String.concat " "
          (List.map string_of_int (Array.to_list (Partition.cuts plan.Compiler.group)))));
  (match plan.Compiler.faults with
  | Some f when not (Compass_arch.Fault.is_trivial f) ->
    (* Realized scenarios serialize with fixed clauses only, so reloading
       needs no seed. *)
    Buffer.add_string buf (Printf.sprintf "faults %s\n" (Compass_arch.Fault.to_string f))
  | Some _ | None -> ());
  if not (is_zoo_model model_name) then begin
    Buffer.add_string buf "model-text\n";
    Buffer.add_string buf (Compass_nn.Model_text.to_string plan.Compiler.model)
  end;
  Buffer.contents buf

let save path plan =
  Compass_util.Failpoint.guard "plan_text.save";
  Compass_util.Artifact.write_atomic path (to_string plan)

let of_string text =
  (* Header lines until an optional model-text marker; every field keeps
     its 1-based source line for diagnostics. *)
  let lines = String.split_on_char '\n' text in
  let fields : (string, int * string) Hashtbl.t = Hashtbl.create 8 in
  let rec scan lineno = function
    | [] -> None
    | line :: rest -> (
      match String.index_opt line ' ' with
      | _ when String.trim line = "" -> scan (lineno + 1) rest
      | _ when String.trim line = "model-text" -> Some (lineno + 1, String.concat "\n" rest)
      | Some i ->
        Hashtbl.replace fields (String.sub line 0 i)
          (lineno, String.sub line (i + 1) (String.length line - i - 1));
        scan (lineno + 1) rest
      | None -> fail_at lineno "malformed line %S (expected \"key value\")" line)
  in
  let inline_model = scan 1 lines in
  let get key =
    match Hashtbl.find_opt fields key with
    | Some (line, v) -> (line, String.trim v)
    | None -> fail "missing field %s" key
  in
  (match Hashtbl.find_opt fields "compass-plan" with
  | None -> fail "not a compass-plan file (missing \"compass-plan 1\" header)"
  | Some (line, v) when String.trim v <> "1" ->
    fail_at line "unsupported compass-plan version %S (this build reads version 1)"
      (String.trim v)
  | Some _ -> ());
  let _, model_name = get "model" in
  let model =
    match inline_model with
    | Some (first_line, text) -> (
      try Compass_nn.Model_text.parse text
      with Compass_nn.Model_text.Parse_error (line, msg) ->
        fail_at (first_line + line - 1) "inline model (its line %d): %s" line msg)
    | None -> (
      try Compass_nn.Models.by_name model_name
      with Not_found ->
        let line, _ = get "model" in
        fail_at line "unknown zoo model %s" model_name)
  in
  let chip =
    let line, label = get "chip" in
    try Compass_arch.Config.by_label label
    with Not_found -> fail_at line "unknown chip %s" label
  in
  let batch =
    let line, v = get "batch" in
    match int_of_string_opt v with
    | Some b when b >= 1 -> b
    | _ -> fail_at line "bad batch %S" v
  in
  let objective =
    let line, v = get "objective" in
    try Fitness.objective_of_string v
    with Invalid_argument _ -> fail_at line "bad objective %S" v
  in
  let scheme =
    let line, v = get "scheme" in
    try Compiler.scheme_of_string v
    with Invalid_argument _ -> fail_at line "bad scheme %S" v
  in
  let cuts_line, cuts =
    let line, v = get "cuts" in
    let words = String.split_on_char ' ' v |> List.filter (fun w -> w <> "") in
    match List.map int_of_string_opt words with
    | ints when List.for_all Option.is_some ints && ints <> [] ->
      (line, Array.of_list (List.map Option.get ints))
    | _ -> fail_at line "bad cuts %S" v
  in
  let faults =
    match Hashtbl.find_opt fields "faults" with
    | None -> None
    | Some (line, spec) -> (
      try
        let f =
          Compass_arch.Fault.of_string (String.trim spec) ~seed:0 ~cores:chip.Compass_arch.Config.cores
            ~macros_per_core:chip.Compass_arch.Config.core.Compass_arch.Config.macros_per_core
        in
        if Compass_arch.Fault.is_trivial f then None else Some f
      with Invalid_argument msg -> fail_at line "bad faults %S: %s" (String.trim spec) msg)
  in
  let units = Unit_gen.generate model chip in
  let group =
    try Partition.of_cuts cuts
    with Invalid_argument msg -> fail_at cuts_line "invalid cuts: %s" msg
  in
  if Partition.total_units group <> Unit_gen.unit_count units then
    fail_at cuts_line "cuts cover %d units but the decomposition has %d (different hardware?)"
      (Partition.total_units group) (Unit_gen.unit_count units);
  let validity =
    try Validity.build ?faults units
    with Invalid_argument msg -> fail "fault scenario rejects the model: %s" msg
  in
  if not (Validity.group_valid validity group) then
    fail_at cuts_line "stored partitioning is not valid for chip %s%s"
      chip.Compass_arch.Config.label
      (if faults = None then "" else " under the stored fault scenario");
  let ctx = Dataflow.context units in
  let options = { Estimator.default_options with Estimator.faults } in
  let perf = Estimator.evaluate ~options ctx ~batch group in
  {
    Compiler.model;
    chip;
    batch;
    scheme;
    objective;
    units;
    ctx;
    validity;
    group;
    perf;
    ga = None;
    dp = None;
    faults;
    budget_exhausted = false;
  }

let load path = of_string (Compass_util.Artifact.read_file path)

(* {1 GA checkpoints}

   A checkpoint is a strictly ordered sequence of "key value" lines (the
   writer below is the format's specification); loads locate every
   complaint.  Order sensitivity is fine for a machine-written artifact
   and keeps truncation diagnostics precise: the first missing line names
   exactly what the file lost. *)

let scheme_of_name line = function
  | "merge" -> Ga.Merge
  | "split" -> Ga.Split
  | "move" -> Ga.Move
  | "fixed_random" -> Ga.Fixed_random
  | other -> fail_at line "unknown mutation scheme %S" other

let cuts_token group =
  String.concat " " (List.map string_of_int (Array.to_list (Partition.cuts group)))

(* (fitness, partition-count) pair lists of a generation record. *)
let pairs_token = function
  | [] -> "-"
  | pairs ->
    String.concat ","
      (List.map (fun (f, p) -> Printf.sprintf "%s:%d" (float_token f) p) pairs)

let parse_pairs line = function
  | "-" -> []
  | s ->
    List.map
      (fun tok ->
        match String.rindex_opt tok ':' with
        | None -> fail_at line "bad fitness:partitions pair %S" tok
        | Some i -> (
          let f = String.sub tok 0 i in
          let p = String.sub tok (i + 1) (String.length tok - i - 1) in
          match (float_of_string_opt f, int_of_string_opt p) with
          | Some f, Some p -> (f, p)
          | _ -> fail_at line "bad fitness:partitions pair %S" tok))
      (String.split_on_char ',' s)

let checkpoint_to_string (ck : Ga.checkpoint) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let p = ck.Ga.ck_params in
  add "compass-ga-checkpoint 1";
  add "objective %s" (Fitness.objective_to_string ck.Ga.ck_objective);
  add "batch %d" ck.Ga.ck_batch;
  add "generation %d" ck.Ga.ck_generation;
  add "rng-state %Ld" ck.Ga.ck_rng_state;
  add "best-seen %s" (float_token ck.Ga.ck_best_seen);
  add "stall %d" ck.Ga.ck_stall;
  add "evaluations %d" ck.Ga.ck_evaluations;
  add "population %d" p.Ga.population;
  add "generations %d" p.Ga.generations;
  add "n-sel %d" p.Ga.n_sel;
  add "n-mut %d" p.Ga.n_mut;
  add "early-stop-patience %d" p.Ga.early_stop_patience;
  add "mutation-retries %d" p.Ga.mutation_retries;
  add "schemes %s" (String.concat "," (List.map Ga.scheme_name p.Ga.schemes));
  add "crossover-rate %s" (float_token p.Ga.crossover_rate);
  add "seed %d" p.Ga.seed;
  add "jobs %d" p.Ga.jobs;
  add "warm-start %d" (List.length p.Ga.warm_start);
  List.iter (fun g -> add "cuts %s" (cuts_token g)) p.Ga.warm_start;
  add "individuals %d" (Array.length ck.Ga.ck_population);
  Array.iter (fun g -> add "cuts %s" (cuts_token g)) ck.Ga.ck_population;
  add "records %d" (List.length ck.Ga.ck_history);
  List.iter
    (fun (r : Ga.generation_record) ->
      add "record %d %s %s %s" r.Ga.generation (float_token r.Ga.best_fitness)
        (pairs_token r.Ga.selected) (pairs_token r.Ga.mutated))
    ck.Ga.ck_history;
  Buffer.contents buf

let checkpoint_of_string text =
  (* Non-empty lines with their 1-based positions, consumed in order. *)
  let lines =
    List.filteri
      (fun _ (_, l) -> String.trim l <> "")
      (List.mapi (fun i l -> (i + 1, l)) (String.split_on_char '\n' text))
  in
  let cursor = ref lines in
  let next key =
    match !cursor with
    | [] -> fail "truncated checkpoint: missing field %s" key
    | (line, l) :: rest -> (
      cursor := rest;
      match String.index_opt l ' ' with
      | Some i when String.sub l 0 i = key ->
        (line, String.trim (String.sub l (i + 1) (String.length l - i - 1)))
      | _ -> fail_at line "expected field %s, found %S" key l)
  in
  let int_field key =
    let line, v = next key in
    match int_of_string_opt v with
    | Some n -> (line, n)
    | None -> fail_at line "bad %s %S (expected an integer)" key v
  in
  let float_field key =
    let line, v = next key in
    match float_of_string_opt v with
    | Some f -> (line, f)
    | None -> fail_at line "bad %s %S (expected a float)" key v
  in
  let cuts_field () =
    let line, v = next "cuts" in
    let words = String.split_on_char ' ' v |> List.filter (fun w -> w <> "") in
    match List.map int_of_string_opt words with
    | ints when List.for_all Option.is_some ints && ints <> [] -> (
      let cuts = Array.of_list (List.map Option.get ints) in
      try Partition.of_cuts cuts
      with Invalid_argument msg -> fail_at line "invalid cuts: %s" msg)
    | _ -> fail_at line "bad cuts %S" v
  in
  (match !cursor with
  | [] -> fail "not a compass-ga-checkpoint file (empty)"
  | (line, l) :: _ -> (
    match String.index_opt l ' ' with
    | Some i when String.sub l 0 i = "compass-ga-checkpoint" ->
      let v = String.trim (String.sub l (i + 1) (String.length l - i - 1)) in
      if v <> "1" then
        fail_at line
          "unsupported compass-ga-checkpoint version %S (this build reads version 1)" v
      else cursor := List.tl !cursor
    | _ -> fail_at line "not a compass-ga-checkpoint file (missing header)"));
  let obj_line, obj = next "objective" in
  let ck_objective =
    try Fitness.objective_of_string obj
    with Invalid_argument _ -> fail_at obj_line "bad objective %S" obj
  in
  let _, ck_batch = int_field "batch" in
  let _, ck_generation = int_field "generation" in
  let ck_rng_state =
    let line, v = next "rng-state" in
    match Int64.of_string_opt v with
    | Some s -> s
    | None -> fail_at line "bad rng-state %S (expected a 64-bit integer)" v
  in
  let _, ck_best_seen = float_field "best-seen" in
  let _, ck_stall = int_field "stall" in
  let _, ck_evaluations = int_field "evaluations" in
  let _, population = int_field "population" in
  let _, generations = int_field "generations" in
  let _, n_sel = int_field "n-sel" in
  let _, n_mut = int_field "n-mut" in
  let _, early_stop_patience = int_field "early-stop-patience" in
  let _, mutation_retries = int_field "mutation-retries" in
  let schemes =
    let line, v = next "schemes" in
    match String.split_on_char ',' v |> List.filter (fun s -> s <> "") with
    | [] -> fail_at line "no mutation schemes listed"
    | names -> List.map (scheme_of_name line) names
  in
  let _, crossover_rate = float_field "crossover-rate" in
  let _, seed = int_field "seed" in
  let _, jobs = int_field "jobs" in
  let _, nwarm = int_field "warm-start" in
  let warm_start = List.init nwarm (fun _ -> cuts_field ()) in
  let _, nind = int_field "individuals" in
  if nind < 1 then fail "checkpoint has no population";
  let ck_population = Array.init nind (fun _ -> cuts_field ()) in
  let _, nrec = int_field "records" in
  let ck_history =
    List.init nrec (fun _ ->
        let line, v = next "record" in
        match String.split_on_char ' ' v |> List.filter (fun s -> s <> "") with
        | [ gen; best; sel; mut ] -> (
          match (int_of_string_opt gen, float_of_string_opt best) with
          | Some generation, Some best_fitness ->
            {
              Ga.generation;
              best_fitness;
              selected = parse_pairs line sel;
              mutated = parse_pairs line mut;
            }
          | _ -> fail_at line "bad record %S" v)
        | _ -> fail_at line "bad record %S (expected gen best selected mutated)" v)
  in
  (match !cursor with
  | [] -> ()
  | (line, l) :: _ -> fail_at line "trailing content %S after the checkpoint" l);
  {
    Ga.ck_params =
      {
        Ga.population;
        generations;
        n_sel;
        n_mut;
        early_stop_patience;
        mutation_retries;
        schemes;
        crossover_rate;
        seed;
        jobs;
        warm_start;
      };
    ck_objective;
    ck_batch;
    ck_generation;
    ck_rng_state;
    ck_best_seen;
    ck_stall;
    ck_evaluations;
    ck_population;
    ck_history;
  }

let save_checkpoint path ck =
  Compass_util.Failpoint.guard "plan_text.checkpoint.save";
  Compass_util.Artifact.write_atomic path (checkpoint_to_string ck)

let load_checkpoint path =
  Compass_util.Failpoint.guard "plan_text.checkpoint.load";
  checkpoint_of_string (Compass_util.Artifact.read_file path)

let append_checkpoint path ck =
  Compass_util.Failpoint.guard "plan_text.checkpoint.save";
  Compass_util.Artifact.append_durable path (checkpoint_to_string ck)

(* {1 Checkpoint salvage}

   A torn checkpoint — truncated by a crash mid-write or a torn journal
   append — is recovered instead of failing resume.  The file is split
   into blocks at "compass-ga-checkpoint" header lines (a journal holds
   several; an atomic snapshot holds one) and blocks are tried newest
   first.  Within a torn block, a final partial line (no trailing
   newline) is untrustworthy and dropped — a truncated "cuts" line can
   still parse as a {e different} individual, which would silently break
   resume determinism.  The population must survive complete; truncated
   trailing history records are dropped (history is reporting-only, so
   the resumed trajectory is unaffected). *)

type salvage = {
  recovered : Ga.checkpoint;
  generation : int;
  complete : bool;
  dropped_records : int;
}

let header_token = "compass-ga-checkpoint"

(* Start offsets of every block header at a line start. *)
let block_starts text =
  let n = String.length text and hn = String.length header_token in
  let at i = i + hn <= n && String.sub text i hn = header_token in
  let starts = ref (if at 0 then [ 0 ] else []) in
  String.iteri (fun i c -> if c = '\n' && at (i + 1) then starts := (i + 1) :: !starts) text;
  List.rev !starts

(* A well-formed "key v..." line, reusing the strict parsers so tolerance
   never accepts what the strict reader would reject. *)
let record_line_ok l =
  match String.index_opt l ' ' with
  | Some i when String.sub l 0 i = "record" -> (
    let v = String.trim (String.sub l (i + 1) (String.length l - i - 1)) in
    match String.split_on_char ' ' v |> List.filter (fun s -> s <> "") with
    | [ gen; best; sel; mut ] -> (
      match (int_of_string_opt gen, float_of_string_opt best) with
      | Some _, Some _ -> (
        match (parse_pairs 0 sel, parse_pairs 0 mut) with
        | _, _ -> true
        | exception Load_error _ -> false)
      | _ -> false)
    | _ -> false)
  | _ -> false

let records_count_line l =
  match String.index_opt l ' ' with
  | Some i when String.sub l 0 i = "records" ->
    int_of_string_opt (String.trim (String.sub l (i + 1) (String.length l - i - 1)))
  | _ -> None

let salvage_block text =
  (* A block whose final line lacks its newline is torn mid-line; a torn
     line must never be trusted even when it happens to parse (a
     truncated "record" pairs token still reads as a — shorter — valid
     token), so the strict path only runs on newline-terminated text. *)
  let torn_tail = text <> "" && text.[String.length text - 1] <> '\n' in
  match if torn_tail then fail "torn final line" else checkpoint_of_string text with
  | ck ->
    { recovered = ck; generation = ck.Ga.ck_generation; complete = true; dropped_records = 0 }
  | exception (Load_error _ as strict_failure) ->
    (* Drop the torn final partial line, then rebuild the records section
       from the complete, well-formed record lines and re-run the strict
       parser on the repaired text — tolerance never invents fields. *)
    let text =
      match String.rindex_opt text '\n' with
      | Some i when i = String.length text - 1 -> text
      | Some i -> String.sub text 0 (i + 1)
      | None -> raise strict_failure
    in
    let lines =
      String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
    in
    let rec split_at_records prefix = function
      | [] -> (List.rev prefix, None, [])
      | l :: rest -> (
        match records_count_line l with
        | Some n -> (List.rev prefix, Some n, rest)
        | None -> split_at_records (l :: prefix) rest)
    in
    let prefix, declared, tail = split_at_records [] lines in
    let kept =
      let rec take n = function
        | l :: rest when n > 0 && record_line_ok l -> l :: take (n - 1) rest
        | _ -> []
      in
      take (Option.value ~default:0 declared) tail
    in
    let nkept = List.length kept in
    let repaired =
      String.concat "\n"
        (prefix @ (Printf.sprintf "records %d" nkept :: kept) @ [ "" ])
    in
    let ck = checkpoint_of_string repaired in
    {
      recovered = ck;
      generation = ck.Ga.ck_generation;
      complete = false;
      dropped_records = (match declared with Some n -> max 0 (n - nkept) | None -> 0);
    }

let salvage_of_string text =
  match block_starts text with
  | [] -> fail "not a compass-ga-checkpoint file (missing header)"
  | starts ->
    let n = String.length text in
    let blocks =
      let rec spans = function
        | [] -> []
        | [ s ] -> [ String.sub text s (n - s) ]
        | s :: (s' :: _ as rest) -> String.sub text s (s' - s) :: spans rest
      in
      spans starts
    in
    let rec newest_first = function
      | [] -> assert false
      | [ b ] -> salvage_block b
      | b :: earlier -> (
        match salvage_block b with
        | s -> s
        | exception (Load_error _ as e) -> (
          (* The newest block's diagnostic is the one that matters. *)
          try newest_first earlier with Load_error _ -> raise e))
    in
    (* Blocks were built oldest-first; try newest first. *)
    newest_first (List.rev blocks)

let salvage_checkpoint path =
  Compass_util.Failpoint.guard "plan_text.checkpoint.load";
  salvage_of_string (Compass_util.Artifact.read_file path)
