exception Load_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Load_error msg)) fmt

let is_zoo_model name = List.mem name Compass_nn.Models.all_names

let to_string (plan : Compiler.t) =
  let buf = Buffer.create 256 in
  let model_name = Compass_nn.Graph.name plan.Compiler.model in
  Buffer.add_string buf "compass-plan 1\n";
  Buffer.add_string buf (Printf.sprintf "model %s\n" model_name);
  Buffer.add_string buf
    (Printf.sprintf "chip %s\n" plan.Compiler.chip.Compass_arch.Config.label);
  Buffer.add_string buf (Printf.sprintf "batch %d\n" plan.Compiler.batch);
  Buffer.add_string buf
    (Printf.sprintf "objective %s\n" (Fitness.objective_to_string plan.Compiler.objective));
  Buffer.add_string buf
    (Printf.sprintf "scheme %s\n" (Compiler.scheme_to_string plan.Compiler.scheme));
  Buffer.add_string buf
    (Printf.sprintf "cuts %s\n"
       (String.concat " "
          (List.map string_of_int (Array.to_list (Partition.cuts plan.Compiler.group)))));
  (match plan.Compiler.faults with
  | Some f when not (Compass_arch.Fault.is_trivial f) ->
    (* Realized scenarios serialize with fixed clauses only, so reloading
       needs no seed. *)
    Buffer.add_string buf (Printf.sprintf "faults %s\n" (Compass_arch.Fault.to_string f))
  | Some _ | None -> ());
  if not (is_zoo_model model_name) then begin
    Buffer.add_string buf "model-text\n";
    Buffer.add_string buf (Compass_nn.Model_text.to_string plan.Compiler.model)
  end;
  Buffer.contents buf

let save path plan =
  let oc = open_out path in
  output_string oc (to_string plan);
  close_out oc

let of_string text =
  (* Header lines until an optional model-text marker. *)
  let lines = String.split_on_char '\n' text in
  let fields = Hashtbl.create 8 in
  let rec scan = function
    | [] -> None
    | line :: rest -> (
      match String.index_opt line ' ' with
      | _ when String.trim line = "" -> scan rest
      | _ when String.trim line = "model-text" -> Some (String.concat "\n" rest)
      | Some i ->
        Hashtbl.replace fields (String.sub line 0 i)
          (String.sub line (i + 1) (String.length line - i - 1));
        scan rest
      | None -> fail "malformed line %S" line)
  in
  let inline_model = scan lines in
  let get key =
    match Hashtbl.find_opt fields key with
    | Some v -> String.trim v
    | None -> fail "missing field %s" key
  in
  if Hashtbl.find_opt fields "compass-plan" <> Some "1" then
    fail "not a compass-plan version 1 file";
  let model_name = get "model" in
  let model =
    match inline_model with
    | Some text -> (
      try Compass_nn.Model_text.parse text
      with Compass_nn.Model_text.Parse_error (line, msg) ->
        fail "inline model, line %d: %s" line msg)
    | None -> (
      try Compass_nn.Models.by_name model_name
      with Not_found -> fail "unknown zoo model %s" model_name)
  in
  let chip =
    try Compass_arch.Config.by_label (get "chip")
    with Not_found -> fail "unknown chip %s" (get "chip")
  in
  let batch =
    match int_of_string_opt (get "batch") with
    | Some b when b >= 1 -> b
    | _ -> fail "bad batch %S" (get "batch")
  in
  let objective =
    try Fitness.objective_of_string (get "objective")
    with Invalid_argument _ -> fail "bad objective %S" (get "objective")
  in
  let scheme =
    try Compiler.scheme_of_string (get "scheme")
    with Invalid_argument _ -> fail "bad scheme %S" (get "scheme")
  in
  let cuts =
    let words = String.split_on_char ' ' (get "cuts") |> List.filter (fun w -> w <> "") in
    match List.map int_of_string_opt words with
    | ints when List.for_all Option.is_some ints && ints <> [] ->
      Array.of_list (List.map Option.get ints)
    | _ -> fail "bad cuts %S" (get "cuts")
  in
  let faults =
    match Hashtbl.find_opt fields "faults" with
    | None -> None
    | Some spec -> (
      try
        let f =
          Compass_arch.Fault.of_string (String.trim spec) ~seed:0 ~cores:chip.Compass_arch.Config.cores
            ~macros_per_core:chip.Compass_arch.Config.core.Compass_arch.Config.macros_per_core
        in
        if Compass_arch.Fault.is_trivial f then None else Some f
      with Invalid_argument msg -> fail "bad faults %S: %s" (String.trim spec) msg)
  in
  let units = Unit_gen.generate model chip in
  let group =
    try Partition.of_cuts cuts
    with Invalid_argument msg -> fail "invalid cuts: %s" msg
  in
  if Partition.total_units group <> Unit_gen.unit_count units then
    fail "cuts cover %d units but the decomposition has %d (different hardware?)"
      (Partition.total_units group) (Unit_gen.unit_count units);
  let validity =
    try Validity.build ?faults units
    with Invalid_argument msg -> fail "fault scenario rejects the model: %s" msg
  in
  if not (Validity.group_valid validity group) then
    fail "stored partitioning is not valid for chip %s%s" chip.Compass_arch.Config.label
      (if faults = None then "" else " under the stored fault scenario");
  let ctx = Dataflow.context units in
  let options = { Estimator.default_options with Estimator.faults } in
  let perf = Estimator.evaluate ~options ctx ~batch group in
  {
    Compiler.model;
    chip;
    batch;
    scheme;
    objective;
    units;
    ctx;
    validity;
    group;
    perf;
    ga = None;
    dp = None;
    faults;
  }

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text
