type row = {
  config : string;
  scheme : string;
  partitions : int;
  latency_s : float;
  throughput_per_s : float;
  energy_per_sample_j : float;
  edp_j_s : float;
}

let row_of_plan (plan : Compiler.t) =
  {
    config = Compiler.label plan;
    scheme = Compiler.scheme_to_string plan.Compiler.scheme;
    partitions = Partition.partition_count plan.Compiler.group;
    latency_s = plan.Compiler.perf.Estimator.batch_latency_s;
    throughput_per_s = plan.Compiler.perf.Estimator.throughput_per_s;
    energy_per_sample_j = plan.Compiler.perf.Estimator.energy_per_sample_j;
    edp_j_s = plan.Compiler.perf.Estimator.edp_j_s;
  }

let compare_schemes ?objective ?ga_params ~model ~chip ~batch () =
  (* One front end and one span cache for all schemes: every distinct span
     is estimated once no matter how many schemes request it. *)
  let prepared = Compiler.prepare ~model ~chip () in
  let cache = Estimator.Span_cache.create ~batch () in
  List.map
    (fun scheme ->
      row_of_plan
        (Compiler.compile_prepared ?objective ?ga_params ~cache ~batch prepared scheme))
    [ Compiler.Compass; Compiler.Greedy; Compiler.Layerwise ]

type gap_row = {
  gap_scheme : string;
  gap_value : float;
  gap : float;
}

let optimality_gap ?(objective = Fitness.Latency) ?ga_params ~model ~chip ~batch () =
  let prepared = Compiler.prepare ~model ~chip () in
  let cache = Estimator.Span_cache.create ~batch () in
  let plan scheme =
    Compiler.compile_prepared ~objective ?ga_params ~cache ~batch prepared scheme
  in
  let dp_plan = plan Compiler.Optimal in
  let dp =
    match dp_plan.Compiler.dp with
    | Some dp -> dp
    | None -> assert false (* the Optimal scheme always records its result *)
  in
  let bound = dp.Optimal.lower_bound in
  let row (p : Compiler.t) =
    let v = Optimal.objective_value objective p.Compiler.perf in
    {
      gap_scheme = Compiler.scheme_to_string p.Compiler.scheme;
      gap_value = v;
      gap = (if bound > 0. then (v /. bound) -. 1. else 0.);
    }
  in
  (dp, List.map row [ dp_plan; plan Compiler.Compass; plan Compiler.Greedy; plan Compiler.Layerwise ])

let optimality_gap_table ~objective (dp, rows) =
  let open Compass_util in
  let table =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
      [ "scheme"; Fitness.objective_to_string objective; "gap" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ r.gap_scheme; Printf.sprintf "%.6g" r.gap_value; Printf.sprintf "%+.2f%%" (100. *. r.gap) ])
    rows;
  Table.add_row table
    [
      (if dp.Optimal.exact then "(dp optimum)" else "(dp lower bound)");
      Printf.sprintf "%.6g" dp.Optimal.lower_bound;
      "";
    ];
  table

let find_scheme rows name =
  match List.find_opt (fun r -> r.scheme = name) rows with
  | Some r -> r
  | None -> raise Not_found

let speedup rows ~over =
  let compass = find_scheme rows "compass" in
  let baseline = find_scheme rows over in
  compass.throughput_per_s /. baseline.throughput_per_s

let rows_table rows =
  let open Compass_util in
  let table =
    Table.create
      ~aligns:
        [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "config"; "scheme"; "parts"; "latency"; "throughput"; "energy/inf"; "EDP(J.s)" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.config;
          r.scheme;
          string_of_int r.partitions;
          Units.time_to_string r.latency_s;
          Printf.sprintf "%.1f/s" r.throughput_per_s;
          Units.energy_to_string r.energy_per_sample_j;
          Printf.sprintf "%.3g" r.edp_j_s;
        ])
    rows;
  table

let rows_to_csv rows =
  let header = "config,scheme,partitions,latency_s,throughput_per_s,energy_per_sample_j,edp_j_s" in
  let line r =
    Printf.sprintf "%s,%s,%d,%.9g,%.9g,%.9g,%.9g" r.config r.scheme r.partitions
      r.latency_s r.throughput_per_s r.energy_per_sample_j r.edp_j_s
  in
  String.concat "\n" (header :: List.map line rows) ^ "\n"

let write_csv path rows =
  let oc = open_out path in
  output_string oc (rows_to_csv rows);
  close_out oc

let support_table models chip =
  let open Compass_util in
  let table =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Left; Table.Left ]
      [ "Network"; "Linear(MB)"; "Conv(MB)"; "Total(MB)"; "Prev."; "Ours" ]
  in
  List.iter
    (fun model ->
      let s = Compass_nn.Summary.of_graph model in
      let prev = Compiler.supported_by_prior_compilers model chip in
      Table.add_row table
        [
          s.Compass_nn.Summary.model;
          Printf.sprintf "%.3f" s.Compass_nn.Summary.linear_mb;
          Printf.sprintf "%.3f" s.Compass_nn.Summary.conv_mb;
          Printf.sprintf "%.3f" s.Compass_nn.Summary.total_mb;
          (if prev then "V" else "X");
          "V";
        ])
    models;
  table

let endurance_table ?endurance_cycles plans =
  let open Compass_util in
  let table =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "config"; "writes/inf"; "worst macro/inf"; "lifetime(inf)"; "lifetime(days@100/s)" ]
  in
  List.iter
    (fun (plan : Compiler.t) ->
      let e = plan.Compiler.perf.Estimator.endurance in
      let budget =
        match e.Estimator.projected_lifetime_inferences with
        | Some _ -> e.Estimator.projected_lifetime_inferences
        | None -> (
          match endurance_cycles with
          | Some b when e.Estimator.max_writes_per_macro_per_inference > 0. ->
            Some (b /. e.Estimator.max_writes_per_macro_per_inference)
          | _ -> None)
      in
      Table.add_row table
        [
          Compiler.label plan;
          Printf.sprintf "%.1f" e.Estimator.writes_per_inference;
          Printf.sprintf "%.3f" e.Estimator.max_writes_per_macro_per_inference;
          (match budget with Some n -> Printf.sprintf "%.3g" n | None -> "-");
          (match budget with
          | Some n -> Printf.sprintf "%.2f" (n /. 100. /. 86400.)
          | None -> "-");
        ])
    plans;
  table

let profile_table () =
  let open Compass_util in
  let table = Table.create ~aligns:[ Table.Left; Table.Right ] [ "metric"; "value" ] in
  List.iter
    (fun (name, v) -> Table.add_row table [ name; Metrics.value_to_string v ])
    (Metrics.snapshot ());
  (* Derived rates, appended after the raw catalogue. *)
  let int_of name = Option.value ~default:0 (Metrics.find_int name) in
  let ratio_row name hits misses =
    let total = hits + misses in
    if total > 0 then
      Table.add_row table
        [ name; Printf.sprintf "%.1f%%" (100. *. float_of_int hits /. float_of_int total) ]
  in
  ratio_row "estimator.span_cache.hit_rate"
    (int_of "estimator.span_cache.hits")
    (int_of "estimator.span_cache.misses");
  ratio_row "dram.row_hit_rate" (int_of "dram.row_hits") (int_of "dram.row_misses");
  table

let plan_layer_table (plan : Compiler.t) =
  let open Compass_util in
  let model = plan.Compiler.model in
  let table =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Left ]
      [ "layer"; "partition"; "replication"; "stage time"; "bottleneck" ]
  in
  List.iteri
    (fun k (sp : Estimator.span_perf) ->
      let bottleneck_node =
        List.fold_left
          (fun acc (node, s) ->
            match acc with
            | Some (_, best) when best >= s -> acc
            | _ -> Some (node, s))
          None sp.Estimator.stage_times
      in
      List.iter
        (fun (node, stage_s) ->
          let name = (Compass_nn.Graph.layer model node).Compass_nn.Layer.name in
          let rep = Replication.replication_of sp.Estimator.replication node in
          let is_bottleneck =
            match bottleneck_node with Some (n, _) -> n = node | None -> false
          in
          Table.add_row table
            [
              name;
              Printf.sprintf "P%d" k;
              Printf.sprintf "x%d" rep;
              Units.time_to_string stage_s;
              (if is_bottleneck then "*" else "");
            ])
        sp.Estimator.stage_times)
    plan.Compiler.perf.Estimator.spans;
  table
