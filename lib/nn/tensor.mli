(** Dense float tensors and the reference operator implementations.

    One sample, channel-major layout (CHW for feature maps, flat for
    vectors).  This is the functional substrate behind [Executor]: a slow,
    obviously-correct implementation of every IR operator, used to verify
    that compiled, partitioned execution computes the same function as the
    original network. *)

type t

val create : Shape.t -> (int -> float) -> t
(** [create shape f] fills element [i] (layout order) with [f i]. *)

val zeros : Shape.t -> t

val of_array : Shape.t -> float array -> t
(** Raises [Invalid_argument] when sizes disagree.  The array is copied. *)

val shape : t -> Shape.t

val size : t -> int

val to_array : t -> float array
(** A fresh copy of the underlying data. *)

val unsafe_get : t -> int -> float
(** Flat indexing without a bounds check — for kernel inner loops that
    have hoisted their range proof.  Out-of-range access is undefined
    behaviour; external callers should use {!get}. *)

val blit : t -> float array -> pos:int -> unit
(** [blit t dst ~pos] copies [t]'s elements into [dst] starting at
    [pos] without allocating (unlike {!to_array}).  Raises
    [Invalid_argument] when the destination range is out of bounds. *)

val get : t -> int -> float
(** Flat indexing; raises [Invalid_argument] out of range. *)

val get_chw : t -> c:int -> h:int -> w:int -> float
(** Feature-map indexing; raises [Invalid_argument] on vectors or out of
    range. *)

val equal : ?eps:float -> t -> t -> bool
(** Element-wise comparison within [eps] (default 1e-9). *)

val max_abs_diff : t -> t -> float
(** Largest element-wise difference; raises [Invalid_argument] on shape
    mismatch. *)

(** {2 Operators}

    Weight layouts match [Layer]: convolutions take
    [out_c * in_c * kh * kw] arrays, linear layers [out * in] arrays
    (row-major, one row per output). *)

val conv2d : Layer.conv -> weights:float array -> t -> t
val linear : in_features:int -> out_features:int -> weights:float array -> t -> t

val conv2d_gemm : ?scratch:Im2col.scratch -> Layer.conv -> weights:float array -> t -> t
(** Fast convolution via [Im2col]: bit-identical outputs to {!conv2d}
    (the naive kernel remains the oracle; a QCheck differential suite
    pins the equivalence).  [scratch] reuses a patch buffer across
    calls — one per domain. *)

val linear_gemm : in_features:int -> out_features:int -> weights:float array -> t -> t
(** Fast dense layer, bit-identical to {!linear}. *)

val max_pool : kernel:int -> stride:int -> padding:int -> t -> t
val avg_pool : kernel:int -> stride:int -> padding:int -> t -> t
val global_avg_pool : t -> t
val relu : t -> t
val add : t -> t -> t
val concat : t list -> t
val flatten : t -> t

val pp_stats : Format.formatter -> t -> unit
(** Shape, min/max/mean — for debugging. *)
