type spec = {
  bits : int;
  scale : float;
}

let levels bits = (1 lsl (bits - 1)) - 1

let quantize ~bits data =
  if bits < 2 then invalid_arg "Quant.quantize: bits < 2";
  let peak = Array.fold_left (fun acc x -> max acc (abs_float x)) 0. data in
  if peak = 0. then (Array.copy data, { bits; scale = 1. })
  else begin
    let q = float_of_int (levels bits) in
    let scale = peak /. q in
    let snapped = Array.map (fun x -> Float.round (x /. scale) *. scale) data in
    (snapped, { bits; scale })
  end

let quantize_weights ~bits weights =
  let out = Hashtbl.create (Hashtbl.length weights) in
  Hashtbl.iter (fun node data -> Hashtbl.add out node (fst (quantize ~bits data))) weights;
  out

let max_error ~original ~quantized =
  if Array.length original <> Array.length quantized then
    invalid_arg "Quant.max_error: length mismatch";
  let worst = ref 0. in
  Array.iteri
    (fun i x -> worst := max !worst (abs_float (x -. quantized.(i))))
    original;
  !worst

let mean_squared_error ~original ~quantized =
  if Array.length original <> Array.length quantized then
    invalid_arg "Quant.mean_squared_error: length mismatch";
  if Array.length original = 0 then 0.
  else begin
    let acc = ref 0. in
    Array.iteri
      (fun i x ->
        let d = x -. quantized.(i) in
        acc := !acc +. (d *. d))
      original;
    !acc /. float_of_int (Array.length original)
  end

let codes spec data =
  Array.map
    (fun x ->
      let c = int_of_float (Float.round (x /. spec.scale)) in
      let bound = levels spec.bits in
      max (-bound) (min bound c))
    data

let dequantize spec codes = Array.map (fun c -> float_of_int c *. spec.scale) codes

let storage_bits ~bits n =
  if bits <= 0 || n < 0 then invalid_arg "Quant.storage_bits";
  bits * n
