type t = {
  shape : Shape.t;
  data : float array;
}

let create shape f = { shape; data = Array.init (Shape.elements shape) f }

let zeros shape = create shape (fun _ -> 0.)

let of_array shape data =
  if Array.length data <> Shape.elements shape then
    invalid_arg "Tensor.of_array: size mismatch";
  { shape; data = Array.copy data }

let shape t = t.shape
let size t = Array.length t.data
let to_array t = Array.copy t.data
let unsafe_get t i = Array.unsafe_get t.data i
let blit t dst ~pos = Array.blit t.data 0 dst pos (Array.length t.data)

let get t i =
  if i < 0 || i >= Array.length t.data then invalid_arg "Tensor.get: out of range";
  t.data.(i)

let dims t =
  match t.shape with
  | Shape.Feature_map { channels; height; width } -> (channels, height, width)
  | Shape.Vector _ -> invalid_arg "Tensor: expected a feature map"

let get_chw t ~c ~h ~w =
  let channels, height, width = dims t in
  if c < 0 || c >= channels || h < 0 || h >= height || w < 0 || w >= width then
    invalid_arg "Tensor.get_chw: out of range";
  t.data.((c * height * width) + (h * width) + w)

(* 0 outside the feature map: implements zero padding. *)
let at_padded t ~height ~width ~c ~h ~w =
  if h < 0 || h >= height || w < 0 || w >= width then 0.
  else t.data.((c * height * width) + (h * width) + w)

let max_abs_diff a b =
  if a.shape <> b.shape then invalid_arg "Tensor.max_abs_diff: shape mismatch";
  let worst = ref 0. in
  Array.iteri (fun i x -> worst := max !worst (abs_float (x -. b.data.(i)))) a.data;
  !worst

let equal ?(eps = 1e-9) a b = a.shape = b.shape && max_abs_diff a b <= eps

let out_dim ~size ~kernel ~stride ~padding = ((size + (2 * padding) - kernel) / stride) + 1

let conv2d (conv : Layer.conv) ~weights input =
  let in_c, height, width = dims input in
  if in_c <> conv.Layer.in_channels then invalid_arg "Tensor.conv2d: channel mismatch";
  let { Layer.in_channels; out_channels; kernel_h; kernel_w; stride; padding; groups } =
    conv
  in
  (* Weight layout: out_c x (in_c/groups) x kh x kw; output channel [oc]
     reads only the input channels of its group. *)
  let group_in = in_channels / groups in
  let group_out = out_channels / groups in
  if Array.length weights <> out_channels * group_in * kernel_h * kernel_w then
    invalid_arg "Tensor.conv2d: weight size mismatch";
  let oh = out_dim ~size:height ~kernel:kernel_h ~stride ~padding in
  let ow = out_dim ~size:width ~kernel:kernel_w ~stride ~padding in
  let out = Array.make (out_channels * oh * ow) 0. in
  for oc = 0 to out_channels - 1 do
    let group = oc / group_out in
    let ic_base = group * group_in in
    for y = 0 to oh - 1 do
      for x = 0 to ow - 1 do
        let acc = ref 0. in
        for g = 0 to group_in - 1 do
          let ic = ic_base + g in
          for ky = 0 to kernel_h - 1 do
            for kx = 0 to kernel_w - 1 do
              let h = (y * stride) + ky - padding in
              let w = (x * stride) + kx - padding in
              let v = at_padded input ~height ~width ~c:ic ~h ~w in
              let wgt =
                weights.((((oc * group_in) + g) * kernel_h * kernel_w)
                         + (ky * kernel_w) + kx)
              in
              acc := !acc +. (v *. wgt)
            done
          done
        done;
        out.((oc * oh * ow) + (y * ow) + x) <- !acc
      done
    done
  done;
  { shape = Shape.feature_map ~channels:out_channels ~height:oh ~width:ow; data = out }

let linear ~in_features ~out_features ~weights input =
  (match input.shape with
  | Shape.Vector { features } when features = in_features -> ()
  | _ -> invalid_arg "Tensor.linear: input mismatch");
  if Array.length weights <> in_features * out_features then
    invalid_arg "Tensor.linear: weight size mismatch";
  let out = Array.make out_features 0. in
  for o = 0 to out_features - 1 do
    let acc = ref 0. in
    for i = 0 to in_features - 1 do
      acc := !acc +. (weights.((o * in_features) + i) *. input.data.(i))
    done;
    out.(o) <- !acc
  done;
  { shape = Shape.vector out_features; data = out }

(* Fast path: im2col + cache-blocked GEMM, bit-identical to [conv2d]
   (same per-output-element accumulation order; see Im2col). *)
let conv2d_gemm ?scratch (conv : Layer.conv) ~weights input =
  let in_c, height, width = dims input in
  if in_c <> conv.Layer.in_channels then invalid_arg "Tensor.conv2d: channel mismatch";
  let group_in = conv.Layer.in_channels / conv.Layer.groups in
  if
    Array.length weights
    <> conv.Layer.out_channels * group_in * conv.Layer.kernel_h * conv.Layer.kernel_w
  then invalid_arg "Tensor.conv2d: weight size mismatch";
  let data, oh, ow = Im2col.conv ?scratch conv ~weights ~input:input.data ~height ~width in
  {
    shape = Shape.feature_map ~channels:conv.Layer.out_channels ~height:oh ~width:ow;
    data;
  }

(* Fast path for [linear], bit-identical (see Im2col). *)
let linear_gemm ~in_features ~out_features ~weights input =
  (match input.shape with
  | Shape.Vector { features } when features = in_features -> ()
  | _ -> invalid_arg "Tensor.linear: input mismatch");
  if Array.length weights <> in_features * out_features then
    invalid_arg "Tensor.linear: weight size mismatch";
  {
    shape = Shape.vector out_features;
    data = Im2col.linear ~weights ~input:input.data ~in_features ~out_features;
  }

let pool ~reduce ~init ~finish ~kernel ~stride ~padding input =
  let channels, height, width = dims input in
  let oh = out_dim ~size:height ~kernel ~stride ~padding in
  let ow = out_dim ~size:width ~kernel ~stride ~padding in
  let out = Array.make (channels * oh * ow) 0. in
  for c = 0 to channels - 1 do
    for y = 0 to oh - 1 do
      for x = 0 to ow - 1 do
        let acc = ref init in
        for ky = 0 to kernel - 1 do
          for kx = 0 to kernel - 1 do
            let h = (y * stride) + ky - padding in
            let w = (x * stride) + kx - padding in
            acc := reduce !acc (at_padded input ~height ~width ~c ~h ~w)
          done
        done;
        out.((c * oh * ow) + (y * ow) + x) <- finish !acc
      done
    done
  done;
  { shape = Shape.feature_map ~channels ~height:oh ~width:ow; data = out }

let max_pool ~kernel ~stride ~padding input =
  pool ~reduce:max ~init:neg_infinity ~finish:(fun x -> x) ~kernel ~stride ~padding input

let avg_pool ~kernel ~stride ~padding input =
  let n = float_of_int (kernel * kernel) in
  pool ~reduce:( +. ) ~init:0. ~finish:(fun x -> x /. n) ~kernel ~stride ~padding input

let global_avg_pool input =
  let channels, height, width = dims input in
  let n = float_of_int (height * width) in
  let out = Array.make channels 0. in
  for c = 0 to channels - 1 do
    let acc = ref 0. in
    for h = 0 to height - 1 do
      for w = 0 to width - 1 do
        acc := !acc +. get_chw input ~c ~h ~w
      done
    done;
    out.(c) <- !acc /. n
  done;
  { shape = Shape.vector channels; data = out }

let relu t = { t with data = Array.map (fun x -> max 0. x) t.data }

let add a b =
  if a.shape <> b.shape then invalid_arg "Tensor.add: shape mismatch";
  { a with data = Array.mapi (fun i x -> x +. b.data.(i)) a.data }

let concat = function
  | [] -> invalid_arg "Tensor.concat: empty"
  | first :: _ as tensors ->
    let _, height, width = dims first in
    let channels =
      List.fold_left
        (fun acc t ->
          let c, h, w = dims t in
          if h <> height || w <> width then invalid_arg "Tensor.concat: spatial mismatch";
          acc + c)
        0 tensors
    in
    let data = Array.concat (List.map (fun t -> t.data) tensors) in
    { shape = Shape.feature_map ~channels ~height ~width; data }

let flatten t = { shape = Shape.vector (Array.length t.data); data = t.data }

let pp_stats ppf t =
  let lo = Array.fold_left min infinity t.data in
  let hi = Array.fold_left max neg_infinity t.data in
  let mean = Array.fold_left ( +. ) 0. t.data /. float_of_int (Array.length t.data) in
  Format.fprintf ppf "%s [%g, %g] mean %g" (Shape.to_string t.shape) lo hi mean
