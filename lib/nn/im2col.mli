(** Im2col lowering of convolutions to cache-blocked GEMM over flat
    float arrays — the fast inference engine behind
    [Tensor.conv2d_gemm]/[linear_gemm].

    The contract that makes this usable under COMPASS's bit-for-bit
    equivalence proofs: every output element is produced by {e exactly
    the same sequence of float operations} as the naive reference
    kernels in [Tensor].  Patch rows are laid out in the naive
    accumulation order (group-local input channel, then kernel row,
    then kernel column, with zero-padding positions stored as literal
    [0.]), the inner dot product walks that order sequentially with the
    same operand order ([patch *. weight] for convolutions,
    [weight *. input] for linear layers), and blocking is applied only
    across output channels and output pixels — never across the
    reduction dimension.  The speedup comes from hoisted bounds checks
    ([Array.blit]/[Array.fill] packing, [unsafe_get] inner loops),
    cache-resident patch tiles, and four independent accumulation
    chains per weight-row pass.

    When [Metrics] is enabled the engine records [infer.gemm_ns]
    (nanoseconds inside GEMM inner loops) and [infer.im2col_bytes]
    (bytes of patch matrix packed); disabled, instrumentation costs a
    single atomic load per call. *)

type scratch
(** A reusable patch buffer.  Not thread-safe: use one scratch per
    domain (e.g. via [Pool.map_local]). *)

val create_scratch : unit -> scratch
(** An empty scratch; grown on first use, never shrunk. *)

val out_dim : size:int -> kernel:int -> stride:int -> padding:int -> int
(** Output spatial extent, [(size + 2*padding - kernel) / stride + 1]. *)

val conv :
  ?scratch:scratch ->
  Layer.conv ->
  weights:float array ->
  input:float array ->
  height:int ->
  width:int ->
  float array * int * int
(** [conv c ~weights ~input ~height ~width] lowers the grouped /
    strided / padded convolution to per-group im2col + GEMM and returns
    [(output, out_height, out_width)] in the naive kernel's CHW layout.
    [input] is one sample, channel-major; [weights] is
    [out_c * (in_c/groups) * kh * kw].  Bit-identical to
    [Tensor.conv2d].  Raises [Invalid_argument] on size mismatches. *)

val linear :
  weights:float array ->
  input:float array ->
  in_features:int ->
  out_features:int ->
  float array
(** Dense layer over a flat vector, bit-identical to [Tensor.linear].
    Raises [Invalid_argument] on size mismatches. *)
