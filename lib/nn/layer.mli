(** Layer operators of the model IR.

    Only [Conv] and [Linear] carry weights and are mapped onto crossbar
    arrays; the remaining operators execute on a core's vector functional
    units and are attached to their producing Conv/Linear partition by the
    compiler (paper Sec. III-B2). *)

type conv = {
  in_channels : int;
  out_channels : int;
  kernel_h : int;
  kernel_w : int;
  stride : int;
  padding : int;
  groups : int;
      (** Grouped convolution: input and output channels split into
          [groups] independent blocks; [groups = in_channels] is a
          depthwise convolution (MobileNets). *)
}

type pool_kind =
  | Max
  | Avg

type op =
  | Input of Shape.t  (** Model entry; carries the sample shape. *)
  | Conv of conv
  | Linear of {
      in_features : int;
      out_features : int;
    }
  | Pool of {
      kind : pool_kind;
      kernel : int;
      stride : int;
      padding : int;
    }
  | Global_avg_pool
  | Batch_norm
  | Relu
  | Add  (** Element-wise sum of exactly two equal-shape inputs. *)
  | Concat  (** Channel concatenation of feature maps with equal spatial size. *)
  | Flatten
  | Dropout  (** Inference no-op kept for model fidelity. *)

type t = {
  id : int;
  name : string;
  op : op;
}

val conv :
  ?stride:int ->
  ?padding:int ->
  ?groups:int ->
  in_channels:int ->
  out_channels:int ->
  int ->
  op
(** [conv ~in_channels ~out_channels k] is a square [k] x [k] convolution;
    [stride] defaults to 1, [padding] to [k/2] ("same" for odd kernels) and
    [groups] to 1.  Raises [Invalid_argument] unless both channel counts
    divide by [groups]. *)

val conv_rect :
  ?stride:int ->
  ?padding:int ->
  ?groups:int ->
  in_channels:int ->
  out_channels:int ->
  kernel_h:int ->
  kernel_w:int ->
  unit ->
  op
(** Rectangular-kernel convolution ([kernel_h] x [kernel_w] need not be
    equal); [stride] defaults to 1, [padding] to 0 and [groups] to 1.
    Raises [Invalid_argument] on bad geometry. *)

val depthwise : ?stride:int -> ?padding:int -> channels:int -> int -> op
(** [depthwise ~channels k] is [conv ~groups:channels ~in_channels:channels
    ~out_channels:channels k]. *)

val linear : in_features:int -> out_features:int -> op

val max_pool : ?padding:int -> kernel:int -> stride:int -> unit -> op

val avg_pool : ?padding:int -> kernel:int -> stride:int -> unit -> op

val is_weighted : op -> bool
(** True for [Conv] and [Linear] — the crossbar-mapped operators. *)

val weight_params : op -> int
(** Number of weight scalars (0 for non-weighted operators).  Biases are
    excluded, matching the paper's Table II accounting. *)

val weight_rows : op -> int
(** Crossbar row demand of the flattened weight matrix:
    [in_channels/groups * kernel_h * kernel_w] for convolutions (each
    output channel reads only its group), [in_features] for linear layers;
    0 otherwise. *)

val weight_cols : op -> int
(** Crossbar (logical) column demand: [out_channels] or [out_features];
    0 for non-weighted operators. *)

val output_shape : op -> Shape.t list -> Shape.t
(** [output_shape op inputs] infers the output shape from the operator and
    its ordered input shapes.  Raises [Invalid_argument] when arity or
    dimensions are inconsistent (e.g. [Add] of different shapes, [Conv] on a
    vector, channel mismatch). *)

val mvms_per_sample : op -> Shape.t list -> int
(** Number of matrix-vector multiplications one sample requires: one per
    output pixel for [Conv], one for [Linear], 0 otherwise. *)

val vector_ops_per_sample : op -> Shape.t list -> int
(** Element-operation count executed on the VFUs (activation functions,
    pooling reductions, element-wise sums...). *)

val op_kind : op -> string
(** Short operator name for reports ("conv", "linear", "pool", ...). *)

val pp : Format.formatter -> t -> unit
