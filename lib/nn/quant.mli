(** Uniform symmetric quantization (the paper's 4-bit weight/activation
    assumption, Sec. IV-A2).

    Crossbar cells store low-precision weights; this module provides the
    fake-quantization used to study what 4-bit deployment does to a
    network's outputs, and the storage accounting the capacity model relies
    on. *)

type spec = {
  bits : int;
  scale : float;  (** Real value = scale * integer code. *)
}

val levels : int -> int
(** [levels bits] is the largest representable code magnitude,
    [2^(bits-1) - 1]; codes span [[-levels, levels]]. *)

val quantize : bits:int -> float array -> float array * spec
(** [quantize ~bits data] returns the fake-quantized array (values snapped
    to the [2^bits - 1]-level symmetric grid covering [max |x|]) and the
    spec.  All-zero input gets scale 1.  Raises [Invalid_argument] for
    [bits < 2]. *)

val quantize_weights : bits:int -> Executor.weights -> Executor.weights
(** Quantize every weight array (fresh table). *)

val max_error : original:float array -> quantized:float array -> float
(** Largest element-wise quantization error. *)

val mean_squared_error : original:float array -> quantized:float array -> float

val codes : spec -> float array -> int array
(** Integer codes of already-quantized values, each in
    [[-(2^(bits-1) - 1), 2^(bits-1) - 1]]. *)

val dequantize : spec -> int array -> float array
(** [dequantize spec codes] maps integer codes back to real values,
    [scale * code] — the exact inverse of {!codes} on already-quantized
    data.  The recovery path uses this to rebuild executable weights
    from stored cell codes. *)

val storage_bits : bits:int -> int -> int
(** Bits to store [n] values at the given precision. *)
