exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun msg -> raise (Parse_error (line, msg))) fmt

(* 1-based column of [token]'s first occurrence in the source line; 0 when
   the token was synthesized and does not literally appear. *)
let column_of text token =
  let tlen = String.length token and len = String.length text in
  let rec scan i =
    if tlen = 0 || i + tlen > len then 0
    else if String.sub text i tlen = token then i + 1
    else scan (i + 1)
  in
  scan 0

(* Located diagnostic naming the offending token, with its column when it
   can be found in the source line. *)
let fail_tok line src token fmt =
  Printf.ksprintf
    (fun msg ->
      match column_of src token with
      | 0 -> raise (Parse_error (line, msg))
      | col -> raise (Parse_error (line, Printf.sprintf "column %d: %s" col msg)))
    fmt

(* --- lexical helpers --- *)

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

(* "key=value" attribute lists. *)
let parse_attrs line src words =
  List.map
    (fun w ->
      match String.index_opt w '=' with
      | Some i ->
        (String.sub w 0 i, String.sub w (i + 1) (String.length w - i - 1))
      | None -> fail_tok line src w "expected key=value, got %S" w)
    words

let int_attr line src attrs key =
  match List.assoc_opt key attrs with
  | Some v -> (
    match int_of_string_opt v with
    | Some n -> Some n
    | None -> fail_tok line src v "attribute %s: %S is not an integer" key v)
  | None -> None

let require_int line src attrs key =
  match int_attr line src attrs key with
  | Some n -> n
  | None -> fail line "missing attribute %s" key

let known_attrs line src attrs allowed =
  List.iter
    (fun (k, _) ->
      if not (List.mem k allowed) then fail_tok line src k "unknown attribute %s" k)
    attrs

let parse_shape line src s =
  let segments = String.split_on_char 'x' s in
  let dims = List.filter_map int_of_string_opt segments in
  if List.length dims <> List.length segments then
    fail_tok line src s "bad shape %S (expected CxHxW or N)" s;
  match dims with
  | [ c; h; w ] -> (
    try Shape.feature_map ~channels:c ~height:h ~width:w
    with Invalid_argument msg -> fail_tok line src s "bad shape %S: %s" s msg)
  | [ n ] -> (
    try Shape.vector n
    with Invalid_argument msg -> fail_tok line src s "bad shape %S: %s" s msg)
  | _ -> fail_tok line src s "bad shape %S (expected CxHxW or N)" s

(* --- statement parsing --- *)

type statement = {
  line : int;
  src : string;  (** The statement's source text, for column diagnostics. *)
  op_name : string;
  node_name : string;
  producers : string list;
  attrs : (string * string) list;
}

(* "<op> <name> [from p1 p2 ...] [k=v ...]" *)
let parse_statement line text =
  match split_words text with
  | [] -> None
  | op_name :: rest ->
    let node_name, rest =
      match rest with
      | name :: rest -> (name, rest)
      | [] -> fail line "operator %s needs a name" op_name
    in
    if op_name = "input" then
      (* shapes like 1x28x28 are not key=value attributes *)
      Some { line; src = text; op_name; node_name; producers = rest; attrs = [] }
    else
    let producers, attr_words =
      match rest with
      | "from" :: rest ->
        let rec take acc = function
          | w :: more when not (String.contains w '=') -> take (w :: acc) more
          | more -> (List.rev acc, more)
        in
        take [] rest
      | rest -> ([], rest)
    in
    Some
      {
        line;
        src = text;
        op_name;
        node_name;
        producers;
        attrs = parse_attrs line text attr_words;
      }

let channels_of line g node =
  match Graph.shape_of g node with
  | Shape.Feature_map { channels; _ } -> channels
  | Shape.Vector _ -> fail line "producer is a vector, expected a feature map"

let features_of line g node =
  match Graph.shape_of g node with
  | Shape.Vector { features } -> features
  | Shape.Feature_map _ -> fail line "producer is a feature map, expected a vector"

let build_op st g inputs =
  let line = st.line in
  let src = st.src in
  (* Layer smart constructors validate their arguments with
     [Invalid_argument]; every call funnels through here so the complaint
     comes out located. *)
  let locate make = try make () with Invalid_argument msg -> fail line "%s" msg in
  let one () =
    match inputs with
    | [ p ] -> p
    | _ -> fail line "%s expects exactly one producer" st.op_name
  in
  let pool () =
    known_attrs line src st.attrs [ "kernel"; "stride"; "pad" ];
    let kernel = require_int line src st.attrs "kernel" in
    let stride = Option.value ~default:kernel (int_attr line src st.attrs "stride") in
    let padding = Option.value ~default:0 (int_attr line src st.attrs "pad") in
    ignore (one ());
    (kernel, stride, padding)
  in
  match st.op_name with
  | "input" -> fail line "input handled separately"
  | "conv" ->
    known_attrs line src st.attrs [ "out"; "kernel"; "stride"; "pad"; "groups" ];
    let out_channels = require_int line src st.attrs "out" in
    let kernel = require_int line src st.attrs "kernel" in
    let stride = Option.value ~default:1 (int_attr line src st.attrs "stride") in
    let padding = Option.value ~default:(kernel / 2) (int_attr line src st.attrs "pad") in
    let groups = Option.value ~default:1 (int_attr line src st.attrs "groups") in
    let in_channels = channels_of line g (one ()) in
    locate (fun () ->
        Layer.conv ~stride ~padding ~groups ~in_channels ~out_channels kernel)
  | "depthwise" ->
    known_attrs line src st.attrs [ "kernel"; "stride"; "pad" ];
    let kernel = require_int line src st.attrs "kernel" in
    let stride = Option.value ~default:1 (int_attr line src st.attrs "stride") in
    let padding = Option.value ~default:(kernel / 2) (int_attr line src st.attrs "pad") in
    let channels = channels_of line g (one ()) in
    locate (fun () -> Layer.depthwise ~stride ~padding ~channels kernel)
  | "linear" ->
    known_attrs line src st.attrs [ "out" ];
    let out_features = require_int line src st.attrs "out" in
    let in_features = features_of line g (one ()) in
    locate (fun () -> Layer.linear ~in_features ~out_features)
  | "maxpool" ->
    let kernel, stride, padding = pool () in
    locate (fun () -> Layer.max_pool ~padding ~kernel ~stride ())
  | "avgpool" ->
    let kernel, stride, padding = pool () in
    locate (fun () -> Layer.avg_pool ~padding ~kernel ~stride ())
  | "relu" ->
    ignore (one ());
    Layer.Relu
  | "bn" ->
    ignore (one ());
    Layer.Batch_norm
  | "dropout" ->
    ignore (one ());
    Layer.Dropout
  | "flatten" ->
    ignore (one ());
    Layer.Flatten
  | "gap" ->
    ignore (one ());
    Layer.Global_avg_pool
  | "add" ->
    if List.length inputs <> 2 then fail line "add expects two producers";
    Layer.Add
  | "concat" ->
    if List.length inputs < 2 then fail line "concat expects at least two producers";
    Layer.Concat
  | other -> fail_tok line src other "unknown operator %s" other

let parse text =
  let lines = String.split_on_char '\n' text in
  let g = ref None in
  let names : (string, Graph.node) Hashtbl.t = Hashtbl.create 32 in
  let graph line =
    match !g with
    | Some graph -> graph
    | None ->
      let graph = Graph.create () in
      ignore line;
      g := Some graph;
      graph
  in
  let handle lineno raw =
    let text = String.trim (strip_comment raw) in
    if text <> "" then
      match parse_statement lineno text with
      | None -> ()
      | Some st when st.op_name = "model" ->
        if !g <> None then fail lineno "model declaration must come first";
        g := Some (Graph.create ~name:st.node_name ())
      | Some st ->
        let graph = graph lineno in
        if Hashtbl.mem names st.node_name then
          fail_tok lineno st.src st.node_name "duplicate node name %s" st.node_name;
        let node =
          if st.op_name = "input" then begin
            match st.producers with
            | [ shape ] -> (
              let input = Layer.Input (parse_shape lineno st.src shape) in
              try Graph.add graph st.node_name input
              with Invalid_argument msg -> fail lineno "%s" msg)
            | _ -> fail lineno "input needs exactly one shape"
          end
          else begin
            let inputs =
              List.map
                (fun p ->
                  match Hashtbl.find_opt names p with
                  | Some n -> n
                  | None -> fail_tok lineno st.src p "unknown producer %s" p)
                st.producers
            in
            let op = build_op st graph inputs in
            try Graph.add graph ~inputs st.node_name op
            with Invalid_argument msg -> fail lineno "%s" msg
          end
        in
        Hashtbl.add names st.node_name node
  in
  List.iteri (fun i raw -> handle (i + 1) raw) lines;
  match !g with
  | None -> raise (Parse_error (0, "empty description"))
  | Some graph -> (
    match Graph.validate graph with
    | Ok () -> graph
    | Error msg -> raise (Parse_error (0, "invalid model: " ^ msg)))

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

(* --- printing --- *)

let shape_token = function
  | Shape.Feature_map { channels; height; width } ->
    Printf.sprintf "%dx%dx%d" channels height width
  | Shape.Vector { features } -> string_of_int features

let op_line g node =
  let l = Graph.layer g node in
  let name = l.Layer.name in
  let from =
    match Graph.preds g node with
    | [] -> ""
    | ps -> " from " ^ String.concat " " (List.map (fun p -> (Graph.layer g p).Layer.name) ps)
  in
  match l.Layer.op with
  | Layer.Input shape -> Printf.sprintf "input %s %s" name (shape_token shape)
  | Layer.Conv { out_channels; kernel_h; stride; padding; groups; _ } ->
    Printf.sprintf "conv %s%s out=%d kernel=%d stride=%d pad=%d groups=%d" name from
      out_channels kernel_h stride padding groups
  | Layer.Linear { out_features; _ } ->
    Printf.sprintf "linear %s%s out=%d" name from out_features
  | Layer.Pool { kind; kernel; stride; padding } ->
    Printf.sprintf "%s %s%s kernel=%d stride=%d pad=%d"
      (match kind with Layer.Max -> "maxpool" | Layer.Avg -> "avgpool")
      name from kernel stride padding
  | Layer.Global_avg_pool -> Printf.sprintf "gap %s%s" name from
  | Layer.Batch_norm -> Printf.sprintf "bn %s%s" name from
  | Layer.Relu -> Printf.sprintf "relu %s%s" name from
  | Layer.Add -> Printf.sprintf "add %s%s" name from
  | Layer.Concat -> Printf.sprintf "concat %s%s" name from
  | Layer.Flatten -> Printf.sprintf "flatten %s%s" name from
  | Layer.Dropout -> Printf.sprintf "dropout %s%s" name from

let to_string g =
  let header = Printf.sprintf "model %s" (Graph.name g) in
  String.concat "\n" (header :: List.map (op_line g) (Graph.nodes g)) ^ "\n"
