(* Reusable patch buffer: grown on demand, never shrunk.  The packers
   overwrite every element they use, so stale contents are harmless. *)
type scratch = { mutable buf : float array }

let create_scratch () = { buf = [||] }

let ensure scratch n =
  if Array.length scratch.buf < n then scratch.buf <- Array.make n 0.;
  scratch.buf

let out_dim ~size ~kernel ~stride ~padding = ((size + (2 * padding) - kernel) / stride) + 1

(* Tile the patch rows so one tile (tile * k floats) stays L2-resident
   while every output channel of the group streams over it. *)
let cache_block_bytes = 131072

let tile_for ~k = max 8 (cache_block_bytes / (8 * k))

(* Sequential dot product, [a.(ai+i) *. b.(bi+i)] accumulated in index
   order — the exact operation sequence of the naive kernels, which is
   what makes the lowered results bit-identical. *)
let dot a ai b bi k =
  let acc = ref 0. in
  for i = 0 to k - 1 do
    acc := !acc +. (Array.unsafe_get a (ai + i) *. Array.unsafe_get b (bi + i))
  done;
  !acc

(* Pack the patches of one convolution group: row [(y*ow)+x] holds the
   receptive field of output pixel (y, x), laid out (group-local input
   channel, ky, kx) — the naive kernel's accumulation order — with
   out-of-bounds (padding) positions stored as literal 0.  Bounds are
   resolved per kernel row, so each row is a zero head + one contiguous
   [Array.blit] + a zero tail instead of per-element checks. *)
let pack_group (conv : Layer.conv) ~input ~height ~width ~group ~buf ~oh ~ow =
  let { Layer.in_channels; kernel_h; kernel_w; stride; padding; groups; _ } = conv in
  let group_in = in_channels / groups in
  let idx = ref 0 in
  for y = 0 to oh - 1 do
    let ih0 = (y * stride) - padding in
    for x = 0 to ow - 1 do
      let iw0 = (x * stride) - padding in
      for gi = 0 to group_in - 1 do
        let cbase = ((group * group_in) + gi) * height * width in
        for ky = 0 to kernel_h - 1 do
          let ih = ih0 + ky in
          if ih < 0 || ih >= height then Array.fill buf !idx kernel_w 0.
          else begin
            let lo = max 0 (-iw0) in
            let hi = min kernel_w (width - iw0) in
            if hi <= lo then Array.fill buf !idx kernel_w 0.
            else begin
              if lo > 0 then Array.fill buf !idx lo 0.;
              Array.blit input (cbase + (ih * width) + iw0 + lo) buf (!idx + lo) (hi - lo);
              if hi < kernel_w then Array.fill buf (!idx + hi) (kernel_w - hi) 0.
            end
          end;
          idx := !idx + kernel_w
        done
      done
    done
  done

(* One group's GEMM: out rows [oc_base, oc_base + group_out) over the
   packed patch matrix.  Four output pixels are accumulated concurrently
   (independent chains — each is still the sequential sum in original
   order, so per-element results are unchanged), sharing each weight
   load. *)
let gemm_group ~buf ~weights ~out ~k ~p ~group_out ~oc_base ~tile =
  let t0 = ref 0 in
  while !t0 < p do
    let t1 = min p (!t0 + tile) in
    for j = 0 to group_out - 1 do
      let oc = oc_base + j in
      let wo = oc * k in
      let ob = oc * p in
      let pi = ref !t0 in
      while !pi + 3 < t1 do
        let q = !pi in
        let r0 = q * k and r1 = (q + 1) * k and r2 = (q + 2) * k and r3 = (q + 3) * k in
        let a0 = ref 0. and a1 = ref 0. and a2 = ref 0. and a3 = ref 0. in
        for i = 0 to k - 1 do
          let w = Array.unsafe_get weights (wo + i) in
          a0 := !a0 +. (Array.unsafe_get buf (r0 + i) *. w);
          a1 := !a1 +. (Array.unsafe_get buf (r1 + i) *. w);
          a2 := !a2 +. (Array.unsafe_get buf (r2 + i) *. w);
          a3 := !a3 +. (Array.unsafe_get buf (r3 + i) *. w)
        done;
        Array.unsafe_set out (ob + q) !a0;
        Array.unsafe_set out (ob + q + 1) !a1;
        Array.unsafe_set out (ob + q + 2) !a2;
        Array.unsafe_set out (ob + q + 3) !a3;
        pi := q + 4
      done;
      while !pi < t1 do
        Array.unsafe_set out (ob + !pi) (dot buf (!pi * k) weights wo k);
        incr pi
      done
    done;
    t0 := t1
  done

let now () = Unix.gettimeofday ()

let record_gemm_ns seconds =
  Compass_util.Metrics.incr "infer.gemm_ns" ~by:(int_of_float (seconds *. 1e9))

let conv ?scratch (conv : Layer.conv) ~weights ~input ~height ~width =
  let { Layer.in_channels; out_channels; kernel_h; kernel_w; stride; padding; groups } =
    conv
  in
  let group_in = in_channels / groups in
  let group_out = out_channels / groups in
  if Array.length weights <> out_channels * group_in * kernel_h * kernel_w then
    invalid_arg "Im2col.conv: weight size mismatch";
  if Array.length input <> in_channels * height * width then
    invalid_arg "Im2col.conv: input size mismatch";
  let k = group_in * kernel_h * kernel_w in
  let oh = out_dim ~size:height ~kernel:kernel_h ~stride ~padding in
  let ow = out_dim ~size:width ~kernel:kernel_w ~stride ~padding in
  let p = oh * ow in
  let buf =
    match scratch with
    | Some s -> ensure s (p * k)
    | None -> Array.make (p * k) 0.
  in
  let out = Array.make (out_channels * p) 0. in
  let tile = tile_for ~k in
  let metrics_on = Compass_util.Metrics.enabled () in
  let gemm_s = ref 0. in
  for g = 0 to groups - 1 do
    pack_group conv ~input ~height ~width ~group:g ~buf ~oh ~ow;
    let t0 = if metrics_on then now () else 0. in
    gemm_group ~buf ~weights ~out ~k ~p ~group_out ~oc_base:(g * group_out) ~tile;
    if metrics_on then gemm_s := !gemm_s +. (now () -. t0)
  done;
  if metrics_on then begin
    Compass_util.Metrics.incr "infer.im2col_bytes" ~by:(8 * groups * p * k);
    record_gemm_ns !gemm_s
  end;
  (out, oh, ow)

(* Linear layers need no packing: the input vector already is the patch.
   Four output features are accumulated concurrently, sharing each input
   load; the naive operand order (weight *. input) is preserved. *)
let linear ~weights ~input ~in_features:k ~out_features:n =
  if Array.length weights <> k * n then invalid_arg "Im2col.linear: weight size mismatch";
  if Array.length input <> k then invalid_arg "Im2col.linear: input size mismatch";
  let metrics_on = Compass_util.Metrics.enabled () in
  let t0 = if metrics_on then now () else 0. in
  let out = Array.make n 0. in
  let o = ref 0 in
  while !o + 3 < n do
    let q = !o in
    let w0 = q * k and w1 = (q + 1) * k and w2 = (q + 2) * k and w3 = (q + 3) * k in
    let a0 = ref 0. and a1 = ref 0. and a2 = ref 0. and a3 = ref 0. in
    for i = 0 to k - 1 do
      let x = Array.unsafe_get input i in
      a0 := !a0 +. (Array.unsafe_get weights (w0 + i) *. x);
      a1 := !a1 +. (Array.unsafe_get weights (w1 + i) *. x);
      a2 := !a2 +. (Array.unsafe_get weights (w2 + i) *. x);
      a3 := !a3 +. (Array.unsafe_get weights (w3 + i) *. x)
    done;
    Array.unsafe_set out q !a0;
    Array.unsafe_set out (q + 1) !a1;
    Array.unsafe_set out (q + 2) !a2;
    Array.unsafe_set out (q + 3) !a3;
    o := q + 4
  done;
  while !o < n do
    Array.unsafe_set out !o (dot weights (!o * k) input 0 k);
    incr o
  done;
  if metrics_on then record_gemm_ns (now () -. t0);
  out
