(** Reference (functional) execution of model graphs.

    Runs a graph on actual tensors with the operators in [Tensor] — the
    oracle against which compiled, partitioned execution is validated
    ([Compass_core.Partition_exec]).  Batch normalization and dropout are
    inference-mode identities (folded scales are part of the conv weights
    in deployed PIM networks).

    Two interchangeable kernel engines drive the weighted operators:
    the naive nested-loop reference ([Naive]) and the im2col/GEMM
    lowering ([Gemm], the default) — bit-identical by construction and
    pinned so by a QCheck differential suite, so every equivalence
    proof downstream is engine-independent.  Per-layer [Trace] spans
    ([infer.layer]) and the [infer.gemm_ns]/[infer.im2col_bytes]
    counters cover both single-sample and batched execution. *)

type weights = (Graph.node, float array) Hashtbl.t
(** One weight array per Conv/Linear node, in [Tensor]'s layouts. *)

type engine =
  | Naive  (** Scalar nested loops — the oracle. *)
  | Gemm  (** Im2col + cache-blocked GEMM — bit-identical, much faster. *)

exception Cancelled
(** Raised by {!run}/{!run_batch} (and the [output] wrappers) when the
    [?budget] token expires: the traversal checks the deadline at every
    layer boundary, so a timed-out inference is abandoned between layers
    rather than mid-kernel or not at all.  The serving runtime maps this
    to a [timeout] response envelope. *)

val engine_of_string : string -> engine option
(** ["naive"] / ["gemm"]. *)

val engine_to_string : engine -> string

val random_weights : ?seed:int -> ?scale:float -> Graph.t -> weights
(** Deterministic pseudo-random weights in [[-scale, scale]] (default
    scale 0.1) for every weighted node. *)

val random_input : ?seed:int -> Graph.t -> Tensor.t
(** A deterministic random tensor matching the graph's [Input] shape.
    Raises [Invalid_argument] on graphs without exactly one input. *)

val run :
  ?engine:engine ->
  ?budget:Compass_util.Budget.t ->
  Graph.t ->
  weights ->
  Tensor.t ->
  (Graph.node -> Tensor.t)
(** [run g weights input] executes the whole graph and returns a lookup of
    every node's output tensor.  Raises [Invalid_argument] on missing
    weights or shape violations (the latter cannot happen for validated
    graphs).  [?budget] is polled at every layer boundary; expiry raises
    {!Cancelled}. *)

val output : ?engine:engine -> ?budget:Compass_util.Budget.t -> Graph.t -> weights -> Tensor.t -> Tensor.t
(** The unique exit node's tensor.  Raises [Invalid_argument] when the
    graph has several exits, {!Cancelled} on budget expiry. *)

val run_batch :
  ?engine:engine ->
  ?budget:Compass_util.Budget.t ->
  ?pool:Compass_util.Pool.t ->
  ?supervision:Compass_util.Pool.supervision ->
  Graph.t ->
  weights ->
  Tensor.t array ->
  (Graph.node -> Tensor.t array)
(** [run_batch g weights inputs] evaluates every sample of the batch in
    one traversal of the graph — each layer runs over all N inputs
    before the next layer starts, amortizing weight-array traffic.
    With [pool], the batch is fanned across the pool's domains
    (per-domain im2col scratch, order-preserving map), and results are
    bit-identical for any worker count; sample [i]'s outputs never
    depend on the rest of the batch.  [?supervision] forwards the
    worker-recovery policy to the pool (evaluation is pure, so a
    supervised retry reproduces the sample bit-identically); failpoint
    site [executor.batch] marks each batch entry.  Raises
    [Invalid_argument] on an empty batch or shape mismatches. *)

val output_batch :
  ?engine:engine ->
  ?budget:Compass_util.Budget.t ->
  ?pool:Compass_util.Pool.t ->
  ?supervision:Compass_util.Pool.supervision ->
  Graph.t ->
  weights ->
  Tensor.t array ->
  Tensor.t array
(** The unique exit node's tensors, one per batch sample.  Raises
    [Invalid_argument] when the graph has several exits, {!Cancelled} on
    budget expiry (checked between layers — a whole-batch layer either
    completes for every sample or has not started). *)

val apply_node :
  ?engine:engine ->
  ?scratch:Im2col.scratch ->
  Graph.t ->
  weights ->
  Graph.node ->
  Tensor.t list ->
  Tensor.t
(** Execute a single node given its ordered input tensors — the primitive
    shared with the partitioned executor.  Weighted nodes validate their
    weight array size and raise one located diagnostic naming the node
    id, layer kind and geometry, and the expected-vs-actual element
    counts.  [scratch] reuses an im2col patch buffer across calls (one
    per domain). *)
