type weights = (Graph.node, float array) Hashtbl.t

type engine =
  | Naive
  | Gemm

let engine_of_string = function
  | "naive" -> Some Naive
  | "gemm" -> Some Gemm
  | _ -> None

let engine_to_string = function
  | Naive -> "naive"
  | Gemm -> "gemm"

exception Cancelled

let () =
  Printexc.register_printer (function
    | Cancelled -> Some "Executor.Cancelled (inference deadline expired)"
    | _ -> None)

(* Deadline poll at layer granularity: cheap enough to run per node, and
   the only cancellation points where every sample of a batch is in a
   consistent not-yet-started state. *)
let check_budget budget =
  match budget with
  | Some b when Compass_util.Budget.expired b -> raise Cancelled
  | Some _ | None -> ()

let random_weights ?(seed = 7) ?(scale = 0.1) g =
  let rng = Compass_util.Rng.create seed in
  let weights = Hashtbl.create 32 in
  List.iter
    (fun node ->
      let n = Layer.weight_params (Graph.layer g node).Layer.op in
      let data =
        Array.init n (fun _ -> Compass_util.Rng.float rng (2. *. scale) -. scale)
      in
      Hashtbl.add weights node data)
    (Graph.weighted_nodes g);
  weights

let random_input ?(seed = 11) g =
  match Graph.entry_nodes g with
  | [ input ] ->
    let rng = Compass_util.Rng.create seed in
    Tensor.create (Graph.shape_of g input) (fun _ -> Compass_util.Rng.float rng 1.)
  | _ -> invalid_arg "Executor.random_input: expected exactly one input"

let weights_of weights node =
  match Hashtbl.find_opt weights node with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "Executor: missing weights for node %d" node)

(* One located diagnostic instead of a bare size mismatch from the
   kernel: which node, which layer, what geometry, both counts. *)
let checked_weights g weights node =
  let layer = Graph.layer g node in
  let data = weights_of weights node in
  let expected = Layer.weight_params layer.Layer.op in
  let actual = Array.length data in
  if actual <> expected then begin
    let geometry =
      match layer.Layer.op with
      | Layer.Conv { in_channels; out_channels; kernel_h; kernel_w; groups; _ } ->
        Printf.sprintf "%d x %d/%d x %dx%d" out_channels in_channels groups kernel_h
          kernel_w
      | Layer.Linear { in_features; out_features } ->
        Printf.sprintf "%d x %d" out_features in_features
      | _ -> "-"
    in
    invalid_arg
      (Printf.sprintf
         "Executor: node %d (%s, %s %s): expected %d weight elements, got %d"
         node layer.Layer.name
         (Layer.op_kind layer.Layer.op)
         geometry expected actual)
  end;
  data

let apply_node ?(engine = Gemm) ?scratch g weights node inputs =
  let one () =
    match inputs with
    | [ t ] -> t
    | _ -> invalid_arg "Executor.apply_node: arity"
  in
  match (Graph.layer g node).Layer.op with
  | Layer.Input _ -> invalid_arg "Executor.apply_node: Input has no computation"
  | Layer.Conv conv -> (
    let w = checked_weights g weights node in
    match engine with
    | Naive -> Tensor.conv2d conv ~weights:w (one ())
    | Gemm -> Tensor.conv2d_gemm ?scratch conv ~weights:w (one ()))
  | Layer.Linear { in_features; out_features } -> (
    let w = checked_weights g weights node in
    match engine with
    | Naive -> Tensor.linear ~in_features ~out_features ~weights:w (one ())
    | Gemm -> Tensor.linear_gemm ~in_features ~out_features ~weights:w (one ()))
  | Layer.Pool { kind = Layer.Max; kernel; stride; padding } ->
    Tensor.max_pool ~kernel ~stride ~padding (one ())
  | Layer.Pool { kind = Layer.Avg; kernel; stride; padding } ->
    Tensor.avg_pool ~kernel ~stride ~padding (one ())
  | Layer.Global_avg_pool -> Tensor.global_avg_pool (one ())
  | Layer.Relu -> Tensor.relu (one ())
  | Layer.Batch_norm | Layer.Dropout -> one ()
  | Layer.Add -> (
    match inputs with
    | [ a; b ] -> Tensor.add a b
    | _ -> invalid_arg "Executor.apply_node: Add arity")
  | Layer.Concat -> Tensor.concat inputs
  | Layer.Flatten -> Tensor.flatten (one ())

let layer_span_args g node =
  [
    ("node", string_of_int node);
    ("kind", Layer.op_kind (Graph.layer g node).Layer.op);
  ]

let run ?engine ?budget g weights input =
  let outputs : (Graph.node, Tensor.t) Hashtbl.t = Hashtbl.create 64 in
  let scratch = Im2col.create_scratch () in
  List.iter
    (fun node ->
      check_budget budget;
      let result =
        match (Graph.layer g node).Layer.op with
        | Layer.Input shape ->
          if not (Shape.equal shape (Tensor.shape input)) then
            invalid_arg "Executor.run: input shape mismatch";
          input
        | _ ->
          let inputs = List.map (Hashtbl.find outputs) (Graph.preds g node) in
          Compass_util.Trace.with_span "infer.layer" ~args:(layer_span_args g node)
            (fun () -> apply_node ?engine ~scratch g weights node inputs)
      in
      Hashtbl.add outputs node result)
    (Graph.topo_order g);
  fun node ->
    match Hashtbl.find_opt outputs node with
    | Some t -> t
    | None -> invalid_arg "Executor.run: unknown node"

let output ?engine ?budget g weights input =
  match Graph.exit_nodes g with
  | [ exit ] -> run ?engine ?budget g weights input exit
  | _ -> invalid_arg "Executor.output: expected exactly one exit"

(* Batched traversal: one walk of the graph evaluates every sample at
   each layer, optionally fanning the batch across pool domains.
   [Pool.map]/[map_local] preserve input order, so results are
   deterministic for any worker count; the engine draws no randomness. *)
let run_batch ?(engine = Gemm) ?budget ?pool ?supervision g weights inputs =
  let n = Array.length inputs in
  if n = 0 then invalid_arg "Executor.run_batch: empty batch";
  Compass_util.Failpoint.guard "executor.batch";
  let parallel =
    match pool with
    | Some p when Compass_util.Pool.jobs p > 1 && n > 1 -> Some p
    | _ -> None
  in
  let scratch = Im2col.create_scratch () in
  let outputs : (Graph.node, Tensor.t array) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun node ->
      check_budget budget;
      let results =
        match (Graph.layer g node).Layer.op with
        | Layer.Input shape ->
          Array.iter
            (fun t ->
              if not (Shape.equal shape (Tensor.shape t)) then
                invalid_arg "Executor.run_batch: input shape mismatch")
            inputs;
          inputs
        | _ ->
          let preds = List.map (Hashtbl.find outputs) (Graph.preds g node) in
          let eval scratch i =
            apply_node ~engine ~scratch g weights node
              (List.map (fun outs -> outs.(i)) preds)
          in
          Compass_util.Trace.with_span "infer.layer"
            ~args:(("batch", string_of_int n) :: layer_span_args g node)
            (fun () ->
              match parallel with
              | Some p ->
                Compass_util.Pool.map_local ?supervision p ~init:Im2col.create_scratch
                  ~f:eval (Array.init n Fun.id)
              | None -> Array.init n (eval scratch))
      in
      Hashtbl.add outputs node results)
    (Graph.topo_order g);
  fun node ->
    match Hashtbl.find_opt outputs node with
    | Some t -> t
    | None -> invalid_arg "Executor.run_batch: unknown node"

let output_batch ?engine ?budget ?pool ?supervision g weights inputs =
  match Graph.exit_nodes g with
  | [ exit ] -> run_batch ?engine ?budget ?pool ?supervision g weights inputs exit
  | _ -> invalid_arg "Executor.output_batch: expected exactly one exit"
