type conv = {
  in_channels : int;
  out_channels : int;
  kernel_h : int;
  kernel_w : int;
  stride : int;
  padding : int;
  groups : int;
}

type pool_kind =
  | Max
  | Avg

type op =
  | Input of Shape.t
  | Conv of conv
  | Linear of {
      in_features : int;
      out_features : int;
    }
  | Pool of {
      kind : pool_kind;
      kernel : int;
      stride : int;
      padding : int;
    }
  | Global_avg_pool
  | Batch_norm
  | Relu
  | Add
  | Concat
  | Flatten
  | Dropout

type t = {
  id : int;
  name : string;
  op : op;
}

let conv ?stride ?padding ?(groups = 1) ~in_channels ~out_channels k =
  if in_channels <= 0 || out_channels <= 0 || k <= 0 then
    invalid_arg "Layer.conv: non-positive dimension";
  if groups <= 0 || in_channels mod groups <> 0 || out_channels mod groups <> 0 then
    invalid_arg "Layer.conv: groups must divide both channel counts";
  let stride = Option.value stride ~default:1 in
  let padding = Option.value padding ~default:(k / 2) in
  if stride <= 0 || padding < 0 then invalid_arg "Layer.conv: bad stride/padding";
  Conv { in_channels; out_channels; kernel_h = k; kernel_w = k; stride; padding; groups }

let conv_rect ?(stride = 1) ?(padding = 0) ?(groups = 1) ~in_channels ~out_channels
    ~kernel_h ~kernel_w () =
  if in_channels <= 0 || out_channels <= 0 || kernel_h <= 0 || kernel_w <= 0 then
    invalid_arg "Layer.conv_rect: non-positive dimension";
  if groups <= 0 || in_channels mod groups <> 0 || out_channels mod groups <> 0 then
    invalid_arg "Layer.conv_rect: groups must divide both channel counts";
  if stride <= 0 || padding < 0 then invalid_arg "Layer.conv_rect: bad stride/padding";
  Conv { in_channels; out_channels; kernel_h; kernel_w; stride; padding; groups }

let depthwise ?stride ?padding ~channels k =
  conv ?stride ?padding ~groups:channels ~in_channels:channels ~out_channels:channels k

let linear ~in_features ~out_features =
  if in_features <= 0 || out_features <= 0 then
    invalid_arg "Layer.linear: non-positive dimension";
  Linear { in_features; out_features }

let pool kind ?(padding = 0) ~kernel ~stride () =
  if kernel <= 0 || stride <= 0 || padding < 0 then
    invalid_arg "Layer.pool: bad geometry";
  Pool { kind; kernel; stride; padding }

let max_pool ?padding ~kernel ~stride () = pool Max ?padding ~kernel ~stride ()
let avg_pool ?padding ~kernel ~stride () = pool Avg ?padding ~kernel ~stride ()

let is_weighted = function
  | Conv _ | Linear _ -> true
  | Input _ | Pool _ | Global_avg_pool | Batch_norm | Relu | Add | Concat | Flatten
  | Dropout ->
    false

let weight_rows = function
  | Conv { in_channels; kernel_h; kernel_w; groups; _ } ->
    in_channels / groups * kernel_h * kernel_w
  | Linear { in_features; _ } -> in_features
  | Input _ | Pool _ | Global_avg_pool | Batch_norm | Relu | Add | Concat | Flatten
  | Dropout ->
    0

let weight_cols = function
  | Conv { out_channels; _ } -> out_channels
  | Linear { out_features; _ } -> out_features
  | Input _ | Pool _ | Global_avg_pool | Batch_norm | Relu | Add | Concat | Flatten
  | Dropout ->
    0

let weight_params op = weight_rows op * weight_cols op

let conv_out_dim ~size ~kernel ~stride ~padding =
  ((size + (2 * padding) - kernel) / stride) + 1

let one_input op = function
  | [ s ] -> s
  | inputs ->
    invalid_arg
      (Printf.sprintf "Layer.output_shape: %s expects 1 input, got %d" op
         (List.length inputs))

let output_shape op inputs =
  match op with
  | Input shape ->
    if inputs <> [] then invalid_arg "Layer.output_shape: Input takes no inputs";
    shape
  | Conv { in_channels; out_channels; kernel_h; kernel_w; stride; padding; groups = _ } -> (
    match one_input "Conv" inputs with
    | Shape.Vector _ -> invalid_arg "Layer.output_shape: Conv on a vector"
    | Shape.Feature_map { channels; height; width } ->
      if channels <> in_channels then
        invalid_arg
          (Printf.sprintf "Layer.output_shape: Conv expects %d channels, got %d"
             in_channels channels);
      let oh = conv_out_dim ~size:height ~kernel:kernel_h ~stride ~padding in
      let ow = conv_out_dim ~size:width ~kernel:kernel_w ~stride ~padding in
      Shape.feature_map ~channels:out_channels ~height:oh ~width:ow)
  | Linear { in_features; out_features } -> (
    match one_input "Linear" inputs with
    | Shape.Vector { features } ->
      if features <> in_features then
        invalid_arg
          (Printf.sprintf "Layer.output_shape: Linear expects %d features, got %d"
             in_features features);
      Shape.vector out_features
    | Shape.Feature_map _ ->
      invalid_arg "Layer.output_shape: Linear on a feature map (flatten first)")
  | Pool { kernel; stride; padding; kind = _ } -> (
    match one_input "Pool" inputs with
    | Shape.Vector _ -> invalid_arg "Layer.output_shape: Pool on a vector"
    | Shape.Feature_map { channels; height; width } ->
      let oh = conv_out_dim ~size:height ~kernel ~stride ~padding in
      let ow = conv_out_dim ~size:width ~kernel ~stride ~padding in
      Shape.feature_map ~channels ~height:oh ~width:ow)
  | Global_avg_pool -> (
    match one_input "Global_avg_pool" inputs with
    | Shape.Vector _ -> invalid_arg "Layer.output_shape: Global_avg_pool on a vector"
    | Shape.Feature_map { channels; _ } -> Shape.vector channels)
  | Batch_norm | Relu | Dropout -> one_input "elementwise" inputs
  | Add -> (
    match inputs with
    | [ a; b ] when Shape.equal a b -> a
    | [ _; _ ] -> invalid_arg "Layer.output_shape: Add of different shapes"
    | _ -> invalid_arg "Layer.output_shape: Add expects 2 inputs")
  | Concat -> (
    match inputs with
    | [] -> invalid_arg "Layer.output_shape: Concat expects inputs"
    | first :: _ -> (
      match first with
      | Shape.Vector _ -> invalid_arg "Layer.output_shape: Concat of vectors"
      | Shape.Feature_map { height; width; _ } ->
        let add_channels acc = function
          | Shape.Feature_map { channels; height = h; width = w } ->
            if h <> height || w <> width then
              invalid_arg "Layer.output_shape: Concat spatial mismatch";
            acc + channels
          | Shape.Vector _ -> invalid_arg "Layer.output_shape: Concat of vectors"
        in
        let channels = List.fold_left add_channels 0 inputs in
        Shape.feature_map ~channels ~height ~width))
  | Flatten ->
    let s = one_input "Flatten" inputs in
    Shape.vector (Shape.elements s)

let mvms_per_sample op inputs =
  match op with
  | Conv _ ->
    let out = output_shape op inputs in
    let h, w = Shape.spatial out in
    h * w
  | Linear _ -> 1
  | Input _ | Pool _ | Global_avg_pool | Batch_norm | Relu | Add | Concat | Flatten
  | Dropout ->
    0

let vector_ops_per_sample op inputs =
  match op with
  | Input _ | Dropout | Flatten | Concat -> 0
  | Conv _ | Linear _ | Batch_norm | Relu ->
    (* One element op per output activation: accumulate/scale/activate. *)
    Shape.elements (output_shape op inputs)
  | Add -> Shape.elements (output_shape op inputs)
  | Pool { kernel; _ } ->
    let out = output_shape op inputs in
    Shape.elements out * kernel * kernel
  | Global_avg_pool -> (
    match inputs with
    | [ s ] -> Shape.elements s
    | _ -> invalid_arg "Layer.vector_ops_per_sample: Global_avg_pool arity")

let op_kind = function
  | Input _ -> "input"
  | Conv _ -> "conv"
  | Linear _ -> "linear"
  | Pool { kind = Max; _ } -> "maxpool"
  | Pool { kind = Avg; _ } -> "avgpool"
  | Global_avg_pool -> "gap"
  | Batch_norm -> "bn"
  | Relu -> "relu"
  | Add -> "add"
  | Concat -> "concat"
  | Flatten -> "flatten"
  | Dropout -> "dropout"

let pp ppf t = Format.fprintf ppf "%s#%d(%s)" t.name t.id (op_kind t.op)
