let write_atomic path contents =
  (* The temp file must live in the destination directory: [Unix.rename]
     is only atomic within one filesystem. *)
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc contents;
        flush oc)
  with
  | () -> (
    try Unix.rename tmp path
    with Unix.Unix_error (e, _, _) ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise (Sys_error (Printf.sprintf "%s: rename failed: %s" path (Unix.error_message e))))
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let float_token f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let dec = Printf.sprintf "%.17g" f in
    if float_of_string dec = f then dec else Printf.sprintf "%h" f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))
