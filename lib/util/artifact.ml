(* Crash-consistent artifact writes over raw file descriptors.

   Write-to-temp + fsync + atomic-rename: a crash (or an injected
   failure) at any point leaves either the previous complete artifact or
   the new one under the destination path, never a truncated mix, and
   never a stray temp file.  [EINTR] is retried (bounded); every other
   failure cleans the temp file up best-effort and reports the
   {e original} error — the unlink's own failure is never allowed to
   shadow it. *)

let chunk_bytes = 65536
let max_eintr_retries = 128

(* Write [payload] fully to [fd], in chunks so an injected mid-stream
   failure can interrupt a partially-written file. *)
let write_all ~path ~site fd payload =
  let len = String.length payload in
  let pos = ref 0 in
  let interruptions = ref 0 in
  while !pos < len do
    let k = min chunk_bytes (len - !pos) in
    match
      Failpoint.guard site;
      Unix.write_substring fd payload !pos k
    with
    | written -> pos := !pos + written
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      incr interruptions;
      if !interruptions > max_eintr_retries then
        raise
          (Sys_error
             (Printf.sprintf "%s: write failed: interrupted %d times (EINTR)" path
                max_eintr_retries))
  done

(* Best-effort directory sync so the rename itself is durable; silently
   skipped on filesystems that refuse to fsync directories. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let located path step = function
  | Unix.Unix_error (e, _, _) ->
    Sys_error (Printf.sprintf "%s: %s failed: %s" path step (Unix.error_message e))
  | Sys_error _ as e -> e
  | e -> e  (* Failpoint.Injected and genuine bugs propagate as themselves *)

let write_atomic path contents =
  Failpoint.guard "artifact.write.open";
  (* The temp file must live in the destination directory: [Unix.rename]
     is only atomic within one filesystem. *)
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let step = ref "open" in
  let fd = ref None in
  let close_fd () =
    match !fd with
    | Some d ->
      fd := None;
      (try Unix.close d with Unix.Unix_error _ -> ())
    | None -> ()
  in
  try
    let d =
      Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644
    in
    fd := Some d;
    step := "write";
    let payload = Failpoint.guard_write "artifact.write.mid" contents in
    write_all ~path ~site:"artifact.write.syscall" d payload;
    step := "fsync";
    Failpoint.guard "artifact.write.fsync";
    Unix.fsync d;
    close_fd ();
    step := "rename";
    Failpoint.guard "artifact.write.rename";
    Unix.rename tmp path;
    fsync_dir (Filename.dirname path)
  with e ->
    (* Clean up, then report what actually went wrong: the unlink is
       best-effort and its own failure must never shadow [e]. *)
    close_fd ();
    (try Sys.remove tmp with Sys_error _ | Unix.Unix_error _ -> ());
    raise (located path !step e)

(* Durable append, for journal-style artifacts (checkpoint journals): a
   torn tail loses only the last record, and the salvage path recovers
   the previous complete one. *)
let append_durable path contents =
  Failpoint.guard "artifact.append.open";
  let step = ref "open" in
  let fd = ref None in
  let close_fd () =
    match !fd with
    | Some d ->
      fd := None;
      (try Unix.close d with Unix.Unix_error _ -> ())
    | None -> ()
  in
  try
    let d =
      Unix.openfile path
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND; Unix.O_CLOEXEC ]
        0o644
    in
    fd := Some d;
    step := "append";
    let payload = Failpoint.guard_write "artifact.append.mid" contents in
    write_all ~path ~site:"artifact.append.syscall" d payload;
    step := "fsync";
    Unix.fsync d;
    close_fd ()
  with e ->
    close_fd ();
    raise (located path !step e)

let float_token f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let dec = Printf.sprintf "%.17g" f in
    if float_of_string dec = f then dec else Printf.sprintf "%h" f

let read_file path =
  Failpoint.guard "artifact.read";
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))
