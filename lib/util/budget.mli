(** Deadline / cancellation tokens for anytime search.

    A budget is a small mutable token threaded through long-running
    searches ([Ga.optimize], [Optimal.optimize], [Explore.sweep]).  The
    search polls {!expired} at evaluation granularity and, once the token
    expires, stops proposing new work and returns the best candidate found
    so far — tagged with a [budget_exhausted] flag — instead of raising or
    running unbounded.

    Time is read from an injectable clock (default [Unix.gettimeofday])
    and monotonized internally: observed time never decreases even when
    the underlying wall clock steps backwards, so an expired budget can
    never "un-expire".  Injecting a fake clock makes deadline behaviour
    deterministically testable without sleeping.

    Tokens are meant to be polled from the coordinating domain only (the
    GA proposes and collects on the main domain); they are not
    thread-safe counters. *)

type t

val unlimited : unit -> t
(** A fresh token with no deadline.  It only ever expires through
    {!cancel}. *)

val of_deadline : ?now:(unit -> float) -> float -> t
(** [of_deadline seconds] expires [seconds] from now.  [?now] injects the
    clock (seconds as [float]; default [Unix.gettimeofday]).  Raises
    [Invalid_argument] when [seconds] is negative or NaN. *)

val cancel : t -> unit
(** Expire the token immediately (co-operative cancellation). *)

val on_expiry : t -> (unit -> unit) -> unit
(** [on_expiry t f] runs [f] once, at the first {!expired} poll that
    observes the token expired (i.e. on the polling domain, inside that
    poll).  A hook registered after the token already tripped runs
    immediately.  The serving runtime uses this to count per-request
    deadline expiries without polluting the polling sites. *)

val expired : t -> bool
(** Whether the token is past its deadline or cancelled.  Sticky: once
    observed true it stays true, and the observation is recorded for
    {!exhausted}. *)

val exhausted : t -> bool
(** Whether {!expired} has ever been observed true on this token — i.e.
    whether some search was actually cut short by it.  A budget that was
    generous enough never trips this flag. *)

val remaining_s : t -> float option
(** Seconds until the deadline, clamped at 0; [None] when the token has
    no deadline.  A cancelled token reports [Some 0.] (or [None] without
    a deadline). *)
