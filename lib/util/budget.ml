type t = {
  now : unit -> float;
  deadline : float option;  (* absolute, on [now]'s clock *)
  mutable last : float;  (* monotonization watermark *)
  mutable cancelled : bool;
  mutable tripped : bool;
  mutable hooks : (unit -> unit) list;  (* run once, at the tripping poll *)
}

let default_clock = Unix.gettimeofday

let unlimited () =
  {
    now = default_clock;
    deadline = None;
    last = neg_infinity;
    cancelled = false;
    tripped = false;
    hooks = [];
  }

let of_deadline ?(now = default_clock) seconds =
  (* [not (>=)] also rejects NaN. *)
  if not (seconds >= 0.) then invalid_arg "Budget.of_deadline: negative or NaN deadline";
  let t0 = now () in
  {
    now;
    deadline = Some (t0 +. seconds);
    last = t0;
    cancelled = false;
    tripped = false;
    hooks = [];
  }

let cancel t = t.cancelled <- true

let on_expiry t f = if t.tripped then f () else t.hooks <- f :: t.hooks

(* Clock reads never move backwards: a wall-clock step back must not
   resurrect an expired deadline mid-search. *)
let clock t =
  let raw = t.now () in
  let v = if raw > t.last then raw else t.last in
  t.last <- v;
  v

let expired t =
  let e =
    t.tripped || t.cancelled
    || match t.deadline with None -> false | Some d -> clock t >= d
  in
  if e && not t.tripped then begin
    t.tripped <- true;
    let hooks = t.hooks in
    t.hooks <- [];
    (* Registration order; a hook that raises aborts the poll like any
       exception at the polling site would. *)
    List.iter (fun f -> f ()) (List.rev hooks)
  end;
  e

let exhausted t = t.tripped

let remaining_s t =
  match t.deadline with
  | None -> None
  | Some d -> Some (if t.cancelled then 0. else max 0. (d -. clock t))
