(** Deterministic fault injection ("failpoints") for chaos testing.

    Long-running compilation and search must survive a hostile host:
    crashing pool workers, torn checkpoint writes, [ENOSPC] mid-save.
    This module lets tests and drills inject exactly those failures at
    named {e sites} in library hot paths, on a reproducible schedule.

    Disabled — the default, unless the [COMPASS_FAILPOINTS] environment
    variable carries a schedule — every {!guard} is a single atomic
    load, so guarded code pays nothing and behaves bit-identically to
    unguarded code (pinned by the bench [chaos] section's <1% budget).
    Armed, firing decisions are made under a global mutex, so hit
    counters and seeded draws are race-free across worker domains.

    {2 Schedule grammar}

    {v
    spec    ::= clause (";" clause)*
    clause  ::= site "=" action ("@" trigger)?
    action  ::= "raise"                  raise Injected site
              | "enospc" | "eintr" | "eio"
                                         raise Unix.Unix_error (simulated syscall)
              | "truncate:" BYTES        keep only BYTES bytes (guard_write sites)
              | "delay:" MILLISECONDS    sleep (wedge simulation)
    trigger ::= "once"                   first hit only (the default)
              | "always"                 every hit
              | "nth:" K                 the K-th hit only (1-based)
              | "every:" K               every K-th hit
              | "prob:" P ":" SEED       seeded Bernoulli(P) per hit
    v}

    A site in a clause may end in ['*'], matching every site with that
    prefix (e.g. [artifact.*=enospc]).  The first matching rule that
    fires wins.  The site catalogue lives in docs/FORMATS.md. *)

exception Injected of string
(** Raised by a site armed with the [raise] action; carries the site
    name.  Deliberately not an [Invalid_argument]: an injected crash is
    an environment failure, and callers (the CLI guard, the supervised
    pool) treat it like one. *)

val enabled : unit -> bool
(** Whether any schedule is armed.  One atomic load. *)

val set : string -> unit
(** Parse and arm a schedule, replacing the previous one and resetting
    all hit counters.  The empty (or blank) spec disarms, like {!clear}.
    Raises [Invalid_argument] with a located message on a malformed
    spec. *)

val clear : unit -> unit
(** Disarm all failpoints and reset hit counters. *)

val active : unit -> string option
(** The armed schedule's spec string, if any. *)

val with_schedule : string -> (unit -> 'a) -> 'a
(** [with_schedule spec f] arms [spec], runs [f], and restores the
    previously-armed schedule (or disarms) afterwards, even on
    exceptions.  Restoring re-parses the previous spec, so its hit
    counters restart from zero. *)

val guard : string -> unit
(** [guard site] marks a fail site.  Disarmed: a no-op (one atomic
    load).  Armed: may raise {!Injected} or [Unix.Unix_error], or sleep,
    according to the first matching rule that fires. *)

val guard_write : string -> string -> string
(** [guard_write site payload] marks a fail site on a write path.  Like
    {!guard}, but a [truncate:N] rule returns only the first [N] bytes
    of [payload] — the caller then writes a torn artifact, which is
    exactly what salvage paths are tested against.  Disarmed, returns
    [payload] unchanged. *)

val hits : string -> int
(** Guard invocations observed at [site] since the schedule was armed
    (counted whether or not any rule fired).  Always 0 while disarmed. *)

val fired : unit -> (string * int) list
(** Rules that fired at least once: [(rule site, fire count)]. *)
