type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64: one 64-bit multiply-xor-shift chain per draw. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* OCaml's native int is 63-bit; mask to 62 bits to stay non-negative. *)
let next_nonneg t = Int64.to_int (Int64.logand (next_int64 t) (Int64.of_int max_int))

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next_nonneg t mod bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  let mantissa = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (mantissa /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pick_array t xs =
  if Array.length xs = 0 then invalid_arg "Rng.pick_array: empty array";
  xs.(int t (Array.length xs))

let shuffle t xs =
  for i = Array.length xs - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = xs.(i) in
    xs.(i) <- xs.(j);
    xs.(j) <- tmp
  done

let sample_without_replacement t n bound =
  if n > bound then invalid_arg "Rng.sample_without_replacement: n > bound";
  let pool = Array.init bound (fun i -> i) in
  shuffle t pool;
  Array.to_list (Array.sub pool 0 n)

let split t = { state = next_int64 t }
let state t = t.state
let of_state s = { state = s }
