(** Crash-safe artifact writes.

    Compiled plans and GA checkpoints are written through
    write-to-temp + atomic-rename, so a crash (or a second writer) can
    never leave a half-written file behind under the destination path: a
    reader sees either the previous complete artifact or the new one,
    never a truncated mix. *)

val write_atomic : string -> string -> unit
(** [write_atomic path contents] writes [contents] to a fresh temporary
    file in [path]'s directory, flushes it, and renames it over [path]
    (atomic on POSIX within one filesystem).  On any error the temporary
    file is removed and the original [path] is left untouched.  Raises
    [Sys_error] on I/O failure. *)

val float_token : float -> string
(** Serialize a float so [float_of_string] reads back the identical bit
    pattern: an exact integer prints plainly, otherwise the shortest
    round-tripping decimal ([%.17g]), with the hex-float literal ([%h]) as
    a guaranteed fallback.  Infinities print as ["inf"]/["-inf"], which
    [float_of_string] also reads. *)

val read_file : string -> string
(** Whole-file read ([Sys_error] on failure), the load-side counterpart
    used by plan and checkpoint loaders. *)
