(** Crash-consistent artifact writes.

    Compiled plans and GA checkpoints are written through
    write-to-temp + fsync + atomic-rename, so a crash — or an injected
    {!Failpoint} failure — can never leave a half-written file behind
    under the destination path: a reader sees either the previous
    complete artifact or the new one, never a truncated mix.

    Failpoint sites (catalogue in docs/FORMATS.md):
    [artifact.write.open], [artifact.write.mid] (payload truncation),
    [artifact.write.syscall] (per-chunk, e.g. [eintr]/[enospc]),
    [artifact.write.fsync], [artifact.write.rename],
    [artifact.append.open], [artifact.append.mid],
    [artifact.append.syscall], [artifact.read]. *)

val write_atomic : string -> string -> unit
(** [write_atomic path contents] writes [contents] to a fresh temporary
    file in [path]'s directory, fsyncs it, renames it over [path]
    (atomic on POSIX within one filesystem), and best-effort-syncs the
    directory.  [EINTR] during a write is retried (bounded).  On any
    other error the temporary file is removed and the {e original}
    failure is reported — never the cleanup's — as a [Sys_error] naming
    the path and the failing step; [path] is left untouched. *)

val append_durable : string -> string -> unit
(** [append_durable path contents] appends [contents] to [path]
    (creating it if needed) and fsyncs before returning.  Appends are
    not atomic: a crash mid-append leaves a torn tail, which is exactly
    what journal salvage ({!Compass_core.Plan_text.salvage_checkpoint})
    recovers from — only the last record is ever at risk.  [EINTR] is
    retried; other failures raise a located [Sys_error]. *)

val float_token : float -> string
(** Serialize a float so [float_of_string] reads back the identical bit
    pattern: an exact integer prints plainly, otherwise the shortest
    round-tripping decimal ([%.17g]), with the hex-float literal ([%h]) as
    a guaranteed fallback.  Infinities print as ["inf"]/["-inf"], which
    [float_of_string] also reads. *)

val read_file : string -> string
(** Whole-file read ([Sys_error] on failure), the load-side counterpart
    used by plan and checkpoint loaders. *)
