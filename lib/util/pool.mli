(** A persistent domain pool for data-parallel array operations, with
    optional supervision of failing tasks.

    The compiler's hot path — GA fitness evaluation — is embarrassingly
    parallel across individuals.  A pool owns [jobs - 1] worker domains
    (the calling domain participates as the extra worker) that persist
    across calls, so per-generation dispatch costs a mutex round-trip
    rather than a domain spawn.  At [jobs = 1] no domains are spawned and
    every operation degrades to the plain sequential equivalent.

    Work items are pulled from a shared atomic counter, so scheduling is
    nondeterministic — but results are written back by index and every
    operation preserves input order, which keeps callers deterministic as
    long as [f] is pure (or keeps its effects in the per-domain state of
    [map_init]).

    Exceptions raised by [f] are caught on the worker and carried as
    {!Task_error} diagnostics naming the task index and worker.  Without
    supervision the failure at the {e lowest} input index is re-raised on
    the caller once the phase has drained — deterministic for any worker
    count.  With {!supervision}, failed tasks are first re-executed on
    the calling domain in index order (bounded retries, optional
    {!Budget} watchdog); since a pure [f] returns the same value on
    retry, a recovered run is indistinguishable from an unfailed one.

    Every task execution passes the [pool.task] failpoint site
    ({!Failpoint.guard}), so chaos schedules can crash workers on
    demand.  Supervision is observable: every task failure bumps the
    [pool.task_errors] counter and every supervised re-execution bumps
    [pool.retries] ({!Metrics}), so recovery shows up in [--metrics]
    output instead of happening silently. *)

type t

exception
  Task_error of {
    index : int;  (** input-array index of the failed task *)
    worker : int;  (** domain id the {e original} failure occurred on *)
    attempts : int;  (** executions attempted, including the first *)
    error : exn;  (** the underlying exception, unwrapped *)
  }
(** A task failure, located: which task, which worker, how many attempts.
    When several tasks fail in one phase, the lowest index is raised. *)

type supervision
(** A recovery policy for failing tasks. *)

val supervision : ?retries:int -> ?watchdog:Budget.t -> unit -> supervision
(** [supervision ?retries ?watchdog ()] re-executes each failed task up
    to [retries] more times (default 2) on the calling domain, in index
    order.  If [watchdog] is given and expires, remaining retries are
    abandoned and the failure surfaces immediately.  Raises
    [Invalid_argument] on negative [retries]; [retries:0] just converts
    worker crashes into located {!Task_error}s without re-execution. *)

val default_jobs : unit -> int
(** The worker count selected by the environment: [COMPASS_JOBS] parsed
    as a positive integer (clamped to [\[1, 128\]]), [0] meaning
    [Domain.recommended_domain_count ()], and [1] when unset or
    malformed.  Read on every call. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains.  Raises
    [Invalid_argument] when [jobs < 1]. *)

val jobs : t -> int

val map : ?supervision:supervision -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f xs] is [Array.map f xs], evaluated on all domains of the
    pool.  Results are in input order. *)

val map_init :
  ?supervision:supervision ->
  t ->
  init:(unit -> 's) ->
  f:('s -> 'a -> 'b) ->
  'a array ->
  'b array * 's list
(** [map_init t ~init ~f xs] is [map] with per-domain local state: each
    domain that processes at least one item calls [init] once (per
    [map_init] call) and threads its state through every item it runs.
    Returns the mapped array (input order) and the local states (order
    unspecified) for the caller to merge — the GA uses this for
    domain-local span caches.  Supervised retries run with a fresh state
    of their own, returned like any worker's. *)

val map_local :
  ?supervision:supervision ->
  t ->
  init:(unit -> 's) ->
  f:('s -> 'a -> 'b) ->
  'a array ->
  'b array
(** {!map_init} for per-domain state the caller does not need back —
    scratch buffers, caches whose contents are pure optimization.  The
    batched inference executor uses this for per-domain im2col patch
    buffers. *)

val map_reduce :
  ?supervision:supervision ->
  t ->
  map:('a -> 'b) ->
  reduce:('c -> 'b -> 'c) ->
  init:'c ->
  'a array ->
  'c
(** [map_reduce t ~map ~reduce ~init xs] maps in parallel, then folds the
    results sequentially in input order — deterministic even for
    non-associative [reduce]. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; using the pool after
    shutdown raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'r) -> 'r
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down on
    exit, including on exceptions. *)
