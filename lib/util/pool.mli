(** A persistent domain pool for data-parallel array operations.

    The compiler's hot path — GA fitness evaluation — is embarrassingly
    parallel across individuals.  A pool owns [jobs - 1] worker domains
    (the calling domain participates as the extra worker) that persist
    across calls, so per-generation dispatch costs a mutex round-trip
    rather than a domain spawn.  At [jobs = 1] no domains are spawned and
    every operation degrades to the plain sequential equivalent.

    Work items are pulled from a shared atomic counter, so scheduling is
    nondeterministic — but results are written back by index and every
    operation preserves input order, which keeps callers deterministic as
    long as [f] is pure (or keeps its effects in the per-domain state of
    [map_init]).

    Exceptions raised by [f] are caught on the worker, and the one raised
    by the {e lowest} input index is re-raised on the caller once the
    phase has drained — deterministic for any worker count. *)

type t

val default_jobs : unit -> int
(** The worker count selected by the environment: [COMPASS_JOBS] parsed
    as a positive integer (clamped to [\[1, 128\]]), [0] meaning
    [Domain.recommended_domain_count ()], and [1] when unset or
    malformed.  Read on every call. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains.  Raises
    [Invalid_argument] when [jobs < 1]. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f xs] is [Array.map f xs], evaluated on all domains of the
    pool.  Results are in input order. *)

val map_init : t -> init:(unit -> 's) -> f:('s -> 'a -> 'b) -> 'a array -> 'b array * 's list
(** [map_init t ~init ~f xs] is [map] with per-domain local state: each
    domain that processes at least one item calls [init] once (per
    [map_init] call) and threads its state through every item it runs.
    Returns the mapped array (input order) and the local states (order
    unspecified) for the caller to merge — the GA uses this for
    domain-local span caches. *)

val map_local : t -> init:(unit -> 's) -> f:('s -> 'a -> 'b) -> 'a array -> 'b array
(** {!map_init} for per-domain state the caller does not need back —
    scratch buffers, caches whose contents are pure optimization.  The
    batched inference executor uses this for per-domain im2col patch
    buffers. *)

val map_reduce : t -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> init:'c -> 'a array -> 'c
(** [map_reduce t ~map ~reduce ~init xs] maps in parallel, then folds the
    results sequentially in input order — deterministic even for
    non-associative [reduce]. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; using the pool after
    shutdown raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'r) -> 'r
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down on
    exit, including on exceptions. *)
