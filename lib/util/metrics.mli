(** Typed counters and gauges with per-domain buffers.

    Counters are integer sums; because addition is associative and
    commutative, the merged {!snapshot} is independent of how increments
    were distributed across {!Pool} worker domains.  Gauges are floats
    with last-write-wins semantics (a global set-sequence makes the merge
    deterministic).  A name is permanently one kind or the other; mixing
    raises [Invalid_argument].

    Disabled — the default, unless the [COMPASS_METRICS] environment
    variable is set to anything other than ["0"] or the empty string —
    every entry point is a single atomic load and records nothing.
    Metrics are pure observation and never feed back into the
    computation.  The metric-name catalogue lives in docs/FORMATS.md. *)

type value =
  | Int of int  (** counter *)
  | Float of float  (** gauge *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Drop all recorded values (all domains).  Call only while no worker
    domain is inside an instrumented region. *)

val incr : ?by:int -> string -> unit
(** Add [by] (default 1) to a counter, creating it at 0 first. *)

val set : string -> float -> unit
(** Set a gauge; the latest set (across all domains) wins. *)

val snapshot : unit -> (string * value) list
(** All metrics merged across domain buffers, sorted by name. *)

val find : string -> value option
val find_int : string -> int option

val value_to_string : value -> string

val to_table : unit -> Table.t
(** {!snapshot} as a two-column table. *)
