(** Typed counters, gauges and histograms with per-domain buffers.

    Counters are integer sums; because addition is associative and
    commutative, the merged {!snapshot} is independent of how increments
    were distributed across {!Pool} worker domains.  Gauges are floats
    with last-write-wins semantics (a global set-sequence makes the merge
    deterministic).  Histograms ({!observe}) are power-of-two-bucketed
    sample distributions whose bucket counts also merge by summation, so
    derived quantiles are worker-count-independent too.  A name is
    permanently one kind; mixing raises [Invalid_argument].

    Disabled — the default, unless the [COMPASS_METRICS] environment
    variable is set to anything other than ["0"] or the empty string —
    every entry point is a single atomic load and records nothing.
    Metrics are pure observation and never feed back into the
    computation.  The metric-name catalogue lives in docs/FORMATS.md. *)

type value =
  | Int of int  (** counter *)
  | Float of float  (** gauge *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Drop all recorded values (all domains).  Call only while no worker
    domain is inside an instrumented region. *)

val incr : ?by:int -> string -> unit
(** Add [by] (default 1) to a counter, creating it at 0 first. *)

val set : string -> float -> unit
(** Set a gauge; the latest set (across all domains) wins. *)

val observe : string -> float -> unit
(** Record one sample into a histogram (e.g. a request latency in
    seconds).  Samples land in power-of-two buckets, so the memory cost
    is a small fixed array per (domain, name) and the cross-domain merge
    is an associative bucket-count sum.  The serving runtime feeds
    [serve.latency_s] through this. *)

val quantile : string -> float -> float option
(** [quantile name q] estimates the [q]-quantile ([0. <= q <= 1.]) of a
    histogram from its merged buckets: the returned value is the upper
    edge of the bucket where the cumulative count crosses [q], an
    over-estimate by at most 2x (one bucket).  [None] when [name] has no
    samples.  Raises [Invalid_argument] on a [q] outside [0, 1] or a
    name bound to a counter or gauge. *)

val snapshot : unit -> (string * value) list
(** All metrics merged across domain buffers, sorted by name.  A
    histogram [h] appears as derived entries [h.count] (Int) and
    [h.p50] / [h.p99] (Float, {!quantile} estimates). *)

val find : string -> value option
val find_int : string -> int option

val value_to_string : value -> string

val to_table : unit -> Table.t
(** {!snapshot} as a two-column table. *)
