(* Typed counters and gauges, recorded into per-domain tables.

   Counters are integer sums, so merging domain-local tables is
   associative and commutative — the snapshot is independent of worker
   count and scheduling (a property test pins this).  Gauges are floats
   with last-write-wins semantics, ordered by a global set-sequence so
   the merge is deterministic even when two domains set the same gauge.

   Disabled (the default), every entry point is one atomic load. *)

type value =
  | Int of int
  | Float of float

type entry =
  | Counter of int ref
  | Gauge of (int * float) ref  (* set-sequence, value *)

type buf = { table : (string, entry) Hashtbl.t }

let registry : buf list ref = ref []
let registry_mutex = Mutex.create ()

let env_truthy name =
  match Sys.getenv_opt name with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let on = Atomic.make (env_truthy "COMPASS_METRICS")
let gauge_seq = Atomic.make 0

let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b = { table = Hashtbl.create 64 } in
      Mutex.lock registry_mutex;
      registry := b :: !registry;
      Mutex.unlock registry_mutex;
      b)

let buffer () = Domain.DLS.get buffer_key

let reset () =
  Mutex.lock registry_mutex;
  List.iter (fun b -> Hashtbl.reset b.table) !registry;
  Mutex.unlock registry_mutex

let incr ?(by = 1) name =
  if Atomic.get on then begin
    let b = buffer () in
    match Hashtbl.find_opt b.table name with
    | Some (Counter r) -> r := !r + by
    | Some (Gauge _) ->
      invalid_arg (Printf.sprintf "Metrics.incr: %s is a gauge" name)
    | None -> Hashtbl.add b.table name (Counter (ref by))
  end

let set name v =
  if Atomic.get on then begin
    let b = buffer () in
    let seq = Atomic.fetch_and_add gauge_seq 1 in
    match Hashtbl.find_opt b.table name with
    | Some (Gauge r) -> r := (seq, v)
    | Some (Counter _) ->
      invalid_arg (Printf.sprintf "Metrics.set: %s is a counter" name)
    | None -> Hashtbl.add b.table name (Gauge (ref (seq, v)))
  end

let snapshot () =
  let bufs =
    Mutex.lock registry_mutex;
    let bs = !registry in
    Mutex.unlock registry_mutex;
    bs
  in
  let merged : (string, entry) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun name e ->
          match (Hashtbl.find_opt merged name, e) with
          | None, Counter r -> Hashtbl.replace merged name (Counter (ref !r))
          | None, Gauge r -> Hashtbl.replace merged name (Gauge (ref !r))
          | Some (Counter acc), Counter r -> acc := !acc + !r
          | Some (Gauge acc), Gauge r ->
            let sa, _ = !acc and sr, _ = !r in
            if sr > sa then acc := !r
          | Some _, _ ->
            invalid_arg
              (Printf.sprintf "Metrics.snapshot: %s is both counter and gauge" name))
        b.table)
    bufs;
  Hashtbl.fold
    (fun name e acc ->
      let v = match e with Counter r -> Int !r | Gauge r -> Float (snd !r) in
      (name, v) :: acc)
    merged []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let find name = List.assoc_opt name (snapshot ())

let find_int name =
  match find name with
  | Some (Int n) -> Some n
  | Some (Float _) | None -> None

let value_to_string = function
  | Int n -> string_of_int n
  | Float v -> Printf.sprintf "%.6g" v

let to_table () =
  let t =
    Table.create ~aligns:[ Table.Left; Table.Right ] [ "metric"; "value" ]
  in
  List.iter
    (fun (name, v) -> Table.add_row t [ name; value_to_string v ])
    (snapshot ());
  t
