(* Typed counters and gauges, recorded into per-domain tables.

   Counters are integer sums, so merging domain-local tables is
   associative and commutative — the snapshot is independent of worker
   count and scheduling (a property test pins this).  Gauges are floats
   with last-write-wins semantics, ordered by a global set-sequence so
   the merge is deterministic even when two domains set the same gauge.

   Disabled (the default), every entry point is one atomic load. *)

type value =
  | Int of int
  | Float of float

(* Histogram buckets are powers of two: a sample [v] lands in the bucket
   of its binary exponent (frexp), shifted so bucket 0 holds everything
   below 2^-31 and the last bucket everything above 2^31.  Counts merge
   by summation — associative and commutative like counters — so derived
   quantiles are independent of which domain observed which sample. *)
let hist_buckets = 64

let bucket_of v =
  if not (v > 0.) then 0 (* <= 0 and NaN collapse into the bottom bucket *)
  else
    let _, e = Float.frexp v in
    (* v in [2^(e-1), 2^e) *)
    max 0 (min (hist_buckets - 1) (e + 31))

(* Upper edge of a bucket: 2^(b - 31). *)
let bucket_upper b = Float.ldexp 1. (b - 31)

type hist = {
  mutable count : int;
  mutable sum : float;
  counts : int array;  (* hist_buckets cells *)
}

type entry =
  | Counter of int ref
  | Gauge of (int * float) ref  (* set-sequence, value *)
  | Hist of hist

type buf = { table : (string, entry) Hashtbl.t }

let registry : buf list ref = ref []
let registry_mutex = Mutex.create ()

let env_truthy name =
  match Sys.getenv_opt name with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let on = Atomic.make (env_truthy "COMPASS_METRICS")
let gauge_seq = Atomic.make 0

let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b = { table = Hashtbl.create 64 } in
      Mutex.lock registry_mutex;
      registry := b :: !registry;
      Mutex.unlock registry_mutex;
      b)

let buffer () = Domain.DLS.get buffer_key

let reset () =
  Mutex.lock registry_mutex;
  List.iter (fun b -> Hashtbl.reset b.table) !registry;
  Mutex.unlock registry_mutex

let incr ?(by = 1) name =
  if Atomic.get on then begin
    let b = buffer () in
    match Hashtbl.find_opt b.table name with
    | Some (Counter r) -> r := !r + by
    | Some (Gauge _ | Hist _) ->
      invalid_arg (Printf.sprintf "Metrics.incr: %s is not a counter" name)
    | None -> Hashtbl.add b.table name (Counter (ref by))
  end

let set name v =
  if Atomic.get on then begin
    let b = buffer () in
    let seq = Atomic.fetch_and_add gauge_seq 1 in
    match Hashtbl.find_opt b.table name with
    | Some (Gauge r) -> r := (seq, v)
    | Some (Counter _ | Hist _) ->
      invalid_arg (Printf.sprintf "Metrics.set: %s is not a gauge" name)
    | None -> Hashtbl.add b.table name (Gauge (ref (seq, v)))
  end

let observe name v =
  if Atomic.get on then begin
    let b = buffer () in
    let h =
      match Hashtbl.find_opt b.table name with
      | Some (Hist h) -> h
      | Some (Counter _ | Gauge _) ->
        invalid_arg (Printf.sprintf "Metrics.observe: %s is not a histogram" name)
      | None ->
        let h = { count = 0; sum = 0.; counts = Array.make hist_buckets 0 } in
        Hashtbl.add b.table name (Hist h);
        h
    in
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    let i = bucket_of v in
    h.counts.(i) <- h.counts.(i) + 1
  end

let merged_entries () =
  let bufs =
    Mutex.lock registry_mutex;
    let bs = !registry in
    Mutex.unlock registry_mutex;
    bs
  in
  let merged : (string, entry) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun name e ->
          match (Hashtbl.find_opt merged name, e) with
          | None, Counter r -> Hashtbl.replace merged name (Counter (ref !r))
          | None, Gauge r -> Hashtbl.replace merged name (Gauge (ref !r))
          | None, Hist h ->
            Hashtbl.replace merged name
              (Hist { count = h.count; sum = h.sum; counts = Array.copy h.counts })
          | Some (Counter acc), Counter r -> acc := !acc + !r
          | Some (Gauge acc), Gauge r ->
            let sa, _ = !acc and sr, _ = !r in
            if sr > sa then acc := !r
          | Some (Hist acc), Hist h ->
            acc.count <- acc.count + h.count;
            acc.sum <- acc.sum +. h.sum;
            Array.iteri (fun i n -> acc.counts.(i) <- acc.counts.(i) + n) h.counts
          | Some _, _ ->
            invalid_arg
              (Printf.sprintf "Metrics.snapshot: %s is recorded as two kinds" name))
        b.table)
    bufs;
  merged

(* The q-quantile of a merged histogram: the upper edge of the bucket
   where the cumulative count first reaches ceil(q * count). *)
let hist_quantile h q =
  if h.count = 0 then None
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int h.count))) in
    let acc = ref 0 and found = ref None in
    Array.iteri
      (fun i n ->
        if !found = None then begin
          acc := !acc + n;
          if !acc >= rank then found := Some (bucket_upper i)
        end)
      h.counts;
    !found
  end

let quantile name q =
  if not (q >= 0. && q <= 1.) then invalid_arg "Metrics.quantile: q outside [0, 1]";
  match Hashtbl.find_opt (merged_entries ()) name with
  | None -> None
  | Some (Hist h) -> hist_quantile h q
  | Some (Counter _ | Gauge _) ->
    invalid_arg (Printf.sprintf "Metrics.quantile: %s is not a histogram" name)

let snapshot () =
  Hashtbl.fold
    (fun name e acc ->
      match e with
      | Counter r -> (name, Int !r) :: acc
      | Gauge r -> (name, Float (snd !r)) :: acc
      | Hist h ->
        let q p = match hist_quantile h p with Some v -> v | None -> 0. in
        (name ^ ".count", Int h.count)
        :: (name ^ ".p50", Float (q 0.5))
        :: (name ^ ".p99", Float (q 0.99))
        :: acc)
    (merged_entries ()) []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let find name = List.assoc_opt name (snapshot ())

let find_int name =
  match find name with
  | Some (Int n) -> Some n
  | Some (Float _) | None -> None

let value_to_string = function
  | Int n -> string_of_int n
  | Float v -> Printf.sprintf "%.6g" v

let to_table () =
  let t =
    Table.create ~aligns:[ Table.Left; Table.Right ] [ "metric"; "value" ]
  in
  List.iter
    (fun (name, v) -> Table.add_row t [ name; value_to_string v ])
    (snapshot ());
  t
