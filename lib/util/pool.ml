let max_jobs = 128

let default_jobs () =
  match Sys.getenv_opt "COMPASS_JOBS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some 0 -> min max_jobs (Domain.recommended_domain_count ())
    | Some j when j >= 1 -> min max_jobs j
    | Some _ | None -> 1)

exception
  Task_error of {
    index : int;
    worker : int;
    attempts : int;
    error : exn;
  }

let () =
  Printexc.register_printer (function
    | Task_error { index; worker; attempts; error } ->
      Some
        (Printf.sprintf "pool task %d failed on worker %d after %d attempt(s): %s" index
           worker attempts (Printexc.to_string error))
    | _ -> None)

type supervision = {
  retries : int;
  watchdog : Budget.t option;
}

let supervision ?(retries = 2) ?watchdog () =
  if retries < 0 then invalid_arg "Pool.supervision: retries < 0";
  { retries; watchdog }

(* One phase = one [map_init] call.  Workers block on [work] until the
   epoch advances, run the current body (which pulls item indices from an
   atomic counter until exhausted), then report completion on [done_].
   Pre-counting [running] before the broadcast ensures the caller cannot
   observe the phase as finished before a worker has even started. *)
type t = {
  n_jobs : int;
  mutex : Mutex.t;
  work : Condition.t;
  done_ : Condition.t;
  mutable body : (unit -> unit) option;
  mutable epoch : int;
  mutable running : int;
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
}

let jobs t = t.n_jobs

let worker_loop t =
  let rec loop seen =
    Mutex.lock t.mutex;
    while (not t.stopped) && t.epoch = seen do
      Condition.wait t.work t.mutex
    done;
    if t.stopped then Mutex.unlock t.mutex
    else begin
      let epoch = t.epoch in
      let body = Option.get t.body in
      Mutex.unlock t.mutex;
      body ();
      Mutex.lock t.mutex;
      t.running <- t.running - 1;
      if t.running = 0 then Condition.broadcast t.done_;
      Mutex.unlock t.mutex;
      loop epoch
    end
  in
  loop 0

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs < 1";
  let t =
    {
      n_jobs = min max_jobs jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      body = None;
      epoch = 0;
      running = 0;
      stopped = false;
      domains = [];
    }
  in
  t.domains <- List.init (t.n_jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  let to_join =
    Mutex.lock t.mutex;
    let ds = t.domains in
    t.domains <- [];
    t.stopped <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    ds
  in
  List.iter Domain.join to_join

(* Run [body] on every domain of the pool and wait until all have
   drained.  [body] must never raise. *)
let run_phase t body =
  Mutex.lock t.mutex;
  if t.stopped then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool: used after shutdown"
  end;
  t.body <- Some body;
  t.epoch <- t.epoch + 1;
  t.running <- t.n_jobs - 1;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  body ();
  Mutex.lock t.mutex;
  while t.running > 0 do
    Condition.wait t.done_ t.mutex
  done;
  t.body <- None;
  Mutex.unlock t.mutex

let rec push slot x =
  let cur = Atomic.get slot in
  if not (Atomic.compare_and_set slot cur (x :: cur)) then push slot x

(* Failed tasks are re-executed on the calling domain, in index order —
   deterministic for any worker count (a pure [f] yields the same value
   on retry, so a recovered run equals an unfailed one).  The watchdog
   budget bounds the whole recovery loop: once it expires, the remaining
   failures surface instead of retrying further. *)
let recover ~supervision ~f ~state ~out failures =
  let ordered =
    List.sort (fun (i, _, _) (j, _, _) -> compare i j) failures
  in
  let give_up index worker attempts error =
    raise (Task_error { index; worker; attempts; error })
  in
  List.iter
    (fun (index, worker, error) ->
      match supervision with
      | None -> give_up index worker 1 error
      | Some { retries; watchdog } ->
        let expired () =
          match watchdog with None -> false | Some b -> Budget.expired b
        in
        let rec attempt k last =
          if k > retries + 1 then give_up index worker (k - 1) last
          else if k > 1 && expired () then give_up index worker (k - 1) last
          else
            match
              Metrics.incr "pool.retries";
              Failpoint.guard "pool.task";
              f (state ()) index
            with
            | y -> out.(index) <- Some y
            | exception e -> attempt (k + 1) e
        in
        attempt 2 error)
    ordered

let map_init ?supervision t ~init ~f xs =
  let n = Array.length xs in
  if t.stopped then invalid_arg "Pool: used after shutdown";
  if n = 0 then ([||], [])
  else begin
    let out = Array.make n None in
    let states = Atomic.make [] in
    let failures = Atomic.make [] in
    let exec s i =
      match
        Failpoint.guard "pool.task";
        f s xs.(i)
      with
      | y -> out.(i) <- Some y
      | exception exn ->
        Metrics.incr "pool.task_errors";
        push failures (i, (Domain.self () :> int), exn)
    in
    if t.n_jobs = 1 then begin
      let s = init () in
      push states s;
      for i = 0 to n - 1 do
        exec s i
      done
    end
    else begin
      let next = Atomic.make 0 in
      let body () =
        let local = ref None in
        let state () =
          match !local with
          | Some s -> s
          | None ->
            let s = init () in
            local := Some s;
            push states s;
            s
        in
        let rec pull () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            exec (state ()) i;
            pull ()
          end
        in
        pull ()
      in
      run_phase t body
    end;
    (match Atomic.get failures with
    | [] -> ()
    | failures ->
      (* Retries run on the calling domain with a lazily-built state of
         their own, merged back like any worker's. *)
      let retry_state = ref None in
      let state () =
        match !retry_state with
        | Some s -> s
        | None ->
          let s = init () in
          retry_state := Some s;
          push states s;
          s
      in
      recover ~supervision ~f:(fun s i -> f s xs.(i)) ~state ~out failures);
    (Array.map (function Some y -> y | None -> assert false) out, Atomic.get states)
  end

let map ?supervision t f xs =
  fst (map_init ?supervision t ~init:(fun () -> ()) ~f:(fun () x -> f x) xs)

let map_local ?supervision t ~init ~f xs = fst (map_init ?supervision t ~init ~f xs)

let map_reduce ?supervision t ~map:f ~reduce ~init xs =
  Array.fold_left reduce init (map ?supervision t f xs)

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
