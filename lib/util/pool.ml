let max_jobs = 128

let default_jobs () =
  match Sys.getenv_opt "COMPASS_JOBS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some 0 -> min max_jobs (Domain.recommended_domain_count ())
    | Some j when j >= 1 -> min max_jobs j
    | Some _ | None -> 1)

(* One phase = one [map_init] call.  Workers block on [work] until the
   epoch advances, run the current body (which pulls item indices from an
   atomic counter until exhausted), then report completion on [done_].
   Pre-counting [running] before the broadcast ensures the caller cannot
   observe the phase as finished before a worker has even started. *)
type t = {
  n_jobs : int;
  mutex : Mutex.t;
  work : Condition.t;
  done_ : Condition.t;
  mutable body : (unit -> unit) option;
  mutable epoch : int;
  mutable running : int;
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
}

let jobs t = t.n_jobs

let worker_loop t =
  let rec loop seen =
    Mutex.lock t.mutex;
    while (not t.stopped) && t.epoch = seen do
      Condition.wait t.work t.mutex
    done;
    if t.stopped then Mutex.unlock t.mutex
    else begin
      let epoch = t.epoch in
      let body = Option.get t.body in
      Mutex.unlock t.mutex;
      body ();
      Mutex.lock t.mutex;
      t.running <- t.running - 1;
      if t.running = 0 then Condition.broadcast t.done_;
      Mutex.unlock t.mutex;
      loop epoch
    end
  in
  loop 0

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs < 1";
  let t =
    {
      n_jobs = min max_jobs jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      body = None;
      epoch = 0;
      running = 0;
      stopped = false;
      domains = [];
    }
  in
  t.domains <- List.init (t.n_jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  let to_join =
    Mutex.lock t.mutex;
    let ds = t.domains in
    t.domains <- [];
    t.stopped <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    ds
  in
  List.iter Domain.join to_join

(* Run [body] on every domain of the pool and wait until all have
   drained.  [body] must never raise. *)
let run_phase t body =
  Mutex.lock t.mutex;
  if t.stopped then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool: used after shutdown"
  end;
  t.body <- Some body;
  t.epoch <- t.epoch + 1;
  t.running <- t.n_jobs - 1;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  body ();
  Mutex.lock t.mutex;
  while t.running > 0 do
    Condition.wait t.done_ t.mutex
  done;
  t.body <- None;
  Mutex.unlock t.mutex

(* Keep the exception raised by the lowest item index, so the caller sees
   the same failure regardless of scheduling. *)
let rec record_failure slot i exn =
  let cur = Atomic.get slot in
  match cur with
  | Some (j, _) when j <= i -> ()
  | _ -> if not (Atomic.compare_and_set slot cur (Some (i, exn))) then record_failure slot i exn

let rec push_state slot s =
  let cur = Atomic.get slot in
  if not (Atomic.compare_and_set slot cur (s :: cur)) then push_state slot s

let map_init t ~init ~f xs =
  let n = Array.length xs in
  if t.stopped then invalid_arg "Pool: used after shutdown";
  if n = 0 then ([||], [])
  else if t.n_jobs = 1 then begin
    let s = init () in
    (Array.map (f s) xs, [ s ])
  end
  else begin
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let states = Atomic.make [] in
    let failure = Atomic.make None in
    let body () =
      let local = ref None in
      let state () =
        match !local with
        | Some s -> s
        | None ->
          let s = init () in
          local := Some s;
          push_state states s;
          s
      in
      let rec pull () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f (state ()) xs.(i) with
          | y -> out.(i) <- Some y
          | exception exn -> record_failure failure i exn);
          pull ()
        end
      in
      pull ()
    in
    run_phase t body;
    match Atomic.get failure with
    | Some (_, exn) -> raise exn
    | None ->
      (Array.map (function Some y -> y | None -> assert false) out, Atomic.get states)
  end

let map t f xs = fst (map_init t ~init:(fun () -> ()) ~f:(fun () x -> f x) xs)
let map_local t ~init ~f xs = fst (map_init t ~init ~f xs)

let map_reduce t ~map:f ~reduce ~init xs = Array.fold_left reduce init (map t f xs)

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
