(** Deterministic pseudo-random number generation.

    All stochastic components of the compiler (initial population sampling,
    mutation choices, random splits) draw from an explicit [t] so that every
    compilation is reproducible from a seed.  The generator is splitmix64,
    which is small, fast and statistically adequate for search heuristics. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator positioned at the same state. *)

val int : t -> int -> int
(** [int t bound] draws a uniform integer in [\[0, bound)].  [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws a uniform integer in [\[lo, hi\]] (inclusive).
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] draws a uniform float in [\[0, bound)]. *)

val bool : t -> bool
(** [bool t] draws a fair coin flip. *)

val pick : t -> 'a list -> 'a
(** [pick t xs] draws a uniform element of [xs].  Raises [Invalid_argument]
    on the empty list. *)

val pick_array : t -> 'a array -> 'a
(** [pick_array t xs] draws a uniform element of [xs].  Raises
    [Invalid_argument] on an empty array. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t xs] permutes [xs] in place (Fisher-Yates). *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t n bound] draws [n] distinct integers from
    [\[0, bound)] in random order.  Requires [n <= bound]. *)

val split : t -> t
(** [split t] derives a new independent generator from [t], advancing [t]. *)

val state : t -> int64
(** The raw 64-bit generator state, for checkpointing.  Note this is not
    the [create] seed: [create s] starts from [Int64.of_int s], and the
    state advances with every draw. *)

val of_state : int64 -> t
(** Rebuild a generator from a {!state} snapshot; the new generator
    continues the snapshotted stream exactly. *)
