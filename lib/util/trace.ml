(* Structured tracing: nested spans recorded into per-domain buffers.

   Disabled (the default) the entire subsystem is one atomic load per
   call site; enabled, each span records a Begin/End event pair into the
   calling domain's buffer (no locking on the hot path).  Buffers are
   registered globally on first use, so events written by pool worker
   domains are merged at export time — the pool's phase join publishes
   them before the main domain reads.

   Timestamps come from an injectable clock (tests pin golden output
   with a fake one) and are monotonized per buffer, so a wall-clock step
   back never produces a span that ends before it starts. *)

type phase =
  | Begin
  | End

type event = {
  name : string;
  phase : phase;
  ts : float;  (* seconds since [enable] on the trace clock *)
  tid : int;
  args : (string * string) list;
}

type buf = {
  tid : int;
  mutable events : event list;  (* newest first *)
  mutable last_ts : float;
}

let registry : buf list ref = ref []
let registry_mutex = Mutex.create ()

let env_truthy name =
  match Sys.getenv_opt name with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let on = Atomic.make (env_truthy "COMPASS_TRACE")
let clock = ref Unix.gettimeofday
let base = ref (Unix.gettimeofday ())

let enabled () = Atomic.get on

let enable ?clock:(c = Unix.gettimeofday) () =
  clock := c;
  base := c ();
  Atomic.set on true

let disable () = Atomic.set on false

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b = { tid = (Domain.self () :> int); events = []; last_ts = 0. } in
      Mutex.lock registry_mutex;
      registry := b :: !registry;
      Mutex.unlock registry_mutex;
      b)

let buffer () = Domain.DLS.get buffer_key

let reset () =
  Mutex.lock registry_mutex;
  List.iter
    (fun b ->
      b.events <- [];
      b.last_ts <- 0.)
    !registry;
  Mutex.unlock registry_mutex

let record b phase name args =
  let raw = !clock () -. !base in
  let ts = if raw > b.last_ts then raw else b.last_ts in
  b.last_ts <- ts;
  b.events <- { name; phase; ts; tid = b.tid; args } :: b.events

let with_span ?(args = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let b = buffer () in
    record b Begin name args;
    Fun.protect ~finally:(fun () -> record b End name []) f
  end

(* Merged event list: each buffer chronologically, buffers interleaved by
   timestamp (stable, so same-timestamp events keep their buffer order). *)
let events () =
  let bufs =
    Mutex.lock registry_mutex;
    let bs = List.sort (fun a b -> compare a.tid b.tid) !registry in
    Mutex.unlock registry_mutex;
    bs
  in
  let all = List.concat_map (fun b -> List.rev b.events) bufs in
  List.stable_sort (fun a b -> compare a.ts b.ts) all

(* Chrome trace_event JSON (chrome://tracing, ui.perfetto.dev).  Field
   names and their order are pinned by the golden test in test_trace.ml:
   name, cat, ph, ts, pid, tid, then args only when present. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let event_to_json e =
  let b = Buffer.create 96 in
  Buffer.add_string b
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"compass\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":0,\"tid\":%d"
       (json_escape e.name)
       (match e.phase with Begin -> "B" | End -> "E")
       (e.ts *. 1e6) e.tid);
  if e.args <> [] then begin
    Buffer.add_string b ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
      e.args;
    Buffer.add_char b '}'
  end;
  Buffer.add_char b '}';
  Buffer.contents b

let to_chrome_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '\n';
      Buffer.add_string b (event_to_json e))
    (events ());
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let save_chrome path = Artifact.write_atomic path (to_chrome_json ())

(* Per-name aggregation for the text summary: count, total and max span
   duration, computed with a per-buffer stack walk (nesting is a stack
   discipline within one buffer by construction). *)
type span_stat = {
  span_name : string;
  count : int;
  total_s : float;
  max_s : float;
}

let summarize () =
  let stats : (string, int * float * float) Hashtbl.t = Hashtbl.create 32 in
  let bufs =
    Mutex.lock registry_mutex;
    let bs = !registry in
    Mutex.unlock registry_mutex;
    bs
  in
  List.iter
    (fun b ->
      let stack = ref [] in
      List.iter
        (fun e ->
          match e.phase with
          | Begin -> stack := (e.name, e.ts) :: !stack
          | End -> (
            match !stack with
            | (name, t0) :: rest when name = e.name ->
              stack := rest;
              let d = e.ts -. t0 in
              let count, total, mx =
                Option.value ~default:(0, 0., 0.) (Hashtbl.find_opt stats name)
              in
              Hashtbl.replace stats name (count + 1, total +. d, max mx d)
            | _ -> ()))
        (List.rev b.events))
    bufs;
  Hashtbl.fold
    (fun span_name (count, total_s, max_s) acc ->
      { span_name; count; total_s; max_s } :: acc)
    stats []
  |> List.sort (fun a b -> compare (b.total_s, a.span_name) (a.total_s, b.span_name))

let summary_table () =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "span"; "count"; "total"; "mean"; "max" ]
  in
  List.iter
    (fun s ->
      Table.add_row t
        [
          s.span_name;
          string_of_int s.count;
          Units.time_to_string s.total_s;
          Units.time_to_string (s.total_s /. float_of_int (max 1 s.count));
          Units.time_to_string s.max_s;
        ])
    (summarize ());
  t
