(* Deterministic fault injection ("failpoints") for chaos testing.

   Library code marks named fail sites with [guard]/[guard_write]; a
   schedule (from [COMPASS_FAILPOINTS] or [with_schedule]) arms rules
   that make chosen sites raise, simulate syscall errors, truncate
   payloads or delay.  Disabled — the default — every guard is a single
   atomic load, so guarded code pays nothing and behaves bit-identically
   to unguarded code (the bench [chaos] section pins the overhead).

   Armed, each guard takes a global mutex: firing decisions (hit
   counters, seeded Bernoulli draws) must be race-free because workers
   hit sites concurrently.  The enabled path is test-only machinery and
   is not performance-critical. *)

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected site -> Some (Printf.sprintf "injected failpoint %s fired" site)
    | _ -> None)

type action =
  | Raise
  | Errno of Unix.error
  | Truncate of int
  | Delay of float  (* seconds *)

type trigger =
  | Always
  | Once
  | Nth of int
  | Every of int
  | Prob of float * int  (* probability, seed *)

type rule = {
  r_site : string;  (* exact site, or a prefix ending in '*' *)
  r_action : action;
  r_trigger : trigger;
  r_rng : Rng.t option;  (* drawn under the mutex for [Prob] rules *)
  mutable r_hits : int;
  mutable r_fired : int;
}

let on = Atomic.make false
let mutex = Mutex.create ()
let rules : rule list ref = ref []
let spec_string : string option ref = ref None

(* Per-site guard counts, recorded while armed — lets tests assert a
   site was reached and the bench count guards per operation. *)
let observed : (string, int) Hashtbl.t = Hashtbl.create 32

let enabled () = Atomic.get on
let active () = !spec_string

(* {2 Spec parsing}

   spec    ::= clause (";" clause)*
   clause  ::= site "=" action ("@" trigger)?
   action  ::= "raise" | "enospc" | "eintr" | "eio"
             | "truncate:" BYTES | "delay:" MILLISECONDS
   trigger ::= "once" (default) | "always" | "nth:" K | "every:" K
             | "prob:" P ":" SEED                                     *)

let fail fmt = Printf.ksprintf (fun m -> invalid_arg ("failpoint spec: " ^ m)) fmt

let parse_action clause s =
  match String.index_opt s ':' with
  | None -> (
    match s with
    | "raise" -> Raise
    | "enospc" -> Errno Unix.ENOSPC
    | "eintr" -> Errno Unix.EINTR
    | "eio" -> Errno Unix.EIO
    | _ -> fail "unknown action %S in clause %S" s clause)
  | Some i -> (
    let key = String.sub s 0 i in
    let arg = String.sub s (i + 1) (String.length s - i - 1) in
    match key with
    | "truncate" -> (
      match int_of_string_opt arg with
      | Some n when n >= 0 -> Truncate n
      | _ -> fail "bad truncate byte count %S in clause %S" arg clause)
    | "delay" -> (
      match float_of_string_opt arg with
      | Some ms when ms >= 0. -> Delay (ms /. 1000.)
      | _ -> fail "bad delay (milliseconds) %S in clause %S" arg clause)
    | _ -> fail "unknown action %S in clause %S" key clause)

let parse_trigger clause s =
  match String.split_on_char ':' s with
  | [ "once" ] -> Once
  | [ "always" ] -> Always
  | [ "nth"; k ] -> (
    match int_of_string_opt k with
    | Some k when k >= 1 -> Nth k
    | _ -> fail "bad nth count %S in clause %S" k clause)
  | [ "every"; k ] -> (
    match int_of_string_opt k with
    | Some k when k >= 1 -> Every k
    | _ -> fail "bad every count %S in clause %S" k clause)
  | [ "prob"; p; seed ] -> (
    match (float_of_string_opt p, int_of_string_opt seed) with
    | Some p, Some seed when p >= 0. && p <= 1. -> Prob (p, seed)
    | _ -> fail "bad prob trigger %S (expected prob:P:SEED, 0<=P<=1) in clause %S" s clause)
  | _ -> fail "unknown trigger %S in clause %S" s clause

let parse_clause clause =
  let clause = String.trim clause in
  match String.index_opt clause '=' with
  | None -> fail "clause %S lacks '=' (expected site=action[@trigger])" clause
  | Some i ->
    let site = String.trim (String.sub clause 0 i) in
    if site = "" then fail "clause %S names no site" clause;
    let rest = String.sub clause (i + 1) (String.length clause - i - 1) in
    let action_s, trigger =
      match String.index_opt rest '@' with
      | None -> (String.trim rest, Once)
      | Some j ->
        ( String.trim (String.sub rest 0 j),
          parse_trigger clause
            (String.trim (String.sub rest (j + 1) (String.length rest - j - 1))) )
    in
    let action = parse_action clause action_s in
    let rng = match trigger with Prob (_, seed) -> Some (Rng.create seed) | _ -> None in
    { r_site = site; r_action = action; r_trigger = trigger; r_rng = rng;
      r_hits = 0; r_fired = 0 }

let parse spec =
  String.split_on_char ';' spec
  |> List.filter (fun c -> String.trim c <> "")
  |> List.map parse_clause

let clear () =
  Mutex.lock mutex;
  rules := [];
  spec_string := None;
  Hashtbl.reset observed;
  Mutex.unlock mutex;
  Atomic.set on false

let set spec =
  if String.trim spec = "" then clear ()
  else begin
    let rs = parse spec in
    Mutex.lock mutex;
    rules := rs;
    spec_string := Some spec;
    Hashtbl.reset observed;
    Mutex.unlock mutex;
    Atomic.set on true
  end

let with_schedule spec f =
  let previous = active () in
  set spec;
  Fun.protect
    ~finally:(fun () -> match previous with None -> clear () | Some s -> set s)
    f

let hits site =
  Mutex.lock mutex;
  let n = Option.value ~default:0 (Hashtbl.find_opt observed site) in
  Mutex.unlock mutex;
  n

let fired () =
  Mutex.lock mutex;
  let fs =
    List.filter_map
      (fun r -> if r.r_fired > 0 then Some (r.r_site, r.r_fired) else None)
      !rules
  in
  Mutex.unlock mutex;
  fs

let matches rule site =
  rule.r_site = site
  ||
  let n = String.length rule.r_site in
  n > 0
  && rule.r_site.[n - 1] = '*'
  && String.length site >= n - 1
  && String.sub site 0 (n - 1) = String.sub rule.r_site 0 (n - 1)

(* Decide, under the mutex, which action (if any) fires at [site]; the
   action itself (raise / sleep) runs outside the lock. *)
let decide site =
  Mutex.lock mutex;
  Hashtbl.replace observed site
    (1 + Option.value ~default:0 (Hashtbl.find_opt observed site));
  let fired_action =
    List.find_map
      (fun r ->
        if not (matches r site) then None
        else begin
          r.r_hits <- r.r_hits + 1;
          let fire =
            match r.r_trigger with
            | Always -> true
            | Once -> r.r_hits = 1
            | Nth k -> r.r_hits = k
            | Every k -> r.r_hits mod k = 0
            | Prob (p, _) -> (
              match r.r_rng with Some rng -> Rng.float rng 1. < p | None -> false)
          in
          if fire then begin
            r.r_fired <- r.r_fired + 1;
            Some r.r_action
          end
          else None
        end)
      !rules
  in
  Mutex.unlock mutex;
  fired_action

let act site = function
  | Raise -> raise (Injected site)
  | Errno e -> raise (Unix.Unix_error (e, "failpoint", site))
  | Delay s -> Unix.sleepf s
  | Truncate _ -> ()  (* payload truncation only applies at [guard_write] *)

let guard site =
  if Atomic.get on then
    match decide site with None -> () | Some action -> act site action

let guard_write site payload =
  if not (Atomic.get on) then payload
  else
    match decide site with
    | None -> payload
    | Some (Truncate n) -> String.sub payload 0 (min n (String.length payload))
    | Some action ->
      act site action;
      payload

(* A malformed COMPASS_FAILPOINTS must not crash program start-up (the
   CLI's --failpoints flag gives the located, exit-2 path); warn and run
   un-armed instead. *)
let () =
  match Sys.getenv_opt "COMPASS_FAILPOINTS" with
  | None | Some "" -> ()
  | Some spec -> (
    try set spec
    with Invalid_argument msg ->
      Printf.eprintf "compass: ignoring COMPASS_FAILPOINTS: %s\n%!" msg)
