(** Structured tracing: nested spans with monotonic timestamps, recorded
    into per-domain buffers and exported as Chrome [trace_event] JSON
    (loadable in [chrome://tracing] / Perfetto) or a text summary.

    Disabled — the default, unless the [COMPASS_TRACE] environment
    variable is set to anything other than ["0"] or the empty string —
    every entry point is a single atomic load, so instrumented code pays
    nothing and behaves bit-identically to uninstrumented code.  Enabled,
    each {!with_span} records a Begin/End event pair into the calling
    domain's buffer; buffers register themselves globally on first use,
    so spans recorded by {!Pool} worker domains are merged into the
    export after the pool's phase join.

    Tracing is pure observation: it never draws randomness and never
    feeds back into the computation it wraps. *)

type phase =
  | Begin
  | End

type event = {
  name : string;
  phase : phase;
  ts : float;  (** seconds since {!enable}, monotone within a buffer *)
  tid : int;  (** recording domain's id *)
  args : (string * string) list;
}

val enabled : unit -> bool

val enable : ?clock:(unit -> float) -> unit -> unit
(** Turn tracing on.  [clock] (default [Unix.gettimeofday]) is sampled
    once as the trace epoch; all event timestamps are relative to it.
    Tests inject a deterministic clock to pin golden output. *)

val disable : unit -> unit
(** Turn tracing off.  Recorded events are kept until {!reset}. *)

val reset : unit -> unit
(** Drop all recorded events (all buffers, all domains).  Call only while
    no worker domain is inside an instrumented region. *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] inside a span.  The End event is
    emitted even when [f] raises.  [args] attach key/value annotations to
    the Begin event.  When tracing is disabled this is exactly [f ()]. *)

val events : unit -> event list
(** All recorded events, merged across domain buffers and stably sorted
    by timestamp (same-timestamp events keep their per-buffer order). *)

val to_chrome_json : unit -> string
(** Chrome [trace_event] JSON: [{"traceEvents":[...]}] with one object
    per event carrying the fields [name], [cat], [ph] (["B"]/["E"]),
    [ts] (microseconds), [pid], [tid] and — Begin events only, when
    annotations were attached — [args].  Field names and order are pinned
    by a golden test; see docs/FORMATS.md. *)

val save_chrome : string -> unit
(** Atomically write {!to_chrome_json} to a file. *)

type span_stat = {
  span_name : string;
  count : int;
  total_s : float;
  max_s : float;
}

val summarize : unit -> span_stat list
(** Per-name aggregates over all completed spans, largest total first. *)

val summary_table : unit -> Table.t
(** {!summarize} rendered as a table: span, count, total, mean, max. *)
