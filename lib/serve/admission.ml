type 'a t = {
  queue : 'a Queue.t;
  high : int;
  low : int;
  mutable shedding : bool;
  mutable shed : int;
}

let create ?(high = 64) ?low () =
  let low = match low with Some l -> l | None -> max 1 (high / 2) in
  if not (1 <= low && low <= high) then
    invalid_arg
      (Printf.sprintf "Admission.create: need 1 <= low (%d) <= high (%d)" low high);
  { queue = Queue.create (); high; low; shedding = false; shed = 0 }

let depth t = Queue.length t.queue
let shedding t = t.shedding
let shed_count t = t.shed
let high t = t.high
let low t = t.low

let gauge t = Compass_util.Metrics.set "serve.queue_depth" (float_of_int (depth t))

let offer t x =
  if t.shedding && depth t < t.low then t.shedding <- false;
  if (not t.shedding) && depth t < t.high then begin
    Queue.push x t.queue;
    gauge t;
    true
  end
  else begin
    t.shedding <- true;
    t.shed <- t.shed + 1;
    Compass_util.Metrics.incr "serve.shed";
    false
  end

let pop t =
  match Queue.take_opt t.queue with
  | Some x ->
    if t.shedding && depth t < t.low then t.shedding <- false;
    gauge t;
    Some x
  | None -> None
