type state =
  | Closed
  | Open of float  (* absolute time the cooldown ends *)
  | Half_open  (* probe admitted, outcome pending *)

type cls = {
  mutable state : state;
  mutable consecutive_failures : int;
  mutable opens : int;  (* consecutive opens, drives cooldown doubling *)
}

type t = {
  threshold : int;
  cooldown_s : float;
  max_cooldown_s : float;
  now : unit -> float;
  rng : Compass_util.Rng.t;
  classes : (string, cls) Hashtbl.t;
}

let metric = Compass_util.Metrics.incr

let create ?(threshold = 5) ?(cooldown_s = 1.0) ?(max_cooldown_s = 60.) ?(seed = 0) ~now
    () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold < 1";
  if not (cooldown_s > 0.) then invalid_arg "Breaker.create: cooldown_s <= 0";
  {
    threshold;
    cooldown_s;
    max_cooldown_s;
    now;
    rng = Compass_util.Rng.create seed;
    classes = Hashtbl.create 8;
  }

let find t cls =
  match Hashtbl.find_opt t.classes cls with
  | Some c -> c
  | None ->
    let c = { state = Closed; consecutive_failures = 0; opens = 0 } in
    Hashtbl.add t.classes cls c;
    c

(* Doubling cooldown with seeded jitter in [1, 1.25): deterministic for
   a given seed, decorrelated across seeds. *)
let next_cooldown t c =
  let base = t.cooldown_s *. (2. ** float_of_int (min c.opens 16)) in
  let jitter = 1. +. (0.25 *. Compass_util.Rng.float t.rng 1.) in
  Float.min t.max_cooldown_s (base *. jitter)

let open_class t cls_name c =
  let cooldown = next_cooldown t c in
  c.state <- Open (t.now () +. cooldown);
  c.opens <- c.opens + 1;
  metric "serve.breaker.opened";
  Compass_util.Trace.with_span "serve.breaker.open"
    ~args:[ ("class", cls_name) ]
    (fun () -> ())

type decision =
  | Admit
  | Probe
  | Reject of string

let admit t cls_name =
  let c = find t cls_name in
  match c.state with
  | Closed -> Admit
  | Half_open ->
    metric "serve.breaker.rejected";
    Reject (Printf.sprintf "circuit for %s half-open: probe in flight" cls_name)
  | Open until ->
    if t.now () >= until then begin
      c.state <- Half_open;
      metric "serve.breaker.probes";
      Probe
    end
    else begin
      metric "serve.breaker.rejected";
      Reject
        (Printf.sprintf "circuit for %s open: %d consecutive failure(s)" cls_name
           c.consecutive_failures)
    end

let record t cls_name ~ok =
  let c = find t cls_name in
  if ok then begin
    if c.state <> Closed || c.consecutive_failures > 0 then
      metric "serve.breaker.closed";
    c.state <- Closed;
    c.consecutive_failures <- 0;
    c.opens <- 0
  end
  else begin
    c.consecutive_failures <- c.consecutive_failures + 1;
    match c.state with
    | Half_open -> open_class t cls_name c (* failed probe: straight back open *)
    | Closed ->
      if c.consecutive_failures >= t.threshold then open_class t cls_name c
    | Open _ -> ()
  end

let cancel_probe t cls_name =
  let c = find t cls_name in
  match c.state with
  | Half_open -> c.state <- Open (t.now ())
  | Closed | Open _ -> ()

let state_name t cls_name =
  match (find t cls_name).state with
  | Closed -> "closed"
  | Open _ -> "open"
  | Half_open -> "half_open"

let cooldown_remaining_s t cls_name =
  match (find t cls_name).state with
  | Open until -> Float.max 0. (until -. t.now ())
  | Closed | Half_open -> 0.
