(** Bounded admission queue with high/low watermark load-shedding.

    The serving runtime must reject work explicitly rather than let its
    queue grow without bound: past the {e high} watermark every offer is
    shed (the caller answers [rejected] with an [overloaded] note, so
    the client can back off), and shedding continues until the queue
    drains below the {e low} watermark — hysteresis, so a server hovering
    at the boundary flaps between accept-all and shed-all instead of
    shedding every other request.

    Depth and shed counts surface as [serve.queue_depth] (gauge) and
    [serve.shed] (counter) in {!Compass_util.Metrics}.  Single-domain
    use only (the serving loop owns it); not thread-safe. *)

type 'a t

val create : ?high:int -> ?low:int -> unit -> 'a t
(** [create ~high ~low ()] — defaults high 64, low [high / 2].  Raises
    [Invalid_argument] unless [1 <= low <= high]. *)

val offer : 'a t -> 'a -> bool
(** Enqueue, or [false] when the offer is shed (queue at the high
    watermark, or still draining toward the low one). *)

val pop : 'a t -> 'a option

val depth : 'a t -> int
val shedding : 'a t -> bool
val shed_count : 'a t -> int

val high : 'a t -> int
val low : 'a t -> int
