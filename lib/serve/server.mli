(** The resilient serving engine.

    A long-lived request loop over the COMPASS compiler: clients submit
    framed {!Protocol} request blocks ([compile] / [infer] / [verify] /
    [ping]); the server admits them through a bounded {!Admission}
    queue and a per-class {!Breaker}, executes them with a per-request
    {!Compass_util.Budget} deadline, retries transient failures
    ([Failpoint.Injected], simulated syscall errors, pool task crashes)
    with bounded backoff, and answers {e every} submitted request with
    exactly one response envelope — including malformed ones, shed
    ones, and ones still queued when the server drains.

    The engine itself is single-domain and synchronous ([submit] +
    [step]), so its behaviour under an injected clock and a seeded
    failpoint schedule is fully deterministic: the test suite scripts
    watermark shedding, deadline expiry, the breaker's
    open → half-open → closed trajectory and SIGTERM-style drains
    without sleeping, and a chaos soak pins that successful responses
    are byte-identical to a clean run.  Parallelism lives {e inside}
    requests: GA evaluation and batched inference fan out onto a
    supervised {!Compass_util.Pool} owned by the server.

    Request statuses:
    - [ok] — completed within its deadline;
    - [degraded] — a compile whose deadline expired mid-search: the
      response carries the best-so-far plan (still valid and
      verifiable), not the full search's answer;
    - [timeout] — the deadline expired while queued or between
      inference layers; work was cancelled, no payload;
    - [rejected] — shed at the watermark, breaker-open, or draining;
      no work was started;
    - [error] — malformed request, unknown names, or an execution
      failure that survived retrying.

    Observability: [serve.requests], [serve.responses],
    [serve.status.<status>], [serve.shed], [serve.retries],
    [serve.deadline_expired], [serve.queue_depth] (gauge),
    [serve.latency_s] (histogram → [.count]/[.p50]/[.p99]) and the
    [serve.breaker.*] counters, plus a [serve.request] trace span per
    executed request.  Failpoint site: [serve.request] (fires once per
    execution attempt). *)

type config = {
  queue_high : int;  (** shed at this queue depth (default 64) *)
  queue_low : int;  (** resume admitting below this depth (default 32) *)
  default_deadline_s : float option;
      (** applied when a request carries no [deadline] (default none) *)
  max_retries : int;  (** transient re-executions per request (default 2) *)
  retry_backoff_s : float;  (** initial backoff, doubles per retry *)
  breaker_threshold : int;  (** consecutive failures before opening *)
  breaker_cooldown_s : float;  (** initial open cooldown *)
  seed : int;  (** breaker jitter seed *)
  jobs : int;  (** worker domains for in-request parallelism *)
  clock : unit -> float;  (** injectable time source *)
  sleep : float -> unit;
      (** backoff hook; default [ignore] — the single-threaded loop
          must not wedge every queued request behind one retry wait *)
}

val default_config : config

type t

val create : ?config:config -> respond:(Protocol.response -> unit) -> unit -> t
(** [respond] is invoked exactly once per submitted request, on the
    engine's domain, in completion order. *)

val submit : t -> string list -> unit
(** Submit one framed request block (lines as {!Protocol.Framer.feed}
    returned them).  Parse failures, drains, breaker rejections and
    watermark sheds are answered immediately; admitted requests are
    answered by a later {!step}. *)

val submit_string : t -> string -> unit
(** [submit] on a newline-joined block — test convenience. *)

val step : t -> bool
(** Execute one queued request and respond; [false] when idle. *)

val pending : t -> int

val draining : t -> bool

val begin_drain : t -> unit
(** Stop admitting: every later [submit] answers [rejected] with a
    [draining] note.  Queued work is untouched — callers finish it with
    {!step}/{!drain}, deadlines still applying, so a drain bounded by
    request deadlines cannot hang. *)

val drain : t -> unit
(** {!begin_drain} + run every queued request to its response. *)

val close : t -> unit
(** Shut the worker pool down.  Idempotent; [submit]/[step] after
    [close] raise [Invalid_argument]. *)

val responded : t -> int
(** Responses emitted so far (the no-lost-request accounting). *)

val run_fd :
  t ->
  ?idle_timeout_s:float ->
  stop:(unit -> bool) ->
  Unix.file_descr ->
  [ `Eof | `Stopped ]
(** The wire loop: read request blocks from a file descriptor, feeding
    complete blocks to {!submit} and interleaving {!step} whenever no
    input is immediately available — so queued work proceeds while the
    client thinks, and a pipelined burst actually exercises the
    admission queue.  Returns on end-of-input ([`Eof]) or when [stop]
    first observes true ([`Stopped], the signal-driven drain; polled
    between reads).  A torn trailing block is answered with an [error]
    envelope — even EOF mid-request leaks no response.  The caller
    still runs {!drain} afterwards.  [idle_timeout_s] (default 0.05)
    bounds the select wait when idle. *)
