open Compass_util
module Compiler = Compass_core.Compiler
module Plan_text = Compass_core.Plan_text
module Verify = Compass_core.Verify
module Fitness = Compass_core.Fitness
module Ga = Compass_core.Ga
module Executor = Compass_nn.Executor
module Tensor = Compass_nn.Tensor
module Shape = Compass_nn.Shape

type config = {
  queue_high : int;
  queue_low : int;
  default_deadline_s : float option;
  max_retries : int;
  retry_backoff_s : float;
  breaker_threshold : int;
  breaker_cooldown_s : float;
  seed : int;
  jobs : int;
  clock : unit -> float;
  sleep : float -> unit;
}

let default_config =
  {
    queue_high = 64;
    queue_low = 32;
    default_deadline_s = None;
    max_retries = 2;
    retry_backoff_s = 0.01;
    breaker_threshold = 5;
    breaker_cooldown_s = 1.0;
    seed = 0;
    jobs = 1;
    clock = Unix.gettimeofday;
    sleep = ignore;
  }

type pending = {
  req : Protocol.request;
  admitted_at : float;
  budget : Budget.t option;
  probe : bool;
}

type t = {
  cfg : config;
  respond : Protocol.response -> unit;
  queue : pending Admission.t;
  breaker : Breaker.t;
  pool : Pool.t option;
  mutable state : [ `Running | `Draining | `Closed ];
  mutable responses : int;
}

let create ?(config = default_config) ~respond () =
  if config.max_retries < 0 then invalid_arg "Server.create: max_retries < 0";
  if config.jobs < 1 then invalid_arg "Server.create: jobs < 1";
  if not (config.retry_backoff_s >= 0.) then
    invalid_arg "Server.create: retry_backoff_s < 0";
  {
    cfg = config;
    respond;
    queue = Admission.create ~high:config.queue_high ~low:config.queue_low ();
    breaker =
      Breaker.create ~threshold:config.breaker_threshold
        ~cooldown_s:config.breaker_cooldown_s ~seed:config.seed ~now:config.clock ();
    pool = (if config.jobs > 1 then Some (Pool.create ~jobs:config.jobs) else None);
    state = `Running;
    responses = 0;
  }

let pending t = Admission.depth t.queue
let draining t = t.state = `Draining
let responded t = t.responses

let check_live t what =
  if t.state = `Closed then invalid_arg ("Server." ^ what ^ ": server is closed")

let one_line s = String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

let emit t (resp : Protocol.response) =
  t.responses <- t.responses + 1;
  Metrics.incr "serve.responses";
  Metrics.incr ("serve.status." ^ Protocol.status_to_string resp.status);
  Metrics.observe "serve.latency_s" resp.elapsed_s;
  t.respond resp

let finish t ~id ~since status note body =
  emit t
    {
      Protocol.r_id = id;
      status;
      elapsed_s = Float.max 0. (t.cfg.clock () -. since);
      note = Option.map one_line note;
      body;
    }

(* Best-effort id for answering blocks that failed to parse: trust the
   header token only when it has the id shape, else "-". *)
let header_id lines =
  match lines with
  | first :: _ -> (
    match
      String.split_on_char ' ' (String.trim first)
      |> List.filter (fun s -> s <> "")
    with
    | "request" :: id :: _ when Protocol.valid_id id -> id
    | _ -> "-")
  | [] -> "-"

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)

(* User-class failures: bad names, bad payloads.  Never retried. *)
exception User_error of string

let user fmt = Printf.ksprintf (fun m -> raise (User_error m)) fmt

let lookup_model name =
  try Compass_nn.Models.by_name name
  with Not_found | Invalid_argument _ -> user "unknown model %s" name

let lookup_chip label =
  try Compass_arch.Config.by_label label
  with Not_found | Invalid_argument _ -> user "unknown chip %s" label

let body_of_plan plan =
  match List.rev (String.split_on_char '\n' (Plan_text.to_string plan)) with
  | "" :: rev -> List.rev rev
  | rev -> List.rev rev

let tensor_sum out =
  Array.fold_left ( +. ) 0. (Tensor.to_array out)

(* Digest over the exact bit patterns, so the soak test's byte-for-byte
   comparison inherits the executor's bit-identical guarantee. *)
let tensor_digest out =
  let data = Tensor.to_array out in
  let b = Buffer.create (8 * Array.length data) in
  Array.iter (fun v -> Buffer.add_int64_le b (Int64.bits_of_float v)) data;
  Digest.to_hex (Digest.string (Buffer.contents b))

let supervision_for t (p : pending) =
  Pool.supervision ~retries:t.cfg.max_retries ?watchdog:p.budget ()

let execute_kind t (p : pending) : Protocol.status * string option * string list =
  let req = p.req in
  match req.kind with
  | Protocol.Ping -> (Protocol.Ok, None, [ "pong" ])
  | Protocol.Compile ->
    let model = lookup_model req.model in
    let chip = lookup_chip req.chip in
    if req.batch < 1 then user "batch must be >= 1 (got %d)" req.batch;
    let scheme =
      try Compiler.scheme_of_string req.scheme
      with Invalid_argument m -> user "%s" m
    in
    let objective =
      try Fitness.objective_of_string req.objective
      with Invalid_argument m -> user "%s" m
    in
    let base = if req.quick then Ga.quick_params else Ga.default_params in
    let ga_params = { base with Ga.seed = req.seed; jobs = t.cfg.jobs } in
    let plan =
      Compiler.compile ~objective ~ga_params ?budget:p.budget
        ~supervision:(supervision_for t p) ~model ~chip ~batch:req.batch scheme
    in
    if plan.Compiler.budget_exhausted then
      ( Protocol.Degraded,
        Some "deadline expired mid-search: plan is best-so-far",
        body_of_plan plan )
    else (Protocol.Ok, None, body_of_plan plan)
  | Protocol.Infer ->
    let model = lookup_model req.model in
    if req.batch < 1 then user "batch must be >= 1 (got %d)" req.batch;
    let weights = Executor.random_weights ~seed:req.seed model in
    let inputs =
      Array.init req.batch (fun i ->
          Executor.random_input ~seed:(req.seed + 100 + i) model)
    in
    let outputs =
      Executor.output_batch ?budget:p.budget ?pool:t.pool
        ~supervision:(supervision_for t p) model weights inputs
    in
    let body =
      Array.to_list
        (Array.mapi
           (fun i out ->
             Printf.sprintf "output %d shape %s sum %s digest %s" i
               (Shape.to_string (Tensor.shape out))
               (Artifact.float_token (tensor_sum out))
               (tensor_digest out))
           outputs)
    in
    (Protocol.Ok, None, body)
  | Protocol.Verify ->
    if req.payload = [] then user "verify: missing payload (archived plan text)";
    let plan =
      try Plan_text.of_string (String.concat "\n" req.payload ^ "\n")
      with Plan_text.Load_error m -> user "plan: %s" m
    in
    let violations = Verify.check plan in
    let body =
      Printf.sprintf "violations %d" (List.length violations)
      :: List.map Verify.render_violation violations
    in
    let note =
      if violations = [] then None
      else Some "plan violates invariants (see payload)"
    in
    (Protocol.Ok, note, body)

let transient_reason = function
  | Failpoint.Injected site -> Some ("failpoint at " ^ site)
  | Pool.Task_error { index; worker; attempts; error } ->
    Some
      (Printf.sprintf "pool task %d on worker %d failed after %d attempt(s): %s"
         index worker attempts (Printexc.to_string error))
  | Unix.Unix_error (e, fn, _) ->
    Some (Printf.sprintf "syscall %s: %s" fn (Unix.error_message e))
  | _ -> None

let execute t (p : pending) =
  let req = p.req in
  let cls = Protocol.kind_to_string req.kind in
  let finish status note body =
    finish t ~id:req.id ~since:p.admitted_at status note body;
    (* Pings bypass the breaker on admission, so don't feed it either. *)
    if req.kind <> Protocol.Ping then
      Breaker.record t.breaker cls ~ok:(status <> Protocol.Error)
  in
  let expired () =
    match p.budget with Some b -> Budget.expired b | None -> false
  in
  if expired () then finish Protocol.Timeout (Some "deadline expired while queued") []
  else
    Trace.with_span "serve.request"
      ~args:[ ("id", req.id); ("kind", cls) ]
      (fun () ->
        let rec attempt k =
          match
            Failpoint.guard "serve.request";
            execute_kind t p
          with
          | status, note, body -> finish status note body
          | exception Executor.Cancelled ->
            finish Protocol.Timeout
              (Some "deadline expired during inference (cancelled between layers)")
              []
          | exception User_error msg -> finish Protocol.Error (Some msg) []
          | exception e -> (
            match transient_reason e with
            | Some reason ->
              if expired () then
                finish Protocol.Timeout
                  (Some ("deadline expired while retrying: " ^ reason))
                  []
              else if k >= t.cfg.max_retries then
                finish Protocol.Error
                  (Some
                     (Printf.sprintf "%s (gave up after %d attempt(s))" reason
                        (k + 1)))
                  []
              else begin
                Metrics.incr "serve.retries";
                t.cfg.sleep (t.cfg.retry_backoff_s *. (2. ** float_of_int k));
                attempt (k + 1)
              end
            | None -> finish Protocol.Error (Some (Printexc.to_string e)) [])
        in
        attempt 0)

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)

let submit t lines =
  check_live t "submit";
  Metrics.incr "serve.requests";
  let now = t.cfg.clock () in
  match Protocol.parse_request lines with
  | Error msg -> finish t ~id:(header_id lines) ~since:now Protocol.Error (Some msg) []
  | Ok req ->
    if req.kind = Protocol.Ping then
      (* Health checks bypass the queue and the breaker: a drowning or
         draining server still answers them (with a telltale note). *)
      finish t ~id:req.id ~since:now Protocol.Ok
        (if t.state = `Draining then Some "draining" else None)
        [ "pong" ]
    else if t.state = `Draining then
      finish t ~id:req.id ~since:now Protocol.Rejected
        (Some "draining: not admitting new work")
        []
    else begin
      let cls = Protocol.kind_to_string req.kind in
      match Breaker.admit t.breaker cls with
      | Breaker.Reject reason ->
        finish t ~id:req.id ~since:now Protocol.Rejected (Some reason) []
      | (Breaker.Admit | Breaker.Probe) as decision ->
        let deadline =
          match req.deadline_s with
          | Some _ as d -> d
          | None -> t.cfg.default_deadline_s
        in
        let budget =
          Option.map
            (fun d ->
              let b = Budget.of_deadline ~now:t.cfg.clock d in
              Budget.on_expiry b (fun () -> Metrics.incr "serve.deadline_expired");
              b)
            deadline
        in
        let p =
          { req; admitted_at = now; budget; probe = decision = Breaker.Probe }
        in
        if not (Admission.offer t.queue p) then begin
          if p.probe then Breaker.cancel_probe t.breaker cls;
          finish t ~id:req.id ~since:now Protocol.Rejected
            (Some
               (Printf.sprintf "overloaded: queue at high watermark (%d)"
                  (Admission.high t.queue)))
            []
        end
    end

let submit_string t s =
  let f = Protocol.Framer.create () in
  List.iter
    (fun line ->
      match Protocol.Framer.feed f line with
      | Some block -> submit t block
      | None -> ())
    (String.split_on_char '\n' s);
  if Protocol.Framer.partial f then
    invalid_arg "Server.submit_string: unterminated request block (missing end)"

let step t =
  check_live t "step";
  match Admission.pop t.queue with
  | None -> false
  | Some p ->
    execute t p;
    true

let begin_drain t = if t.state = `Running then t.state <- `Draining

let drain t =
  check_live t "drain";
  begin_drain t;
  while step t do
    ()
  done

let close t =
  if t.state <> `Closed then begin
    Option.iter Pool.shutdown t.pool;
    t.state <- `Closed
  end

(* ------------------------------------------------------------------ *)
(* Wire loop                                                           *)

let run_fd t ?(idle_timeout_s = 0.05) ~stop fd =
  check_live t "run_fd";
  let framer = Protocol.Framer.create () in
  let carry = Buffer.create 256 in
  let buf = Bytes.create 4096 in
  let feed_chunk s =
    String.iter
      (fun ch ->
        if ch = '\n' then begin
          let line = Buffer.contents carry in
          Buffer.clear carry;
          match Protocol.Framer.feed framer line with
          | Some block -> submit t block
          | None -> ()
        end
        else if ch <> '\r' then Buffer.add_char carry ch)
      s
  in
  let readable timeout =
    match Unix.select [ fd ] [] [] timeout with
    | [ _ ], _, _ -> true
    | _ -> false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
  in
  let torn_eof () =
    if Protocol.Framer.partial framer || Buffer.length carry > 0 then
      emit t
        {
          Protocol.r_id = "-";
          status = Protocol.Error;
          elapsed_s = 0.;
          note = Some "truncated request block at end of input";
          body = [];
        }
  in
  let rec loop () =
    if stop () then `Stopped
    else if readable 0. then begin
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 ->
        torn_eof ();
        `Eof
      | n ->
        feed_chunk (Bytes.sub_string buf 0 n);
        loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    end
    else if step t then loop ()
    else begin
      ignore (readable idle_timeout_s);
      loop ()
    end
  in
  loop ()
