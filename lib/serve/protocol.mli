(** The serving wire protocol: newline-delimited request and response
    blocks, reusing the token conventions of [Plan_text]/[Model_text]
    (one [key value] pair per line, floats via
    {!Compass_util.Artifact.float_token} so they round-trip
    bit-exactly).

    A request block:

    {v
    request <id> <kind>        kind: compile | infer | verify | ping
    model resnet18             (compile/infer; zoo name)
    chip S                     (compile; S, M or L)
    batch 4
    scheme compass             (compile; compass/greedy/layerwise/dp)
    objective latency
    deadline 2.5               (seconds; optional)
    seed 7                     (infer weights/input seed)
    quick false                (compile; full GA instead of quick params)
    payload 3                  (verify; next 3 lines are raw payload)
    <raw line 1>
    <raw line 2>
    <raw line 3>
    end
    v}

    Every line before [end] except raw payload lines is a [key value]
    pair; unknown keys are a parse error (better a located rejection
    than a silently ignored typo).  The [payload <n>] line switches the
    framer into counted raw mode, so payload lines — archived plan text
    for [verify] — can contain anything, including ["end"].

    A response block mirrors the shape; the grammar is documented in
    docs/FORMATS.md and pinned by tests:

    {v
    response <id> <status>     status: ok | degraded | rejected |
    elapsed 0.0021                     timeout | error
    note <one-line diagnostic> (optional)
    payload <n>                (optional)
    <n raw lines>
    end
    v}

    Parsing never raises on malformed input — both directions return
    [result] with a located one-line diagnostic — so a hostile client
    cannot crash the daemon with a bad block. *)

type kind =
  | Compile
  | Infer
  | Verify
  | Ping

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

val valid_id : string -> bool
(** 1–64 chars of [A-Za-z0-9._:-] — the token shape request ids must
    have (no spaces, so ids never break the line grammar). *)

type request = {
  id : string;  (** client-chosen token; echoed on the response *)
  kind : kind;
  model : string;
  chip : string;
  batch : int;
  scheme : string;
  objective : string;
  deadline_s : float option;
  seed : int;
  quick : bool;
  payload : string list;
}

val default_request : request
(** [ping] with id ["-"], model [lenet5], chip [S], batch 1, scheme
    [compass], objective [latency], no deadline, seed 0, quick. *)

val parse_request : string list -> (request, string) result
(** Parse one framed block (the lines {!Framer.feed} returned,
    including the [request] header, excluding the [end] line).  [Error]
    carries a one-line diagnostic prefixed with ["line N: "] where
    possible. *)

val request_to_lines : request -> string list
(** Render a request as a block (including the trailing [end]) — the
    client side, used by tests and the tutorial example. *)

type status =
  | Ok  (** completed within its deadline *)
  | Degraded  (** deadline expired mid-search; payload is best-so-far *)
  | Rejected  (** load-shed, breaker-open, or draining — no work done *)
  | Timeout  (** deadline expired before useful work completed *)
  | Error  (** malformed request or failed execution *)

val status_to_string : status -> string
val status_of_string : string -> status option

type response = {
  r_id : string;
  status : status;
  elapsed_s : float;  (** admission-to-response, on the server's clock *)
  note : string option;  (** one-line diagnostic, never multi-line *)
  body : string list;  (** raw payload lines *)
}

val response_to_string : response -> string
(** The full block, [end]-terminated, newline-terminated. *)

val parse_response : string -> (response, string) result
(** Client-side parse of one response block (with or without the
    trailing [end]/newline). *)

(** Incremental framing of request blocks from a line stream.  The
    framer owns the payload-counting state, so the wire loop can feed
    lines as they arrive and gets back exactly one complete block per
    [end]. *)
module Framer : sig
  type t

  val create : unit -> t

  val feed : t -> string -> string list option
  (** Feed one line (without its newline).  Returns [Some block] — the
      accumulated lines, excluding the terminating [end] — when the line
      completes a block.  Blank lines between blocks are ignored. *)

  val partial : t -> bool
  (** Whether a block is currently mid-accumulation (a torn final
      request at EOF is detectable, and answerable, by the caller). *)
end
