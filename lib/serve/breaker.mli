(** Per-request-class circuit breakers.

    A class (one per request kind: [compile], [infer], [verify]) that
    keeps failing stops being worth executing: after [threshold]
    {e consecutive} failures the breaker {e opens} and requests of that
    class are rejected immediately — protecting the queue for classes
    that still work, and giving whatever is wrong (a failpoint storm, a
    poisoned model cache) time to clear.  After a cooldown the breaker
    goes {e half-open}: exactly one probe request is admitted, and its
    outcome decides — success closes the breaker, failure re-opens it
    with a doubled cooldown (capped, with a seeded jitter so a fleet of
    servers doesn't re-probe in lockstep; the draw sequence is
    deterministic for a given seed).

    Time comes from the injected [now] clock, so tests script the whole
    open → half-open → closed trajectory without sleeping.  Transitions
    surface as [serve.breaker.opened] / [.probes] / [.closed] /
    [.rejected] counters.  Single-domain use; not thread-safe. *)

type t

type decision =
  | Admit  (** breaker closed *)
  | Probe  (** cooldown over: this request is the half-open probe *)
  | Reject of string  (** open (or probe in flight); the reason, one line *)

val create :
  ?threshold:int ->
  ?cooldown_s:float ->
  ?max_cooldown_s:float ->
  ?seed:int ->
  now:(unit -> float) ->
  unit ->
  t
(** Defaults: threshold 5 consecutive failures, cooldown 1.0 s doubling
    up to [max_cooldown_s] (default 60 s), jitter seeded with [seed]
    (default 0).  Raises [Invalid_argument] on a threshold < 1 or
    non-positive cooldown. *)

val admit : t -> string -> decision
(** [admit t cls] — consult the breaker for one request of class [cls].
    [Reject] bumps [serve.breaker.rejected]. *)

val record : t -> string -> ok:bool -> unit
(** Report the outcome of an admitted (or probe) request of class
    [cls].  Success closes the class; failure counts toward the
    threshold, and fails an in-flight probe straight back to open. *)

val cancel_probe : t -> string -> unit
(** An admitted probe that never executed (shed at the admission queue,
    dropped at drain) must not leave its class stuck half-open with no
    outcome ever coming: re-open it with the cooldown already elapsed,
    so the next [admit] probes again.  No-op unless half-open. *)

val state_name : t -> string -> string
(** ["closed"], ["open"] or ["half_open"] — for tests and gauges. *)

val cooldown_remaining_s : t -> string -> float
(** Seconds until an open class half-opens; 0 otherwise. *)
