type kind =
  | Compile
  | Infer
  | Verify
  | Ping

let kind_to_string = function
  | Compile -> "compile"
  | Infer -> "infer"
  | Verify -> "verify"
  | Ping -> "ping"

let kind_of_string = function
  | "compile" -> Some Compile
  | "infer" -> Some Infer
  | "verify" -> Some Verify
  | "ping" -> Some Ping
  | _ -> None

type request = {
  id : string;
  kind : kind;
  model : string;
  chip : string;
  batch : int;
  scheme : string;
  objective : string;
  deadline_s : float option;
  seed : int;
  quick : bool;
  payload : string list;
}

let default_request =
  {
    id = "-";
    kind = Ping;
    model = "lenet5";
    chip = "S";
    batch = 1;
    scheme = "compass";
    objective = "latency";
    deadline_s = None;
    seed = 0;
    quick = true;
    payload = [];
  }

(* An id is echoed into the response header, so it must stay a single
   token: no whitespace, bounded length. *)
let valid_id id =
  let n = String.length id in
  n >= 1 && n <= 64
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | ':' -> true
         | _ -> false)
       id

let split_kv line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
    (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))

let parse_request lines =
  let err n msg = Error (Printf.sprintf "line %d: %s" n msg) in
  match lines with
  | [] -> Error "empty request block"
  | header :: rest -> (
    match String.split_on_char ' ' header with
    | [ "request"; id; kind ] -> (
      if not (valid_id id) then
        err 1 "request id must be 1-64 characters of [A-Za-z0-9._:-]"
      else
        match kind_of_string kind with
        | None ->
          err 1
            (Printf.sprintf "unknown request kind %s (try compile, infer, verify, ping)"
               kind)
        | Some kind ->
          let r = ref { default_request with id; kind } in
          let rec fields n = function
            | [] -> Result.Ok !r
            | line :: tl -> (
              let key, v = split_kv line in
              let int_field name set =
                match int_of_string_opt v with
                | Some x -> set x; fields (n + 1) tl
                | None -> err n (Printf.sprintf "%s: expected an integer, got %S" name v)
              in
              match key with
              | "model" when v <> "" -> r := { !r with model = v }; fields (n + 1) tl
              | "chip" when v <> "" -> r := { !r with chip = v }; fields (n + 1) tl
              | "scheme" when v <> "" -> r := { !r with scheme = v }; fields (n + 1) tl
              | "objective" when v <> "" ->
                r := { !r with objective = v };
                fields (n + 1) tl
              | "batch" -> int_field "batch" (fun x -> r := { !r with batch = x })
              | "seed" -> int_field "seed" (fun x -> r := { !r with seed = x })
              | "deadline" -> (
                match float_of_string_opt v with
                | Some s when s >= 0. && not (Float.is_nan s) ->
                  r := { !r with deadline_s = Some s };
                  fields (n + 1) tl
                | Some _ | None ->
                  err n (Printf.sprintf "deadline: expected seconds >= 0, got %S" v))
              | "quick" -> (
                match bool_of_string_opt v with
                | Some b -> r := { !r with quick = b }; fields (n + 1) tl
                | None -> err n (Printf.sprintf "quick: expected true/false, got %S" v))
              | "payload" -> (
                match int_of_string_opt v with
                | Some count when count >= 0 && count = List.length tl ->
                  r := { !r with payload = tl };
                  Result.Ok !r
                | Some count ->
                  err n
                    (Printf.sprintf "payload: declared %d line(s), block carries %d"
                       count (List.length tl))
                | None -> err n (Printf.sprintf "payload: expected a count, got %S" v))
              | _ -> err n (Printf.sprintf "unknown request field %S" key))
          in
          fields 2 rest)
    | "request" :: _ -> err 1 "expected: request <id> <kind>"
    | _ -> err 1 (Printf.sprintf "expected a request header, got %S" header))

let request_to_lines r =
  let base =
    [
      Printf.sprintf "request %s %s" r.id (kind_to_string r.kind);
      "model " ^ r.model;
      "chip " ^ r.chip;
      Printf.sprintf "batch %d" r.batch;
      "scheme " ^ r.scheme;
      "objective " ^ r.objective;
      Printf.sprintf "seed %d" r.seed;
      Printf.sprintf "quick %b" r.quick;
    ]
  in
  let deadline =
    match r.deadline_s with
    | None -> []
    | Some s -> [ "deadline " ^ Compass_util.Artifact.float_token s ]
  in
  let payload =
    match r.payload with
    | [] -> []
    | lines -> Printf.sprintf "payload %d" (List.length lines) :: lines
  in
  base @ deadline @ payload @ [ "end" ]

type status =
  | Ok
  | Degraded
  | Rejected
  | Timeout
  | Error

let status_to_string = function
  | Ok -> "ok"
  | Degraded -> "degraded"
  | Rejected -> "rejected"
  | Timeout -> "timeout"
  | Error -> "error"

let status_of_string = function
  | "ok" -> Some Ok
  | "degraded" -> Some Degraded
  | "rejected" -> Some Rejected
  | "timeout" -> Some Timeout
  | "error" -> Some Error
  | _ -> None

type response = {
  r_id : string;
  status : status;
  elapsed_s : float;
  note : string option;
  body : string list;
}

(* A note is a single line of the envelope: collapse any embedded
   newlines from exception messages rather than corrupting the frame. *)
let one_line s = String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

let response_to_string r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "response %s %s\n" r.r_id (status_to_string r.status));
  Buffer.add_string b
    ("elapsed " ^ Compass_util.Artifact.float_token r.elapsed_s ^ "\n");
  (match r.note with
  | Some note -> Buffer.add_string b ("note " ^ one_line note ^ "\n")
  | None -> ());
  (match r.body with
  | [] -> ()
  | body ->
    Buffer.add_string b (Printf.sprintf "payload %d\n" (List.length body));
    List.iter
      (fun line ->
        Buffer.add_string b line;
        Buffer.add_char b '\n')
      body);
  Buffer.add_string b "end\n";
  Buffer.contents b

let parse_response text =
  let err n msg = Result.Error (Printf.sprintf "line %d: %s" n msg) in
  let lines =
    String.split_on_char '\n' text
    |> List.filter_map (fun l ->
           let l = if String.length l > 0 && l.[String.length l - 1] = '\r' then
               String.sub l 0 (String.length l - 1)
             else l
           in
           Some l)
  in
  let lines =
    (* Drop a trailing empty line from the final newline, and the [end]. *)
    let rec strip = function
      | [ "" ] | [ "end" ] | [ "end"; "" ] -> []
      | x :: tl -> x :: strip tl
      | [] -> []
    in
    strip lines
  in
  match lines with
  | [] -> Result.Error "empty response"
  | header :: rest -> (
    match String.split_on_char ' ' header with
    | [ "response"; id; st ] -> (
      match status_of_string st with
      | None -> err 1 (Printf.sprintf "unknown status %S" st)
      | Some status ->
        let r = ref { r_id = id; status; elapsed_s = 0.; note = None; body = [] } in
        let rec fields n = function
          | [] -> Result.Ok !r
          | line :: tl -> (
            let key, v = split_kv line in
            match key with
            | "elapsed" -> (
              match float_of_string_opt v with
              | Some s -> r := { !r with elapsed_s = s }; fields (n + 1) tl
              | None -> err n (Printf.sprintf "elapsed: bad float %S" v))
            | "note" -> r := { !r with note = Some v }; fields (n + 1) tl
            | "payload" -> (
              match int_of_string_opt v with
              | Some count when count = List.length tl ->
                r := { !r with body = tl };
                Result.Ok !r
              | Some count ->
                err n
                  (Printf.sprintf "payload: declared %d line(s), block carries %d" count
                     (List.length tl))
              | None -> err n (Printf.sprintf "payload: expected a count, got %S" v))
            | _ -> err n (Printf.sprintf "unknown response field %S" key))
        in
        fields 2 rest)
    | _ -> err 1 (Printf.sprintf "expected a response header, got %S" header))

module Framer = struct
  type t = {
    mutable acc : string list;  (* reversed lines of the current block *)
    mutable raw_left : int;  (* payload lines still owed to the block *)
    mutable in_block : bool;
  }

  let create () = { acc = []; raw_left = 0; in_block = false }
  let partial t = t.in_block

  let finish t =
    let block = List.rev t.acc in
    t.acc <- [];
    t.raw_left <- 0;
    t.in_block <- false;
    Some block

  let feed t line =
    if t.raw_left > 0 then begin
      t.acc <- line :: t.acc;
      t.raw_left <- t.raw_left - 1;
      None
    end
    else if (not t.in_block) && String.trim line = "" then None
    else if line = "end" then
      if t.in_block then finish t
      else None (* stray [end] between blocks: ignore *)
    else begin
      t.in_block <- true;
      t.acc <- line :: t.acc;
      (match split_kv line with
      | "payload", v -> (
        match int_of_string_opt v with
        | Some n when n > 0 -> t.raw_left <- n
        | Some _ | None -> ())
      | _ -> ());
      None
    end
end
