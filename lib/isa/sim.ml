open Compass_arch

type fault_kind =
  | Fail_stop
  | Transient

type fault_event = {
  at_s : float;
  victim : int;
  kind : fault_kind;
}

let fail_stop ~at_s ~victim = { at_s; victim; kind = Fail_stop }
let transient ~at_s ~victim = { at_s; victim; kind = Transient }

type event = {
  core : int;
  label : string;
  start_s : float;
  finish_s : float;
}

type result = {
  makespan_s : float;
  core_finish_s : (int * float) list;
  bus_busy_s : float;
  dram_trace : Compass_dram.Trace.record list;
  mvm_macro_ops : float;
  vfu_ops : float;
  weight_bytes : float;
  load_bytes : float;
  store_bytes : float;
  energy_components : (string * float) list;
  energy_j : float;
  events : event list;
  dead_cores : int list;
  dropped_instructions : int;
  checks_run : int;
  detections : int;
  retried_mvms : int;
  retry_time_s : float;
}

exception Deadlock of string

let label_of = function
  | Instr.Weight_write _ -> "weight_write"
  | Instr.Load _ -> "load"
  | Instr.Store _ -> "store"
  | Instr.Mvm _ -> "mvm"
  | Instr.Vfu _ -> "vfu"
  | Instr.Send _ -> "send"
  | Instr.Recv _ -> "recv"
  | Instr.Sync _ -> "sync"
  | Instr.Check _ -> "check"

type core_state = {
  id : int;
  mutable time : float;
  mutable rest : Instr.t list;
  mutable dead : bool;
  mutable last_mvm_s : float;  (* duration of the most recent Mvm; retry cost *)
  mutable transients : float list;  (* un-detected transient strike times *)
}

type barrier = {
  mutable arrived : (int * float) list;
  mutable released : float option;
}

type shared = {
  chip : Config.chip;
  mutable bus_free : float;
  mutable bus_busy : float;
  mutable dram_free : float;
  channels : (int * int * int, float Queue.t) Hashtbl.t; (* channel, src, dst *)
  barriers : (int, barrier) Hashtbl.t;
  mutable trace_rev : Compass_dram.Trace.record list;
  mutable mvm_macro_ops : float;
  mutable vfu_ops : float;
  mutable weight_bytes : float;
  mutable load_bytes : float;
  mutable store_bytes : float;
  mutable checks_run : int;
  mutable detections : int;
  mutable retried_mvms : int;
  mutable retry_time_s : float;
}

(* Acquire the bus at or after [t] for a transfer of [bytes]; returns the
   grant time and transfer duration. *)
let bus_acquire shared ~t ~bytes =
  let grant = max t shared.bus_free in
  let dur = Interconnect.transfer_time_s shared.chip.Config.bus ~bytes in
  shared.bus_free <- grant +. dur;
  shared.bus_busy <- shared.bus_busy +. dur;
  (grant, dur)

(* A bus + DRAM transfer: the two resources pipeline for one request but
   each serializes across requests, so a transfer occupies both cursors. *)
let external_transfer shared ~t ~bytes ~addr ~tag ~is_store =
  let record =
    if is_store then Compass_dram.Trace.write ~tag ~addr ~bytes:(int_of_float bytes) ()
    else Compass_dram.Trace.read ~tag ~addr ~bytes:(int_of_float bytes) ()
  in
  shared.trace_rev <- record :: shared.trace_rev;
  let grant, bus_dur = bus_acquire shared ~t ~bytes in
  let dram_dur = Compass_dram.Dram.analytic_seconds bytes in
  let dram_grant = max grant shared.dram_free in
  let dram_done = dram_grant +. dram_dur in
  shared.dram_free <- dram_done;
  max (grant +. bus_dur) dram_done

type step =
  | Done of float
  | Blocked

let execute shared core instr =
  let chip = shared.chip in
  let xbar = chip.Config.crossbar in
  match instr with
  | Instr.Weight_write { macro_count; bytes; addr; tag } ->
    (* Replica-only writers fetch nothing (broadcast): program time only. *)
    let fetched =
      if bytes >= 1. then begin
        shared.weight_bytes <- shared.weight_bytes +. bytes;
        external_transfer shared ~t:core.time ~bytes ~addr ~tag ~is_store:false
      end
      else core.time
    in
    (* Row programming streams behind the fetch; macros of a core program
       serially, so the drain is the full per-macro write time. *)
    let program = float_of_int macro_count *. Crossbar.write_latency_s xbar in
    Done (max fetched (core.time +. program))
  | Instr.Load { bytes; addr; tag } ->
    if bytes < 1. then Done core.time
    else begin
      shared.load_bytes <- shared.load_bytes +. bytes;
      Done (external_transfer shared ~t:core.time ~bytes ~addr ~tag ~is_store:false)
    end
  | Instr.Store { bytes; addr; tag } ->
    if bytes < 1. then Done core.time
    else begin
      shared.store_bytes <- shared.store_bytes +. bytes;
      Done (external_transfer shared ~t:core.time ~bytes ~addr ~tag ~is_store:true)
    end
  | Instr.Mvm { count; tiles; tag = _ } ->
    if count < 0 || tiles <= 0 then invalid_arg "Sim: bad mvm payload";
    shared.mvm_macro_ops <- shared.mvm_macro_ops +. float_of_int (count * tiles);
    let dur = float_of_int count *. xbar.Crossbar.mvm_latency_s in
    core.last_mvm_s <- dur;
    Done (core.time +. dur)
  | Instr.Vfu { ops } ->
    if ops < 0 then invalid_arg "Sim: negative vfu ops";
    shared.vfu_ops <- shared.vfu_ops +. float_of_int ops;
    let lanes = float_of_int chip.Config.core.Config.vfus_per_core in
    let cycles = float_of_int ops /. lanes in
    Done (core.time +. (cycles /. chip.Config.core.Config.clock_hz))
  | Instr.Check { ops; tag = _ } ->
    if ops < 0 then invalid_arg "Sim: negative check ops";
    shared.vfu_ops <- shared.vfu_ops +. float_of_int ops;
    shared.checks_run <- shared.checks_run + 1;
    let lanes = float_of_int chip.Config.core.Config.vfus_per_core in
    let cycles = float_of_int ops /. lanes in
    let finish = core.time +. (cycles /. chip.Config.core.Config.clock_hz) in
    (* A transient fault that struck this core before the check completes is
       caught here: the corrupted MVM re-runs (the cell has cleared), so the
       check charges one retry of the most recent Mvm on this core. *)
    let struck, later = List.partition (fun at -> at <= finish) core.transients in
    if struck = [] then Done finish
    else begin
      core.transients <- later;
      let n = List.length struck in
      shared.detections <- shared.detections + n;
      shared.retried_mvms <- shared.retried_mvms + n;
      let penalty = float_of_int n *. core.last_mvm_s in
      shared.retry_time_s <- shared.retry_time_s +. penalty;
      Done (finish +. penalty)
    end
  | Instr.Send { bytes; dst; channel } ->
    let grant, dur = bus_acquire shared ~t:core.time ~bytes in
    let arrival = grant +. dur in
    let key = (channel, core.id, dst) in
    let q =
      match Hashtbl.find_opt shared.channels key with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.add shared.channels key q;
        q
    in
    Queue.add arrival q;
    Done arrival
  | Instr.Recv { bytes = _; src; channel } -> (
    let key = (channel, src, core.id) in
    match Hashtbl.find_opt shared.channels key with
    | Some q when not (Queue.is_empty q) ->
      let arrival = Queue.pop q in
      Done (max core.time arrival)
    | Some _ | None -> Blocked)
  | Instr.Sync { token; parties } -> (
    let b =
      match Hashtbl.find_opt shared.barriers token with
      | Some b -> b
      | None ->
        let b = { arrived = []; released = None } in
        Hashtbl.add shared.barriers token b;
        b
    in
    match b.released with
    | Some release -> Done (max core.time release)
    | None ->
      if not (List.mem_assoc core.id b.arrived) then
        b.arrived <- (core.id, core.time) :: b.arrived;
      if List.length b.arrived >= parties then begin
        let release = List.fold_left (fun acc (_, t) -> max acc t) 0. b.arrived in
        b.released <- Some release;
        Done (max core.time release)
      end
      else Blocked)

(* A fail-stopped core loses its remaining work but must not wedge the
   chip: barriers still count it, sends deliver (empty) tokens at local
   time so receivers unblock, receives consume tokens for free; compute
   and memory instructions are skipped at zero cost and counted. *)
let execute_dead shared core instr =
  match instr with
  | Instr.Sync _ -> (execute shared core instr, false)
  | Instr.Send { bytes = _; dst; channel } ->
    let key = (channel, core.id, dst) in
    let q =
      match Hashtbl.find_opt shared.channels key with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.add shared.channels key q;
        q
    in
    Queue.add core.time q;
    (Done core.time, true)
  | Instr.Recv { bytes = _; src; channel } -> (
    let key = (channel, src, core.id) in
    match Hashtbl.find_opt shared.channels key with
    | Some q when not (Queue.is_empty q) ->
      ignore (Queue.pop q);
      (Done core.time, true)
    | Some _ | None -> (Blocked, true))
  | Instr.Weight_write _ | Instr.Load _ | Instr.Store _ | Instr.Mvm _ | Instr.Vfu _
  | Instr.Check _ ->
    (Done core.time, true)

let run ?(fault_events = []) chip programs =
  (match Program.validate ~cores:chip.Config.cores programs with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Sim.run: " ^ msg));
  let kill_time = Hashtbl.create 4 in
  let transient_hits = Hashtbl.create 4 in
  List.iteri
    (fun i e ->
      if e.at_s < 0. then
        invalid_arg
          (Printf.sprintf "Sim.run: fault event #%d has negative time %g s" i e.at_s);
      if e.victim < 0 || e.victim >= chip.Config.cores then
        invalid_arg
          (Printf.sprintf
             "Sim.run: fault event #%d targets core %d but the chip has cores 0..%d" i
             e.victim (chip.Config.cores - 1));
      match e.kind with
      | Transient ->
        Hashtbl.replace transient_hits e.victim
          (e.at_s :: Option.value ~default:[] (Hashtbl.find_opt transient_hits e.victim))
      | Fail_stop -> (
        match Hashtbl.find_opt kill_time e.victim with
        | Some t when t <= e.at_s -> ()
        | _ -> Hashtbl.replace kill_time e.victim e.at_s))
    fault_events;
  let shared =
    {
      chip;
      bus_free = 0.;
      bus_busy = 0.;
      dram_free = 0.;
      channels = Hashtbl.create 64;
      barriers = Hashtbl.create 16;
      trace_rev = [];
      mvm_macro_ops = 0.;
      vfu_ops = 0.;
      weight_bytes = 0.;
      load_bytes = 0.;
      store_bytes = 0.;
      checks_run = 0;
      detections = 0;
      retried_mvms = 0;
      retry_time_s = 0.;
    }
  in
  let cores =
    List.map
      (fun p ->
        {
          id = p.Program.core_id;
          time = 0.;
          rest = p.Program.instrs;
          dead = false;
          last_mvm_s = 0.;
          transients =
            List.sort compare
              (Option.value ~default:[] (Hashtbl.find_opt transient_hits p.Program.core_id));
        })
      programs
  in
  let events_rev = ref [] in
  let dropped = ref 0 in
  let pending () = List.filter (fun c -> c.rest <> []) cores in
  let rec drain () =
    match pending () with
    | [] -> ()
    | alive ->
      (* Try cores in local-time order; the earliest runnable one executes. *)
      let by_time = List.sort (fun a b -> compare a.time b.time) alive in
      let rec attempt = function
        | [] -> raise (Deadlock "no core can make progress")
        | core :: others -> (
          match core.rest with
          | [] -> attempt others
          | instr :: rest -> (
            if not core.dead then (
              match Hashtbl.find_opt kill_time core.id with
              | Some at when at <= core.time -> core.dead <- true
              | Some _ | None -> ());
            let step, lost =
              if core.dead then execute_dead shared core instr
              else (execute shared core instr, false)
            in
            match step with
            | Done t ->
              if lost then incr dropped;
              events_rev :=
                { core = core.id; label = label_of instr; start_s = core.time; finish_s = t }
                :: !events_rev;
              core.time <- t;
              core.rest <- rest
            | Blocked -> attempt others))
      in
      attempt by_time;
      drain ()
  in
  drain ();
  (* Instruction counters are derived from the event log after the drain —
     one flush per run, nothing on the per-instruction hot path. *)
  if Compass_util.Metrics.enabled () then begin
    let per_core = Hashtbl.create 16 and per_label = Hashtbl.create 8 in
    let bump tbl key =
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
    in
    List.iter
      (fun e ->
        bump per_core e.core;
        bump per_label e.label)
      !events_rev;
    Compass_util.Metrics.incr ~by:(List.length !events_rev) "sim.instrs";
    Hashtbl.iter
      (fun c n -> Compass_util.Metrics.incr ~by:n (Printf.sprintf "sim.core.%d.instrs" c))
      per_core;
    Hashtbl.iter
      (fun label n -> Compass_util.Metrics.incr ~by:n ("sim.instr." ^ label))
      per_label;
    Compass_util.Metrics.incr ~by:!dropped "sim.dropped_instructions";
    if shared.checks_run > 0 then begin
      Compass_util.Metrics.incr ~by:shared.checks_run "sim.checks";
      Compass_util.Metrics.incr ~by:shared.detections "sim.detections";
      Compass_util.Metrics.incr ~by:shared.retried_mvms "sim.retried_mvms"
    end
  end;
  let makespan = List.fold_left (fun acc c -> max acc c.time) 0. cores in
  let dram_trace = List.rev shared.trace_rev in
  let dram_bytes = shared.weight_bytes +. shared.load_bytes +. shared.store_bytes in
  let components =
    [
      ("mvm", Energy.mvm_j chip ~macro_ops:shared.mvm_macro_ops);
      ("vfu", Energy.vfu_j chip ~ops:shared.vfu_ops);
      ("weight_program", Energy.weight_write_j chip ~bytes:shared.weight_bytes);
      ("bus", Energy.bus_j chip ~bytes:dram_bytes);
      ("dram", Energy.dram_j chip ~bytes:dram_bytes);
      ("static", Energy.static_j chip ~seconds:makespan);
    ]
  in
  {
    makespan_s = makespan;
    core_finish_s = List.map (fun c -> (c.id, c.time)) cores;
    bus_busy_s = shared.bus_busy;
    dram_trace;
    mvm_macro_ops = shared.mvm_macro_ops;
    vfu_ops = shared.vfu_ops;
    weight_bytes = shared.weight_bytes;
    load_bytes = shared.load_bytes;
    store_bytes = shared.store_bytes;
    energy_components = components;
    energy_j = List.fold_left (fun acc (_, v) -> acc +. v) 0. components;
    events = List.rev !events_rev;
    dead_cores =
      List.sort compare (List.filter_map (fun c -> if c.dead then Some c.id else None) cores);
    dropped_instructions = !dropped;
    checks_run = shared.checks_run;
    detections = shared.detections;
    retried_mvms = shared.retried_mvms;
    retry_time_s = shared.retry_time_s;
  }
