(** Core instruction set.

    Instructions are *aggregate*: an [Mvm] carries the number of
    matrix-vector products it stands for rather than being unrolled per
    output pixel.  This keeps schedules compact (a ResNet18 batch would
    otherwise unroll to millions of instructions) while preserving the
    phase structure — weight write, load, compute, store — whose timing the
    simulator models.  PUMA-style unrolled ISAs carry the same information;
    the aggregation factor is explicit in each payload. *)

type t =
  | Weight_write of {
      macro_count : int;  (** Macros programmed by this core. *)
      bytes : float;  (** Logical weight bytes fetched and written. *)
      addr : int;  (** Source address in DRAM. *)
      tag : string;
    }
  | Load of {
      bytes : float;
      addr : int;  (** Global-memory (DRAM) source. *)
      tag : string;
    }
  | Store of {
      bytes : float;
      addr : int;
      tag : string;
    }
  | Mvm of {
      count : int;  (** Matrix-vector products. *)
      tiles : int;  (** Macros engaged in parallel per product. *)
      tag : string;
    }
  | Vfu of { ops : int }  (** Vector element operations. *)
  | Send of {
      bytes : float;
      dst : int;  (** Destination core. *)
      channel : int;  (** Matching key; receiver uses the same id. *)
    }
  | Recv of {
      bytes : float;
      src : int;
      channel : int;
    }
  | Sync of {
      token : int;
      parties : int;  (** Cores that must arrive before any proceeds. *)
    }
  | Check of {
      ops : int;  (** Checksum comparisons (VFU-rate element ops). *)
      tag : string;
    }
      (** ABFT column-checksum verification of the preceding MVM
          results; a pending transient fault on the core is detected
          here and charged a retry (re-run of the last [Mvm]). *)

val mvm_count : t -> int
(** MVM products carried (0 for other instructions). *)

val dram_bytes : t -> float
(** Bytes this instruction moves to or from external memory. *)

val pp : Format.formatter -> t -> unit
