type t = {
  core_id : int;
  instrs : Instr.t list;
}

let make ~core_id instrs =
  if core_id < 0 then invalid_arg "Program.make: negative core id";
  { core_id; instrs }

let length t = List.length t.instrs

let mvm_total t = List.fold_left (fun acc i -> acc + Instr.mvm_count i) 0 t.instrs

let dram_bytes t = List.fold_left (fun acc i -> acc +. Instr.dram_bytes i) 0. t.instrs

let kind_name = function
  | Instr.Weight_write _ -> "weight_write"
  | Instr.Load _ -> "load"
  | Instr.Store _ -> "store"
  | Instr.Mvm _ -> "mvm"
  | Instr.Vfu _ -> "vfu"
  | Instr.Send _ -> "send"
  | Instr.Recv _ -> "recv"
  | Instr.Sync _ -> "sync"
  | Instr.Check _ -> "check"

let instruction_mix programs =
  let counts = Hashtbl.create 8 in
  let bump i =
    let k = kind_name i in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  in
  List.iter (fun p -> List.iter bump p.instrs) programs;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [])

let validate ~cores programs =
  let ids = List.map (fun p -> p.core_id) programs in
  let sorted = List.sort_uniq compare ids in
  if List.length sorted <> List.length ids then Error "duplicate core ids"
  else if List.exists (fun id -> id < 0 || id >= cores) ids then
    Error "core id out of range"
  else
    (* Every send must pair with exactly one recv on (channel, src, dst, bytes). *)
    let sends = Hashtbl.create 16 in
    let recvs = Hashtbl.create 16 in
    let record p = function
      | Instr.Send { bytes; dst; channel } ->
        Hashtbl.add sends (channel, p.core_id, dst) bytes
      | Instr.Recv { bytes; src; channel } -> Hashtbl.add recvs (channel, src, p.core_id) bytes
      | Instr.Weight_write _ | Instr.Load _ | Instr.Store _ | Instr.Mvm _ | Instr.Vfu _
      | Instr.Sync _ | Instr.Check _ ->
        ()
    in
    List.iter (fun p -> List.iter (record p) p.instrs) programs;
    let mismatch = ref None in
    let check key bytes =
      match Hashtbl.find_opt recvs key with
      | Some b when b = bytes -> Hashtbl.remove recvs key
      | Some _ -> mismatch := Some "send/recv byte mismatch"
      | None -> mismatch := Some "send without matching recv"
    in
    Hashtbl.iter check sends;
    match !mismatch with
    | Some msg -> Error msg
    | None -> if Hashtbl.length recvs > 0 then Error "recv without matching send" else Ok ()

let pp ppf t =
  Format.fprintf ppf "core %d (%d instrs):@." t.core_id (length t);
  List.iter (fun i -> Format.fprintf ppf "  %a@." Instr.pp i) t.instrs
