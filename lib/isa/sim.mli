(** Event-driven chip simulator.

    Executes one program per core against the shared bus and the external
    memory channel.  Timing model:

    - each core runs its instruction list in order;
    - bus transfers (weight fetches, activation loads/stores, sends) are
      serialized on the shared bus in grant order;
    - external memory behaves as the analytic streaming model during
      simulation; the emitted bulk trace can be replayed through
      [Compass_dram.Dram.simulate] for bank-accurate statistics;
    - [Recv] blocks until the matching [Send] has delivered; [Sync] is a
      counted barrier.

    The simulator is the ground truth the analytic estimator is validated
    against in tests. *)

type event = {
  core : int;
  label : string;  (** Instruction kind, e.g. ["mvm"], ["weight_write"]. *)
  start_s : float;
  finish_s : float;
}

type fault_kind =
  | Fail_stop
      (** From [at_s] on, the core skips compute and memory instructions
          at zero cost (counted as dropped) but still participates in
          barriers and channel handshakes so the rest of the chip drains
          without deadlock.  An instruction already started when the fault
          hits completes (fail-stop between instructions). *)
  | Transient
      (** A soft strike (stuck-at cell, bit upset) that corrupts MVM
          results from [at_s] until the next ABFT [Check] on the core
          detects it; the check then charges one retry — a re-run of the
          core's most recent [Mvm] — and the fault clears.  Without any
          [Check] in the program the strike goes undetected and has no
          timing effect. *)

type fault_event = {
  at_s : float;  (** Simulated strike time (>= 0). *)
  victim : int;  (** Core id. *)
  kind : fault_kind;
}

val fail_stop : at_s:float -> victim:int -> fault_event
val transient : at_s:float -> victim:int -> fault_event

type result = {
  makespan_s : float;  (** Last core finish time. *)
  core_finish_s : (int * float) list;  (** Per-core completion times. *)
  bus_busy_s : float;  (** Accumulated bus occupancy. *)
  dram_trace : Compass_dram.Trace.record list;  (** In issue order. *)
  mvm_macro_ops : float;  (** Crossbar-array operations executed. *)
  vfu_ops : float;
  weight_bytes : float;
  load_bytes : float;
  store_bytes : float;
  energy_components : (string * float) list;
      (** Labelled: mvm, vfu, weight_program, bus, dram, static. *)
  energy_j : float;
  events : event list;
      (** Per-instruction execution intervals in dispatch order; feeds the
          timeline renderer. *)
  dead_cores : int list;
      (** Cores fail-stopped by a {!fault_event}, ascending. *)
  dropped_instructions : int;
      (** Instructions skipped (work lost) on dead cores. *)
  checks_run : int;  (** ABFT [Check] instructions executed. *)
  detections : int;  (** Transient strikes caught by a [Check]. *)
  retried_mvms : int;  (** MVMs re-run after a detection. *)
  retry_time_s : float;  (** Total time spent in retries. *)
}

exception Deadlock of string
(** Raised when no core can make progress (mismatched send/recv or a
    barrier that can never fill). *)

val run : ?fault_events:fault_event list -> Compass_arch.Config.chip -> Program.t list -> result
(** Raises [Deadlock] on communication errors and [Invalid_argument] when
    [Program.validate] fails or a fault event is malformed (negative time
    or core out of range); the fault-event diagnostic names the offending
    event index and value so the CLI can render it as a one-line exit-2
    user error. *)
