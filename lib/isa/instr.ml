type t =
  | Weight_write of {
      macro_count : int;
      bytes : float;
      addr : int;
      tag : string;
    }
  | Load of {
      bytes : float;
      addr : int;
      tag : string;
    }
  | Store of {
      bytes : float;
      addr : int;
      tag : string;
    }
  | Mvm of {
      count : int;
      tiles : int;
      tag : string;
    }
  | Vfu of { ops : int }
  | Send of {
      bytes : float;
      dst : int;
      channel : int;
    }
  | Recv of {
      bytes : float;
      src : int;
      channel : int;
    }
  | Sync of {
      token : int;
      parties : int;
    }
  | Check of {
      ops : int;
      tag : string;
    }

let mvm_count = function
  | Mvm { count; _ } -> count
  | Weight_write _ | Load _ | Store _ | Vfu _ | Send _ | Recv _ | Sync _ | Check _ -> 0

let dram_bytes = function
  | Weight_write { bytes; _ } | Load { bytes; _ } | Store { bytes; _ } -> bytes
  | Mvm _ | Vfu _ | Send _ | Recv _ | Sync _ | Check _ -> 0.

let pp ppf = function
  | Weight_write { macro_count; bytes; addr; tag } ->
    Format.fprintf ppf "wwrite %d macros %.0fB @0x%x (%s)" macro_count bytes addr tag
  | Load { bytes; addr; tag } -> Format.fprintf ppf "load %.0fB @0x%x (%s)" bytes addr tag
  | Store { bytes; addr; tag } ->
    Format.fprintf ppf "store %.0fB @0x%x (%s)" bytes addr tag
  | Mvm { count; tiles; tag } -> Format.fprintf ppf "mvm x%d (%d tiles, %s)" count tiles tag
  | Vfu { ops } -> Format.fprintf ppf "vfu x%d" ops
  | Send { bytes; dst; channel } -> Format.fprintf ppf "send %.0fB -> core%d #%d" bytes dst channel
  | Recv { bytes; src; channel } -> Format.fprintf ppf "recv %.0fB <- core%d #%d" bytes src channel
  | Sync { token; parties } -> Format.fprintf ppf "sync #%d (%d parties)" token parties
  | Check { ops; tag } -> Format.fprintf ppf "check x%d (%s)" ops tag
