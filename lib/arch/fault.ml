type core_status =
  | Healthy
  | Dead
  | Degraded of int

type t = {
  statuses : core_status array;
  endurance_budget : float option;
  transient_cells : int;
  weight_flips : int;
  drift : float option;
}

let make ?endurance_budget ?(transient_cells = 0) ?(weight_flips = 0) ?drift statuses =
  Array.iteri
    (fun c status ->
      match status with
      | Degraded k when k < 1 ->
        invalid_arg
          (Printf.sprintf "Fault.make: core %d degraded to %d macros (use Dead for 0)" c k)
      | _ -> ())
    statuses;
  (match endurance_budget with
  | Some b when b <= 0. -> invalid_arg "Fault.make: non-positive endurance budget"
  | _ -> ());
  if transient_cells < 0 then invalid_arg "Fault.make: negative transient cell count";
  if weight_flips < 0 then invalid_arg "Fault.make: negative weight-flip count";
  (match drift with
  | Some d when (not (d > 0.)) || d > 1. ->
    invalid_arg "Fault.make: drift must be in (0, 1]"
  | _ -> ());
  { statuses = Array.copy statuses; endurance_budget; transient_cells; weight_flips; drift }

let healthy ~cores =
  if cores <= 0 then invalid_arg "Fault.healthy: non-positive core count";
  {
    statuses = Array.make cores Healthy;
    endurance_budget = None;
    transient_cells = 0;
    weight_flips = 0;
    drift = None;
  }

let cores t = Array.length t.statuses

let status t c =
  if c < 0 || c >= cores t then invalid_arg "Fault.status: core out of range";
  t.statuses.(c)

let endurance_budget t = t.endurance_budget

let effective_capacity t ~macros_per_core c =
  match status t c with
  | Healthy -> macros_per_core
  | Dead -> 0
  | Degraded k -> min k macros_per_core

let capacities t ~macros_per_core =
  Array.init (cores t) (fun c -> effective_capacity t ~macros_per_core c)

let total_capacity t ~macros_per_core =
  Array.fold_left ( + ) 0 (capacities t ~macros_per_core)

let dead_count t =
  Array.fold_left (fun acc s -> if s = Dead then acc + 1 else acc) 0 t.statuses

let degraded_count t =
  Array.fold_left
    (fun acc s -> match s with Degraded _ -> acc + 1 | _ -> acc)
    0 t.statuses

let transient_cells t = t.transient_cells
let weight_flips t = t.weight_flips
let drift t = t.drift
let has_cell_faults t = t.transient_cells > 0 || t.weight_flips > 0 || t.drift <> None

let is_trivial t =
  t.endurance_budget = None
  && (not (has_cell_faults t))
  && Array.for_all (fun s -> s = Healthy) t.statuses

(* Textual scenario description; [realize] turns it into a concrete [t].
   Grammar (see docs/FORMATS.md):

     spec    := "none" | clause (';' clause)*
     clause  := "dead"     ':' int (',' int)*
              | "degraded" ':' int '=' int (',' int '=' int)*
              | "random"   ':' kind '=' int (',' kind '=' int)*   kind := dead|degraded
              | "endurance" ':' float                              (writes per macro)
              | "transient" ':' int      (stuck-at cells that clear on retry)
              | "flip"      ':' int      (persistent single-bit weight flips)
              | "drift"     ':' float    (conductance drift rate, (0,1]) *)

type spec = {
  spec_dead : int list;
  spec_degraded : (int * int) list;
  spec_random_dead : int;
  spec_random_degraded : int;
  spec_endurance : float option;
  spec_transient : int;
  spec_flip : int;
  spec_drift : float option;
}

let empty_spec =
  {
    spec_dead = [];
    spec_degraded = [];
    spec_random_dead = 0;
    spec_random_degraded = 0;
    spec_endurance = None;
    spec_transient = 0;
    spec_flip = 0;
    spec_drift = None;
  }

let fail_spec fmt = Printf.ksprintf (fun msg -> invalid_arg ("Fault.parse: " ^ msg)) fmt

let parse_int what s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 0 -> n
  | _ -> fail_spec "bad %s %S (expected a non-negative integer)" what s

let parse_assign what s =
  match String.split_on_char '=' s with
  | [ k; v ] -> (parse_int what k, parse_int what v)
  | _ -> fail_spec "bad %s %S (expected core=value)" what s

let parse spec =
  let spec = String.trim spec in
  if spec = "" || String.lowercase_ascii spec = "none" then empty_spec
  else
    List.fold_left
      (fun acc clause ->
        let clause = String.trim clause in
        if clause = "" then acc
        else
          match String.index_opt clause ':' with
          | None -> fail_spec "clause %S has no ':'" clause
          | Some i ->
            let key = String.lowercase_ascii (String.trim (String.sub clause 0 i)) in
            let value = String.sub clause (i + 1) (String.length clause - i - 1) in
            let items () =
              List.filter
                (fun s -> String.trim s <> "")
                (String.split_on_char ',' value)
            in
            (match key with
            | "dead" ->
              { acc with spec_dead = acc.spec_dead @ List.map (parse_int "core") (items ()) }
            | "degraded" ->
              let pairs = List.map (parse_assign "degradation") (items ()) in
              List.iter
                (fun (_, k) ->
                  if k < 1 then fail_spec "degraded capacity must be >= 1 (use dead:)")
                pairs;
              { acc with spec_degraded = acc.spec_degraded @ pairs }
            | "random" ->
              List.fold_left
                (fun acc item ->
                  match String.split_on_char '=' item with
                  | [ kind; n ] -> (
                    let n = parse_int "count" n in
                    match String.lowercase_ascii (String.trim kind) with
                    | "dead" -> { acc with spec_random_dead = acc.spec_random_dead + n }
                    | "degraded" ->
                      { acc with spec_random_degraded = acc.spec_random_degraded + n }
                    | other -> fail_spec "unknown random kind %S" other)
                  | _ -> fail_spec "bad random item %S (expected dead=N or degraded=N)" item)
                acc (items ())
            | "endurance" -> (
              match float_of_string_opt (String.trim value) with
              | Some b when b > 0. -> { acc with spec_endurance = Some b }
              | _ -> fail_spec "bad endurance %S (expected a positive number)" value)
            | "transient" ->
              { acc with spec_transient = acc.spec_transient + parse_int "transient count" value }
            | "flip" -> { acc with spec_flip = acc.spec_flip + parse_int "flip count" value }
            | "drift" -> (
              match float_of_string_opt (String.trim value) with
              | Some d when d > 0. && d <= 1. -> { acc with spec_drift = Some d }
              | _ -> fail_spec "bad drift %S (expected a rate in (0, 1])" value)
            | other -> fail_spec "unknown clause %S" other))
      empty_spec
      (String.split_on_char ';' spec)

let spec_to_string s =
  let clauses = ref [] in
  (match s.spec_drift with
  (* Full precision, not %g: same round-trip requirement as endurance. *)
  | Some d -> clauses := ("drift:" ^ Compass_util.Artifact.float_token d) :: !clauses
  | None -> ());
  if s.spec_flip > 0 then clauses := Printf.sprintf "flip:%d" s.spec_flip :: !clauses;
  if s.spec_transient > 0 then
    clauses := Printf.sprintf "transient:%d" s.spec_transient :: !clauses;
  (match s.spec_endurance with
  (* Full precision, not %g: the spec must round-trip the exact budget or
     a reloaded plan computes a different projected lifetime. *)
  | Some b ->
    clauses := ("endurance:" ^ Compass_util.Artifact.float_token b) :: !clauses
  | None -> ());
  if s.spec_random_degraded > 0 then
    clauses := Printf.sprintf "random:degraded=%d" s.spec_random_degraded :: !clauses;
  if s.spec_random_dead > 0 then
    clauses := Printf.sprintf "random:dead=%d" s.spec_random_dead :: !clauses;
  if s.spec_degraded <> [] then
    clauses :=
      ("degraded:"
      ^ String.concat ","
          (List.map (fun (c, k) -> Printf.sprintf "%d=%d" c k) s.spec_degraded))
      :: !clauses;
  if s.spec_dead <> [] then
    clauses :=
      ("dead:" ^ String.concat "," (List.map string_of_int s.spec_dead)) :: !clauses;
  match !clauses with [] -> "none" | cs -> String.concat ";" cs

let realize spec ~seed ~cores ~macros_per_core =
  if cores <= 0 then invalid_arg "Fault.realize: non-positive core count";
  if macros_per_core <= 0 then invalid_arg "Fault.realize: non-positive macro count";
  let statuses = Array.make cores Healthy in
  let set c status =
    if c < 0 || c >= cores then
      invalid_arg
        (Printf.sprintf "Fault.realize: core %d out of range (chip has %d cores)" c cores);
    if statuses.(c) <> Healthy then
      invalid_arg (Printf.sprintf "Fault.realize: core %d listed twice" c);
    statuses.(c) <- status
  in
  List.iter (fun c -> set c Dead) spec.spec_dead;
  List.iter
    (fun (c, k) ->
      if k >= macros_per_core then
        invalid_arg
          (Printf.sprintf
             "Fault.realize: core %d degraded to %d macros but cores only have %d" c k
             macros_per_core);
      set c (Degraded k))
    spec.spec_degraded;
  let n_random = spec.spec_random_dead + spec.spec_random_degraded in
  if n_random > 0 then begin
    let healthy_idx =
      Array.to_list statuses
      |> List.mapi (fun c s -> (c, s))
      |> List.filter_map (fun (c, s) -> if s = Healthy then Some c else None)
    in
    if n_random > List.length healthy_idx then
      invalid_arg
        (Printf.sprintf "Fault.realize: %d random faults requested but only %d healthy cores"
           n_random (List.length healthy_idx));
    let healthy_arr = Array.of_list healthy_idx in
    let rng = Compass_util.Rng.create seed in
    let picks =
      Compass_util.Rng.sample_without_replacement rng n_random (Array.length healthy_arr)
    in
    List.iteri
      (fun i pick ->
        let c = healthy_arr.(pick) in
        if i < spec.spec_random_dead then statuses.(c) <- Dead
        else
          let k = Compass_util.Rng.int_in rng 1 (max 1 (macros_per_core - 1)) in
          statuses.(c) <- if k >= macros_per_core then Dead else Degraded k)
      picks
  end;
  make ?endurance_budget:spec.spec_endurance ~transient_cells:spec.spec_transient
    ~weight_flips:spec.spec_flip ?drift:spec.spec_drift statuses

let of_string spec ~seed ~cores ~macros_per_core =
  realize (parse spec) ~seed ~cores ~macros_per_core

(* A realized scenario re-serializes with fixed clauses only, so it parses
   back to the same scenario independent of the seed. *)
let to_spec t =
  let dead = ref [] and degraded = ref [] in
  Array.iteri
    (fun c s ->
      match s with
      | Dead -> dead := c :: !dead
      | Degraded k -> degraded := (c, k) :: !degraded
      | Healthy -> ())
    t.statuses;
  {
    empty_spec with
    spec_dead = List.rev !dead;
    spec_degraded = List.rev !degraded;
    spec_endurance = t.endurance_budget;
    spec_transient = t.transient_cells;
    spec_flip = t.weight_flips;
    spec_drift = t.drift;
  }

let to_string t = spec_to_string (to_spec t)

let pp ppf t =
  let n = cores t in
  if is_trivial t then Format.fprintf ppf "no faults (%d healthy cores)" n
  else begin
    let usable = n - dead_count t in
    Format.fprintf ppf "faults: %d dead, %d degraded (%d/%d cores usable)" (dead_count t)
      (degraded_count t) usable n;
    (match t.endurance_budget with
    | Some b -> Format.fprintf ppf ", endurance %g writes/macro" b
    | None -> ());
    if t.transient_cells > 0 then
      Format.fprintf ppf ", %d transient cell(s)" t.transient_cells;
    if t.weight_flips > 0 then Format.fprintf ppf ", %d weight flip(s)" t.weight_flips;
    match t.drift with
    | Some d -> Format.fprintf ppf ", drift %g" d
    | None -> ()
  end
