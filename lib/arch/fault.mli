(** Fault scenarios for a PIM chip: per-core health status and optional
    per-macro write-endurance budgets.

    A scenario is immutable once built. The compiler threads a scenario
    through {!Compass_core} ([Validity.build ?faults],
    [Mapping.pack ?faults], [Compiler.compile ?faults]) so plans route
    around dead cores and respect degraded capacities; the estimator uses
    the endurance budget to project device lifetime. *)

type core_status =
  | Healthy  (** full [macros_per_core] capacity *)
  | Dead  (** core unusable; capacity 0 *)
  | Degraded of int  (** only [k >= 1] macros usable *)

type t

(** [make statuses] builds a scenario for a chip with
    [Array.length statuses] cores. The array is copied.
    @param endurance_budget
      remaining writes per macro before wear-out (e.g. ReRAM ~1e6).
    @param transient_cells
      number of stuck-at crossbar cells that clear on retry (runtime
      transients; sites are realized by [Compass_core.Inject]).
    @param weight_flips
      number of persistent single-bit weight-code flips.
    @param drift
      conductance-drift rate in (0, 1]: the fraction of cells whose
      stored code is displaced by one level (persistent).
    @raise Invalid_argument
      on [Degraded k] with [k < 1], a non-positive budget, negative
      cell-fault counts, or a drift rate outside (0, 1]. *)
val make :
  ?endurance_budget:float ->
  ?transient_cells:int ->
  ?weight_flips:int ->
  ?drift:float ->
  core_status array ->
  t

(** All-healthy scenario with no endurance budget ([is_trivial] holds). *)
val healthy : cores:int -> t

val cores : t -> int
val status : t -> int -> core_status
val endurance_budget : t -> float option

(** Usable macros on core [c] given the nominal [macros_per_core]. *)
val effective_capacity : t -> macros_per_core:int -> int -> int

(** Per-core usable macros, index = core id. *)
val capacities : t -> macros_per_core:int -> int array

val total_capacity : t -> macros_per_core:int -> int
val dead_count : t -> int
val degraded_count : t -> int

(** Requested stuck-at cell count (clear on retry). *)
val transient_cells : t -> int

(** Requested persistent single-bit weight-flip count. *)
val weight_flips : t -> int

(** Conductance-drift rate in (0, 1], if any. *)
val drift : t -> float option

(** True iff the scenario carries runtime cell faults (transient,
    flip, or drift) that {!Compass_core.Inject} must realize. *)
val has_cell_faults : t -> bool

(** True iff every core is healthy, there is no endurance budget, and
    no cell faults — the scenario does not constrain compilation at
    all. *)
val is_trivial : t -> bool

(** {1 Textual fault specs}

    Grammar (the CLI's [--faults] argument, also in docs/FORMATS.md):
    {v
  spec    := "none" | clause (';' clause)*
  clause  := "dead"      ':' core (',' core)*
           | "degraded"  ':' core '=' k (',' core '=' k)*
           | "random"    ':' kind '=' n (',' kind '=' n)*    kind := dead | degraded
           | "endurance" ':' budget
           | "transient" ':' n
           | "flip"      ':' n
           | "drift"     ':' rate
    v}
    Fixed [dead]/[degraded] clauses name cores explicitly; [random]
    clauses draw distinct victims among the remaining healthy cores using
    the seed passed to {!realize}, so a spec plus a seed is a
    reproducible scenario. *)

type spec

(** @raise Invalid_argument with a descriptive message on bad syntax. *)
val parse : string -> spec

val empty_spec : spec
val spec_to_string : spec -> string

(** Instantiate a spec on a concrete chip shape. Random victims and
    degradation levels are drawn deterministically from [seed].
    @raise Invalid_argument
      if a core index is out of range, listed twice, degraded to at least
      the nominal capacity, or more random faults are requested than
      healthy cores remain. *)
val realize : spec -> seed:int -> cores:int -> macros_per_core:int -> t

(** [realize (parse s)]. *)
val of_string : string -> seed:int -> cores:int -> macros_per_core:int -> t

(** Serialize a realized scenario back to a spec with fixed clauses only
    (seed-independent): [parse (to_string t)] realizes to [t] again. *)
val to_string : t -> string

val to_spec : t -> spec
val pp : Format.formatter -> t -> unit
