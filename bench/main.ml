(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. IV), plus Bechamel micro-benchmarks of the compiler's
   hot paths.

   Sections (pass names as arguments to run a subset; default = all):
     table1 table2 fig5 fig6 fig7 fig8 fig9 fig10 validate ablation envm
     quant stability onchip model_ablation parallel faults recover dp micro
     observe infer chaos serve

   The experiment index lives in DESIGN.md; measured-vs-paper numbers are
   recorded in EXPERIMENTS.md. *)

open Compass_core
open Compass_util

let section_banner name description =
  Printf.printf "\n%s\n=== %s — %s\n%s\n" (String.make 78 '=') name description
    (String.make 78 '=')

(* Plans are shared across sections; memoize them. *)
let plan_cache : (string * string * int * string, Compiler.t) Hashtbl.t = Hashtbl.create 64

let plan ?(objective = Fitness.Latency) model_name chip_label batch scheme =
  let key = (model_name, chip_label, batch, Compiler.scheme_to_string scheme) in
  match Hashtbl.find_opt plan_cache key with
  | Some p when p.Compiler.objective = objective -> p
  | _ ->
    let p =
      Compiler.compile ~objective
        ~model:(Compass_nn.Models.by_name model_name)
        ~chip:(Compass_arch.Config.by_label chip_label)
        ~batch scheme
    in
    Hashtbl.replace plan_cache key p;
    p

let throughput p = p.Compiler.perf.Estimator.throughput_per_s

let models = [ "vgg16"; "resnet18"; "squeezenet" ]
let chips = [ "S"; "M"; "L" ]
let schemes = [ Compiler.Compass; Compiler.Greedy; Compiler.Layerwise ]

(* -------------------------------------------------------------------- *)
(* Table I                                                              *)

let table1 () =
  section_banner "table1" "hardware configuration (paper Table I)";
  Table.print (Compass_arch.Config.table1 ());
  let core = Compass_arch.Config.chip_s.Compass_arch.Config.core in
  Printf.printf
    "\nper-core components: %d VFUs (%.1f mW), %d x %d KB local memory (%.1f mW),\n\
     control unit (%.1f mW); LPDDR3 8GB external memory, trace-based model.\n"
    core.Compass_arch.Config.vfus_per_core
    (core.Compass_arch.Config.vfu_power_w *. 1e3)
    core.Compass_arch.Config.local_mem_banks
    (core.Compass_arch.Config.local_mem_bytes / 1024)
    (core.Compass_arch.Config.local_mem_power_w *. 1e3)
    (core.Compass_arch.Config.control_power_w *. 1e3)

(* -------------------------------------------------------------------- *)
(* Table II                                                             *)

let table2 () =
  section_banner "table2" "network models and compiler support (paper Table II)";
  List.iter
    (fun chip_label ->
      Printf.printf "\nagainst chip %s:\n" chip_label;
      Table.print
        (Report.support_table
           (Compass_nn.Models.evaluation_models ())
           (Compass_arch.Config.by_label chip_label)))
    chips;
  print_newline ();
  print_endline
    "Prev. = all-weights-on-chip compilers (PUMA/PIMCOMP): a model is only\n\
     mappable when its total weight storage fits the chip. COMPASS maps all."

(* -------------------------------------------------------------------- *)
(* Fig. 5                                                               *)

let fig5 () =
  section_banner "fig5" "partition validity maps (paper Fig. 5)";
  List.iter
    (fun model_name ->
      List.iter
        (fun chip_label ->
          let units =
            Unit_gen.generate
              (Compass_nn.Models.by_name model_name)
              (Compass_arch.Config.by_label chip_label)
          in
          let v = Validity.build units in
          print_newline ();
          print_endline (Validity.render ~cells:24 v))
        [ "S"; "L" ])
    [ "squeezenet"; "resnet18"; "vgg16" ];
  print_newline ();
  print_endline
    "Rows are start positions, columns end positions; '#' marks a valid\n\
     partition span. The invalid portion grows towards bigger models and\n\
     smaller chips (lower-right of the paper's figure)."

(* -------------------------------------------------------------------- *)
(* Fig. 6                                                               *)

let fig6 () =
  section_banner "fig6" "inference throughput comparison (paper Fig. 6)";
  let batches = [ 4; 16 ] in
  let all_rows = ref [] in
  List.iter
    (fun model_name ->
      List.iter
        (fun chip_label ->
          List.iter
            (fun batch ->
              List.iter
                (fun scheme ->
                  all_rows :=
                    Report.row_of_plan (plan model_name chip_label batch scheme)
                    :: !all_rows)
                schemes)
            batches)
        chips)
    models;
  let rows = List.rev !all_rows in
  Table.print (Report.rows_table rows);
  (* Grouped bars per network at batch 16. *)
  List.iter
    (fun model_name ->
      let series scheme =
        ( Compiler.scheme_to_string scheme,
          List.map (fun chip -> throughput (plan model_name chip 16 scheme)) chips )
      in
      print_newline ();
      print_endline
        (Ascii_plot.grouped_bars
           ~title:(Printf.sprintf "throughput (inf/s), %s, batch 16" model_name)
           ~group_labels:(List.map (fun c -> model_name ^ "-" ^ c) chips)
           ~series:(List.map series schemes) ()))
    models;
  (* Speedup summary in the paper's style. *)
  print_newline ();
  let per_network over =
    List.map
      (fun model_name ->
        let ratios =
          List.concat_map
            (fun chip ->
              List.map
                (fun batch ->
                  throughput (plan model_name chip batch Compiler.Compass)
                  /. throughput (plan model_name chip batch over))
                batches)
            chips
        in
        (model_name, Stats.geomean ratios))
      models
  in
  let print_over name scheme =
    let per = per_network scheme in
    Printf.printf "COMPASS vs %-9s: %s (overall %.2fx)\n" name
      (String.concat ", "
         (List.map (fun (m, r) -> Printf.sprintf "%s %.2fx" m r) per))
      (Stats.geomean (List.map snd per))
  in
  print_over "greedy" Compiler.Greedy;
  print_over "layerwise" Compiler.Layerwise

(* -------------------------------------------------------------------- *)
(* Fig. 7                                                               *)

let fig7 () =
  section_banner "fig7" "per-partition latency breakdown, ResNet18-M-16 (paper Fig. 7)";
  List.iter
    (fun scheme ->
      let p = plan "resnet18" "M" 16 scheme in
      let spans = p.Compiler.perf.Estimator.spans in
      let total = p.Compiler.perf.Estimator.batch_latency_s in
      Printf.printf "\n%s: total %s, %d partitions\n"
        (Compiler.scheme_to_string scheme)
        (Units.time_to_string total) (List.length spans);
      let series =
        List.mapi
          (fun k sp -> (Printf.sprintf "P%d" k, sp.Estimator.span_s *. 1e3))
          spans
      in
      print_endline
        (Ascii_plot.bar_chart
           ~title:"  per-partition latency (ms, before write overlap)" () series);
      (* Phase split per partition: write / compute / io. *)
      List.iteri
        (fun k sp ->
          Printf.printf "    P%-2d write %-9s compute %-9s io %-9s\n" k
            (Units.time_to_string sp.Estimator.write_s)
            (Units.time_to_string sp.Estimator.compute_s)
            (Units.time_to_string sp.Estimator.io_s))
        spans;
      let p0 = (List.hd spans).Estimator.span_s in
      let raw_total = List.fold_left (fun a sp -> a +. sp.Estimator.span_s) 0. spans in
      Printf.printf "  P0 share of execution: %.1f%%\n" (100. *. p0 /. raw_total))
    schemes;
  print_newline ();
  let share scheme =
    let p = plan "resnet18" "M" 16 scheme in
    let spans = p.Compiler.perf.Estimator.spans in
    let raw = List.fold_left (fun a sp -> a +. sp.Estimator.span_s) 0. spans in
    (List.hd spans).Estimator.span_s /. raw
  in
  Printf.printf
    "greedy front-loads the network: its P0 takes %.0f%% of execution (paper: >95%%),\n\
     while COMPASS balances partitions (P0 %.0f%%).\n"
    (100. *. share Compiler.Greedy)
    (100. *. share Compiler.Compass)

(* -------------------------------------------------------------------- *)
(* Fig. 8                                                               *)

let fig8 () =
  section_banner "fig8" "inference energy and EDP vs batch size, ResNet18-S (paper Fig. 8)";
  let batches = [ 1; 2; 4; 8; 16 ] in
  let table =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "scheme"; "batch"; "energy/inf"; "latency"; "EDP(J.s)" ]
  in
  List.iter
    (fun scheme ->
      List.iter
        (fun batch ->
          let p = plan "resnet18" "S" batch scheme in
          Table.add_row table
            [
              Compiler.scheme_to_string scheme;
              string_of_int batch;
              Units.energy_to_string p.Compiler.perf.Estimator.energy_per_sample_j;
              Units.time_to_string p.Compiler.perf.Estimator.batch_latency_s;
              Printf.sprintf "%.3g" p.Compiler.perf.Estimator.edp_j_s;
            ])
        batches)
    schemes;
  Table.print table;
  print_newline ();
  let series metric =
    List.map
      (fun scheme ->
        ( Compiler.scheme_to_string scheme,
          List.map (fun b -> metric (plan "resnet18" "S" b scheme)) batches ))
      schemes
  in
  print_endline
    (Ascii_plot.grouped_bars ~title:"energy per inference (mJ)"
       ~group_labels:(List.map (fun b -> "batch " ^ string_of_int b) batches)
       ~series:
         (series (fun p -> p.Compiler.perf.Estimator.energy_per_sample_j *. 1e3))
       ());
  print_newline ();
  print_endline
    (Ascii_plot.grouped_bars ~title:"EDP per inference (uJ.s)"
       ~group_labels:(List.map (fun b -> "batch " ^ string_of_int b) batches)
       ~series:(series (fun p -> p.Compiler.perf.Estimator.edp_j_s *. 1e6))
       ());
  let edp scheme =
    Stats.geomean
      (List.map (fun b -> (plan "resnet18" "S" b scheme).Compiler.perf.Estimator.edp_j_s) batches)
  in
  Printf.printf "\nEDP: COMPASS vs greedy %.2fx, vs layerwise %.2fx (geomean over batches)\n"
    (edp Compiler.Greedy /. edp Compiler.Compass)
    (edp Compiler.Layerwise /. edp Compiler.Compass)

(* -------------------------------------------------------------------- *)
(* Fig. 9                                                               *)

let fig9 () =
  section_banner "fig9"
    "weight write/load energy relative to MVM vs chip and batch (paper Fig. 9)";
  let batches = [ 1; 4; 16 ] in
  let rows = ref [] in
  List.iter
    (fun chip ->
      List.iter
        (fun batch ->
          let p = plan "resnet18" chip batch Compiler.Compass in
          let spans = p.Compiler.perf.Estimator.spans in
          let sum f = List.fold_left (fun a sp -> a +. f sp) 0. spans in
          let mvm = sum (fun sp -> sp.Estimator.mvm_energy_j) in
          let write = sum (fun sp -> sp.Estimator.write_energy_j) in
          let load =
            sum (fun sp ->
                Compass_dram.Dram.analytic_energy_j sp.Estimator.unique_weight_bytes)
          in
          rows :=
            (Printf.sprintf "%s-%d" chip batch, write /. mvm, load /. mvm) :: !rows)
        batches)
    chips;
  let rows = List.rev !rows in
  let table =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "chip-batch"; "write/MVM"; "load/MVM"; "(write+load)/MVM" ]
  in
  List.iter
    (fun (label, w, l) ->
      Table.add_row table
        [
          label;
          Printf.sprintf "%.3f" w;
          Printf.sprintf "%.3f" l;
          Printf.sprintf "%.3f" (w +. l);
        ])
    rows;
  Table.print table;
  print_newline ();
  print_endline
    (Ascii_plot.bar_chart ~title:"weight (write+load) energy normalized to MVM energy" ()
       (List.map (fun (label, w, l) -> (label, w +. l)) rows));
  print_newline ();
  print_endline
    "With batch 1 the weight replacement energy dominates compute; by batch 16\n\
     it is amortized to a small fraction (the paper's Sec. IV-B3 observation)."

(* -------------------------------------------------------------------- *)
(* Fig. 10                                                              *)

let fig10 () =
  section_banner "fig10" "GA fitness evolution, ResNet18-M-16 (paper Fig. 10)";
  let p = plan "resnet18" "M" 16 Compiler.Compass in
  match p.Compiler.ga with
  | None -> print_endline "(no GA history)"
  | Some ga ->
    (* A random third of the population per generation, as in the paper. *)
    let rng = Rng.create 2024 in
    let points =
      List.concat_map
        (fun r ->
          let sample marker xs =
            List.filter_map
              (fun (fitness, _) ->
                if Rng.int rng 3 = 0 then
                  Some (float_of_int r.Ga.generation, fitness *. 1e3, marker)
                else None)
              xs
          in
          sample 'o' r.Ga.selected @ sample '+' r.Ga.mutated)
        ga.Ga.history
    in
    print_endline
      (Ascii_plot.scatter ~width:70 ~height:22
         ~title:"fitness (ms) vs generation; 'o' = selected, '+' = mutated"
         ~points ());
    print_newline ();
    let table =
      Table.create
        ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right ]
        [ "generation"; "best(ms)"; "median #parts"; "parts of best" ]
    in
    List.iter
      (fun r ->
        let parts = List.map snd (r.Ga.selected @ r.Ga.mutated) in
        let median =
          let sorted = List.sort compare parts in
          List.nth sorted (List.length sorted / 2)
        in
        let best_parts =
          match r.Ga.selected with (_, k) :: _ -> k | [] -> 0
        in
        Table.add_row table
          [
            string_of_int r.Ga.generation;
            Printf.sprintf "%.3f" (r.Ga.best_fitness *. 1e3);
            string_of_int median;
            string_of_int best_parts;
          ])
      ga.Ga.history;
    Table.print table;
    Printf.printf
      "\n%d generations (%d evaluations, %d distinct spans); the population\n\
       settles on a partition count and refines within it, as in the paper.\n"
      ga.Ga.generations_run ga.Ga.evaluations ga.Ga.cache_spans

(* -------------------------------------------------------------------- *)
(* Cross-validation: scheduler + chip simulator + DRAM replay           *)

let validate () =
  section_banner "validate"
    "estimator vs instruction-level simulation vs LPDDR3 replay (DRAMsim3 step)";
  List.iter
    (fun (model_name, chip, scheme) ->
      let p = plan model_name chip 16 scheme in
      let m = Compiler.measure p in
      let est = p.Compiler.perf.Estimator.batch_latency_s in
      let sim = m.Compiler.sim.Compass_isa.Sim.makespan_s in
      Printf.printf "%s (%s): estimator %s, simulator %s (x%.2f), %d instrs\n"
        (Compiler.label p)
        (Compiler.scheme_to_string scheme)
        (Units.time_to_string est) (Units.time_to_string sim) (sim /. est)
        m.Compiler.schedule.Scheduler.instruction_count;
      Printf.printf "  %s\n"
        (Format.asprintf "%a" Compass_dram.Dram.pp_stats m.Compiler.dram);
      if model_name = "resnet18" && scheme = Compiler.Compass then begin
        print_endline (Compass_isa.Timeline.render m.Compiler.sim);
        let util = Compass_isa.Timeline.core_utilization m.Compiler.sim in
        let avg = Stats.mean (List.map snd util) in
        Printf.printf "mean core compute utilization: %.1f%%\n" (100. *. avg)
      end)
    [
      ("resnet18", "M", Compiler.Compass);
      ("resnet18", "M", Compiler.Greedy);
      ("squeezenet", "S", Compiler.Compass);
      ("vgg16", "S", Compiler.Greedy);
    ];
  (* Independent pixel-level pipeline simulation vs the closed form. *)
  print_newline ();
  let p = plan "resnet18" "M" 16 Compiler.Compass in
  let ratios =
    List.map
      (fun sp ->
        Pipeline_sim.estimator_agreement p.Compiler.ctx ~batch:16
          ~start_:sp.Estimator.start_ ~stop:sp.Estimator.stop)
      p.Compiler.perf.Estimator.spans
  in
  Printf.printf
    "pixel-level pipeline simulation vs closed-form compute (per partition): %s\n"
    (String.concat ", " (List.map (Printf.sprintf "%.3f") ratios))

(* -------------------------------------------------------------------- *)
(* Ablation: GA design choices (mutation schemes, crossover)            *)

let ablation () =
  section_banner "ablation"
    "GA design choices on ResNet18-M-16: mutation schemes and crossover";
  let model = Compass_nn.Models.resnet18 () in
  let chip = Compass_arch.Config.by_label "M" in
  let units = Unit_gen.generate model chip in
  let validity = Validity.build units in
  let ctx = Dataflow.context units in
  let batch = 16 in
  let run label params =
    let r = Ga.optimize ~params ctx validity ~batch in
    ( label,
      r.Ga.best.Ga.perf.Estimator.throughput_per_s,
      r.Ga.best.Ga.fitness,
      r.Ga.generations_run )
  in
  let base = Ga.default_params in
  let configs =
    (("all schemes (paper)", base)
    :: List.map
         (fun s ->
           ( Printf.sprintf "only %s" (Ga.scheme_name s),
             { base with Ga.schemes = [ s ] } ))
         [ Ga.Merge; Ga.Split; Ga.Move; Ga.Fixed_random ])
    @ List.map
        (fun s ->
          ( Printf.sprintf "without %s" (Ga.scheme_name s),
            { base with Ga.schemes = List.filter (fun x -> x <> s) [ Ga.Merge; Ga.Split; Ga.Move; Ga.Fixed_random ] } ))
        [ Ga.Merge; Ga.Split; Ga.Move; Ga.Fixed_random ]
    @ [ ("with crossover 0.3 (extension)", { base with Ga.crossover_rate = 0.3 }) ]
  in
  let table =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "configuration"; "throughput"; "best fitness (ms)"; "generations" ]
  in
  let results = List.map (fun (label, params) -> run label params) configs in
  List.iter
    (fun (label, thpt, fitness, gens) ->
      Table.add_row table
        [
          label;
          Printf.sprintf "%.1f/s" thpt;
          Printf.sprintf "%.3f" (fitness *. 1e3);
          string_of_int gens;
        ])
    results;
  Table.print table;
  print_newline ();
  print_endline
    "Restricting the mutation mix changes both convergence speed and the\n\
     final fitness; the four-scheme mix of Sec. III-C3 combines Merge/Split\n\
     (partition count), Move (boundary fine-tuning) and FixedRandom\n\
     (diversity against local optima)."

(* -------------------------------------------------------------------- *)
(* eNVM technologies (paper Sec. V-B)                                   *)

let envm () =
  section_banner "envm" "compilation across IMC technologies (paper Sec. V-B)";
  let model = Compass_nn.Models.squeezenet () in
  let batch = 16 in
  let table =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "technology"; "parts"; "throughput"; "write share"; "energy/inf"; "lifetime@100inf/s" ]
  in
  List.iter
    (fun tech ->
      let chip = Compass_arch.Technology.chip tech Compass_arch.Config.chip_s in
      let plan =
        Compiler.compile ~model ~chip ~batch Compiler.Compass
      in
      let perf = plan.Compiler.perf in
      let write_s =
        List.fold_left (fun acc sp -> acc +. sp.Estimator.write_s) 0. perf.Estimator.spans
      in
      let raw =
        List.fold_left (fun acc sp -> acc +. sp.Estimator.span_s) 0. perf.Estimator.spans
      in
      (* Every weight cell is programmed once per batch. *)
      let rewrites_per_cell_per_s = 100. /. float_of_int batch in
      let lifetime =
        match Compass_arch.Technology.lifetime_s tech ~rewrites_per_cell_per_s with
        | None -> "unlimited"
        | Some s when s > 3e9 -> "> 100 years"
        | Some s -> Printf.sprintf "%.1f days" (s /. 86400.)
      in
      Table.add_row table
        [
          tech.Compass_arch.Technology.name;
          string_of_int (Partition.partition_count plan.Compiler.group);
          Printf.sprintf "%.1f/s" perf.Estimator.throughput_per_s;
          Printf.sprintf "%.1f%%" (100. *. write_s /. raw);
          Units.energy_to_string perf.Estimator.energy_per_sample_j;
          lifetime;
        ])
    Compass_arch.Technology.presets;
  Table.print table;
  print_newline ();
  print_endline
    "ReRAM's slow, endurance-limited writes shift the optimum toward fewer\n\
     partitions and larger batches; MRAM sits between ReRAM and SRAM — the\n\
     crossbar write path is just a hardware-configuration parameter."

(* -------------------------------------------------------------------- *)
(* Prior-compiler (all-on-chip) mode vs COMPASS                          *)

let onchip () =
  section_banner "onchip"
    "PUMA/PIMCOMP all-on-chip execution vs COMPASS where both apply";
  let batch = 16 in
  let table =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right ]
      [ "workload"; "prior compilers"; "COMPASS"; "gain" ]
  in
  List.iter
    (fun (model_name, chip_label) ->
      let model = Compass_nn.Models.by_name model_name in
      let chip = Compass_arch.Config.by_label chip_label in
      let compass = plan model_name chip_label batch Compiler.Compass in
      let prior =
        match Compiler.compile_on_chip ~model ~chip ~batch with
        | Ok r ->
          Printf.sprintf "%.1f/s (pinned weights)"
            r.Compiler.on_chip_perf.Estimator.throughput_per_s
        | Error _ -> "unmappable"
      in
      let gain =
        match Compiler.compile_on_chip ~model ~chip ~batch with
        | Ok r ->
          Printf.sprintf "%.2fx"
            (throughput compass /. r.Compiler.on_chip_perf.Estimator.throughput_per_s)
        | Error _ -> "-"
      in
      Table.add_row table
        [
          Printf.sprintf "%s-%s-%d" model_name chip_label batch;
          prior;
          Printf.sprintf "%.1f/s" (throughput compass);
          gain;
        ])
    [
      ("squeezenet", "S"); ("squeezenet", "M"); ("squeezenet", "L");
      ("resnet18", "S"); ("vgg16", "S");
    ];
  Table.print table;
  print_newline ();
  print_endline
    "Prior compilers cannot map ResNet18 or VGG16 at all (Table II). For\n\
     SqueezeNet on the constrained chip S, COMPASS beats even the\n\
     pinned-weight mapping (each partition re-replicates its layers across\n\
     the whole chip); on M/L, where everything fits comfortably, pinning\n\
     wins by exactly the per-batch weight-write cost — if a model fits and\n\
     never shares the chip, pin it."

(* -------------------------------------------------------------------- *)
(* Estimator-feature ablation                                            *)

let model_ablation () =
  section_banner "model_ablation"
    "contribution of the estimator's modeling features, ResNet18-S-16";
  let model = Compass_nn.Models.resnet18 () in
  let chip = Compass_arch.Config.chip_s in
  let units = Unit_gen.generate model chip in
  let v = Validity.build units in
  let ctx = Dataflow.context units in
  let g = Baselines.greedy v in
  let cases =
    [
      ("full model (default)", Estimator.default_options);
      ("no write overlap", { Estimator.default_options with Estimator.write_overlap = false });
      ("no on-chip buffering",
        { Estimator.default_options with Estimator.onchip_buffering = false });
      ("neither",
        {
          Estimator.default_options with
          Estimator.write_overlap = false;
          onchip_buffering = false;
        });
    ]
  in
  let table =
    Table.create ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "estimator configuration"; "latency"; "throughput"; "dram act. bytes" ]
  in
  List.iter
    (fun (label, options) ->
      let p = Estimator.evaluate ~options ctx ~batch:16 g in
      let dram_act =
        List.fold_left (fun acc sp -> acc +. sp.Estimator.io_dram_bytes) 0. p.Estimator.spans
      in
      Table.add_row table
        [
          label;
          Units.time_to_string p.Estimator.batch_latency_s;
          Printf.sprintf "%.1f/s" p.Estimator.throughput_per_s;
          Units.bytes_to_string dram_act;
        ])
    cases;
  Table.print table;
  print_newline ();
  print_endline
    "Both mechanisms the paper's architecture provides (Fig. 1 local\n\
     memories, Fig. 2 overlapped weight replacement) contribute measurable\n\
     latency; disabling them shows what a naive estimator would predict."

(* -------------------------------------------------------------------- *)
(* Quantization precision study (the paper's 4-bit assumption)          *)

let quant () =
  section_banner "quant"
    "weight precision vs storage and functional error (the 4-bit assumption)";
  let model = Compass_nn.Models.lenet5 () in
  let float_weights = Compass_nn.Executor.random_weights model in
  let input = Compass_nn.Executor.random_input model in
  let reference = Compass_nn.Executor.output model float_weights input in
  let params = Compass_nn.Graph.total_weight_params model in
  let table =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "bits"; "storage"; "chips needed (S)"; "max |out diff|"; "weight MSE" ]
  in
  List.iter
    (fun bits ->
      let quantized = Compass_nn.Quant.quantize_weights ~bits float_weights in
      let out = Compass_nn.Executor.output model quantized input in
      let mse =
        let accum = ref 0. and n = ref 0 in
        Hashtbl.iter
          (fun node original ->
            let q = Hashtbl.find quantized node in
            accum :=
              !accum
              +. (Compass_nn.Quant.mean_squared_error ~original ~quantized:q
                 *. float_of_int (Array.length original));
            n := !n + Array.length original)
          float_weights;
        !accum /. float_of_int !n
      in
      let bytes = float_of_int (Compass_nn.Quant.storage_bits ~bits params) /. 8. in
      let chips =
        bytes /. Compass_arch.Config.capacity_bytes Compass_arch.Config.chip_s
      in
      Table.add_row table
        [
          string_of_int bits;
          Units.bytes_to_string bytes;
          Printf.sprintf "%.4f" chips;
          Printf.sprintf "%.2e" (Compass_nn.Tensor.max_abs_diff reference out);
          Printf.sprintf "%.2e" mse;
        ])
    [ 2; 3; 4; 6; 8 ];
  Table.print table;
  print_newline ();
  print_endline
    "Each extra bit doubles crossbar column usage; 4 bits (the paper's and\n\
     Jia et al.'s operating point) keeps functional error small while\n\
     halving the footprint of an 8-bit deployment."

(* -------------------------------------------------------------------- *)
(* GA stability across seeds                                            *)

let stability () =
  section_banner "stability" "GA result spread across random seeds, ResNet18-M-16";
  let model = Compass_nn.Models.resnet18 () in
  let chip = Compass_arch.Config.by_label "M" in
  let units = Unit_gen.generate model chip in
  let validity = Validity.build units in
  let ctx = Dataflow.context units in
  let results =
    List.map
      (fun seed ->
        let r =
          Ga.optimize ~params:{ Ga.default_params with Ga.seed } ctx validity ~batch:16
        in
        (seed, r.Ga.best.Ga.perf.Estimator.throughput_per_s,
         Partition.partition_count r.Ga.best.Ga.group))
      [ 1; 2; 3; 4; 5 ]
  in
  let table =
    Table.create ~aligns:[ Table.Right; Table.Right; Table.Right ]
      [ "seed"; "throughput"; "partitions" ]
  in
  List.iter
    (fun (seed, thpt, parts) ->
      Table.add_row table
        [ string_of_int seed; Printf.sprintf "%.1f/s" thpt; string_of_int parts ])
    results;
  Table.print table;
  let thpts = List.map (fun (_, t, _) -> t) results in
  let spread = (Stats.maximum thpts -. Stats.minimum thpts) /. Stats.mean thpts in
  let greedy = Estimator.evaluate ctx ~batch:16 (Baselines.greedy validity) in
  Printf.printf
    "\nspread: %.1f%% of mean; worst seed still beats greedy (%.1f/s) by %.2fx.\n"
    (100. *. spread) greedy.Estimator.throughput_per_s
    (Stats.minimum thpts /. greedy.Estimator.throughput_per_s)

(* -------------------------------------------------------------------- *)
(* Parallel GA evaluation: wall-clock speedup and determinism           *)

let parallel () =
  section_banner "parallel"
    "GA search wall-clock vs worker domains (-j), VGG16-S-16";
  let model = Compass_nn.Models.vgg16 () in
  let chip = Compass_arch.Config.chip_s in
  let units = Unit_gen.generate model chip in
  let validity = Validity.build units in
  let ctx = Dataflow.context units in
  let batch = 16 in
  let run jobs =
    let params = { Ga.default_params with Ga.seed = 42; Ga.jobs = jobs } in
    let t0 = Unix.gettimeofday () in
    let r = Ga.optimize ~params ctx validity ~batch in
    (Unix.gettimeofday () -. t0, r)
  in
  Printf.printf "host: %d recommended domains\n\n" (Domain.recommended_domain_count ());
  let t1, r1 = run 1 in
  let table =
    Table.create ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Left ]
      [ "jobs"; "wall clock"; "speedup"; "identical to j=1" ]
  in
  Table.add_row table [ "1"; Printf.sprintf "%.2f s" t1; "1.00x"; "-" ];
  List.iter
    (fun jobs ->
      let t, r = run jobs in
      let identical =
        Partition.equal r.Ga.best.Ga.group r1.Ga.best.Ga.group
        && r.Ga.best.Ga.fitness = r1.Ga.best.Ga.fitness
        && r.Ga.history = r1.Ga.history
      in
      Table.add_row table
        [
          string_of_int jobs;
          Printf.sprintf "%.2f s" t;
          Printf.sprintf "%.2fx" (t1 /. t);
          (if identical then "yes" else "NO (BUG)");
        ])
    [ 2; 4; 8 ];
  Table.print table;
  print_newline ();
  print_endline
    "Candidate evaluation fans out over a persistent domain pool; mutation,\n\
     selection and all RNG draws stay on the main domain, so the search\n\
     result is bit-identical for every -j (verified above).  Speedup tracks\n\
     the physical core count; on a single-core host the extra domains only\n\
     add scheduling overhead."

(* -------------------------------------------------------------------- *)
(* Fault tolerance: degraded-capacity compilation, repair, endurance    *)

let faults () =
  section_banner "faults"
    "graceful degradation under core faults, plan repair, endurance accounting";
  let open Compass_arch in
  let batch = 16 in
  (* Latency-degradation curve: ResNet18 at batch 16 on each chip, with k
     randomly chosen dead cores (fixed seed so the table is reproducible). *)
  let dead_counts = [ 0; 1; 2; 4 ] in
  let table =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "chip"; "dead"; "usable"; "latency"; "throughput"; "slowdown" ]
  in
  List.iter
    (fun chip_label ->
      let chip = Config.by_label chip_label in
      let model = Compass_nn.Models.by_name "resnet18" in
      let mpc = chip.Config.core.Config.macros_per_core in
      let baseline = ref nan in
      List.iter
        (fun k ->
          let faults =
            if k = 0 then None
            else
              Some
                (Fault.of_string
                   (Printf.sprintf "random:dead=%d" k)
                   ~seed:2026 ~cores:chip.Config.cores ~macros_per_core:mpc)
          in
          let p = Compiler.compile ?faults ~model ~chip ~batch Compiler.Greedy in
          let lat = p.Compiler.perf.Estimator.batch_latency_s in
          if k = 0 then baseline := lat;
          Table.add_row table
            [
              chip_label;
              string_of_int k;
              Printf.sprintf "%d/%d" (chip.Config.cores - k) chip.Config.cores;
              Units.time_to_string lat;
              Printf.sprintf "%.1f/s" p.Compiler.perf.Estimator.throughput_per_s;
              Printf.sprintf "%.2fx" (lat /. !baseline);
            ])
        dead_counts)
    chips;
  Table.print table;
  print_newline ();
  print_endline
    "The mapper re-packs around dead cores: losing 1-2 of 16 cores costs\n\
     far less than the proportional capacity because first-fit slack\n\
     absorbs most of the loss; the small chip S, already tight on\n\
     capacity, degrades fastest.";
  (* Mid-run fault injection and plan repair. *)
  print_newline ();
  let chip = Config.by_label "M" in
  let model = Compass_nn.Models.by_name "resnet18" in
  let p = Compiler.compile ~model ~chip ~batch Compiler.Greedy in
  let scenario = "dead:3,11;degraded:5=8" in
  let faults =
    Fault.of_string scenario ~seed:0 ~cores:chip.Config.cores
      ~macros_per_core:chip.Config.core.Config.macros_per_core
  in
  let healthy = Compiler.measure p in
  let at_s = healthy.Compiler.sim.Compass_isa.Sim.makespan_s /. 3. in
  (match Compiler.measure_with_faults p ~at_s ~faults with
  | Error e -> Printf.printf "repair failed: %s\n" e
  | Ok run ->
    Printf.printf
      "mid-run failure on resnet18-M-%d (greedy): scenario \"%s\" at t=%s\n"
      batch scenario (Units.time_to_string at_s);
    Printf.printf "  faulted run: %s makespan, %d instructions dropped on cores %s\n"
      (Units.time_to_string run.Compiler.faulted_sim.Compass_isa.Sim.makespan_s)
      run.Compiler.faulted_sim.Compass_isa.Sim.dropped_instructions
      (String.concat ","
         (List.map string_of_int run.Compiler.faulted_sim.Compass_isa.Sim.dead_cores));
    let r = run.Compiler.repair in
    Printf.printf "  repair: %s, latency %s -> %s (%.2fx degradation)\n"
      (match r.Compiler.strategy with
      | Compiler.Unchanged -> "re-mapped only"
      | Compiler.Remapped n -> Printf.sprintf "re-split %d span(s)" n
      | Compiler.Recompiled -> "full recompile")
      (Units.time_to_string r.Compiler.latency_before_s)
      (Units.time_to_string r.Compiler.latency_after_s)
      r.Compiler.degradation;
    Printf.printf "  recovery latency (abort + rerun on repaired plan): %s\n"
      (Units.time_to_string run.Compiler.recovery_latency_s));
  (* Endurance accounting against the ReRAM write budget. *)
  print_newline ();
  let budget =
    Option.value ~default:1e6 Technology.reram.Technology.endurance_cycles
  in
  let plans =
    List.map
      (fun (m, c) -> plan m c batch Compiler.Greedy)
      [ ("resnet18", "S"); ("resnet18", "M"); ("vgg16", "S"); ("squeezenet", "S") ]
  in
  Printf.printf "endurance at the ReRAM budget (%.0e writes/cell):\n" budget;
  Table.print (Report.endurance_table ~endurance_cycles:budget plans);
  print_newline ();
  print_endline
    "Partition-by-partition weight replacement rewrites each macro once per\n\
     batch at most; the worst macro column drives lifetime, so larger\n\
     batches and fewer partitions both extend it (see also the envm\n\
     section and the wear objective, --objective wear)."

(* -------------------------------------------------------------------- *)
(* Exact DP vs the GA: optimality gaps and estimator-evaluation counts  *)

let dp () =
  section_banner "dp" "exact DP partitioning: optimality gap and search cost";
  List.iter
    (fun (model_name, chip_label, batch) ->
      let model = Compass_nn.Models.by_name model_name in
      let chip = Compass_arch.Config.by_label chip_label in
      Printf.printf "\n%s-%s-%d (objective latency):\n" model_name chip_label batch;
      let t0 = Unix.gettimeofday () in
      let dp_result, rows = Report.optimality_gap ~model ~chip ~batch () in
      let t1 = Unix.gettimeofday () in
      Table.print (Report.optimality_gap_table ~objective:Fitness.Latency (dp_result, rows));
      let s = dp_result.Optimal.stats in
      Printf.printf
        "dp: %d valid spans, %d span evaluations, %d edges, %d group evaluation(s)\n"
        s.Optimal.valid_spans s.Optimal.spans_evaluated s.Optimal.edges_relaxed
        s.Optimal.group_evaluations;
      let ga =
        match (plan model_name chip_label batch Compiler.Compass).Compiler.ga with
        | Some ga -> ga
        | None -> assert false
      in
      Printf.printf
        "ga: %d group evaluations, %d distinct spans — %.0fx more group \
         evaluations than the DP\n"
        ga.Ga.evaluations ga.Ga.cache_spans
        (float_of_int ga.Ga.evaluations /. float_of_int s.Optimal.group_evaluations);
      Printf.printf "all four schemes (shared span cache): %.1f ms\n"
        (1000. *. (t1 -. t0)))
    [ ("resnet18", "S", 16); ("resnet18", "M", 16) ]

(* -------------------------------------------------------------------- *)
(* Bechamel micro-benchmarks                                            *)

let micro () =
  section_banner "micro" "Bechamel micro-benchmarks of the compiler's hot paths";
  let open Bechamel in
  let resnet = Compass_nn.Models.resnet18 () in
  let chip = Compass_arch.Config.chip_s in
  let units = Unit_gen.generate resnet chip in
  let validity = Validity.build units in
  let ctx = Dataflow.context units in
  let ctx_no_table = Dataflow.context ~span_table:false units in
  let mid_stop = Validity.max_end validity 0 in
  let greedy = Baselines.greedy validity in
  let trace = [ Compass_dram.Trace.read ~addr:0 ~bytes:(1 lsl 20) () ] in
  let tests =
    Test.make_grouped ~name:"compass"
      [
        Test.make ~name:"table2/model_summary"
          (Staged.stage (fun () -> Compass_nn.Summary.of_graph resnet));
        Test.make ~name:"fig5/unit_generation"
          (Staged.stage (fun () -> Unit_gen.generate resnet chip));
        Test.make ~name:"fig5/validity_build"
          (Staged.stage (fun () -> Validity.build units));
        Test.make ~name:"fig6/span_perf"
          (Staged.stage (fun () ->
               Estimator.span_perf ctx ~batch:16 ~start_:0 ~stop:mid_stop));
        Test.make ~name:"fig6/group_evaluate"
          (Staged.stage (fun () -> Estimator.evaluate ctx ~batch:16 greedy));
        Test.make ~name:"fig6/group_evaluate_no_table"
          (Staged.stage (fun () -> Estimator.evaluate ctx_no_table ~batch:16 greedy));
        Test.make ~name:"fig7/schedule_build"
          (Staged.stage (fun () -> Scheduler.build ctx greedy ~batch:4 ()));
        Test.make ~name:"fig10/ga_quick"
          (Staged.stage (fun () ->
               Ga.optimize
                 ~params:
                   {
                     Ga.quick_params with
                     Ga.population = 8;
                     generations = 2;
                     n_sel = 3;
                     n_mut = 5;
                   }
                 ctx validity ~batch:16));
        Test.make ~name:"dp/optimize_cold"
          (Staged.stage (fun () -> Optimal.optimize ctx validity ~batch:16));
        Test.make ~name:"dp/optimize_warm"
          (* Every span pre-cached: measures the pure DP sweep. *)
          (let warm = Estimator.Span_cache.create ~batch:16 () in
           ignore (Optimal.optimize ~cache:warm ctx validity ~batch:16);
           Staged.stage (fun () -> Optimal.optimize ~cache:warm ctx validity ~batch:16));
        Test.make ~name:"dram/replay_1MB"
          (Staged.stage (fun () -> Compass_dram.Dram.simulate trace));
      ]
  in
  let cfg = Benchmark.cfg ~limit:400 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let table =
    Table.create ~aligns:[ Table.Left; Table.Right; Table.Right ]
      [ "benchmark"; "time/run"; "r2" ]
  in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      let time_ns =
        match Analyze.OLS.estimates result with Some (t :: _) -> t | _ -> nan
      in
      let r2 = Option.value ~default:nan (Analyze.OLS.r_square result) in
      Table.add_row table
        [ name; Units.time_to_string (time_ns *. 1e-9); Printf.sprintf "%.4f" r2 ])
    (List.sort compare rows);
  Table.print table

(* -------------------------------------------------------------------- *)
(* Self-healing recovery: ABFT detection overhead and escalation        *)

let recover () =
  section_banner "recover"
    "ABFT detection overhead (budget: <5% simulated latency) and recovery \
     escalation";
  (* Detection overhead: the same plan lowered with and without per-chunk
     Check instructions, run through the chip simulator.  The checksum
     probe is VFU-rate work pipelined with compute, so it must stay well
     under the 5% latency budget. *)
  let table =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Left ]
      [ "config"; "makespan"; "+abft"; "overhead"; "est share"; "verdict" ]
  in
  let worst = ref 0. in
  List.iter
    (fun (model_name, chip_label) ->
      let p = plan model_name chip_label 16 Compiler.Greedy in
      let base = Compiler.measure p in
      let abft = Compiler.measure ~abft:true p in
      let base_s = base.Compiler.sim.Compass_isa.Sim.makespan_s in
      let abft_s = abft.Compiler.sim.Compass_isa.Sim.makespan_s in
      let overhead = (abft_s /. base_s) -. 1. in
      worst := max !worst overhead;
      let options = { Estimator.default_options with Estimator.abft = true } in
      let perf = Estimator.evaluate ~options p.Compiler.ctx ~batch:16 p.Compiler.group in
      let check_s =
        List.fold_left (fun a s -> a +. s.Estimator.check_s) 0. perf.Estimator.spans
      in
      Table.add_row table
        [
          Printf.sprintf "%s-%s-16" model_name chip_label;
          Units.time_to_string base_s;
          Units.time_to_string abft_s;
          Printf.sprintf "%.2f%%" (100. *. overhead);
          Printf.sprintf "%.2f%%" (100. *. check_s /. perf.Estimator.batch_latency_s);
          (if overhead < 0.05 then "PASS" else "FAIL");
        ])
    [ ("lenet5", "S"); ("resnet18", "S"); ("resnet18", "M"); ("squeezenet", "S") ];
  Table.print table;
  Printf.printf "worst detection overhead: %.2f%% (budget 5%%) %s\n" (100. *. !worst)
    (if !worst < 0.05 then "PASS" else "FAIL");
  (* Escalation behaviour: one inference under each cell-fault class. *)
  print_newline ();
  let model = Compass_nn.Models.by_name "lenet5" in
  let chip = Compass_arch.Config.chip_s in
  let p = plan "lenet5" "S" 16 Compiler.Greedy in
  let weights = Compass_nn.Executor.random_weights model in
  let input = Compass_nn.Executor.random_input model in
  let mpc = chip.Compass_arch.Config.core.Compass_arch.Config.macros_per_core in
  let esc =
    Table.create
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Left; Table.Left ]
      [ "scenario"; "checks"; "detected"; "retries"; "remaps"; "outcome"; "bit-identical" ]
  in
  List.iter
    (fun spec ->
      let faults =
        Compass_arch.Fault.of_string spec ~seed:0
          ~cores:chip.Compass_arch.Config.cores ~macros_per_core:mpc
      in
      let r = Recovery.run ~seed:42 ~faults ~weights ~input p in
      Table.add_row esc
        [
          spec;
          string_of_int r.Recovery.checks;
          string_of_int r.Recovery.detections;
          string_of_int r.Recovery.retries;
          string_of_int r.Recovery.remaps;
          (match r.Recovery.outcome with
          | Recovery.Clean -> "clean"
          | Recovery.Healed -> "healed"
          | Recovery.Degraded_output -> "degraded");
          string_of_bool r.Recovery.bit_identical;
        ])
    [ "none"; "transient:2"; "flip:1"; "drift:1e-06" ];
  Table.print esc;
  print_newline ();
  print_endline
    "Transients clear on retry; persistent flips and drift need one core\n\
     retirement + plan repair; every healed run is bit-identical to the\n\
     fault-free reference (exact integer checksums, zero false negatives)."

(* -------------------------------------------------------------------- *)
(* Observability: instrumentation overhead, enabled vs disabled         *)

let observe () =
  section_banner "observe"
    "tracing/metrics instrumentation overhead (budget: <2% enabled)";
  let model = Compass_nn.Models.resnet18 () in
  let chip = Compass_arch.Config.chip_s in
  let prepared = Compiler.prepare ~model ~chip () in
  let params = { Ga.quick_params with Ga.seed = 7 } in
  let compile () =
    ignore
      (Compiler.compile_prepared ~ga_params:params ~batch:16 prepared Compiler.Compass)
  in
  let time_one () =
    let t0 = Unix.gettimeofday () in
    compile ();
    Unix.gettimeofday () -. t0
  in
  let repeats = 15 in
  let sample () =
    let a = Array.init repeats (fun _ -> time_one ()) in
    Array.sort compare a;
    a.(repeats / 2)
  in
  compile ();
  (* warm-up *)
  let off = sample () in
  Trace.enable ();
  Metrics.enable ();
  let on_ = sample () in
  Trace.disable ();
  Metrics.disable ();
  Trace.reset ();
  Metrics.reset ();
  let overhead = 100. *. ((on_ /. off) -. 1.) in
  Printf.printf "disabled: %s/compile (median of %d)\nenabled:  %s/compile\n"
    (Units.time_to_string off) repeats
    (Units.time_to_string on_);
  Printf.printf "observe overhead: %.2f%% (budget 2%%) %s\n" overhead
    (if overhead < 2. then "PASS" else "FAIL")

(* -------------------------------------------------------------------- *)
(* Inference kernels: im2col/GEMM vs naive, batched serving rate        *)

let infer () =
  section_banner "infer"
    "im2col/GEMM kernel speedup vs naive (floor: >=3x on resnet18) and \
     batched serving rate";
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  (* vgg16's naive forward pass takes ~1.5 min; keep the default run
     CI-affordable and include it only on request. *)
  let full = Sys.getenv_opt "COMPASS_BENCH_INFER_FULL" <> None in
  let names = if full then [ "squeezenet"; "resnet18"; "vgg16" ] else [ "squeezenet"; "resnet18" ] in
  let table =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Left ]
      [ "model"; "naive"; "gemm"; "speedup"; "bit-identical" ]
  in
  let gate = ref 0. in
  List.iter
    (fun name ->
      let model = Compass_nn.Models.by_name name in
      let weights = Compass_nn.Executor.random_weights ~seed:11 model in
      let input = Compass_nn.Executor.random_input ~seed:42 model in
      let naive_s, naive_out =
        time (fun () ->
            Compass_nn.Executor.output ~engine:Compass_nn.Executor.Naive model weights input)
      in
      (* Median of 3 for the fast engine; the naive pass is slow enough
         that a single run is stable. *)
      let runs =
        Array.init 3 (fun _ ->
            time (fun () ->
                Compass_nn.Executor.output ~engine:Compass_nn.Executor.Gemm model weights input))
      in
      Array.sort compare runs;
      let gemm_s, gemm_out = runs.(1) in
      let speedup = naive_s /. gemm_s in
      if name = "resnet18" then gate := speedup;
      Table.add_row table
        [
          name;
          Units.time_to_string naive_s;
          Units.time_to_string gemm_s;
          Printf.sprintf "%.1fx" speedup;
          (if Compass_nn.Tensor.equal ~eps:0. naive_out gemm_out then "yes" else "NO");
        ])
    names;
  Table.print table;
  Printf.printf "infer speedup floor (resnet18, >=3x): %.1fx %s\n" !gate
    (if !gate >= 3. then "PASS" else "FAIL");
  (* Serving rate: batched traversal amortizes graph walking and weight
     lookups across samples; on multi-core hosts a pool fans samples out. *)
  print_newline ();
  let model = Compass_nn.Models.by_name "resnet18" in
  let weights = Compass_nn.Executor.random_weights ~seed:11 model in
  let serving =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right ]
      [ "batch"; "total"; "images/s" ]
  in
  List.iter
    (fun batch ->
      let inputs =
        Array.init batch (fun i -> Compass_nn.Executor.random_input ~seed:(42 + i) model)
      in
      let batch_s, _ =
        time (fun () -> Compass_nn.Executor.output_batch model weights inputs)
      in
      Table.add_row serving
        [
          string_of_int batch;
          Units.time_to_string batch_s;
          Printf.sprintf "%.2f" (float_of_int batch /. batch_s);
        ])
    [ 1; 2; 4; 8 ];
  Table.print serving;
  (* Partitioned replay inherits the kernels: same plan, same bits.  The
     chip preset changes the partition count, not the arithmetic. *)
  print_newline ();
  let input = Compass_nn.Executor.random_input ~seed:42 model in
  let reference = Compass_nn.Executor.output model weights input in
  List.iter
    (fun chip_label ->
      let p = plan "resnet18" chip_label 16 Compiler.Greedy in
      let replay_s, replay =
        time (fun ()
              -> Partition_exec.run ~engine:Compass_nn.Executor.Gemm p.Compiler.ctx
                   p.Compiler.group weights input)
      in
      Printf.printf
        "partitioned replay (resnet18-%s, %d partitions, gemm): %s, bit-identical %s\n"
        chip_label replay.Partition_exec.partitions_executed
        (Units.time_to_string replay_s)
        (if Compass_nn.Tensor.equal ~eps:0. reference replay.Partition_exec.output then "yes"
         else "NO"))
    [ "S"; "M"; "L" ]

(* -------------------------------------------------------------------- *)
(* Chaos machinery: disabled-failpoint overhead and supervision cost    *)

(* Every site the libraries guard; keep in sync with docs/FORMATS.md. *)
let failpoint_sites =
  [
    "artifact.write.open"; "artifact.write.mid"; "artifact.write.syscall";
    "artifact.write.fsync"; "artifact.write.rename"; "artifact.append.open";
    "artifact.append.mid"; "artifact.append.syscall"; "artifact.read";
    "pool.task"; "plan_text.save"; "plan_text.checkpoint.save";
    "plan_text.checkpoint.load"; "ga.evaluate"; "ga.generation";
    "compiler.prepare"; "compiler.compile"; "explore.point"; "executor.batch";
  ]

let chaos () =
  section_banner "chaos"
    "failpoint guard overhead on the disabled path (budget: <1% of a compile)";
  (* ns per guard, disarmed: the only cost every production run pays. *)
  Failpoint.clear ();
  let time_guards calls =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to calls do
      Failpoint.guard "bench.probe"
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int calls *. 1e9
  in
  let disabled_ns = time_guards 10_000_000 in
  (* Armed but matching nothing: the worst realistic cost while a
     schedule targets some other site. *)
  let armed_ns =
    Failpoint.with_schedule "no.such.site=raise@always" (fun () ->
        time_guards 1_000_000)
  in
  Printf.printf "guard: disabled %.2f ns/call, armed non-matching %.0f ns/call\n"
    disabled_ns armed_ns;
  (* Guards traversed by one compile, counted under an armed schedule
     that never fires (hit counters only run while armed). *)
  let model = Compass_nn.Models.resnet18 () in
  let chip = Compass_arch.Config.chip_s in
  let prepared = Compiler.prepare ~model ~chip () in
  let params = { Ga.quick_params with Ga.seed = 7 } in
  let compile () =
    ignore
      (Compiler.compile_prepared ~ga_params:params ~batch:16 prepared Compiler.Compass)
  in
  compile ();
  (* warm-up *)
  let guards =
    Failpoint.with_schedule "no.such.site=raise@always" (fun () ->
        compile ();
        List.fold_left (fun acc s -> acc + Failpoint.hits s) 0 failpoint_sites)
  in
  (* Compile wall clock with failpoints disarmed (median). *)
  let repeats = 9 in
  let samples =
    Array.init repeats (fun _ ->
        let t0 = Unix.gettimeofday () in
        compile ();
        Unix.gettimeofday () -. t0)
  in
  Array.sort compare samples;
  let compile_s = samples.(repeats / 2) in
  (* A/B medians of a whole compile cannot resolve a sub-0.1% effect
     above scheduler noise, so the gate is analytic: guards per compile
     times the measured per-guard cost, over the compile time. *)
  let overhead = float_of_int guards *. disabled_ns *. 1e-9 /. compile_s in
  Printf.printf
    "compile: %d guard sites traversed, %s median wall clock (disarmed)\n" guards
    (Units.time_to_string compile_s);
  Printf.printf "chaos overhead: %.4f%% (budget 1%%) %s\n" (100. *. overhead)
    (if overhead < 0.01 then "PASS" else "FAIL");
  (* Supervision cost: the retry machinery only acts after a failure, so
     a clean phase should pay nothing measurable. *)
  print_newline ();
  let xs = Array.init 200 Fun.id in
  let work x =
    let acc = ref 0 in
    for i = 1 to 20_000 do
      acc := !acc + ((x * i) mod 97)
    done;
    !acc
  in
  Pool.with_pool ~jobs:2 (fun pool ->
      let time_map supervision =
        let t0 = Unix.gettimeofday () in
        for _ = 1 to 5 do
          ignore (Pool.map ?supervision pool work xs)
        done;
        (Unix.gettimeofday () -. t0) /. 5.
      in
      ignore (time_map None);
      (* warm-up *)
      let plain = time_map None in
      let supervised = time_map (Some (Pool.supervision ~retries:2 ())) in
      Printf.printf
        "pool phase (200 tasks, jobs=2): plain %s, supervised %s (%.1f%% delta, \
         informational)\n"
        (Units.time_to_string plain)
        (Units.time_to_string supervised)
        (100. *. ((supervised /. plain) -. 1.)))

(* -------------------------------------------------------------------- *)
(* Serving runtime: envelope floor, dispatch overhead, latency tail     *)

let serve () =
  section_banner "serve"
    "serving-engine envelope floor, dispatch overhead vs a direct call \
     (budget: <5%) and request latency quantiles";
  let open Compass_serve in
  Metrics.reset ();
  Metrics.enable ();
  let not_ok = ref 0 in
  let server =
    Server.create
      ~respond:(fun r ->
        match r.Protocol.status with
        | Protocol.Ok | Protocol.Degraded -> ()
        | _ -> incr not_ok)
      ()
  in
  Fun.protect ~finally:(fun () ->
      Server.close server;
      Metrics.disable ();
      Metrics.reset ())
  @@ fun () ->
  (* Envelope floor: a ping exercises parse + admission + dispatch +
     response assembly and no compiler work at all. *)
  let pings = 10_000 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to pings do
    Server.submit server [ Printf.sprintf "request p%d ping" i ]
  done;
  let ping_s = Unix.gettimeofday () -. t0 in
  Printf.printf "envelope floor: %d pings in %s (%.1f us/request)\n" pings
    (Units.time_to_string ping_s)
    (ping_s /. float_of_int pings *. 1e6);
  (* Dispatch overhead: the same inference done through a request
     envelope and as a direct library call.  The engine's path adds
     parsing, admission, budget plumbing and digesting — it must stay
     a rounding error next to the forward passes themselves. *)
  let model_name = "squeezenet" and batch = 2 and seed = 11 in
  let model = Compass_nn.Models.by_name model_name in
  let digest out =
    let data = Compass_nn.Tensor.to_array out in
    let b = Buffer.create (8 * Array.length data) in
    Array.iter (fun v -> Buffer.add_int64_le b (Int64.bits_of_float v)) data;
    Digest.to_hex (Digest.string (Buffer.contents b))
  in
  let direct () =
    let weights = Compass_nn.Executor.random_weights ~seed model in
    let inputs =
      Array.init batch (fun i ->
          Compass_nn.Executor.random_input ~seed:(seed + 100 + i) model)
    in
    let outputs = Compass_nn.Executor.output_batch model weights inputs in
    Array.iter (fun out -> ignore (digest out)) outputs
  in
  let engine () =
    Server.submit server
      [
        "request bench-infer infer";
        Printf.sprintf "model %s" model_name;
        Printf.sprintf "batch %d" batch;
        Printf.sprintf "seed %d" seed;
      ];
    while Server.step server do
      ()
    done
  in
  let median f =
    f ();
    (* warm-up *)
    let a =
      Array.init 5 (fun _ ->
          let t0 = Unix.gettimeofday () in
          f ();
          Unix.gettimeofday () -. t0)
    in
    Array.sort compare a;
    a.(2)
  in
  let direct_s = median direct in
  let engine_s = median engine in
  let overhead = 100. *. ((engine_s /. direct_s) -. 1.) in
  Printf.printf
    "infer %s batch %d: direct %s, via engine %s (medians of 5)\n" model_name
    batch
    (Units.time_to_string direct_s)
    (Units.time_to_string engine_s);
  Printf.printf "serve dispatch overhead: %.2f%% (budget 5%%) %s\n" overhead
    (if overhead < 5. then "PASS" else "FAIL");
  (* Latency tail over a mixed workload, read back from the same
     serve.latency_s histogram the daemon flushes with --metrics. *)
  let compile i =
    [
      Printf.sprintf "request c%d compile" i;
      "model lenet5";
      "chip S";
      "batch 4";
      Printf.sprintf "seed %d" i;
    ]
  in
  for i = 1 to 4 do
    Server.submit server (compile i);
    engine ()
  done;
  while Server.step server do
    ()
  done;
  let count =
    Option.value ~default:0 (Metrics.find_int "serve.latency_s.count")
  in
  let q p =
    match Metrics.quantile "serve.latency_s" p with
    | Some v -> Units.time_to_string v
    | None -> "n/a"
  in
  Printf.printf "latency (%d timed requests): p50 %s, p99 %s\n" count (q 0.5)
    (q 0.99);
  Printf.printf "serve responses all ok: %s\n"
    (if !not_ok = 0 then "PASS" else Printf.sprintf "FAIL (%d not ok)" !not_ok)

(* -------------------------------------------------------------------- *)

let sections =
  [
    ("table1", table1);
    ("table2", table2);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("validate", validate);
    ("ablation", ablation);
    ("envm", envm);
    ("quant", quant);
    ("stability", stability);
    ("onchip", onchip);
    ("model_ablation", model_ablation);
    ("parallel", parallel);
    ("faults", faults);
    ("recover", recover);
    ("dp", dp);
    ("micro", micro);
    ("observe", observe);
    ("infer", infer);
    ("chaos", chaos);
    ("serve", serve);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst sections
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown section %s (available: %s)\n" name
          (String.concat ", " (List.map fst sections));
        exit 2)
    requested;
  Printf.printf "\nDone: %s\n" (String.concat ", " requested)
