(* compass — command-line front end for the COMPASS compiler framework.

   Subcommands:
     info      hardware presets and model zoo summaries
     compile   run one scheme on one workload, print the plan
     verify    independently re-check an archived plan's legality
     validity  render a partition validity map (paper Fig. 5)
     sweep     compare compass/greedy/layerwise across workloads (Fig. 6)
     gap       optimality gap of every scheme against the exact DP bound
     infer     host functional inference throughput (im2col/GEMM engine)
     serve     long-lived request daemon (admission control, deadlines,
               circuit breaker, graceful drain; wire format in FORMATS.md)

   Exit codes (documented in README.md):
     0  success
     1  verify: the plan violates at least one invariant
     2  user error (unknown names, malformed files, infeasible scenarios)
     3  internal error — a compass bug, with a bug-report hint on stderr  *)

open Cmdliner
open Compass_core

let model_arg =
  let doc =
    "Network model: " ^ String.concat ", " Compass_nn.Models.all_names ^ "."
  in
  Arg.(value & opt string "resnet18" & info [ "m"; "model" ] ~docv:"MODEL" ~doc)

let chip_arg =
  let doc = "Chip preset: S, M or L (paper Table I)." in
  Arg.(value & opt string "S" & info [ "c"; "chip" ] ~docv:"CHIP" ~doc)

let batch_arg =
  let doc = "Batch size per weight-replacement round." in
  Arg.(value & opt int 16 & info [ "b"; "batch" ] ~docv:"N" ~doc)

let scheme_arg =
  let doc =
    "Partitioning scheme: compass (GA), greedy, layerwise, or dp (exact \
     dynamic programming over the valid-span DAG)."
  in
  Arg.(value & opt string "compass" & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc)

let warm_start_arg =
  let doc =
    "Seed the GA with the DP optimum (compass scheme only): the exact \
     latency/energy optimizer runs first and its group joins the initial \
     population."
  in
  Arg.(value & flag & info [ "warm-start" ] ~doc)

let objective_arg =
  let doc = "GA objective: latency, energy, edp or wear." in
  Arg.(value & opt string "latency" & info [ "o"; "objective" ] ~docv:"OBJ" ~doc)

let faults_arg =
  let doc =
    "Fault scenario, e.g. 'dead:3,7', 'degraded:1=4', 'random:dead=2', \
     'dead:3;endurance:1e6', or 'none' (grammar in docs/FORMATS.md).  The plan \
     routes around dead and degraded cores."
  in
  Arg.(value & opt string "none" & info [ "faults" ] ~docv:"SPEC" ~doc)

let fault_seed_arg =
  let doc = "Seed for 'random:' fault clauses (deterministic scenarios)." in
  Arg.(value & opt int 0 & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let seed_arg =
  let doc = "GA random seed." in
  Arg.(value & opt int Ga.default_params.Ga.seed & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for GA candidate evaluation (default: the COMPASS_JOBS \
     environment variable, else 1; 0 picks the machine's recommended domain \
     count).  The compiled plan is bit-identical for every value."
  in
  Arg.(
    value
    & opt int (Compass_util.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let simulate_arg =
  let doc = "Also lower to instructions, simulate, and replay the DRAM trace." in
  Arg.(value & flag & info [ "simulate" ] ~doc)

let quick_arg =
  let doc = "Use a small GA budget (population 24, 10 generations)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let tech_arg =
  let doc = "IMC technology: sram, reram or mram (paper Sec. V-B)." in
  Arg.(value & opt string "sram" & info [ "tech" ] ~docv:"TECH" ~doc)

let lookup_tech name =
  try Compass_arch.Technology.by_name name
  with Not_found ->
    Printf.eprintf "unknown technology %s (try sram, reram, mram)\n" name;
    exit 2

let retarget ~tech chip =
  if tech.Compass_arch.Technology.name = "sram" then chip
  else Compass_arch.Technology.chip tech chip

let lookup_model name =
  try Compass_nn.Models.by_name name
  with Not_found ->
    Printf.eprintf "unknown model %s (try: %s)\n" name
      (String.concat ", " Compass_nn.Models.all_names);
    exit 2

let lookup_chip label =
  try Compass_arch.Config.by_label label
  with Not_found ->
    Printf.eprintf "unknown chip %s (try S, M, L)\n" label;
    exit 2

(* Misuse (unknown scheme names, bad fault specs, malformed artifact
   files, infeasible fault scenarios, ...) surfaces as Invalid_argument /
   Load_error / Sys_error from the library: one-line diagnostic, exit 2.
   Injected chaos (--failpoints / COMPASS_FAILPOINTS) counts as an
   environment failure, not a bug: Failpoint.Injected and simulated
   syscall errors also exit 2, as does a supervised pool task that
   exhausted its retries on one of those.  Anything else escaping the
   library is a compass bug: exit 3 with a bug-report hint.
   COMPASS_INTERNAL_FAULT=1 injects a synthetic internal failure so the
   exit-3 path itself is testable. *)
let guard f =
  let internal e =
    Printf.eprintf
      "compass: internal error: %s\n\
       This is a bug in compass, not in your input.  Please report it together\n\
       with the exact command line and any input files.\n"
      (Printexc.to_string e);
    exit 3
  in
  let user msg =
    Printf.eprintf "compass: %s\n" msg;
    exit 2
  in
  try
    (match Sys.getenv_opt "COMPASS_INTERNAL_FAULT" with
    | Some "1" -> failwith "synthetic internal fault (COMPASS_INTERNAL_FAULT=1)"
    | Some _ | None -> ());
    f ()
  with
  | Invalid_argument msg | Sys_error msg | Plan_text.Load_error msg -> user msg
  | Compass_nn.Model_text.Parse_error (line, msg) ->
    Printf.eprintf "compass: line %d: %s\n" line msg;
    exit 2
  | Compass_util.Failpoint.Injected site ->
    user (Printf.sprintf "injected failpoint %s fired" site)
  | Unix.Unix_error (e, fn, arg) ->
    user
      (Printf.sprintf "%s%s: %s" fn
         (if arg = "" then "" else " " ^ arg)
         (Unix.error_message e))
  | Compass_util.Pool.Task_error { index; attempts; error; _ } -> (
    let located msg =
      user (Printf.sprintf "task %d failed after %d attempt(s): %s" index attempts msg)
    in
    match error with
    | Invalid_argument msg | Sys_error msg | Plan_text.Load_error msg -> located msg
    | Compass_util.Failpoint.Injected site ->
      located (Printf.sprintf "injected failpoint %s fired" site)
    | Unix.Unix_error (e, fn, arg) ->
      located
        (Printf.sprintf "%s%s: %s" fn
           (if arg = "" then "" else " " ^ arg)
           (Unix.error_message e))
    | e -> internal e)
  | e -> internal e

let failpoints_arg =
  let doc =
    "Arm a deterministic failpoint schedule for this run (chaos drills), e.g. \
     'artifact.write.mid=raise@once' or 'pool.task=raise@nth:3'.  Grammar and \
     site catalogue in docs/FORMATS.md; also settable via the \
     COMPASS_FAILPOINTS environment variable."
  in
  Arg.(value & opt (some string) None & info [ "failpoints" ] ~docv:"SPEC" ~doc)

let task_retries_arg =
  let doc =
    "Supervise parallel workers: re-execute a crashed pool task up to $(docv) \
     times on the main domain before giving up (0, the default, surfaces the \
     first failure as a located diagnostic).  Task evaluation is pure, so a \
     recovered run is bit-identical to an unfailed one."
  in
  Arg.(value & opt int 0 & info [ "task-retries" ] ~docv:"N" ~doc)

let arm_failpoints = function
  | None -> ()
  | Some spec -> Compass_util.Failpoint.set spec  (* Invalid_argument -> exit 2 *)

let supervision_of ?watchdog retries =
  if retries < 0 then invalid_arg "--task-retries: must be >= 0"
  else if retries = 0 then None
  else Some (Compass_util.Pool.supervision ~retries ?watchdog ())

(* A torn checkpoint (crash mid-write, interrupted journal append) is
   salvaged on resume instead of failing it: the newest fully-valid
   generation continues the search, with a notice on stdout. *)
let load_checkpoint_salvaging path =
  match Plan_text.load_checkpoint path with
  | ck -> ck
  | exception Plan_text.Load_error msg -> (
    match Plan_text.salvage_checkpoint path with
    | s ->
      Printf.printf "salvaged torn checkpoint %s: resuming from generation %d%s\n%!"
        path s.Plan_text.generation
        (if s.Plan_text.dropped_records > 0 then
           Printf.sprintf " (%d torn history record(s) dropped)" s.Plan_text.dropped_records
         else "");
      s.Plan_text.recovered
    | exception Plan_text.Load_error _ ->
      raise (Plan_text.Load_error (Printf.sprintf "%s: %s" path msg)))

(* Output paths are validated before any compilation work starts, so a
   typo'd --trace/--checkpoint path fails in milliseconds with a located
   diagnostic (exit 2) instead of surfacing as a bare Sys_error after the
   search has already run. *)
let ensure_writable ~flag path =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  let dir = Filename.dirname path in
  if not (Sys.file_exists dir) then
    fail "%s %s: directory %s does not exist" flag path dir
  else if not (Sys.is_directory dir) then fail "%s %s: %s is not a directory" flag path dir
  else if Sys.file_exists path && Sys.is_directory path then
    fail "%s %s: is a directory" flag path
  else
    let probe = if Sys.file_exists path then path else dir in
    match Unix.access probe [ Unix.W_OK ] with
    | () -> ()
    | exception Unix.Unix_error _ -> fail "%s %s: permission denied" flag path

let trace_arg =
  let doc =
    "Record a structured trace of the run and write it to $(docv) as Chrome \
     trace_event JSON (open in Perfetto or chrome://tracing)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Collect typed counters and gauges during the run and print the merged \
     metrics table (plus a span summary when tracing is on) afterwards."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

(* Validate output paths, enable collection, run, then export.  Returns
   [f]'s result so callers can exit on it after the trace is written. *)
let with_observability ~trace ~metrics f =
  Option.iter (fun path -> ensure_writable ~flag:"--trace" path) trace;
  if trace <> None then Compass_util.Trace.enable ();
  if metrics then Compass_util.Metrics.enable ();
  let result = f () in
  (match trace with
  | Some path ->
    Compass_util.Trace.save_chrome path;
    Printf.printf "wrote trace to %s (open in Perfetto / chrome://tracing)\n" path
  | None -> ());
  if metrics then begin
    print_newline ();
    print_endline "metrics:";
    Compass_util.Table.print (Report.profile_table ());
    if Compass_util.Trace.enabled () then begin
      print_newline ();
      print_endline "span summary:";
      Compass_util.Table.print (Compass_util.Trace.summary_table ())
    end
  end;
  result

let realize_faults spec ~seed chip =
  let f =
    Compass_arch.Fault.of_string spec ~seed ~cores:chip.Compass_arch.Config.cores
      ~macros_per_core:chip.Compass_arch.Config.core.Compass_arch.Config.macros_per_core
  in
  if Compass_arch.Fault.is_trivial f then None else Some f

let ga_params ~quick ~seed ~jobs =
  let base = if quick then Ga.quick_params else Ga.default_params in
  let jobs =
    if jobs <= 0 then min 128 (max 1 (Domain.recommended_domain_count ()))
    else min 128 jobs
  in
  { base with Ga.seed; Ga.jobs = jobs }

(* info *)

let info_cmd =
  let run () =
    print_endline "Hardware presets (paper Table I):";
    Compass_util.Table.print (Compass_arch.Config.table1 ());
    print_newline ();
    print_endline "Model zoo at 4-bit weights (paper Table II):";
    Compass_util.Table.print
      (Compass_nn.Summary.table2
         (List.map Compass_nn.Models.by_name Compass_nn.Models.all_names));
    print_newline ();
    print_endline "Support against chip S (Prev. = all-weights-on-chip compilers):";
    Compass_util.Table.print
      (Report.support_table (Compass_nn.Models.evaluation_models ())
         Compass_arch.Config.chip_s)
  in
  Cmd.v (Cmd.info "info" ~doc:"Print hardware presets and model sizes")
    Term.(const run $ const ())

(* compile *)

let deadline_arg =
  let doc =
    "Wall-clock search budget in seconds.  The GA/DP search becomes anytime: \
     when the deadline expires it stops and the plan is the best candidate \
     found so far (overrunning by at most one evaluation wave)."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let recover_arg =
  let doc =
    "Execute one inference under the fault scenario with self-healing \
     enabled: ABFT column checksums verify every MVM, transient faults are \
     retried with backoff, persistent ones retire the faulty core and remap \
     to spare capacity.  Prints the escalation log and whether the recovered \
     output is bit-identical to the fault-free reference."
  in
  Arg.(value & flag & info [ "recover" ] ~doc)

let fault_at_arg =
  let doc =
    "Fail-stop drill (requires $(b,--faults)): inject the scenario's dead \
     cores into a simulation of the compiled schedule at $(docv) seconds, \
     then repair the plan and measure the recovered schedule."
  in
  Arg.(value & opt (some float) None & info [ "fault-at" ] ~docv:"SECONDS" ~doc)

let compile_cmd =
  let save_arg =
    Arg.(
      value & opt (some string) None
      & info [ "save" ] ~docv:"PATH" ~doc:"Archive the compiled plan (see Plan_text).")
  in
  let checkpoint_arg =
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint" ] ~docv:"PATH"
          ~doc:
            "Write a GA checkpoint to $(docv) after every completed generation \
             (atomic write; compass scheme only).")
  in
  let resume_arg =
    Arg.(
      value & opt (some string) None
      & info [ "resume" ] ~docv:"PATH"
          ~doc:
            "Resume the GA from a checkpoint written by $(b,--checkpoint).  The \
             resumed search is bit-identical to the uninterrupted one.")
  in
  let verify_flag =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Re-check the compiled plan with the independent verifier; a \
             violation here is a compass bug and exits 3.")
  in
  let run model chip batch scheme objective seed jobs simulate quick save tech faults
      fault_seed warm_start deadline checkpoint resume verify recover fault_at trace
      metrics failpoints task_retries =
   guard @@ fun () ->
    arm_failpoints failpoints;
    Option.iter (fun path -> ensure_writable ~flag:"--checkpoint" path) checkpoint;
    Option.iter (fun path -> ensure_writable ~flag:"--save" path) save;
    with_observability ~trace ~metrics @@ fun () ->
    let model = lookup_model model in
    let chip = retarget ~tech:(lookup_tech tech) (lookup_chip chip) in
    let scheme = Compiler.scheme_of_string scheme in
    let objective = Fitness.objective_of_string objective in
    let faults = realize_faults faults ~seed:fault_seed chip in
    (match faults with
    | Some f -> Format.printf "%a@." Compass_arch.Fault.pp f
    | None -> ());
    let budget = Option.map (fun s -> Compass_util.Budget.of_deadline s) deadline in
    let supervision = supervision_of ?watchdog:budget task_retries in
    let resume = Option.map load_checkpoint_salvaging resume in
    let on_checkpoint =
      Option.map (fun path ck -> Plan_text.save_checkpoint path ck) checkpoint
    in
    let plan =
      Compiler.compile ~objective
        ~ga_params:(ga_params ~quick ~seed ~jobs)
        ~warm_start ?faults ?budget ?supervision ?resume ?on_checkpoint ~model ~chip
        ~batch scheme
    in
    if plan.Compiler.budget_exhausted then
      Format.printf
        "deadline expired: this plan is the best candidate found within the budget@.";
    if verify then begin
      match Verify.check plan with
      | [] -> Format.printf "verified: plan satisfies all verifier invariants@."
      | violations ->
        Printf.eprintf "compass: the compiled plan fails its own verifier:\n%s\n%s\n"
          (Verify.render violations)
          "This is a bug in compass; please report it with the exact command line.";
        exit 3
    end;
    Format.printf "%a" Compiler.pp_plan plan;
    (match plan.Compiler.ga with
    | Some ga ->
      Format.printf "GA: %d generations, %d evaluations, %d distinct spans@."
        ga.Ga.generations_run ga.Ga.evaluations ga.Ga.cache_spans
    | None -> ());
    (match plan.Compiler.dp with
    | Some dp -> Format.printf "%a" Optimal.pp dp
    | None -> ());
    (match save with
    | Some path ->
      Plan_text.save path plan;
      Format.printf "saved plan to %s@." path
    | None -> ());
    if simulate then begin
      let m = Compiler.measure plan in
      Format.printf "@.simulated: makespan %s (estimator %s), %d instructions@."
        (Compass_util.Units.time_to_string m.Compiler.sim.Compass_isa.Sim.makespan_s)
        (Compass_util.Units.time_to_string plan.Compiler.perf.Estimator.batch_latency_s)
        m.Compiler.schedule.Scheduler.instruction_count;
      Format.printf "%a@." Compass_dram.Dram.pp_stats m.Compiler.dram;
      Format.printf "simulated energy:@.";
      Compass_arch.Energy.pp_breakdown Format.std_formatter
        m.Compiler.sim.Compass_isa.Sim.energy_components
    end;
    (match fault_at with
    | None -> ()
    | Some at_s -> (
      let faults =
        match faults with
        | Some f -> f
        | None -> invalid_arg "--fault-at needs --faults (the scenario to inject)"
      in
      match Compiler.measure_with_faults plan ~at_s ~faults with
      | Error msg -> invalid_arg ("fault drill: " ^ msg)
      | Ok fr ->
        Format.printf
          "@.fault drill at %s: interrupted batch drained in %s (%d instructions \
           dropped)@."
          (Compass_util.Units.time_to_string at_s)
          (Compass_util.Units.time_to_string
             fr.Compiler.faulted_sim.Compass_isa.Sim.makespan_s)
          fr.Compiler.faulted_sim.Compass_isa.Sim.dropped_instructions;
        Format.printf "repair: %s, latency %s -> %s (x%.2f)@."
          (match fr.Compiler.repair.Compiler.strategy with
          | Compiler.Unchanged -> "mapping moved"
          | Compiler.Remapped n -> Printf.sprintf "%d spans re-split" n
          | Compiler.Recompiled -> "recompiled")
          (Compass_util.Units.time_to_string fr.Compiler.repair.Compiler.latency_before_s)
          (Compass_util.Units.time_to_string fr.Compiler.repair.Compiler.latency_after_s)
          fr.Compiler.repair.Compiler.degradation;
        Format.printf "recovery latency (drain + repaired batch): %s@."
          (Compass_util.Units.time_to_string fr.Compiler.recovery_latency_s)));
    if recover then begin
      let weights = Compass_nn.Executor.random_weights model in
      let input = Compass_nn.Executor.random_input model in
      let r = Recovery.run ~seed:fault_seed ~weights ~input plan in
      Format.printf "@.%a@." Recovery.pp_report r;
      List.iter (fun a -> Format.printf "  %a@." Recovery.pp_action a) r.Recovery.actions;
      if r.Recovery.bit_identical then
        Format.printf "recovered output is bit-identical to the fault-free reference@."
      else
        Format.printf
          "warning: recovered output DIFFERS from the fault-free reference \
           (%d layer(s) degraded)@."
          r.Recovery.degraded_layers
    end
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile one workload with one scheme")
    Term.(
      const run $ model_arg $ chip_arg $ batch_arg $ scheme_arg $ objective_arg
      $ seed_arg $ jobs_arg $ simulate_arg $ quick_arg $ save_arg $ tech_arg
      $ faults_arg $ fault_seed_arg $ warm_start_arg $ deadline_arg $ checkpoint_arg
      $ resume_arg $ verify_flag $ recover_arg $ fault_at_arg $ trace_arg $ metrics_arg
      $ failpoints_arg $ task_retries_arg)

(* plan: reload an archived plan *)

let plan_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Archived plan (written by compile --save).")
  in
  let layers_arg =
    Arg.(value & flag & info [ "layers" ] ~doc:"Also print the per-layer table.")
  in
  let run file layers =
    match Plan_text.load file with
    | plan ->
      Format.printf "%a" Compiler.pp_plan plan;
      if layers then Compass_util.Table.print (Report.plan_layer_table plan)
    | exception Plan_text.Load_error msg ->
      Printf.eprintf "compass: %s: %s\n" file msg;
      exit 2
  in
  Cmd.v (Cmd.info "plan" ~doc:"Reload and re-estimate an archived plan")
    Term.(const run $ file_arg $ layers_arg)

(* verify: independent re-check of an archived plan *)

let verify_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Archived plan (written by compile --save).")
  in
  let run file trace metrics =
   guard @@ fun () ->
    let violations =
      with_observability ~trace ~metrics @@ fun () ->
      match Plan_text.load file with
      | plan ->
        let violations = Verify.check plan in
        print_endline (Verify.render violations);
        violations
      | exception Plan_text.Load_error msg ->
        Printf.eprintf "compass: %s: %s\n" file msg;
        exit 2
    in
    if violations <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Independently re-check an archived plan against every legality \
          invariant (coverage, capacity, replication, dataflow, endurance).  \
          Exit 0 when clean, 1 when violations are found, 2 when the file \
          cannot be read.")
    Term.(const run $ file_arg $ trace_arg $ metrics_arg)

(* validity *)

let validity_cmd =
  let cells_arg =
    Arg.(value & opt int 32 & info [ "cells" ] ~docv:"N" ~doc:"Heat-map resolution.")
  in
  let run model chip cells faults fault_seed =
   guard @@ fun () ->
    let model = lookup_model model in
    let chip = lookup_chip chip in
    let faults = realize_faults faults ~seed:fault_seed chip in
    (match faults with
    | Some f -> Format.printf "%a@." Compass_arch.Fault.pp f
    | None -> ());
    let units = Unit_gen.generate model chip in
    let v = Validity.build ?faults units in
    print_endline (Validity.render ~cells v)
  in
  Cmd.v (Cmd.info "validity" ~doc:"Render the partition validity map (Fig. 5)")
    Term.(const run $ model_arg $ chip_arg $ cells_arg $ faults_arg $ fault_seed_arg)

(* schedule *)

let schedule_cmd =
  let listing_arg =
    Arg.(value & flag & info [ "listing" ] ~doc:"Dump the per-core instruction listings.")
  in
  let run model chip batch scheme seed jobs quick listing =
   guard @@ fun () ->
    let model = lookup_model model in
    let chip = lookup_chip chip in
    let scheme = Compiler.scheme_of_string scheme in
    let plan =
      Compiler.compile
        ~ga_params:(ga_params ~quick ~seed ~jobs)
        ~model ~chip ~batch scheme
    in
    let m = Compiler.measure plan in
    Format.printf "%s (%s): %d instructions, weights %s, activations peak %s@."
      (Compiler.label plan)
      (Compiler.scheme_to_string scheme)
      m.Compiler.schedule.Scheduler.instruction_count
      (Compass_util.Units.bytes_to_string
         (float_of_int m.Compiler.schedule.Scheduler.weight_region_bytes))
      (Compass_util.Units.bytes_to_string
         (float_of_int m.Compiler.schedule.Scheduler.activation_high_water_bytes));
    Format.printf "instruction mix: %s@."
      (String.concat ", "
         (List.map
            (fun (k, n) -> Printf.sprintf "%s x%d" k n)
            (Compass_isa.Program.instruction_mix m.Compiler.schedule.Scheduler.programs)));
    print_endline (Compass_isa.Timeline.render m.Compiler.sim);
    if listing then
      List.iter
        (fun p ->
          if Compass_isa.Program.length p > 0 then
            Format.printf "%a@." Compass_isa.Program.pp p)
        m.Compiler.schedule.Scheduler.programs
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Lower a plan to instructions, simulate, show the timeline")
    Term.(
      const run $ model_arg $ chip_arg $ batch_arg $ scheme_arg $ seed_arg $ jobs_arg
      $ quick_arg $ listing_arg)

(* model *)

let model_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Textual model description (.model).")
  in
  let dot_arg =
    Arg.(
      value & opt (some string) None
      & info [ "dot" ] ~docv:"PATH" ~doc:"Also write a Graphviz rendering.")
  in
  let run file dot =
    match Compass_nn.Model_text.parse_file file with
    | g -> (
      Format.printf "%a" Compass_nn.Graph.pp_summary g;
      Compass_util.Table.print (Compass_nn.Summary.table2 [ g ]);
      match dot with
      | Some path ->
        let oc = open_out path in
        output_string oc (Compass_nn.Graph.to_dot g);
        close_out oc;
        Printf.printf "wrote %s\n" path
      | None -> ())
    | exception Compass_nn.Model_text.Parse_error (line, msg) ->
      Printf.eprintf "compass: %s:%d: %s\n" file line msg;
      exit 2
  in
  Cmd.v (Cmd.info "model" ~doc:"Parse and summarize a textual model description")
    Term.(const run $ file_arg $ dot_arg)

(* explore *)

let explore_cmd =
  let target_arg =
    Arg.(
      value & opt (some float) None
      & info [ "target" ] ~docv:"INF/S" ~doc:"Find the smallest chip meeting this throughput.")
  in
  let run model seed jobs quick target deadline =
   guard @@ fun () ->
    let model = lookup_model model in
    let chips = List.map snd Compass_arch.Config.presets in
    let budget = Option.map (fun s -> Compass_util.Budget.of_deadline s) deadline in
    let points =
      Explore.sweep ?budget
        ~ga_params:(ga_params ~quick ~seed ~jobs)
        ~model ~chips ~batches:[ 1; 4; 16 ] ()
    in
    (match budget with
    | Some b when Compass_util.Budget.exhausted b ->
      Printf.printf "deadline expired: %d point(s) compiled before the cutoff\n"
        (List.length points)
    | Some _ | None -> ());
    Compass_util.Table.print (Explore.points_table points);
    print_endline "\nPareto frontier:";
    Compass_util.Table.print (Explore.points_table (Explore.pareto points));
    match target with
    | None -> ()
    | Some throughput_per_s -> (
      match Explore.cheapest_meeting ~throughput_per_s points with
      | Some p ->
        Printf.printf "\nsmallest chip meeting %.0f inf/s: %s at batch %d\n"
          throughput_per_s p.Explore.chip.Compass_arch.Config.label p.Explore.batch
      | None -> Printf.printf "\nno preset reaches %.0f inf/s\n" throughput_per_s)
  in
  Cmd.v (Cmd.info "explore" ~doc:"Sweep chips and batches; print the Pareto frontier")
    Term.(
      const run $ model_arg $ seed_arg $ jobs_arg $ quick_arg $ target_arg
      $ deadline_arg)

(* sweep *)

let sweep_cmd =
  let models_arg =
    Arg.(
      value
      & opt (list string) [ "vgg16"; "resnet18"; "squeezenet" ]
      & info [ "models" ] ~docv:"M1,M2" ~doc:"Models to sweep.")
  in
  let chips_arg =
    Arg.(
      value
      & opt (list string) [ "S"; "M"; "L" ]
      & info [ "chips" ] ~docv:"C1,C2" ~doc:"Chip presets to sweep.")
  in
  let csv_arg =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"PATH" ~doc:"Also write the rows as CSV.")
  in
  let run models chips batch seed jobs quick csv =
   guard @@ fun () ->
    let rows = ref [] in
    List.iter
      (fun mname ->
        List.iter
          (fun clabel ->
            let model = lookup_model mname in
            let chip = lookup_chip clabel in
            rows :=
              !rows
              @ Report.compare_schemes
                  ~ga_params:(ga_params ~quick ~seed ~jobs)
                  ~model ~chip ~batch ())
          chips)
      models;
    Compass_util.Table.print (Report.rows_table !rows);
    match csv with
    | Some path ->
      Report.write_csv path !rows;
      Printf.printf "\nwrote %s\n" path
    | None -> ()
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Compare schemes across workloads (Fig. 6)")
    Term.(
      const run $ models_arg $ chips_arg $ batch_arg $ seed_arg $ jobs_arg $ quick_arg
      $ csv_arg)

(* infer: host functional inference with the im2col/GEMM engine *)

let infer_cmd =
  let engine_arg =
    let doc =
      "Kernel engine: gemm (im2col + cache-blocked GEMM, the default) or naive \
       (the scalar reference — bit-identical, much slower)."
    in
    Arg.(value & opt string "gemm" & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let rounds_arg =
    let doc = "Timed repetitions of the whole batch." in
    Arg.(value & opt int 1 & info [ "rounds" ] ~docv:"N" ~doc)
  in
  let check_arg =
    let doc =
      "Also run the first sample through both engines and confirm the outputs \
       are bit-identical (a disagreement is a compass bug and exits 3)."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let infer_batch_arg =
    let doc = "Samples per layer traversal (fanned across --jobs domains)." in
    Arg.(value & opt int 1 & info [ "b"; "batch" ] ~docv:"N" ~doc)
  in
  let infer_jobs_arg =
    let doc =
      "Worker domains the batch is fanned across (default: COMPASS_JOBS, else \
       1; 0 picks the machine's recommended domain count).  Outputs are \
       bit-identical for every value."
    in
    Arg.(
      value
      & opt int (Compass_util.Pool.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let run model batch engine rounds check seed jobs trace metrics failpoints
      task_retries =
   guard @@ fun () ->
    arm_failpoints failpoints;
    let supervision = supervision_of task_retries in
    with_observability ~trace ~metrics @@ fun () ->
    let model = lookup_model model in
    let engine =
      match Compass_nn.Executor.engine_of_string engine with
      | Some e -> e
      | None -> invalid_arg (Printf.sprintf "unknown engine %s (try gemm, naive)" engine)
    in
    if batch < 1 then invalid_arg "infer: batch must be >= 1";
    if rounds < 1 then invalid_arg "infer: rounds must be >= 1";
    let jobs =
      if jobs <= 0 then min 128 (max 1 (Domain.recommended_domain_count ()))
      else min 128 jobs
    in
    let weights = Compass_nn.Executor.random_weights ~seed model in
    let inputs =
      Array.init batch (fun i ->
          Compass_nn.Executor.random_input ~seed:(seed + 100 + i) model)
    in
    let timed f =
      let t0 = Unix.gettimeofday () in
      f ();
      Unix.gettimeofday () -. t0
    in
    let run_rounds pool () =
      for _ = 1 to rounds do
        ignore
          (Compass_nn.Executor.output_batch ~engine ?pool ?supervision model weights
             inputs)
      done
    in
    let elapsed_s =
      if jobs > 1 then
        Compass_util.Pool.with_pool ~jobs (fun pool ->
            timed (run_rounds (Some pool)))
      else timed (run_rounds None)
    in
    let images = batch * rounds in
    Printf.printf "%s: engine %s, batch %d, %d round(s), %d worker(s)\n"
      (Compass_nn.Graph.name model)
      (Compass_nn.Executor.engine_to_string engine)
      batch rounds jobs;
    Printf.printf "%d image(s) in %s: %.2f images/s (%.1f ms/image)\n" images
      (Compass_util.Units.time_to_string elapsed_s)
      (float_of_int images /. elapsed_s)
      (1000. *. elapsed_s /. float_of_int images);
    if check then begin
      let reference =
        Compass_nn.Executor.output ~engine:Compass_nn.Executor.Naive model weights
          inputs.(0)
      in
      let fast =
        Compass_nn.Executor.output ~engine:Compass_nn.Executor.Gemm model weights
          inputs.(0)
      in
      if Compass_nn.Tensor.equal ~eps:0. reference fast then
        print_endline "check: gemm output is bit-identical to the naive reference"
      else begin
        Printf.eprintf
          "compass: gemm and naive engines disagree (max diff %g)\n\
           This is a bug in compass; please report it with the exact command line.\n"
          (Compass_nn.Tensor.max_abs_diff reference fast);
        exit 3
      end
    end
  in
  Cmd.v
    (Cmd.info "infer"
       ~doc:
         "Run host functional inference (random weights and inputs) and report \
          serving throughput in images/s.  The gemm engine is bit-identical to \
          the naive reference; batches are fanned across worker domains \
          deterministically.")
    Term.(
      const run $ model_arg $ infer_batch_arg $ engine_arg $ rounds_arg $ check_arg
      $ seed_arg $ infer_jobs_arg $ trace_arg $ metrics_arg $ failpoints_arg
      $ task_retries_arg)

(* gap: how far each scheme lands from the DP's certified bound *)

let gap_cmd =
  let run model chip batch objective seed jobs quick trace metrics =
   guard @@ fun () ->
    with_observability ~trace ~metrics @@ fun () ->
    let model = lookup_model model in
    let chip = lookup_chip chip in
    let objective = Fitness.objective_of_string objective in
    let dp, rows =
      Report.optimality_gap ~objective
        ~ga_params:(ga_params ~quick ~seed ~jobs)
        ~model ~chip ~batch ()
    in
    Compass_util.Table.print (Report.optimality_gap_table ~objective (dp, rows));
    Format.printf "%a" Optimal.pp dp
  in
  Cmd.v
    (Cmd.info "gap"
       ~doc:"Optimality gap of every scheme against the exact DP bound")
    Term.(
      const run $ model_arg $ chip_arg $ batch_arg $ objective_arg $ seed_arg
      $ jobs_arg $ quick_arg $ trace_arg $ metrics_arg)

(* serve: the resilient long-lived daemon (lib/serve).  Stdio by default
   — stdout is the protocol channel, banners go to stderr — or a unix
   socket with --socket.  First SIGTERM/SIGINT drains (stop admitting,
   finish in-flight work, flush observability, exit 0); a second signal
   aborts with exit 3. *)

let serve_cmd =
  let module Server = Compass_serve.Server in
  let module Protocol = Compass_serve.Protocol in
  let run socket deadline queue_high queue_low retries backoff breaker_threshold
      breaker_cooldown seed jobs trace metrics failpoints =
   guard @@ fun () ->
    arm_failpoints failpoints;
    Option.iter (fun path -> ensure_writable ~flag:"--socket" path) socket;
    with_observability ~trace ~metrics @@ fun () ->
    let stop = ref false in
    let handler signal =
      if !stop then begin
        Printf.eprintf "compass: serve: second signal (%d) — aborting drain\n%!" signal;
        Stdlib.exit 3
      end
      else stop := true
    in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle handler);
    Sys.set_signal Sys.sigint (Sys.Signal_handle handler);
    let out = ref Stdlib.stdout in
    let respond resp =
      (* A client that hung up must not take the daemon — or the drain of
         everything still queued — down with it. *)
      try
        output_string !out (Protocol.response_to_string resp);
        Stdlib.flush !out
      with Sys_error _ -> ()
    in
    let jobs =
      if jobs <= 0 then min 128 (max 1 (Domain.recommended_domain_count ()))
      else min 128 jobs
    in
    let config =
      {
        Server.default_config with
        Server.queue_high;
        queue_low =
          (match queue_low with Some l -> l | None -> max 1 (queue_high / 2));
        default_deadline_s = deadline;
        max_retries = retries;
        retry_backoff_s = backoff;
        breaker_threshold;
        breaker_cooldown_s = breaker_cooldown;
        seed;
        jobs;
        sleep = Unix.sleepf;
      }
    in
    let server = Server.create ~config ~respond () in
    Fun.protect ~finally:(fun () -> Server.close server) @@ fun () ->
    let stop () = !stop in
    (match socket with
    | None ->
      Printf.eprintf "compass serve: reading requests from stdin (end with EOF)\n%!";
      (match Server.run_fd server ~stop Unix.stdin with `Eof | `Stopped -> ())
    | Some path ->
      if Sys.file_exists path then Sys.remove path;
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close sock with Unix.Unix_error _ -> ());
          if Sys.file_exists path then Sys.remove path)
      @@ fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      Printf.eprintf "compass serve: listening on %s (SIGTERM drains)\n%!" path;
      let rec accept_loop () =
        if stop () then ()
        else
          match Unix.select [ sock ] [] [] 0.1 with
          | [ _ ], _, _ ->
            let conn, _ = Unix.accept sock in
            let ch = Unix.out_channel_of_descr conn in
            out := ch;
            let outcome = Server.run_fd server ~stop conn in
            (* Finish this client's queued work before hanging up — but
               keep admitting from the next connection, so only answer
               the queue, don't enter the drain state. *)
            while Server.step server do () done;
            (try Stdlib.flush ch with Sys_error _ -> ());
            out := Stdlib.stdout;
            (try Unix.close conn with Unix.Unix_error _ -> ());
            (match outcome with `Eof -> accept_loop () | `Stopped -> ())
          | _ -> accept_loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      in
      accept_loop ());
    Server.drain server;
    Printf.eprintf "compass serve: drained; %d response(s) emitted\n%!"
      (Server.responded server)
  in
  let socket_arg =
    let doc =
      "Listen on a unix-domain socket at $(docv) (one connection at a time) \
       instead of stdin/stdout.  The socket file is created at startup and \
       unlinked on exit."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let deadline_arg =
    let doc =
      "Default per-request deadline in seconds, applied when a request carries \
       no $(b,deadline) line.  Expired compiles return best-so-far plans marked \
       $(b,degraded); expired inferences are cancelled between layers and \
       answered $(b,timeout)."
    in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECS" ~doc)
  in
  let queue_high_arg =
    let doc =
      "Admission-queue high watermark: past $(docv) queued requests, new work \
       is rejected with an $(b,overloaded) note until the queue drains below \
       the low watermark."
    in
    Arg.(value & opt int 64 & info [ "queue-high" ] ~docv:"N" ~doc)
  in
  let queue_low_arg =
    let doc = "Admission-queue low watermark (default: half the high one)." in
    Arg.(value & opt (some int) None & info [ "queue-low" ] ~docv:"N" ~doc)
  in
  let retries_arg =
    let doc =
      "Re-execute a request that failed transiently (injected failpoints, \
       simulated syscall errors, pool worker crashes) up to $(docv) times, \
       with doubling backoff, before answering $(b,error)."
    in
    Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let backoff_arg =
    let doc = "Initial retry backoff in seconds (doubles per retry)." in
    Arg.(value & opt float 0.01 & info [ "retry-backoff" ] ~docv:"SECS" ~doc)
  in
  let breaker_threshold_arg =
    let doc =
      "Open a request class's circuit breaker after $(docv) consecutive \
       failures; while open, requests of that class are rejected immediately."
    in
    Arg.(value & opt int 5 & info [ "breaker-threshold" ] ~docv:"N" ~doc)
  in
  let breaker_cooldown_arg =
    let doc =
      "Initial breaker cooldown in seconds before a half-open probe; doubles \
       per consecutive open (with seeded jitter), capped at 60."
    in
    Arg.(value & opt float 1.0 & info [ "breaker-cooldown" ] ~docv:"SECS" ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived request daemon: newline-delimited compile/infer/verify \
          requests over stdin/stdout or a unix socket, with bounded admission, \
          per-request deadlines, per-class circuit breakers, transient-failure \
          retry and graceful drain on SIGTERM.  Wire format in docs/FORMATS.md.")
    Term.(
      const run $ socket_arg $ deadline_arg $ queue_high_arg $ queue_low_arg
      $ retries_arg $ backoff_arg $ breaker_threshold_arg $ breaker_cooldown_arg
      $ seed_arg $ jobs_arg $ trace_arg $ metrics_arg $ failpoints_arg)

(* doctor: self-check of the chaos machinery — supervision, crash
   consistency, salvage.  Runs entirely against temp files and a tiny
   lenet5 search; exit 0 when every drill passes, 1 otherwise. *)

let doctor_cmd =
  let run () =
    let failures = ref 0 in
    let checks = ref 0 in
    let expect cond fmt =
      Printf.ksprintf (fun msg -> if not cond then failwith msg) fmt
    in
    let check name f =
      incr checks;
      match f () with
      | () -> Printf.printf "doctor: %-30s ok\n%!" name
      | exception e ->
        incr failures;
        Printf.printf "doctor: %-30s FAIL: %s\n%!" name (Printexc.to_string e)
    in
    let with_temp_dir f =
      let dir = Filename.temp_file "compass-doctor" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o700;
      Fun.protect
        ~finally:(fun () ->
          Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
          Unix.rmdir dir)
        (fun () -> f dir)
    in
    let open Compass_util in
    check "failpoint schedule" (fun () ->
        Failpoint.with_schedule "doctor.drill=raise@nth:2" @@ fun () ->
        Failpoint.guard "doctor.drill";
        (match Failpoint.guard "doctor.drill" with
        | () -> failwith "nth:2 rule did not fire on the second hit"
        | exception Failpoint.Injected "doctor.drill" -> ());
        expect (Failpoint.hits "doctor.drill" = 2) "expected 2 recorded hits";
        expect (Failpoint.fired () = [ ("doctor.drill", 1) ]) "expected 1 recorded firing");
    check "pool task diagnostics" (fun () ->
        (* At jobs = 1 tasks run in index order, so the 3rd pool.task
           guard is task index 2 — the located diagnostic must say so. *)
        Pool.with_pool ~jobs:1 @@ fun p ->
        Failpoint.with_schedule "pool.task=raise@nth:3" @@ fun () ->
        match Pool.map p succ (Array.init 8 Fun.id) with
        | _ -> failwith "injected worker crash did not surface"
        | exception Pool.Task_error { index = 2; attempts = 1; error = Failpoint.Injected "pool.task"; _ } -> ()
        | exception Pool.Task_error { index; _ } ->
          failwith (Printf.sprintf "Task_error located at index %d, expected 2" index));
    check "pool supervised recovery" (fun () ->
        Pool.with_pool ~jobs:1 @@ fun p ->
        Failpoint.with_schedule "pool.task=raise@nth:3" @@ fun () ->
        let supervision = Pool.supervision ~retries:2 () in
        let got = Pool.map ~supervision p succ (Array.init 8 Fun.id) in
        expect (got = Array.init 8 (fun i -> i + 1))
          "supervised retry did not reproduce the unfailed result");
    check "artifact crash consistency" (fun () ->
        with_temp_dir @@ fun dir ->
        let path = Filename.concat dir "artifact.txt" in
        (Failpoint.with_schedule "artifact.write.rename=enospc@once" @@ fun () ->
         match Artifact.write_atomic path "doomed" with
         | () -> failwith "injected ENOSPC did not surface"
         | exception Sys_error msg ->
           expect
             (String.length msg >= String.length path)
             "diagnostic %S does not name the path" msg);
        expect
          (Array.length (Sys.readdir dir) = 0)
          "failed write left litter behind (temp file not cleaned)";
        Artifact.write_atomic path "payload";
        expect (Artifact.read_file path = "payload") "clean write did not round-trip");
    check "artifact EINTR retry" (fun () ->
        with_temp_dir @@ fun dir ->
        let path = Filename.concat dir "artifact.txt" in
        (Failpoint.with_schedule "artifact.write.syscall=eintr@once" @@ fun () ->
         Artifact.write_atomic path "interrupted once");
        expect
          (Artifact.read_file path = "interrupted once")
          "EINTR was not retried transparently");
    check "checkpoint salvage" (fun () ->
        let units =
          Unit_gen.generate (Compass_nn.Models.by_name "lenet5") Compass_arch.Config.chip_s
        in
        let v = Validity.build units in
        let ctx = Dataflow.context units in
        let params = { Ga.quick_params with Ga.seed = 11; jobs = 1 } in
        let first = ref None and last = ref None in
        ignore
          (Ga.optimize ~params
             ~on_checkpoint:(fun ck ->
               if !first = None then first := Some ck;
               last := Some ck)
             ctx v ~batch:4);
        let first = Option.get !first and last = Option.get !last in
        let t1 = Plan_text.checkpoint_to_string first in
        let t2 = Plan_text.checkpoint_to_string last in
        (* A journal whose final append was torn mid-record: salvage must
           fall back to the previous complete block. *)
        let torn = t1 ^ String.sub t2 0 (String.length t2 - String.length t2 / 3) in
        let s = Plan_text.salvage_of_string torn in
        expect
          (Plan_text.checkpoint_to_string s.Plan_text.recovered = t1
          || s.Plan_text.generation >= first.Ga.ck_generation)
          "journal salvage did not recover a usable generation";
        (* A single snapshot torn inside the history section: the
           population survives, only reporting records are dropped. *)
        let cut =
          let marker = "\nrecords " in
          let rec find i =
            if i + String.length marker > String.length t2 then String.length t2 * 2 / 3
            else if String.sub t2 i (String.length marker) = marker then
              i + String.length marker + 3
            else find (i + 1)
          in
          min (find 0) (String.length t2)
        in
        let s = Plan_text.salvage_of_string (String.sub t2 0 cut) in
        expect
          (s.Plan_text.generation = last.Ga.ck_generation)
          "torn-history salvage lost the newest generation");
    check "serve socket lifecycle" (fun () ->
        (* The daemon's socket plumbing, end to end: create, bind (file
           appears), listen, connect, accept, round-trip one framed ping
           request's bytes, unlink (file gone). *)
        with_temp_dir @@ fun dir ->
        let path = Filename.concat dir "compass.sock" in
        let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close srv with Unix.Unix_error _ -> ())
          (fun () ->
            Unix.bind srv (Unix.ADDR_UNIX path);
            Unix.listen srv 1;
            expect (Sys.file_exists path) "bind did not create the socket file";
            let client = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Fun.protect
              ~finally:(fun () ->
                try Unix.close client with Unix.Unix_error _ -> ())
              (fun () ->
                Unix.connect client (Unix.ADDR_UNIX path);
                let conn, _ = Unix.accept srv in
                Fun.protect
                  ~finally:(fun () ->
                    try Unix.close conn with Unix.Unix_error _ -> ())
                  (fun () ->
                    let msg = "request doctor-1 ping\nend\n" in
                    let n = Unix.write_substring client msg 0 (String.length msg) in
                    expect (n = String.length msg) "short write on the socket";
                    let buf = Bytes.create 64 in
                    let n = Unix.read conn buf 0 64 in
                    expect
                      (Bytes.sub_string buf 0 n = msg)
                      "socket did not round-trip the request bytes")));
        Sys.remove path;
        expect (not (Sys.file_exists path)) "unlink left the socket file behind");
    check "serve signal handling" (fun () ->
        (* The drain path's first move is installing a SIGTERM handler;
           verify a handler installed the same way actually runs. *)
        let hit = ref false in
        let prev = Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> hit := true)) in
        Fun.protect
          ~finally:(fun () -> Sys.set_signal Sys.sigterm prev)
          (fun () ->
            Unix.kill (Unix.getpid ()) Sys.sigterm;
            let deadline = Unix.gettimeofday () +. 1.0 in
            while (not !hit) && Unix.gettimeofday () < deadline do
              ignore (Sys.opaque_identity (ref 0))
            done;
            expect !hit "SIGTERM handler did not run within 1 s"));
    check "salvage rejects hopeless input" (fun () ->
        (match Plan_text.salvage_of_string "not a checkpoint at all" with
        | _ -> failwith "garbage salvaged"
        | exception Plan_text.Load_error _ -> ());
        match Plan_text.salvage_of_string "compass-ga-checkpoint 1\nobjective lat" with
        | _ -> failwith "checkpoint with no population salvaged"
        | exception Plan_text.Load_error _ -> ());
    if !failures = 0 then
      Printf.printf "doctor: all %d checks passed\n" !checks
    else begin
      Printf.eprintf "compass: doctor: %d of %d check(s) failed\n" !failures !checks;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "doctor"
       ~doc:
         "Self-check the chaos-hardening machinery: failpoint schedules, \
          supervised worker recovery, crash-consistent artifact writes, and \
          torn-checkpoint salvage.  Exit 0 when every drill passes, 1 \
          otherwise.")
    Term.(const run $ const ())

let () =
  let doc = "COMPASS: compiler for resource-constrained crossbar PIM accelerators" in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "compass" ~version:"1.0.0" ~doc)
          [
            info_cmd; compile_cmd; validity_cmd; sweep_cmd; gap_cmd; schedule_cmd;
            model_cmd; explore_cmd; plan_cmd; verify_cmd; infer_cmd; serve_cmd;
            doctor_cmd;
          ]))
