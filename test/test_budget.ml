(* Deadline/cancellation tokens with an injected clock. *)

open Compass_util

(* A hand-cranked clock: [tick] advances it, the token only sees what we
   feed it. *)
let fake_clock start =
  let t = ref start in
  let now () = !t in
  let set v = t := v in
  (now, set)

let test_unlimited () =
  let b = Budget.unlimited () in
  Alcotest.(check bool) "never expires" false (Budget.expired b);
  Alcotest.(check bool) "not exhausted" false (Budget.exhausted b);
  Alcotest.(check (option (float 0.))) "no remaining" None (Budget.remaining_s b)

let test_expiry () =
  let now, set = fake_clock 100. in
  let b = Budget.of_deadline ~now 10. in
  Alcotest.(check bool) "fresh" false (Budget.expired b);
  Alcotest.(check (option (float 1e-9))) "remaining" (Some 10.) (Budget.remaining_s b);
  set 105.;
  Alcotest.(check bool) "mid-budget" false (Budget.expired b);
  Alcotest.(check (option (float 1e-9))) "half left" (Some 5.) (Budget.remaining_s b);
  set 110.;
  Alcotest.(check bool) "at deadline" true (Budget.expired b);
  Alcotest.(check bool) "exhausted" true (Budget.exhausted b)

let test_sticky () =
  let now, set = fake_clock 0. in
  let b = Budget.of_deadline ~now 1. in
  set 2.;
  Alcotest.(check bool) "expired" true (Budget.expired b);
  (* A wall-clock step backwards must not resurrect the budget. *)
  set 0.5;
  Alcotest.(check bool) "still expired" true (Budget.expired b);
  Alcotest.(check bool) "still exhausted" true (Budget.exhausted b)

let test_monotonic_clock () =
  let now, set = fake_clock 50. in
  let b = Budget.of_deadline ~now 10. in
  (* The token's view of time never decreases even if the raw clock does. *)
  set 55.;
  Alcotest.(check (option (float 1e-9))) "advanced" (Some 5.) (Budget.remaining_s b);
  set 52.;
  Alcotest.(check (option (float 1e-9)))
    "watermark holds" (Some 5.) (Budget.remaining_s b)

let test_cancel () =
  let now, _set = fake_clock 0. in
  let b = Budget.of_deadline ~now 1000. in
  Alcotest.(check bool) "fresh" false (Budget.expired b);
  Budget.cancel b;
  Alcotest.(check bool) "cancelled expires" true (Budget.expired b);
  Alcotest.(check (option (float 0.))) "no time left" (Some 0.) (Budget.remaining_s b)

let test_cancel_unlimited () =
  let b = Budget.unlimited () in
  Budget.cancel b;
  Alcotest.(check bool) "cancel works without a deadline" true (Budget.expired b)

let test_zero_deadline () =
  let now, _set = fake_clock 7. in
  let b = Budget.of_deadline ~now 0. in
  Alcotest.(check bool) "instantly expired" true (Budget.expired b)

let test_invalid () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Budget.of_deadline: negative or NaN deadline") (fun () ->
      ignore (Budget.of_deadline (-1.)));
  Alcotest.check_raises "nan"
    (Invalid_argument "Budget.of_deadline: negative or NaN deadline") (fun () ->
      ignore (Budget.of_deadline Float.nan))

let test_exhausted_only_after_observation () =
  let now, set = fake_clock 0. in
  let b = Budget.of_deadline ~now 1. in
  set 5.;
  (* [exhausted] reports whether an expiry was *observed*, so an
     unobserved deadline is not yet exhausted. *)
  Alcotest.(check bool) "not yet observed" false (Budget.exhausted b);
  ignore (Budget.expired b);
  Alcotest.(check bool) "observed" true (Budget.exhausted b)

(* Expiry hooks: the serving runtime counts per-request deadline trips
   through [on_expiry] instead of polluting every polling site. *)
let test_on_expiry_fires_once () =
  let now, set = fake_clock 0. in
  let b = Budget.of_deadline ~now 5. in
  let fired = ref 0 in
  Budget.on_expiry b (fun () -> incr fired);
  ignore (Budget.expired b);
  Alcotest.(check int) "not before the deadline" 0 !fired;
  set 10.;
  ignore (Budget.expired b);
  Alcotest.(check int) "fires at the tripping poll" 1 !fired;
  ignore (Budget.expired b);
  Alcotest.(check int) "exactly once" 1 !fired;
  (* Registered after the trip: runs immediately. *)
  Budget.on_expiry b (fun () -> fired := !fired + 10);
  Alcotest.(check int) "late hook runs immediately" 11 !fired

let test_on_expiry_order_and_cancel () =
  let b = Budget.unlimited () in
  let order = ref [] in
  Budget.on_expiry b (fun () -> order := "first" :: !order);
  Budget.on_expiry b (fun () -> order := "second" :: !order);
  Budget.cancel b;
  Alcotest.(check (list string)) "cancel alone does not poll" [] !order;
  ignore (Budget.expired b);
  Alcotest.(check (list string)) "registration order" [ "second"; "first" ] !order

let () =
  Alcotest.run "budget"
    [
      ( "budget",
        [
          Alcotest.test_case "unlimited" `Quick test_unlimited;
          Alcotest.test_case "expiry" `Quick test_expiry;
          Alcotest.test_case "sticky" `Quick test_sticky;
          Alcotest.test_case "monotonic clock" `Quick test_monotonic_clock;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "cancel unlimited" `Quick test_cancel_unlimited;
          Alcotest.test_case "zero deadline" `Quick test_zero_deadline;
          Alcotest.test_case "invalid seconds" `Quick test_invalid;
          Alcotest.test_case "exhausted needs observation" `Quick
            test_exhausted_only_after_observation;
          Alcotest.test_case "on_expiry fires once" `Quick test_on_expiry_fires_once;
          Alcotest.test_case "on_expiry order and cancel" `Quick
            test_on_expiry_order_and_cancel;
        ] );
    ]
