(* Deterministic failpoint framework: spec grammar, trigger semantics,
   zero-cost disabled behavior, schedule scoping. *)

open Compass_util

let fires f =
  match f () with
  | () -> false
  | exception Failpoint.Injected _ -> true

let test_disabled_is_inert () =
  Failpoint.clear ();
  Alcotest.(check bool) "disabled" false (Failpoint.enabled ());
  Failpoint.guard "anything.at.all";
  Alcotest.(check string) "guard_write is identity" "payload"
    (Failpoint.guard_write "anything.at.all" "payload");
  Alcotest.(check int) "no hits recorded" 0 (Failpoint.hits "anything.at.all");
  Alcotest.(check (list (pair string int))) "nothing fired" [] (Failpoint.fired ())

let test_trigger_once () =
  Failpoint.with_schedule "a=raise" @@ fun () ->
  Alcotest.(check bool) "first hit fires" true (fires (fun () -> Failpoint.guard "a"));
  Alcotest.(check bool) "second hit silent" false (fires (fun () -> Failpoint.guard "a"));
  Alcotest.(check int) "both hits observed" 2 (Failpoint.hits "a");
  Alcotest.(check (list (pair string int))) "one firing" [ ("a", 1) ] (Failpoint.fired ())

let test_trigger_nth_every_always () =
  (Failpoint.with_schedule "a=raise@nth:3" @@ fun () ->
   let pattern = List.init 5 (fun _ -> fires (fun () -> Failpoint.guard "a")) in
   Alcotest.(check (list bool)) "nth:3" [ false; false; true; false; false ] pattern);
  (Failpoint.with_schedule "a=raise@every:2" @@ fun () ->
   let pattern = List.init 6 (fun _ -> fires (fun () -> Failpoint.guard "a")) in
   Alcotest.(check (list bool)) "every:2" [ false; true; false; true; false; true ] pattern);
  Failpoint.with_schedule "a=raise@always" @@ fun () ->
  let pattern = List.init 3 (fun _ -> fires (fun () -> Failpoint.guard "a")) in
  Alcotest.(check (list bool)) "always" [ true; true; true ] pattern

let test_trigger_prob_deterministic () =
  let draw () =
    Failpoint.with_schedule "a=raise@prob:0.5:42" @@ fun () ->
    List.init 64 (fun _ -> fires (fun () -> Failpoint.guard "a"))
  in
  let a = draw () and b = draw () in
  Alcotest.(check (list bool)) "seeded draws replay identically" a b;
  let fired = List.length (List.filter Fun.id a) in
  Alcotest.(check bool) "roughly Bernoulli(0.5)" true (fired > 10 && fired < 54)

let test_actions () =
  (Failpoint.with_schedule "a=enospc" @@ fun () ->
   match Failpoint.guard "a" with
   | () -> Alcotest.fail "enospc did not fire"
   | exception Unix.Unix_error (Unix.ENOSPC, "failpoint", "a") -> ());
  (Failpoint.with_schedule "a=eintr" @@ fun () ->
   match Failpoint.guard "a" with
   | () -> Alcotest.fail "eintr did not fire"
   | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
  (Failpoint.with_schedule "a=truncate:3" @@ fun () ->
   Alcotest.(check string) "truncated" "pay" (Failpoint.guard_write "a" "payload");
   Alcotest.(check string) "once: second write intact" "payload"
     (Failpoint.guard_write "a" "payload"));
  (Failpoint.with_schedule "a=truncate:99" @@ fun () ->
   Alcotest.(check string) "truncate beyond length is whole payload" "pay"
     (Failpoint.guard_write "a" "pay"));
  (* truncate at a plain guard site is a no-op, not a crash. *)
  Failpoint.with_schedule "a=truncate:0" @@ fun () -> Failpoint.guard "a"

let test_prefix_match () =
  Failpoint.with_schedule "artifact.*=raise@always" @@ fun () ->
  Alcotest.(check bool) "prefix matches" true
    (fires (fun () -> Failpoint.guard "artifact.write.mid"));
  Alcotest.(check bool) "other sites untouched" false
    (fires (fun () -> Failpoint.guard "pool.task"))

let test_first_matching_rule_wins () =
  Failpoint.with_schedule "a=raise@always;a=truncate:1@always" @@ fun () ->
  Alcotest.(check bool) "first rule fires" true (fires (fun () -> Failpoint.guard "a"))

let test_with_schedule_restores () =
  Failpoint.set "outer=raise@always";
  Fun.protect ~finally:Failpoint.clear @@ fun () ->
  (Failpoint.with_schedule "inner=raise@always" @@ fun () ->
   Alcotest.(check (option string)) "inner armed" (Some "inner=raise@always")
     (Failpoint.active ());
   Alcotest.(check bool) "outer suspended" false
     (fires (fun () -> Failpoint.guard "outer")));
  Alcotest.(check (option string)) "outer restored" (Some "outer=raise@always")
    (Failpoint.active ());
  Alcotest.(check bool) "outer fires again" true (fires (fun () -> Failpoint.guard "outer"));
  (* Restoration survives an exception escaping the scoped thunk. *)
  (try
     Failpoint.with_schedule "inner=raise@always" (fun () -> failwith "escape")
   with Failure _ -> ());
  Alcotest.(check (option string)) "restored on exception" (Some "outer=raise@always")
    (Failpoint.active ())

let test_spec_errors () =
  let rejects spec =
    Alcotest.(check bool) (Printf.sprintf "rejects %S" spec) true
      (try
         Failpoint.with_schedule spec (fun () -> ());
         false
       with Invalid_argument _ -> true)
  in
  rejects "nosign";
  rejects "a=explode";
  rejects "a=truncate:minus";
  rejects "a=truncate:-1";
  rejects "a=delay:fast";
  rejects "a=raise@sometimes";
  rejects "a=raise@nth:0";
  rejects "a=raise@prob:2:1";
  rejects "=raise";
  (* The empty spec disarms rather than erroring. *)
  Failpoint.set "";
  Alcotest.(check bool) "empty spec disarms" false (Failpoint.enabled ())

let () =
  Alcotest.run "failpoint"
    [
      ( "schedule",
        [
          Alcotest.test_case "disabled is inert" `Quick test_disabled_is_inert;
          Alcotest.test_case "once" `Quick test_trigger_once;
          Alcotest.test_case "nth/every/always" `Quick test_trigger_nth_every_always;
          Alcotest.test_case "prob is seeded" `Quick test_trigger_prob_deterministic;
          Alcotest.test_case "actions" `Quick test_actions;
          Alcotest.test_case "prefix match" `Quick test_prefix_match;
          Alcotest.test_case "first rule wins" `Quick test_first_matching_rule_wins;
          Alcotest.test_case "with_schedule restores" `Quick test_with_schedule_restores;
          Alcotest.test_case "spec errors" `Quick test_spec_errors;
        ] );
    ]
