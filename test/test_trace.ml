(* Tests for the observability layer: span nesting well-formedness,
   monotone timestamps, the pinned Chrome trace_event JSON schema, and the
   merge semantics of per-domain metric buffers. *)

open Compass_util

(* A deterministic clock: every sample advances by [step] seconds. *)
let fake_clock ?(step = 10e-6) () =
  let t = ref 0. in
  fun () ->
    let now = !t in
    t := !t +. step;
    now

let fresh ?clock () =
  Trace.reset ();
  Metrics.reset ();
  Trace.enable ?clock ();
  Metrics.enable ()

let teardown () =
  Trace.disable ();
  Metrics.disable ();
  Trace.reset ();
  Metrics.reset ()

let with_observability ?clock f =
  fresh ?clock ();
  Fun.protect ~finally:teardown f

(* Every End must close the most recent still-open Begin of its buffer
   (stack discipline per tid), and the merged stream must leave no span
   open.  Returns the number of completed spans. *)
let check_well_formed events =
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let closed = ref 0 in
  List.iter
    (fun (e : Trace.event) ->
      let stack = Option.value ~default:[] (Hashtbl.find_opt stacks e.Trace.tid) in
      match e.Trace.phase with
      | Trace.Begin -> Hashtbl.replace stacks e.Trace.tid (e.Trace.name :: stack)
      | Trace.End -> (
        match stack with
        | top :: rest when top = e.Trace.name ->
          incr closed;
          Hashtbl.replace stacks e.Trace.tid rest
        | top :: _ ->
          Alcotest.failf "End %S closes open span %S (tid %d)" e.Trace.name top
            e.Trace.tid
        | [] -> Alcotest.failf "End %S with no open span (tid %d)" e.Trace.name e.Trace.tid))
    events;
  Hashtbl.iter
    (fun tid stack ->
      if stack <> [] then
        Alcotest.failf "tid %d left spans open: %s" tid (String.concat ", " stack))
    stacks;
  !closed

let check_monotone events =
  let last : (int, float) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.event) ->
      (match Hashtbl.find_opt last e.Trace.tid with
      | Some prev when e.Trace.ts < prev ->
        Alcotest.failf "tid %d: timestamp %g after %g" e.Trace.tid e.Trace.ts prev
      | Some _ | None -> ());
      Hashtbl.replace last e.Trace.tid e.Trace.ts)
    events

(* -- tracing ----------------------------------------------------------- *)

let test_disabled_is_noop () =
  teardown ();
  let ran = ref 0 in
  let result = Trace.with_span "off" (fun () -> incr ran; 42) in
  Alcotest.(check int) "body ran" 1 !ran;
  Alcotest.(check int) "result returned" 42 result;
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  Alcotest.(check int) "no events recorded" 0 (List.length (Trace.events ()))

let test_nesting_well_formed () =
  with_observability ~clock:(fake_clock ()) @@ fun () ->
  Trace.with_span "outer" (fun () ->
      Trace.with_span "inner" (fun () -> ());
      Trace.with_span "inner" (fun () -> Trace.with_span "leaf" (fun () -> ())));
  let events = Trace.events () in
  Alcotest.(check int) "event count" 8 (List.length events);
  Alcotest.(check int) "completed spans" 4 (check_well_formed events);
  check_monotone events

let test_exception_closes_span () =
  with_observability ~clock:(fake_clock ()) @@ fun () ->
  (try Trace.with_span "boom" (fun () -> failwith "expected") with Failure _ -> ());
  let events = Trace.events () in
  Alcotest.(check int) "Begin and End" 2 (List.length events);
  Alcotest.(check int) "span closed despite raise" 1 (check_well_formed events)

let test_backwards_clock_monotonized () =
  (* A clock that steps backwards mid-span must not produce a span that
     ends before it starts. *)
  let samples = ref [ 0.; 10e-6; 5e-6; 20e-6; 2e-6 ] in
  let clock () =
    match !samples with
    | [ last ] -> last
    | x :: rest ->
      samples := rest;
      x
    | [] -> assert false
  in
  with_observability ~clock @@ fun () ->
  Trace.with_span "a" (fun () -> Trace.with_span "b" (fun () -> ()));
  let events = Trace.events () in
  ignore (check_well_formed events);
  check_monotone events

let test_golden_chrome_json () =
  (* Field names, field order and the wrapper object are a pinned output
     format (docs/FORMATS.md); any change here is a breaking change for
     trace consumers and must be deliberate. *)
  with_observability ~clock:(fake_clock ()) @@ fun () ->
  Trace.with_span "a" ~args:[ ("k", "v\"x") ] (fun () ->
      Trace.with_span "b" (fun () -> ()));
  let expected =
    "{\"traceEvents\":[\n\
     {\"name\":\"a\",\"cat\":\"compass\",\"ph\":\"B\",\"ts\":10.000,\"pid\":0,\"tid\":0,\"args\":{\"k\":\"v\\\"x\"}},\n\
     {\"name\":\"b\",\"cat\":\"compass\",\"ph\":\"B\",\"ts\":20.000,\"pid\":0,\"tid\":0},\n\
     {\"name\":\"b\",\"cat\":\"compass\",\"ph\":\"E\",\"ts\":30.000,\"pid\":0,\"tid\":0},\n\
     {\"name\":\"a\",\"cat\":\"compass\",\"ph\":\"E\",\"ts\":40.000,\"pid\":0,\"tid\":0}\n\
     ]}\n"
  in
  Alcotest.(check string) "pinned trace_event schema" expected (Trace.to_chrome_json ())

let test_summarize () =
  with_observability ~clock:(fake_clock ~step:1e-3 ()) @@ fun () ->
  Trace.with_span "outer" (fun () ->
      Trace.with_span "inner" (fun () -> ());
      Trace.with_span "inner" (fun () -> ()));
  let stats = Trace.summarize () in
  let stat name =
    match List.find_opt (fun s -> s.Trace.span_name = name) stats with
    | Some s -> s
    | None -> Alcotest.failf "no stat for %s" name
  in
  Alcotest.(check int) "two stats" 2 (List.length stats);
  Alcotest.(check int) "inner count" 2 (stat "inner").Trace.count;
  Alcotest.(check int) "outer count" 1 (stat "outer").Trace.count;
  Alcotest.(check bool) "outer dominates" true
    ((stat "outer").Trace.total_s > (stat "inner").Trace.total_s)

let test_pool_spans_merge () =
  (* Spans recorded inside pool worker domains appear in the merged
     export and keep per-buffer stack discipline. *)
  with_observability @@ fun () ->
  Pool.with_pool ~jobs:4 (fun pool ->
      let out =
        Pool.map pool
          (fun i -> Trace.with_span "work" (fun () -> i * 2))
          (Array.init 64 Fun.id)
      in
      Alcotest.(check (array int)) "results" (Array.init 64 (fun i -> i * 2)) out);
  let events = Trace.events () in
  Alcotest.(check int) "all worker spans merged" 64 (check_well_formed events);
  check_monotone events

(* -- metrics ----------------------------------------------------------- *)

let test_metrics_disabled_is_noop () =
  teardown ();
  Metrics.incr "nope";
  Metrics.set "nope.gauge" 1.;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Metrics.snapshot ()))

let test_counter_and_gauge_basics () =
  with_observability @@ fun () ->
  Metrics.incr "c";
  Metrics.incr ~by:41 "c";
  Metrics.set "g" 1.5;
  Metrics.set "g" 2.5;
  Alcotest.(check (option int)) "counter sums" (Some 42) (Metrics.find_int "c");
  (match Metrics.find "g" with
  | Some (Metrics.Float v) -> Alcotest.(check (float 0.)) "gauge last write" 2.5 v
  | _ -> Alcotest.fail "gauge missing");
  Alcotest.(check bool) "kind mismatch raises" true
    (try
       Metrics.set "c" 1.;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "kind mismatch raises (incr on gauge)" true
    (try
       Metrics.incr "g";
       false
     with Invalid_argument _ -> true)

let prop_counter_merge_worker_count_independent =
  (* Counters merge associatively and commutatively: however the
     increments are spread over worker domains, the snapshot equals the
     sequential sum. *)
  QCheck.Test.make ~name:"counter merge independent of worker count" ~count:30
    QCheck.(pair (int_range 1 5) (small_list (pair (int_range 0 3) (int_range 1 100))))
    (fun (jobs, increments) ->
      let name i = Printf.sprintf "prop.c%d" i in
      let expected = Hashtbl.create 4 in
      List.iter
        (fun (i, by) ->
          Hashtbl.replace expected (name i)
            (by + Option.value ~default:0 (Hashtbl.find_opt expected (name i))))
        increments;
      with_observability @@ fun () ->
      Pool.with_pool ~jobs (fun pool ->
          ignore
            (Pool.map pool
               (fun (i, by) ->
                 Metrics.incr ~by (name i);
                 0)
               (Array.of_list increments)));
      Hashtbl.fold
        (fun name total acc -> acc && Metrics.find_int name = Some total)
        expected true
      && List.length (Metrics.snapshot ()) = Hashtbl.length expected)

let test_snapshot_sorted () =
  with_observability @@ fun () ->
  Metrics.incr "z";
  Metrics.incr "a";
  Metrics.incr "m";
  Alcotest.(check (list string)) "sorted by name" [ "a"; "m"; "z" ]
    (List.map fst (Metrics.snapshot ()))

let () =
  Alcotest.run "trace"
    [
      ( "spans",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "nesting well-formed" `Quick test_nesting_well_formed;
          Alcotest.test_case "exception closes span" `Quick test_exception_closes_span;
          Alcotest.test_case "backwards clock monotonized" `Quick
            test_backwards_clock_monotonized;
          Alcotest.test_case "golden chrome json" `Quick test_golden_chrome_json;
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "pool spans merge" `Quick test_pool_spans_merge;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_metrics_disabled_is_noop;
          Alcotest.test_case "counter and gauge basics" `Quick
            test_counter_and_gauge_basics;
          Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
          QCheck_alcotest.to_alcotest prop_counter_merge_worker_count_independent;
        ] );
    ]
