(* Tests for the textual model format (the ONNX-substitute front end). *)

open Compass_nn

let lenet_text =
  {|# LeNet-5
model lenet5
input in 1x28x28
conv conv1 from in out=6 kernel=5 pad=2
relu r1 from conv1
avgpool p1 from r1 kernel=2 stride=2
conv conv2 from p1 out=16 kernel=5 pad=0
relu r2 from conv2
avgpool p2 from r2 kernel=2 stride=2
flatten f from p2
linear fc1 from f out=120
relu r3 from fc1
linear fc2 from r3 out=84
relu r4 from fc2
linear fc3 from r4 out=10
|}

let residual_text =
  {|model residual
input in 3x32x32
conv stem from in out=16 kernel=3
relu r0 from stem
conv c1 from r0 out=16 kernel=3
relu r1 from c1
conv c2 from r1 out=16 kernel=3
add s from c2 r0
relu r2 from s
gap g from r2
linear fc from g out=10
|}

let test_parse_lenet () =
  let g = Model_text.parse lenet_text in
  Alcotest.(check string) "name" "lenet5" (Graph.name g);
  Alcotest.(check bool) "valid" true (Graph.validate g = Ok ());
  (* Same structure as the built-in builder. *)
  let builtin = Models.lenet5 () in
  Alcotest.(check int) "same weights" (Graph.total_weight_params builtin)
    (Graph.total_weight_params g);
  Alcotest.(check int) "same weighted layers"
    (List.length (Graph.weighted_nodes builtin))
    (List.length (Graph.weighted_nodes g))

let test_parse_residual () =
  let g = Model_text.parse residual_text in
  Alcotest.(check bool) "valid" true (Graph.validate g = Ok ());
  let adds =
    List.filter (fun n -> (Graph.layer g n).Layer.op = Layer.Add) (Graph.nodes g)
  in
  Alcotest.(check int) "one add" 1 (List.length adds)

let test_inferred_channels () =
  let g = Model_text.parse lenet_text in
  let conv2 =
    List.find (fun n -> (Graph.layer g n).Layer.name = "conv2") (Graph.nodes g)
  in
  match (Graph.layer g conv2).Layer.op with
  | Layer.Conv { in_channels; _ } -> Alcotest.(check int) "inferred" 6 in_channels
  | _ -> Alcotest.fail "not a conv"

let check_parse_error text expected_line =
  try
    ignore (Model_text.parse text);
    Alcotest.fail "expected Parse_error"
  with Model_text.Parse_error (line, _) ->
    Alcotest.(check int) "error line" expected_line line

let test_error_unknown_op () =
  check_parse_error "model m\ninput in 4\nfoo x from in\n" 3

let test_error_unknown_producer () =
  check_parse_error "model m\ninput in 4\nrelu r from ghost\n" 3

let test_error_missing_attr () =
  check_parse_error "model m\ninput in 3x8x8\nconv c from in kernel=3\n" 3

let test_error_duplicate_name () =
  check_parse_error "model m\ninput in 4\nrelu in from in\n" 3

let test_error_shape_mismatch () =
  (* Linear on a feature map must point at the offending line. *)
  check_parse_error "model m\ninput in 3x8x8\nlinear fc from in out=10\n" 3

let test_error_empty () =
  check_parse_error "" 0

let test_error_bad_shape () =
  check_parse_error "model m\ninput in 3x\n" 2

(* Corpus of malformed inputs: every case must fail with a *located*
   diagnostic (correct line, and the offending token's column where it
   exists), never a bare exception. *)

let check_parse_error_msg text expected_line fragment =
  try
    ignore (Model_text.parse text);
    Alcotest.fail "expected Parse_error"
  with Model_text.Parse_error (line, msg) ->
    Alcotest.(check int) "error line" expected_line line;
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    if not (contains msg fragment) then
      Alcotest.failf "diagnostic %S does not mention %S" msg fragment

let test_corpus_located () =
  (* Non-integer attribute value, with the offending token's column. *)
  check_parse_error_msg "model m\ninput in 3x8x8\nconv c from in out=banana kernel=3\n" 3
    "not an integer";
  check_parse_error_msg "model m\ninput in 3x8x8\nconv c from in out=banana kernel=3\n" 3
    "column";
  (* Unknown operator names its column too. *)
  check_parse_error_msg "model m\ninput in 4\nwarp w from in\n" 3 "unknown operator";
  check_parse_error_msg "model m\ninput in 4\nwarp w from in\n" 3 "column 1";
  (* Unknown attribute. *)
  check_parse_error_msg "model m\ninput in 3x8x8\nconv c from in out=4 kernel=3 zap=1\n" 3
    "unknown attribute zap";
  (* Bare word where key=value expected. *)
  check_parse_error_msg "model m\ninput in 8\nlinear fc from in out=4 oops\n" 3
    "expected key=value"

let test_corpus_constructor_errors () =
  (* Invalid layer parameters surface as located diagnostics, not raw
     Invalid_argument from the layer smart constructors. *)
  check_parse_error "model m\ninput in 3x8x8\nconv c from in out=4 kernel=0\n" 3;
  check_parse_error "model m\ninput in 3x8x8\ndepthwise d from in kernel=0\n" 3;
  check_parse_error "model m\ninput in 8\nlinear fc from in out=-3\n" 3;
  check_parse_error "model m\ninput in 3x8x8\nmaxpool p from in kernel=-2\n" 3;
  (* Bad shapes, including non-positive dimensions. *)
  check_parse_error "model m\ninput in 0x8x8\n" 2;
  check_parse_error "model m\ninput in 3x8x8x8\n" 2;
  check_parse_error "model m\ninput in -4\n" 2

let test_corpus_truncation () =
  (* Descriptions cut off mid-way fail cleanly at the right line. *)
  check_parse_error "model m\ninput in 3x8x8\nconv c from in\n" 3 (* attrs lost *);
  check_parse_error "model m\ninput in 3x8x8\nconv\n" 3 (* name lost *);
  check_parse_error "model m\ninput in\n" 2 (* shape lost *);
  (* A consumer statement whose producer line vanished. *)
  check_parse_error_msg "model m\nconv c from in out=4 kernel=3\n" 2 "unknown producer";
  check_parse_error "" 0 (* everything lost: empty description *)

let test_comments_and_blanks () =
  let g = Model_text.parse "# header\n\nmodel m\n  # indented comment\ninput in 8\nlinear fc from in out=4 # trailing\n" in
  Alcotest.(check int) "two nodes" 2 (Graph.node_count g)

let test_groups_roundtrip () =
  let text =
    "model grp\ninput in 8x8x8\ndepthwise dw from in kernel=3\nconv pw from dw out=16 kernel=1 pad=0 groups=2\ngap g from pw\nlinear fc from g out=4\n"
  in
  let g = Model_text.parse text in
  let reparsed = Model_text.parse (Model_text.to_string g) in
  Alcotest.(check int) "params survive" (Graph.total_weight_params g)
    (Graph.total_weight_params reparsed);
  let dw = List.find (fun n -> (Graph.layer g n).Layer.name = "dw") (Graph.nodes g) in
  match (Graph.layer g dw).Layer.op with
  | Layer.Conv { groups; _ } -> Alcotest.(check int) "depthwise groups" 8 groups
  | _ -> Alcotest.fail "dw is not a conv"

let test_roundtrip_zoo () =
  List.iter
    (fun name ->
      let original = Models.by_name name in
      let text = Model_text.to_string original in
      let reparsed = Model_text.parse text in
      Alcotest.(check string) (name ^ " name") (Graph.name original) (Graph.name reparsed);
      Alcotest.(check int)
        (name ^ " node count")
        (Graph.node_count original) (Graph.node_count reparsed);
      Alcotest.(check int)
        (name ^ " weights")
        (Graph.total_weight_params original)
        (Graph.total_weight_params reparsed);
      (* Per-node shapes survive the round trip. *)
      List.iter
        (fun node ->
          Alcotest.(check bool) (name ^ " shape") true
            (Shape.equal (Graph.shape_of original node) (Graph.shape_of reparsed node)))
        (Graph.nodes original))
    Models.all_names

let test_parse_file () =
  let path = Filename.temp_file "compass" ".model" in
  let oc = open_out path in
  output_string oc lenet_text;
  close_out oc;
  let g = Model_text.parse_file path in
  Sys.remove path;
  Alcotest.(check string) "loaded" "lenet5" (Graph.name g)

let test_parsed_model_compiles () =
  let g = Model_text.parse residual_text in
  let plan =
    Compass_core.Compiler.compile ~ga_params:Compass_core.Ga.quick_params ~model:g
      ~chip:Compass_arch.Config.chip_s ~batch:4 Compass_core.Compiler.Compass
  in
  Alcotest.(check bool) "throughput positive" true
    (plan.Compass_core.Compiler.perf.Compass_core.Estimator.throughput_per_s > 0.)

(* Property: graphs written then parsed keep their per-layer MVM counts. *)

let prop_roundtrip_mvms =
  QCheck.Test.make ~name:"roundtrip preserves mvm counts" ~count:20
    (QCheck.make (QCheck.Gen.oneofl Models.all_names))
    (fun name ->
      let original = Models.by_name name in
      let reparsed = Model_text.parse (Model_text.to_string original) in
      List.for_all
        (fun node -> Graph.mvms_of original node = Graph.mvms_of reparsed node)
        (Graph.nodes original))

let () =
  Alcotest.run "model_text"
    [
      ( "parse",
        [
          Alcotest.test_case "lenet" `Quick test_parse_lenet;
          Alcotest.test_case "residual" `Quick test_parse_residual;
          Alcotest.test_case "inferred channels" `Quick test_inferred_channels;
          Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
          Alcotest.test_case "parse file" `Quick test_parse_file;
          Alcotest.test_case "parsed model compiles" `Quick test_parsed_model_compiles;
        ] );
      ( "errors",
        [
          Alcotest.test_case "unknown op" `Quick test_error_unknown_op;
          Alcotest.test_case "unknown producer" `Quick test_error_unknown_producer;
          Alcotest.test_case "missing attr" `Quick test_error_missing_attr;
          Alcotest.test_case "duplicate name" `Quick test_error_duplicate_name;
          Alcotest.test_case "shape mismatch" `Quick test_error_shape_mismatch;
          Alcotest.test_case "empty" `Quick test_error_empty;
          Alcotest.test_case "bad shape" `Quick test_error_bad_shape;
          Alcotest.test_case "located corpus" `Quick test_corpus_located;
          Alcotest.test_case "constructor errors located" `Quick
            test_corpus_constructor_errors;
          Alcotest.test_case "truncation corpus" `Quick test_corpus_truncation;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "zoo roundtrip" `Quick test_roundtrip_zoo;
          Alcotest.test_case "groups roundtrip" `Quick test_groups_roundtrip;
          QCheck_alcotest.to_alcotest prop_roundtrip_mvms;
        ] );
    ]
