(* Unit and property tests for Compass_util. *)

open Compass_util

let check_float = Alcotest.(check (float 1e-9))

(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_copy_independent () =
  let a = Rng.create 3 in
  let _ = Rng.int a 10 in
  let b = Rng.copy a in
  Alcotest.(check int) "copies agree" (Rng.int a 1_000_000) (Rng.int b 1_000_000)

let test_rng_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_int_in_bounds () =
  let rng = Rng.create 13 in
  for _ = 1 to 10_000 do
    let v = Rng.int_in rng 51 66 in
    Alcotest.(check bool) "in [51,66]" true (v >= 51 && v <= 66)
  done

let test_rng_int_in_covers_range () =
  let rng = Rng.create 5 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Rng.int_in rng 0 4) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all (fun b -> b) seen)

let test_rng_float_bounds () =
  let rng = Rng.create 17 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0. && v < 2.5)
  done

let test_rng_invalid_args () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "int_in inverted" (Invalid_argument "Rng.int_in: lo > hi")
    (fun () -> ignore (Rng.int_in rng 5 4));
  Alcotest.check_raises "pick empty" (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Rng.pick rng []))

let test_rng_shuffle_permutes () =
  let rng = Rng.create 23 in
  let xs = Array.init 50 (fun i -> i) in
  Rng.shuffle rng xs;
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 (fun i -> i)) sorted

let test_rng_sample_without_replacement () =
  let rng = Rng.create 29 in
  let s = Rng.sample_without_replacement rng 10 30 in
  Alcotest.(check int) "ten draws" 10 (List.length s);
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare s));
  List.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 30)) s

let test_rng_split_diverges () =
  let a = Rng.create 31 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let prop_rng_split_pairwise_independent =
  (* The GA hands every candidate its own split stream; sibling splits and
     the parent must all produce distinct prefixes or candidates would be
     correlated. *)
  QCheck.Test.make ~name:"rng split streams pairwise distinct" ~count:200
    QCheck.small_int
    (fun seed ->
      let parent = Rng.create seed in
      let c1 = Rng.split parent in
      let c2 = Rng.split parent in
      let c3 = Rng.split parent in
      let prefix rng = List.init 8 (fun _ -> Rng.float rng 1.) in
      let streams = [ prefix parent; prefix c1; prefix c2; prefix c3 ] in
      let rec pairwise_distinct = function
        | [] -> true
        | s :: rest -> List.for_all (fun t -> s <> t) rest && pairwise_distinct rest
      in
      pairwise_distinct streams)

(* Stats *)

let test_stats_mean () =
  check_float "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ]);
  check_float "empty" 0. (Stats.mean [])

let test_stats_geomean () =
  check_float "geomean" 2. (Stats.geomean [ 1.; 2.; 4. ]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive value") (fun () ->
      ignore (Stats.geomean [ 1.; 0. ]))

let test_stats_stddev () =
  check_float "constant" 0. (Stats.stddev [ 5.; 5.; 5. ]);
  check_float "spread" 2. (Stats.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ])

let test_stats_min_max () =
  check_float "min" (-1.) (Stats.minimum [ 3.; -1.; 2. ]);
  check_float "max" 3. (Stats.maximum [ 3.; -1.; 2. ])

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "p50" 50. (Stats.percentile 50. xs);
  check_float "p100" 100. (Stats.percentile 100. xs);
  check_float "p1" 1. (Stats.percentile 1. xs)

let test_stats_normalize () =
  Alcotest.(check (list (float 1e-9)))
    "normalized" [ 0.5; 1. ]
    (Stats.normalize_to 2. [ 1.; 2. ])

(* Units *)

let test_units_bytes () =
  Alcotest.(check string) "mb" "1.12 MB" (Units.bytes_to_string (1.125 *. Units.mib));
  Alcotest.(check string) "zero" "0 B" (Units.bytes_to_string 0.)

let test_units_time () =
  Alcotest.(check string) "us" "12.8 us" (Units.time_to_string 12.8e-6);
  Alcotest.(check string) "ms" "1.5 ms" (Units.time_to_string 1.5e-3)

let test_units_energy () =
  Alcotest.(check string) "mj" "3.2 mJ" (Units.energy_to_string 3.2e-3)

(* Table *)

let test_table_render () =
  let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "name"; "v" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "bb"; "22" ];
  let rendered = Table.render t in
  Alcotest.(check bool) "has separator" true (String.length rendered > 0);
  Alcotest.(check int) "rows" 2 (Table.row_count t);
  (* Right-aligned numeric column. *)
  Alcotest.(check bool) "right align" true
    (String.length (List.nth (String.split_on_char '\n' rendered) 2) > 0)

let test_table_short_row_padded () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "x" ];
  Alcotest.(check int) "one row" 1 (Table.row_count t)

let test_table_long_row_rejected () =
  let t = Table.create [ "a" ] in
  Alcotest.check_raises "too many" (Invalid_argument "Table.add_row: too many cells")
    (fun () -> Table.add_row t [ "x"; "y" ])

(* Ascii_plot *)

let test_bar_chart () =
  let s = Ascii_plot.bar_chart ~title:"t" () [ ("a", 1.); ("b", 2.) ] in
  Alcotest.(check bool) "title present" true (String.length s > 1);
  Alcotest.(check int) "three lines" 3 (List.length (String.split_on_char '\n' s))

let test_grouped_bars_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Ascii_plot.grouped_bars: series s length mismatch") (fun () ->
      ignore
        (Ascii_plot.grouped_bars ~title:"t" ~group_labels:[ "g1"; "g2" ]
           ~series:[ ("s", [ 1. ]) ] ()))

let test_heat_map_dims () =
  let s = Ascii_plot.heat_map ~title:"hm" ~render_cell:(fun _ _ -> '#') ~rows:3 ~cols:5 in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "rows+title" 4 (List.length lines);
  Alcotest.(check string) "row content" "#####" (List.nth lines 1)

let test_scatter_empty () =
  Alcotest.(check bool) "renders" true
    (String.length (Ascii_plot.scatter ~title:"s" ~points:[] ()) > 0)

let test_scatter_points () =
  let s =
    Ascii_plot.scatter ~title:"s" ~points:[ (0., 0., 'o'); (1., 1., '+') ] ()
  in
  Alcotest.(check bool) "contains markers" true
    (String.contains s 'o' && String.contains s '+')

(* Properties *)

let prop_rng_int_in_range =
  QCheck.Test.make ~name:"rng int always in range" ~count:1000
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, bound) ->
      let bound = bound + 1 in
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_percentile_bounded =
  QCheck.Test.make ~name:"percentile within min/max" ~count:500
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1e6) 1e6))
    (fun xs ->
      let p = Stats.percentile 50. xs in
      p >= Stats.minimum xs && p <= Stats.maximum xs)

let prop_shuffle_preserves_elements =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:300
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let arr = Array.of_list xs in
      Rng.shuffle (Rng.create seed) arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

let () =
  Alcotest.run "compass_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
          Alcotest.test_case "int_in covers range" `Quick test_rng_int_in_covers_range;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "invalid args" `Quick test_rng_invalid_args;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "sample without replacement" `Quick
            test_rng_sample_without_replacement;
          Alcotest.test_case "split diverges" `Quick test_rng_split_diverges;
          QCheck_alcotest.to_alcotest prop_rng_split_pairwise_independent;
          QCheck_alcotest.to_alcotest prop_rng_int_in_range;
          QCheck_alcotest.to_alcotest prop_shuffle_preserves_elements;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "min/max" `Quick test_stats_min_max;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "normalize" `Quick test_stats_normalize;
          QCheck_alcotest.to_alcotest prop_percentile_bounded;
        ] );
      ( "units",
        [
          Alcotest.test_case "bytes" `Quick test_units_bytes;
          Alcotest.test_case "time" `Quick test_units_time;
          Alcotest.test_case "energy" `Quick test_units_energy;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "short row padded" `Quick test_table_short_row_padded;
          Alcotest.test_case "long row rejected" `Quick test_table_long_row_rejected;
        ] );
      ( "ascii_plot",
        [
          Alcotest.test_case "bar chart" `Quick test_bar_chart;
          Alcotest.test_case "grouped bars mismatch" `Quick test_grouped_bars_mismatch;
          Alcotest.test_case "heat map dims" `Quick test_heat_map_dims;
          Alcotest.test_case "scatter empty" `Quick test_scatter_empty;
          Alcotest.test_case "scatter points" `Quick test_scatter_points;
        ] );
    ]
