(* Tests for the validity map (paper Fig. 5) and core mapping (bin
   packing). *)

open Compass_core
open Compass_arch

let setup name chip =
  let units = Unit_gen.generate (Compass_nn.Models.by_name name) chip in
  (units, Validity.build units)

(* Mapping *)

let test_pack_single_unit () =
  let units, _ = setup "resnet18" Config.chip_s in
  match Mapping.pack units ~start_:0 ~stop:1 ~replication:(fun _ -> 1) with
  | Error e -> Alcotest.fail e
  | Ok m ->
    Alcotest.(check int) "one core used" 1 (Mapping.cores_used m);
    Alcotest.(check int) "tiles placed" units.Unit_gen.units.(0).Unit_gen.tiles
      m.Mapping.total_tiles

let test_pack_respects_core_capacity () =
  let units, v = setup "vgg16" Config.chip_s in
  let stop = Validity.max_end v 0 in
  match Mapping.pack units ~start_:0 ~stop ~replication:(fun _ -> 1) with
  | Error e -> Alcotest.fail e
  | Ok m ->
    Array.iter
      (fun used ->
        Alcotest.(check bool) "within capacity" true (used <= m.Mapping.capacity_per_core))
      m.Mapping.tiles_used

let test_pack_replication_multiplies () =
  let units, _ = setup "resnet18" Config.chip_s in
  let r1 =
    match Mapping.pack units ~start_:0 ~stop:1 ~replication:(fun _ -> 1) with
    | Ok m -> m.Mapping.total_tiles
    | Error e -> Alcotest.fail e
  in
  let r3 =
    match Mapping.pack units ~start_:0 ~stop:1 ~replication:(fun _ -> 3) with
    | Ok m -> m.Mapping.total_tiles
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "3x tiles" (3 * r1) r3

let test_pack_overflow_fails () =
  let units, _ = setup "vgg16" Config.chip_s in
  let m = Unit_gen.unit_count units in
  Alcotest.(check bool) "whole vgg cannot pack" true
    (match Mapping.pack units ~start_:0 ~stop:m ~replication:(fun _ -> 1) with
    | Error _ -> true
    | Ok _ -> false)

let test_pack_bad_replication () =
  let units, _ = setup "lenet5" Config.chip_s in
  Alcotest.(check bool) "rep 0 rejected" true
    (try
       ignore (Mapping.pack units ~start_:0 ~stop:1 ~replication:(fun _ -> 0));
       false
     with Invalid_argument _ -> true)

let test_core_of_unit () =
  let units, _ = setup "lenet5" Config.chip_s in
  match Mapping.pack units ~start_:0 ~stop:2 ~replication:(fun _ -> 2) with
  | Error e -> Alcotest.fail e
  | Ok m ->
    let c0 = Mapping.core_of_unit m ~unit_index:0 ~replica:0 in
    let c1 = Mapping.core_of_unit m ~unit_index:0 ~replica:1 in
    Alcotest.(check bool) "both placed" true (c0 >= 0 && c1 >= 0);
    Alcotest.(check bool) "missing replica raises" true
      (try
         ignore (Mapping.core_of_unit m ~unit_index:0 ~replica:5);
         false
       with Invalid_argument _ -> true)

let test_utilization_bounds () =
  let units, v = setup "resnet18" Config.chip_m in
  let stop = Validity.max_end v 0 in
  match Mapping.pack units ~start_:0 ~stop ~replication:(fun _ -> 1) with
  | Error e -> Alcotest.fail e
  | Ok m ->
    let u = Mapping.utilization m in
    Alcotest.(check bool) "in (0,1]" true (u > 0. && u <= 1.)

(* Validity *)

let test_max_end_progress () =
  List.iter
    (fun name ->
      let _, v = setup name Config.chip_s in
      for a = 0 to Validity.size v - 1 do
        Alcotest.(check bool) "max_end > start" true (Validity.max_end v a > a)
      done)
    [ "vgg16"; "resnet18"; "squeezenet" ]

let test_valid_spans_feasible () =
  (* Everything the map calls valid must actually bin-pack. *)
  let units, v = setup "resnet18" Config.chip_s in
  let rng = Compass_util.Rng.create 42 in
  for _ = 1 to 50 do
    let a = Compass_util.Rng.int rng (Validity.size v) in
    let b = Compass_util.Rng.int_in rng (a + 1) (Validity.max_end v a) in
    Alcotest.(check bool) "feasible" true (Mapping.feasible units ~start_:a ~stop:b)
  done

let test_invalid_spans_infeasible_capacity () =
  (* Spans one past max_end must violate capacity or packing. *)
  let units, v = setup "vgg16" Config.chip_s in
  let checked = ref 0 in
  for a = 0 to Validity.size v - 1 do
    let b = Validity.max_end v a in
    if b < Validity.size v && !checked < 30 then begin
      incr checked;
      Alcotest.(check bool) "just past the edge fails" false
        (Mapping.feasible units ~start_:a ~stop:(b + 1))
    end
  done;
  Alcotest.(check bool) "some edges checked" true (!checked > 0)

let test_density_ordering () =
  (* Fig. 5: density shrinks with model size and grows with chip size. *)
  let _, v_small_model = setup "squeezenet" Config.chip_s in
  let _, v_big_model = setup "vgg16" Config.chip_s in
  Alcotest.(check bool) "squeezenet denser than vgg16" true
    (Validity.density v_small_model > Validity.density v_big_model);
  let _, v_small_chip = setup "resnet18" Config.chip_s in
  let _, v_big_chip = setup "resnet18" Config.chip_l in
  Alcotest.(check bool) "chip L denser than chip S" true
    (Validity.density v_big_chip > Validity.density v_small_chip)

let test_squeezenet_fully_valid () =
  (* SqueezeNet fits every chip entirely: every span is valid. *)
  let _, v = setup "squeezenet" Config.chip_s in
  Alcotest.(check (float 1e-9)) "density 1" 1. (Validity.density v)

let test_is_valid_bounds () =
  let _, v = setup "resnet18" Config.chip_s in
  Alcotest.(check bool) "negative start" false (Validity.is_valid v ~start_:(-1) ~stop:1);
  Alcotest.(check bool) "empty span" false (Validity.is_valid v ~start_:3 ~stop:3);
  Alcotest.(check bool) "single unit" true (Validity.is_valid v ~start_:0 ~stop:1)

let test_random_group_valid () =
  List.iter
    (fun name ->
      let _, v = setup name Config.chip_s in
      let rng = Compass_util.Rng.create 7 in
      for _ = 1 to 20 do
        let g = Validity.random_group rng v in
        Alcotest.(check bool) (name ^ " random group valid") true (Validity.group_valid v g);
        Alcotest.(check int)
          (name ^ " covers all units")
          (Validity.size v) (Partition.total_units g)
      done)
    [ "vgg16"; "resnet18"; "squeezenet" ]

let test_group_valid_rejects_wrong_cover () =
  let _, v = setup "resnet18" Config.chip_s in
  let g = Partition.singleton (Validity.size v - 1) in
  Alcotest.(check bool) "wrong size rejected" false (Validity.group_valid v g)

let test_render_shape () =
  let _, v = setup "resnet18" Config.chip_s in
  let s = Validity.render ~cells:16 v in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "title + 16 rows" 17 (List.length lines);
  Alcotest.(check bool) "contains valid cells" true (String.contains s '#')

(* Properties *)

let prop_random_groups_always_valid =
  QCheck.Test.make ~name:"random groups valid across seeds" ~count:50
    QCheck.small_int (fun seed ->
      let _, v = setup "resnet18" Config.chip_s in
      let g = Validity.random_group (Compass_util.Rng.create seed) v in
      Validity.group_valid v g)

let prop_subspans_of_valid_are_valid =
  QCheck.Test.make ~name:"prefix subspans of valid spans are valid" ~count:50
    QCheck.small_int (fun seed ->
      let _, v = setup "resnet18" Config.chip_m in
      let rng = Compass_util.Rng.create seed in
      let a = Compass_util.Rng.int rng (Validity.size v) in
      let b = Compass_util.Rng.int_in rng (a + 1) (Validity.max_end v a) in
      (* Any [a, c) with c <= b is also within max_end. *)
      let c = Compass_util.Rng.int_in rng (a + 1) b in
      Validity.is_valid v ~start_:a ~stop:c)

let () =
  Alcotest.run "validity"
    [
      ( "mapping",
        [
          Alcotest.test_case "pack single unit" `Quick test_pack_single_unit;
          Alcotest.test_case "respects core capacity" `Quick
            test_pack_respects_core_capacity;
          Alcotest.test_case "replication multiplies" `Quick
            test_pack_replication_multiplies;
          Alcotest.test_case "overflow fails" `Quick test_pack_overflow_fails;
          Alcotest.test_case "bad replication" `Quick test_pack_bad_replication;
          Alcotest.test_case "core_of_unit" `Quick test_core_of_unit;
          Alcotest.test_case "utilization bounds" `Quick test_utilization_bounds;
        ] );
      ( "validity-map",
        [
          Alcotest.test_case "max_end progress" `Quick test_max_end_progress;
          Alcotest.test_case "valid spans feasible" `Quick test_valid_spans_feasible;
          Alcotest.test_case "edges infeasible" `Quick
            test_invalid_spans_infeasible_capacity;
          Alcotest.test_case "density ordering (Fig 5)" `Quick test_density_ordering;
          Alcotest.test_case "squeezenet fully valid" `Quick test_squeezenet_fully_valid;
          Alcotest.test_case "is_valid bounds" `Quick test_is_valid_bounds;
          Alcotest.test_case "random group valid" `Quick test_random_group_valid;
          Alcotest.test_case "wrong cover rejected" `Quick
            test_group_valid_rejects_wrong_cover;
          Alcotest.test_case "render shape" `Quick test_render_shape;
          QCheck_alcotest.to_alcotest prop_random_groups_always_valid;
          QCheck_alcotest.to_alcotest prop_subspans_of_valid_are_valid;
        ] );
    ]
