(* Tests for the resilient serving runtime (lib/serve): wire-protocol
   round-trips and located rejections, watermark shedding with
   hysteresis, per-request deadlines (timeout-in-queue, degraded
   compiles, inferences cancelled between layers), bounded transient
   retry with backoff, the circuit breaker's open -> half-open -> closed
   trajectory, graceful drain, the wire loop's torn-EOF accounting, and
   the chaos soak: under an injected failpoint storm no request loses
   its response, nothing deadlocks, and successful responses are
   byte-identical to a clean run.  Everything runs on an injected clock
   and a captured sleep hook — no test sleeps. *)

open Compass_serve
open Compass_util
module P = Protocol

(* ------------------------------------------------------------------ *)
(* Fixture: a server with a scripted clock and captured responses      *)

type fix = {
  server : Server.t;
  responses : P.response list ref;  (* newest first *)
  time : float ref;
  step : float ref;  (* clock advance per read *)
  sleeps : float list ref;  (* newest first *)
}

let make ?(step = 0.) ?(config = Server.default_config) () =
  let time = ref 0. in
  let step = ref step in
  let sleeps = ref [] in
  let responses = ref [] in
  let clock () =
    let v = !time in
    time := v +. !step;
    v
  in
  let config =
    { config with Server.clock; sleep = (fun s -> sleeps := s :: !sleeps) }
  in
  let server =
    Server.create ~config ~respond:(fun r -> responses := r :: !responses) ()
  in
  { server; responses; time; step; sleeps }

let by_id fix id =
  match List.find_opt (fun r -> r.P.r_id = id) !(fix.responses) with
  | Some r -> r
  | None -> Alcotest.failf "no response for id %s" id

let status_name r = P.status_to_string r.P.status
let note_of r = Option.value ~default:"" r.P.note

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_status id expected r =
  Alcotest.(check string) (id ^ " status") expected (status_name r)

let check_note id needle r =
  if not (contains (note_of r) needle) then
    Alcotest.failf "%s note %S does not mention %S" id (note_of r) needle

(* Request builders (line lists, as the framer would deliver them). *)
let ping id = [ Printf.sprintf "request %s ping" id ]

let infer ?(model = "tiny_mlp") ?(batch = 1) ?(seed = 0) ?deadline id =
  [ Printf.sprintf "request %s infer" id; "model " ^ model;
    Printf.sprintf "batch %d" batch; Printf.sprintf "seed %d" seed ]
  @ match deadline with
    | None -> []
    | Some d -> [ "deadline " ^ Artifact.float_token d ]

let compile ?(model = "lenet5") ?(chip = "S") ?(batch = 2) ?(seed = 0) ?deadline
    id =
  [ Printf.sprintf "request %s compile" id; "model " ^ model; "chip " ^ chip;
    Printf.sprintf "batch %d" batch; Printf.sprintf "seed %d" seed;
    "quick true" ]
  @ match deadline with
    | None -> []
    | Some d -> [ "deadline " ^ Artifact.float_token d ]

let verify id payload =
  (Printf.sprintf "request %s verify" id)
  :: Printf.sprintf "payload %d" (List.length payload)
  :: payload

let plan_payload () =
  let model = Compass_nn.Models.by_name "lenet5" in
  let plan =
    Compass_core.Compiler.compile ~model ~chip:Compass_arch.Config.chip_s
      ~batch:2 Compass_core.Compiler.Greedy
  in
  match
    List.rev (String.split_on_char '\n' (Compass_core.Plan_text.to_string plan))
  with
  | "" :: rev -> List.rev rev
  | rev -> List.rev rev

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)

let test_request_round_trip () =
  let req =
    {
      P.default_request with
      P.id = "rt-1";
      kind = P.Verify;
      batch = 7;
      deadline_s = Some 0.125;
      seed = 42;
      quick = false;
      payload = [ "raw line"; "end"; "payload 3"; "" ];
    }
  in
  let f = P.Framer.create () in
  let blocks =
    List.filter_map (P.Framer.feed f) (P.request_to_lines req)
  in
  (match blocks with
  | [ block ] -> (
    match P.parse_request block with
    | Ok got ->
      if got <> req then Alcotest.fail "request did not round-trip the framer"
    | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg)
  | bs -> Alcotest.failf "expected 1 framed block, got %d" (List.length bs));
  Alcotest.(check bool) "framer drained" false (P.Framer.partial f)

let test_request_parse_errors () =
  let expect_err lines needle =
    match P.parse_request lines with
    | Ok _ -> Alcotest.failf "parsed despite %s" needle
    | Error msg ->
      if not (contains msg needle) then
        Alcotest.failf "diagnostic %S does not mention %S" msg needle
  in
  expect_err [] "empty";
  expect_err [ "bogus header" ] "line 1";
  expect_err [ "request only" ] "request <id> <kind>";
  expect_err [ "request x teleport" ] "unknown request kind";
  expect_err [ "request spaces! ping" ] "request id";
  expect_err
    [ "request "
      ^ String.concat "" (List.init 65 (fun _ -> "x"))
      ^ " ping" ]
    "request id";
  expect_err [ "request x ping"; "bogus 3" ] "line 2";
  expect_err [ "request x compile"; "batch four" ] "expected an integer";
  expect_err [ "request x compile"; "deadline -1" ] "deadline";
  expect_err [ "request x verify"; "payload 5"; "only"; "two" ] "payload";
  expect_err [ "request x ping"; "quick maybe" ] "quick"

let test_response_round_trip () =
  let resp =
    {
      P.r_id = "resp-9";
      status = P.Degraded;
      elapsed_s = 0.30000000000000004;
      note = Some "deadline expired mid-search: plan is best-so-far";
      body = [ "compass-plan 1"; "cuts 0 3" ];
    }
  in
  match P.parse_response (P.response_to_string resp) with
  | Ok got ->
    if got <> resp then Alcotest.fail "response did not round-trip";
    Alcotest.(check bool) "elapsed bit-exact" true
      (Int64.bits_of_float got.P.elapsed_s = Int64.bits_of_float resp.P.elapsed_s)
  | Error msg -> Alcotest.failf "response parse failed: %s" msg

let test_framer_streaming () =
  let f = P.Framer.create () in
  let fed = ref [] in
  List.iter
    (fun line ->
      match P.Framer.feed f line with
      | Some block -> fed := block :: !fed
      | None -> ())
    [
      ""; "request a ping"; "end"; "end"; "";
      "request b verify"; "payload 2"; "end"; "raw end line"; "end";
      "request c ping";
    ];
  (match List.rev !fed with
  | [ [ "request a ping" ]; [ "request b verify"; "payload 2"; "end"; "raw end line" ] ]
    -> ()
  | blocks -> Alcotest.failf "unexpected framing (%d blocks)" (List.length blocks));
  Alcotest.(check bool) "torn block detectable" true (P.Framer.partial f)

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)

let test_admission_hysteresis () =
  let q = Admission.create ~high:4 ~low:2 () in
  for i = 1 to 4 do
    Alcotest.(check bool) (Printf.sprintf "offer %d" i) true (Admission.offer q i)
  done;
  Alcotest.(check bool) "5th offer shed" false (Admission.offer q 5);
  Alcotest.(check bool) "shedding" true (Admission.shedding q);
  ignore (Admission.pop q);
  Alcotest.(check bool) "still shedding above low" false (Admission.offer q 6);
  ignore (Admission.pop q);
  ignore (Admission.pop q);
  (* depth 1 < low 2: hysteresis releases *)
  Alcotest.(check bool) "accepts again below low" true (Admission.offer q 7);
  Alcotest.(check int) "sheds counted" 2 (Admission.shed_count q);
  (match Admission.create ~high:0 () with
  | _ -> Alcotest.fail "high=0 accepted"
  | exception Invalid_argument _ -> ());
  match Admission.create ~high:4 ~low:5 () with
  | _ -> Alcotest.fail "low>high accepted"
  | exception Invalid_argument _ -> ()

let test_server_sheds_at_watermark () =
  let config = { Server.default_config with Server.queue_high = 2; queue_low = 1 } in
  let fix = make ~config () in
  List.iter (fun i -> Server.submit fix.server (infer (Printf.sprintf "q%d" i)))
    [ 1; 2; 3; 4 ];
  check_status "q3" "rejected" (by_id fix "q3");
  check_note "q3" "overloaded" (by_id fix "q3");
  check_status "q4" "rejected" (by_id fix "q4");
  Alcotest.(check int) "two queued" 2 (Server.pending fix.server);
  Alcotest.(check bool) "step 1" true (Server.step fix.server);
  Alcotest.(check bool) "step 2" true (Server.step fix.server);
  Alcotest.(check bool) "idle" false (Server.step fix.server);
  check_status "q1" "ok" (by_id fix "q1");
  check_status "q2" "ok" (by_id fix "q2");
  Alcotest.(check int) "all answered" 4 (Server.responded fix.server);
  Server.close fix.server

(* ------------------------------------------------------------------ *)
(* Deadlines                                                           *)

let test_timeout_while_queued () =
  let fix = make () in
  Server.submit fix.server (infer ~deadline:5.0 "slow");
  fix.time := 10.0;
  Alcotest.(check bool) "one step" true (Server.step fix.server);
  let r = by_id fix "slow" in
  check_status "slow" "timeout" r;
  check_note "slow" "queued" r;
  Alcotest.(check (list string)) "no payload on timeout" [] r.P.body;
  Server.close fix.server

let test_compile_degrades_on_deadline () =
  (* The clock advances 5 ms per read and the deadline is 10 ms, so the
     GA's budget polls trip mid-search: the response must be a degraded
     best-so-far plan that still parses and verifies cleanly. *)
  let fix = make ~step:0.005 () in
  Server.submit fix.server (compile ~deadline:0.01 "deg");
  ignore (Server.step fix.server);
  let r = by_id fix "deg" in
  check_status "deg" "degraded" r;
  check_note "deg" "best-so-far" r;
  let plan =
    Compass_core.Plan_text.of_string (String.concat "\n" r.P.body ^ "\n")
  in
  Alcotest.(check (list string)) "degraded plan verifies" []
    (List.map Compass_core.Verify.render_violation (Compass_core.Verify.check plan));
  Server.close fix.server

let test_infer_cancelled_on_deadline () =
  let fix = make ~step:0.005 () in
  Server.submit fix.server (infer ~model:"lenet5" ~batch:2 ~deadline:0.01 "slow");
  ignore (Server.step fix.server);
  let r = by_id fix "slow" in
  check_status "slow" "timeout" r;
  check_note "slow" "cancelled" r;
  Alcotest.(check (list string)) "no payload" [] r.P.body;
  Server.close fix.server

let test_default_deadline_applied () =
  let config = { Server.default_config with Server.default_deadline_s = Some 5.0 } in
  let fix = make ~config () in
  Server.submit fix.server (infer "d1");
  fix.time := 10.0;
  ignore (Server.step fix.server);
  check_status "d1" "timeout" (by_id fix "d1");
  Server.close fix.server

(* ------------------------------------------------------------------ *)
(* Retry                                                               *)

let test_transient_retried () =
  let fix = make () in
  Failpoint.with_schedule "serve.request=raise@once" (fun () ->
      Server.submit fix.server (infer "flaky");
      ignore (Server.step fix.server));
  check_status "flaky" "ok" (by_id fix "flaky");
  Alcotest.(check (list (float 0.))) "one backoff sleep" [ 0.01 ] !(fix.sleeps);
  Server.close fix.server

let test_transient_gives_up () =
  let fix = make () in
  Failpoint.with_schedule "serve.request=raise@always" (fun () ->
      Server.submit fix.server (infer "doomed");
      ignore (Server.step fix.server));
  let r = by_id fix "doomed" in
  check_status "doomed" "error" r;
  check_note "doomed" "gave up after 3 attempt(s)" r;
  (* Doubling backoff: 10 ms then 20 ms (newest first). *)
  Alcotest.(check (list (float 1e-9))) "backoff doubles" [ 0.02; 0.01 ] !(fix.sleeps);
  Server.close fix.server

let test_retry_respects_deadline () =
  let fix = make ~step:0.01 () in
  Failpoint.with_schedule "serve.request=raise@always" (fun () ->
      Server.submit fix.server (infer ~deadline:0.015 "hasty");
      ignore (Server.step fix.server));
  let r = by_id fix "hasty" in
  check_status "hasty" "timeout" r;
  check_note "hasty" "retrying" r;
  Server.close fix.server

(* ------------------------------------------------------------------ *)
(* Circuit breaker                                                     *)

let test_breaker_trajectory () =
  let config =
    { Server.default_config with Server.breaker_threshold = 2; max_retries = 0 }
  in
  let fix = make ~config () in
  let failing id =
    Failpoint.with_schedule "serve.request=raise@always" (fun () ->
        Server.submit fix.server (infer id);
        ignore (Server.step fix.server))
  in
  failing "f1";
  check_status "f1" "error" (by_id fix "f1");
  failing "f2";
  check_status "f2" "error" (by_id fix "f2");
  (* Two consecutive failures: the infer class is now open; compile and
     ping are unaffected. *)
  Server.submit fix.server (infer "f3");
  check_status "f3" "rejected" (by_id fix "f3");
  check_note "f3" "circuit" (by_id fix "f3");
  Server.submit fix.server (ping "p1");
  check_status "p1" "ok" (by_id fix "p1");
  Server.submit fix.server (compile "c1");
  ignore (Server.step fix.server);
  check_status "c1" "ok" (by_id fix "c1");
  (* Cooldown elapses (1 s doubling, jitter < 1.25): the next infer is
     the half-open probe.  It fails -> straight back open, doubled. *)
  fix.time := !(fix.time) +. 2.0;
  failing "probe1";
  check_status "probe1" "error" (by_id fix "probe1");
  Server.submit fix.server (infer "f4");
  check_status "f4" "rejected" (by_id fix "f4");
  (* Second cooldown (< 2.5 s with jitter); a clean probe closes it. *)
  fix.time := !(fix.time) +. 3.0;
  Server.submit fix.server (infer "probe2");
  ignore (Server.step fix.server);
  check_status "probe2" "ok" (by_id fix "probe2");
  Server.submit fix.server (infer "f5");
  ignore (Server.step fix.server);
  check_status "f5" "ok" (by_id fix "f5");
  Server.close fix.server

let test_breaker_probe_rejects_second () =
  (* While a probe is queued (half-open), a second request of the same
     class is rejected, not queued behind it. *)
  let now = ref 0. in
  let b = Breaker.create ~threshold:1 ~cooldown_s:1.0 ~now:(fun () -> !now) () in
  Breaker.record b "infer" ~ok:false;
  Alcotest.(check string) "open after threshold" "open" (Breaker.state_name b "infer");
  now := 2.0;
  (match Breaker.admit b "infer" with
  | Breaker.Probe -> ()
  | _ -> Alcotest.fail "expected the half-open probe");
  (match Breaker.admit b "infer" with
  | Breaker.Reject reason ->
    if not (contains reason "probe") then
      Alcotest.failf "reject reason %S does not mention the probe" reason
  | _ -> Alcotest.fail "second admit during probe not rejected");
  (* A probe that never executes (shed) must not wedge the class. *)
  Breaker.cancel_probe b "infer";
  Alcotest.(check string) "re-opened" "open" (Breaker.state_name b "infer");
  (match Breaker.admit b "infer" with
  | Breaker.Probe -> ()
  | _ -> Alcotest.fail "cancelled probe not re-admitted");
  Breaker.record b "infer" ~ok:true;
  Alcotest.(check string) "closed on success" "closed" (Breaker.state_name b "infer")

(* ------------------------------------------------------------------ *)
(* Drain                                                               *)

let test_graceful_drain () =
  let fix = make () in
  List.iter
    (fun i -> Server.submit fix.server (infer (Printf.sprintf "w%d" i)))
    [ 1; 2; 3 ];
  Server.begin_drain fix.server;
  Alcotest.(check bool) "draining" true (Server.draining fix.server);
  Server.submit fix.server (infer "late");
  check_status "late" "rejected" (by_id fix "late");
  check_note "late" "draining" (by_id fix "late");
  (* A ping still answers during drain, flagged. *)
  Server.submit fix.server (ping "hb");
  check_status "hb" "ok" (by_id fix "hb");
  check_note "hb" "draining" (by_id fix "hb");
  Server.drain fix.server;
  Alcotest.(check int) "queue empty" 0 (Server.pending fix.server);
  List.iter (fun i -> check_status "drained" "ok" (by_id fix (Printf.sprintf "w%d" i)))
    [ 1; 2; 3 ];
  (* Exactly one response per submitted request. *)
  Alcotest.(check int) "response count" 5 (Server.responded fix.server);
  let ids = List.map (fun r -> r.P.r_id) !(fix.responses) in
  Alcotest.(check int) "no duplicate responses"
    (List.length ids)
    (List.length (List.sort_uniq compare ids));
  Server.close fix.server;
  (match Server.step fix.server with
  | _ -> Alcotest.fail "step after close accepted"
  | exception Invalid_argument _ -> ());
  Server.close fix.server (* idempotent *)

(* ------------------------------------------------------------------ *)
(* Wire loop                                                           *)

let test_wire_loop_eof_accounting () =
  let fix = make () in
  let rd, wr = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let payload =
    String.concat "\n"
      ([ "request a ping"; "end" ] @ infer "b" @ [ "end"; "request torn infer" ])
    ^ "\n"
  in
  ignore (Unix.write_substring wr payload 0 (String.length payload));
  Unix.close wr;
  (match Server.run_fd fix.server ~stop:(fun () -> false) rd with
  | `Eof -> ()
  | `Stopped -> Alcotest.fail "expected Eof");
  Unix.close rd;
  Server.drain fix.server;
  check_status "a" "ok" (by_id fix "a");
  check_status "b" "ok" (by_id fix "b");
  let torn = by_id fix "-" in
  check_status "torn" "error" torn;
  check_note "torn" "truncated" torn;
  Alcotest.(check int) "every block answered" 3 (Server.responded fix.server);
  Server.close fix.server

let test_wire_loop_stop () =
  let fix = make () in
  let rd, wr = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let stopped = ref false in
  (match Server.run_fd fix.server ~stop:(fun () -> !stopped = false && (stopped := true; false) || true) rd with
  | `Stopped -> ()
  | `Eof -> Alcotest.fail "expected Stopped");
  Unix.close rd;
  Unix.close wr;
  Server.close fix.server

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)

let test_serve_metrics () =
  let fix = make () in
  Metrics.reset ();
  Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.disable ();
      Metrics.reset ())
    (fun () ->
      Server.submit fix.server (ping "m1");
      Server.submit fix.server (infer "m2");
      Server.submit fix.server [ "garbage" ];
      ignore (Server.step fix.server);
      let metric name = Option.value ~default:0 (Metrics.find_int name) in
      Alcotest.(check int) "requests" 3 (metric "serve.requests");
      Alcotest.(check int) "responses" 3 (metric "serve.responses");
      Alcotest.(check int) "ok" 2 (metric "serve.status.ok");
      Alcotest.(check int) "error" 1 (metric "serve.status.error");
      Alcotest.(check int) "latency samples" 3 (metric "serve.latency_s.count");
      match Metrics.quantile "serve.latency_s" 0.99 with
      | Some q -> Alcotest.(check bool) "p99 finite" true (Float.is_finite q)
      | None -> Alcotest.fail "no latency histogram");
  Server.close fix.server

(* ------------------------------------------------------------------ *)
(* Chaos soak                                                          *)

(* The tentpole acceptance: a scripted burst of mixed requests, run
   clean and run under a failpoint storm (every execution attempt and
   every batch entry can fire).  Both runs must answer every request
   exactly once, and every response that succeeds in both runs must be
   byte-identical — recovery may only add retries, never change
   results. *)
let soak_script fix =
  let payload = plan_payload () in
  Server.submit fix.server (ping "s-ping");
  Server.submit fix.server (compile ~seed:3 "s-compile");
  Server.submit fix.server (infer ~seed:5 ~batch:2 "s-infer");
  Server.submit fix.server (verify "s-verify" payload);
  Server.submit fix.server (verify "s-verify-bad" [ "not a plan" ]);
  Server.submit fix.server (infer ~model:"nonesuch" "s-badmodel");
  Server.submit fix.server [ "request s-badkind teleport" ];
  Server.submit fix.server (infer ~seed:6 "s-infer2");
  while Server.step fix.server do () done;
  Server.drain fix.server

let soak_run spec =
  let fix = make () in
  (match spec with
  | None -> soak_script fix
  | Some spec -> Failpoint.with_schedule spec (fun () -> soak_script fix));
  let rendered =
    List.map (fun r -> (r.P.r_id, P.response_to_string r)) !(fix.responses)
    |> List.sort compare
  in
  Server.close fix.server;
  (Server.responded fix.server, rendered)

let test_chaos_soak_deterministic () =
  let clean_count, clean = soak_run None in
  Alcotest.(check int) "clean: every request answered" 8 clean_count;
  List.iter
    (fun spec ->
      let count, chaos = soak_run (Some spec) in
      Alcotest.(check int)
        (Printf.sprintf "%s: every request answered" spec)
        8 count;
      Alcotest.(check (list string))
        (Printf.sprintf "%s: same ids" spec)
        (List.map fst clean) (List.map fst chaos);
      List.iter2
        (fun (id, clean_text) (_, chaos_text) ->
          match P.parse_response clean_text with
          | Ok { P.status = P.Ok | P.Degraded; _ } ->
            Alcotest.(check string)
              (Printf.sprintf "%s: %s byte-identical" spec id)
              clean_text chaos_text
          | _ -> ())
        clean chaos)
    [
      "serve.request=raise@nth:2";
      "serve.request=raise@every:3";
      "serve.request=eintr@every:2";
      "executor.batch=raise@nth:2";
      "serve.request=raise@nth:1;executor.batch=raise@every:4";
    ]

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_round_trip;
          Alcotest.test_case "request parse errors located" `Quick
            test_request_parse_errors;
          Alcotest.test_case "response round-trip" `Quick test_response_round_trip;
          Alcotest.test_case "framer streaming" `Quick test_framer_streaming;
        ] );
      ( "admission",
        [
          Alcotest.test_case "watermark hysteresis" `Quick test_admission_hysteresis;
          Alcotest.test_case "server sheds at watermark" `Quick
            test_server_sheds_at_watermark;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "timeout while queued" `Quick test_timeout_while_queued;
          Alcotest.test_case "compile degrades" `Quick
            test_compile_degrades_on_deadline;
          Alcotest.test_case "infer cancelled" `Quick test_infer_cancelled_on_deadline;
          Alcotest.test_case "default deadline" `Quick test_default_deadline_applied;
        ] );
      ( "retry",
        [
          Alcotest.test_case "transient retried" `Quick test_transient_retried;
          Alcotest.test_case "gives up bounded" `Quick test_transient_gives_up;
          Alcotest.test_case "respects deadline" `Quick test_retry_respects_deadline;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "open half-open closed" `Quick test_breaker_trajectory;
          Alcotest.test_case "probe exclusivity" `Quick
            test_breaker_probe_rejects_second;
        ] );
      ( "drain",
        [ Alcotest.test_case "graceful drain" `Quick test_graceful_drain ] );
      ( "wire",
        [
          Alcotest.test_case "eof accounting" `Quick test_wire_loop_eof_accounting;
          Alcotest.test_case "stop signal" `Quick test_wire_loop_stop;
        ] );
      ( "observability",
        [ Alcotest.test_case "serve metrics" `Quick test_serve_metrics ] );
      ( "chaos",
        [
          Alcotest.test_case "soak is deterministic" `Quick
            test_chaos_soak_deterministic;
        ] );
    ]
