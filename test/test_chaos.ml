(* Chaos drills: torn-artifact salvage over an exhaustive truncation
   corpus, crash-consistent writes under injected failures, and the
   determinism of supervised recovery. *)

open Compass_core
open Compass_util

let setup () =
  let units =
    Unit_gen.generate (Compass_nn.Models.by_name "lenet5") Compass_arch.Config.chip_s
  in
  let v = Validity.build units in
  (v, Dataflow.context units)

let params = { Ga.quick_params with Ga.seed = 11; jobs = 1 }

let capture_checkpoints () =
  let v, ctx = setup () in
  let cks = ref [] in
  let result = Ga.optimize ~params ~on_checkpoint:(fun ck -> cks := ck :: !cks) ctx v ~batch:4 in
  (result, List.rev !cks)

(* The tentpole salvage guarantee, exhaustively: a checkpoint truncated
   at EVERY byte prefix either salvages to a strictly-reparseable
   checkpoint of no newer generation, or raises a located Load_error —
   never an unhandled exception, never a silently-wrong population. *)
let test_checkpoint_truncation_corpus () =
  let _, cks = capture_checkpoints () in
  let ck = List.nth cks (List.length cks - 1) in
  let text = Plan_text.checkpoint_to_string ck in
  let n = String.length text in
  let salvaged = ref 0 in
  let rejected = ref 0 in
  for keep = 0 to n do
    let prefix = String.sub text 0 keep in
    match Plan_text.salvage_of_string prefix with
    | s ->
      incr salvaged;
      if s.Plan_text.generation > ck.Ga.ck_generation then
        Alcotest.failf "prefix %d salvaged a generation from the future" keep;
      if s.Plan_text.complete && keep <> n then
        Alcotest.failf "prefix %d claimed to be complete" keep;
      (* Whatever salvage returns must itself survive a strict round
         trip: recovery never fabricates an unloadable state. *)
      let reparsed =
        Plan_text.checkpoint_of_string (Plan_text.checkpoint_to_string s.Plan_text.recovered)
      in
      if reparsed.Ga.ck_generation <> s.Plan_text.generation then
        Alcotest.failf "prefix %d: salvaged checkpoint does not round-trip" keep
    | exception Plan_text.Load_error _ -> incr rejected
    | exception e ->
      Alcotest.failf "prefix %d escaped with %s" keep (Printexc.to_string e)
  done;
  Alcotest.(check bool) "some prefixes salvage" true (!salvaged > 0);
  Alcotest.(check bool) "some prefixes reject" true (!rejected > 0);
  (* The full text is complete and drops nothing. *)
  let s = Plan_text.salvage_of_string text in
  Alcotest.(check bool) "full text complete" true s.Plan_text.complete;
  Alcotest.(check int) "nothing dropped" 0 s.Plan_text.dropped_records

(* A salvaged resume must continue the search exactly as the untorn
   checkpoint would have: tearing only the history section changes
   nothing about the trajectory. *)
let test_salvaged_resume_is_deterministic () =
  let v, ctx = setup () in
  let full, cks = capture_checkpoints () in
  let ck = List.nth cks (List.length cks - 1) in
  let text = Plan_text.checkpoint_to_string ck in
  (* Tear inside the final history record (drop its last few bytes). *)
  let torn = String.sub text 0 (String.length text - 5) in
  let s = Plan_text.salvage_of_string torn in
  Alcotest.(check bool) "tear was tolerated, not strict" false s.Plan_text.complete;
  Alcotest.(check int) "same generation" ck.Ga.ck_generation s.Plan_text.generation;
  let resumed = Ga.optimize ~params ~resume:s.Plan_text.recovered ctx v ~batch:4 in
  Alcotest.(check bool) "same best group" true
    (Partition.equal full.Ga.best.Ga.group resumed.Ga.best.Ga.group);
  Alcotest.(check (float 0.)) "same best fitness" full.Ga.best.Ga.fitness
    resumed.Ga.best.Ga.fitness

let test_plan_truncation_corpus () =
  (* Archived plans get the same no-unhandled-exception guarantee (no
     salvage path — a torn plan is rejected, never mis-loaded). *)
  let plan =
    Compiler.compile ~ga_params:params
      ~model:(Compass_nn.Models.by_name "lenet5")
      ~chip:Compass_arch.Config.chip_s ~batch:4 Compiler.Greedy
  in
  let text = Plan_text.to_string plan in
  for keep = 0 to String.length text - 1 do
    match Plan_text.of_string (String.sub text 0 keep) with
    | _ -> ()  (* a prefix that still parses is a complete, valid plan *)
    | exception Plan_text.Load_error _ -> ()
    | exception e ->
      Alcotest.failf "plan prefix %d escaped with %s" keep (Printexc.to_string e)
  done

let with_temp_dir f =
  let dir = Filename.temp_file "compass-chaos" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let test_journal_salvage () =
  let _, cks = capture_checkpoints () in
  let first = List.hd cks and last = List.nth cks (List.length cks - 1) in
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "journal.txt" in
  Plan_text.append_checkpoint path first;
  Plan_text.append_checkpoint path last;
  (* Intact journal: the newest block wins, strictly. *)
  let s = Plan_text.salvage_checkpoint path in
  Alcotest.(check int) "newest block" last.Ga.ck_generation s.Plan_text.generation;
  Alcotest.(check bool) "strict" true s.Plan_text.complete;
  (* Torn final append: fall back to the previous complete block. *)
  let t1 = Plan_text.checkpoint_to_string first in
  let contents = Artifact.read_file path in
  let torn = String.sub contents 0 (String.length t1 + 40) in
  let s = Plan_text.salvage_of_string torn in
  Alcotest.(check int) "previous block recovered" first.Ga.ck_generation
    s.Plan_text.generation;
  Alcotest.(check bool) "previous block is strict" true s.Plan_text.complete

(* Journal edge cases: a journal file with no content at all, and one
   whose very FIRST block is torn (no earlier complete block to fall
   back on), must both be rejected with a located diagnostic — never
   mis-salvaged into a bogus resume — while a torn first block followed
   by a complete append salvages the complete one. *)
let test_journal_salvage_edges () =
  let _, cks = capture_checkpoints () in
  let first = List.hd cks in
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "journal.txt" in
  (* Empty journal file. *)
  Artifact.append_durable path "";
  (match Plan_text.salvage_checkpoint path with
  | _ -> Alcotest.fail "empty journal salvaged"
  | exception Plan_text.Load_error _ -> ());
  (* Torn first block: the only block is incomplete, nothing salvages. *)
  let t1 = Plan_text.checkpoint_to_string first in
  let torn_first =
    (* Tear on a record boundary, the way a durable append tears. *)
    let cut = String.rindex_from t1 (String.length t1 / 2) '\n' in
    String.sub t1 0 (cut + 1)
  in
  Artifact.append_durable path torn_first;
  (match Plan_text.salvage_checkpoint path with
  | _ -> Alcotest.fail "torn-first-block journal salvaged"
  | exception Plan_text.Load_error _ -> ());
  (* A later durable append of a complete block makes the journal
     salvageable again: the torn prefix is skipped, not fatal. *)
  Artifact.append_durable path t1;
  let s = Plan_text.salvage_checkpoint path in
  Alcotest.(check int) "complete block recovered past the torn prefix"
    first.Ga.ck_generation s.Plan_text.generation;
  (* Missing journal: located error, not a crash. *)
  match Plan_text.salvage_checkpoint (Filename.concat dir "nonexistent.txt") with
  | _ -> Alcotest.fail "missing journal salvaged"
  | exception (Plan_text.Load_error _ | Sys_error _) -> ()

(* Crash-consistent writes: under every injected failure the destination
   keeps its previous contents and the directory keeps no litter; the
   reported error names the failing step, not the cleanup. *)
let test_atomic_write_under_chaos () =
  let big = String.init 200_000 (fun i -> Char.chr (33 + (i mod 90))) in
  let schedules =
    [
      ("artifact.write.open=raise", true);
      ("artifact.write.mid=raise", true);
      ("artifact.write.syscall=enospc", false);
      ("artifact.write.syscall=enospc@nth:2", false);  (* second 64KiB chunk *)
      ("artifact.write.fsync=eio", false);
      ("artifact.write.rename=enospc", false);
      ("artifact.write.mid=truncate:10;artifact.write.fsync=eio", false);
    ]
  in
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "artifact.txt" in
  Artifact.write_atomic path "previous generation";
  List.iter
    (fun (spec, injected) ->
      (Failpoint.with_schedule spec @@ fun () ->
       match Artifact.write_atomic path big with
       | () -> Alcotest.failf "%s: write unexpectedly succeeded" spec
       | exception Failpoint.Injected _ when injected -> ()
       | exception Sys_error msg when not injected ->
         let mentions sub =
           let n = String.length msg and m = String.length sub in
           let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
           go 0
         in
         if not (mentions path) then
           Alcotest.failf "%s: diagnostic %S does not locate the path" spec msg;
         if mentions "unlink" then
           Alcotest.failf "%s: cleanup error shadowed the original: %S" spec msg
       | exception e -> Alcotest.failf "%s: escaped with %s" spec (Printexc.to_string e));
      Alcotest.(check string)
        (spec ^ ": destination preserved")
        "previous generation" (Artifact.read_file path);
      Alcotest.(check (list string))
        (spec ^ ": no litter")
        [ "artifact.txt" ]
        (List.sort compare (Array.to_list (Sys.readdir dir))))
    schedules;
  (* Truncation that reaches the rename: the artifact is replaced by the
     torn payload — exactly the torn-file scenario salvage handles — but
     still atomically (no litter, no partial-then-grown file). *)
  (Failpoint.with_schedule "artifact.write.mid=truncate:10" @@ fun () ->
   Artifact.write_atomic path big);
  Alcotest.(check string) "torn payload written atomically" (String.sub big 0 10)
    (Artifact.read_file path)

let test_eintr_handling () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "artifact.txt" in
  let big = String.init 200_000 (fun i -> Char.chr (33 + (i mod 90))) in
  (* Transient EINTR on every other chunk write is retried transparently. *)
  (Failpoint.with_schedule "artifact.write.syscall=eintr@every:2" @@ fun () ->
   Artifact.write_atomic path big);
  Alcotest.(check int) "intact despite interruptions" (String.length big)
    (String.length (Artifact.read_file path));
  (* A wedged descriptor (EINTR forever) is bounded, not an infinite loop. *)
  (Failpoint.with_schedule "artifact.write.syscall=eintr@always" @@ fun () ->
   match Artifact.write_atomic path "new" with
   | () -> Alcotest.fail "unbounded EINTR loop terminated with success?"
   | exception Sys_error msg ->
     Alcotest.(check bool) "diagnostic mentions EINTR" true
       (let n = String.length msg in
        let rec go i = i + 5 <= n && (String.sub msg i 5 = "EINTR" || go (i + 1)) in
        go 0));
  Alcotest.(check int) "destination preserved" (String.length big)
    (String.length (Artifact.read_file path))

let test_append_durable () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "journal.txt" in
  Artifact.append_durable path "one\n";
  Artifact.append_durable path "two\n";
  Alcotest.(check string) "appends accumulate" "one\ntwo\n" (Artifact.read_file path);
  (* A failed append leaves the previous contents readable. *)
  (Failpoint.with_schedule "artifact.append.syscall=enospc" @@ fun () ->
   match Artifact.append_durable path "three\n" with
   | () -> Alcotest.fail "injected ENOSPC ignored"
   | exception Sys_error _ -> ());
  Alcotest.(check string) "prefix intact after torn append" "one\ntwo\n"
    (Artifact.read_file path)

(* Supervised recovery is invisible in the results: a GA run whose
   evaluations crash (and are retried) emits the same checkpoint stream
   as an unfailed run, for any worker count. *)
let test_ga_supervised_chaos_deterministic () =
  let v, ctx = setup () in
  let stream supervision jobs spec =
    let texts = ref [] in
    let run () =
      ignore
        (Ga.optimize
           ~params:{ params with Ga.jobs }
           ?supervision
           ~on_checkpoint:(fun ck -> texts := Plan_text.checkpoint_to_string ck :: !texts)
           ctx v ~batch:4)
    in
    (match spec with
    | None -> run ()
    | Some spec -> Failpoint.with_schedule spec run);
    List.rev !texts
  in
  let clean = stream None 1 None in
  let supervision = Some (Pool.supervision ~retries:3 ()) in
  let chaotic = stream supervision 1 (Some "pool.task=raise@nth:7") in
  Alcotest.(check (list string)) "recovered run byte-identical" clean chaotic;
  (* The checkpoint serializes the jobs param itself, so the jobs=2
     comparison needs a clean jobs=2 baseline. *)
  let clean2 = stream None 2 None in
  let chaotic2 = stream supervision 2 (Some "pool.task=raise@every:13") in
  Alcotest.(check (list string)) "recovered run byte-identical (jobs=2)" clean2 chaotic2;
  (* An armed-but-silent schedule must also be invisible. *)
  let armed = stream None 1 (Some "no.such.site=raise@always") in
  Alcotest.(check (list string)) "armed-not-firing byte-identical" clean armed

let test_ga_unsupervised_chaos_diagnosed () =
  let v, ctx = setup () in
  Failpoint.with_schedule "pool.task=raise@nth:4" @@ fun () ->
  match Ga.optimize ~params ctx v ~batch:4 with
  | _ -> Alcotest.fail "expected Task_error"
  | exception Pool.Task_error { index = 3; error = Failpoint.Injected "pool.task"; _ } ->
    ()  (* at jobs=1 the 4th task guard is index 3 *)

let test_executor_supervised_chaos () =
  let model = Compass_nn.Models.by_name "lenet5" in
  let weights = Compass_nn.Executor.random_weights ~seed:7 model in
  let inputs =
    Array.init 4 (fun i -> Compass_nn.Executor.random_input ~seed:(100 + i) model)
  in
  let clean = Compass_nn.Executor.output_batch model weights inputs in
  Pool.with_pool ~jobs:2 @@ fun pool ->
  let recovered =
    Failpoint.with_schedule "pool.task=raise@nth:3" @@ fun () ->
    Compass_nn.Executor.output_batch ~pool
      ~supervision:(Pool.supervision ~retries:2 ())
      model weights inputs
  in
  Array.iteri
    (fun i t ->
      Alcotest.(check bool)
        (Printf.sprintf "sample %d bit-identical" i)
        true
        (Compass_nn.Tensor.equal ~eps:0. clean.(i) t))
    recovered

let () =
  Alcotest.run "chaos"
    [
      ( "salvage",
        [
          Alcotest.test_case "checkpoint truncation corpus" `Quick
            test_checkpoint_truncation_corpus;
          Alcotest.test_case "salvaged resume deterministic" `Quick
            test_salvaged_resume_is_deterministic;
          Alcotest.test_case "plan truncation corpus" `Quick test_plan_truncation_corpus;
          Alcotest.test_case "journal salvage" `Quick test_journal_salvage;
          Alcotest.test_case "journal salvage edges" `Quick test_journal_salvage_edges;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "atomic write under chaos" `Quick
            test_atomic_write_under_chaos;
          Alcotest.test_case "EINTR bounded and transparent" `Quick test_eintr_handling;
          Alcotest.test_case "durable append" `Quick test_append_durable;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "GA recovery byte-identical" `Quick
            test_ga_supervised_chaos_deterministic;
          Alcotest.test_case "GA failure located" `Quick
            test_ga_unsupervised_chaos_diagnosed;
          Alcotest.test_case "executor recovery bit-identical" `Quick
            test_executor_supervised_chaos;
        ] );
    ]
