(* Tests for the COMPASS genetic algorithm (Algorithm 1) and the baseline
   partitioners. *)

open Compass_core
open Compass_arch

let setup name chip =
  let units = Unit_gen.generate (Compass_nn.Models.by_name name) chip in
  let v = Validity.build units in
  (units, v, Dataflow.context units)

let quick seed = { Ga.quick_params with Ga.seed }

(* Baselines *)

let test_greedy_covers_and_valid () =
  List.iter
    (fun name ->
      let units, v, _ = setup name Config.chip_s in
      let g = Baselines.greedy v in
      Alcotest.(check int) (name ^ " covers") (Unit_gen.unit_count units)
        (Partition.total_units g);
      Alcotest.(check bool) (name ^ " valid") true (Validity.group_valid v g))
    [ "vgg16"; "resnet18"; "squeezenet" ]

let test_greedy_is_maximal () =
  let _, v, _ = setup "resnet18" Config.chip_s in
  let g = Baselines.greedy v in
  List.iter
    (fun (s : Partition.span) ->
      Alcotest.(check int) "each span maximal" (Validity.max_end v s.Partition.start_)
        s.Partition.stop)
    (Partition.spans g)

let test_layerwise_valid () =
  List.iter
    (fun name ->
      let units, v, _ = setup name Config.chip_s in
      let g = Baselines.layerwise v in
      Alcotest.(check int) (name ^ " covers") (Unit_gen.unit_count units)
        (Partition.total_units g);
      Alcotest.(check bool) (name ^ " valid") true (Validity.group_valid v g))
    [ "vgg16"; "resnet18"; "squeezenet" ]

let test_layerwise_one_layer_per_partition () =
  (* Where a layer fits the chip, layerwise maps exactly one layer per
     partition. *)
  let units, v, ctx = setup "squeezenet" Config.chip_s in
  let g = Baselines.layerwise v in
  Alcotest.(check int) "one partition per weighted layer"
    (List.length units.Unit_gen.layer_units)
    (Partition.partition_count g);
  List.iter
    (fun (s : Partition.span) ->
      let io = Dataflow.span_io ctx ~start_:s.Partition.start_ ~stop:s.Partition.stop in
      Alcotest.(check int) "single conv/linear" 1
        (List.length io.Dataflow.weighted_layers))
    (Partition.spans g)

let test_layerwise_more_partitions_than_greedy () =
  let _, v, _ = setup "resnet18" Config.chip_s in
  Alcotest.(check bool) "finer" true
    (Partition.partition_count (Baselines.layerwise v)
    > Partition.partition_count (Baselines.greedy v))

(* GA *)

let test_ga_result_valid () =
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let r = Ga.optimize ~params:(quick 1) ctx v ~batch:16 in
  Alcotest.(check bool) "best is valid" true (Validity.group_valid v r.Ga.best.Ga.group)

let test_ga_deterministic () =
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let r1 = Ga.optimize ~params:(quick 5) ctx v ~batch:16 in
  let r2 = Ga.optimize ~params:(quick 5) ctx v ~batch:16 in
  Alcotest.(check bool) "same best group" true
    (Partition.equal r1.Ga.best.Ga.group r2.Ga.best.Ga.group);
  Alcotest.(check (float 0.)) "same fitness" r1.Ga.best.Ga.fitness r2.Ga.best.Ga.fitness

let check_results_identical label (r1 : Ga.result) (r2 : Ga.result) =
  Alcotest.(check bool) (label ^ ": same best group") true
    (Partition.equal r1.Ga.best.Ga.group r2.Ga.best.Ga.group);
  Alcotest.(check (float 0.)) (label ^ ": same fitness") r1.Ga.best.Ga.fitness
    r2.Ga.best.Ga.fitness;
  Alcotest.(check int) (label ^ ": same generations") r1.Ga.generations_run
    r2.Ga.generations_run;
  Alcotest.(check int) (label ^ ": same evaluations") r1.Ga.evaluations r2.Ga.evaluations;
  Alcotest.(check int) (label ^ ": same cache size") r1.Ga.cache_spans r2.Ga.cache_spans;
  Alcotest.(check int) (label ^ ": same history length")
    (List.length r1.Ga.history) (List.length r2.Ga.history);
  List.iter2
    (fun (g1 : Ga.generation_record) (g2 : Ga.generation_record) ->
      let tag = Printf.sprintf "%s gen %d" label g1.Ga.generation in
      Alcotest.(check int) (tag ^ ": index") g1.Ga.generation g2.Ga.generation;
      Alcotest.(check (float 0.)) (tag ^ ": best") g1.Ga.best_fitness g2.Ga.best_fitness;
      Alcotest.(check (list (pair (float 0.) int)))
        (tag ^ ": selected") g1.Ga.selected g2.Ga.selected;
      Alcotest.(check (list (pair (float 0.) int)))
        (tag ^ ": mutated") g1.Ga.mutated g2.Ga.mutated)
    r1.Ga.history r2.Ga.history

let test_ga_parallel_determinism () =
  (* The headline guarantee: any worker count replays the same search. *)
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let run jobs = Ga.optimize ~params:{ (quick 5) with Ga.jobs } ctx v ~batch:16 in
  let r1 = run 1 in
  List.iter
    (fun jobs -> check_results_identical (Printf.sprintf "jobs=%d" jobs) r1 (run jobs))
    [ 2; 4 ]

let prop_ga_parallel_determinism =
  QCheck.Test.make ~name:"GA identical at jobs=1 and jobs=3" ~count:4
    QCheck.(pair small_int bool)
    (fun (seed, small_chip) ->
      let chip = if small_chip then Config.chip_s else Config.chip_m in
      let _, v, ctx = setup "resnet18" chip in
      let tiny jobs =
        {
          (quick seed) with
          Ga.population = 8;
          Ga.generations = 4;
          Ga.n_sel = 3;
          Ga.n_mut = 5;
          Ga.jobs = jobs;
        }
      in
      let r1 = Ga.optimize ~params:(tiny 1) ctx v ~batch:8 in
      let r3 = Ga.optimize ~params:(tiny 3) ctx v ~batch:8 in
      Partition.equal r1.Ga.best.Ga.group r3.Ga.best.Ga.group
      && r1.Ga.best.Ga.fitness = r3.Ga.best.Ga.fitness
      && r1.Ga.history = r3.Ga.history
      && r1.Ga.evaluations = r3.Ga.evaluations
      && r1.Ga.cache_spans = r3.Ga.cache_spans)

(* Mutation operators: whatever the scheme does, the child must remain a
   contiguous cover of the unit range (validity is re-checked by the
   search; coverage must never be lost). *)

let prop_mutations_preserve_cover =
  let _, v, _ = setup "resnet18" Config.chip_s in
  QCheck.Test.make ~name:"mutation schemes preserve unit cover" ~count:100
    QCheck.(pair small_int (int_bound 3))
    (fun (seed, scheme_idx) ->
      let scheme =
        List.nth [ Ga.Merge; Ga.Split; Ga.Move; Ga.Fixed_random ] scheme_idx
      in
      let rng = Compass_util.Rng.create (succ seed) in
      let parent = Validity.random_group rng v in
      let scores =
        Array.init (Partition.partition_count parent) (fun _ ->
            Compass_util.Rng.float rng 1.)
      in
      match Ga.mutate scheme rng v ~scores parent with
      | child ->
        Partition.total_units child = Partition.total_units parent
        && Partition.partition_count child >= 1
      | exception Invalid_argument _ ->
        (* Inapplicable on this parent (e.g. nothing to merge or split);
           the search retries with another scheme. *)
        true)

let test_ga_beats_or_matches_random () =
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let r = Ga.optimize ~params:(quick 2) ctx v ~batch:16 in
  let rng = Compass_util.Rng.create 1234 in
  let random_best =
    List.fold_left
      (fun acc _ ->
        let g = Validity.random_group rng v in
        let p = Estimator.evaluate ctx ~batch:16 g in
        min acc (Fitness.group_fitness Fitness.Latency p))
      infinity (List.init 24 (fun i -> i))
  in
  Alcotest.(check bool) "GA at least as good as 24 random draws" true
    (r.Ga.best.Ga.fitness <= random_best +. 1e-12)

let test_ga_best_monotone_over_generations () =
  let _, v, ctx = setup "resnet18" Config.chip_m in
  let r = Ga.optimize ~params:(quick 3) ctx v ~batch:16 in
  let bests = List.map (fun g -> g.Ga.best_fitness) r.Ga.history in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-12 && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "best fitness never regresses" true (non_increasing bests)

let test_ga_population_sizes () =
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let params = { (quick 4) with Ga.early_stop_patience = 0 } in
  let r = Ga.optimize ~params ctx v ~batch:16 in
  Alcotest.(check int) "all generations run" params.Ga.generations r.Ga.generations_run;
  List.iter
    (fun rec_ ->
      Alcotest.(check int) "selected size" params.Ga.n_sel (List.length rec_.Ga.selected);
      Alcotest.(check int) "mutated size" params.Ga.n_mut (List.length rec_.Ga.mutated))
    r.Ga.history

let test_ga_early_stopping () =
  (* Single-partition models converge instantly; early stopping must fire. *)
  let _, v, ctx = setup "lenet5" Config.chip_s in
  let params = { (quick 6) with Ga.generations = 30; Ga.early_stop_patience = 3 } in
  let r = Ga.optimize ~params ctx v ~batch:8 in
  Alcotest.(check bool) "stopped early" true (r.Ga.generations_run < 30)

let test_ga_objectives_differ () =
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let r_lat = Ga.optimize ~params:(quick 7) ~objective:Fitness.Latency ctx v ~batch:16 in
  let r_en = Ga.optimize ~params:(quick 7) ~objective:Fitness.Energy ctx v ~batch:16 in
  (* Each run's reported fitness is its own objective's group fitness... *)
  Alcotest.(check (float 1e-9)) "latency fitness consistent"
    (Fitness.group_fitness Fitness.Latency r_lat.Ga.best.Ga.perf)
    r_lat.Ga.best.Ga.fitness;
  Alcotest.(check (float 1e-9)) "energy fitness consistent"
    (Fitness.group_fitness Fitness.Energy r_en.Ga.best.Ga.perf)
    r_en.Ga.best.Ga.fitness;
  (* ...and the energy-objective search cannot lose badly at its own game
     (small GA budgets leave some stochastic slack). *)
  Alcotest.(check bool) "energy objective competitive on energy" true
    (Fitness.group_fitness Fitness.Energy r_en.Ga.best.Ga.perf
    <= 1.1 *. Fitness.group_fitness Fitness.Energy r_lat.Ga.best.Ga.perf)

let test_ga_scheme_subsets () =
  let _, v, ctx = setup "resnet18" Config.chip_s in
  List.iter
    (fun scheme ->
      let params = { (quick 11) with Ga.schemes = [ scheme ] } in
      let r = Ga.optimize ~params ctx v ~batch:16 in
      Alcotest.(check bool)
        (Ga.scheme_name scheme ^ " alone still valid")
        true
        (Validity.group_valid v r.Ga.best.Ga.group))
    [ Ga.Merge; Ga.Split; Ga.Move; Ga.Fixed_random ]

let test_ga_crossover_enabled () =
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let params = { (quick 12) with Ga.crossover_rate = 0.5 } in
  let r1 = Ga.optimize ~params ctx v ~batch:16 in
  let r2 = Ga.optimize ~params ctx v ~batch:16 in
  Alcotest.(check bool) "valid" true (Validity.group_valid v r1.Ga.best.Ga.group);
  Alcotest.(check bool) "still deterministic" true
    (Partition.equal r1.Ga.best.Ga.group r2.Ga.best.Ga.group)

let test_ga_bad_scheme_params () =
  let _, v, ctx = setup "lenet5" Config.chip_s in
  Alcotest.(check bool) "empty schemes rejected" true
    (try
       ignore (Ga.optimize ~params:{ (quick 1) with Ga.schemes = [] } ctx v ~batch:1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad crossover rate rejected" true
    (try
       ignore
         (Ga.optimize ~params:{ (quick 1) with Ga.crossover_rate = 1.5 } ctx v ~batch:1);
       false
     with Invalid_argument _ -> true)

let test_ga_invalid_params () =
  let _, v, ctx = setup "lenet5" Config.chip_s in
  Alcotest.(check bool) "n_sel > population" true
    (try
       ignore
         (Ga.optimize ~params:{ (quick 1) with Ga.n_sel = 1000 } ctx v ~batch:1);
       false
     with Invalid_argument _ -> true)

let test_ga_history_partitions_positive () =
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let r = Ga.optimize ~params:(quick 8) ctx v ~batch:16 in
  List.iter
    (fun rec_ ->
      List.iter
        (fun (f, parts) ->
          Alcotest.(check bool) "positive fitness" true (f > 0.);
          Alcotest.(check bool) "positive partitions" true (parts >= 1))
        (rec_.Ga.selected @ rec_.Ga.mutated))
    r.Ga.history

let test_ga_evaluation_count () =
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let params = { (quick 9) with Ga.early_stop_patience = 0 } in
  let r = Ga.optimize ~params ctx v ~batch:16 in
  (* population + n_mut per generation (mutation fallbacks may add a few). *)
  let minimum = params.Ga.population + (params.Ga.generations * params.Ga.n_mut) in
  Alcotest.(check bool) "evaluations counted" true (r.Ga.evaluations >= minimum)

(* COMPASS vs baselines: the headline comparison (Fig. 6 direction). *)

let test_compass_not_worse_than_greedy () =
  List.iter
    (fun name ->
      let _, v, ctx = setup name Config.chip_s in
      let r = Ga.optimize ~params:(quick 10) ctx v ~batch:16 in
      let greedy = Estimator.evaluate ctx ~batch:16 (Baselines.greedy v) in
      Alcotest.(check bool)
        (name ^ ": compass >= greedy throughput")
        true
        (r.Ga.best.Ga.perf.Estimator.throughput_per_s
        >= 0.999 *. greedy.Estimator.throughput_per_s))
    [ "resnet18"; "squeezenet" ]

let prop_ga_valid_across_seeds =
  QCheck.Test.make ~name:"GA best valid across seeds" ~count:8 QCheck.small_int
    (fun seed ->
      let _, v, ctx = setup "resnet18" Config.chip_s in
      let r = Ga.optimize ~params:(quick seed) ctx v ~batch:16 in
      Validity.group_valid v r.Ga.best.Ga.group)

let () =
  Alcotest.run "ga"
    [
      ( "baselines",
        [
          Alcotest.test_case "greedy covers and valid" `Quick test_greedy_covers_and_valid;
          Alcotest.test_case "greedy maximal spans" `Quick test_greedy_is_maximal;
          Alcotest.test_case "layerwise valid" `Quick test_layerwise_valid;
          Alcotest.test_case "layerwise one layer each" `Quick
            test_layerwise_one_layer_per_partition;
          Alcotest.test_case "layerwise finer than greedy" `Quick
            test_layerwise_more_partitions_than_greedy;
        ] );
      ( "algorithm",
        [
          Alcotest.test_case "result valid" `Quick test_ga_result_valid;
          Alcotest.test_case "deterministic" `Quick test_ga_deterministic;
          Alcotest.test_case "parallel determinism" `Quick test_ga_parallel_determinism;
          QCheck_alcotest.to_alcotest prop_ga_parallel_determinism;
          QCheck_alcotest.to_alcotest prop_mutations_preserve_cover;
          Alcotest.test_case "beats random search" `Quick test_ga_beats_or_matches_random;
          Alcotest.test_case "best monotone" `Quick test_ga_best_monotone_over_generations;
          Alcotest.test_case "population sizes" `Quick test_ga_population_sizes;
          Alcotest.test_case "early stopping" `Quick test_ga_early_stopping;
          Alcotest.test_case "objectives differ" `Quick test_ga_objectives_differ;
          Alcotest.test_case "invalid params" `Quick test_ga_invalid_params;
          Alcotest.test_case "scheme subsets" `Quick test_ga_scheme_subsets;
          Alcotest.test_case "crossover enabled" `Quick test_ga_crossover_enabled;
          Alcotest.test_case "bad scheme params" `Quick test_ga_bad_scheme_params;
          Alcotest.test_case "history sane" `Quick test_ga_history_partitions_positive;
          Alcotest.test_case "evaluation count" `Quick test_ga_evaluation_count;
          Alcotest.test_case "compass >= greedy" `Slow test_compass_not_worse_than_greedy;
          QCheck_alcotest.to_alcotest prop_ga_valid_across_seeds;
        ] );
    ]
