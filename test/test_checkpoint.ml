(* GA checkpoint/resume: serialization round trips, crash-safe writes, and
   the golden bit-identical-resume contract. *)

open Compass_core
open Compass_arch

let setup name chip =
  let units = Unit_gen.generate (Compass_nn.Models.by_name name) chip in
  let v = Validity.build units in
  (units, v, Dataflow.context units)

let params = { Ga.quick_params with Ga.seed = 11; jobs = 1 }

let history_testable =
  let record_eq (a : Ga.generation_record) (b : Ga.generation_record) =
    a.Ga.generation = b.Ga.generation
    && a.Ga.best_fitness = b.Ga.best_fitness
    && a.Ga.selected = b.Ga.selected
    && a.Ga.mutated = b.Ga.mutated
  in
  Alcotest.testable
    (fun ppf h -> Format.fprintf ppf "<%d records>" (List.length h))
    (fun a b -> List.length a = List.length b && List.for_all2 record_eq a b)

(* The golden test of the resume contract: a search resumed from any
   generation-k checkpoint lands on exactly the run the uninterrupted
   search produced — same best group, same fitness, same history. *)
let test_resume_bit_identical () =
  let _, v, ctx = setup "lenet5" Config.chip_s in
  let checkpoints = ref [] in
  let full =
    Ga.optimize ~params ~on_checkpoint:(fun ck -> checkpoints := ck :: !checkpoints)
      ctx v ~batch:4
  in
  Alcotest.(check bool) "saw checkpoints" true (List.length !checkpoints > 1);
  List.iter
    (fun ck ->
      (* Serialize through the text format, so the golden check covers the
         full save/load path, float precision included. *)
      let ck = Plan_text.checkpoint_of_string (Plan_text.checkpoint_to_string ck) in
      let resumed = Ga.optimize ~params ~resume:ck ctx v ~batch:4 in
      let tag = Printf.sprintf "gen %d: " ck.Ga.ck_generation in
      Alcotest.(check bool)
        (tag ^ "same best group") true
        (Partition.equal full.Ga.best.Ga.group resumed.Ga.best.Ga.group);
      Alcotest.(check (float 0.))
        (tag ^ "same best fitness") full.Ga.best.Ga.fitness resumed.Ga.best.Ga.fitness;
      Alcotest.check history_testable (tag ^ "same history") full.Ga.history
        resumed.Ga.history;
      Alcotest.(check int)
        (tag ^ "same generations") full.Ga.generations_run resumed.Ga.generations_run)
    !checkpoints

let test_checkpoint_stream_unchanged_by_tracing () =
  (* The serialized checkpoint stream — RNG state, floats, everything —
     must be byte-identical with tracing and metrics enabled: the
     observability layer rides along without touching the search. *)
  let _, v, ctx = setup "lenet5" Config.chip_s in
  let capture () =
    let texts = ref [] in
    ignore
      (Ga.optimize ~params
         ~on_checkpoint:(fun ck -> texts := Plan_text.checkpoint_to_string ck :: !texts)
         ctx v ~batch:4);
    List.rev !texts
  in
  let untraced = capture () in
  let open Compass_util in
  Trace.reset ();
  Metrics.reset ();
  Trace.enable ();
  Metrics.enable ();
  let traced =
    Fun.protect
      ~finally:(fun () ->
        Trace.disable ();
        Metrics.disable ();
        Trace.reset ();
        Metrics.reset ())
      capture
  in
  Alcotest.(check (list string)) "byte-identical checkpoint stream" untraced traced

let test_resume_jobs_agnostic () =
  (* Resuming with a different worker count must not change the result. *)
  let _, v, ctx = setup "lenet5" Config.chip_s in
  let captured = ref None in
  let full =
    Ga.optimize ~params
      ~on_checkpoint:(fun ck -> if ck.Ga.ck_generation = 2 then captured := Some ck)
      ctx v ~batch:4
  in
  match !captured with
  | None -> Alcotest.fail "no generation-2 checkpoint"
  | Some ck ->
    let resumed =
      Ga.optimize ~params:{ params with Ga.jobs = 2 } ~resume:ck ctx v ~batch:4
    in
    Alcotest.(check bool) "same best group" true
      (Partition.equal full.Ga.best.Ga.group resumed.Ga.best.Ga.group);
    Alcotest.(check (float 0.)) "same fitness" full.Ga.best.Ga.fitness
      resumed.Ga.best.Ga.fitness

let test_roundtrip_fixed_point () =
  (* to_string (of_string s) = s: the parser loses nothing the writer
     emits, floats included. *)
  let _, v, ctx = setup "lenet5" Config.chip_s in
  let captured = ref None in
  ignore (Ga.optimize ~params ~on_checkpoint:(fun ck -> captured := Some ck) ctx v ~batch:4);
  match !captured with
  | None -> Alcotest.fail "no checkpoint"
  | Some ck ->
    let text = Plan_text.checkpoint_to_string ck in
    let reparsed = Plan_text.checkpoint_of_string text in
    Alcotest.(check string) "fixed point" text (Plan_text.checkpoint_to_string reparsed)

let capture_one () =
  let _, v, ctx = setup "lenet5" Config.chip_s in
  let captured = ref None in
  ignore (Ga.optimize ~params ~on_checkpoint:(fun ck -> captured := Some ck) ctx v ~batch:4);
  Option.get !captured

let test_save_is_atomic () =
  let ck = capture_one () in
  let dir = Filename.temp_file "compass" ".ckdir" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "ck.txt" in
  Plan_text.save_checkpoint path ck;
  Alcotest.(check bool) "file exists" true (Sys.file_exists path);
  (* No temporary litter: the tmp file was renamed over the target. *)
  Alcotest.(check (list string)) "only the artifact" [ "ck.txt" ]
    (Array.to_list (Sys.readdir dir));
  let reloaded = Plan_text.load_checkpoint path in
  Alcotest.(check string) "reload matches"
    (Plan_text.checkpoint_to_string ck)
    (Plan_text.checkpoint_to_string reloaded);
  Sys.remove path;
  Unix.rmdir dir

let check_load_error text fragment =
  try
    ignore (Plan_text.checkpoint_of_string text);
    Alcotest.fail ("expected Load_error for " ^ fragment)
  with Plan_text.Load_error msg ->
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    if not (contains msg fragment) then
      Alcotest.failf "diagnostic %S does not mention %S" msg fragment

let test_corrupt_loads () =
  let ck = capture_one () in
  let text = Plan_text.checkpoint_to_string ck in
  check_load_error "" "not a compass-ga-checkpoint";
  check_load_error "plain garbage\n" "not a compass-ga-checkpoint";
  check_load_error "compass-ga-checkpoint 99\n" "unsupported compass-ga-checkpoint version";
  (* Truncation at every line boundary either parses (never silently
     wrong) or produces a located diagnostic. *)
  let lines = String.split_on_char '\n' text in
  let n = List.length lines in
  for keep = 0 to n - 2 do
    let truncated =
      String.concat "\n" (List.filteri (fun i _ -> i < keep) lines) ^ "\n"
    in
    match Plan_text.checkpoint_of_string truncated with
    | _ -> Alcotest.failf "truncation to %d lines parsed" keep
    | exception Plan_text.Load_error _ -> ()
  done;
  (* Field-level corruption is located. *)
  let corrupt_field key bad =
    String.concat "\n"
      (List.map
         (fun l ->
           match String.index_opt l ' ' with
           | Some i when String.sub l 0 i = key -> key ^ " " ^ bad
           | _ -> l)
         lines)
  in
  check_load_error (corrupt_field "rng-state" "xyzzy") "bad rng-state";
  check_load_error (corrupt_field "batch" "many") "bad batch";
  check_load_error (corrupt_field "best-seen" "fast") "bad best-seen";
  check_load_error (corrupt_field "schemes" "merge,warp") "unknown mutation scheme";
  check_load_error (text ^ "surplus line\n") "trailing content"

let test_resume_rejects_wrong_model () =
  (* A checkpoint carries partitions for one validity map; resuming it
     against another model must be refused, not silently mis-searched. *)
  let _, v_lenet, ctx_lenet = setup "lenet5" Config.chip_s in
  let captured = ref None in
  ignore
    (Ga.optimize ~params
       ~on_checkpoint:(fun ck -> captured := Some ck)
       ctx_lenet v_lenet ~batch:4);
  let ck = Option.get !captured in
  let _, v_other, ctx_other = setup "resnet18" Config.chip_s in
  (match Ga.optimize ~params ~resume:ck ctx_other v_other ~batch:4 with
  | _ -> Alcotest.fail "resume against the wrong model succeeded"
  | exception Invalid_argument _ -> ());
  match Ga.optimize ~params ~resume:{ ck with Ga.ck_batch = 8 } ctx_lenet v_lenet ~batch:4 with
  | _ -> Alcotest.fail "resume with a different batch succeeded"
  | exception Invalid_argument _ -> ()

let test_budget_exhausted_flag () =
  (* An instantly expired budget still returns a best-so-far candidate,
     flagged; an unlimited run is not flagged. *)
  let _, v, ctx = setup "lenet5" Config.chip_s in
  let r = Ga.optimize ~params ctx v ~batch:4 in
  Alcotest.(check bool) "unbounded not flagged" false r.Ga.budget_exhausted;
  let now = ref 0. in
  let b = Compass_util.Budget.of_deadline ~now:(fun () -> !now) 0. in
  let r = Ga.optimize ~params ~budget:b ctx v ~batch:4 in
  Alcotest.(check bool) "flagged" true r.Ga.budget_exhausted;
  Alcotest.(check bool) "still returns a plan" true
    (r.Ga.best.Ga.fitness < Float.infinity);
  (* At most one wave beyond expiry at jobs = 1: exactly one candidate. *)
  Alcotest.(check int) "one grace evaluation" 1 r.Ga.evaluations

let test_anytime_prefix_of_full_run () =
  (* A run cut mid-search is a prefix of the unbounded run, not a
     different search: every generation it completed matches the full
     run's record for that generation. *)
  let _, v, ctx = setup "lenet5" Config.chip_s in
  let full = Ga.optimize ~params ctx v ~batch:4 in
  (* Expire the injected clock after a fixed number of reads, landing
     somewhere inside the search; the exact landing spot is irrelevant to
     the prefix property. *)
  let reads = ref 0 in
  let now () =
    incr reads;
    if !reads > 60 then 10. else 0.
  in
  let b = Compass_util.Budget.of_deadline ~now 5. in
  let cut = Ga.optimize ~params ~budget:b ctx v ~batch:4 in
  Alcotest.(check bool) "cut short" true cut.Ga.budget_exhausted;
  Alcotest.(check bool) "fewer generations" true
    (cut.Ga.generations_run <= full.Ga.generations_run);
  Alcotest.(check bool) "cut best is a valid group" true
    (Validity.group_valid v cut.Ga.best.Ga.group);
  (* All but the cut run's final record (whose offspring wave may be
     incomplete) must equal the full run's records verbatim. *)
  let completed =
    (* Oldest-first, without the final (possibly incomplete) record. *)
    match List.rev cut.Ga.history with [] -> [] | _ :: rest -> List.rev rest
  in
  let full_prefix =
    List.filteri (fun i _ -> i < List.length completed) full.Ga.history
  in
  Alcotest.check history_testable "completed generations match" full_prefix completed

let () =
  Alcotest.run "checkpoint"
    [
      ( "resume",
        [
          Alcotest.test_case "bit-identical resume (golden)" `Quick
            test_resume_bit_identical;
          Alcotest.test_case "jobs-agnostic resume" `Quick test_resume_jobs_agnostic;
          Alcotest.test_case "checkpoint stream unchanged by tracing" `Quick
            test_checkpoint_stream_unchanged_by_tracing;
          Alcotest.test_case "rejects wrong model/batch" `Quick
            test_resume_rejects_wrong_model;
        ] );
      ( "format",
        [
          Alcotest.test_case "serialization fixed point" `Quick
            test_roundtrip_fixed_point;
          Alcotest.test_case "atomic save" `Quick test_save_is_atomic;
          Alcotest.test_case "corrupt loads diagnosed" `Quick test_corrupt_loads;
        ] );
      ( "anytime",
        [
          Alcotest.test_case "budget_exhausted flag" `Quick test_budget_exhausted_flag;
          Alcotest.test_case "anytime is a prefix" `Quick test_anytime_prefix_of_full_run;
        ] );
    ]
