(* Tests for the exact DP partitioner: brute-force agreement on small
   nets, dominance over the heuristic schemes, the GA warm start, and the
   bit-identity golden line protecting both (the unseeded GA must not
   notice any of this machinery). *)

open Compass_core
open Compass_arch

let setup name chip =
  let units = Unit_gen.generate (Compass_nn.Models.by_name name) chip in
  let v = Validity.build units in
  (units, v, Dataflow.context units)

(* Every valid partition group, by recursion over the validity map.  Only
   usable on tiny nets (lenet5-S has a handful of groups). *)
let all_valid_groups validity =
  let m = Validity.size validity in
  let rec walk pos =
    if pos = m then [ [] ]
    else
      List.concat_map
        (fun stop ->
          List.map
            (fun rest -> { Partition.start_ = pos; Partition.stop = stop } :: rest)
            (walk stop))
        (List.init (Validity.max_end validity pos - pos) (fun k -> pos + 1 + k))
  in
  List.map Partition.of_spans (walk 0)

let brute_force_min ctx validity ~batch objective =
  List.fold_left
    (fun acc g ->
      min acc (Optimal.objective_value objective (Estimator.evaluate ctx ~batch g)))
    infinity (all_valid_groups validity)

let test_brute_force_agreement () =
  List.iter
    (fun model_name ->
      let _, v, ctx = setup model_name Config.chip_s in
      List.iter
        (fun objective ->
          let name =
            Printf.sprintf "%s %s" model_name (Fitness.objective_to_string objective)
          in
          let bf = brute_force_min ctx v ~batch:8 objective in
          let dp = Optimal.optimize ~objective ctx v ~batch:8 in
          match objective with
          | Fitness.Latency | Fitness.Wear ->
            (* The DP accumulates in the estimator's exact association, so
               the optimum matches brute force bit-for-bit. *)
            Alcotest.(check (float 0.)) name bf dp.Optimal.value;
            Alcotest.(check (float 0.)) (name ^ " bound") bf dp.Optimal.lower_bound;
            Alcotest.(check bool) (name ^ " exact") true dp.Optimal.exact
          | Fitness.Energy ->
            (* Edge costs re-associate the component sums; exact up to
               float rounding. *)
            Alcotest.(check bool) name true
              (Float.abs (dp.Optimal.value -. bf) <= 1e-12 *. bf)
          | Fitness.Edp ->
            (* Not separable: the bound must be below, the incumbent at or
               above, every group's EDP. *)
            Alcotest.(check bool) (name ^ " bound below min") true
              (dp.Optimal.lower_bound <= bf *. (1. +. 1e-12));
            Alcotest.(check bool) (name ^ " incumbent achievable") true
              (dp.Optimal.value >= bf *. (1. -. 1e-12)))
        [ Fitness.Latency; Fitness.Energy; Fitness.Edp; Fitness.Wear ])
    [ "lenet5"; "tiny_mlp"; "tiny_resnet" ]

let test_dp_group_is_valid () =
  List.iter
    (fun (model_name, chip) ->
      let units, v, ctx = setup model_name chip in
      let dp = Optimal.optimize ctx v ~batch:16 in
      Alcotest.(check int) "covers" (Unit_gen.unit_count units)
        (Partition.total_units dp.Optimal.group);
      Alcotest.(check bool) "valid" true (Validity.group_valid v dp.Optimal.group);
      Alcotest.(check (float 0.)) "value is the group's latency"
        dp.Optimal.perf.Estimator.batch_latency_s dp.Optimal.value)
    [ ("resnet18", Config.chip_s); ("squeezenet", Config.chip_s); ("vgg16", Config.chip_m) ]

let test_dp_dominates_heuristics () =
  (* The certified optimum must be at or below every other scheme on the
     true batch latency — GA included. *)
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let dp = Optimal.optimize ctx v ~batch:16 in
  let lat g = (Estimator.evaluate ctx ~batch:16 g).Estimator.batch_latency_s in
  let ga = Ga.optimize ~params:{ Ga.quick_params with Ga.seed = 5 } ctx v ~batch:16 in
  List.iter
    (fun (name, g) ->
      Alcotest.(check bool) (name ^ " >= dp") true (lat g >= dp.Optimal.value))
    [
      ("ga", ga.Ga.best.Ga.group);
      ("greedy", Baselines.greedy v);
      ("layerwise", Baselines.layerwise v);
    ]

let prop_dp_below_random_groups =
  QCheck.Test.make ~name:"dp value <= any random valid group" ~count:60
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 32))
    (fun (seed, batch) ->
      let _, v, ctx = setup "lenet5" Config.chip_s in
      let g = Validity.random_group (Compass_util.Rng.create seed) v in
      List.for_all
        (fun objective ->
          let dp = Optimal.optimize ~objective ctx v ~batch in
          dp.Optimal.lower_bound
          <= Optimal.objective_value objective (Estimator.evaluate ctx ~batch g)
             *. (1. +. 1e-12))
        [ Fitness.Latency; Fitness.Energy; Fitness.Edp; Fitness.Wear ])

let test_dp_deterministic () =
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let a = Optimal.optimize ctx v ~batch:16 in
  let b = Optimal.optimize ctx v ~batch:16 in
  Alcotest.(check bool) "same group" true (Partition.equal a.Optimal.group b.Optimal.group);
  Alcotest.(check (float 0.)) "same value" a.Optimal.value b.Optimal.value

let test_dp_far_fewer_evaluations () =
  (* The headline trade: one group evaluation (plus one span sweep) versus
     the GA's hundreds. *)
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let dp = Optimal.optimize ctx v ~batch:16 in
  let ga = Ga.optimize ~params:{ Ga.quick_params with Ga.seed = 5 } ctx v ~batch:16 in
  Alcotest.(check bool) "10x fewer group evaluations" true
    (10 * dp.Optimal.stats.Optimal.group_evaluations <= ga.Ga.evaluations);
  Alcotest.(check int) "every valid span evaluated once"
    dp.Optimal.stats.Optimal.valid_spans dp.Optimal.stats.Optimal.spans_evaluated

let test_warm_cache_reused () =
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let cache = Estimator.Span_cache.create ~batch:16 () in
  let a = Optimal.optimize ~cache ctx v ~batch:16 in
  let b = Optimal.optimize ~cache ctx v ~batch:16 in
  Alcotest.(check int) "second run all hits" 0 b.Optimal.stats.Optimal.spans_evaluated;
  Alcotest.(check bool) "same group" true (Partition.equal a.Optimal.group b.Optimal.group);
  (* Brand mismatches fail fast rather than mixing entries. *)
  Alcotest.check_raises "batch mismatch"
    (Invalid_argument "Optimal.optimize: cache built for batch 16, called with 8")
    (fun () -> ignore (Optimal.optimize ~cache ctx v ~batch:8))

(* The golden line for {Ga.quick_params with seed = 5} on resnet18-S-16,
   recorded before the DP/warm-start machinery existed.  An empty
   [warm_start] must leave the GA's draw sequence untouched, so this is
   bit-exact. *)
let golden_fitness = 0.0093858130185185181
let golden_cuts = [ 0; 10; 15; 32; 48; 64; 80; 91 ]
let golden_evaluations = 204
let golden_generations = 10
let golden_cache_spans = 422

let test_golden_ga_unchanged () =
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let r = Ga.optimize ~params:{ Ga.quick_params with Ga.seed = 5 } ctx v ~batch:16 in
  Alcotest.(check (float 0.)) "fitness" golden_fitness r.Ga.best.Ga.fitness;
  Alcotest.(check (list int)) "cuts" golden_cuts
    (Array.to_list (Partition.cuts r.Ga.best.Ga.group));
  Alcotest.(check int) "evaluations" golden_evaluations r.Ga.evaluations;
  Alcotest.(check int) "generations" golden_generations r.Ga.generations_run;
  Alcotest.(check int) "cache spans" golden_cache_spans r.Ga.cache_spans

let test_golden_ga_traced_unchanged () =
  (* Observability is pure observation: with tracing and metrics enabled
     the GA must walk the bit-identical trajectory as the untraced golden
     run — same fitness, cuts, evaluation and generation counts. *)
  let open Compass_util in
  Trace.reset ();
  Metrics.reset ();
  Trace.enable ();
  Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Metrics.disable ();
      Trace.reset ();
      Metrics.reset ())
    (fun () ->
      let _, v, ctx = setup "resnet18" Config.chip_s in
      let r = Ga.optimize ~params:{ Ga.quick_params with Ga.seed = 5 } ctx v ~batch:16 in
      Alcotest.(check (float 0.)) "fitness" golden_fitness r.Ga.best.Ga.fitness;
      Alcotest.(check (list int)) "cuts" golden_cuts
        (Array.to_list (Partition.cuts r.Ga.best.Ga.group));
      Alcotest.(check int) "evaluations" golden_evaluations r.Ga.evaluations;
      Alcotest.(check int) "generations" golden_generations r.Ga.generations_run;
      Alcotest.(check int) "cache spans" golden_cache_spans r.Ga.cache_spans;
      (* The instrumentation itself observed the run it rode along with. *)
      Alcotest.(check (option int)) "fitness evaluations counted"
        (Some golden_evaluations)
        (Metrics.find_int "ga.fitness_evaluations");
      Alcotest.(check (option int)) "generations counted" (Some golden_generations)
        (Metrics.find_int "ga.generations");
      Alcotest.(check bool) "generation spans recorded" true
        (List.exists
           (fun s -> s.Trace.span_name = "ga.generation" && s.Trace.count = golden_generations)
           (Trace.summarize ())))

let test_warm_start_seeds_population () =
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let dp = Optimal.optimize ctx v ~batch:16 in
  let seed_fitness =
    Fitness.group_fitness Fitness.Latency
      (Estimator.evaluate ctx ~batch:16 dp.Optimal.group)
  in
  let warm =
    Ga.optimize
      ~params:{ Ga.quick_params with Ga.seed = 5; Ga.warm_start = [ dp.Optimal.group ] }
      ctx v ~batch:16
  in
  (* Selection is elitist, so the best fitness can never exceed the
     injected seed's. *)
  Alcotest.(check bool) "never worse than the seed" true
    (warm.Ga.best.Ga.fitness <= seed_fitness);
  Alcotest.(check bool) "result valid" true
    (Validity.group_valid v warm.Ga.best.Ga.group);
  (* Invalid seeds are dropped, not propagated. *)
  let bogus = Partition.singleton (Validity.size v) in
  if not (Validity.group_valid v bogus) then begin
    let r =
      Ga.optimize
        ~params:{ Ga.quick_params with Ga.seed = 5; Ga.warm_start = [ bogus ] }
        ctx v ~batch:16
    in
    Alcotest.(check (float 0.)) "dropped seed = unseeded run" golden_fitness
      r.Ga.best.Ga.fitness
  end

let test_compiler_scheme () =
  let model = Compass_nn.Models.by_name "resnet18" in
  let chip = Config.chip_s in
  let plan = Compiler.compile ~model ~chip ~batch:16 Compiler.Optimal in
  Alcotest.(check bool) "dp result present" true (plan.Compiler.dp <> None);
  Alcotest.(check bool) "ga absent" true (plan.Compiler.ga = None);
  Alcotest.(check string) "name" "dp" (Compiler.scheme_to_string plan.Compiler.scheme);
  Alcotest.(check bool) "round trip" true
    (Compiler.scheme_of_string "optimal" = Compiler.Optimal
    && Compiler.scheme_of_string "DP" = Compiler.Optimal);
  let dp = Option.get plan.Compiler.dp in
  Alcotest.(check (float 0.)) "plan perf is the dp group's"
    dp.Optimal.perf.Estimator.batch_latency_s plan.Compiler.perf.Estimator.batch_latency_s

let test_compile_prepared_bit_identical () =
  (* The amortized front end and the shared span cache must not change any
     plan: same cuts, same floats, with and without them. *)
  let model = Compass_nn.Models.by_name "resnet18" in
  let chip = Config.chip_s in
  let ga_params = { Ga.quick_params with Ga.seed = 5 } in
  let prepared = Compiler.prepare ~model ~chip () in
  let cache = Estimator.Span_cache.create ~batch:16 () in
  List.iter
    (fun scheme ->
      let direct = Compiler.compile ~ga_params ~model ~chip ~batch:16 scheme in
      let shared =
        Compiler.compile_prepared ~ga_params ~cache ~batch:16 prepared scheme
      in
      let name = Compiler.scheme_to_string scheme in
      Alcotest.(check bool) (name ^ " same group") true
        (Partition.equal direct.Compiler.group shared.Compiler.group);
      Alcotest.(check (float 0.)) (name ^ " same latency")
        direct.Compiler.perf.Estimator.batch_latency_s
        shared.Compiler.perf.Estimator.batch_latency_s;
      Alcotest.(check (float 0.)) (name ^ " same energy")
        direct.Compiler.perf.Estimator.energy_j shared.Compiler.perf.Estimator.energy_j)
    [ Compiler.Optimal; Compiler.Compass; Compiler.Greedy; Compiler.Layerwise ]

let test_warm_start_compile () =
  let model = Compass_nn.Models.by_name "resnet18" in
  let plan =
    Compiler.compile
      ~ga_params:{ Ga.quick_params with Ga.seed = 5 }
      ~warm_start:true ~model ~chip:Config.chip_s ~batch:16 Compiler.Compass
  in
  let dp = Option.get plan.Compiler.dp in
  (* The GA may keep the DP seed or improve its own proxy around it, but
     the compiled plan can never be slower than simply taking the seed's
     proxy fitness. *)
  let ga = Option.get plan.Compiler.ga in
  Alcotest.(check bool) "ga <= seed proxy" true
    (ga.Ga.best.Ga.fitness
    <= Fitness.group_fitness Fitness.Latency dp.Optimal.perf)

let test_optimality_gap_report () =
  let model = Compass_nn.Models.by_name "resnet18" in
  let dp, rows =
    Report.optimality_gap
      ~ga_params:{ Ga.quick_params with Ga.seed = 5 }
      ~model ~chip:Config.chip_s ~batch:16 ()
  in
  Alcotest.(check (list string)) "row order"
    [ "dp"; "compass"; "greedy"; "layerwise" ]
    (List.map (fun r -> r.Report.gap_scheme) rows);
  Alcotest.(check bool) "dp gap zero" true
    ((List.hd rows).Report.gap <= 1e-12);
  List.iter
    (fun r -> Alcotest.(check bool) (r.Report.gap_scheme ^ " >= bound") true (r.Report.gap >= -.1e-12))
    rows;
  Alcotest.(check bool) "latency dp exact" true dp.Optimal.exact

let () =
  Alcotest.run "optimal"
    [
      ( "dp",
        [
          Alcotest.test_case "brute force agreement" `Quick test_brute_force_agreement;
          Alcotest.test_case "group valid" `Quick test_dp_group_is_valid;
          Alcotest.test_case "dominates heuristics" `Quick test_dp_dominates_heuristics;
          Alcotest.test_case "deterministic" `Quick test_dp_deterministic;
          Alcotest.test_case "evaluation counts" `Quick test_dp_far_fewer_evaluations;
          Alcotest.test_case "warm cache" `Quick test_warm_cache_reused;
          QCheck_alcotest.to_alcotest prop_dp_below_random_groups;
        ] );
      ( "warm-start",
        [
          Alcotest.test_case "golden GA line unchanged" `Quick test_golden_ga_unchanged;
          Alcotest.test_case "golden GA line unchanged under tracing" `Quick
            test_golden_ga_traced_unchanged;
          Alcotest.test_case "seeded population" `Quick test_warm_start_seeds_population;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "dp scheme" `Quick test_compiler_scheme;
          Alcotest.test_case "prepared bit-identical" `Quick
            test_compile_prepared_bit_identical;
          Alcotest.test_case "warm-start compile" `Quick test_warm_start_compile;
          Alcotest.test_case "optimality gap report" `Quick test_optimality_gap_report;
        ] );
    ]
