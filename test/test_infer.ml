(* Differential tests for the im2col/GEMM inference engine: the fast
   kernels must be bit-identical to the naive reference (the oracle),
   and batched execution must equal per-sample execution for any pool
   worker count. *)

open Compass_nn

let rng_floats rng n = Array.init n (fun _ -> Compass_util.Rng.float rng 2. -. 1.)

let bit_identical what a b =
  Alcotest.(check bool) what true (Tensor.equal ~eps:0. a b)

(* A random grouped/strided/padded, possibly asymmetric convolution
   case: (conv record, input tensor, weights). *)
let random_conv_case rng =
  let groups = 1 + Compass_util.Rng.int rng 4 in
  let group_in = 1 + Compass_util.Rng.int rng 4 in
  let group_out = 1 + Compass_util.Rng.int rng 4 in
  let in_channels = groups * group_in in
  let out_channels = groups * group_out in
  let kernel_h = 1 + Compass_util.Rng.int rng 4 in
  let kernel_w = 1 + Compass_util.Rng.int rng 4 in
  let stride = 1 + Compass_util.Rng.int rng 3 in
  let padding = Compass_util.Rng.int rng 4 in
  let height = kernel_h + Compass_util.Rng.int rng 8 in
  let width = kernel_w + Compass_util.Rng.int rng 8 in
  let conv =
    match
      Layer.conv_rect ~stride ~padding ~groups ~in_channels ~out_channels ~kernel_h
        ~kernel_w ()
    with
    | Layer.Conv c -> c
    | _ -> assert false
  in
  let input =
    Tensor.of_array
      (Shape.feature_map ~channels:in_channels ~height ~width)
      (rng_floats rng (in_channels * height * width))
  in
  let weights = rng_floats rng (out_channels * group_in * kernel_h * kernel_w) in
  (conv, input, weights)

let prop_conv_gemm_bit_identical =
  QCheck.Test.make ~name:"conv2d_gemm bit-identical to conv2d" ~count:120
    QCheck.small_int (fun seed ->
      let rng = Compass_util.Rng.create seed in
      let conv, input, weights = random_conv_case rng in
      let reference = Tensor.conv2d conv ~weights input in
      let fast = Tensor.conv2d_gemm conv ~weights input in
      Tensor.equal ~eps:0. reference fast)

let prop_conv_gemm_scratch_reuse =
  (* A shared scratch across differently-sized convolutions never leaks
     state between calls. *)
  QCheck.Test.make ~name:"conv2d_gemm scratch reuse is pure" ~count:40
    QCheck.small_int (fun seed ->
      let rng = Compass_util.Rng.create (seed + 5000) in
      let scratch = Im2col.create_scratch () in
      List.for_all
        (fun () ->
          let conv, input, weights = random_conv_case rng in
          let reference = Tensor.conv2d conv ~weights input in
          let fast = Tensor.conv2d_gemm ~scratch conv ~weights input in
          Tensor.equal ~eps:0. reference fast)
        [ (); (); () ])

let prop_linear_gemm_bit_identical =
  QCheck.Test.make ~name:"linear_gemm bit-identical to linear" ~count:100
    QCheck.small_int (fun seed ->
      let rng = Compass_util.Rng.create seed in
      let in_features = 1 + Compass_util.Rng.int rng 64 in
      let out_features = 1 + Compass_util.Rng.int rng 64 in
      let input =
        Tensor.of_array (Shape.vector in_features) (rng_floats rng in_features)
      in
      let weights = rng_floats rng (in_features * out_features) in
      let reference = Tensor.linear ~in_features ~out_features ~weights input in
      let fast = Tensor.linear_gemm ~in_features ~out_features ~weights input in
      Tensor.equal ~eps:0. reference fast)

let test_asymmetric_kernels () =
  (* 1x5 and 5x1 kernels (and friends) exercise the packer's kernel-row
     runs in both orientations. *)
  List.iter
    (fun (kernel_h, kernel_w, stride, padding) ->
      let conv =
        match
          Layer.conv_rect ~stride ~padding ~groups:1 ~in_channels:3 ~out_channels:4
            ~kernel_h ~kernel_w ()
        with
        | Layer.Conv c -> c
        | _ -> assert false
      in
      let rng = Compass_util.Rng.create (kernel_h + (10 * kernel_w)) in
      let input =
        Tensor.of_array
          (Shape.feature_map ~channels:3 ~height:9 ~width:9)
          (rng_floats rng (3 * 9 * 9))
      in
      let weights = rng_floats rng (4 * 3 * kernel_h * kernel_w) in
      bit_identical
        (Printf.sprintf "%dx%d s%d p%d" kernel_h kernel_w stride padding)
        (Tensor.conv2d conv ~weights input)
        (Tensor.conv2d_gemm conv ~weights input))
    [ (1, 5, 1, 2); (5, 1, 1, 2); (3, 1, 2, 0); (1, 3, 2, 3); (2, 4, 3, 1) ]

let test_engines_agree_on_models () =
  (* Whole-model runs: every node's tensor, not just the exit. *)
  List.iter
    (fun name ->
      let g = Models.by_name name in
      let w = Executor.random_weights g in
      let x = Executor.random_input g in
      let naive = Executor.run ~engine:Executor.Naive g w x in
      let gemm = Executor.run ~engine:Executor.Gemm g w x in
      List.iter
        (fun node ->
          bit_identical (Printf.sprintf "%s node %d" name node) (naive node) (gemm node))
        (Graph.nodes g))
    [ "lenet5"; "tiny_resnet"; "tiny_mlp" ]

let batch_inputs g n = Array.init n (fun i -> Executor.random_input ~seed:(100 + i) g)

let test_run_batch_equals_per_sample () =
  (* Batched execution must match N independent single-sample runs
     bit-for-bit, for batch sizes 1-8. *)
  let g = Models.lenet5 () in
  let w = Executor.random_weights g in
  List.iter
    (fun n ->
      let inputs = batch_inputs g n in
      let batched = Executor.output_batch g w inputs in
      Array.iteri
        (fun i x ->
          bit_identical
            (Printf.sprintf "batch %d sample %d" n i)
            (Executor.output g w x) batched.(i))
        inputs)
    [ 1; 2; 3; 4; 8 ]

let test_run_batch_any_worker_count () =
  (* Fanning the batch across a pool never changes a single bit,
     whatever the worker count. *)
  let g = Models.tiny_resnet () in
  let w = Executor.random_weights g in
  let inputs = batch_inputs g 6 in
  let sequential = Executor.output_batch g w inputs in
  List.iter
    (fun jobs ->
      Compass_util.Pool.with_pool ~jobs (fun pool ->
          let pooled = Executor.output_batch ~pool g w inputs in
          Array.iteri
            (fun i t ->
              bit_identical (Printf.sprintf "jobs %d sample %d" jobs i) sequential.(i) t)
            pooled))
    [ 1; 2; 3; 5 ]

let test_run_batch_all_nodes () =
  (* The batched lookup exposes every node, matching single-sample runs. *)
  let g = Models.tiny_mlp () in
  let w = Executor.random_weights g in
  let inputs = batch_inputs g 3 in
  let lookup = Executor.run_batch g w inputs in
  List.iter
    (fun node ->
      let batched = lookup node in
      Array.iteri
        (fun i x ->
          bit_identical
            (Printf.sprintf "node %d sample %d" node i)
            (Executor.run g w x node)
            batched.(i))
        inputs)
    (Graph.nodes g)

let test_run_batch_rejects_empty () =
  let g = Models.tiny_mlp () in
  let w = Executor.random_weights g in
  Alcotest.(check bool) "empty batch rejected" true
    (try
       ignore (Executor.output_batch g w [||]);
       false
     with Invalid_argument _ -> true)

let expect_diagnostic f =
  match f () with
  | _ -> None
  | exception Invalid_argument msg -> Some msg

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_located_weight_diagnostic () =
  (* Wrong-size weights name the node, layer kind and geometry, and both
     element counts in one message. *)
  let g = Models.lenet5 () in
  let w = Executor.random_weights g in
  let x = Executor.random_input g in
  let conv_node =
    List.find
      (fun n ->
        match (Graph.layer g n).Layer.op with Layer.Conv _ -> true | _ -> false)
      (Graph.nodes g)
  in
  let expected = Layer.weight_params (Graph.layer g conv_node).Layer.op in
  Hashtbl.replace w conv_node [| 1.; 2.; 3. |];
  List.iter
    (fun engine ->
      match expect_diagnostic (fun () -> Executor.output ~engine g w x) with
      | None -> Alcotest.fail "undersized weights accepted"
      | Some msg ->
        let check_sub part =
          Alcotest.(check bool)
            (Printf.sprintf "%s diagnostic mentions %S" (Executor.engine_to_string engine)
               part)
            true (contains ~sub:part msg)
        in
        check_sub (Printf.sprintf "node %d" conv_node);
        check_sub "conv";
        check_sub (Printf.sprintf "expected %d weight elements" expected);
        check_sub "got 3")
    [ Executor.Naive; Executor.Gemm ]

let test_linear_weight_diagnostic () =
  let g = Models.tiny_mlp () in
  let w = Executor.random_weights g in
  let x = Executor.random_input g in
  let lin_node =
    List.find
      (fun n ->
        match (Graph.layer g n).Layer.op with Layer.Linear _ -> true | _ -> false)
      (Graph.nodes g)
  in
  Hashtbl.replace w lin_node (Array.make 7 0.) ;
  match expect_diagnostic (fun () -> Executor.output g w x) with
  | None -> Alcotest.fail "undersized weights accepted"
  | Some msg ->
    Alcotest.(check bool) "mentions node" true
      (contains ~sub:(Printf.sprintf "node %d" lin_node) msg);
    Alcotest.(check bool) "mentions linear" true (contains ~sub:"linear" msg);
    Alcotest.(check bool) "mentions got" true (contains ~sub:"got 7" msg)

let test_depthwise_and_grouped_gemm () =
  (* Depthwise (groups = channels) and grouped strided convs through the
     graph executor, both engines. *)
  let g = Graph.create ~name:"dw" () in
  let input =
    Graph.add g "in" (Layer.Input (Shape.feature_map ~channels:6 ~height:11 ~width:7))
  in
  let dw = Graph.add g ~inputs:[ input ] "dw" (Layer.depthwise ~stride:2 ~channels:6 3) in
  let grouped =
    Graph.add g ~inputs:[ dw ] "grp"
      (Layer.conv ~stride:2 ~groups:3 ~in_channels:6 ~out_channels:9 3)
  in
  let gap = Graph.add g ~inputs:[ grouped ] "gap" Layer.Global_avg_pool in
  let _fc = Graph.add g ~inputs:[ gap ] "fc" (Layer.linear ~in_features:9 ~out_features:4) in
  (match Graph.validate g with Ok () -> () | Error e -> failwith e);
  let w = Executor.random_weights g in
  let x = Executor.random_input g in
  bit_identical "depthwise+grouped model"
    (Executor.output ~engine:Executor.Naive g w x)
    (Executor.output ~engine:Executor.Gemm g w x)

let test_quant_dequantize_roundtrip () =
  let data = Array.init 64 (fun i -> sin (float_of_int i /. 3.)) in
  let q, spec = Quant.quantize ~bits:4 data in
  let codes = Quant.codes spec q in
  let back = Quant.dequantize spec codes in
  Array.iteri
    (fun i x -> Alcotest.(check (float 1e-12)) (Printf.sprintf "code %d" i) x back.(i))
    q

let () =
  Alcotest.run "infer"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_conv_gemm_bit_identical;
          QCheck_alcotest.to_alcotest prop_conv_gemm_scratch_reuse;
          QCheck_alcotest.to_alcotest prop_linear_gemm_bit_identical;
          Alcotest.test_case "asymmetric kernels" `Quick test_asymmetric_kernels;
          Alcotest.test_case "engines agree on models" `Quick
            test_engines_agree_on_models;
          Alcotest.test_case "depthwise and grouped" `Quick
            test_depthwise_and_grouped_gemm;
        ] );
      ( "batch",
        [
          Alcotest.test_case "equals per-sample" `Quick test_run_batch_equals_per_sample;
          Alcotest.test_case "any worker count" `Quick test_run_batch_any_worker_count;
          Alcotest.test_case "all nodes exposed" `Quick test_run_batch_all_nodes;
          Alcotest.test_case "empty batch rejected" `Quick test_run_batch_rejects_empty;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "conv weight diagnostic" `Quick
            test_located_weight_diagnostic;
          Alcotest.test_case "linear weight diagnostic" `Quick
            test_linear_weight_diagnostic;
        ] );
      ( "quant",
        [
          Alcotest.test_case "dequantize roundtrip" `Quick test_quant_dequantize_roundtrip;
        ] );
    ]
