#!/usr/bin/env bash
# CLI smoke test: subcommand behaviour and the exit-code policy
#   0 success / 1 verify violations / 2 user error / 3 internal error.
set -u

CLI="$1"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
fails=0

expect_exit() {
  local want="$1" label="$2"
  shift 2
  "$@" >"$TMP/out" 2>"$TMP/err"
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $label: expected exit $want, got $got" >&2
    sed 's/^/  stderr: /' "$TMP/err" >&2
    fails=$((fails + 1))
  fi
}

expect_stderr_line_count() {
  local label="$1"
  local lines
  lines=$(wc -l <"$TMP/err")
  if [ "$lines" -ne 1 ]; then
    echo "FAIL: $label: expected a one-line stderr diagnostic, got $lines lines" >&2
    fails=$((fails + 1))
  fi
}

# --- success paths ---
expect_exit 0 "info" "$CLI" info
expect_exit 0 "compile quick" "$CLI" compile -m lenet5 -c S -b 4 --quick \
  --save "$TMP/good.plan"
expect_exit 0 "verify clean plan" "$CLI" verify "$TMP/good.plan"
grep -q "satisfies all verifier invariants" "$TMP/out" || {
  echo "FAIL: verify did not report a clean plan" >&2
  fails=$((fails + 1))
}

# --- deadline smoke: a 1s budget still yields a valid best-so-far plan ---
expect_exit 0 "deadline smoke" "$CLI" compile -m resnet18 -c S -b 4 \
  --deadline 1 --verify

# --- checkpoint / resume round trip ---
expect_exit 0 "checkpoint write" "$CLI" compile -m lenet5 -c S -b 4 --quick \
  --checkpoint "$TMP/ck.txt"
[ -f "$TMP/ck.txt" ] || { echo "FAIL: no checkpoint written" >&2; fails=$((fails + 1)); }
expect_exit 0 "resume" "$CLI" compile -m lenet5 -c S -b 4 --quick \
  --resume "$TMP/ck.txt"

# --- exit 1: verify finds violations ---
# Corrupt the archived cuts so the plan no longer covers the model: the
# file still parses if we keep it structurally valid, so instead verify a
# plan whose stored batch disagrees -- simplest true-violation fixture is
# produced by verifying a plan file compiled for different content.  A
# structurally-broken file is exit 2; a *verifiably wrong* plan needs
# record surgery, which the unit tests cover.  Here we check the exit-1
# wiring with a hand-made minimal violation: none is constructible from
# the CLI alone, so this section only asserts the 0/2 split plus exit 3.

# --- exit 2: user errors, one-line diagnostics ---
expect_exit 2 "unknown model" "$CLI" compile -m nosuchnet --quick
expect_stderr_line_count "unknown model"
expect_exit 2 "unknown chip" "$CLI" compile -c Z --quick
expect_stderr_line_count "unknown chip"
expect_exit 2 "bad faults spec" "$CLI" compile -m lenet5 --quick --faults "dead:banana"
expect_stderr_line_count "bad faults spec"
expect_exit 2 "bad transient spec" "$CLI" compile -m lenet5 --quick --faults "drift:2.0"
expect_stderr_line_count "bad transient spec"
expect_exit 2 "malformed fault event" "$CLI" compile -m lenet5 --quick \
  --faults "dead:1" --fault-at=-1
expect_stderr_line_count "malformed fault event"
grep -q "fault event #0 has negative time" "$TMP/err" || {
  echo "FAIL: malformed fault event not located" >&2
  fails=$((fails + 1))
}
expect_exit 2 "fault-at without faults" "$CLI" compile -m lenet5 --quick --fault-at=1
expect_stderr_line_count "fault-at without faults"
expect_exit 2 "negative deadline" "$CLI" compile -m lenet5 --quick --deadline=-4
expect_stderr_line_count "negative deadline"
echo "garbage" >"$TMP/bad.plan"
expect_exit 2 "corrupt plan verify" "$CLI" verify "$TMP/bad.plan"
expect_exit 2 "corrupt plan load" "$CLI" plan "$TMP/bad.plan"
echo "compass-plan 9" >"$TMP/v9.plan"
expect_exit 2 "version mismatch" "$CLI" verify "$TMP/v9.plan"
grep -q "unsupported compass-plan version" "$TMP/err" || {
  echo "FAIL: version mismatch not diagnosed" >&2
  fails=$((fails + 1))
}
echo "garbage" >"$TMP/bad.ck"
expect_exit 2 "corrupt checkpoint resume" "$CLI" compile -m lenet5 --quick \
  --resume "$TMP/bad.ck"

# --- observability: --trace / --metrics ---
expect_exit 0 "compile with trace+metrics" "$CLI" compile -m lenet5 -c S -b 4 --quick \
  --simulate --trace "$TMP/trace.json" --metrics
[ -f "$TMP/trace.json" ] || { echo "FAIL: no trace written" >&2; fails=$((fails + 1)); }
grep -q '"traceEvents"' "$TMP/trace.json" || {
  echo "FAIL: trace file lacks the traceEvents wrapper" >&2
  fails=$((fails + 1))
}
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$TMP/trace.json" >/dev/null || {
    echo "FAIL: trace file is not valid JSON" >&2
    fails=$((fails + 1))
  }
fi
grep -q "ga.generations" "$TMP/out" || {
  echo "FAIL: --metrics did not print the metrics table" >&2
  fails=$((fails + 1))
}
grep -q "span summary:" "$TMP/out" || {
  echo "FAIL: --metrics with tracing did not print the span summary" >&2
  fails=$((fails + 1))
}
expect_exit 0 "gap with metrics" "$CLI" gap -m lenet5 -c S -b 4 --quick --metrics
grep -q "dp.valid_spans" "$TMP/out" || {
  echo "FAIL: gap --metrics did not print dp counters" >&2
  fails=$((fails + 1))
}
expect_exit 0 "verify with trace" "$CLI" verify --trace "$TMP/vtrace.json" "$TMP/good.plan"
[ -f "$TMP/vtrace.json" ] || { echo "FAIL: verify wrote no trace" >&2; fails=$((fails + 1)); }

# --- self-healing recovery smoke: a seeded persistent fault is detected,
#     remapped to spare capacity, and the output matches the fault-free run ---
expect_exit 0 "recovery smoke" "$CLI" compile -m lenet5 -c S -b 4 --quick \
  --faults "flip:1" --fault-seed 42 --recover --metrics
grep -q "recovered output is bit-identical to the fault-free reference" "$TMP/out" || {
  echo "FAIL: recovery smoke did not report a bit-identical recovered output" >&2
  fails=$((fails + 1))
}
if ! grep "recovery.remaps" "$TMP/out" | grep -q "[1-9]"; then
  echo "FAIL: recovery smoke reported zero recovery.remaps in --metrics" >&2
  fails=$((fails + 1))
fi

# --- fail-stop drill: dead core injected mid-simulation, plan repaired ---
expect_exit 0 "fail-stop drill" "$CLI" compile -m lenet5 -c S -b 4 --quick \
  --faults "dead:1" --fault-at 0.0001
grep -q "recovery latency" "$TMP/out" || {
  echo "FAIL: fail-stop drill printed no recovery latency" >&2
  fails=$((fails + 1))
}

# --- exit 2: unwritable output paths are located, actionable, pre-checked ---
expect_exit 2 "unwritable --trace" "$CLI" compile -m lenet5 --quick \
  --trace /nonexistent/trace.json
expect_stderr_line_count "unwritable --trace"
grep -q -- "--trace /nonexistent/trace.json: directory /nonexistent does not exist" \
  "$TMP/err" || {
  echo "FAIL: --trace diagnostic not located" >&2
  fails=$((fails + 1))
}
expect_exit 2 "unwritable --checkpoint" "$CLI" compile -m lenet5 --quick \
  --checkpoint /nonexistent/ck.txt
expect_stderr_line_count "unwritable --checkpoint"
grep -q -- "--checkpoint /nonexistent/ck.txt: directory /nonexistent does not exist" \
  "$TMP/err" || {
  echo "FAIL: --checkpoint diagnostic not located" >&2
  fails=$((fails + 1))
}
expect_exit 2 "--trace to a directory" "$CLI" compile -m lenet5 --quick --trace "$TMP"
expect_stderr_line_count "--trace to a directory"

# --- chaos: deterministic failpoints, supervised retries, salvage ---
# An injected mid-write failure is a located exit-2 user error and must
# leave neither a partial plan nor temp-file litter behind.
expect_exit 2 "injected save failure" "$CLI" compile -m lenet5 -c S -b 4 --quick \
  --failpoints "artifact.write.mid=raise@once" --save "$TMP/chaos.plan"
expect_stderr_line_count "injected save failure"
grep -q "artifact.write.mid" "$TMP/err" || {
  echo "FAIL: injected save failure diagnostic does not name the site" >&2
  fails=$((fails + 1))
}
[ ! -e "$TMP/chaos.plan" ] || {
  echo "FAIL: injected save failure left a partial plan behind" >&2
  fails=$((fails + 1))
}
if ls "$TMP"/chaos.plan.tmp.* >/dev/null 2>&1; then
  echo "FAIL: injected save failure left temp-file litter" >&2
  fails=$((fails + 1))
fi

# A malformed --failpoints spec is itself a located exit-2 user error.
expect_exit 2 "bad failpoints spec" "$CLI" compile -m lenet5 --quick \
  --failpoints "artifact.write.mid=explode"
expect_stderr_line_count "bad failpoints spec"
grep -q "failpoint spec" "$TMP/err" || {
  echo "FAIL: bad failpoints spec not located" >&2
  fails=$((fails + 1))
}

# A torn checkpoint (crash mid-write) salvages: resume succeeds and says so.
expect_exit 0 "checkpoint for tearing" "$CLI" compile -m lenet5 -c S -b 4 --quick \
  --checkpoint "$TMP/tear.ck"
size=$(wc -c <"$TMP/tear.ck")
head -c $((size - 7)) "$TMP/tear.ck" >"$TMP/torn.ck"
expect_exit 0 "salvaged resume" "$CLI" compile -m lenet5 -c S -b 4 --quick \
  --resume "$TMP/torn.ck"
grep -q "salvaged torn checkpoint" "$TMP/out" || {
  echo "FAIL: salvaged resume printed no salvage notice" >&2
  fails=$((fails + 1))
}

# An unsupervised injected worker crash is a located exit-2 diagnostic...
expect_exit 2 "unsupervised pool crash" "$CLI" compile -m lenet5 -c S -b 4 --quick \
  --failpoints "pool.task=raise@nth:3"
expect_stderr_line_count "unsupervised pool crash"
grep -q "task 2 failed after 1 attempt(s)" "$TMP/err" || {
  echo "FAIL: unsupervised pool crash not located to the task" >&2
  fails=$((fails + 1))
}
# ...and --task-retries turns the same schedule into a clean recovery.
expect_exit 0 "supervised pool recovery" "$CLI" compile -m lenet5 -c S -b 4 --quick \
  --failpoints "pool.task=raise@nth:3" --task-retries 2

# --- serving runtime: stdio exchange, envelope statuses, chaos, drain ---
# One pipelined stdio session: a ping, a quick compile, a malformed
# request, and a compile whose zero deadline has always already expired
# by the time it is dequeued.  EOF drains; every request is answered.
{
  printf 'request ping-1 ping\nend\n'
  printf 'request c-1 compile\nmodel lenet5\nchip S\nbatch 4\nseed 3\nend\n'
  printf 'request bad-1 frobnicate\nend\n'
  printf 'request t-1 compile\nmodel lenet5\nchip S\nbatch 4\ndeadline 0\nend\n'
} | "$CLI" serve >"$TMP/serve.out" 2>"$TMP/serve.err"
got=$?
if [ "$got" -ne 0 ]; then
  echo "FAIL: serve stdio session: expected exit 0, got $got" >&2
  sed 's/^/  stderr: /' "$TMP/serve.err" >&2
  fails=$((fails + 1))
fi
for want in "response ping-1 ok" "response c-1 ok" "response bad-1 error" \
  "response t-1 timeout"; do
  grep -q "^$want\$" "$TMP/serve.out" || {
    echo "FAIL: serve stdio session missing \"$want\"" >&2
    fails=$((fails + 1))
  }
done
if [ "$(grep -c '^response ' "$TMP/serve.out")" -ne 4 ]; then
  echo "FAIL: serve stdio session did not answer every request exactly once" >&2
  fails=$((fails + 1))
fi

# The same compile under a seeded failpoint schedule: the first
# execution attempt raises, the bounded retry absorbs it, and the
# metrics flush proves a retry actually happened.
{
  printf 'request ping-1 ping\nend\n'
  printf 'request c-1 compile\nmodel lenet5\nchip S\nbatch 4\nseed 3\nend\n'
} | "$CLI" serve --failpoints "serve.request=raise@nth:1" --metrics \
  >"$TMP/serve_chaos.out" 2>"$TMP/serve_chaos.err"
got=$?
if [ "$got" -ne 0 ]; then
  echo "FAIL: serve chaos session: expected exit 0, got $got" >&2
  sed 's/^/  stderr: /' "$TMP/serve_chaos.err" >&2
  fails=$((fails + 1))
fi
grep -q "^response c-1 ok\$" "$TMP/serve_chaos.out" || {
  echo "FAIL: serve chaos session: injected transient not retried to ok" >&2
  fails=$((fails + 1))
}
if ! grep "serve.retries" "$TMP/serve_chaos.out" | grep -q "[1-9]"; then
  echo "FAIL: serve chaos session reported zero serve.retries in --metrics" >&2
  fails=$((fails + 1))
fi

# SIGTERM drains: the in-flight session is answered, the daemon exits 0.
mkfifo "$TMP/serve.fifo"
"$CLI" serve <"$TMP/serve.fifo" >"$TMP/drain.out" 2>"$TMP/drain.err" &
serve_pid=$!
exec 9>"$TMP/serve.fifo"
printf 'request d-1 ping\nend\n' >&9
answered=0
for _ in $(seq 1 100); do
  if grep -q "^response d-1 ok\$" "$TMP/drain.out" 2>/dev/null; then
    answered=1
    break
  fi
  sleep 0.05
done
if [ "$answered" -ne 1 ]; then
  echo "FAIL: serve drain: no response before SIGTERM" >&2
  fails=$((fails + 1))
fi
kill -TERM "$serve_pid"
exec 9>&-
wait "$serve_pid"
got=$?
if [ "$got" -ne 0 ]; then
  echo "FAIL: serve SIGTERM drain: expected exit 0, got $got" >&2
  sed 's/^/  stderr: /' "$TMP/drain.err" >&2
  fails=$((fails + 1))
fi
grep -q "drained" "$TMP/drain.err" || {
  echo "FAIL: serve drain did not report the drained response count" >&2
  fails=$((fails + 1))
}

# The self-check drill exercises the whole chaos stack end to end.
expect_exit 0 "doctor" "$CLI" doctor
grep -q "doctor: all .* checks passed" "$TMP/out" || {
  echo "FAIL: doctor did not report all checks passed" >&2
  fails=$((fails + 1))
}

# --- exit 3: internal invariant failure carries a bug-report hint ---
COMPASS_INTERNAL_FAULT=1 "$CLI" compile -m lenet5 --quick >"$TMP/out" 2>"$TMP/err"
got=$?
if [ "$got" -ne 3 ]; then
  echo "FAIL: internal fault: expected exit 3, got $got" >&2
  fails=$((fails + 1))
fi
grep -q "bug in compass" "$TMP/err" || {
  echo "FAIL: internal fault diagnostic lacks the bug-report hint" >&2
  fails=$((fails + 1))
}

if [ "$fails" -ne 0 ]; then
  echo "test_cli: $fails failure(s)" >&2
  exit 1
fi
echo "test_cli: all checks passed"
