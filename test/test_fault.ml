(* Tests for the fault subsystem: fault specs, degraded-capacity mapping
   and validity, fault-aware compilation, plan repair, endurance
   accounting and mid-run fault injection in the chip simulator. *)

open Compass_core
open Compass_arch

let mpc chip = chip.Config.core.Config.macros_per_core

let quick = { Ga.quick_params with Ga.generations = 6; Ga.population = 12 }

(* Fault specs *)

let test_spec_parse_roundtrip () =
  let cases =
    [
      "none";
      "dead:0,3";
      "degraded:1=4,5=2";
      "dead:0;degraded:1=4";
      "dead:2;endurance:1e+06";
      "transient:2";
      "flip:3";
      "drift:0.01";
      "dead:1;transient:1;flip:2;drift:0.5";
      "drift:1e-06";  (* float_token keeps tiny rates exact *)
    ]
  in
  List.iter
    (fun spec ->
      let f = Fault.of_string spec ~seed:7 ~cores:16 ~macros_per_core:9 in
      let back = Fault.of_string (Fault.to_string f) ~seed:99 ~cores:16 ~macros_per_core:9 in
      Alcotest.(check string)
        (Printf.sprintf "roundtrip %s" spec)
        (Fault.to_string f) (Fault.to_string back))
    cases

let test_spec_errors () =
  let bad =
    [
      "bogus";
      "dead";
      "dead:x";
      "degraded:1";
      "degraded:1=0";
      "degraded:1=9";  (* = nominal capacity on chip S cores *)
      "random:sideways=2";
      "endurance:-1";
      "dead:99";
      "dead:0;degraded:0=2";  (* core listed twice *)
      "random:dead=99";  (* more faults than cores *)
      "transient:-1";
      "transient:x";
      "flip:-2";
      "drift:0";  (* rate must be in (0, 1] *)
      "drift:1.5";
      "drift:banana";
    ]
  in
  List.iter
    (fun spec ->
      Alcotest.(check bool) (Printf.sprintf "%S rejected" spec) true
        (try
           ignore (Fault.of_string spec ~seed:0 ~cores:16 ~macros_per_core:9);
           false
         with Invalid_argument _ -> true))
    bad

let test_random_scenarios_deterministic () =
  let realize seed = Fault.of_string "random:dead=2,degraded=3" ~seed ~cores:16 ~macros_per_core:9 in
  Alcotest.(check string) "same seed, same scenario"
    (Fault.to_string (realize 42))
    (Fault.to_string (realize 42));
  Alcotest.(check int) "dead count" 2 (Fault.dead_count (realize 42));
  Alcotest.(check int) "degraded count" 3 (Fault.degraded_count (realize 42));
  Alcotest.(check bool) "different seeds differ" true
    (List.exists
       (fun s -> Fault.to_string (realize s) <> Fault.to_string (realize 42))
       [ 1; 2; 3; 4; 5 ])

let test_effective_capacity () =
  let f = Fault.of_string "dead:0;degraded:1=4" ~seed:0 ~cores:16 ~macros_per_core:9 in
  Alcotest.(check int) "dead" 0 (Fault.effective_capacity f ~macros_per_core:9 0);
  Alcotest.(check int) "degraded" 4 (Fault.effective_capacity f ~macros_per_core:9 1);
  Alcotest.(check int) "healthy" 9 (Fault.effective_capacity f ~macros_per_core:9 2);
  Alcotest.(check int) "total" (4 + (14 * 9)) (Fault.total_capacity f ~macros_per_core:9);
  Alcotest.(check bool) "not trivial" false (Fault.is_trivial f);
  Alcotest.(check bool) "healthy chip trivial" true (Fault.is_trivial (Fault.healthy ~cores:16))

(* Degraded-capacity mapping *)

let test_pack_avoids_dead_cores () =
  let units = Unit_gen.generate (Compass_nn.Models.by_name "resnet18") Config.chip_m in
  let faults = Fault.of_string "dead:0,5;degraded:2=3" ~seed:0 ~cores:16 ~macros_per_core:16 in
  let v = Validity.build ~faults units in
  let stop = Validity.max_end v 0 in
  match Mapping.pack ~faults units ~start_:0 ~stop ~replication:(fun _ -> 1) with
  | Error e -> Alcotest.fail e
  | Ok m ->
    Alcotest.(check int) "dead core 0 empty" 0 m.Mapping.tiles_used.(0);
    Alcotest.(check int) "dead core 5 empty" 0 m.Mapping.tiles_used.(5);
    Alcotest.(check bool) "degraded core within 3" true (m.Mapping.tiles_used.(2) <= 3);
    Array.iteri
      (fun c used ->
        Alcotest.(check bool)
          (Printf.sprintf "core %d within effective capacity" c)
          true
          (used <= m.Mapping.capacities.(c)))
      m.Mapping.tiles_used

let test_core_count_mismatch_rejected () =
  let units = Unit_gen.generate (Compass_nn.Models.by_name "lenet5") Config.chip_s in
  let faults = Fault.healthy ~cores:4 in
  Alcotest.(check bool) "mismatched scenario rejected" true
    (try
       ignore (Mapping.pack ~faults units ~start_:0 ~stop:1 ~replication:(fun _ -> 1));
       false
     with Invalid_argument _ -> true)

let test_validity_shrinks_under_faults () =
  let units = Unit_gen.generate (Compass_nn.Models.by_name "resnet18") Config.chip_m in
  let v0 = Validity.build units in
  let faults = Fault.of_string "random:dead=4" ~seed:3 ~cores:16 ~macros_per_core:16 in
  let vf = Validity.build ~faults units in
  Alcotest.(check bool) "faults recorded" true (Validity.faults vf <> None);
  let m = Validity.size v0 in
  for a = 0 to m - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "max_end(%d) monotone under faults" a)
      true
      (Validity.max_end vf a <= Validity.max_end v0 a && Validity.max_end vf a > a)
  done;
  Alcotest.(check bool) "density shrinks" true (Validity.density vf <= Validity.density v0)

let test_validity_rejects_impossible () =
  (* Degrade every core below the largest unit: the model cannot run. *)
  let units = Unit_gen.generate (Compass_nn.Models.by_name "resnet18") Config.chip_s in
  let biggest =
    Array.fold_left (fun acc u -> max acc u.Unit_gen.tiles) 0 units.Unit_gen.units
  in
  if biggest > 1 then begin
    let statuses = Array.make 16 (Fault.Degraded (biggest - 1)) in
    let faults = Fault.make statuses in
    Alcotest.(check bool) "build raises" true
      (try
         ignore (Validity.build ~faults units);
         false
       with Invalid_argument _ -> true)
  end

let test_render_empty_safe () =
  (* render must not divide by zero on degenerate maps (m = 0 guard). *)
  let units = Unit_gen.generate (Compass_nn.Models.by_name "lenet5") Config.chip_s in
  let v = Validity.build units in
  let s = Validity.render ~cells:1 v in
  Alcotest.(check bool) "non-empty rendering" true (String.length s > 0)

(* No-fault refinement: behavior must be bit-identical to the pre-fault
   compiler. *)

let test_nofault_bit_identical () =
  let model = Compass_nn.Models.by_name "squeezenet" in
  let plain =
    Compiler.compile ~ga_params:quick ~model ~chip:Config.chip_s ~batch:8 Compiler.Compass
  in
  let trivial = Fault.healthy ~cores:16 in
  let faulted =
    Compiler.compile ~ga_params:quick ~faults:trivial ~model ~chip:Config.chip_s ~batch:8
      Compiler.Compass
  in
  Alcotest.(check bool) "same group" true
    (Partition.equal plain.Compiler.group faulted.Compiler.group);
  Alcotest.(check (float 0.)) "same latency"
    plain.Compiler.perf.Estimator.batch_latency_s
    faulted.Compiler.perf.Estimator.batch_latency_s;
  Alcotest.(check (float 0.)) "same energy" plain.Compiler.perf.Estimator.energy_j
    faulted.Compiler.perf.Estimator.energy_j;
  match (plain.Compiler.ga, faulted.Compiler.ga) with
  | Some a, Some b ->
    Alcotest.(check int) "same evaluations" a.Ga.evaluations b.Ga.evaluations;
    Alcotest.(check int) "same cache" a.Ga.cache_spans b.Ga.cache_spans
  | _ -> Alcotest.fail "expected GA results"

(* QCheck property (a): plans compiled under random fault scenarios never
   place units on dead cores and respect degraded capacities. *)

let scenario_gen =
  QCheck.make
    ~print:(fun (seed, dead, degraded) ->
      Printf.sprintf "seed=%d dead=%d degraded=%d" seed dead degraded)
    QCheck.Gen.(triple (int_bound 10000) (int_bound 3) (int_bound 2))

let prop_compile_respects_faults =
  QCheck.Test.make ~name:"fault-aware plans respect effective capacities" ~count:15
    scenario_gen (fun (seed, dead, degraded) ->
      let chip = Config.chip_m in
      let spec = Printf.sprintf "random:dead=%d,degraded=%d" dead degraded in
      let faults = Fault.of_string spec ~seed ~cores:chip.Config.cores ~macros_per_core:(mpc chip) in
      let model = Compass_nn.Models.by_name "resnet18" in
      let plan = Compiler.compile ~faults ~model ~chip ~batch:8 Compiler.Greedy in
      let units = plan.Compiler.units in
      let caps = Fault.capacities faults ~macros_per_core:(mpc chip) in
      List.for_all
        (fun (s : Partition.span) ->
          match
            Mapping.pack ~faults units ~start_:s.Partition.start_ ~stop:s.Partition.stop
              ~replication:(fun _ -> 1)
          with
          | Error _ -> false
          | Ok m ->
            Array.for_all2 ( >= ) caps m.Mapping.tiles_used
            && Array.for_all
                 (fun c -> c >= 0)
                 m.Mapping.tiles_used)
        (Partition.spans plan.Compiler.group))

(* QCheck property (b): repair output is Validity-valid, and a forced
   recompile is bit-identical to a fresh compile on the faulted chip. *)

let prop_repair_valid =
  QCheck.Test.make ~name:"repair yields validity-valid plans" ~count:10
    scenario_gen (fun (seed, dead, degraded) ->
      let chip = Config.chip_m in
      let spec = Printf.sprintf "random:dead=%d,degraded=%d" dead degraded in
      let faults = Fault.of_string spec ~seed ~cores:chip.Config.cores ~macros_per_core:(mpc chip) in
      let model = Compass_nn.Models.by_name "resnet18" in
      let plan = Compiler.compile ~model ~chip ~batch:8 Compiler.Greedy in
      match Compiler.repair plan ~faults with
      | Error _ -> QCheck.Test.fail_report "repair failed on a feasible scenario"
      | Ok r ->
        let v = Validity.build ~faults plan.Compiler.units in
        Validity.group_valid v r.Compiler.plan.Compiler.group
        && r.Compiler.plan.Compiler.faults <> None
        && r.Compiler.degradation >= 0.)

let test_repair_forced_recompile_equals_fresh () =
  let chip = Config.chip_m in
  let model = Compass_nn.Models.by_name "resnet18" in
  let faults = Fault.of_string "dead:1,9" ~seed:0 ~cores:16 ~macros_per_core:16 in
  let plan = Compiler.compile ~ga_params:quick ~model ~chip ~batch:8 Compiler.Compass in
  match Compiler.repair ~ga_params:quick ~recompile_above:0. plan ~faults with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "strategy is recompile" true (r.Compiler.strategy = Compiler.Recompiled);
    let fresh =
      Compiler.compile ~ga_params:quick ~faults ~model ~chip ~batch:8 Compiler.Compass
    in
    Alcotest.(check bool) "same group as fresh compile" true
      (Partition.equal fresh.Compiler.group r.Compiler.plan.Compiler.group);
    Alcotest.(check (float 0.)) "same latency"
      fresh.Compiler.perf.Estimator.batch_latency_s
      r.Compiler.plan.Compiler.perf.Estimator.batch_latency_s

let test_repair_unchanged_when_feasible () =
  (* A scenario mild enough that every span still fits keeps the
     partitioning and only re-maps. *)
  let chip = Config.chip_l in
  let model = Compass_nn.Models.by_name "lenet5" in
  let plan = Compiler.compile ~model ~chip ~batch:4 Compiler.Greedy in
  let faults = Fault.of_string "dead:15" ~seed:0 ~cores:16 ~macros_per_core:36 in
  match Compiler.repair plan ~faults with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "unchanged" true (r.Compiler.strategy = Compiler.Unchanged);
    Alcotest.(check bool) "group kept" true
      (Partition.equal plan.Compiler.group r.Compiler.plan.Compiler.group)

let test_repair_infeasible_is_error () =
  let chip = Config.chip_s in
  let model = Compass_nn.Models.by_name "resnet18" in
  let plan = Compiler.compile ~model ~chip ~batch:4 Compiler.Greedy in
  let statuses = Array.make 16 Fault.Dead in
  statuses.(0) <- Fault.Degraded 1;
  let faults = Fault.make statuses in
  Alcotest.(check bool) "catastrophic scenario is Error" true
    (match Compiler.repair plan ~faults with Error _ -> true | Ok _ -> false)

(* Endurance accounting *)

let test_endurance_accounting () =
  let chip = Config.chip_s in
  let model = Compass_nn.Models.by_name "resnet18" in
  let faults = Fault.of_string "endurance:1e6" ~seed:0 ~cores:16 ~macros_per_core:9 in
  let plan = Compiler.compile ~faults ~model ~chip ~batch:16 Compiler.Greedy in
  let e = plan.Compiler.perf.Estimator.endurance in
  Alcotest.(check bool) "writes recorded" true (e.Estimator.macro_writes_per_batch > 0);
  Alcotest.(check bool) "per-inference positive" true (e.Estimator.writes_per_inference > 0.);
  Alcotest.(check bool) "worst macro bounded by total" true
    (e.Estimator.max_writes_per_macro_per_inference <= e.Estimator.writes_per_inference);
  (match e.Estimator.projected_lifetime_inferences with
  | Some n ->
    Alcotest.(check bool) "lifetime consistent" true
      (abs_float (n -. (1e6 /. e.Estimator.max_writes_per_macro_per_inference)) < 1e-6 *. n)
  | None -> Alcotest.fail "expected a lifetime projection");
  (* Without a budget there is no projection. *)
  let plain = Compiler.compile ~model ~chip ~batch:16 Compiler.Greedy in
  Alcotest.(check bool) "no budget, no projection" true
    (plain.Compiler.perf.Estimator.endurance.Estimator.projected_lifetime_inferences = None)

let test_wear_objective () =
  let chip = Config.chip_s in
  let model = Compass_nn.Models.by_name "squeezenet" in
  Alcotest.(check bool) "wear parses" true (Fitness.objective_of_string "wear" = Fitness.Wear);
  Alcotest.(check bool) "endurance alias" true
    (Fitness.objective_of_string "endurance" = Fitness.Wear);
  let lat = Compiler.compile ~ga_params:quick ~model ~chip ~batch:16 Compiler.Compass in
  let wear =
    Compiler.compile ~ga_params:quick ~objective:Fitness.Wear ~model ~chip ~batch:16
      Compiler.Compass
  in
  (* The wear objective never prefers a plan with more worst-macro wear
     AND more latency than the latency objective's pick (it optimizes the
     sum of both terms). *)
  let cost (p : Compiler.t) = Fitness.group_fitness Fitness.Wear p.Compiler.perf in
  Alcotest.(check bool) "wear plan no worse on wear fitness" true
    (cost wear <= cost lat +. 1e-12)

let test_endurance_table_renders () =
  let chip = Config.chip_s in
  let model = Compass_nn.Models.by_name "lenet5" in
  let plan = Compiler.compile ~model ~chip ~batch:4 Compiler.Greedy in
  let t = Report.endurance_table ~endurance_cycles:1e6 [ plan ] in
  Alcotest.(check bool) "table renders" true
    (String.length (Compass_util.Table.render t) > 0)

(* Scheduler + simulator under faults *)

let test_schedule_avoids_dead_cores () =
  let chip = Config.chip_m in
  let model = Compass_nn.Models.by_name "resnet18" in
  let faults = Fault.of_string "dead:0,7" ~seed:0 ~cores:16 ~macros_per_core:16 in
  let plan = Compiler.compile ~faults ~model ~chip ~batch:4 Compiler.Greedy in
  let m = Compiler.measure plan in
  List.iter
    (fun p ->
      if List.mem p.Compass_isa.Program.core_id [ 0; 7 ] then
        List.iter
          (fun instr ->
            match instr with
            | Compass_isa.Instr.Sync _ -> ()
            | other ->
              Alcotest.failf "dead core %d got %s" p.Compass_isa.Program.core_id
                (match other with
                | Compass_isa.Instr.Weight_write _ -> "weight_write"
                | Compass_isa.Instr.Load _ -> "load"
                | Compass_isa.Instr.Store _ -> "store"
                | Compass_isa.Instr.Mvm _ -> "mvm"
                | Compass_isa.Instr.Vfu _ -> "vfu"
                | Compass_isa.Instr.Send _ -> "send"
                | Compass_isa.Instr.Recv _ -> "recv"
                | Compass_isa.Instr.Check _ -> "check"
                | Compass_isa.Instr.Sync _ -> assert false))
          p.Compass_isa.Program.instrs)
    m.Compiler.schedule.Scheduler.programs;
  Alcotest.(check bool) "simulation completes" true
    (m.Compiler.sim.Compass_isa.Sim.makespan_s > 0.)

let test_sim_fault_injection_no_deadlock () =
  let chip = Config.chip_s in
  let model = Compass_nn.Models.by_name "resnet18" in
  let plan = Compiler.compile ~model ~chip ~batch:8 Compiler.Greedy in
  let sched = Compiler.schedule plan in
  let healthy = Compass_isa.Sim.run chip sched.Scheduler.programs in
  let faulted =
    Compass_isa.Sim.run
      ~fault_events:
        [
          Compass_isa.Sim.fail_stop ~at_s:(healthy.Compass_isa.Sim.makespan_s /. 4.)
            ~victim:1;
          Compass_isa.Sim.fail_stop ~at_s:0. ~victim:3;
        ]
      chip sched.Scheduler.programs
  in
  Alcotest.(check (list Alcotest.int)) "both victims die" [ 1; 3 ]
    faulted.Compass_isa.Sim.dead_cores;
  Alcotest.(check bool) "work dropped" true
    (faulted.Compass_isa.Sim.dropped_instructions > 0);
  Alcotest.(check bool) "drains no slower than healthy run" true
    (faulted.Compass_isa.Sim.makespan_s <= healthy.Compass_isa.Sim.makespan_s +. 1e-9);
  Alcotest.(check int) "no faults, no drops" 0 healthy.Compass_isa.Sim.dropped_instructions

let test_measure_with_faults () =
  let chip = Config.chip_m in
  let model = Compass_nn.Models.by_name "resnet18" in
  let plan = Compiler.compile ~model ~chip ~batch:4 Compiler.Greedy in
  let faults = Fault.of_string "dead:2,11" ~seed:0 ~cores:16 ~macros_per_core:16 in
  match Compiler.measure_with_faults plan ~at_s:1e-4 ~faults with
  | Error e -> Alcotest.fail e
  | Ok run ->
    Alcotest.(check (list Alcotest.int)) "victims fail-stopped" [ 2; 11 ]
      run.Compiler.faulted_sim.Compass_isa.Sim.dead_cores;
    Alcotest.(check bool) "recovery accounted" true
      (run.Compiler.recovery_latency_s
      >= run.Compiler.repaired.Compiler.sim.Compass_isa.Sim.makespan_s);
    Alcotest.(check bool) "repaired plan carries faults" true
      (run.Compiler.repair.Compiler.plan.Compiler.faults <> None)

(* Plan text roundtrip with faults *)

let test_plan_text_faults_roundtrip () =
  let chip = Config.chip_m in
  let model = Compass_nn.Models.by_name "resnet18" in
  let faults = Fault.of_string "dead:4;degraded:6=5" ~seed:0 ~cores:16 ~macros_per_core:16 in
  let plan = Compiler.compile ~faults ~model ~chip ~batch:8 Compiler.Greedy in
  let reloaded = Plan_text.of_string (Plan_text.to_string plan) in
  Alcotest.(check bool) "group survives" true
    (Partition.equal plan.Compiler.group reloaded.Compiler.group);
  (match reloaded.Compiler.faults with
  | Some f ->
    Alcotest.(check string) "scenario survives" (Fault.to_string faults) (Fault.to_string f)
  | None -> Alcotest.fail "faults dropped by roundtrip");
  Alcotest.(check (float 0.)) "same latency"
    plan.Compiler.perf.Estimator.batch_latency_s
    reloaded.Compiler.perf.Estimator.batch_latency_s

let () =
  Alcotest.run "fault"
    [
      ( "spec",
        [
          Alcotest.test_case "parse roundtrip" `Quick test_spec_parse_roundtrip;
          Alcotest.test_case "errors" `Quick test_spec_errors;
          Alcotest.test_case "random deterministic" `Quick test_random_scenarios_deterministic;
          Alcotest.test_case "effective capacity" `Quick test_effective_capacity;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "pack avoids dead cores" `Quick test_pack_avoids_dead_cores;
          Alcotest.test_case "core count mismatch" `Quick test_core_count_mismatch_rejected;
          Alcotest.test_case "validity shrinks" `Quick test_validity_shrinks_under_faults;
          Alcotest.test_case "impossible scenario rejected" `Quick test_validity_rejects_impossible;
          Alcotest.test_case "render degenerate maps" `Quick test_render_empty_safe;
        ] );
      ( "compile",
        [
          Alcotest.test_case "no-fault path bit-identical" `Slow test_nofault_bit_identical;
          QCheck_alcotest.to_alcotest prop_compile_respects_faults;
        ] );
      ( "repair",
        [
          QCheck_alcotest.to_alcotest prop_repair_valid;
          Alcotest.test_case "forced recompile = fresh compile" `Slow
            test_repair_forced_recompile_equals_fresh;
          Alcotest.test_case "mild faults keep partitioning" `Quick
            test_repair_unchanged_when_feasible;
          Alcotest.test_case "catastrophic faults error" `Quick test_repair_infeasible_is_error;
        ] );
      ( "endurance",
        [
          Alcotest.test_case "accounting" `Quick test_endurance_accounting;
          Alcotest.test_case "wear objective" `Slow test_wear_objective;
          Alcotest.test_case "report table" `Quick test_endurance_table_renders;
        ] );
      ( "execution",
        [
          Alcotest.test_case "schedule avoids dead cores" `Quick test_schedule_avoids_dead_cores;
          Alcotest.test_case "sim fault injection" `Quick test_sim_fault_injection_no_deadlock;
          Alcotest.test_case "measure with faults" `Quick test_measure_with_faults;
        ] );
      ( "plan-text",
        [
          Alcotest.test_case "faults roundtrip" `Quick test_plan_text_faults_roundtrip;
        ] );
    ]
