(* The independent plan verifier: compiled plans from every scheme pass,
   and corrupted plans (record surgery on the public plan type) are
   rejected. *)

open Compass_core
open Compass_arch

let quick = { Ga.quick_params with Ga.seed = 3; jobs = 1 }

let compile ?faults ?(scheme = Compiler.Greedy) ?(batch = 4) name =
  Compiler.compile ~ga_params:quick ?faults
    ~model:(Compass_nn.Models.by_name name)
    ~chip:Config.chip_s ~batch scheme

let check_clean tag plan =
  match Verify.check plan with
  | [] -> ()
  | violations -> Alcotest.failf "%s: unexpected violations:\n%s" tag (Verify.render violations)

let check_rejected tag mutant =
  match Verify.check mutant with
  | [] -> Alcotest.failf "%s: verifier accepted the mutant" tag
  | _ :: _ -> ()

(* Every scheme x a few zoo models, healthy chip. *)
let test_schemes_pass () =
  List.iter
    (fun name ->
      List.iter
        (fun scheme ->
          let plan = compile ~scheme name in
          check_clean
            (name ^ "/" ^ Compiler.scheme_to_string scheme)
            plan)
        [ Compiler.Compass; Compiler.Greedy; Compiler.Layerwise; Compiler.Optimal ])
    [ "lenet5"; "squeezenet" ]

let fault_spec spec =
  Fault.of_string spec ~seed:0 ~cores:Config.chip_s.Config.cores
    ~macros_per_core:Config.chip_s.Config.core.Config.macros_per_core

(* Fault-aware plans pass too: the verifier recomputes the degraded
   per-core capacities on its own. *)
let test_fault_plans_pass () =
  let faults = fault_spec "dead:2;degraded:5=4" in
  List.iter
    (fun scheme ->
      check_clean
        ("faulted/" ^ Compiler.scheme_to_string scheme)
        (compile ~faults ~scheme "squeezenet"))
    [ Compiler.Compass; Compiler.Greedy; Compiler.Optimal ];
  let endurance = fault_spec "endurance:1e6" in
  check_clean "endurance budget" (compile ~faults:endurance "lenet5")

(* Mutation corpus: each surgery must be caught. *)

let with_first_span plan f =
  let perf = plan.Compiler.perf in
  let spans =
    match perf.Estimator.spans with
    | s :: rest -> f s :: rest
    | [] -> Alcotest.fail "plan has no spans"
  in
  { plan with Compiler.perf = { perf with Estimator.spans } }

let test_mutants_rejected () =
  let plan = compile "lenet5" in
  check_clean "baseline" plan;
  (* Batch mismatch between plan and estimate. *)
  check_rejected "batch mismatch" { plan with Compiler.batch = plan.Compiler.batch + 1 };
  (* Drop a unit: the group no longer covers the decomposition. *)
  let cuts = Partition.cuts plan.Compiler.group in
  let dropped = Array.copy cuts in
  dropped.(Array.length dropped - 1) <- dropped.(Array.length dropped - 1) - 1;
  check_rejected "dropped unit"
    { plan with Compiler.group = Partition.of_cuts dropped };
  (* Replication surgery. *)
  let tamper_rep f =
    with_first_span plan (fun s ->
        let r = s.Estimator.replication in
        { s with Estimator.replication = { r with Replication.per_layer = f r.Replication.per_layer } })
  in
  check_rejected "inflated replication"
    (tamper_rep (function (n, k) :: rest -> (n, k + 5) :: rest | [] -> []));
  check_rejected "zero replication"
    (tamper_rep (function (n, _) :: rest -> (n, 0) :: rest | [] -> []));
  check_rejected "foreign layer replication" (tamper_rep (fun l -> (99_999, 2) :: l));
  (* Core overload: pile every tile onto core 0. *)
  check_rejected "core overload"
    (with_first_span plan (fun s ->
         let t = s.Estimator.tiles_per_core in
         let all = Array.fold_left ( + ) 0 t in
         let t' = Array.make (Array.length t) 0 in
         t'.(0) <- all + Config.chip_s.Config.core.Config.macros_per_core + 1;
         { s with Estimator.tiles_per_core = t' }));
  (* Span boundary surgery: the estimate no longer matches the group. *)
  check_rejected "shifted span"
    (with_first_span plan (fun s -> { s with Estimator.stop = s.Estimator.stop - 1 }));
  (* Endurance ledger tampering. *)
  let e = plan.Compiler.perf.Estimator.endurance in
  check_rejected "endurance tamper"
    {
      plan with
      Compiler.perf =
        {
          plan.Compiler.perf with
          Estimator.endurance =
            {
              e with
              Estimator.writes_per_inference = e.Estimator.writes_per_inference +. 1.;
            };
        };
    }

let test_multi_span_mutants () =
  (* Layerwise gives one span per weighted layer — enough structure to
     corrupt the span sequence itself. *)
  let plan = compile ~scheme:Compiler.Layerwise "lenet5" in
  check_clean "baseline" plan;
  let perf = plan.Compiler.perf in
  (match perf.Estimator.spans with
  | a :: b :: rest ->
    check_rejected "swapped spans"
      { plan with Compiler.perf = { perf with Estimator.spans = b :: a :: rest } };
    check_rejected "dropped span"
      { plan with Compiler.perf = { perf with Estimator.spans = b :: rest } }
  | _ -> Alcotest.fail "expected >= 2 spans");
  ()

let test_dead_core_mutant () =
  let faults = fault_spec "dead:2" in
  let plan = compile ~faults "lenet5" in
  check_clean "baseline" plan;
  (* Move a tile onto the dead core — a mapping the degraded chip cannot
     execute. *)
  check_rejected "tiles on a dead core"
    (with_first_span plan (fun s ->
         let t = Array.copy s.Estimator.tiles_per_core in
         let donor =
           let rec find i =
             if i >= Array.length t then Alcotest.fail "no tiles placed"
             else if t.(i) > 0 && i <> 2 then i
             else find (i + 1)
           in
           find 0
         in
         t.(donor) <- t.(donor) - 1;
         t.(2) <- t.(2) + 1;
         { s with Estimator.tiles_per_core = t }))

(* Property: random small chain models compile cleanly under every scheme
   and the verifier agrees with all of them. *)

let build_model_text (ch, hw, outs, fc) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "model rnd\n";
  Buffer.add_string buf (Printf.sprintf "input in %dx%dx%d\n" ch hw hw);
  List.iteri
    (fun i out ->
      let from = if i = 0 then "in" else Printf.sprintf "r%d" (i - 1) in
      Buffer.add_string buf (Printf.sprintf "conv c%d from %s out=%d kernel=3\n" i from out);
      Buffer.add_string buf (Printf.sprintf "relu r%d from c%d\n" i i))
    outs;
  Buffer.add_string buf (Printf.sprintf "gap g from r%d\n" (List.length outs - 1));
  Buffer.add_string buf (Printf.sprintf "linear fc from g out=%d\n" fc);
  Buffer.contents buf

let model_params_gen =
  QCheck.Gen.(
    quad (int_range 1 4) (int_range 6 14)
      (list_size (int_range 1 3) (int_range 4 12))
      (int_range 4 24))

let prop_random_models_verify =
  QCheck.Test.make ~name:"random models verify clean under every scheme" ~count:6
    (QCheck.make model_params_gen ~print:(fun p -> build_model_text p))
    (fun params ->
      let model = Compass_nn.Model_text.parse (build_model_text params) in
      List.for_all
        (fun scheme ->
          let plan =
            Compiler.compile ~ga_params:quick ~model ~chip:Config.chip_s ~batch:2 scheme
          in
          Verify.check plan = [])
        [ Compiler.Compass; Compiler.Greedy; Compiler.Layerwise; Compiler.Optimal ])

let prop_random_mutants_rejected =
  (* Randomized replication inflation over random models: the verifier
     rejects every such mutant. *)
  QCheck.Test.make ~name:"random replication mutants rejected" ~count:6
    (QCheck.make
       QCheck.Gen.(pair model_params_gen (int_range 1 7))
       ~print:(fun (p, k) -> Printf.sprintf "%s (+%d)" (build_model_text p) k))
    (fun (params, extra) ->
      let model = Compass_nn.Model_text.parse (build_model_text params) in
      let plan =
        Compiler.compile ~ga_params:quick ~model ~chip:Config.chip_s ~batch:2
          Compiler.Greedy
      in
      let perf = plan.Compiler.perf in
      let mutant =
        match perf.Estimator.spans with
        | s :: rest ->
          let r = s.Estimator.replication in
          let per_layer =
            match r.Replication.per_layer with
            | (n, k) :: more -> (n, k + extra) :: more
            | [] -> []
          in
          {
            plan with
            Compiler.perf =
              {
                perf with
                Estimator.spans =
                  {
                    s with
                    Estimator.replication = { r with Replication.per_layer };
                  }
                  :: rest;
              };
          }
        | [] -> plan
      in
      Verify.check mutant <> [])

let test_render () =
  let plan = compile "lenet5" in
  Alcotest.(check string) "clean render" "plan satisfies all verifier invariants"
    (Verify.render (Verify.check plan));
  let mutant = { plan with Compiler.batch = plan.Compiler.batch + 1 } in
  let rendered = Verify.render (Verify.check mutant) in
  Alcotest.(check bool) "mentions violation" true
    (String.length rendered > 0 && rendered <> "plan satisfies all verifier invariants")

let () =
  Alcotest.run "verify"
    [
      ( "clean",
        [
          Alcotest.test_case "every scheme passes" `Quick test_schemes_pass;
          Alcotest.test_case "fault-aware plans pass" `Quick test_fault_plans_pass;
          Alcotest.test_case "render" `Quick test_render;
        ] );
      ( "mutants",
        [
          Alcotest.test_case "single-span corpus" `Quick test_mutants_rejected;
          Alcotest.test_case "multi-span corpus" `Quick test_multi_span_mutants;
          Alcotest.test_case "dead-core placement" `Quick test_dead_core_mutant;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_random_models_verify;
          QCheck_alcotest.to_alcotest prop_random_mutants_rejected;
        ] );
    ]
