(* Tests for the persistent domain pool behind the parallel GA search. *)

open Compass_util

let seq_map f xs = Array.map f xs

let test_map_matches_sequential () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let xs = Array.init 257 (fun i -> i) in
          let f x = (x * x) + 1 in
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d" jobs)
            (seq_map f xs) (Pool.map pool f xs)))
    [ 1; 2; 4; 7 ]

let test_map_empty_and_tiny () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (array int)) "empty" [||] (Pool.map pool (fun x -> x) [||]);
      Alcotest.(check (array int)) "singleton" [| 10 |] (Pool.map pool (fun x -> x * 10) [| 1 |]))

let test_pool_is_persistent () =
  (* Many phases on one pool; workers must survive between calls. *)
  Pool.with_pool ~jobs:3 (fun pool ->
      for round = 1 to 20 do
        let xs = Array.init 50 (fun i -> i) in
        let expected = seq_map (fun x -> x + round) xs in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          expected
          (Pool.map pool (fun x -> x + round) xs)
      done)

let test_map_init_states () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = Array.init 100 (fun i -> i) in
      let out, states =
        Pool.map_init pool
          ~init:(fun () -> ref 0)
          ~f:(fun acc x ->
            incr acc;
            x * 2)
          xs
      in
      Alcotest.(check (array int)) "results ordered" (seq_map (fun x -> x * 2) xs) out;
      let n_states = List.length states in
      Alcotest.(check bool) "at most jobs states" true (n_states >= 1 && n_states <= 4);
      (* Every item was processed by exactly one domain-local state. *)
      Alcotest.(check int) "items partitioned over states" 100
        (List.fold_left (fun acc r -> acc + !r) 0 states))

let test_map_init_sequential_single_state () =
  Pool.with_pool ~jobs:1 (fun pool ->
      let _, states =
        Pool.map_init pool ~init:(fun () -> ()) ~f:(fun () x -> x) (Array.init 10 Fun.id)
      in
      Alcotest.(check int) "one state at j=1" 1 (List.length states))

let test_map_reduce () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let xs = Array.init 1000 (fun i -> i + 1) in
          let total =
            Pool.map_reduce pool ~map:(fun x -> x * x) ~reduce:( + ) ~init:0 xs
          in
          let expected = Array.fold_left (fun acc x -> acc + (x * x)) 0 xs in
          Alcotest.(check int) (Printf.sprintf "jobs=%d" jobs) expected total))
    [ 1; 4 ]

exception Boom of int

let test_exception_lowest_index_wins () =
  (* Whatever the scheduling, the caller sees the failure of the lowest
     input index, wrapped in a located Task_error naming that index —
     deterministic replay even for errors. *)
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let xs = Array.init 200 (fun i -> i) in
          match Pool.map pool (fun x -> if x >= 41 then raise (Boom x) else x) xs with
          | _ -> Alcotest.fail "expected an exception"
          | exception Pool.Task_error { index; attempts; error = Boom i; _ } ->
            Alcotest.(check int) (Printf.sprintf "jobs=%d index" jobs) 41 index;
            Alcotest.(check int) (Printf.sprintf "jobs=%d payload" jobs) 41 i;
            Alcotest.(check int) (Printf.sprintf "jobs=%d attempts" jobs) 1 attempts))
    [ 1; 2; 4 ];
  (* The pool survives a failing phase. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      (try ignore (Pool.map pool (fun _ -> failwith "boom") [| 1; 2; 3 |]) with _ -> ());
      Alcotest.(check (array int)) "usable after failure" [| 2; 4; 6 |]
        (Pool.map pool (fun x -> 2 * x) [| 1; 2; 3 |]))

let test_supervision_recovers_transient () =
  (* A task that fails on its first execution only: supervision re-runs
     it and the result equals the unfailed run, for any worker count. *)
  List.iter
    (fun jobs ->
      let failed_once = Atomic.make false in
      let f x =
        if x = 41 && not (Atomic.exchange failed_once true) then raise (Boom x)
        else x * 3
      in
      Pool.with_pool ~jobs (fun pool ->
          let xs = Array.init 100 Fun.id in
          let got = Pool.map ~supervision:(Pool.supervision ()) pool f xs in
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d" jobs)
            (seq_map (fun x -> x * 3) xs)
            got))
    [ 1; 2; 4 ]

let test_supervision_exhausts_retries () =
  (* A persistent failure surfaces with the attempt count: 1 original
     execution + retries. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      match
        Pool.map
          ~supervision:(Pool.supervision ~retries:2 ())
          pool
          (fun x -> if x = 5 then raise (Boom x) else x)
          (Array.init 10 Fun.id)
      with
      | _ -> Alcotest.fail "expected Task_error"
      | exception Pool.Task_error { index; attempts; error = Boom 5; _ } ->
        Alcotest.(check int) "index" 5 index;
        Alcotest.(check int) "attempts = 1 + retries" 3 attempts);
  (* retries:0 still wraps the failure in a located diagnostic. *)
  Pool.with_pool ~jobs:1 (fun pool ->
      match
        Pool.map
          ~supervision:(Pool.supervision ~retries:0 ())
          pool
          (fun _ -> raise (Boom 0))
          [| 0 |]
      with
      | _ -> Alcotest.fail "expected Task_error"
      | exception Pool.Task_error { attempts = 1; _ } -> ());
  Alcotest.(check bool) "negative retries rejected" true
    (try
       ignore (Pool.supervision ~retries:(-1) ());
       false
     with Invalid_argument _ -> true)

let test_supervision_watchdog () =
  (* An expired watchdog abandons retries instead of spinning. *)
  let now = ref 0. in
  let budget = Budget.of_deadline ~now:(fun () -> !now) 1.0 in
  now := 5.;
  Pool.with_pool ~jobs:1 (fun pool ->
      let executions = ref 0 in
      match
        Pool.map
          ~supervision:(Pool.supervision ~retries:1000 ~watchdog:budget ())
          pool
          (fun x ->
            incr executions;
            raise (Boom x))
          [| 7 |]
      with
      | _ -> Alcotest.fail "expected Task_error"
      | exception Pool.Task_error { index = 0; error = Boom 7; attempts; _ } ->
        (* Original execution only: the watchdog was already expired, so
           no retry ran. *)
        Alcotest.(check int) "no retry under expired watchdog" 1 !executions;
        Alcotest.(check int) "attempts reported" 1 attempts)

let test_supervision_retry_state_returned () =
  (* The retry's fresh per-domain state is merged into the returned
     states like any worker's, so caller-side merges stay complete. *)
  Pool.with_pool ~jobs:1 (fun pool ->
      let failed_once = ref false in
      let out, states =
        Pool.map_init
          ~supervision:(Pool.supervision ())
          pool
          ~init:(fun () -> ref 0)
          ~f:(fun acc x ->
            if x = 3 && not !failed_once then begin
              failed_once := true;
              raise (Boom x)
            end;
            incr acc;
            x)
          (Array.init 6 Fun.id)
      in
      Alcotest.(check (array int)) "results" (Array.init 6 Fun.id) out;
      Alcotest.(check int) "worker state + retry state" 2 (List.length states);
      Alcotest.(check int) "every item counted once" 6
        (List.fold_left (fun acc r -> acc + !r) 0 states))

let test_create_guards () =
  Alcotest.(check bool) "jobs 0 rejected" true
    (try
       ignore (Pool.create ~jobs:0);
       false
     with Invalid_argument _ -> true);
  let pool = Pool.create ~jobs:2 in
  Alcotest.(check int) "jobs recorded" 2 (Pool.jobs pool);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.(check bool) "use after shutdown rejected" true
    (try
       ignore (Pool.map pool Fun.id [| 1 |]);
       false
     with Invalid_argument _ -> true)

let test_default_jobs_env () =
  let with_env value f =
    (match value with
    | Some v -> Unix.putenv "COMPASS_JOBS" v
    | None -> Unix.putenv "COMPASS_JOBS" "");
    Fun.protect ~finally:(fun () -> Unix.putenv "COMPASS_JOBS" "") f
  in
  with_env (Some "4") (fun () ->
      Alcotest.(check int) "COMPASS_JOBS=4" 4 (Pool.default_jobs ()));
  with_env (Some " 2 ") (fun () ->
      Alcotest.(check int) "whitespace tolerated" 2 (Pool.default_jobs ()));
  with_env (Some "nope") (fun () ->
      Alcotest.(check int) "malformed -> 1" 1 (Pool.default_jobs ()));
  with_env (Some "-3") (fun () ->
      Alcotest.(check int) "negative -> 1" 1 (Pool.default_jobs ()));
  with_env (Some "0") (fun () ->
      Alcotest.(check bool) "0 -> recommended >= 1" true (Pool.default_jobs () >= 1));
  with_env (Some "100000") (fun () ->
      Alcotest.(check int) "clamped" 128 (Pool.default_jobs ()))

let prop_map_order_preserved =
  QCheck.Test.make ~name:"pool map preserves order" ~count:30
    QCheck.(pair (int_range 1 6) (list small_int))
    (fun (jobs, xs) ->
      let xs = Array.of_list xs in
      Pool.with_pool ~jobs (fun pool ->
          Pool.map pool (fun x -> x + 7) xs = seq_map (fun x -> x + 7) xs))

let () =
  Alcotest.run "pool"
    [
      ( "map",
        [
          Alcotest.test_case "matches sequential" `Quick test_map_matches_sequential;
          Alcotest.test_case "empty and tiny" `Quick test_map_empty_and_tiny;
          Alcotest.test_case "persistent workers" `Quick test_pool_is_persistent;
          Alcotest.test_case "map_init states" `Quick test_map_init_states;
          Alcotest.test_case "map_init sequential" `Quick
            test_map_init_sequential_single_state;
          Alcotest.test_case "map_reduce" `Quick test_map_reduce;
          QCheck_alcotest.to_alcotest prop_map_order_preserved;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "exceptions deterministic" `Quick
            test_exception_lowest_index_wins;
          Alcotest.test_case "create guards" `Quick test_create_guards;
          Alcotest.test_case "COMPASS_JOBS parsing" `Quick test_default_jobs_env;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "recovers transient failures" `Quick
            test_supervision_recovers_transient;
          Alcotest.test_case "exhausts retries" `Quick test_supervision_exhausts_retries;
          Alcotest.test_case "watchdog bounds retries" `Quick test_supervision_watchdog;
          Alcotest.test_case "retry state returned" `Quick
            test_supervision_retry_state_returned;
        ] );
    ]
