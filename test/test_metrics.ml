(* Differential metric tests: every counter the observability layer
   reports must equal the same quantity recomputed independently from the
   plan, program or controller statistics — the instrumentation may only
   observe, never approximate. *)

open Compass_core
open Compass_util

let small_nets = [ "lenet5"; "tiny_mlp"; "tiny_resnet" ]

let with_metrics f =
  Metrics.reset ();
  Metrics.enable ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.disable ();
      Metrics.reset ())
    f

let metric name = Option.value ~default:0 (Metrics.find_int name)

let test_sim_per_core_instruction_counts () =
  (* Each instruction of each program executes exactly once (dead cores
     included), so the per-core counters must equal the program lengths
     and their sum the total. *)
  List.iter
    (fun name ->
      let model = Compass_nn.Models.by_name name in
      let chip = Compass_arch.Config.chip_s in
      let plan = Compiler.compile ~model ~chip ~batch:4 Compiler.Greedy in
      let sched = Compiler.schedule plan in
      with_metrics (fun () ->
          ignore (Scheduler.simulate plan.Compiler.ctx sched);
          let total = ref 0 in
          List.iter
            (fun p ->
              let expected = Compass_isa.Program.length p in
              total := !total + expected;
              Alcotest.(check int)
                (Printf.sprintf "%s core %d" name p.Compass_isa.Program.core_id)
                expected
                (metric
                   (Printf.sprintf "sim.core.%d.instrs" p.Compass_isa.Program.core_id)))
            sched.Scheduler.programs;
          Alcotest.(check int) (name ^ " total") !total (metric "sim.instrs");
          (* Per-kind counters against the static instruction mix. *)
          List.iter
            (fun (kind, n) ->
              Alcotest.(check int)
                (Printf.sprintf "%s mix %s" name kind)
                n
                (metric ("sim.instr." ^ kind)))
            (Compass_isa.Program.instruction_mix sched.Scheduler.programs)))
    small_nets

let test_estimator_cache_counters () =
  (* On a fresh cache: misses = distinct spans in the cache afterwards,
     hits + misses = one lookup per span of every evaluated group, and
     group_evaluations = number of evaluate calls. *)
  List.iter
    (fun name ->
      let model = Compass_nn.Models.by_name name in
      let chip = Compass_arch.Config.chip_s in
      let units = Unit_gen.generate model chip in
      let ctx = Dataflow.context units in
      let validity = Validity.build units in
      let groups =
        let gs = [ Baselines.greedy validity; Baselines.layerwise validity ] in
        gs @ gs
      in
      with_metrics (fun () ->
          let cache = Estimator.Span_cache.create ~batch:4 () in
          List.iter
            (fun g -> ignore (Estimator.evaluate_cached ~cache ctx ~batch:4 g))
            groups;
          let lookups =
            List.fold_left (fun acc g -> acc + Partition.partition_count g) 0 groups
          in
          let hits = metric "estimator.span_cache.hits" in
          let misses = metric "estimator.span_cache.misses" in
          Alcotest.(check int)
            (name ^ " misses = distinct spans")
            (Estimator.Span_cache.length cache)
            misses;
          Alcotest.(check int) (name ^ " hits + misses = lookups") lookups (hits + misses);
          Alcotest.(check int)
            (name ^ " group evaluations")
            (List.length groups)
            (metric "estimator.group_evaluations")))
    small_nets

let test_dram_counters_match_stats () =
  (* The controller's metric flush must agree field-for-field with the
     stats record it returns. *)
  let records =
    List.init 64 (fun i ->
        if i mod 3 = 0 then
          Compass_dram.Trace.write ~addr:(i * 4096) ~bytes:2048 ()
        else Compass_dram.Trace.read ~addr:(i * 1536) ~bytes:1024 ())
  in
  with_metrics (fun () ->
      let stats = Compass_dram.Dram.simulate records in
      let open Compass_dram.Controller in
      List.iter
        (fun (metric_name, expected) ->
          Alcotest.(check int) metric_name expected (metric metric_name))
        [
          ("dram.reads", stats.reads);
          ("dram.writes", stats.writes);
          ("dram.row_hits", stats.row_hits);
          ("dram.row_misses", stats.row_misses);
          ("dram.activates", stats.activates);
          ("dram.refreshes", stats.refreshes);
          ("dram.bus_stall_cycles", stats.bus_stall_cycles);
        ];
      (* Every burst is either a hit or a miss, and every burst is either
         a read or a write. *)
      Alcotest.(check int) "bursts partition into hits and misses"
        (stats.reads + stats.writes)
        (stats.row_hits + stats.row_misses))

let test_full_compile_catalogue () =
  (* An instrumented end-to-end compile + measure populates the documented
     metric families with mutually consistent values. *)
  let model = Compass_nn.Models.by_name "lenet5" in
  let chip = Compass_arch.Config.chip_s in
  with_metrics (fun () ->
      let plan =
        Compiler.compile
          ~ga_params:{ Ga.quick_params with Ga.seed = 3 }
          ~model ~chip ~batch:4 Compiler.Compass
      in
      ignore (Compiler.measure plan);
      let ga = Option.get plan.Compiler.ga in
      Alcotest.(check int) "ga.generations" ga.Ga.generations_run (metric "ga.generations");
      Alcotest.(check int) "ga.fitness_evaluations" ga.Ga.evaluations
        (metric "ga.fitness_evaluations");
      (match Metrics.find "ga.best_fitness" with
      | Some (Metrics.Float v) ->
        Alcotest.(check (float 0.)) "ga.best_fitness" ga.Ga.best.Ga.fitness v
      | _ -> Alcotest.fail "ga.best_fitness missing");
      Alcotest.(check bool) "sim instructions counted" true (metric "sim.instrs" > 0);
      Alcotest.(check bool) "dram bursts counted" true
        (metric "dram.reads" + metric "dram.writes" > 0))

let test_dp_counters_match_stats () =
  let model = Compass_nn.Models.by_name "lenet5" in
  let chip = Compass_arch.Config.chip_s in
  let units = Unit_gen.generate model chip in
  let ctx = Dataflow.context units in
  let validity = Validity.build units in
  with_metrics (fun () ->
      let r = Optimal.optimize ctx validity ~batch:4 in
      let s = r.Optimal.stats in
      Alcotest.(check int) "dp.valid_spans" s.Optimal.valid_spans
        (metric "dp.valid_spans");
      Alcotest.(check int) "dp.spans_evaluated" s.Optimal.spans_evaluated
        (metric "dp.spans_evaluated");
      Alcotest.(check int) "dp.edges_relaxed" s.Optimal.edges_relaxed
        (metric "dp.edges_relaxed");
      Alcotest.(check int) "dp.group_evaluations" s.Optimal.group_evaluations
        (metric "dp.group_evaluations"))

(* Latency histograms: power-of-two buckets, so a quantile estimate is
   an upper bound within a factor of two of the true order statistic,
   and bucket-count merging is associative like counters — worker-count
   independent by construction. *)
let test_histogram_quantiles () =
  with_metrics (fun () ->
      (* 100 samples 0.001..0.100: true p50 = 0.050, true p99 = 0.099. *)
      for i = 1 to 100 do
        Metrics.observe "lat" (float_of_int i /. 1000.)
      done;
      let quantile q =
        match Metrics.quantile "lat" q with
        | Some v -> v
        | None -> Alcotest.fail "histogram missing"
      in
      let in_bound ~true_v got =
        got >= true_v && got <= 2. *. true_v
      in
      Alcotest.(check bool) "p50 within a factor of two" true
        (in_bound ~true_v:0.050 (quantile 0.5));
      Alcotest.(check bool) "p99 within a factor of two" true
        (in_bound ~true_v:0.099 (quantile 0.99));
      Alcotest.(check bool) "quantiles monotone" true
        (quantile 0.5 <= quantile 0.99);
      Alcotest.(check int) "count surfaces" 100 (metric "lat.count");
      (* Snapshot carries derived p50/p99 rows. *)
      let snap = Metrics.snapshot () in
      Alcotest.(check bool) "snapshot has p50 and p99" true
        (List.mem_assoc "lat.p50" snap && List.mem_assoc "lat.p99" snap);
      (* Bad quantiles and type clashes are loud. *)
      (match Metrics.quantile "lat" 1.5 with
      | _ -> Alcotest.fail "q > 1 accepted"
      | exception Invalid_argument _ -> ());
      match Metrics.incr "lat" with
      | _ -> Alcotest.fail "incr on a histogram accepted"
      | exception Invalid_argument _ -> ())

let test_histogram_merges_across_domains () =
  (* Observations from pool workers merge exactly like counters: total
     count equals the sum, independent of the worker count. *)
  let counts =
    List.map
      (fun jobs ->
        with_metrics (fun () ->
            Compass_util.Pool.with_pool ~jobs (fun p ->
                ignore
                  (Compass_util.Pool.map p
                     (fun i ->
                       Metrics.observe "work" (float_of_int (1 + (i mod 7)));
                       i)
                     (Array.init 64 Fun.id)));
            metric "work.count"))
      [ 1; 4 ]
  in
  Alcotest.(check (list int)) "count independent of workers" [ 64; 64 ] counts

let () =
  Alcotest.run "metrics"
    [
      ( "differential",
        [
          Alcotest.test_case "sim per-core instruction counts" `Quick
            test_sim_per_core_instruction_counts;
          Alcotest.test_case "estimator cache counters" `Quick
            test_estimator_cache_counters;
          Alcotest.test_case "dram counters match stats" `Quick
            test_dram_counters_match_stats;
          Alcotest.test_case "dp counters match stats" `Quick
            test_dp_counters_match_stats;
          Alcotest.test_case "full compile catalogue" `Quick test_full_compile_catalogue;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "quantiles bounded" `Quick test_histogram_quantiles;
          Alcotest.test_case "merges across domains" `Quick
            test_histogram_merges_across_domains;
        ] );
    ]
