(* Tests for the performance estimator and fitness extraction. *)

open Compass_core
open Compass_arch

let setup name chip =
  let units = Unit_gen.generate (Compass_nn.Models.by_name name) chip in
  let v = Validity.build units in
  (units, v, Dataflow.context units)

let eval ctx v ?(batch = 16) scheme =
  let g = match scheme with `Greedy -> Baselines.greedy v | `Layerwise -> Baselines.layerwise v in
  Estimator.evaluate ctx ~batch g

let test_positive_outputs () =
  List.iter
    (fun name ->
      let _, v, ctx = setup name Config.chip_s in
      let p = eval ctx v `Greedy in
      Alcotest.(check bool) (name ^ " latency > 0") true (p.Estimator.batch_latency_s > 0.);
      Alcotest.(check bool) (name ^ " energy > 0") true (p.Estimator.energy_j > 0.);
      Alcotest.(check bool) (name ^ " throughput > 0") true
        (p.Estimator.throughput_per_s > 0.))
    [ "vgg16"; "resnet18"; "squeezenet"; "lenet5" ]

let test_latency_monotone_in_batch () =
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let g = Baselines.greedy v in
  let l b = (Estimator.evaluate ctx ~batch:b g).Estimator.batch_latency_s in
  Alcotest.(check bool) "monotone" true (l 1 < l 4 && l 4 < l 16 && l 16 < l 64)

let test_energy_per_sample_decreases_with_batch () =
  (* Weight writes amortize (paper Fig. 8). *)
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let g = Baselines.greedy v in
  let e b = (Estimator.evaluate ctx ~batch:b g).Estimator.energy_per_sample_j in
  Alcotest.(check bool) "amortization" true (e 1 > e 4 && e 4 > e 16)

let test_group_latency_sums_spans_with_overlap () =
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let g = Baselines.greedy v in
  let p = Estimator.evaluate ctx ~batch:16 g in
  let raw_sum =
    List.fold_left (fun acc sp -> acc +. sp.Estimator.span_s) 0. p.Estimator.spans
  in
  Alcotest.(check bool) "overlap only reduces" true
    (p.Estimator.batch_latency_s <= raw_sum +. 1e-12);
  Alcotest.(check bool) "not below compute+io" true
    (p.Estimator.batch_latency_s
    >= List.fold_left
         (fun acc sp -> acc +. max sp.Estimator.compute_s sp.Estimator.io_s)
         0. p.Estimator.spans
       -. 1e-12)

let test_span_cache_consistency () =
  let _, v, ctx = setup "resnet18" Config.chip_m in
  let g = Baselines.layerwise v in
  let direct = Estimator.evaluate ctx ~batch:8 g in
  let cache = Estimator.Span_cache.create ~batch:8 () in
  let cached = Estimator.evaluate_cached ~cache ctx ~batch:8 g in
  Alcotest.(check (float 1e-12)) "same latency" direct.Estimator.batch_latency_s
    cached.Estimator.batch_latency_s;
  Alcotest.(check (float 1e-12)) "same energy" direct.Estimator.energy_j
    cached.Estimator.energy_j;
  Alcotest.(check int) "spans cached" (Partition.partition_count g)
    (Estimator.Span_cache.length cache);
  (* Second call hits the cache with identical results. *)
  let again = Estimator.evaluate_cached ~cache ctx ~batch:8 g in
  Alcotest.(check (float 0.)) "cache stable" cached.Estimator.batch_latency_s
    again.Estimator.batch_latency_s

(* Regression for the keying hazard: span_perf results depend on batch and
   options, so a cache must refuse to serve a differently-configured
   evaluation instead of silently returning stale entries. *)
let test_span_cache_brand_mismatch () =
  let _, v, ctx = setup "resnet18" Config.chip_m in
  let g = Baselines.layerwise v in
  let cache = Estimator.Span_cache.create ~batch:8 () in
  ignore (Estimator.evaluate_cached ~cache ctx ~batch:8 g);
  Alcotest.(check bool) "batch mismatch rejected" true
    (try
       ignore (Estimator.evaluate_cached ~cache ctx ~batch:16 g);
       false
     with Invalid_argument _ -> true);
  let other_options =
    Estimator.Span_cache.create
      ~options:{ Estimator.default_options with Estimator.charge_writes = false }
      ~batch:8 ()
  in
  Alcotest.(check bool) "shared options mismatch rejected" true
    (try
       ignore (Estimator.evaluate_cached ~shared:other_options ~cache ctx ~batch:8 g);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "merge brand mismatch rejected" true
    (try
       Estimator.Span_cache.merge_into cache ~src:other_options;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad batch rejected" true
    (try
       ignore (Estimator.Span_cache.create ~batch:0 ());
       false
     with Invalid_argument _ -> true)

let test_span_cache_options_respected () =
  (* A cache branded with non-default options evaluates under them. *)
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let g = Baselines.greedy v in
  let options = { Estimator.default_options with Estimator.charge_writes = false } in
  let cache = Estimator.Span_cache.create ~options ~batch:16 () in
  let cached = Estimator.evaluate_cached ~cache ctx ~batch:16 g in
  let direct = Estimator.evaluate ~options ctx ~batch:16 g in
  Alcotest.(check (float 1e-12)) "options applied" direct.Estimator.batch_latency_s
    cached.Estimator.batch_latency_s

let test_span_cache_shared_and_merge () =
  let _, v, ctx = setup "resnet18" Config.chip_m in
  let g = Baselines.layerwise v in
  let shared = Estimator.Span_cache.create ~batch:8 () in
  let local = Estimator.Span_cache.create ~batch:8 () in
  let p1 = Estimator.evaluate_cached ~shared ~cache:local ctx ~batch:8 g in
  Alcotest.(check int) "misses recorded locally" (Partition.partition_count g)
    (Estimator.Span_cache.length local);
  Alcotest.(check int) "shared untouched" 0 (Estimator.Span_cache.length shared);
  Estimator.Span_cache.merge_into shared ~src:local;
  Alcotest.(check int) "merged" (Partition.partition_count g)
    (Estimator.Span_cache.length shared);
  (* After the merge a fresh local cache stays empty: every span hits. *)
  let local2 = Estimator.Span_cache.create ~batch:8 () in
  let p2 = Estimator.evaluate_cached ~shared ~cache:local2 ctx ~batch:8 g in
  Alcotest.(check int) "all hits" 0 (Estimator.Span_cache.length local2);
  Alcotest.(check (float 0.)) "identical result" p1.Estimator.batch_latency_s
    p2.Estimator.batch_latency_s

let test_write_time_scales_with_weights () =
  let _, v, ctx = setup "vgg16" Config.chip_s in
  let g = Baselines.greedy v in
  let p = Estimator.evaluate ctx ~batch:1 g in
  (* Total weight fetches must at least cover the model at DRAM bandwidth. *)
  let total_write = List.fold_left (fun acc sp -> acc +. sp.Estimator.write_s) 0. p.Estimator.spans in
  let weights = 65.97 *. 1024. *. 1024. in
  Alcotest.(check bool) "write time >= dram bound" true
    (total_write >= weights /. 6.4e9)

let test_unique_bytes_cover_model_once () =
  let units, v, ctx = setup "resnet18" Config.chip_s in
  let g = Baselines.greedy v in
  let p = Estimator.evaluate ctx ~batch:4 g in
  let unique =
    List.fold_left (fun acc sp -> acc +. sp.Estimator.unique_weight_bytes) 0. p.Estimator.spans
  in
  Alcotest.(check (float 1.)) "sum equals model weights"
    (Unit_gen.span_weight_bytes units 0 (Unit_gen.unit_count units))
    unique

let test_programmed_at_least_unique () =
  let _, v, ctx = setup "squeezenet" Config.chip_s in
  let g = Baselines.greedy v in
  let p = Estimator.evaluate ctx ~batch:4 g in
  List.iter
    (fun sp ->
      Alcotest.(check bool) "replicas only add" true
        (sp.Estimator.programmed_bytes >= sp.Estimator.unique_weight_bytes -. 1e-6))
    p.Estimator.spans

let test_edp_definition () =
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let p = eval ctx v `Greedy in
  Alcotest.(check (float 1e-12)) "edp = e/sample x latency"
    (p.Estimator.energy_per_sample_j *. p.Estimator.batch_latency_s)
    p.Estimator.edp_j_s

let test_energy_components_sum () =
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let p = eval ctx v `Greedy in
  let sum = List.fold_left (fun acc (_, e) -> acc +. e) 0. p.Estimator.energy_components in
  Alcotest.(check (float 1e-9)) "components sum to total" p.Estimator.energy_j sum

let test_more_cores_not_slower_bottleneck () =
  (* Replication 1, same model: a bigger chip never has a slower pipeline
     bottleneck in any single full-model partition. *)
  let _, _, ctx_s = setup "squeezenet" Config.chip_s in
  let units_l = Unit_gen.generate (Compass_nn.Models.squeezenet ()) Config.chip_l in
  let ctx_l = Dataflow.context units_l in
  let m_s = Unit_gen.unit_count (Dataflow.units ctx_s) in
  let m_l = Unit_gen.unit_count units_l in
  let p_s = Estimator.span_perf ctx_s ~batch:1 ~start_:0 ~stop:m_s in
  let p_l = Estimator.span_perf ctx_l ~batch:1 ~start_:0 ~stop:m_l in
  Alcotest.(check bool) "both positive" true
    (p_s.Estimator.bottleneck_s > 0. && p_l.Estimator.bottleneck_s > 0.)

let test_io_s_zero_for_no_io () =
  (* A full on-chip model still loads input and stores output, so io > 0;
     but compute must dominate for squeezenet. *)
  let units, _, ctx = setup "squeezenet" Config.chip_m in
  let sp = Estimator.span_perf ctx ~batch:16 ~start_:0 ~stop:(Unit_gen.unit_count units) in
  Alcotest.(check bool) "io positive" true (sp.Estimator.io_s > 0.);
  Alcotest.(check bool) "compute bound" true (sp.Estimator.compute_s > sp.Estimator.io_s)

let test_invalid_args () =
  let _, v, ctx = setup "lenet5" Config.chip_s in
  Alcotest.(check bool) "batch 0" true
    (try
       ignore (Estimator.evaluate ctx ~batch:0 (Baselines.greedy v));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "wrong cover" true
    (try
       ignore (Estimator.evaluate ctx ~batch:1 (Partition.singleton 1));
       Validity.size v = 1
     with Invalid_argument _ -> true)

let test_model_options () =
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let g = Baselines.greedy v in
  let eval options = Estimator.evaluate ~options ctx ~batch:16 g in
  let full = eval Estimator.default_options in
  let no_overlap =
    eval { Estimator.default_options with Estimator.write_overlap = false }
  in
  let no_buffer =
    eval { Estimator.default_options with Estimator.onchip_buffering = false }
  in
  let free_writes =
    eval { Estimator.default_options with Estimator.charge_writes = false }
  in
  Alcotest.(check bool) "overlap only helps" true
    (full.Estimator.batch_latency_s <= no_overlap.Estimator.batch_latency_s +. 1e-12);
  Alcotest.(check bool) "buffering never increases dram traffic" true
    (List.fold_left (fun a sp -> a +. sp.Estimator.io_dram_bytes) 0. full.Estimator.spans
    <= List.fold_left (fun a sp -> a +. sp.Estimator.io_dram_bytes) 0.
         no_buffer.Estimator.spans
       +. 1e-9);
  Alcotest.(check bool) "free writes strictly faster" true
    (free_writes.Estimator.batch_latency_s < full.Estimator.batch_latency_s);
  List.iter
    (fun sp -> Alcotest.(check (float 0.)) "no write time" 0. sp.Estimator.write_s)
    free_writes.Estimator.spans

(* Pipeline_sim: independent validation of fill + B*bottleneck. *)

let test_pipeline_sim_agreement () =
  List.iter
    (fun (name, chip) ->
      let _, v, ctx = setup name chip in
      let g = Baselines.greedy v in
      List.iteri
        (fun i (s : Partition.span) ->
          if i < 3 then
            let r =
              Pipeline_sim.estimator_agreement ctx ~batch:4 ~start_:s.Partition.start_
                ~stop:s.Partition.stop
            in
            Alcotest.(check bool)
              (Printf.sprintf "%s P%d agreement %.3f" name i r)
              true
              (r > 0.9 && r < 1.3))
        (Partition.spans g))
    [ ("squeezenet", Config.chip_s); ("resnet18", Config.chip_s); ("lenet5", Config.chip_s) ]

let test_pipeline_sim_basics () =
  (* Two-stage chain: consumer waits for matching producer progress. *)
  let stages =
    [
      { Pipeline_sim.node = 0; items = 4; item_time_s = 1.; producers = [] };
      { Pipeline_sim.node = 1; items = 4; item_time_s = 2.; producers = [ 0 ] };
    ]
  in
  let r = Pipeline_sim.simulate ~batch:1 stages in
  (* Stage 1 is the bottleneck: 4 items x 2 s, starting after item 1 of the
     producer (~1s) -> makespan near 9-10 s but never below the busy time. *)
  Alcotest.(check int) "bottleneck" 1 r.Pipeline_sim.bottleneck_index;
  Alcotest.(check bool) "at least bottleneck busy" true (r.Pipeline_sim.makespan_s >= 8.);
  Alcotest.(check bool) "at most serial" true (r.Pipeline_sim.makespan_s <= 12.);
  Alcotest.(check (float 1e-9)) "busy accounting" 8. r.Pipeline_sim.stage_busy_s.(1)

let test_pipeline_sim_guards () =
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Pipeline_sim.simulate ~batch:1 []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "forward producer rejected" true
    (try
       ignore
         (Pipeline_sim.simulate ~batch:1
            [ { Pipeline_sim.node = 0; items = 1; item_time_s = 1.; producers = [ 0 ] } ]);
       false
     with Invalid_argument _ -> true)

(* Fitness *)

let test_objective_parsing () =
  Alcotest.(check bool) "latency" true
    (Fitness.objective_of_string "Throughput" = Fitness.Latency);
  Alcotest.(check bool) "energy" true (Fitness.objective_of_string "power" = Fitness.Energy);
  Alcotest.(check bool) "edp" true (Fitness.objective_of_string "EDP" = Fitness.Edp);
  Alcotest.(check bool) "unknown" true
    (try
       ignore (Fitness.objective_of_string "speed");
       false
     with Invalid_argument _ -> true)

let test_group_fitness_is_sum () =
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let p = eval ctx v `Greedy in
  let sum =
    List.fold_left
      (fun acc sp -> acc +. Fitness.span_fitness Fitness.Latency sp)
      0. p.Estimator.spans
  in
  Alcotest.(check (float 1e-12)) "PGF sums spans" sum
    (Fitness.group_fitness Fitness.Latency p)

let test_unit_profile_covers_units () =
  let units, v, ctx = setup "resnet18" Config.chip_s in
  let p = eval ctx v `Greedy in
  let m = Unit_gen.unit_count units in
  let profile = Fitness.unit_fitness_profile Fitness.Latency p ~total_units:m in
  Alcotest.(check int) "length" m (Array.length profile);
  Array.iter (fun x -> Alcotest.(check bool) "positive" true (x > 0.)) profile

let test_partition_scores_positive () =
  let units, v, ctx = setup "resnet18" Config.chip_s in
  let p = eval ctx v `Greedy in
  let m = Unit_gen.unit_count units in
  let profile = Fitness.unit_fitness_profile Fitness.Latency p ~total_units:m in
  let prefix = Array.make (m + 1) 0. in
  Array.iteri (fun i x -> prefix.(i + 1) <- prefix.(i) +. x) profile;
  let scores = Fitness.partition_scores ~population_profile:prefix Fitness.Latency p in
  Alcotest.(check int) "one per partition" (List.length p.Estimator.spans)
    (Array.length scores);
  (* With the population = this single individual, every score is 1. *)
  Array.iter (fun r -> Alcotest.(check (float 1e-9)) "self score 1" 1. r) scores

(* Property: estimated latency monotone under merge (fewer write phases
   never hurt when IO is free... not universally true), so instead check
   robustness: random valid groups always produce finite positive values. *)

let prop_random_groups_finite =
  QCheck.Test.make ~name:"random groups evaluate to finite values" ~count:30
    QCheck.small_int (fun seed ->
      let _, v, ctx = setup "resnet18" Config.chip_s in
      let g = Validity.random_group (Compass_util.Rng.create seed) v in
      let p = Estimator.evaluate ctx ~batch:16 g in
      let ok x = Float.is_finite x && x > 0. in
      ok p.Estimator.batch_latency_s && ok p.Estimator.energy_j && ok p.Estimator.edp_j_s)

let () =
  Alcotest.run "estimator"
    [
      ( "latency",
        [
          Alcotest.test_case "positive outputs" `Quick test_positive_outputs;
          Alcotest.test_case "monotone in batch" `Quick test_latency_monotone_in_batch;
          Alcotest.test_case "overlap bounds" `Quick
            test_group_latency_sums_spans_with_overlap;
          Alcotest.test_case "span cache consistent" `Quick test_span_cache_consistency;
          Alcotest.test_case "span cache brand mismatch" `Quick
            test_span_cache_brand_mismatch;
          Alcotest.test_case "span cache options respected" `Quick
            test_span_cache_options_respected;
          Alcotest.test_case "span cache shared + merge" `Quick
            test_span_cache_shared_and_merge;
          Alcotest.test_case "write time bound" `Quick test_write_time_scales_with_weights;
          Alcotest.test_case "bottlenecks positive" `Quick
            test_more_cores_not_slower_bottleneck;
          Alcotest.test_case "io behaviour" `Quick test_io_s_zero_for_no_io;
          Alcotest.test_case "invalid args" `Quick test_invalid_args;
          Alcotest.test_case "model options" `Quick test_model_options;
          Alcotest.test_case "pipeline sim agreement" `Quick test_pipeline_sim_agreement;
          Alcotest.test_case "pipeline sim basics" `Quick test_pipeline_sim_basics;
          Alcotest.test_case "pipeline sim guards" `Quick test_pipeline_sim_guards;
          QCheck_alcotest.to_alcotest prop_random_groups_finite;
        ] );
      ( "energy",
        [
          Alcotest.test_case "per-sample amortization" `Quick
            test_energy_per_sample_decreases_with_batch;
          Alcotest.test_case "unique bytes once" `Quick test_unique_bytes_cover_model_once;
          Alcotest.test_case "programmed >= unique" `Quick test_programmed_at_least_unique;
          Alcotest.test_case "edp definition" `Quick test_edp_definition;
          Alcotest.test_case "components sum" `Quick test_energy_components_sum;
        ] );
      ( "fitness",
        [
          Alcotest.test_case "objective parsing" `Quick test_objective_parsing;
          Alcotest.test_case "PGF sums spans" `Quick test_group_fitness_is_sum;
          Alcotest.test_case "unit profile covers" `Quick test_unit_profile_covers_units;
          Alcotest.test_case "partition scores" `Quick test_partition_scores_positive;
        ] );
    ]
