(* Tests for the self-healing execution stack: ABFT checksum detection
   (zero false negatives on single-cell faults, zero false positives on
   clean blocks), deterministic fault-site realization, the bounded
   retry -> remap -> degrade escalation of [Recovery.run], transient
   strikes in the chip simulator, and the regression guarantee that the
   whole subsystem is invisible while disabled (byte-identical plans,
   checkpoints and schedules). *)

open Compass_core
open Compass_arch

let bits = 4
let q = Compass_nn.Quant.levels bits

let mpc chip = chip.Config.core.Config.macros_per_core

let faults_of spec ~seed chip =
  Fault.of_string spec ~seed ~cores:chip.Config.cores ~macros_per_core:(mpc chip)

(* ABFT properties over random code blocks *)

let block_gen =
  QCheck.Gen.(
    int_range 1 40 >>= fun rows ->
    int_range 1 40 >>= fun cols ->
    array_size (return (rows * cols)) (int_range (-q) q) >>= fun codes ->
    return (rows, cols, codes))

let kind_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun v -> Inject.Stuck_at v) (int_range (-q) q);
        map (fun b -> Inject.Bit_flip b) (int_range 0 (bits - 1));
        map (fun up -> Inject.Drift (if up then 1 else -1)) bool;
      ])

(* Zero false positives: a clean block never miscompares.  1000 runs as
   the issue demands -- integer equality has no tolerance to drift. *)
let prop_abft_zero_false_positives =
  QCheck.Test.make ~name:"clean blocks never miscompare" ~count:1000
    (QCheck.make block_gen) (fun (rows, cols, codes) ->
      let checksum = Abft.checksum_row ~rows ~cols codes in
      Abft.verify ~unit_index:0 ~rows ~cols ~codes ~checksum = [])

(* Zero false negatives: any single corrupted cell is detected, and the
   mismatch localizes the corrupted column. *)
let prop_abft_detects_single_cell =
  QCheck.Test.make ~name:"every single-cell fault detected" ~count:1000
    (QCheck.make
       QCheck.Gen.(
         block_gen >>= fun (rows, cols, codes) ->
         int_range 0 ((rows * cols) - 1) >>= fun cell ->
         kind_gen >>= fun kind -> return (rows, cols, codes, cell, kind)))
    (fun (rows, cols, codes, cell, kind) ->
      let checksum = Abft.checksum_row ~rows ~cols codes in
      let corrupted = Array.copy codes in
      corrupted.(cell) <- Inject.corrupt_code ~bits kind corrupted.(cell);
      match Abft.verify ~unit_index:3 ~rows ~cols ~codes:corrupted ~checksum with
      | [ m ] -> m.Abft.unit_index = 3 && m.Abft.col = cell / rows
      | _ -> false)

let test_corrupt_code_always_differs () =
  (* The observability guarantee behind "zero false negatives": no kind
     maps any representable code to itself. *)
  for code = -q to q do
    for b = 0 to bits - 1 do
      Alcotest.(check bool) "bit flip differs" true
        (Inject.corrupt_code ~bits (Inject.Bit_flip b) code <> code)
    done;
    List.iter
      (fun d ->
        Alcotest.(check bool) "drift differs" true
          (Inject.corrupt_code ~bits (Inject.Drift d) code <> code))
      [ -1; 1 ];
    for v = -q to q do
      Alcotest.(check bool) "stuck-at differs" true
        (Inject.corrupt_code ~bits (Inject.Stuck_at v) code <> code)
    done
  done

(* Fault-site realization *)

let lenet_units () =
  Unit_gen.generate (Compass_nn.Models.by_name "lenet5") Config.chip_s

let test_realize_deterministic_and_distinct () =
  let units = lenet_units () in
  let chip = Config.chip_s in
  let faults = faults_of "transient:3;flip:2;drift:0.0001" ~seed:0 chip in
  let sites = Inject.realize units ~faults ~seed:5 in
  let again = Inject.realize units ~faults ~seed:5 in
  Alcotest.(check bool) "same seed, same sites" true (sites = again);
  let other = Inject.realize units ~faults ~seed:6 in
  Alcotest.(check bool) "different seed, different sites" true (sites <> other);
  let key (s : Inject.site) = (s.Inject.unit_index, s.Inject.row, s.Inject.col) in
  let keys = List.map key sites in
  Alcotest.(check int) "all cells distinct" (List.length keys)
    (List.length (List.sort_uniq compare keys));
  let transients = List.filter (fun s -> s.Inject.transient) sites in
  Alcotest.(check int) "transient count" 3 (List.length transients);
  Alcotest.(check int) "site count" (3 + 2 + Inject.drift_count units (Some 0.0001))
    (List.length sites)

(* Recovery engine *)

let plan_weights_input () =
  let chip = Config.chip_s in
  let model = Compass_nn.Models.by_name "lenet5" in
  let plan = Compiler.compile ~model ~chip ~batch:1 Compiler.Greedy in
  let weights = Compass_nn.Executor.random_weights model in
  let input = Compass_nn.Executor.random_input model in
  (chip, plan, weights, input)

let test_clean_run_reports_clean () =
  let _, plan, weights, input = plan_weights_input () in
  let r = Recovery.run ~weights ~input plan in
  Alcotest.(check bool) "outcome clean" true (r.Recovery.outcome = Recovery.Clean);
  Alcotest.(check int) "no detections" 0 r.Recovery.detections;
  Alcotest.(check bool) "checks ran" true (r.Recovery.checks > 0);
  Alcotest.(check bool) "bit identical" true r.Recovery.bit_identical

(* The acceptance criterion: under any single injected persistent fault,
   the recovered execution is bit-identical to the fault-free run. *)
let prop_single_persistent_fault_heals =
  let chip, plan, weights, input = plan_weights_input () in
  QCheck.Test.make ~name:"single persistent fault heals bit-identically" ~count:12
    (QCheck.make QCheck.Gen.(pair (int_bound 10_000) bool))
    (fun (seed, use_drift) ->
      let spec = if use_drift then "drift:1e-09" else "flip:1" in
      let faults = faults_of spec ~seed:0 chip in
      let r = Recovery.run ~seed ~faults ~weights ~input plan in
      r.Recovery.outcome = Recovery.Healed
      && r.Recovery.bit_identical && r.Recovery.detections >= 1
      && r.Recovery.remaps >= 1)

let test_transient_clears_on_retry () =
  let chip, plan, weights, input = plan_weights_input () in
  let faults = faults_of "transient:2" ~seed:0 chip in
  let r = Recovery.run ~seed:42 ~faults ~weights ~input plan in
  Alcotest.(check bool) "healed" true (r.Recovery.outcome = Recovery.Healed);
  Alcotest.(check bool) "bit identical" true r.Recovery.bit_identical;
  Alcotest.(check bool) "retried" true (r.Recovery.retries >= 1);
  Alcotest.(check int) "no remap needed" 0 r.Recovery.remaps;
  Alcotest.(check bool) "backoff accounted" true (r.Recovery.backoff_total_s > 0.)

(* Satellite regression: recovery backoff is *simulated* — accumulated
   in [backoff_total_s] and offered to the [sleep] hook — and the
   default policy never blocks on the wall clock.  Seconds of reported
   backoff must cost a small fraction of that in real time, and an
   injected hook must see exactly the accumulated intervals. *)
let test_backoff_simulated_not_slept () =
  let chip, plan, weights, input = plan_weights_input () in
  let faults = faults_of "transient:2" ~seed:0 chip in
  let slept = ref [] in
  let policy =
    {
      Recovery.default_policy with
      Recovery.backoff_s = 2.0;
      sleep = (fun s -> slept := s :: !slept);
    }
  in
  let t0 = Unix.gettimeofday () in
  let r = Recovery.run ~policy ~seed:42 ~faults ~weights ~input plan in
  let wall = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "retried" true (r.Recovery.retries >= 1);
  Alcotest.(check (float 1e-9)) "hook saw every interval" r.Recovery.backoff_total_s
    (List.fold_left ( +. ) 0. !slept);
  Alcotest.(check bool) "substantial simulated backoff" true
    (r.Recovery.backoff_total_s >= 2.0);
  Alcotest.(check bool) "wall-time-free by default" true
    (wall < r.Recovery.backoff_total_s /. 2.)

let test_remap_disabled_degrades () =
  let chip, plan, weights, input = plan_weights_input () in
  let faults = faults_of "flip:1" ~seed:0 chip in
  let policy = { Recovery.default_policy with Recovery.allow_remap = false } in
  let r = Recovery.run ~policy ~seed:42 ~faults ~weights ~input plan in
  Alcotest.(check bool) "degraded" true (r.Recovery.outcome = Recovery.Degraded_output);
  Alcotest.(check int) "no remaps" 0 r.Recovery.remaps;
  Alcotest.(check bool) "flagged layers" true (r.Recovery.degraded_layers >= 1)

let test_expired_budget_degrades () =
  let chip, plan, weights, input = plan_weights_input () in
  let faults = faults_of "flip:1" ~seed:0 chip in
  let budget = Compass_util.Budget.of_deadline 0. in
  let policy = { Recovery.default_policy with Recovery.budget = Some budget } in
  let r = Recovery.run ~policy ~seed:42 ~faults ~weights ~input plan in
  Alcotest.(check bool) "degrades instead of blocking" true
    (r.Recovery.outcome = Recovery.Degraded_output);
  Alcotest.(check int) "no retries after expiry" 0 r.Recovery.retries;
  Alcotest.(check int) "no remaps after expiry" 0 r.Recovery.remaps

let test_retire_preserves_scenario () =
  let chip = Config.chip_s in
  let faults = faults_of "degraded:1=4;endurance:1e6;flip:2" ~seed:0 chip in
  let f = Recovery.retire (Some faults) ~cores:chip.Config.cores 3 in
  Alcotest.(check bool) "victim dead" true (Fault.status f 3 = Fault.Dead);
  Alcotest.(check bool) "degradation kept" true (Fault.status f 1 = Fault.Degraded 4);
  Alcotest.(check int) "flips kept" 2 (Fault.weight_flips f);
  Alcotest.(check bool) "endurance kept" true (Fault.endurance_budget f = Some 1e6);
  let fresh = Recovery.retire None ~cores:4 0 in
  Alcotest.(check bool) "from healthy" true (Fault.status fresh 0 = Fault.Dead)

(* Transient strikes in the chip simulator *)

let test_sim_transient_detected_and_retried () =
  let chip = Config.chip_s in
  let model = Compass_nn.Models.by_name "lenet5" in
  let plan = Compiler.compile ~model ~chip ~batch:4 Compiler.Greedy in
  let sched = Compiler.schedule ~abft:true plan in
  let programs = sched.Scheduler.programs in
  let baseline = Compass_isa.Sim.run chip programs in
  (* Strike a core that runs Check instructions, early in the run. *)
  let victim =
    match
      List.find_opt
        (fun p ->
          List.exists
            (function Compass_isa.Instr.Check _ -> true | _ -> false)
            p.Compass_isa.Program.instrs)
        programs
    with
    | Some p -> p.Compass_isa.Program.core_id
    | None -> Alcotest.fail "abft schedule emitted no Check instructions"
  in
  let events = [ Compass_isa.Sim.transient ~at_s:1e-6 ~victim ] in
  let struck = Compass_isa.Sim.run ~fault_events:events chip programs in
  Alcotest.(check bool) "checks ran" true (struck.Compass_isa.Sim.checks_run > 0);
  Alcotest.(check int) "strike detected" 1 struck.Compass_isa.Sim.detections;
  Alcotest.(check int) "one MVM retried" 1 struck.Compass_isa.Sim.retried_mvms;
  Alcotest.(check bool) "retry costs time" true
    (struck.Compass_isa.Sim.retry_time_s > 0.);
  (* The penalty lands on the victim core; it may hide under another
     core's critical path, but the chip never finishes faster. *)
  Alcotest.(check bool) "makespan monotone" true
    (struck.Compass_isa.Sim.makespan_s >= baseline.Compass_isa.Sim.makespan_s);
  (* Without ABFT checks the strike goes undetected: timing unchanged. *)
  let plain = Compiler.schedule plan in
  let blind =
    Compass_isa.Sim.run ~fault_events:events chip plain.Scheduler.programs
  in
  Alcotest.(check int) "undetected without checks" 0 blind.Compass_isa.Sim.detections

let test_sim_malformed_events_located () =
  let chip = Config.chip_s in
  let model = Compass_nn.Models.by_name "lenet5" in
  let plan = Compiler.compile ~model ~chip ~batch:1 Compiler.Greedy in
  let programs = (Compiler.schedule plan).Scheduler.programs in
  let expect_msg events want =
    match Compass_isa.Sim.run ~fault_events:events chip programs with
    | _ -> Alcotest.failf "event list accepted; wanted %S" want
    | exception Invalid_argument msg ->
      Alcotest.(check string) "located diagnostic" want msg
  in
  expect_msg
    [
      Compass_isa.Sim.transient ~at_s:1. ~victim:1;
      Compass_isa.Sim.transient ~at_s:(-2.) ~victim:0;
    ]
    "Sim.run: fault event #1 has negative time -2 s";
  expect_msg
    [ Compass_isa.Sim.fail_stop ~at_s:0.5 ~victim:99 ]
    (Printf.sprintf "Sim.run: fault event #0 targets core 99 but the chip has cores 0..%d"
       (chip.Config.cores - 1))

(* ABFT overhead: predicted vs simulated, within the differential bound *)

let test_abft_differential () =
  List.iter
    (fun model_name ->
      let model = Compass_nn.Models.by_name model_name in
      let chip = Config.chip_s in
      let plan = Compiler.compile ~model ~chip ~batch:8 Compiler.Greedy in
      let m = Compiler.measure ~abft:true plan in
      let options = { Estimator.default_options with Estimator.abft = true } in
      let perf = Estimator.evaluate ~options plan.Compiler.ctx ~batch:8 plan.Compiler.group in
      let est = perf.Estimator.batch_latency_s in
      let sim = m.Compiler.sim.Compass_isa.Sim.makespan_s in
      let ratio = sim /. est in
      if not (ratio >= 0.85 && ratio <= 1.45) then
        Alcotest.failf "%s: abft sim %.3e vs est %.3e (ratio %.3f)" model_name sim est
          ratio;
      let check_s = List.fold_left (fun a s -> a +. s.Estimator.check_s) 0. perf.Estimator.spans in
      Alcotest.(check bool) "estimator charges checks" true (check_s > 0.))
    [ "lenet5"; "tiny_mlp"; "tiny_resnet" ]

(* Disabled means invisible: plans, checkpoints and schedules are
   byte-identical with the recovery subsystem never (or already) used. *)

let test_disabled_is_byte_identical () =
  let chip = Config.chip_s in
  let model = Compass_nn.Models.by_name "lenet5" in
  let quick = { Ga.quick_params with Ga.seed = 7; Ga.jobs = 1 } in
  let ck_dir = Filename.temp_file "compass_recovery" "" in
  Sys.remove ck_dir;
  Unix.mkdir ck_dir 0o700;
  Fun.protect ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat ck_dir f)) (Sys.readdir ck_dir);
      Unix.rmdir ck_dir)
  @@ fun () ->
  let compile_once tag =
    let path = Filename.concat ck_dir (tag ^ ".ck") in
    let plan =
      Compiler.compile ~ga_params:quick
        ~on_checkpoint:(fun ck -> Plan_text.save_checkpoint path ck)
        ~model ~chip ~batch:4 Compiler.Compass
    in
    let read f =
      let ic = open_in_bin f in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    in
    (Plan_text.to_string plan, read path, plan)
  in
  let plan_a, ck_a, plan = compile_once "before" in
  (* Exercise the whole recovery stack between the two compilations. *)
  let weights = Compass_nn.Executor.random_weights model in
  let input = Compass_nn.Executor.random_input model in
  let faults = faults_of "flip:1" ~seed:3 chip in
  let r = Recovery.run ~seed:42 ~faults ~weights ~input plan in
  Alcotest.(check bool) "interleaved recovery healed" true r.Recovery.bit_identical;
  let plan_b, ck_b, _ = compile_once "after" in
  Alcotest.(check string) "plan bytes identical" plan_a plan_b;
  Alcotest.(check string) "checkpoint bytes identical" ck_a ck_b;
  (* And a default schedule carries no Check instructions at all. *)
  let sched = Compiler.schedule plan in
  List.iter
    (fun p ->
      List.iter
        (function
          | Compass_isa.Instr.Check _ -> Alcotest.fail "Check emitted with abft off"
          | _ -> ())
        p.Compass_isa.Program.instrs)
    sched.Scheduler.programs

let () =
  Alcotest.run "recovery"
    [
      ( "abft",
        [
          QCheck_alcotest.to_alcotest prop_abft_zero_false_positives;
          QCheck_alcotest.to_alcotest prop_abft_detects_single_cell;
          Alcotest.test_case "corruption observable" `Quick test_corrupt_code_always_differs;
        ] );
      ( "injection",
        [
          Alcotest.test_case "deterministic distinct sites" `Quick
            test_realize_deterministic_and_distinct;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "clean run" `Quick test_clean_run_reports_clean;
          QCheck_alcotest.to_alcotest prop_single_persistent_fault_heals;
          Alcotest.test_case "transient retry" `Quick test_transient_clears_on_retry;
          Alcotest.test_case "backoff simulated not slept" `Quick
            test_backoff_simulated_not_slept;
          Alcotest.test_case "remap disabled" `Quick test_remap_disabled_degrades;
          Alcotest.test_case "expired budget" `Quick test_expired_budget_degrades;
          Alcotest.test_case "retire" `Quick test_retire_preserves_scenario;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "transient strike" `Quick test_sim_transient_detected_and_retried;
          Alcotest.test_case "malformed events" `Quick test_sim_malformed_events_located;
        ] );
      ( "regression",
        [
          Alcotest.test_case "abft differential" `Quick test_abft_differential;
          Alcotest.test_case "disabled is invisible" `Quick test_disabled_is_byte_identical;
        ] );
    ]
