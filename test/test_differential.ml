(* Differential testing: the analytic estimator against the ISA-level
   chip simulator.

   For every small test net and every partitioning scheme, the plan is
   lowered to per-core instruction programs and executed on the
   event-driven simulator; the simulated makespan must agree with the
   estimator's batch latency within a stated tolerance.  The two models
   are written independently (closed-form pipeline arithmetic vs
   event-driven bus/DRAM/barrier simulation), so agreement here catches
   regressions in either.

   Tolerance: the simulator adds scheduling effects the closed form
   elides (barrier waits, bus grant order, chunked pipelining), so it
   usually lands a few percent high — up to ~1.33x on many-partition
   layerwise plans of tiny nets where per-partition overheads dominate.
   We assert sim/est in [0.85, 1.45]. *)

open Compass_core

let lo_tolerance = 0.85
let hi_tolerance = 1.45

let small_nets = [ "lenet5"; "tiny_mlp"; "tiny_resnet" ]

let check_agreement ~model_name ~batch scheme =
  let model = Compass_nn.Models.by_name model_name in
  let chip = Compass_arch.Config.chip_s in
  let plan =
    Compiler.compile
      ~ga_params:{ Ga.quick_params with Ga.seed = 7; Ga.jobs = 1 }
      ~model ~chip ~batch scheme
  in
  let m = Compiler.measure plan in
  let est = plan.Compiler.perf.Estimator.batch_latency_s in
  let sim = m.Compiler.sim.Compass_isa.Sim.makespan_s in
  let ratio = sim /. est in
  if not (ratio >= lo_tolerance && ratio <= hi_tolerance) then
    Alcotest.failf
      "%s/%s batch %d: simulator %.6e s vs estimator %.6e s (ratio %.3f outside \
       [%.2f, %.2f])@.estimated per-span breakdown:@.%a"
      model_name
      (Compiler.scheme_to_string scheme)
      batch sim est ratio lo_tolerance hi_tolerance
      (Estimator.pp_breakdown plan.Compiler.model)
      plan.Compiler.perf

let test_scheme scheme () =
  List.iter (fun model_name -> check_agreement ~model_name ~batch:8 scheme) small_nets

let test_batch_sizes () =
  (* Agreement must hold as the batch scales, not just at one point. *)
  List.iter
    (fun batch -> check_agreement ~model_name:"lenet5" ~batch Compiler.Layerwise)
    [ 1; 4; 16 ]

let test_simulator_accounts_all_weights () =
  (* Cross-check a second invariant pair: the simulator's weight traffic
     equals the estimator's unique weight bytes summed over spans. *)
  List.iter
    (fun model_name ->
      let model = Compass_nn.Models.by_name model_name in
      let chip = Compass_arch.Config.chip_s in
      let plan = Compiler.compile ~model ~chip ~batch:4 Compiler.Layerwise in
      let m = Compiler.measure plan in
      let est_bytes =
        List.fold_left
          (fun acc sp -> acc +. sp.Estimator.unique_weight_bytes)
          0. plan.Compiler.perf.Estimator.spans
      in
      Alcotest.(check (float 1.))
        (model_name ^ " weight bytes")
        est_bytes m.Compiler.sim.Compass_isa.Sim.weight_bytes)
    small_nets

let () =
  Alcotest.run "differential"
    [
      ( "estimator vs simulator",
        [
          Alcotest.test_case "compass plans" `Quick (test_scheme Compiler.Compass);
          Alcotest.test_case "greedy plans" `Quick (test_scheme Compiler.Greedy);
          Alcotest.test_case "layerwise plans" `Quick (test_scheme Compiler.Layerwise);
          Alcotest.test_case "batch sweep" `Quick test_batch_sizes;
          Alcotest.test_case "weight traffic" `Quick test_simulator_accounts_all_weights;
        ] );
    ]
