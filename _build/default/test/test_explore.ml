(* Tests for the design-space exploration layer. *)

open Compass_core
open Compass_arch

let points =
  lazy
    (Explore.sweep ~ga_params:Ga.quick_params
       ~model:(Compass_nn.Models.squeezenet ())
       ~chips:[ Config.chip_s; Config.chip_m ]
       ~batches:[ 1; 8 ] ())

let test_sweep_size () =
  Alcotest.(check int) "2 chips x 2 batches" 4 (List.length (Lazy.force points))

let test_sweep_order () =
  match Lazy.force points with
  | [ a; b; c; d ] ->
    Alcotest.(check string) "chips major" "S" a.Explore.chip.Config.label;
    Alcotest.(check int) "batch minor" 1 a.Explore.batch;
    Alcotest.(check int) "batch second" 8 b.Explore.batch;
    Alcotest.(check string) "then M" "M" c.Explore.chip.Config.label;
    Alcotest.(check int) "M batch 8" 8 d.Explore.batch
  | _ -> Alcotest.fail "unexpected sweep size"

let test_points_positive () =
  List.iter
    (fun p ->
      Alcotest.(check bool) "throughput" true (p.Explore.throughput_per_s > 0.);
      Alcotest.(check bool) "energy" true (p.Explore.energy_per_sample_j > 0.);
      Alcotest.(check bool) "capacity" true (p.Explore.capacity_mb > 0.))
    (Lazy.force points)

let test_pareto_subset_nondominated () =
  let all = Lazy.force points in
  let frontier = Explore.pareto all in
  Alcotest.(check bool) "non-empty" true (frontier <> []);
  Alcotest.(check bool) "subset" true
    (List.for_all (fun p -> List.memq p all) frontier);
  (* No frontier point dominates another. *)
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          if p != q then
            Alcotest.(check bool) "mutually non-dominated" false
              (p.Explore.throughput_per_s >= q.Explore.throughput_per_s
              && p.Explore.energy_per_sample_j <= q.Explore.energy_per_sample_j
              && (p.Explore.throughput_per_s > q.Explore.throughput_per_s
                 || p.Explore.energy_per_sample_j < q.Explore.energy_per_sample_j)))
        frontier)
    frontier

let test_pareto_sorted_by_energy () =
  let frontier = Explore.pareto (Lazy.force points) in
  let energies = List.map (fun p -> p.Explore.energy_per_sample_j) frontier in
  Alcotest.(check (list (float 0.))) "ascending" (List.sort compare energies) energies

let test_cheapest_meeting () =
  let all = Lazy.force points in
  let best = List.fold_left (fun acc p -> max acc p.Explore.throughput_per_s) 0. all in
  (match Explore.cheapest_meeting ~throughput_per_s:(best /. 2.) all with
  | Some p ->
    Alcotest.(check bool) "meets target" true (p.Explore.throughput_per_s >= best /. 2.)
  | None -> Alcotest.fail "a point must qualify");
  Alcotest.(check bool) "unreachable target" true
    (Explore.cheapest_meeting ~throughput_per_s:(best *. 10.) all = None)

let test_cheapest_prefers_small_chip () =
  let all = Lazy.force points in
  (* With a trivial target every point qualifies; the smallest chip wins. *)
  match Explore.cheapest_meeting ~throughput_per_s:1. all with
  | Some p -> Alcotest.(check string) "chip S preferred" "S" p.Explore.chip.Config.label
  | None -> Alcotest.fail "must find a point"

let test_points_table () =
  Alcotest.(check int) "one row per point" 4
    (Compass_util.Table.row_count (Explore.points_table (Lazy.force points)))

let () =
  Alcotest.run "explore"
    [
      ( "sweep",
        [
          Alcotest.test_case "size" `Quick test_sweep_size;
          Alcotest.test_case "order" `Quick test_sweep_order;
          Alcotest.test_case "positive metrics" `Quick test_points_positive;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "non-dominated subset" `Quick test_pareto_subset_nondominated;
          Alcotest.test_case "sorted by energy" `Quick test_pareto_sorted_by_energy;
          Alcotest.test_case "cheapest meeting" `Quick test_cheapest_meeting;
          Alcotest.test_case "prefers small chip" `Quick test_cheapest_prefers_small_chip;
          Alcotest.test_case "table" `Quick test_points_table;
        ] );
    ]
