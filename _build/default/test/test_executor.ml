(* Tests for the reference tensor operators, the functional executor,
   quantization and partitioned-execution equivalence. *)

open Compass_nn
open Compass_core

let fm ~c ~h ~w data = Tensor.of_array (Shape.feature_map ~channels:c ~height:h ~width:w) data

(* Tensor operators on hand-checked examples. *)

let test_conv_identity_kernel () =
  (* A centered 1 in a 3x3 kernel with same padding is the identity. *)
  let input = fm ~c:1 ~h:3 ~w:3 [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9. |] in
  let conv =
    match Layer.conv ~in_channels:1 ~out_channels:1 3 with
    | Layer.Conv c -> c
    | _ -> assert false
  in
  let weights = [| 0.; 0.; 0.; 0.; 1.; 0.; 0.; 0.; 0. |] in
  let out = Tensor.conv2d conv ~weights input in
  Alcotest.(check bool) "identity" true (Tensor.equal input out)

let test_conv_sum_kernel () =
  (* An all-ones 3x3 kernel computes padded neighbourhood sums. *)
  let input = fm ~c:1 ~h:2 ~w:2 [| 1.; 2.; 3.; 4. |] in
  let conv =
    match Layer.conv ~in_channels:1 ~out_channels:1 3 with
    | Layer.Conv c -> c
    | _ -> assert false
  in
  let out = Tensor.conv2d conv ~weights:(Array.make 9 1.) input in
  Alcotest.(check (float 1e-9)) "corner sums all" 10. (Tensor.get out 0);
  Alcotest.(check (float 1e-9)) "all corners equal" 10. (Tensor.get out 3)

let test_conv_stride_downsamples () =
  let input = fm ~c:1 ~h:4 ~w:4 (Array.init 16 float_of_int) in
  let conv =
    match Layer.conv ~stride:2 ~padding:0 ~in_channels:1 ~out_channels:1 1 with
    | Layer.Conv c -> c
    | _ -> assert false
  in
  let out = Tensor.conv2d conv ~weights:[| 1. |] input in
  Alcotest.(check bool) "2x2 output" true
    (Shape.equal (Tensor.shape out) (Shape.feature_map ~channels:1 ~height:2 ~width:2));
  Alcotest.(check (float 1e-9)) "picks strided corners" 10. (Tensor.get out 3);
  Alcotest.(check (float 1e-9)) "top-right corner" 2. (Tensor.get out 1)

let test_conv_multichannel () =
  (* Two input channels summed by a 1x1 kernel of ones. *)
  let input = fm ~c:2 ~h:1 ~w:1 [| 3.; 4. |] in
  let conv =
    match Layer.conv ~padding:0 ~in_channels:2 ~out_channels:1 1 with
    | Layer.Conv c -> c
    | _ -> assert false
  in
  let out = Tensor.conv2d conv ~weights:[| 1.; 1. |] input in
  Alcotest.(check (float 1e-9)) "channel sum" 7. (Tensor.get out 0)

let test_linear () =
  let input = Tensor.of_array (Shape.vector 3) [| 1.; 2.; 3. |] in
  let weights = [| 1.; 0.; 0.; 0.; 1.; 1. |] in
  let out = Tensor.linear ~in_features:3 ~out_features:2 ~weights input in
  Alcotest.(check (float 1e-9)) "row 0" 1. (Tensor.get out 0);
  Alcotest.(check (float 1e-9)) "row 1" 5. (Tensor.get out 1)

let test_pools () =
  let input = fm ~c:1 ~h:2 ~w:2 [| 1.; 2.; 3.; 4. |] in
  let mx = Tensor.max_pool ~kernel:2 ~stride:2 ~padding:0 input in
  let av = Tensor.avg_pool ~kernel:2 ~stride:2 ~padding:0 input in
  Alcotest.(check (float 1e-9)) "max" 4. (Tensor.get mx 0);
  Alcotest.(check (float 1e-9)) "avg" 2.5 (Tensor.get av 0);
  let gap = Tensor.global_avg_pool input in
  Alcotest.(check (float 1e-9)) "gap" 2.5 (Tensor.get gap 0)

let test_elementwise () =
  let a = fm ~c:1 ~h:1 ~w:2 [| -1.; 2. |] in
  let b = fm ~c:1 ~h:1 ~w:2 [| 3.; -5. |] in
  Alcotest.(check (float 1e-9)) "relu clamps" 0. (Tensor.get (Tensor.relu a) 0);
  Alcotest.(check (float 1e-9)) "add" 2. (Tensor.get (Tensor.add a b) 0);
  let cat = Tensor.concat [ a; b ] in
  Alcotest.(check int) "concat size" 4 (Tensor.size cat);
  Alcotest.(check (float 1e-9)) "concat order" 3. (Tensor.get cat 2);
  let flat = Tensor.flatten a in
  Alcotest.(check bool) "flatten shape" true
    (Shape.equal (Tensor.shape flat) (Shape.vector 2))

let test_shape_guards () =
  let a = fm ~c:1 ~h:1 ~w:2 [| 1.; 2. |] in
  let b = Tensor.of_array (Shape.vector 2) [| 1.; 2. |] in
  Alcotest.(check bool) "add mismatch" true
    (try
       ignore (Tensor.add a b);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "of_array mismatch" true
    (try
       ignore (Tensor.of_array (Shape.vector 3) [| 1. |]);
       false
     with Invalid_argument _ -> true)

let test_depthwise_conv () =
  (* Depthwise 1x1 with per-channel weight = channel scaling. *)
  let input = fm ~c:2 ~h:1 ~w:2 [| 1.; 2.; 3.; 4. |] in
  let dw =
    match Layer.depthwise ~padding:0 ~channels:2 1 with
    | Layer.Conv c -> c
    | _ -> assert false
  in
  let out = Tensor.conv2d dw ~weights:[| 10.; 100. |] input in
  Alcotest.(check (float 1e-9)) "channel 0 scaled" 10. (Tensor.get out 0);
  Alcotest.(check (float 1e-9)) "channel 1 scaled" 300. (Tensor.get out 2)

let test_grouped_conv_blocks () =
  (* groups=2 over 4 channels: output group 1 ignores input group 0. *)
  let input = fm ~c:4 ~h:1 ~w:1 [| 1.; 2.; 4.; 8. |] in
  let grouped =
    match Layer.conv ~padding:0 ~groups:2 ~in_channels:4 ~out_channels:2 1 with
    | Layer.Conv c -> c
    | _ -> assert false
  in
  (* Each output channel sums its group's two inputs. *)
  let out = Tensor.conv2d grouped ~weights:[| 1.; 1.; 1.; 1. |] input in
  Alcotest.(check (float 1e-9)) "group 0" 3. (Tensor.get out 0);
  Alcotest.(check (float 1e-9)) "group 1" 12. (Tensor.get out 1)

let test_mobilenet_block_equivalence () =
  (* A depthwise-separable model survives partitioning functionally. *)
  let text =
    "model dwnet\ninput in 4x8x8\nconv stem from in out=8 kernel=3\nrelu r0 from stem\n\
     depthwise dw from r0 kernel=3\nrelu r1 from dw\nconv pw from r1 out=8 kernel=1 pad=0\n\
     relu r2 from pw\ngap g from r2\nlinear fc from g out=4\n"
  in
  let model = Model_text.parse text in
  let chip = Compass_arch.Config.custom ~label:"tiny" ~cores:2 ~macros_per_core:2 () in
  let units = Compass_core.Unit_gen.generate model chip in
  let v = Compass_core.Validity.build units in
  let ctx = Compass_core.Dataflow.context units in
  let weights = Executor.random_weights model in
  let input = Executor.random_input model in
  let rng = Compass_util.Rng.create 77 in
  for _ = 1 to 5 do
    let g = Compass_core.Validity.random_group rng v in
    Alcotest.(check bool) "depthwise partitioned equivalence" true
      (Compass_core.Partition_exec.matches_reference ctx g weights input)
  done

(* Executor *)

let test_executor_shapes_match_inference () =
  List.iter
    (fun name ->
      let g = Models.by_name name in
      let weights = Executor.random_weights g in
      let input = Executor.random_input g in
      let lookup = Executor.run g weights input in
      List.iter
        (fun node ->
          Alcotest.(check bool)
            (Printf.sprintf "%s node %d shape" name node)
            true
            (Shape.equal (Graph.shape_of g node) (Tensor.shape (lookup node))))
        (Graph.nodes g))
    [ "lenet5"; "tiny_resnet"; "tiny_mlp" ]

let test_executor_deterministic () =
  let g = Models.lenet5 () in
  let w = Executor.random_weights g in
  let x = Executor.random_input g in
  let a = Executor.output g w x in
  let b = Executor.output g w x in
  Alcotest.(check bool) "same output" true (Tensor.equal a b)

let test_executor_missing_weights () =
  let g = Models.tiny_mlp () in
  let x = Executor.random_input g in
  Alcotest.(check bool) "missing weights rejected" true
    (try
       ignore (Executor.output g (Hashtbl.create 1) x);
       false
     with Invalid_argument _ -> true)

let test_executor_relu_nonnegative () =
  let g = Models.lenet5 () in
  let w = Executor.random_weights g in
  let x = Executor.random_input g in
  let lookup = Executor.run g w x in
  let relu_node =
    List.find (fun n -> (Graph.layer g n).Layer.op = Layer.Relu) (Graph.nodes g)
  in
  let t = Tensor.to_array (lookup relu_node) in
  Alcotest.(check bool) "non-negative" true (Array.for_all (fun v -> v >= 0.) t)

(* Quant *)

let test_quant_roundtrip_range () =
  let data = [| -1.0; -0.3; 0.; 0.4; 1.0 |] in
  let q, spec = Quant.quantize ~bits:4 data in
  Alcotest.(check int) "bits kept" 4 spec.Quant.bits;
  Alcotest.(check (float 1e-9)) "peak preserved" 1.0 (abs_float q.(4));
  Alcotest.(check bool) "error bounded by scale/2" true
    (Quant.max_error ~original:data ~quantized:q <= (spec.Quant.scale /. 2.) +. 1e-12)

let test_quant_zero_input () =
  let q, spec = Quant.quantize ~bits:4 [| 0.; 0. |] in
  Alcotest.(check (float 0.)) "zeros stay" 0. q.(0);
  Alcotest.(check (float 0.)) "scale 1" 1. spec.Quant.scale

let test_quant_codes_bounded () =
  let data = Array.init 100 (fun i -> sin (float_of_int i)) in
  let q, spec = Quant.quantize ~bits:4 data in
  let codes = Quant.codes spec q in
  Array.iter
    (fun c -> Alcotest.(check bool) "4-bit symmetric" true (c >= -7 && c <= 7))
    codes

let test_quant_more_bits_less_error () =
  let data = Array.init 257 (fun i -> cos (float_of_int i /. 10.)) in
  let q4, _ = Quant.quantize ~bits:4 data in
  let q8, _ = Quant.quantize ~bits:8 data in
  Alcotest.(check bool) "8b better than 4b" true
    (Quant.mean_squared_error ~original:data ~quantized:q8
    < Quant.mean_squared_error ~original:data ~quantized:q4)

let test_quant_weights_executable () =
  let g = Models.lenet5 () in
  let w = Executor.random_weights g in
  let wq = Quant.quantize_weights ~bits:4 w in
  let x = Executor.random_input g in
  let ref_out = Executor.output g w x in
  let q_out = Executor.output g wq x in
  (* Quantized output differs but stays in the same ballpark. *)
  Alcotest.(check bool) "finite outputs" true
    (Array.for_all Float.is_finite (Tensor.to_array q_out));
  Alcotest.(check bool) "not wildly off" true
    (Tensor.max_abs_diff ref_out q_out < 1.)

let test_quant_storage () =
  Alcotest.(check int) "4b x 1000" 4000 (Quant.storage_bits ~bits:4 1000)

(* Partition_exec: the functional-equivalence theorem of the compiler. *)

let tiny_chip = Compass_arch.Config.custom ~label:"tiny" ~cores:2 ~macros_per_core:2 ()

let setup name chip =
  let model = Models.by_name name in
  let units = Unit_gen.generate model chip in
  let v = Validity.build units in
  (model, v, Dataflow.context units)

let test_partitioned_equals_reference () =
  List.iter
    (fun name ->
      let model, v, ctx = setup name tiny_chip in
      let weights = Executor.random_weights model in
      let input = Executor.random_input model in
      let rng = Compass_util.Rng.create 5 in
      for _ = 1 to 5 do
        let g = Validity.random_group rng v in
        Alcotest.(check bool)
          (Printf.sprintf "%s %d partitions" name (Partition.partition_count g))
          true
          (Partition_exec.matches_reference ctx g weights input)
      done)
    [ "lenet5"; "tiny_resnet"; "tiny_mlp" ]

let test_partitioned_matches_compiled_plans () =
  (* The actual plans the compiler produces (all three schemes) preserve the
     function too. *)
  let model, v, ctx = setup "tiny_resnet" tiny_chip in
  let weights = Executor.random_weights model in
  let input = Executor.random_input model in
  List.iter
    (fun g ->
      Alcotest.(check bool) "compiled plan equivalent" true
        (Partition_exec.matches_reference ctx g weights input))
    [ Baselines.greedy v; Baselines.layerwise v ]

let test_traffic_within_dataflow_sets () =
  (* Every observed load/store is predicted by the span-io analysis. *)
  let model, v, ctx = setup "tiny_resnet" tiny_chip in
  let weights = Executor.random_weights model in
  let input = Executor.random_input model in
  let rng = Compass_util.Rng.create 9 in
  for _ = 1 to 5 do
    let g = Validity.random_group rng v in
    let r = Partition_exec.run ctx g weights input in
    let ios = Dataflow.group_io ctx g in
    List.iter
      (fun e ->
        let io = ios.(e.Partition_exec.partition) in
        match e.Partition_exec.direction with
        | `Load ->
          Alcotest.(check bool) "load predicted" true
            (List.mem_assoc e.Partition_exec.node io.Dataflow.loads)
        | `Store ->
          Alcotest.(check bool) "store predicted" true
            (List.mem_assoc e.Partition_exec.node io.Dataflow.stores))
      r.Partition_exec.traffic
  done;
  ignore model

let test_single_partition_traffic_minimal () =
  let model, v, ctx = setup "lenet5" Compass_arch.Config.chip_s in
  ignore v;
  let weights = Executor.random_weights model in
  let input = Executor.random_input model in
  let m = Unit_gen.unit_count (Dataflow.units ctx) in
  let r = Partition_exec.run ctx (Partition.singleton m) weights input in
  (* One load (the input) and one store (the output). *)
  Alcotest.(check int) "2 transfers" 2 (List.length r.Partition_exec.traffic);
  Alcotest.(check int) "one partition" 1 r.Partition_exec.partitions_executed

let test_quantized_partitioned_execution () =
  (* 4-bit weights through a multi-partition plan: the full deployment
     story (quantize -> partition -> execute) stays consistent. *)
  let model, v, ctx = setup "lenet5" tiny_chip in
  let weights = Quant.quantize_weights ~bits:4 (Executor.random_weights model) in
  let input = Executor.random_input model in
  let g = Baselines.greedy v in
  Alcotest.(check bool) "quantized equivalence" true
    (Partition_exec.matches_reference ctx g weights input)

(* Random branchy DAG models: stem conv, a fork that reconverges through
   Add or Concat, optional pooling, classifier head. *)
let random_dag_model seed =
  let rng = Compass_util.Rng.create seed in
  let g = Graph.create ~name:(Printf.sprintf "dag%d" seed) () in
  let input =
    Graph.add g "in" (Layer.Input (Shape.feature_map ~channels:3 ~height:16 ~width:16))
  in
  let channels = 4 + (2 * Compass_util.Rng.int rng 3) in
  let stem =
    Graph.add g ~inputs:[ input ] "stem"
      (Layer.conv ~in_channels:3 ~out_channels:channels 3)
  in
  let act = Graph.add g ~inputs:[ stem ] "stem_relu" Layer.Relu in
  (* Fork. *)
  let left =
    Graph.add g ~inputs:[ act ] "left"
      (Layer.conv ~in_channels:channels ~out_channels:channels 3)
  in
  let right =
    Graph.add g ~inputs:[ act ] "right"
      (Layer.conv ~in_channels:channels ~out_channels:channels 1)
  in
  let joined =
    if Compass_util.Rng.bool rng then
      Graph.add g ~inputs:[ left; right ] "join" Layer.Add
    else Graph.add g ~inputs:[ left; right ] "join" Layer.Concat
  in
  let joined_c = Compass_nn.Shape.channels (Graph.shape_of g joined) in
  let pooled =
    if Compass_util.Rng.bool rng then
      Graph.add g ~inputs:[ joined ] "pool" (Layer.max_pool ~kernel:2 ~stride:2 ())
    else joined
  in
  let tail =
    Graph.add g ~inputs:[ pooled ] "tail"
      (Layer.conv ~in_channels:joined_c ~out_channels:8 3)
  in
  let gap = Graph.add g ~inputs:[ tail ] "gap" Layer.Global_avg_pool in
  let _fc =
    Graph.add g ~inputs:[ gap ] "fc" (Layer.linear ~in_features:8 ~out_features:4)
  in
  g

let prop_random_dags_equivalent =
  QCheck.Test.make ~name:"random DAG models survive partitioning" ~count:20
    QCheck.small_int (fun seed ->
      let model = random_dag_model seed in
      (match Graph.validate model with Ok () -> () | Error e -> failwith e);
      let units = Unit_gen.generate model tiny_chip in
      let v = Validity.build units in
      let ctx = Dataflow.context units in
      let weights = Executor.random_weights ~seed model in
      let input = Executor.random_input ~seed model in
      let rng = Compass_util.Rng.create (seed + 1000) in
      List.for_all
        (fun g -> Partition_exec.matches_reference ctx g weights input)
        [
          Baselines.greedy v;
          Baselines.layerwise v;
          Validity.random_group rng v;
          Validity.random_group rng v;
        ])

let test_row_split_equivalence () =
  (* macros_per_core = 1 forces input-dimension splits (partial sums); the
     partitioned function must still be exact. *)
  let chip = Compass_arch.Config.custom ~label:"one" ~cores:4 ~macros_per_core:1 () in
  let model = Models.lenet5 () in
  let units = Compass_core.Unit_gen.generate model chip in
  let v = Compass_core.Validity.build units in
  let ctx = Compass_core.Dataflow.context units in
  let weights = Executor.random_weights model in
  let input = Executor.random_input model in
  let rng = Compass_util.Rng.create 21 in
  for _ = 1 to 5 do
    let g = Compass_core.Validity.random_group rng v in
    Alcotest.(check bool) "row-split equivalence" true
      (Compass_core.Partition_exec.matches_reference ctx g weights input)
  done

let prop_random_groups_equivalent =
  QCheck.Test.make ~name:"partitioned execution always equals reference" ~count:15
    QCheck.small_int (fun seed ->
      let model, v, ctx = setup "tiny_resnet" tiny_chip in
      let weights = Executor.random_weights model in
      let input = Executor.random_input model in
      let g = Validity.random_group (Compass_util.Rng.create seed) v in
      Partition_exec.matches_reference ctx g weights input)

let () =
  Alcotest.run "executor"
    [
      ( "tensor",
        [
          Alcotest.test_case "conv identity" `Quick test_conv_identity_kernel;
          Alcotest.test_case "conv sum" `Quick test_conv_sum_kernel;
          Alcotest.test_case "conv stride" `Quick test_conv_stride_downsamples;
          Alcotest.test_case "conv multichannel" `Quick test_conv_multichannel;
          Alcotest.test_case "linear" `Quick test_linear;
          Alcotest.test_case "pools" `Quick test_pools;
          Alcotest.test_case "elementwise" `Quick test_elementwise;
          Alcotest.test_case "shape guards" `Quick test_shape_guards;
          Alcotest.test_case "depthwise conv" `Quick test_depthwise_conv;
          Alcotest.test_case "grouped conv blocks" `Quick test_grouped_conv_blocks;
          Alcotest.test_case "mobilenet block equivalence" `Quick
            test_mobilenet_block_equivalence;
        ] );
      ( "executor",
        [
          Alcotest.test_case "shapes match inference" `Quick
            test_executor_shapes_match_inference;
          Alcotest.test_case "deterministic" `Quick test_executor_deterministic;
          Alcotest.test_case "missing weights" `Quick test_executor_missing_weights;
          Alcotest.test_case "relu non-negative" `Quick test_executor_relu_nonnegative;
        ] );
      ( "quant",
        [
          Alcotest.test_case "roundtrip range" `Quick test_quant_roundtrip_range;
          Alcotest.test_case "zero input" `Quick test_quant_zero_input;
          Alcotest.test_case "codes bounded" `Quick test_quant_codes_bounded;
          Alcotest.test_case "more bits less error" `Quick test_quant_more_bits_less_error;
          Alcotest.test_case "quantized weights execute" `Quick
            test_quant_weights_executable;
          Alcotest.test_case "storage" `Quick test_quant_storage;
        ] );
      ( "partition_exec",
        [
          Alcotest.test_case "equals reference" `Quick test_partitioned_equals_reference;
          Alcotest.test_case "compiled plans equivalent" `Quick
            test_partitioned_matches_compiled_plans;
          Alcotest.test_case "traffic within dataflow sets" `Quick
            test_traffic_within_dataflow_sets;
          Alcotest.test_case "single partition minimal" `Quick
            test_single_partition_traffic_minimal;
          Alcotest.test_case "quantized partitioned execution" `Quick
            test_quantized_partitioned_execution;
          Alcotest.test_case "row-split equivalence" `Quick test_row_split_equivalence;
          QCheck_alcotest.to_alcotest prop_random_groups_equivalent;
          QCheck_alcotest.to_alcotest prop_random_dags_equivalent;
        ] );
    ]
