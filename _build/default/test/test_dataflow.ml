(* Tests for dataflow: non-crossbar layer attachment and partition IO
   (paper Sec. III-B2 / III-B3). *)

open Compass_core
open Compass_arch
open Compass_nn

let setup name chip =
  let units = Unit_gen.generate (Models.by_name name) chip in
  let v = Validity.build units in
  (units, v, Dataflow.context units)

let test_full_span_io_minimal () =
  (* A model fully in one partition loads only the input and stores only the
     output. *)
  let units, _, ctx = setup "squeezenet" Config.chip_s in
  let io = Dataflow.span_io ctx ~start_:0 ~stop:(Unit_gen.unit_count units) in
  Alcotest.(check int) "one entry" 1 (List.length io.Dataflow.loads);
  Alcotest.(check int) "one exit" 1 (List.length io.Dataflow.stores);
  let model = units.Unit_gen.model in
  let input_node, _ = List.hd io.Dataflow.loads in
  Alcotest.(check bool) "entry is the model input" true
    (match (Graph.layer model input_node).Layer.op with Layer.Input _ -> true | _ -> false)

let test_input_bytes () =
  let units, _, ctx = setup "resnet18" Config.chip_s in
  let io = Dataflow.span_io ctx ~start_:0 ~stop:(Unit_gen.unit_count units) in
  let _, bytes = List.hd io.Dataflow.loads in
  (* 3 x 224 x 224 at 4 bits. *)
  Alcotest.(check (float 1.)) "input bytes" (3. *. 224. *. 224. /. 2.) bytes

let test_boundary_load_store_pair () =
  (* Cutting a chain in two: the boundary tensor is stored by the first span
     and loaded by the second. *)
  let units, _, ctx = setup "lenet5" Config.chip_s in
  let m = Unit_gen.unit_count units in
  let cut = m / 2 in
  let io0 = Dataflow.span_io ctx ~start_:0 ~stop:cut in
  let io1 = Dataflow.span_io ctx ~start_:cut ~stop:m in
  Alcotest.(check bool) "first stores something" true (io0.Dataflow.store_bytes > 0.);
  Alcotest.(check bool) "second loads something" true (io1.Dataflow.load_bytes > 0.);
  (* Boundary tensors must match: everything the second span loads that is
     not the model input was stored by the first. *)
  let model = units.Unit_gen.model in
  List.iter
    (fun (node, bytes) ->
      match (Graph.layer model node).Layer.op with
      | Layer.Input _ -> ()
      | _ ->
        let stored =
          Option.value ~default:0. (List.assoc_opt node io0.Dataflow.stores)
        in
        Alcotest.(check (float 1e-6)) "store covers load" bytes stored)
    io1.Dataflow.loads

let test_residual_multi_endpoint () =
  (* Cut ResNet18 inside a residual block: the partition holding only the
     inner convs must load both the block input (for the shortcut consumer)
     and produce stores, i.e. multiple endpoints (paper Sec. III-B3). *)
  let units, v, ctx = setup "resnet18" Config.chip_s in
  let rng = Compass_util.Rng.create 99 in
  let found = ref false in
  for _ = 1 to 40 do
    let g = Validity.random_group rng v in
    let ios = Dataflow.group_io ctx g in
    if Array.exists (fun io -> List.length io.Dataflow.loads >= 2) ios then found := true
  done;
  ignore units;
  Alcotest.(check bool) "some partition has multiple entries" true !found

let test_group_io_consistent_with_span_io () =
  let units, v, ctx = setup "resnet18" Config.chip_m in
  let g = Validity.random_group (Compass_util.Rng.create 3) v in
  let ios = Dataflow.group_io ctx g in
  List.iteri
    (fun k (s : Partition.span) ->
      let direct = Dataflow.span_io ctx ~start_:s.Partition.start_ ~stop:s.Partition.stop in
      Alcotest.(check (float 1e-9)) "loads equal" direct.Dataflow.load_bytes
        ios.(k).Dataflow.load_bytes;
      Alcotest.(check (float 1e-9)) "stores equal" direct.Dataflow.store_bytes
        ios.(k).Dataflow.store_bytes)
    (Partition.spans g);
  ignore units

let test_attached_layers_cover_model () =
  (* Every non-weighted, non-input node lands in exactly one partition. *)
  let units, v, ctx = setup "squeezenet" Config.chip_s in
  let model = units.Unit_gen.model in
  let g = Validity.random_group (Compass_util.Rng.create 11) v in
  let ios = Dataflow.group_io ctx g in
  let attached = Array.to_list ios |> List.concat_map (fun io -> io.Dataflow.attached) in
  let expected =
    List.filter
      (fun n ->
        match (Graph.layer model n).Layer.op with
        | Layer.Input _ -> false
        | op -> not (Layer.is_weighted op))
      (Graph.nodes model)
  in
  Alcotest.(check int) "each attached once" (List.length expected) (List.length attached);
  Alcotest.(check (list int)) "same set" (List.sort compare expected)
    (List.sort compare attached)

let test_weighted_layers_cover_model () =
  let units, v, ctx = setup "vgg16" Config.chip_s in
  let model = units.Unit_gen.model in
  let g = Validity.random_group (Compass_util.Rng.create 13) v in
  let ios = Dataflow.group_io ctx g in
  let all = Array.to_list ios |> List.concat_map (fun io -> io.Dataflow.weighted_layers) in
  List.iter
    (fun n ->
      Alcotest.(check bool) "weighted layer appears" true (List.mem n all))
    (Graph.weighted_nodes model)

let test_home_unit_monotone () =
  (* Anchors never precede their producers' anchors. *)
  let units, _, ctx = setup "resnet18" Config.chip_s in
  let model = units.Unit_gen.model in
  List.iter
    (fun n ->
      List.iter
        (fun p ->
          Alcotest.(check bool) "anchor ordered" true
            (Dataflow.home_unit ctx p <= Dataflow.home_unit ctx n))
        (Graph.preds model n))
    (Graph.topo_order model)

let test_layer_fraction_bounds () =
  let units, _, ctx = setup "resnet18" Config.chip_s in
  let model = units.Unit_gen.model in
  let m = Unit_gen.unit_count units in
  List.iter
    (fun n ->
      let full = Dataflow.layer_fraction_in ctx n ~start_:0 ~stop:m in
      Alcotest.(check (float 1e-9)) "full span covers" 1. full)
    (Graph.weighted_nodes model)

let test_spills_rules () =
  let _, _, ctx = setup "resnet18" Config.chip_s in
  let units = Dataflow.units ctx in
  let model = units.Unit_gen.model in
  let input = List.hd (Graph.entry_nodes model) in
  let output = List.hd (Graph.exit_nodes model) in
  Alcotest.(check bool) "input spills" true (Dataflow.spills_to_dram ctx ~batch:1 input);
  Alcotest.(check bool) "output spills" true (Dataflow.spills_to_dram ctx ~batch:1 output);
  (* A small mid tensor stays on chip at batch 1 but spills at huge batch. *)
  let fc_input =
    List.find
      (fun n -> (Graph.layer model n).Layer.name = "avgpool")
      (Graph.nodes model)
  in
  Alcotest.(check bool) "small tensor on-chip" false
    (Dataflow.spills_to_dram ctx ~batch:1 fc_input);
  Alcotest.(check bool) "huge batch spills" true
    (Dataflow.spills_to_dram ctx ~batch:100_000_000 fc_input)

let test_onchip_buffer_size () =
  let _, _, ctx = setup "lenet5" Config.chip_s in
  (* Half of 16 cores x 6 banks x 64 KB. *)
  Alcotest.(check (float 1.)) "budget" (0.5 *. 16. *. 6. *. 65536.)
    (Dataflow.onchip_buffer_bytes ctx)

let test_totals_and_counts () =
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let g = Validity.random_group (Compass_util.Rng.create 17) v in
  let ios = Dataflow.group_io ctx g in
  let counts = Dataflow.entry_exit_counts ios in
  Alcotest.(check int) "one count per partition" (Array.length ios) (List.length counts);
  Alcotest.(check bool) "positive totals" true
    (Dataflow.total_load_bytes ios > 0. && Dataflow.total_store_bytes ios > 0.)

(* Property: per-partition loads of any valid group are bounded by the sum
   of all tensor sizes (no unbounded duplication). *)

let prop_loads_bounded =
  QCheck.Test.make ~name:"span loads bounded by model tensors" ~count:30
    QCheck.small_int (fun seed ->
      let units, v, ctx = setup "resnet18" Config.chip_s in
      let model = units.Unit_gen.model in
      let total_tensors =
        List.fold_left (fun acc n -> acc +. Dataflow.tensor_bytes ctx n) 0.
          (Graph.nodes model)
      in
      let g = Validity.random_group (Compass_util.Rng.create seed) v in
      let ios = Dataflow.group_io ctx g in
      Array.for_all (fun io -> io.Dataflow.load_bytes <= total_tensors) ios)

let () =
  Alcotest.run "dataflow"
    [
      ( "span-io",
        [
          Alcotest.test_case "full span io minimal" `Quick test_full_span_io_minimal;
          Alcotest.test_case "input bytes" `Quick test_input_bytes;
          Alcotest.test_case "boundary load/store pair" `Quick
            test_boundary_load_store_pair;
          Alcotest.test_case "residual multi endpoint" `Quick test_residual_multi_endpoint;
          Alcotest.test_case "group io consistent" `Quick
            test_group_io_consistent_with_span_io;
          QCheck_alcotest.to_alcotest prop_loads_bounded;
        ] );
      ( "attachment",
        [
          Alcotest.test_case "attached cover model" `Quick test_attached_layers_cover_model;
          Alcotest.test_case "weighted cover model" `Quick test_weighted_layers_cover_model;
          Alcotest.test_case "home_unit monotone" `Quick test_home_unit_monotone;
          Alcotest.test_case "layer fraction bounds" `Quick test_layer_fraction_bounds;
        ] );
      ( "buffering",
        [
          Alcotest.test_case "spill rules" `Quick test_spills_rules;
          Alcotest.test_case "on-chip buffer size" `Quick test_onchip_buffer_size;
          Alcotest.test_case "totals and counts" `Quick test_totals_and_counts;
        ] );
    ]
