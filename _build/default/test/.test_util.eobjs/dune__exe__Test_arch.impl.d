test/test_arch.ml: Alcotest Compass_arch Compass_util Config Crossbar Energy Interconnect List QCheck QCheck_alcotest
