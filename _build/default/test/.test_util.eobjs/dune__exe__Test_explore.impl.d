test/test_explore.ml: Alcotest Compass_arch Compass_core Compass_nn Compass_util Config Explore Ga Lazy List
