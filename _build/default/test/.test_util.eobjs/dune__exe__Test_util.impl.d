test/test_util.ml: Alcotest Array Ascii_plot Compass_util Gen List QCheck QCheck_alcotest Rng Stats String Table Units
