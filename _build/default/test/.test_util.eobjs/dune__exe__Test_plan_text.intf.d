test/test_plan_text.mli:
