test/test_partition.ml: Alcotest Array Compass_core List Partition QCheck QCheck_alcotest
