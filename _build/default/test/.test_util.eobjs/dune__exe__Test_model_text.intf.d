test/test_model_text.mli:
