test/test_technology.ml: Alcotest Compass_arch Compass_core Compass_nn Compiler Config Crossbar Estimator Ga List Partition Technology
