test/test_isa.ml: Alcotest Compass_arch Compass_dram Compass_isa Config Crossbar Instr List Program QCheck QCheck_alcotest Sim String Timeline
