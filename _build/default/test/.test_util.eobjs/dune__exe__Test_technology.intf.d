test/test_technology.mli:
