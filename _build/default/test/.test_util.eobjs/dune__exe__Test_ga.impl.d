test/test_ga.ml: Alcotest Baselines Compass_arch Compass_core Compass_nn Compass_util Config Dataflow Estimator Fitness Ga List Partition QCheck QCheck_alcotest Unit_gen Validity
