test/test_model_text.ml: Alcotest Compass_arch Compass_core Compass_nn Filename Graph Layer List Model_text Models QCheck QCheck_alcotest Shape Sys
