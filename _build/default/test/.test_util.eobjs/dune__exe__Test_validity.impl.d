test/test_validity.ml: Alcotest Array Compass_arch Compass_core Compass_nn Compass_util Config List Mapping Partition QCheck QCheck_alcotest String Unit_gen Validity
