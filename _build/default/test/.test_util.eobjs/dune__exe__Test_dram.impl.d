test/test_dram.ml: Alcotest Bank Compass_dram Compass_util Controller Dram List Printf QCheck QCheck_alcotest Timing Trace
