test/test_weight_layout.mli:
