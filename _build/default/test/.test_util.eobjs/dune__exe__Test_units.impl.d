test/test_units.ml: Alcotest Array Compass_arch Compass_core Compass_nn Config Crossbar Hashtbl List Printf QCheck QCheck_alcotest Unit_gen
