test/test_plan_text.ml: Alcotest Compass_arch Compass_core Compass_nn Compass_util Compiler Config Estimator Filename Ga List Partition Plan_text Printf Report String Sys
