test/test_nn.ml: Alcotest Compass_nn Graph Hashtbl Layer List Models Printf QCheck QCheck_alcotest Shape String Summary
