test/test_dataflow.ml: Alcotest Array Compass_arch Compass_core Compass_nn Compass_util Config Dataflow Graph Layer List Models Option Partition QCheck QCheck_alcotest Unit_gen Validity
