(* Tests for partition groups (chromosomes) and their edit operations. *)

open Compass_core

let group = Alcotest.testable Partition.pp Partition.equal

let test_of_cuts_ok () =
  let g = Partition.of_cuts [| 0; 3; 7; 10 |] in
  Alcotest.(check int) "count" 3 (Partition.partition_count g);
  Alcotest.(check int) "total" 10 (Partition.total_units g)

let test_of_cuts_rejects () =
  let bad cuts =
    Alcotest.(check bool) "rejected" true
      (try
         ignore (Partition.of_cuts cuts);
         false
       with Invalid_argument _ -> true)
  in
  bad [| 0 |];
  bad [| 1; 5 |];
  bad [| 0; 5; 5 |];
  bad [| 0; 5; 3 |]

let test_of_spans_roundtrip () =
  let g = Partition.of_cuts [| 0; 4; 9 |] in
  Alcotest.check group "roundtrip" g (Partition.of_spans (Partition.spans g))

let test_of_spans_rejects_gap () =
  Alcotest.(check bool) "gap" true
    (try
       ignore
         (Partition.of_spans
            [ { Partition.start_ = 0; stop = 3 }; { Partition.start_ = 4; stop = 6 } ]);
       false
     with Invalid_argument _ -> true)

let test_singleton () =
  let g = Partition.singleton 5 in
  Alcotest.(check int) "one partition" 1 (Partition.partition_count g);
  Alcotest.(check int) "covers" 5 (Partition.total_units g)

let test_span_at () =
  let g = Partition.of_cuts [| 0; 3; 7 |] in
  let s = Partition.span_at g 1 in
  Alcotest.(check (pair int int)) "second span" (3, 7) (s.Partition.start_, s.Partition.stop);
  Alcotest.(check bool) "out of range" true
    (try
       ignore (Partition.span_at g 2);
       false
     with Invalid_argument _ -> true)

let test_partition_of_unit () =
  let g = Partition.of_cuts [| 0; 3; 7; 10 |] in
  Alcotest.(check int) "first" 0 (Partition.partition_of_unit g 0);
  Alcotest.(check int) "boundary" 1 (Partition.partition_of_unit g 3);
  Alcotest.(check int) "last" 2 (Partition.partition_of_unit g 9);
  Alcotest.(check bool) "out of range" true
    (try
       ignore (Partition.partition_of_unit g 10);
       false
     with Invalid_argument _ -> true)

let test_merge () =
  let g = Partition.of_cuts [| 0; 3; 7; 10 |] in
  Alcotest.check group "merge middle"
    (Partition.of_cuts [| 0; 3; 10 |])
    (Partition.merge g 1);
  Alcotest.check group "merge first" (Partition.of_cuts [| 0; 7; 10 |]) (Partition.merge g 0)

let test_split () =
  let g = Partition.of_cuts [| 0; 5 |] in
  Alcotest.check group "split" (Partition.of_cuts [| 0; 2; 5 |]) (Partition.split g 0 ~at:2);
  Alcotest.(check bool) "split at boundary rejected" true
    (try
       ignore (Partition.split g 0 ~at:0);
       false
     with Invalid_argument _ -> true)

let test_move () =
  let g = Partition.of_cuts [| 0; 3; 7 |] in
  Alcotest.check group "move right" (Partition.of_cuts [| 0; 4; 7 |]) (Partition.move g 0 ~delta:1);
  Alcotest.check group "move left" (Partition.of_cuts [| 0; 2; 7 |]) (Partition.move g 0 ~delta:(-1));
  Alcotest.(check bool) "emptying rejected" true
    (try
       ignore (Partition.move g 0 ~delta:(-3));
       false
     with Invalid_argument _ -> true)

let test_merge_split_inverse () =
  let g = Partition.of_cuts [| 0; 4; 9 |] in
  Alcotest.check group "split undoes merge" g
    (Partition.split (Partition.merge g 0) 0 ~at:4)

let test_cuts_copy_isolated () =
  let g = Partition.of_cuts [| 0; 4; 9 |] in
  let c = Partition.cuts g in
  c.(1) <- 99;
  Alcotest.check group "internal state unchanged" (Partition.of_cuts [| 0; 4; 9 |]) g

(* Properties on random groups. *)

let cuts_gen =
  QCheck.Gen.(
    let* m = int_range 2 60 in
    let* k = int_range 0 (m - 1) in
    let* interior = QCheck.Gen.list_repeat k (int_range 1 (m - 1)) in
    let cuts = List.sort_uniq compare ((0 :: m :: interior) @ []) in
    return (Array.of_list cuts))

let prop_spans_tile =
  QCheck.Test.make ~name:"spans tile [0,M)" ~count:300 (QCheck.make cuts_gen)
    (fun cuts ->
      let g = Partition.of_cuts cuts in
      let spans = Partition.spans g in
      let rec contiguous pos = function
        | [] -> pos = Partition.total_units g
        | s :: rest -> s.Partition.start_ = pos && contiguous s.Partition.stop rest
      in
      contiguous 0 spans)

let prop_partition_of_unit_consistent =
  QCheck.Test.make ~name:"partition_of_unit agrees with spans" ~count:200
    (QCheck.make cuts_gen) (fun cuts ->
      let g = Partition.of_cuts cuts in
      List.for_all
        (fun u ->
          let k = Partition.partition_of_unit g u in
          let s = Partition.span_at g k in
          u >= s.Partition.start_ && u < s.Partition.stop)
        (List.init (Partition.total_units g) (fun i -> i)))

let prop_merge_reduces_count =
  QCheck.Test.make ~name:"merge reduces partition count by one" ~count:200
    (QCheck.make cuts_gen) (fun cuts ->
      let g = Partition.of_cuts cuts in
      let k = Partition.partition_count g in
      k < 2 || Partition.partition_count (Partition.merge g 0) = k - 1)

let () =
  Alcotest.run "partition"
    [
      ( "construction",
        [
          Alcotest.test_case "of_cuts ok" `Quick test_of_cuts_ok;
          Alcotest.test_case "of_cuts rejects" `Quick test_of_cuts_rejects;
          Alcotest.test_case "of_spans roundtrip" `Quick test_of_spans_roundtrip;
          Alcotest.test_case "of_spans rejects gap" `Quick test_of_spans_rejects_gap;
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "cuts copy isolated" `Quick test_cuts_copy_isolated;
        ] );
      ( "queries",
        [
          Alcotest.test_case "span_at" `Quick test_span_at;
          Alcotest.test_case "partition_of_unit" `Quick test_partition_of_unit;
        ] );
      ( "edits",
        [
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "split" `Quick test_split;
          Alcotest.test_case "move" `Quick test_move;
          Alcotest.test_case "merge/split inverse" `Quick test_merge_split_inverse;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_spans_tile;
          QCheck_alcotest.to_alcotest prop_partition_of_unit_consistent;
          QCheck_alcotest.to_alcotest prop_merge_reduces_count;
        ] );
    ]
