(* Integration tests: the full compile -> estimate -> schedule -> simulate
   flow, plus the report layer. *)

open Compass_core
open Compass_arch

let quick = Ga.quick_params

let compile ?(batch = 16) ?(chip = Config.chip_s) name scheme =
  Compiler.compile ~ga_params:quick ~model:(Compass_nn.Models.by_name name) ~chip ~batch
    scheme

let test_scheme_parsing () =
  Alcotest.(check bool) "compass" true (Compiler.scheme_of_string "GA" = Compiler.Compass);
  Alcotest.(check bool) "greedy" true
    (Compiler.scheme_of_string "Greedy" = Compiler.Greedy);
  Alcotest.(check bool) "unknown" true
    (try
       ignore (Compiler.scheme_of_string "magic");
       false
     with Invalid_argument _ -> true)

let test_compile_all_workloads () =
  (* The paper's claim: COMPASS maps all three models on every chip. *)
  List.iter
    (fun name ->
      List.iter
        (fun (_, chip) ->
          let plan = compile ~chip name Compiler.Greedy in
          Alcotest.(check bool)
            (Compiler.label plan ^ " has partitions")
            true
            (Partition.partition_count plan.Compiler.group >= 1))
        Config.presets)
    [ "vgg16"; "resnet18"; "squeezenet" ]

let test_prior_compiler_support () =
  (* Table II: only SqueezeNet fits the resource-constrained chips. *)
  let vgg = Compass_nn.Models.vgg16 () in
  let resnet = Compass_nn.Models.resnet18 () in
  let squeeze = Compass_nn.Models.squeezenet () in
  Alcotest.(check bool) "vgg16 prev X" false
    (Compiler.supported_by_prior_compilers vgg Config.chip_s);
  Alcotest.(check bool) "resnet18 prev X" false
    (Compiler.supported_by_prior_compilers resnet Config.chip_s);
  Alcotest.(check bool) "squeezenet prev V" true
    (Compiler.supported_by_prior_compilers squeeze Config.chip_s);
  (* ResNet18 (5.57 MB) exceeds even chip L (4.5 MB). *)
  Alcotest.(check bool) "resnet18 prev X on L" false
    (Compiler.supported_by_prior_compilers resnet Config.chip_l)

let test_label () =
  let plan = compile ~batch:4 "resnet18" Compiler.Greedy in
  Alcotest.(check string) "paper naming" "resnet18-S-4" (Compiler.label plan)

let test_ga_present_only_for_compass () =
  let p1 = compile "squeezenet" Compiler.Compass in
  let p2 = compile "squeezenet" Compiler.Greedy in
  Alcotest.(check bool) "compass has ga" true (p1.Compiler.ga <> None);
  Alcotest.(check bool) "greedy has none" true (p2.Compiler.ga = None)

let test_compass_beats_baselines_resnet () =
  let rows =
    Report.compare_schemes ~ga_params:quick
      ~model:(Compass_nn.Models.resnet18 ())
      ~chip:Config.chip_s ~batch:16 ()
  in
  Alcotest.(check int) "three rows" 3 (List.length rows);
  Alcotest.(check bool) "beats greedy" true (Report.speedup rows ~over:"greedy" >= 1.0);
  Alcotest.(check bool) "beats layerwise" true
    (Report.speedup rows ~over:"layerwise" >= 1.0)

let test_measure_pipeline () =
  let plan = compile ~batch:4 "lenet5" Compiler.Compass in
  let m = Compiler.measure plan in
  Alcotest.(check bool) "sim ran" true (m.Compiler.sim.Compass_isa.Sim.makespan_s > 0.);
  Alcotest.(check bool) "dram replayed" true
    (m.Compiler.dram.Compass_dram.Controller.bytes > 0.);
  Alcotest.(check bool) "instructions emitted" true
    (m.Compiler.schedule.Scheduler.instruction_count > 0)

let test_report_tables () =
  let rows =
    Report.compare_schemes ~ga_params:quick
      ~model:(Compass_nn.Models.squeezenet ())
      ~chip:Config.chip_s ~batch:4 ()
  in
  Alcotest.(check int) "table rows" 3
    (Compass_util.Table.row_count (Report.rows_table rows));
  let support =
    Report.support_table (Compass_nn.Models.evaluation_models ()) Config.chip_s
  in
  Alcotest.(check int) "support rows" 3 (Compass_util.Table.row_count support)

let test_invalid_batch_rejected () =
  Alcotest.(check bool) "batch 0" true
    (try
       ignore (compile ~batch:0 "lenet5" Compiler.Greedy);
       false
     with Invalid_argument _ -> true)

let test_objective_threaded () =
  let plan =
    Compiler.compile ~objective:Fitness.Edp ~ga_params:quick
      ~model:(Compass_nn.Models.resnet18 ())
      ~chip:Config.chip_s ~batch:8 Compiler.Compass
  in
  Alcotest.(check bool) "objective recorded" true (plan.Compiler.objective = Fitness.Edp)

let test_speedup_missing_scheme () =
  let rows =
    [
      {
        Report.config = "x";
        scheme = "compass";
        partitions = 1;
        latency_s = 1.;
        throughput_per_s = 1.;
        energy_per_sample_j = 1.;
        edp_j_s = 1.;
      };
    ]
  in
  Alcotest.(check bool) "missing baseline raises" true
    (try
       ignore (Report.speedup rows ~over:"greedy");
       false
     with Not_found -> true)

let test_csv_export () =
  let rows =
    Report.compare_schemes ~ga_params:quick
      ~model:(Compass_nn.Models.lenet5 ())
      ~chip:Config.chip_s ~batch:2 ()
  in
  let csv = Report.rows_to_csv rows in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 3 rows" 4 (List.length lines);
  Alcotest.(check bool) "header fields" true
    (String.length (List.hd lines) > 0
    && String.split_on_char ',' (List.hd lines) |> List.length = 7);
  let path = Filename.temp_file "compass" ".csv" in
  Report.write_csv path rows;
  let ic = open_in path in
  let len = in_channel_length ic in
  let written = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "file contents" csv written

let test_extended_zoo_compiles () =
  (* The non-evaluation networks also go end to end (greedy for speed). *)
  List.iter
    (fun name ->
      let plan = compile ~batch:4 name Compiler.Greedy in
      Alcotest.(check bool) (name ^ " compiles") true
        (plan.Compiler.perf.Estimator.throughput_per_s > 0.))
    [ "alexnet"; "vgg11"; "resnet34"; "mobilenet_v1" ]

let test_on_chip_mode () =
  let squeeze = Compass_nn.Models.squeezenet () in
  let vgg = Compass_nn.Models.vgg16 () in
  (match Compiler.compile_on_chip ~model:squeeze ~chip:Config.chip_s ~batch:16 with
  | Ok r ->
    Alcotest.(check int) "single partition" 1
      (Partition.partition_count r.Compiler.on_chip_group);
    Alcotest.(check bool) "positive throughput" true
      (r.Compiler.on_chip_perf.Estimator.throughput_per_s > 0.);
    List.iter
      (fun sp -> Alcotest.(check (float 0.)) "pinned: no writes" 0. sp.Estimator.write_s)
      r.Compiler.on_chip_perf.Estimator.spans
  | Error e -> Alcotest.fail ("squeezenet should fit chip S: " ^ e));
  Alcotest.(check bool) "vgg16 unmappable" true
    (match Compiler.compile_on_chip ~model:vgg ~chip:Config.chip_s ~batch:16 with
    | Error _ -> true
    | Ok _ -> false)

let test_on_chip_agrees_with_support_predicate () =
  List.iter
    (fun name ->
      List.iter
        (fun (_, chip) ->
          let model = Compass_nn.Models.by_name name in
          let predicted = Compiler.supported_by_prior_compilers model chip in
          let actual =
            match Compiler.compile_on_chip ~model ~chip ~batch:4 with
            | Ok _ -> true
            | Error _ -> false
          in
          (* The byte-level predicate can be optimistic about fragmentation,
             never pessimistic. *)
          Alcotest.(check bool)
            (Printf.sprintf "%s-%s consistent" name chip.Config.label)
            true
            ((not actual) || predicted))
        Config.presets)
    [ "vgg16"; "resnet18"; "squeezenet"; "lenet5" ]

let test_tiny_models_end_to_end () =
  List.iter
    (fun name ->
      let plan = compile ~batch:2 name Compiler.Compass in
      let m = Compiler.measure plan in
      Alcotest.(check bool) (name ^ " end-to-end") true
        (m.Compiler.sim.Compass_isa.Sim.makespan_s > 0.))
    [ "tiny_mlp"; "tiny_resnet"; "lenet5" ]

let () =
  Alcotest.run "compiler"
    [
      ( "compile",
        [
          Alcotest.test_case "scheme parsing" `Quick test_scheme_parsing;
          Alcotest.test_case "all workloads compile" `Slow test_compile_all_workloads;
          Alcotest.test_case "prior compiler support (Table II)" `Quick
            test_prior_compiler_support;
          Alcotest.test_case "label" `Quick test_label;
          Alcotest.test_case "ga presence" `Quick test_ga_present_only_for_compass;
          Alcotest.test_case "invalid batch" `Quick test_invalid_batch_rejected;
          Alcotest.test_case "objective threaded" `Quick test_objective_threaded;
        ] );
      ( "integration",
        [
          Alcotest.test_case "compass beats baselines" `Slow
            test_compass_beats_baselines_resnet;
          Alcotest.test_case "measure pipeline" `Quick test_measure_pipeline;
          Alcotest.test_case "report tables" `Quick test_report_tables;
          Alcotest.test_case "speedup missing scheme" `Quick test_speedup_missing_scheme;
          Alcotest.test_case "tiny models end-to-end" `Quick test_tiny_models_end_to_end;
          Alcotest.test_case "csv export" `Quick test_csv_export;
          Alcotest.test_case "extended zoo compiles" `Slow test_extended_zoo_compiles;
          Alcotest.test_case "on-chip mode" `Quick test_on_chip_mode;
          Alcotest.test_case "on-chip vs predicate" `Quick
            test_on_chip_agrees_with_support_predicate;
        ] );
    ]
