(* Tests for the hardware model: crossbar geometry/energy, chip presets,
   bus, energy accounting. *)

open Compass_arch

let mib = 1024. *. 1024.

(* Crossbar *)

let test_default_geometry () =
  let x = Crossbar.default in
  Alcotest.(check int) "cols/weight" 4 (Crossbar.cols_per_weight x);
  Alcotest.(check int) "logical cols" 64 (Crossbar.logical_cols x);
  Alcotest.(check int) "capacity weights" (256 * 64) (Crossbar.weight_capacity x);
  Alcotest.(check (float 1e-9)) "8 KB per macro" 8192. (Crossbar.capacity_bytes x)

let test_tile_grid () =
  let x = Crossbar.default in
  Alcotest.(check (pair int int)) "exact" (1, 1) (Crossbar.tile_grid x ~rows:256 ~cols:64);
  Alcotest.(check (pair int int)) "round up" (2, 2)
    (Crossbar.tile_grid x ~rows:257 ~cols:65);
  (* VGG16 fc6: 25088 x 4096 -> 98 x 64 macros. *)
  Alcotest.(check (pair int int)) "fc6" (98, 64)
    (Crossbar.tile_grid x ~rows:25088 ~cols:4096);
  Alcotest.(check int) "fc6 tiles" (98 * 64) (Crossbar.tiles_for x ~rows:25088 ~cols:4096)

let test_tile_grid_invalid () =
  Alcotest.(check bool) "zero rows" true
    (try
       ignore (Crossbar.tile_grid Crossbar.default ~rows:0 ~cols:4);
       false
     with Invalid_argument _ -> true)

let test_write_latency () =
  let x = Crossbar.default in
  Alcotest.(check (float 1e-12)) "rows x row write" (256. *. 100e-9)
    (Crossbar.write_latency_s x)

let test_make_validation () =
  Alcotest.(check bool) "bad weight bits" true
    (try
       ignore (Crossbar.make ~cell_bits:2 ~weight_bits:3 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative latency" true
    (try
       ignore (Crossbar.make ~mvm_latency_s:(-1.) ());
       false
     with Invalid_argument _ -> true)

(* Config: Table I. *)

let test_preset_capacities () =
  Alcotest.(check (float 1e-6)) "S" 1.125 (Config.capacity_bytes Config.chip_s /. mib);
  Alcotest.(check (float 1e-6)) "M" 2.0 (Config.capacity_bytes Config.chip_m /. mib);
  Alcotest.(check (float 1e-6)) "L" 4.5 (Config.capacity_bytes Config.chip_l /. mib)

let test_preset_macros () =
  Alcotest.(check int) "S" 144 (Config.total_macros Config.chip_s);
  Alcotest.(check int) "M" 256 (Config.total_macros Config.chip_m);
  Alcotest.(check int) "L" 576 (Config.total_macros Config.chip_l)

let test_preset_powers () =
  Alcotest.(check (float 1e-9)) "S" 1.57 Config.chip_s.Config.chip_power_w;
  Alcotest.(check (float 1e-9)) "M" 2.80 Config.chip_m.Config.chip_power_w;
  Alcotest.(check (float 1e-9)) "L" 6.30 Config.chip_l.Config.chip_power_w

let test_core_component_power () =
  (* Table I: 22.8 + 18.0 + 8.0 mW per core. *)
  Alcotest.(check (float 1e-9)) "core power" 48.8e-3
    (Config.core_static_power_w Config.chip_s.Config.core)

let test_by_label () =
  Alcotest.(check string) "lower case" "M" (Config.by_label "m").Config.label;
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (Config.by_label "XL");
       false
     with Not_found -> true)

let test_core_capacity () =
  Alcotest.(check (float 1e-9)) "9 macros" (9. *. 8192.)
    (Config.core_capacity_bytes Config.chip_s)

let test_custom_chip () =
  let chip = Config.custom ~label:"tiny" ~cores:4 ~macros_per_core:2 () in
  Alcotest.(check int) "macros" 8 (Config.total_macros chip);
  Alcotest.(check bool) "positive default power" true (chip.Config.chip_power_w > 0.)

let test_macro_static_power_positive () =
  List.iter
    (fun (_, chip) ->
      Alcotest.(check bool) "positive" true (Config.macro_static_power_w chip > 0.))
    Config.presets

let test_table1_rows () =
  Alcotest.(check int) "three rows" 3 (Compass_util.Table.row_count (Config.table1 ()))

(* Interconnect *)

let test_bus_transfer_time () =
  let bus = Interconnect.default in
  Alcotest.(check (float 1e-12)) "zero bytes" 0. (Interconnect.transfer_time_s bus ~bytes:0.);
  let t = Interconnect.transfer_time_s bus ~bytes:32e9 in
  Alcotest.(check bool) "1 second plus latency" true (t > 1.0 && t < 1.001)

let test_bus_energy () =
  Alcotest.(check (float 1e-15)) "per byte" 4e-12
    (Interconnect.transfer_energy_j Interconnect.default ~bytes:1.)

(* Energy *)

let test_energy_mvm () =
  let e = Energy.mvm_j Config.chip_s ~macro_ops:1000. in
  Alcotest.(check (float 1e-12)) "1000 ops" (1000. *. 0.5e-9) e

let test_energy_weight_write () =
  (* 1 logical weight byte = 2 weights = 8 cell-columns... for the default
     crossbar, 1 byte of 4-bit weights occupies 8 one-bit cells. *)
  let e = Energy.weight_write_j Config.chip_s ~bytes:1. in
  Alcotest.(check (float 1e-15)) "8 cell bits" (8. *. 1e-12) e

let test_energy_static () =
  Alcotest.(check (float 1e-12)) "1 ms at 1.57 W" 1.57e-3
    (Energy.static_j Config.chip_s ~seconds:1e-3)

let test_energy_negative_rejected () =
  Alcotest.(check bool) "negative" true
    (try
       ignore (Energy.mvm_j Config.chip_s ~macro_ops:(-1.));
       false
     with Invalid_argument _ -> true)

(* Properties *)

let prop_tiles_monotone =
  QCheck.Test.make ~name:"tiles monotone in matrix size" ~count:300
    QCheck.(pair (int_range 1 5000) (int_range 1 5000))
    (fun (rows, cols) ->
      let x = Crossbar.default in
      Crossbar.tiles_for x ~rows ~cols <= Crossbar.tiles_for x ~rows:(rows + 1) ~cols
      && Crossbar.tiles_for x ~rows ~cols <= Crossbar.tiles_for x ~rows ~cols:(cols + 1))

let prop_tiles_cover_matrix =
  QCheck.Test.make ~name:"tile grid covers the matrix" ~count:300
    QCheck.(pair (int_range 1 30000) (int_range 1 8000))
    (fun (rows, cols) ->
      let x = Crossbar.default in
      let rb, cb = Crossbar.tile_grid x ~rows ~cols in
      rb * 256 >= rows
      && cb * Crossbar.logical_cols x >= cols
      && (rb - 1) * 256 < rows
      && (cb - 1) * Crossbar.logical_cols x < cols)

let prop_bus_time_additive_bound =
  QCheck.Test.make ~name:"bus time scales with bytes" ~count:200
    QCheck.(pair (float_range 1. 1e9) (float_range 1. 1e9))
    (fun (a, b) ->
      let bus = Interconnect.default in
      let t = Interconnect.transfer_time_s bus in
      t ~bytes:(a +. b) <= t ~bytes:a +. t ~bytes:b)

let () =
  Alcotest.run "compass_arch"
    [
      ( "crossbar",
        [
          Alcotest.test_case "default geometry" `Quick test_default_geometry;
          Alcotest.test_case "tile grid" `Quick test_tile_grid;
          Alcotest.test_case "tile grid invalid" `Quick test_tile_grid_invalid;
          Alcotest.test_case "write latency" `Quick test_write_latency;
          Alcotest.test_case "make validation" `Quick test_make_validation;
          QCheck_alcotest.to_alcotest prop_tiles_monotone;
          QCheck_alcotest.to_alcotest prop_tiles_cover_matrix;
        ] );
      ( "config",
        [
          Alcotest.test_case "Table I capacities" `Quick test_preset_capacities;
          Alcotest.test_case "Table I macro counts" `Quick test_preset_macros;
          Alcotest.test_case "Table I powers" `Quick test_preset_powers;
          Alcotest.test_case "core component power" `Quick test_core_component_power;
          Alcotest.test_case "by_label" `Quick test_by_label;
          Alcotest.test_case "core capacity" `Quick test_core_capacity;
          Alcotest.test_case "custom chip" `Quick test_custom_chip;
          Alcotest.test_case "macro static power" `Quick test_macro_static_power_positive;
          Alcotest.test_case "table1 rows" `Quick test_table1_rows;
        ] );
      ( "interconnect",
        [
          Alcotest.test_case "transfer time" `Quick test_bus_transfer_time;
          Alcotest.test_case "transfer energy" `Quick test_bus_energy;
          QCheck_alcotest.to_alcotest prop_bus_time_additive_bound;
        ] );
      ( "energy",
        [
          Alcotest.test_case "mvm" `Quick test_energy_mvm;
          Alcotest.test_case "weight write" `Quick test_energy_weight_write;
          Alcotest.test_case "static" `Quick test_energy_static;
          Alcotest.test_case "negative rejected" `Quick test_energy_negative_rejected;
        ] );
    ]
