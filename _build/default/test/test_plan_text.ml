(* Tests for plan serialization and the per-layer report. *)

open Compass_core
open Compass_arch

let quick = Ga.quick_params

let compile ?(batch = 8) name scheme =
  Compiler.compile ~ga_params:quick ~model:(Compass_nn.Models.by_name name)
    ~chip:Config.chip_s ~batch scheme

let test_roundtrip_zoo_plan () =
  let plan = compile "resnet18" Compiler.Compass in
  let reloaded = Plan_text.of_string (Plan_text.to_string plan) in
  Alcotest.(check bool) "same group" true
    (Partition.equal plan.Compiler.group reloaded.Compiler.group);
  Alcotest.(check int) "same batch" plan.Compiler.batch reloaded.Compiler.batch;
  Alcotest.(check bool) "same scheme" true (reloaded.Compiler.scheme = Compiler.Compass);
  Alcotest.(check (float 1e-12)) "same estimated latency"
    plan.Compiler.perf.Estimator.batch_latency_s
    reloaded.Compiler.perf.Estimator.batch_latency_s

let test_roundtrip_custom_model () =
  (* Non-zoo models are embedded inline via Model_text. *)
  let model =
    Compass_nn.Model_text.parse
      "model custom9\ninput in 3x16x16\nconv c1 from in out=8 kernel=3\nrelu r from c1\ngap g from r\nlinear fc from g out=4\n"
  in
  let plan =
    Compiler.compile ~ga_params:quick ~model ~chip:Config.chip_s ~batch:2 Compiler.Greedy
  in
  let text = Plan_text.to_string plan in
  Alcotest.(check bool) "embeds the model" true
    (String.length text > 0
    &&
    let re = "model-text" in
    let rec contains i =
      i + String.length re <= String.length text
      && (String.sub text i (String.length re) = re || contains (i + 1))
    in
    contains 0);
  let reloaded = Plan_text.of_string text in
  Alcotest.(check string) "model name survives" "custom9"
    (Compass_nn.Graph.name reloaded.Compiler.model);
  Alcotest.(check bool) "same group" true
    (Partition.equal plan.Compiler.group reloaded.Compiler.group)

let test_save_load_file () =
  let plan = compile "lenet5" Compiler.Greedy in
  let path = Filename.temp_file "compass" ".plan" in
  Plan_text.save path plan;
  let reloaded = Plan_text.load path in
  Sys.remove path;
  Alcotest.(check bool) "same group" true
    (Partition.equal plan.Compiler.group reloaded.Compiler.group)

let check_load_error text fragment =
  try
    ignore (Plan_text.of_string text);
    Alcotest.fail "expected Load_error"
  with Plan_text.Load_error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "error mentions %s (got %S)" fragment msg)
      true
      (let re = fragment in
       let rec contains i =
         i + String.length re <= String.length msg
         && (String.sub msg i (String.length re) = re || contains (i + 1))
       in
       contains 0)

let test_load_errors () =
  check_load_error "garbage" "malformed line";
  check_load_error "note hello\n" "not a compass-plan";
  check_load_error "compass-plan 1\nchip S\nbatch 2\nobjective latency\nscheme greedy\ncuts 0 1\n"
    "missing field model";
  check_load_error
    "compass-plan 1\nmodel nosuch\nchip S\nbatch 2\nobjective latency\nscheme greedy\ncuts 0 1\n"
    "unknown zoo model";
  check_load_error
    "compass-plan 1\nmodel lenet5\nchip S\nbatch 2\nobjective latency\nscheme greedy\ncuts 0 1\n"
    "cover";
  check_load_error
    "compass-plan 1\nmodel lenet5\nchip S\nbatch 0\nobjective latency\nscheme greedy\ncuts 0 5\n"
    "bad batch"

let test_wrong_chip_rejected () =
  (* Cuts computed for chip S do not cover the chip L decomposition. *)
  let plan = compile "resnet18" Compiler.Greedy in
  let text = Plan_text.to_string plan in
  let retargeted =
    String.concat "\n"
      (List.map
         (fun line -> if line = "chip S" then "chip L" else line)
         (String.split_on_char '\n' text))
  in
  check_load_error retargeted "different hardware"

let test_plan_layer_table () =
  let plan = compile "resnet18" Compiler.Compass in
  let table = Report.plan_layer_table plan in
  (* One row per (layer, partition) stage entry. *)
  let stage_rows =
    List.fold_left
      (fun acc sp -> acc + List.length sp.Estimator.stage_times)
      0 plan.Compiler.perf.Estimator.spans
  in
  Alcotest.(check int) "row per stage" stage_rows (Compass_util.Table.row_count table)

let () =
  Alcotest.run "plan_text"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "zoo plan" `Quick test_roundtrip_zoo_plan;
          Alcotest.test_case "custom model plan" `Quick test_roundtrip_custom_model;
          Alcotest.test_case "save/load file" `Quick test_save_load_file;
        ] );
      ( "errors",
        [
          Alcotest.test_case "load errors" `Quick test_load_errors;
          Alcotest.test_case "wrong chip rejected" `Quick test_wrong_chip_rejected;
        ] );
      ( "report",
        [ Alcotest.test_case "per-layer table" `Quick test_plan_layer_table ] );
    ]
