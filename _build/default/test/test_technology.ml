(* Tests for IMC technology presets (paper Sec. V-B) and their effect on
   compilation. *)

open Compass_arch
open Compass_core

let test_presets () =
  Alcotest.(check int) "three presets" 3 (List.length Technology.presets);
  Alcotest.(check string) "lookup" "reram" (Technology.by_name "ReRAM").Technology.name;
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (Technology.by_name "pcm");
       false
     with Not_found -> true)

let test_write_path_ordering () =
  let lat t = t.Technology.row_write_latency_s in
  let en t = t.Technology.write_energy_per_bit_j in
  Alcotest.(check bool) "sram fastest" true
    (lat Technology.sram < lat Technology.mram && lat Technology.mram < lat Technology.reram);
  Alcotest.(check bool) "sram cheapest" true
    (en Technology.sram < en Technology.mram && en Technology.mram < en Technology.reram)

let test_crossbar_retarget () =
  let x = Technology.crossbar Technology.reram in
  Alcotest.(check (float 0.)) "write latency" 10e-6 x.Crossbar.row_write_latency_s;
  (* Geometry and read path untouched. *)
  Alcotest.(check int) "rows" Crossbar.default.Crossbar.rows x.Crossbar.rows;
  Alcotest.(check (float 0.)) "mvm latency" Crossbar.default.Crossbar.mvm_latency_s
    x.Crossbar.mvm_latency_s

let test_chip_retarget () =
  let chip = Technology.chip Technology.mram Config.chip_s in
  Alcotest.(check (float 1e-9)) "capacity unchanged"
    (Config.capacity_bytes Config.chip_s)
    (Config.capacity_bytes chip);
  Alcotest.(check string) "label suffixed" "S-mram" chip.Config.label;
  Alcotest.(check (float 0.)) "write path swapped" 2e-6
    chip.Config.crossbar.Crossbar.row_write_latency_s

let test_lifetime () =
  Alcotest.(check bool) "sram unlimited" true
    (Technology.lifetime_s Technology.sram ~rewrites_per_cell_per_s:100. = None);
  (match Technology.lifetime_s Technology.reram ~rewrites_per_cell_per_s:10. with
  | Some s -> Alcotest.(check (float 1.)) "1e6/10" 1e5 s
  | None -> Alcotest.fail "reram must be finite");
  (match Technology.lifetime_s Technology.reram ~rewrites_per_cell_per_s:0. with
  | Some s -> Alcotest.(check bool) "idle lasts forever" true (s = infinity)
  | None -> Alcotest.fail "reram rate 0");
  Alcotest.(check bool) "negative rate rejected" true
    (try
       ignore (Technology.lifetime_s Technology.reram ~rewrites_per_cell_per_s:(-1.));
       false
     with Invalid_argument _ -> true)

let compile_tech tech =
  Compiler.compile ~ga_params:Ga.quick_params
    ~model:(Compass_nn.Models.squeezenet ())
    ~chip:(Technology.chip tech Config.chip_s)
    ~batch:16 Compiler.Compass

let test_reram_slower_than_sram () =
  let sram = compile_tech Technology.sram in
  let reram = compile_tech Technology.reram in
  Alcotest.(check bool) "writes dominate reram" true
    (reram.Compiler.perf.Estimator.throughput_per_s
    < sram.Compiler.perf.Estimator.throughput_per_s);
  Alcotest.(check bool) "reram more energy" true
    (reram.Compiler.perf.Estimator.energy_per_sample_j
    > sram.Compiler.perf.Estimator.energy_per_sample_j)

let test_reram_prefers_fewer_partitions () =
  let sram = compile_tech Technology.sram in
  let reram = compile_tech Technology.reram in
  Alcotest.(check bool) "partition count does not grow" true
    (Partition.partition_count reram.Compiler.group
    <= Partition.partition_count sram.Compiler.group)

let () =
  Alcotest.run "technology"
    [
      ( "presets",
        [
          Alcotest.test_case "presets" `Quick test_presets;
          Alcotest.test_case "write path ordering" `Quick test_write_path_ordering;
          Alcotest.test_case "crossbar retarget" `Quick test_crossbar_retarget;
          Alcotest.test_case "chip retarget" `Quick test_chip_retarget;
          Alcotest.test_case "lifetime" `Quick test_lifetime;
        ] );
      ( "compilation",
        [
          Alcotest.test_case "reram slower than sram" `Quick test_reram_slower_than_sram;
          Alcotest.test_case "reram prefers fewer partitions" `Quick
            test_reram_prefers_fewer_partitions;
        ] );
    ]
