(* Tests for the crossbar weight-image backend. *)

open Compass_core
open Compass_nn

let setup name chip =
  let model = Models.by_name name in
  let units = Unit_gen.generate model chip in
  let v = Validity.build units in
  (model, units, v, Dataflow.context units)

let tiny_chip = Compass_arch.Config.custom ~label:"tiny" ~cores:2 ~macros_per_core:2 ()

let test_reconstruction_exact () =
  (* Packing then unpacking reproduces the quantized weight matrix. *)
  let model, units, v, ctx = setup "lenet5" Compass_arch.Config.chip_s in
  ignore units;
  let weights = Executor.random_weights model in
  let group = Baselines.greedy v in
  let layout = Weight_layout.pack_partition ctx group ~partition:0 ~weights () in
  List.iter
    (fun node ->
      match Weight_layout.reconstruct_layer ctx layout node with
      | None -> Alcotest.fail "layer missing from single partition"
      | Some rebuilt ->
        let original = Hashtbl.find weights node in
        let snapped, _ = Quant.quantize ~bits:4 original in
        Alcotest.(check int) "same size" (Array.length snapped) (Array.length rebuilt);
        Array.iteri
          (fun i x ->
            Alcotest.(check (float 1e-9))
              (Printf.sprintf "weight %d" i)
              x rebuilt.(i))
          snapped)
    (Graph.weighted_nodes model)

let test_reconstruction_multi_partition () =
  (* On a tiny chip, layers split across partitions; each partition rebuilds
     exactly its own column range. *)
  let model, units, v, ctx = setup "lenet5" tiny_chip in
  let weights = Executor.random_weights model in
  let group = Baselines.greedy v in
  let nparts = Partition.partition_count group in
  Alcotest.(check bool) "actually multi-partition" true (nparts > 1);
  (* Sum the reconstructed matrices across partitions: every weight must be
     covered exactly once (column slices are disjoint). *)
  List.iter
    (fun node ->
      let op = (Graph.layer model node).Layer.op in
      let n = Layer.weight_params op in
      let acc = Array.make n 0. in
      let covered = Array.make n 0 in
      for p = 0 to nparts - 1 do
        let layout = Weight_layout.pack_partition ctx group ~partition:p ~weights () in
        match Weight_layout.reconstruct_layer ctx layout node with
        | None -> ()
        | Some rebuilt ->
          let u_list = Unit_gen.units_of_layer units node in
          ignore u_list;
          Array.iteri
            (fun i x ->
              if x <> 0. then begin
                acc.(i) <- acc.(i) +. x;
                covered.(i) <- covered.(i) + 1
              end)
            rebuilt
      done;
      let snapped, _ = Quant.quantize ~bits:4 (Hashtbl.find weights node) in
      Array.iteri
        (fun i x ->
          if x <> 0. then begin
            Alcotest.(check bool) "covered at most once" true (covered.(i) <= 1);
            Alcotest.(check (float 1e-9)) "value correct" x acc.(i)
          end)
        snapped)
    (Graph.weighted_nodes model)

let test_depthwise_reconstruction () =
  (* Grouped convolutions pack and reconstruct too. *)
  let text =
    "model dwpack\ninput in 8x8x8\ndepthwise dw from in kernel=3\nconv pw from dw out=16 kernel=1 pad=0\ngap g from pw\nlinear fc from g out=4\n"
  in
  let model = Model_text.parse text in
  let units = Unit_gen.generate model Compass_arch.Config.chip_s in
  let v = Validity.build units in
  let ctx = Dataflow.context units in
  let weights = Executor.random_weights model in
  let layout =
    Weight_layout.pack_partition ctx (Baselines.greedy v) ~partition:0 ~weights ()
  in
  List.iter
    (fun node ->
      match Weight_layout.reconstruct_layer ctx layout node with
      | None -> Alcotest.fail "layer missing"
      | Some rebuilt ->
        let snapped, _ = Quant.quantize ~bits:4 (Hashtbl.find weights node) in
        Array.iteri
          (fun i x -> Alcotest.(check (float 1e-9)) "depthwise weight" x rebuilt.(i))
          snapped)
    (Graph.weighted_nodes model)

let test_row_split_reconstruction () =
  (* A core with a single macro forces row-splitting (partial-sum units);
     packing must still cover every weight exactly once. *)
  let chip = Compass_arch.Config.custom ~label:"one" ~cores:4 ~macros_per_core:1 () in
  let model = Models.lenet5 () in
  let units = Unit_gen.generate model chip in
  Alcotest.(check bool) "row-split units exist" true
    (Array.exists (fun u -> u.Unit_gen.partial_sum) units.Unit_gen.units);
  let v = Validity.build units in
  let ctx = Dataflow.context units in
  let weights = Executor.random_weights model in
  let group = Baselines.greedy v in
  let nparts = Partition.partition_count group in
  List.iter
    (fun node ->
      let n = Layer.weight_params (Graph.layer model node).Layer.op in
      let acc = Array.make n 0. in
      let covered = Array.make n 0 in
      for p = 0 to nparts - 1 do
        let layout = Weight_layout.pack_partition ctx group ~partition:p ~weights () in
        match Weight_layout.reconstruct_layer ctx layout node with
        | None -> ()
        | Some rebuilt ->
          Array.iteri
            (fun i x ->
              if x <> 0. then begin
                acc.(i) <- acc.(i) +. x;
                covered.(i) <- covered.(i) + 1
              end)
            rebuilt
      done;
      let snapped, _ = Quant.quantize ~bits:4 (Hashtbl.find weights node) in
      Array.iteri
        (fun i x ->
          if x <> 0. then begin
            Alcotest.(check bool) "row-split covered once" true (covered.(i) <= 1);
            Alcotest.(check (float 1e-9)) "row-split value" x acc.(i)
          end)
        snapped)
    (Graph.weighted_nodes model)

let test_codes_within_precision () =
  let model, _, v, ctx = setup "tiny_resnet" Compass_arch.Config.chip_s in
  let weights = Executor.random_weights model in
  let layout =
    Weight_layout.pack_partition ctx (Baselines.greedy v) ~partition:0 ~weights ()
  in
  List.iter
    (fun img ->
      Array.iter
        (fun c -> Alcotest.(check bool) "4-bit code" true (c >= -7 && c <= 7))
        img.Weight_layout.codes)
    layout.Weight_layout.images

let test_macro_count_matches_mapping () =
  (* Image count = sum over placed assignments of their tile grids. *)
  let model, units, v, ctx = setup "tiny_resnet" Compass_arch.Config.chip_s in
  ignore model;
  let group = Baselines.greedy v in
  let weights = Executor.random_weights (Dataflow.units ctx).Unit_gen.model in
  let layout = Weight_layout.pack_partition ctx group ~partition:0 ~weights () in
  (* At least one macro per unit in the span, replicas included. *)
  let span = Partition.span_at group 0 in
  let span_units = span.Partition.stop - span.Partition.start_ in
  Alcotest.(check bool) "at least one image per unit" true
    (Weight_layout.total_macros layout >= span_units);
  Alcotest.(check bool) "programmed bytes positive" true
    (Weight_layout.programmed_bytes layout > 0.);
  ignore units

let test_replicas_are_copies () =
  let model, _, v, ctx = setup "squeezenet" Compass_arch.Config.chip_s in
  let weights = Executor.random_weights model in
  let layout =
    Weight_layout.pack_partition ctx (Baselines.greedy v) ~partition:0 ~weights ()
  in
  (* Any replica image equals its replica-0 counterpart. *)
  let base = Hashtbl.create 64 in
  List.iter
    (fun img ->
      if img.Weight_layout.replica = 0 then
        Hashtbl.replace base
          (img.Weight_layout.unit_index, img.Weight_layout.row_block, img.Weight_layout.col_block)
          img.Weight_layout.codes)
    layout.Weight_layout.images;
  let checked = ref 0 in
  List.iter
    (fun img ->
      if img.Weight_layout.replica > 0 then begin
        incr checked;
        match
          Hashtbl.find_opt base
            (img.Weight_layout.unit_index, img.Weight_layout.row_block, img.Weight_layout.col_block)
        with
        | Some codes ->
          Alcotest.(check bool) "replica identical" true (codes = img.Weight_layout.codes)
        | None -> Alcotest.fail "replica without base image"
      end)
    layout.Weight_layout.images;
  Alcotest.(check bool) "replication exercised" true (!checked > 0)

let test_missing_weights_rejected () =
  let _, _, v, ctx = setup "lenet5" Compass_arch.Config.chip_s in
  Alcotest.(check bool) "missing weights" true
    (try
       ignore
         (Weight_layout.pack_partition ctx (Baselines.greedy v) ~partition:0
            ~weights:(Hashtbl.create 1) ());
       false
     with Invalid_argument _ -> true)

let test_partition_out_of_range () =
  let model, _, v, ctx = setup "lenet5" Compass_arch.Config.chip_s in
  let weights = Executor.random_weights model in
  Alcotest.(check bool) "range checked" true
    (try
       ignore
         (Weight_layout.pack_partition ctx (Baselines.greedy v) ~partition:99 ~weights ());
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "weight_layout"
    [
      ( "packing",
        [
          Alcotest.test_case "reconstruction exact" `Quick test_reconstruction_exact;
          Alcotest.test_case "multi-partition coverage" `Quick
            test_reconstruction_multi_partition;
          Alcotest.test_case "codes within precision" `Quick test_codes_within_precision;
          Alcotest.test_case "depthwise reconstruction" `Quick
            test_depthwise_reconstruction;
          Alcotest.test_case "row-split reconstruction" `Quick
            test_row_split_reconstruction;
          Alcotest.test_case "macro count" `Quick test_macro_count_matches_mapping;
          Alcotest.test_case "replicas are copies" `Quick test_replicas_are_copies;
          Alcotest.test_case "missing weights" `Quick test_missing_weights_rejected;
          Alcotest.test_case "partition range" `Quick test_partition_out_of_range;
        ] );
    ]
