(* Tests for the memory allocator and the instruction scheduler, including
   cross-validation of the analytic estimator against the chip simulator. *)

open Compass_core
open Compass_arch

let setup name chip =
  let units = Unit_gen.generate (Compass_nn.Models.by_name name) chip in
  let v = Validity.build units in
  (units, v, Dataflow.context units)

(* Memory_alloc *)

let test_alloc_basic () =
  let a = Memory_alloc.create ~capacity:4096 () in
  let x = Memory_alloc.alloc a ~bytes:100 ~tag:"x" in
  let y = Memory_alloc.alloc a ~bytes:100 ~tag:"y" in
  Alcotest.(check bool) "disjoint" true (y >= x + 128 || x >= y + 128);
  Alcotest.(check int) "live rounds to alignment" 256 (Memory_alloc.live_bytes a);
  Alcotest.(check bool) "invariants" true (Memory_alloc.check_invariants a = Ok ())

let test_alloc_free_reuse () =
  let a = Memory_alloc.create ~capacity:1024 () in
  let x = Memory_alloc.alloc a ~bytes:512 ~tag:"x" in
  Memory_alloc.free a x;
  let y = Memory_alloc.alloc a ~bytes:1024 ~tag:"y" in
  Alcotest.(check int) "coalesced reuse" 0 y;
  Alcotest.(check int) "high water" 1024 (Memory_alloc.high_water_bytes a)

let test_alloc_exhaustion () =
  let a = Memory_alloc.create ~capacity:128 () in
  let _ = Memory_alloc.alloc a ~bytes:128 ~tag:"x" in
  Alcotest.(check bool) "failure raised" true
    (try
       ignore (Memory_alloc.alloc a ~bytes:1 ~tag:"y");
       false
     with Failure _ -> true)

let test_alloc_double_free () =
  let a = Memory_alloc.create ~capacity:1024 () in
  let x = Memory_alloc.alloc a ~bytes:64 ~tag:"x" in
  Memory_alloc.free a x;
  Alcotest.(check bool) "double free rejected" true
    (try
       Memory_alloc.free a x;
       false
     with Invalid_argument _ -> true)

let test_alloc_fragmentation_coalesce () =
  let a = Memory_alloc.create ~capacity:4096 () in
  let blocks = List.init 8 (fun i -> Memory_alloc.alloc a ~bytes:512 ~tag:(string_of_int i)) in
  List.iter (Memory_alloc.free a) blocks;
  (* After freeing everything the full arena is one block again. *)
  let big = Memory_alloc.alloc a ~bytes:4096 ~tag:"big" in
  Alcotest.(check int) "full arena" 0 big;
  Alcotest.(check bool) "invariants" true (Memory_alloc.check_invariants a = Ok ())

let test_alloc_live_blocks_sorted () =
  let a = Memory_alloc.create ~capacity:4096 () in
  let _ = Memory_alloc.alloc a ~bytes:64 ~tag:"a" in
  let _ = Memory_alloc.alloc a ~bytes:64 ~tag:"b" in
  let blocks = Memory_alloc.live_blocks a in
  Alcotest.(check int) "two live" 2 (List.length blocks);
  let addrs = List.map (fun (x, _, _) -> x) blocks in
  Alcotest.(check (list int)) "ascending" (List.sort compare addrs) addrs

(* Scheduler *)

let build name chip scheme batch =
  let _, v, ctx = setup name chip in
  let g = match scheme with `Greedy -> Baselines.greedy v | `Layerwise -> Baselines.layerwise v in
  (ctx, g, Scheduler.build ctx g ~batch ())

let test_programs_validate () =
  List.iter
    (fun name ->
      let ctx, _, sched = build name Config.chip_s `Greedy 8 in
      let chip = (Dataflow.units ctx).Unit_gen.chip in
      Alcotest.(check bool) (name ^ " programs validate") true
        (Compass_isa.Program.validate ~cores:chip.Config.cores sched.Scheduler.programs
        = Ok ()))
    [ "lenet5"; "squeezenet"; "resnet18" ]

let test_one_program_per_core () =
  let ctx, _, sched = build "resnet18" Config.chip_s `Greedy 8 in
  let chip = (Dataflow.units ctx).Unit_gen.chip in
  Alcotest.(check int) "program count" chip.Config.cores
    (List.length sched.Scheduler.programs)

let test_weight_region_covers_model () =
  let ctx, _, sched = build "resnet18" Config.chip_s `Greedy 8 in
  let units = Dataflow.units ctx in
  let model_bytes = Unit_gen.span_weight_bytes units 0 (Unit_gen.unit_count units) in
  Alcotest.(check bool) "region at least model size" true
    (float_of_int sched.Scheduler.weight_region_bytes >= model_bytes)

let test_simulation_completes () =
  List.iter
    (fun (name, scheme) ->
      let ctx, _, sched = build name Config.chip_s scheme 8 in
      let r = Scheduler.simulate ctx sched in
      Alcotest.(check bool) (name ^ " makespan positive") true
        (r.Compass_isa.Sim.makespan_s > 0.))
    [ ("lenet5", `Greedy); ("squeezenet", `Greedy); ("squeezenet", `Layerwise);
      ("resnet18", `Greedy); ("resnet18", `Layerwise) ]

let test_sim_vs_estimator_bounded () =
  (* The simulator serializes chunk pipelines conservatively; it must stay
     within a bounded factor of the analytic estimate. *)
  List.iter
    (fun name ->
      let _, v, ctx = setup name Config.chip_s in
      let g = Baselines.greedy v in
      let est = (Estimator.evaluate ctx ~batch:8 g).Estimator.batch_latency_s in
      let sched = Scheduler.build ctx g ~batch:8 () in
      let sim = (Scheduler.simulate ctx sched).Compass_isa.Sim.makespan_s in
      let ratio = sim /. est in
      Alcotest.(check bool)
        (Printf.sprintf "%s ratio %.2f in [0.7, 6]" name ratio)
        true
        (ratio > 0.7 && ratio < 6.))
    [ "lenet5"; "squeezenet"; "resnet18"; "vgg16" ]

let test_sim_weight_bytes_match_estimator () =
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let g = Baselines.greedy v in
  let units = Dataflow.units ctx in
  let model_bytes = Unit_gen.span_weight_bytes units 0 (Unit_gen.unit_count units) in
  let sched = Scheduler.build ctx g ~batch:8 () in
  let sim = Scheduler.simulate ctx sched in
  (* Broadcast: DRAM weight traffic equals unique model bytes. *)
  Alcotest.(check (float 64.)) "weights fetched once" model_bytes
    sim.Compass_isa.Sim.weight_bytes

let test_dram_trace_replay () =
  let ctx, _, sched = build "resnet18" Config.chip_s `Greedy 8 in
  let sim = Scheduler.simulate ctx sched in
  let stats = Scheduler.dram_stats ctx sim in
  Alcotest.(check bool) "bytes positive" true (stats.Compass_dram.Controller.bytes > 0.);
  Alcotest.(check bool) "streaming hits" true
    (Compass_dram.Controller.row_hit_rate stats > 0.8);
  (* Trace totals match the simulator's byte counters. *)
  let sim_bytes =
    sim.Compass_isa.Sim.weight_bytes +. sim.Compass_isa.Sim.load_bytes
    +. sim.Compass_isa.Sim.store_bytes
  in
  Alcotest.(check bool) "trace within rounding of counters" true
    (abs_float (stats.Compass_dram.Controller.bytes -. sim_bytes)
    < 4. *. float_of_int (List.length sim.Compass_isa.Sim.dram_trace))

let test_layerwise_more_dram_traffic () =
  (* The paper's Fig. 7 diagnosis: layerwise moves more intermediate
     features through global memory than coarse partitioning.  At batch 8
     most boundary tensors still fit the on-chip buffers, so compare total
     boundary traffic (estimator) and check bus occupancy follows. *)
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let traffic scheme =
    let g = match scheme with `Greedy -> Baselines.greedy v | `Layerwise -> Baselines.layerwise v in
    let p = Estimator.evaluate ctx ~batch:8 g in
    let est =
      List.fold_left
        (fun acc sp -> acc +. sp.Estimator.io_load_bytes +. sp.Estimator.io_store_bytes)
        0. p.Estimator.spans
    in
    est
  in
  (* Intra-partition bus traffic differs per scheme, so only the boundary
     bytes carry the paper's claim. *)
  Alcotest.(check bool) "layerwise moves more boundary bytes" true
    (traffic `Layerwise > traffic `Greedy)

let test_chunks_clamped () =
  let _, v, ctx = setup "lenet5" Config.chip_s in
  let g = Baselines.greedy v in
  (* chunks > batch must not crash or duplicate work. *)
  let s1 = Scheduler.build ctx g ~batch:2 ~chunks:16 () in
  let r1 = Scheduler.simulate ctx s1 in
  Alcotest.(check bool) "completes" true (r1.Compass_isa.Sim.makespan_s > 0.)

let test_mvm_work_preserved () =
  (* Total macro operations in the simulation match the analytic count. *)
  let _, v, ctx = setup "squeezenet" Config.chip_s in
  let g = Baselines.greedy v in
  let batch = 4 in
  let est = Estimator.evaluate ctx ~batch g in
  let est_macro_ops =
    List.fold_left (fun acc sp -> acc +. (sp.Estimator.mvm_energy_j /. 0.5e-9)) 0.
      est.Estimator.spans
  in
  let sched = Scheduler.build ctx g ~batch () in
  let sim = Scheduler.simulate ctx sched in
  let ratio = sim.Compass_isa.Sim.mvm_macro_ops /. est_macro_ops in
  Alcotest.(check bool)
    (Printf.sprintf "macro ops preserved (ratio %.2f)" ratio)
    true
    (ratio > 0.9 && ratio < 1.4)

let test_program_phase_structure () =
  (* Every core gets one Sync per partition, tokens ascending, and any
     Weight_write for span p precedes the span's barrier. *)
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let g = Baselines.greedy v in
  let nspans = Partition.partition_count g in
  let sched = Scheduler.build ctx g ~batch:4 () in
  List.iter
    (fun p ->
      let tokens =
        List.filter_map
          (function Compass_isa.Instr.Sync { token; _ } -> Some token | _ -> None)
          p.Compass_isa.Program.instrs
      in
      Alcotest.(check int) "one sync per span" nspans (List.length tokens);
      Alcotest.(check (list int)) "tokens ascending" (List.init nspans (fun i -> i)) tokens)
    sched.Scheduler.programs

let test_instruction_mix_sane () =
  let _, v, ctx = setup "squeezenet" Config.chip_s in
  let g = Baselines.greedy v in
  let sched = Scheduler.build ctx g ~batch:4 () in
  let mix = Compass_isa.Program.instruction_mix sched.Scheduler.programs in
  let count k = Option.value ~default:0 (List.assoc_opt k mix) in
  Alcotest.(check bool) "has mvm" true (count "mvm" > 0);
  Alcotest.(check bool) "has weight writes" true (count "weight_write" > 0);
  Alcotest.(check int) "sends match recvs" (count "send") (count "recv")

let test_invalid_batch () =
  let _, v, ctx = setup "lenet5" Config.chip_s in
  Alcotest.(check bool) "batch 0 rejected" true
    (try
       ignore (Scheduler.build ctx (Baselines.greedy v) ~batch:0 ());
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "scheduler"
    [
      ( "memory_alloc",
        [
          Alcotest.test_case "basic" `Quick test_alloc_basic;
          Alcotest.test_case "free and reuse" `Quick test_alloc_free_reuse;
          Alcotest.test_case "exhaustion" `Quick test_alloc_exhaustion;
          Alcotest.test_case "double free" `Quick test_alloc_double_free;
          Alcotest.test_case "coalesce" `Quick test_alloc_fragmentation_coalesce;
          Alcotest.test_case "live blocks sorted" `Quick test_alloc_live_blocks_sorted;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "programs validate" `Quick test_programs_validate;
          Alcotest.test_case "one program per core" `Quick test_one_program_per_core;
          Alcotest.test_case "weight region size" `Quick test_weight_region_covers_model;
          Alcotest.test_case "simulation completes" `Quick test_simulation_completes;
          Alcotest.test_case "sim vs estimator bounded" `Slow test_sim_vs_estimator_bounded;
          Alcotest.test_case "weights fetched once" `Quick
            test_sim_weight_bytes_match_estimator;
          Alcotest.test_case "dram trace replay" `Quick test_dram_trace_replay;
          Alcotest.test_case "layerwise more traffic" `Quick
            test_layerwise_more_dram_traffic;
          Alcotest.test_case "chunks clamped" `Quick test_chunks_clamped;
          Alcotest.test_case "mvm work preserved" `Quick test_mvm_work_preserved;
          Alcotest.test_case "invalid batch" `Quick test_invalid_batch;
          Alcotest.test_case "phase structure" `Quick test_program_phase_structure;
          Alcotest.test_case "instruction mix sane" `Quick test_instruction_mix_sane;
        ] );
    ]
