(* Tests for the LPDDR3 model: timing, bank state machine, controller,
   analytic approximations. *)

open Compass_dram

let g = Timing.lpddr3_1600

(* Timing *)

let test_burst_geometry () =
  Alcotest.(check int) "32 B bursts" 32 (Timing.burst_bytes g);
  Alcotest.(check int) "4 cycles" 4 (Timing.burst_cycles g)

let test_peak_bandwidth () =
  Alcotest.(check (float 1e6)) "6.4 GB/s" 6.4e9 (Timing.peak_bandwidth_bytes_per_s g)

let test_timing_validation () =
  Alcotest.(check bool) "zero banks" true
    (try
       ignore (Timing.make ~banks:0 ());
       false
     with Invalid_argument _ -> true)

(* Bank *)

let test_bank_first_access_is_miss () =
  let b = Bank.create g in
  let o = Bank.access b ~now:0 ~row:3 ~write:false in
  Alcotest.(check bool) "miss" false o.Bank.row_hit;
  Alcotest.(check bool) "activated" true o.Bank.activated;
  Alcotest.(check bool) "no precharge needed" false o.Bank.precharged;
  Alcotest.(check int) "open row" 3
    (match Bank.open_row b with Some r -> r | None -> -1)

let test_bank_row_hit () =
  let b = Bank.create g in
  let first = Bank.access b ~now:0 ~row:3 ~write:false in
  let second = Bank.access b ~now:first.Bank.issue_cycle ~row:3 ~write:false in
  Alcotest.(check bool) "hit" true second.Bank.row_hit;
  Alcotest.(check bool) "hit is faster" true
    (second.Bank.data_cycle - second.Bank.issue_cycle
    < first.Bank.data_cycle - first.Bank.issue_cycle + 1)

let test_bank_conflict_precharges () =
  let b = Bank.create g in
  let _ = Bank.access b ~now:0 ~row:1 ~write:false in
  let o = Bank.access b ~now:100 ~row:2 ~write:false in
  Alcotest.(check bool) "precharged" true o.Bank.precharged;
  Alcotest.(check bool) "miss" false o.Bank.row_hit;
  (* PRE + ACT + CAS. *)
  Alcotest.(check bool) "full penalty" true
    (o.Bank.data_cycle >= 100 + g.Timing.trp + g.Timing.trcd + g.Timing.cl)

let test_bank_tras_respected () =
  let b = Bank.create g in
  let first = Bank.access b ~now:0 ~row:1 ~write:false in
  (* Immediately conflicting access: precharge cannot happen before
     activation + tRAS. *)
  let o = Bank.access b ~now:first.Bank.issue_cycle ~row:2 ~write:false in
  Alcotest.(check bool) "tRAS enforced" true
    (o.Bank.data_cycle
    >= g.Timing.tras + g.Timing.trp + g.Timing.trcd + g.Timing.cl)

let test_bank_negative_row () =
  let b = Bank.create g in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Bank.access b ~now:0 ~row:(-1) ~write:false);
       false
     with Invalid_argument _ -> true)

(* Trace *)

let test_trace_constructors () =
  let r = Trace.read ~tag:"w" ~addr:64 ~bytes:128 () in
  Alcotest.(check bool) "read kind" true (r.Trace.kind = Trace.Read);
  Alcotest.(check bool) "bad bytes" true
    (try
       ignore (Trace.write ~addr:0 ~bytes:0 ());
       false
     with Invalid_argument _ -> true)

let test_trace_totals () =
  let records =
    [ Trace.read ~addr:0 ~bytes:100 (); Trace.write ~addr:512 ~bytes:50 () ]
  in
  Alcotest.(check (float 1e-9)) "total" 150. (Trace.total_bytes records);
  Alcotest.(check (float 1e-9)) "reads" 100. (Trace.read_bytes records);
  Alcotest.(check (float 1e-9)) "writes" 50. (Trace.write_bytes records)

let test_trace_lines () =
  let lines =
    Trace.to_lines [ Trace.read ~tag:"x" ~addr:0x40 ~bytes:32 () ]
  in
  Alcotest.(check string) "format" "0x00000040 READ 32 x" lines

let test_trace_of_lines_roundtrip () =
  let records =
    [
      Trace.read ~tag:"weights:P0" ~addr:0 ~bytes:4096 ();
      Trace.write ~tag:"act:conv1" ~addr:65536 ~bytes:128 ();
      Trace.read ~addr:123456 ~bytes:32 ();
    ]
  in
  match Trace.of_lines (Trace.to_lines records) with
  | Ok parsed ->
    Alcotest.(check int) "count" 3 (List.length parsed);
    List.iter2
      (fun a b ->
        Alcotest.(check bool) "kind" true (a.Trace.kind = b.Trace.kind);
        Alcotest.(check int) "addr" a.Trace.addr b.Trace.addr;
        Alcotest.(check int) "bytes" a.Trace.bytes b.Trace.bytes;
        Alcotest.(check string) "tag" a.Trace.tag b.Trace.tag)
      records parsed
  | Error line -> Alcotest.fail ("unexpected parse error: " ^ line)

let test_trace_of_lines_comments_and_errors () =
  (match Trace.of_lines "# header\n\n0x0 READ 64 x\n" with
  | Ok [ r ] -> Alcotest.(check int) "bytes" 64 r.Trace.bytes
  | _ -> Alcotest.fail "expected one record");
  (match Trace.of_lines "0x0 NUKE 64\n" with
  | Error line -> Alcotest.(check string) "offending line" "0x0 NUKE 64" line
  | Ok _ -> Alcotest.fail "bad kind accepted");
  match Trace.of_lines "0x0 READ zero\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad size accepted"

(* Controller *)

let test_streaming_read () =
  let stats = Dram.simulate [ Trace.read ~tag:"s" ~addr:0 ~bytes:(1 lsl 20) () ] in
  Alcotest.(check int) "32768 bursts" 32768 stats.Controller.reads;
  Alcotest.(check bool) "high row-hit rate" true (Controller.row_hit_rate stats > 0.9);
  let bw = Controller.effective_bandwidth stats in
  Alcotest.(check bool) "within peak" true (bw <= Timing.peak_bandwidth_bytes_per_s g);
  Alcotest.(check bool) "near peak for streams" true
    (bw >= 0.75 *. Timing.peak_bandwidth_bytes_per_s g)

let test_random_access_slower () =
  let rng = Compass_util.Rng.create 5 in
  let stream = [ Trace.read ~addr:0 ~bytes:(256 * 32) () ] in
  let random =
    List.init 256 (fun _ ->
        Trace.read ~addr:(Compass_util.Rng.int rng 4096 * 2048) ~bytes:32 ())
  in
  let s1 = Dram.simulate stream in
  let s2 = Dram.simulate random in
  Alcotest.(check bool) "random has more misses" true
    (Controller.row_hit_rate s2 < Controller.row_hit_rate s1);
  Alcotest.(check bool) "random is slower" true
    (Controller.effective_bandwidth s2 < Controller.effective_bandwidth s1)

let test_refresh_happens () =
  (* A long stream must cross several tREFI windows. *)
  let stats = Dram.simulate [ Trace.read ~addr:0 ~bytes:(8 lsl 20) () ] in
  Alcotest.(check bool) "refreshes counted" true (stats.Controller.refreshes > 0)

let test_write_energy_higher_than_read () =
  let r = Dram.simulate [ Trace.read ~addr:0 ~bytes:65536 () ] in
  let w = Dram.simulate [ Trace.write ~addr:0 ~bytes:65536 () ] in
  Alcotest.(check bool) "write energy higher" true
    (w.Controller.energy_j > r.Controller.energy_j)

let test_capacity_guard () =
  Alcotest.(check bool) "beyond capacity" true
    (try
       ignore (Dram.simulate [ Trace.read ~addr:(1 lsl 62) ~bytes:64 () ]);
       false
     with Invalid_argument _ -> true)

let test_empty_trace () =
  let stats = Dram.simulate [] in
  Alcotest.(check int) "no cycles" 0 stats.Controller.cycles;
  Alcotest.(check (float 0.)) "hit rate zero" 0. (Controller.row_hit_rate stats)

let test_mapping_policies_agree_on_totals () =
  let trace = [ Trace.read ~addr:0 ~bytes:(512 * 1024) () ] in
  let row = Dram.simulate ~mapping:Controller.Row_interleaved trace in
  let bank = Dram.simulate ~mapping:Controller.Bank_interleaved trace in
  Alcotest.(check (float 0.)) "same bytes" row.Controller.bytes bank.Controller.bytes;
  Alcotest.(check int) "same bursts" row.Controller.reads bank.Controller.reads;
  Alcotest.(check bool) "both positive time" true
    (row.Controller.seconds > 0. && bank.Controller.seconds > 0.)

let test_bank_interleaved_helps_strided () =
  (* Row-size strides thrash a single row buffer under row-interleaving but
     rotate cleanly under bank-interleaving. *)
  let stride = g.Timing.row_bytes * g.Timing.banks in
  let records = List.init 64 (fun i -> Trace.read ~addr:(i * stride) ~bytes:32 ()) in
  let row = Dram.simulate ~mapping:Controller.Row_interleaved records in
  let bank = Dram.simulate ~mapping:Controller.Bank_interleaved records in
  Alcotest.(check bool) "row-interleaved thrashes one bank" true
    (Controller.row_hit_rate row <= Controller.row_hit_rate bank +. 1e-9);
  Alcotest.(check bool) "bank rotation is not slower" true
    (bank.Controller.seconds <= row.Controller.seconds +. 1e-9)

(* Analytic approximations vs the bank-accurate model. *)

let test_analytic_time_close () =
  let bytes = 4 lsl 20 in
  let stats = Dram.simulate [ Trace.read ~addr:0 ~bytes () ] in
  let analytic = Dram.analytic_seconds (float_of_int bytes) in
  let ratio = analytic /. stats.Controller.seconds in
  Alcotest.(check bool)
    (Printf.sprintf "within 30%% (ratio %.2f)" ratio)
    true
    (ratio > 0.7 && ratio < 1.3)

let test_analytic_energy_close () =
  let bytes = 4 lsl 20 in
  let stats = Dram.simulate [ Trace.read ~addr:0 ~bytes () ] in
  let analytic = Dram.analytic_energy_j (float_of_int bytes) in
  let ratio = analytic /. stats.Controller.energy_j in
  Alcotest.(check bool)
    (Printf.sprintf "within 40%% (ratio %.2f)" ratio)
    true
    (ratio > 0.6 && ratio < 1.4)

let test_analytic_zero () =
  Alcotest.(check (float 0.)) "zero bytes" 0. (Dram.analytic_seconds 0.)

(* Properties *)

let prop_latency_at_least_bandwidth_bound =
  QCheck.Test.make ~name:"latency >= data-bus bound" ~count:50
    QCheck.(int_range 32 (1 lsl 22))
    (fun bytes ->
      let stats = Dram.simulate [ Trace.read ~addr:0 ~bytes () ] in
      let bursts = (bytes + 31) / 32 in
      stats.Controller.cycles >= bursts * Timing.burst_cycles g)

let prop_energy_monotone_in_bytes =
  QCheck.Test.make ~name:"energy monotone in bytes" ~count:50
    QCheck.(int_range 64 (1 lsl 20))
    (fun bytes ->
      let e1 = (Dram.simulate [ Trace.read ~addr:0 ~bytes () ]).Controller.energy_j in
      let e2 =
        (Dram.simulate [ Trace.read ~addr:0 ~bytes:(2 * bytes) () ]).Controller.energy_j
      in
      e2 > e1)

let prop_hit_rate_bounded =
  QCheck.Test.make ~name:"row-hit rate in [0,1]" ~count:50
    QCheck.(pair (int_range 0 100000) (int_range 32 65536))
    (fun (addr, bytes) ->
      let addr = addr * 64 in
      let stats = Dram.simulate [ Trace.read ~addr ~bytes () ] in
      let r = Controller.row_hit_rate stats in
      r >= 0. && r <= 1.)

let () =
  Alcotest.run "compass_dram"
    [
      ( "timing",
        [
          Alcotest.test_case "burst geometry" `Quick test_burst_geometry;
          Alcotest.test_case "peak bandwidth" `Quick test_peak_bandwidth;
          Alcotest.test_case "validation" `Quick test_timing_validation;
        ] );
      ( "bank",
        [
          Alcotest.test_case "first access misses" `Quick test_bank_first_access_is_miss;
          Alcotest.test_case "row hit" `Quick test_bank_row_hit;
          Alcotest.test_case "conflict precharges" `Quick test_bank_conflict_precharges;
          Alcotest.test_case "tRAS respected" `Quick test_bank_tras_respected;
          Alcotest.test_case "negative row" `Quick test_bank_negative_row;
        ] );
      ( "trace",
        [
          Alcotest.test_case "constructors" `Quick test_trace_constructors;
          Alcotest.test_case "totals" `Quick test_trace_totals;
          Alcotest.test_case "lines" `Quick test_trace_lines;
          Alcotest.test_case "of_lines roundtrip" `Quick test_trace_of_lines_roundtrip;
          Alcotest.test_case "of_lines comments/errors" `Quick
            test_trace_of_lines_comments_and_errors;
        ] );
      ( "controller",
        [
          Alcotest.test_case "streaming read" `Quick test_streaming_read;
          Alcotest.test_case "random slower" `Quick test_random_access_slower;
          Alcotest.test_case "refresh happens" `Quick test_refresh_happens;
          Alcotest.test_case "write energy higher" `Quick
            test_write_energy_higher_than_read;
          Alcotest.test_case "capacity guard" `Quick test_capacity_guard;
          Alcotest.test_case "empty trace" `Quick test_empty_trace;
          Alcotest.test_case "mapping policies totals" `Quick
            test_mapping_policies_agree_on_totals;
          Alcotest.test_case "bank interleave strided" `Quick
            test_bank_interleaved_helps_strided;
          QCheck_alcotest.to_alcotest prop_latency_at_least_bandwidth_bound;
          QCheck_alcotest.to_alcotest prop_energy_monotone_in_bytes;
          QCheck_alcotest.to_alcotest prop_hit_rate_bounded;
        ] );
      ( "analytic",
        [
          Alcotest.test_case "time close to model" `Quick test_analytic_time_close;
          Alcotest.test_case "energy close to model" `Quick test_analytic_energy_close;
          Alcotest.test_case "zero bytes" `Quick test_analytic_zero;
        ] );
    ]
