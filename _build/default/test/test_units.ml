(* Tests for model decomposition into partition units. *)

open Compass_core
open Compass_arch

let gen name chip = Unit_gen.generate (Compass_nn.Models.by_name name) chip

let macros chip = chip.Config.core.Config.macros_per_core

let test_units_fit_core () =
  List.iter
    (fun (_, chip) ->
      List.iter
        (fun name ->
          let t = gen name chip in
          Array.iter
            (fun u ->
              Alcotest.(check bool)
                (Printf.sprintf "%s unit %d fits" name u.Unit_gen.index)
                true
                (u.Unit_gen.tiles >= 1 && u.Unit_gen.tiles <= macros chip))
            t.Unit_gen.units)
        [ "vgg16"; "resnet18"; "squeezenet"; "lenet5" ])
    Config.presets

let test_indices_dense () =
  let t = gen "resnet18" Config.chip_s in
  Array.iteri
    (fun i u -> Alcotest.(check int) "dense index" i u.Unit_gen.index)
    t.Unit_gen.units

let test_layer_units_contiguous () =
  let t = gen "vgg16" Config.chip_s in
  List.iter
    (fun (_, idxs) ->
      match idxs with
      | [] -> Alcotest.fail "layer without units"
      | first :: _ ->
        List.iteri
          (fun k i -> Alcotest.(check int) "contiguous" (first + k) i)
          idxs)
    t.Unit_gen.layer_units

let test_weight_bytes_cover_model () =
  List.iter
    (fun name ->
      let model = Compass_nn.Models.by_name name in
      let t = Unit_gen.generate model Config.chip_s in
      let expected = Compass_nn.Graph.weight_bytes ~weight_bits:4 model in
      let got = Unit_gen.span_weight_bytes t 0 (Unit_gen.unit_count t) in
      Alcotest.(check (float 1.)) (name ^ " bytes covered") expected got)
    [ "vgg16"; "resnet18"; "squeezenet"; "lenet5"; "tiny_mlp" ]

let test_column_cover () =
  (* Units of a layer cover its output columns exactly once. *)
  let t = gen "resnet18" Config.chip_s in
  let model = t.Unit_gen.model in
  List.iter
    (fun (node, idxs) ->
      let cols =
        Compass_nn.Layer.weight_cols (Compass_nn.Graph.layer model node).Compass_nn.Layer.op
      in
      (* Sum of column extents over non-partial-sum-duplicated slices. *)
      let covered = Hashtbl.create 16 in
      List.iter
        (fun i ->
          let u = t.Unit_gen.units.(i) in
          for c = u.Unit_gen.col_lo to u.Unit_gen.col_hi - 1 do
            if u.Unit_gen.row_lo = 0 then begin
              Alcotest.(check bool) "no double cover" false (Hashtbl.mem covered c);
              Hashtbl.add covered c ()
            end
          done)
        idxs;
      Alcotest.(check int) "all columns covered" cols (Hashtbl.length covered))
    t.Unit_gen.layer_units

let test_row_split_when_needed () =
  (* VGG16 fc6 has 98 macro rows; chip S cores hold 9 macros, so its units
     must be row-split partial-sum units. *)
  let t = gen "vgg16" Config.chip_s in
  let model = t.Unit_gen.model in
  let fc6 =
    List.find
      (fun (node, _) -> (Compass_nn.Graph.layer model node).Compass_nn.Layer.name = "fc6")
      t.Unit_gen.layer_units
  in
  let idxs = snd fc6 in
  Alcotest.(check int) "64 col blocks x ceil(98/9)" (64 * 11) (List.length idxs);
  List.iter
    (fun i ->
      Alcotest.(check bool) "partial sum" true t.Unit_gen.units.(i).Unit_gen.partial_sum)
    idxs

let test_no_row_split_on_large_core () =
  let t = gen "resnet18" Config.chip_l in
  Array.iter
    (fun u -> Alcotest.(check bool) "no partial sums" false u.Unit_gen.partial_sum)
    t.Unit_gen.units

let test_bigger_chip_fewer_units () =
  let s = Unit_gen.unit_count (gen "vgg16" Config.chip_s) in
  let m = Unit_gen.unit_count (gen "vgg16" Config.chip_m) in
  let l = Unit_gen.unit_count (gen "vgg16" Config.chip_l) in
  Alcotest.(check bool) "monotone" true (s >= m && m >= l)

let test_total_tiles_match_grid () =
  let t = gen "squeezenet" Config.chip_s in
  let model = t.Unit_gen.model in
  let xbar = Config.chip_s.Config.crossbar in
  let expected =
    List.fold_left
      (fun acc node ->
        let op = (Compass_nn.Graph.layer model node).Compass_nn.Layer.op in
        acc
        + Crossbar.tiles_for xbar
            ~rows:(Compass_nn.Layer.weight_rows op)
            ~cols:(Compass_nn.Layer.weight_cols op))
      0
      (Compass_nn.Graph.weighted_nodes model)
  in
  Alcotest.(check int) "tiles match per-layer grids" expected (Unit_gen.total_tiles t)

let test_span_helpers () =
  let t = gen "lenet5" Config.chip_s in
  let m = Unit_gen.unit_count t in
  Alcotest.(check int) "full span" (Unit_gen.total_tiles t) (Unit_gen.span_tiles t 0 m);
  Alcotest.(check int) "empty span" 0 (Unit_gen.span_tiles t 2 2);
  Alcotest.(check bool) "bad span" true
    (try
       ignore (Unit_gen.span_tiles t 3 1);
       false
     with Invalid_argument _ -> true)

let test_layer_of_unit () =
  let t = gen "lenet5" Config.chip_s in
  Array.iter
    (fun u ->
      Alcotest.(check int) "consistent" u.Unit_gen.layer
        (Unit_gen.layer_of_unit t u.Unit_gen.index))
    t.Unit_gen.units

let test_no_weighted_layer_rejected () =
  let g = Compass_nn.Graph.create () in
  let input =
    Compass_nn.Graph.add g "in"
      (Compass_nn.Layer.Input (Compass_nn.Shape.vector 10))
  in
  let _ = Compass_nn.Graph.add g ~inputs:[ input ] "r" Compass_nn.Layer.Relu in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Unit_gen.generate g Config.chip_s);
       false
     with Invalid_argument _ -> true)

let test_col_fraction_sums_to_one () =
  let t = gen "resnet18" Config.chip_m in
  let model = t.Unit_gen.model in
  List.iter
    (fun (_node, idxs) ->
      let total =
        List.fold_left
          (fun acc i ->
            let u = t.Unit_gen.units.(i) in
            if u.Unit_gen.row_lo = 0 then acc +. Unit_gen.col_fraction u model else acc)
          0. idxs
      in
      Alcotest.(check (float 1e-9)) "fractions sum to 1" 1. total)
    t.Unit_gen.layer_units

(* Property over random chips: decomposition invariants hold. *)

let prop_decomposition_invariants =
  QCheck.Test.make ~name:"decomposition invariants on random chips" ~count:40
    QCheck.(pair (int_range 2 20) (int_range 1 40))
    (fun (cores, macros_per_core) ->
      let chip = Config.custom ~label:"q" ~cores ~macros_per_core () in
      let t = Unit_gen.generate (Compass_nn.Models.squeezenet ()) chip in
      Array.for_all
        (fun u -> u.Unit_gen.tiles >= 1 && u.Unit_gen.tiles <= macros_per_core)
        t.Unit_gen.units
      && Unit_gen.unit_count t > 0)

let () =
  Alcotest.run "unit_gen"
    [
      ( "decomposition",
        [
          Alcotest.test_case "units fit a core" `Quick test_units_fit_core;
          Alcotest.test_case "indices dense" `Quick test_indices_dense;
          Alcotest.test_case "layer units contiguous" `Quick test_layer_units_contiguous;
          Alcotest.test_case "weight bytes covered" `Quick test_weight_bytes_cover_model;
          Alcotest.test_case "columns covered once" `Quick test_column_cover;
          Alcotest.test_case "row split when needed" `Quick test_row_split_when_needed;
          Alcotest.test_case "no row split on chip L" `Quick test_no_row_split_on_large_core;
          Alcotest.test_case "bigger chip fewer units" `Quick test_bigger_chip_fewer_units;
          Alcotest.test_case "tiles match grids" `Quick test_total_tiles_match_grid;
          Alcotest.test_case "span helpers" `Quick test_span_helpers;
          Alcotest.test_case "layer_of_unit" `Quick test_layer_of_unit;
          Alcotest.test_case "no weighted layer rejected" `Quick
            test_no_weighted_layer_rejected;
          Alcotest.test_case "col fractions sum to one" `Quick
            test_col_fraction_sums_to_one;
          QCheck_alcotest.to_alcotest prop_decomposition_invariants;
        ] );
    ]
