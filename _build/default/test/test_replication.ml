(* Tests for the replication allocator and the shared perf model. *)

open Compass_core
open Compass_arch

let setup name chip =
  let units = Unit_gen.generate (Compass_nn.Models.by_name name) chip in
  let v = Validity.build units in
  (units, v, Dataflow.context units)

(* Perf_model *)

let test_span_layers_topo () =
  let units, _, ctx = setup "resnet18" Config.chip_s in
  let m = Unit_gen.unit_count units in
  let layers = Perf_model.span_layers ctx ~start_:0 ~stop:m in
  let expected = Compass_nn.Graph.weighted_nodes units.Unit_gen.model in
  Alcotest.(check (list int)) "all weighted layers in order" expected
    (List.map (fun (p : Perf_model.layer_perf) -> p.Perf_model.node) layers)

let test_stage_time_scales_with_replication () =
  let units, _, ctx = setup "resnet18" Config.chip_s in
  ignore units;
  let layers = Perf_model.span_layers ctx ~start_:0 ~stop:4 in
  List.iter
    (fun (p : Perf_model.layer_perf) ->
      let s1 = Perf_model.stage_time_s p ~replication:1 in
      let s2 = Perf_model.stage_time_s p ~replication:2 in
      Alcotest.(check (float 1e-12)) "halves" (s1 /. 2.) s2)
    layers

let test_op_time_includes_mvm_latency () =
  let units, _, ctx = setup "lenet5" Config.chip_s in
  let m = Unit_gen.unit_count units in
  let layers = Perf_model.span_layers ctx ~start_:0 ~stop:m in
  List.iter
    (fun (p : Perf_model.layer_perf) ->
      Alcotest.(check bool) "op time >= mvm latency" true
        (p.Perf_model.op_time_s
        >= Config.chip_s.Config.crossbar.Crossbar.mvm_latency_s))
    layers

let test_attached_ops_positive () =
  let units, _, ctx = setup "resnet18" Config.chip_s in
  let io = Dataflow.span_io ctx ~start_:0 ~stop:(Unit_gen.unit_count units) in
  Alcotest.(check bool) "relu/pool/bn work exists" true
    (Perf_model.attached_vfu_ops ctx io > 0)

let test_max_useful_replication () =
  let units, _, ctx = setup "vgg16" Config.chip_s in
  let m = Unit_gen.unit_count units in
  let layers = Perf_model.span_layers ctx ~start_:0 ~stop:m in
  let fc =
    List.find
      (fun (p : Perf_model.layer_perf) -> p.Perf_model.mvms = 1)
      layers
  in
  Alcotest.(check int) "linear caps at 1" 1 (Perf_model.max_useful_replication fc)

(* Replication allocator *)

let test_replication_at_least_one () =
  let _, v, ctx = setup "resnet18" Config.chip_s in
  let stop = Validity.max_end v 0 in
  let alloc = Replication.allocate ctx ~batch:16 ~start_:0 ~stop in
  List.iter
    (fun (_, r) -> Alcotest.(check bool) "r >= 1" true (r >= 1))
    alloc.Replication.per_layer

let test_replication_within_budget () =
  List.iter
    (fun (_, chip) ->
      let _, v, ctx = setup "resnet18" chip in
      let budget = Config.total_macros chip in
      let rec spans pos acc =
        if pos >= Validity.size v then List.rev acc
        else
          let stop = Validity.max_end v pos in
          spans stop ((pos, stop) :: acc)
      in
      List.iter
        (fun (a, b) ->
          let alloc = Replication.allocate ctx ~batch:16 ~start_:a ~stop:b in
          Alcotest.(check bool) "tiles within budget" true
            (alloc.Replication.tiles_used <= budget);
          Alcotest.(check int) "spare consistent" budget
            (alloc.Replication.tiles_used + alloc.Replication.spare_tiles))
        (spans 0 []))
    Config.presets

let test_replication_packs () =
  (* The allocation must always be placeable. *)
  let units, v, ctx = setup "squeezenet" Config.chip_s in
  let m = Validity.size v in
  let alloc = Replication.allocate ctx ~batch:16 ~start_:0 ~stop:m in
  match
    Mapping.pack units ~start_:0 ~stop:m
      ~replication:(Replication.unit_replication alloc units)
  with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("final allocation does not pack: " ^ e)

let test_replication_helps_bottleneck () =
  (* With spare space, the early high-pixel-count conv gets replicated. *)
  let units, v, ctx = setup "squeezenet" Config.chip_s in
  let m = Validity.size v in
  let alloc = Replication.allocate ctx ~batch:16 ~start_:0 ~stop:m in
  let model = units.Unit_gen.model in
  let conv1 =
    List.find
      (fun n -> (Compass_nn.Graph.layer model n).Compass_nn.Layer.name = "conv1")
      (Compass_nn.Graph.weighted_nodes model)
  in
  Alcotest.(check bool) "conv1 replicated" true
    (Replication.replication_of alloc conv1 > 1);
  Alcotest.(check bool) "max replication consistent" true
    (Replication.max_replication alloc >= Replication.replication_of alloc conv1)

let test_replication_reduces_bottleneck () =
  (* The replicated pipeline bottleneck is no worse than unreplicated. *)
  let _, v, ctx = setup "squeezenet" Config.chip_m in
  let m = Validity.size v in
  let layers = Perf_model.span_layers ctx ~start_:0 ~stop:m in
  let alloc = Replication.allocate ctx ~batch:16 ~start_:0 ~stop:m in
  let bottleneck rep_of =
    List.fold_left
      (fun acc (p : Perf_model.layer_perf) ->
        max acc (Perf_model.stage_time_s p ~replication:(rep_of p.Perf_model.node)))
      0. layers
  in
  let before = bottleneck (fun _ -> 1) in
  let after = bottleneck (Replication.replication_of alloc) in
  Alcotest.(check bool) "bottleneck improves" true (after < before)

let test_default_replication_for_absent_layer () =
  let _, v, ctx = setup "lenet5" Config.chip_s in
  let alloc = Replication.allocate ctx ~batch:16 ~start_:0 ~stop:(Validity.size v) in
  Alcotest.(check int) "absent node defaults to 1" 1
    (Replication.replication_of alloc 99999)

let test_greedy_spans_little_spare () =
  (* Greedy packs to the rim: the replication allocator finds little spare
     space — the paper's explanation of greedy's poor throughput. *)
  let _, v, ctx = setup "vgg16" Config.chip_s in
  let g = Baselines.greedy v in
  let spares =
    List.map
      (fun (s : Partition.span) ->
        let alloc =
          Replication.allocate ctx ~batch:16 ~start_:s.Partition.start_ ~stop:s.Partition.stop
        in
        float_of_int alloc.Replication.spare_tiles
        /. float_of_int (Config.total_macros Config.chip_s))
      (Partition.spans g)
  in
  let avg = Compass_util.Stats.mean spares in
  Alcotest.(check bool)
    (Printf.sprintf "avg spare small (%.2f)" avg)
    true (avg < 0.35)

(* Properties *)

let prop_allocation_valid_on_random_spans =
  QCheck.Test.make ~name:"allocation valid on random spans" ~count:40
    QCheck.small_int (fun seed ->
      let units, v, ctx = setup "resnet18" Config.chip_m in
      let rng = Compass_util.Rng.create seed in
      let a = Compass_util.Rng.int rng (Validity.size v) in
      let b = Compass_util.Rng.int_in rng (a + 1) (Validity.max_end v a) in
      let alloc = Replication.allocate ctx ~batch:16 ~start_:a ~stop:b in
      alloc.Replication.tiles_used <= Config.total_macros Config.chip_m
      && List.for_all (fun (_, r) -> r >= 1) alloc.Replication.per_layer
      &&
      match
        Mapping.pack units ~start_:a ~stop:b
          ~replication:(Replication.unit_replication alloc units)
      with
      | Ok _ -> true
      | Error _ -> false)

let () =
  Alcotest.run "replication"
    [
      ( "perf_model",
        [
          Alcotest.test_case "span layers topo" `Quick test_span_layers_topo;
          Alcotest.test_case "stage time scales" `Quick
            test_stage_time_scales_with_replication;
          Alcotest.test_case "op time >= mvm" `Quick test_op_time_includes_mvm_latency;
          Alcotest.test_case "attached ops positive" `Quick test_attached_ops_positive;
          Alcotest.test_case "max useful replication" `Quick test_max_useful_replication;
        ] );
      ( "allocator",
        [
          Alcotest.test_case "at least one" `Quick test_replication_at_least_one;
          Alcotest.test_case "within budget" `Quick test_replication_within_budget;
          Alcotest.test_case "always packs" `Quick test_replication_packs;
          Alcotest.test_case "helps bottleneck layer" `Quick
            test_replication_helps_bottleneck;
          Alcotest.test_case "reduces bottleneck" `Quick test_replication_reduces_bottleneck;
          Alcotest.test_case "absent layer defaults" `Quick
            test_default_replication_for_absent_layer;
          Alcotest.test_case "greedy spans little spare" `Quick
            test_greedy_spans_little_spare;
          QCheck_alcotest.to_alcotest prop_allocation_valid_on_random_spans;
        ] );
    ]
