(* Tests for the instruction set, program validation and the event-driven
   chip simulator. *)

open Compass_isa
open Compass_arch

let chip = Config.chip_s

let run programs = Sim.run chip programs

let prog core_id instrs = Program.make ~core_id instrs

(* Instr / Program *)

let test_instr_accessors () =
  Alcotest.(check int) "mvm count" 10
    (Instr.mvm_count (Instr.Mvm { count = 10; tiles = 2; tag = "" }));
  Alcotest.(check (float 0.)) "load bytes" 64.
    (Instr.dram_bytes (Instr.Load { bytes = 64.; addr = 0; tag = "" }));
  Alcotest.(check (float 0.)) "vfu has no dram" 0. (Instr.dram_bytes (Instr.Vfu { ops = 5 }))

let test_program_totals () =
  let p =
    prog 0
      [
        Instr.Mvm { count = 3; tiles = 1; tag = "" };
        Instr.Mvm { count = 4; tiles = 2; tag = "" };
        Instr.Load { bytes = 100.; addr = 0; tag = "" };
      ]
  in
  Alcotest.(check int) "mvms" 7 (Program.mvm_total p);
  Alcotest.(check (float 0.)) "dram" 100. (Program.dram_bytes p);
  Alcotest.(check int) "length" 3 (Program.length p)

let test_program_validate_duplicates () =
  Alcotest.(check bool) "duplicate ids" true
    (Program.validate ~cores:4 [ prog 0 []; prog 0 [] ] = Error "duplicate core ids")

let test_program_validate_range () =
  Alcotest.(check bool) "out of range" true
    (Program.validate ~cores:2 [ prog 5 [] ] = Error "core id out of range")

let test_program_validate_send_recv () =
  let ok =
    [
      prog 0 [ Instr.Send { bytes = 8.; dst = 1; channel = 1 } ];
      prog 1 [ Instr.Recv { bytes = 8.; src = 0; channel = 1 } ];
    ]
  in
  Alcotest.(check bool) "matched" true (Program.validate ~cores:2 ok = Ok ());
  let orphan = [ prog 0 [ Instr.Send { bytes = 8.; dst = 1; channel = 1 } ]; prog 1 [] ] in
  Alcotest.(check bool) "orphan send" true
    (Program.validate ~cores:2 orphan = Error "send without matching recv")

let test_instruction_mix () =
  let mix =
    Program.instruction_mix
      [ prog 0 [ Instr.Vfu { ops = 1 }; Instr.Vfu { ops = 2 } ]; prog 1 [ Instr.Sync { token = 0; parties = 2 } ] ]
  in
  Alcotest.(check (list (pair string int))) "histogram"
    [ ("sync", 1); ("vfu", 2) ]
    mix

(* Sim: timing semantics *)

let test_sim_empty () =
  let r = run [] in
  Alcotest.(check (float 0.)) "no time" 0. r.Sim.makespan_s

let test_sim_mvm_latency () =
  let r = run [ prog 0 [ Instr.Mvm { count = 100; tiles = 3; tag = "" } ] ] in
  Alcotest.(check (float 1e-12)) "count x mvm latency"
    (100. *. chip.Config.crossbar.Crossbar.mvm_latency_s)
    r.Sim.makespan_s;
  Alcotest.(check (float 0.)) "macro ops" 300. r.Sim.mvm_macro_ops

let test_sim_vfu_latency () =
  let r = run [ prog 0 [ Instr.Vfu { ops = 1200 } ] ] in
  (* 12 lanes at 1 GHz -> 100 cycles. *)
  Alcotest.(check (float 1e-12)) "lanes divide" 100e-9 r.Sim.makespan_s

let test_sim_load_counts_bytes () =
  let r = run [ prog 0 [ Instr.Load { bytes = 6400.; addr = 0; tag = "t" } ] ] in
  Alcotest.(check (float 0.)) "bytes" 6400. r.Sim.load_bytes;
  Alcotest.(check int) "one trace record" 1 (List.length r.Sim.dram_trace);
  Alcotest.(check bool) "at least dram time" true
    (r.Sim.makespan_s >= 6400. /. 6.4e9)

let test_sim_zero_byte_transfers_free () =
  let r =
    run [ prog 0 [ Instr.Weight_write { macro_count = 2; bytes = 0.; addr = 0; tag = "" } ] ]
  in
  Alcotest.(check int) "no trace" 0 (List.length r.Sim.dram_trace);
  Alcotest.(check (float 1e-12)) "program time only"
    (2. *. Crossbar.write_latency_s chip.Config.crossbar)
    r.Sim.makespan_s

let test_sim_weight_write_includes_programming () =
  let r =
    run
      [ prog 0 [ Instr.Weight_write { macro_count = 9; bytes = 8192.; addr = 0; tag = "" } ] ]
  in
  Alcotest.(check bool) "at least serial programming" true
    (r.Sim.makespan_s >= 9. *. Crossbar.write_latency_s chip.Config.crossbar);
  Alcotest.(check (float 0.)) "weight bytes" 8192. r.Sim.weight_bytes

let test_sim_bus_serializes () =
  (* Two cores each move 32 MB; the shared bus must serialize them. *)
  let mb32 = 32. *. 1024. *. 1024. in
  let one = run [ prog 0 [ Instr.Load { bytes = mb32; addr = 0; tag = "" } ] ] in
  let two =
    run
      [
        prog 0 [ Instr.Load { bytes = mb32; addr = 0; tag = "" } ];
        prog 1 [ Instr.Load { bytes = mb32; addr = 1 lsl 26; tag = "" } ];
      ]
  in
  Alcotest.(check bool) "two slower than one" true
    (two.Sim.makespan_s > 1.5 *. one.Sim.makespan_s)

let test_sim_send_recv_transfers () =
  let r =
    run
      [
        prog 0
          [
            Instr.Mvm { count = 10; tiles = 1; tag = "" };
            Instr.Send { bytes = 1024.; dst = 1; channel = 7 };
          ];
        prog 1
          [ Instr.Recv { bytes = 1024.; src = 0; channel = 7 }; Instr.Vfu { ops = 12 } ];
      ]
  in
  (* Core 1 must wait for core 0's compute + transfer before its VFU op. *)
  let finish id = List.assoc id r.Sim.core_finish_s in
  Alcotest.(check bool) "core1 after core0 send" true (finish 1 > finish 0 -. 1e-12)

let test_sim_sync_barrier () =
  let r =
    run
      [
        prog 0
          [ Instr.Mvm { count = 1000; tiles = 1; tag = "" }; Instr.Sync { token = 1; parties = 2 } ];
        prog 1 [ Instr.Sync { token = 1; parties = 2 }; Instr.Vfu { ops = 12 } ];
      ]
  in
  let finish id = List.assoc id r.Sim.core_finish_s in
  (* Core 1's single VFU op runs only after core 0's 1000 MVMs release the
     barrier. *)
  Alcotest.(check bool) "barrier holds" true
    (finish 1 >= 1000. *. chip.Config.crossbar.Crossbar.mvm_latency_s)

let test_sim_deadlock_detected () =
  let programs =
    [
      prog 0
        [
          Instr.Recv { bytes = 1.; src = 1; channel = 1 };
          Instr.Send { bytes = 1.; dst = 1; channel = 2 };
        ];
      prog 1
        [
          Instr.Recv { bytes = 1.; src = 0; channel = 2 };
          Instr.Send { bytes = 1.; dst = 0; channel = 1 };
        ];
    ]
  in
  Alcotest.(check bool) "deadlock raised" true
    (try
       ignore (run programs);
       false
     with Sim.Deadlock _ -> true)

let test_sim_invalid_program_rejected () =
  Alcotest.(check bool) "validation enforced" true
    (try
       ignore (run [ prog 99 [] ]);
       false
     with Invalid_argument _ -> true)

let test_sim_energy_components () =
  let r = run [ prog 0 [ Instr.Mvm { count = 10; tiles = 2; tag = "" } ] ] in
  Alcotest.(check bool) "has all labels" true
    (List.for_all
       (fun l -> List.mem_assoc l r.Sim.energy_components)
       [ "mvm"; "vfu"; "weight_program"; "bus"; "dram"; "static" ]);
  Alcotest.(check bool) "positive total" true (r.Sim.energy_j > 0.)

(* Timeline *)

let test_timeline_render () =
  let r =
    run
      [
        prog 0
          [
            Instr.Weight_write { macro_count = 2; bytes = 1024.; addr = 0; tag = "" };
            Instr.Mvm { count = 10; tiles = 1; tag = "" };
          ];
        prog 1 [ Instr.Vfu { ops = 100 } ];
      ]
  in
  let s = Timeline.render ~width:40 r in
  Alcotest.(check bool) "mentions both cores" true
    (String.length s > 0
    && String.contains s 'M'
    && String.contains s 'W');
  Alcotest.(check int) "events recorded" 3 (List.length r.Sim.events)

let test_timeline_empty () =
  Alcotest.(check string) "empty" "(empty timeline)" (Timeline.render (run []))

let test_core_utilization_bounds () =
  let r =
    run
      [
        prog 0 [ Instr.Mvm { count = 10; tiles = 1; tag = "" } ];
        prog 1 [ Instr.Sync { token = 0; parties = 1 } ];
      ]
  in
  List.iter
    (fun (_, u) -> Alcotest.(check bool) "in [0,1]" true (u >= 0. && u <= 1.))
    (Timeline.core_utilization r);
  (* Core 0 computes the whole time; core 1 never. *)
  Alcotest.(check (float 1e-6)) "core0 busy" 1. (List.assoc 0 (Timeline.core_utilization r));
  Alcotest.(check (float 1e-6)) "core1 idle" 0. (List.assoc 1 (Timeline.core_utilization r))

let test_events_ordered_per_core () =
  let r =
    run
      [
        prog 0
          [ Instr.Mvm { count = 5; tiles = 1; tag = "" }; Instr.Vfu { ops = 24 } ];
      ]
  in
  let core0 = List.filter (fun e -> e.Sim.core = 0) r.Sim.events in
  let rec ordered = function
    | a :: (b :: _ as rest) -> a.Sim.finish_s <= b.Sim.start_s +. 1e-12 && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "sequential per core" true (ordered core0)

(* Property: makespan is monotone when appending work. *)

let prop_makespan_monotone =
  QCheck.Test.make ~name:"makespan monotone in added work" ~count:100
    QCheck.(pair (int_range 1 100) (int_range 1 100))
    (fun (a, b) ->
      let p1 = [ prog 0 [ Instr.Mvm { count = a; tiles = 1; tag = "" } ] ] in
      let p2 =
        [
          prog 0
            [
              Instr.Mvm { count = a; tiles = 1; tag = "" };
              Instr.Mvm { count = b; tiles = 1; tag = "" };
            ];
        ]
      in
      (run p2).Sim.makespan_s >= (run p1).Sim.makespan_s)

let prop_trace_bytes_match_counters =
  QCheck.Test.make ~name:"dram trace totals match counters" ~count:50
    QCheck.(pair (int_range 64 100000) (int_range 64 100000))
    (fun (a, b) ->
      let r =
        run
          [
            prog 0
              [
                Instr.Load { bytes = float_of_int a; addr = 0; tag = "" };
                Instr.Store { bytes = float_of_int b; addr = 1 lsl 20; tag = "" };
              ];
          ]
      in
      let trace_bytes = Compass_dram.Trace.total_bytes r.Sim.dram_trace in
      abs_float (trace_bytes -. float_of_int (a + b)) < 2.)

let () =
  Alcotest.run "compass_isa"
    [
      ( "instr",
        [
          Alcotest.test_case "accessors" `Quick test_instr_accessors;
          Alcotest.test_case "program totals" `Quick test_program_totals;
          Alcotest.test_case "validate duplicates" `Quick test_program_validate_duplicates;
          Alcotest.test_case "validate range" `Quick test_program_validate_range;
          Alcotest.test_case "validate send/recv" `Quick test_program_validate_send_recv;
          Alcotest.test_case "instruction mix" `Quick test_instruction_mix;
        ] );
      ( "sim",
        [
          Alcotest.test_case "empty" `Quick test_sim_empty;
          Alcotest.test_case "mvm latency" `Quick test_sim_mvm_latency;
          Alcotest.test_case "vfu latency" `Quick test_sim_vfu_latency;
          Alcotest.test_case "load counts bytes" `Quick test_sim_load_counts_bytes;
          Alcotest.test_case "zero-byte transfers" `Quick test_sim_zero_byte_transfers_free;
          Alcotest.test_case "weight write programming" `Quick
            test_sim_weight_write_includes_programming;
          Alcotest.test_case "bus serializes" `Quick test_sim_bus_serializes;
          Alcotest.test_case "send/recv transfers" `Quick test_sim_send_recv_transfers;
          Alcotest.test_case "sync barrier" `Quick test_sim_sync_barrier;
          Alcotest.test_case "deadlock detected" `Quick test_sim_deadlock_detected;
          Alcotest.test_case "invalid program rejected" `Quick
            test_sim_invalid_program_rejected;
          Alcotest.test_case "energy components" `Quick test_sim_energy_components;
          Alcotest.test_case "timeline render" `Quick test_timeline_render;
          Alcotest.test_case "timeline empty" `Quick test_timeline_empty;
          Alcotest.test_case "core utilization" `Quick test_core_utilization_bounds;
          Alcotest.test_case "events ordered" `Quick test_events_ordered_per_core;
          QCheck_alcotest.to_alcotest prop_makespan_monotone;
          QCheck_alcotest.to_alcotest prop_trace_bytes_match_counters;
        ] );
    ]
